(* Benchmarks: one kernel per experiment family (the code that
   regenerates each table/figure of EXPERIMENTS.md) plus the ablations
   called out in DESIGN.md (Shor vs Steane extraction,
   syndrome-repetition policy, union-find vs greedy toric decoding,
   simulator throughput).

   Two frontends over the same kernel list:
   - default: bechamel (OLS over many runs, prints time/run and r²);
   - --smoke [--out FILE]: a few wall-clock repetitions per kernel,
     written as JSON (for CI artifacts), plus a sequential-vs-parallel
     probe of the Mc.Runner engine that records the speedup and checks
     the two failure counts agree. *)

open Ftqc

(* Per-kernel RNG streams: each kernel closure gets its own split
   stream off one root seed, so adding or reordering kernels (or a
   sampler's choice of run counts) cannot perturb what any other
   kernel draws. *)
let bench_seed = 77
let next_stream = ref 0

let fresh_rng () =
  let i = !next_stream in
  incr next_stream;
  Mc.Rng.to_state (Mc.Rng.split (Mc.Rng.root bench_seed) i)

let steane = Codes.Steane.code

let prep_block sim ~offset =
  let n = Ft.Sim.num_qubits sim in
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g ->
      ignore
        (Tableau.postselect_pauli tab
           (Codes.Stabilizer_code.embed steane ~offset ~total:n g)
           ~outcome:false))
    steane.generators;
  ignore
    (Tableau.postselect_pauli tab
       (Codes.Stabilizer_code.embed steane ~offset ~total:n
          steane.logical_z.(0))
       ~outcome:false)

let noise = Ft.Noise.gates_only 1e-3

(* --- E1: encoded memory round ---------------------------------------- *)

let e1_memory =
  let rng = fresh_rng () in
  fun () ->
    ignore (Ft.Memory.encoded_ideal_ec steane ~eps:1e-2 ~rounds:1 ~trials:10 rng)

(* --- E2: syndrome extraction gadgets (ablation: Shor vs Steane vs
       non-FT) -------------------------------------------------------- *)

let shor_ec_kernel verified =
  let rng = fresh_rng () in
  fun () ->
    let sim = Ft.Sim.create ~n:12 ~noise rng in
    prep_block sim ~offset:0;
    ignore
      (Ft.Shor_ec.recover sim steane ~policy:Ft.Shor_ec.Repeat_if_nontrivial
         ~offset:0 ~cat_base:7 ~check:11 ~verified)

let e2_shor_ft = shor_ec_kernel true
let e2_shor_nonft = shor_ec_kernel false

let steane_ec_kernel policy =
  let rng = fresh_rng () in
  fun () ->
    let sim = Ft.Sim.create ~n:21 ~noise rng in
    prep_block sim ~offset:0;
    ignore
      (Ft.Steane_ec.recover sim ~policy ~verify:Ft.Steane_ec.Reject ~data:0
         ~ancilla:7 ~checker:14)

let e2_steane = steane_ec_kernel Ft.Steane_ec.Repeat_if_nontrivial

(* --- E4 ablation: syndrome acceptance policy -------------------------- *)

let e4_accept_first = steane_ec_kernel Ft.Steane_ec.Accept_first

(* --- E5: logical CNOT extended rectangle ------------------------------- *)

let e5_exrec =
  let rng = fresh_rng () in
  fun () -> ignore (Ft.Memory.logical_cnot_exrec_failure ~noise ~trials:5 rng)

(* --- E6/E7/E8: analytic tables ----------------------------------------- *)

let e6_flow () =
  List.iter
    (fun eps ->
      for l = 0 to 4 do
        ignore (Threshold.Flow.level_error ~a:21.0 ~eps ~level:l)
      done;
      ignore (Threshold.Flow.block_size_for ~a:21.0 ~eps ~gates:3e9))
    [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6 ]

let e7_bigcode () =
  List.iter
    (fun eps -> ignore (Threshold.Bigcode.best_integer_t ~b:4.0 ~eps ~t_max:1000))
    [ 1e-4; 1e-5; 1e-6; 1e-7 ]

let e8_resources () =
  List.iter
    (fun bits -> ignore (Threshold.Resources.estimate ~bits ~physical_eps:1e-6 ()))
    [ 128; 256; 432; 512; 1024 ]

(* --- E9: systematic error sweep ---------------------------------------- *)

let e9_systematic =
  let rng = fresh_rng () in
  fun () ->
    ignore
      (Ft.Systematic.crossover_table ~theta:0.01 ~steps_list:[ 1; 10; 100 ]
         ~trials:20 rng)

(* --- E10: toric decoding (ablation: union-find vs greedy) -------------- *)

let toric_kernel decoder =
  let rng = fresh_rng () in
  let lat = Toric.Lattice.create 12 in
  let n = Toric.Lattice.num_qubits lat in
  fun () ->
    let e = Gf2.Bitvec.create n in
    Gf2.Bitvec.randomize ~p:0.08 rng e;
    let s = Toric.Lattice.syndrome lat e in
    ignore (decoder lat s)

let e10_uf = toric_kernel Toric.Decoder.decode
let e10_greedy = toric_kernel Toric.Decoder.greedy_decode

(* --- E11: anyon substrate ----------------------------------------------- *)

let e11_charge =
  let rng = fresh_rng () in
  let a5 = Group.Finite_group.alternating 5 in
  let u0, _, v = Anyon.Register.paper_a5_encoding () in
  fun () ->
    let pair = Anyon.Pair_sim.create a5 ~class_rep:u0 in
    ignore (Anyon.Pair_sim.measure_charge pair rng ~projectile:v)

let e11_closure =
  let s4 = Group.Finite_group.symmetric 4 in
  fun () -> ignore (Anyon.Logic.commutator_closure_depth s4 ~max_depth:12)

(* --- E12: leakage scrub -------------------------------------------------- *)

let e12_scrub =
  let rng = fresh_rng () in
  fun () ->
    let t = Ft.Leakage.create ~n:8 ~noise:Ft.Noise.none ~leak_rate:0.0 rng in
    Ft.Leakage.leak t 3;
    ignore (Ft.Leakage.scrub t ~qubits:[ 0; 1; 2; 3; 4; 5; 6 ] ~ancilla:7)

(* --- E13: code machinery -------------------------------------------------- *)

let e13_distance () = ignore (Codes.Stabilizer_code.distance steane)

(* --- E14: FT Toffoli ------------------------------------------------------- *)

let e14_toffoli =
  let rng = fresh_rng () in
  fun () ->
    let sv = Statevec.create 7 in
    Statevec.h sv 0;
    Statevec.h sv 1;
    Ft.Toffoli.apply sv rng ~data:(0, 1, 2) ~scratch:(3, 4, 5) ~control:6

(* --- E16: generalized CSS EC / E6b: pauli frame ----------------------------- *)

let e16_css_ec_rm15 =
  let rng = fresh_rng () in
  let gadget = Ft.Css_ec.for_reed_muller () in
  fun () ->
    let sim = Ft.Sim.create ~n:45 ~noise rng in
    ignore
      (Ft.Css_ec.recover sim gadget ~policy:Ft.Css_ec.Repeat_if_nontrivial
         ~data:0 ~ancilla:15 ~checker:30 ~max_attempts:25)

let e6b_level2 =
  let rng = fresh_rng () in
  fun () ->
    ignore
      (Codes.Pauli_frame.memory_failure ~level:2 ~eps:0.02 ~rounds:1 ~trials:50
         rng)

let e6b_level3 =
  let rng = fresh_rng () in
  fun () ->
    ignore
      (Codes.Pauli_frame.memory_failure ~level:3 ~eps:0.02 ~rounds:1 ~trials:10
         rng)

(* bit-sliced engine: same experiments, 64 shots per word and
   [--tile-width] shots per tile (counts are width-invariant, so the
   flag only moves throughput) *)
let cli_tile_width = ref 64

let e6b_batch_level2 () =
  ignore
    (Codes.Pauli_frame.memory_failure_batch ~domains:1
       ~tile_width:!cli_tile_width ~level:2 ~eps:0.02 ~rounds:1 ~trials:3200
       ~seed:41 ())

let e6b_batch_level3 () =
  ignore
    (Codes.Pauli_frame.memory_failure_batch ~domains:1
       ~tile_width:!cli_tile_width ~level:3 ~eps:0.02 ~rounds:1 ~trials:640
       ~seed:42 ())

let e10_toric_batch () =
  ignore
    (Toric.Memory.run_batch ~domains:1 ~tile_width:!cli_tile_width ~l:12
       ~p:0.08 ~trials:640 ~seed:43 ())

(* --- E17..E20 ---------------------------------------------------------------- *)

let e17_l2_recover =
  let rng = fresh_rng () in
  fun () ->
    let total = 49 + Ft.Concat_ec.scratch_qubits in
    let sim = Ft.Sim.create ~n:total ~noise:Ft.Noise.none rng in
    let tab = Ft.Sim.tableau sim in
    let code2 = Codes.Concat.steane_level 2 in
    Array.iter
      (fun g ->
        ignore
          (Tableau.postselect_pauli tab
             (Codes.Stabilizer_code.embed code2 ~offset:0 ~total g)
             ~outcome:false))
      code2.generators;
    Ft.Concat_ec.recover_l2 sim ~data:0 ~scratch:49 ~max_attempts:10

let e18_golay =
  let rng = fresh_rng () in
  fun () ->
    let w = Gf2.Bitvec.create 23 in
    Gf2.Bitvec.randomize ~p:0.1 rng w;
    ignore (Codes.Golay.decode w)

let e19_noisy_toric =
  let rng = fresh_rng () in
  fun () ->
    ignore (Toric.Noisy_memory.run ~l:8 ~rounds:8 ~p:0.02 ~q:0.02 ~trials:1 rng)

let e11_synthesis () =
  ignore (Anyon.Synthesis.no_cnot_without_ancilla ~max_depth:4)

let e20_depth () =
  ignore (Circuit.depth (Ft.Steane_ec.syndrome_extraction_circuit ()))

(* --- code machinery ---------------------------------------------------------- *)

let exact_polynomial () =
  ignore
    (Codes.Exact.failure_polynomial Codes.Steane.code
       (Codes.Steane.css_decoder ()))

let measurement_encoder () =
  let c =
    Codes.Stabilizer_code.encoding_circuit_via_measurement Codes.Five_qubit.code
  in
  let sv = Statevec.create 6 in
  ignore (Statevec.run sv c)

let conjugate =
  let rng = fresh_rng () in
  fun () ->
    let c = Codes.Conjugate.random_clifford_circuit rng ~n:10 ~gates:100 in
    ignore (Codes.Conjugate.circuit c (Pauli.random rng 10))

let macwilliams () =
  ignore
    (Codes.Weight_enumerator.macwilliams_transform ~n:23
       (Codes.Weight_enumerator.distribution Codes.Golay.generator))

(* --- simulator throughput -------------------------------------------------- *)

let tableau_343 () =
  let tab = Tableau.create 343 in
  for q = 0 to 341 do
    Tableau.cnot tab q (q + 1)
  done

let statevec_16 () =
  let sv = Statevec.create 16 in
  for q = 0 to 15 do
    Statevec.h sv q
  done

let kernels =
  [ ("e1-steane-ideal-ec-round", e1_memory);
    ("e2-shor-ec-verified", e2_shor_ft);
    ("e2-shor-ec-shared-ancilla", e2_shor_nonft);
    ("e2-steane-ec", e2_steane);
    ("e4-steane-ec-accept-first", e4_accept_first);
    ("e5-cnot-exrec", e5_exrec);
    ("e6-flow-table", e6_flow);
    ("e7-bigcode-table", e7_bigcode);
    ("e8-resource-table", e8_resources);
    ("e9-systematic-sweep", e9_systematic);
    ("e10-toric-unionfind-L12", e10_uf);
    ("e10-toric-greedy-L12", e10_greedy);
    ("e11-charge-interferometer", e11_charge);
    ("e11-commutator-closure-S4", e11_closure);
    ("e12-leak-scrub-block", e12_scrub);
    ("e13-distance-steane", e13_distance);
    ("e14-teleported-toffoli", e14_toffoli);
    ("e16-css-ec-reed-muller", e16_css_ec_rm15);
    ("e6b-pauli-frame-level2", e6b_level2);
    ("e6b-pauli-frame-level3", e6b_level3);
    ("e6b-batch-level2-3200shots", e6b_batch_level2);
    ("e6b-batch-level3-640shots", e6b_batch_level3);
    ("e10-toric-batch-L12-640shots", e10_toric_batch);
    ("e17-level2-ec-cycle", e17_l2_recover);
    ("e18-golay-decode", e18_golay);
    ("e19-noisy-toric-L8x8", e19_noisy_toric);
    ("e11-synthesis-exhaust-depth4", e11_synthesis);
    ("e20-circuit-depth", e20_depth);
    ("codes-exact-steane-4^7-enum", exact_polynomial);
    ("codes-measurement-encoder-5q", measurement_encoder);
    ("codes-conjugate-100-gates", conjugate);
    ("codes-macwilliams-golay", macwilliams);
    ("sim-tableau-cnot-chain-343q", tableau_343);
    ("sim-statevec-h-layer-16q", statevec_16) ]

(* --------------------------------------------------------- full mode *)

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) kernels
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Printf.printf "%-36s %14s %10s\n" "benchmark" "time/run" "r²";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] ->
            let r2 =
              match Analyze.OLS.r_square ols_result with
              | Some r -> Printf.sprintf "%.4f" r
              | None -> "-"
            in
            let time_str =
              if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
              else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
              else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
              else Printf.sprintf "%.1f ns" t
            in
            Printf.printf "%-36s %14s %10s\n%!" name time_str r2
          | _ -> Printf.printf "%-36s %14s\n%!" name "n/a")
        analyzed)
    tests

(* -------------------------------------------------------- smoke mode *)

(* A few wall-clock repetitions per kernel — enough for CI to catch
   order-of-magnitude regressions and produce a machine-readable
   artifact, nowhere near bechamel's statistical rigor. *)
let smoke_run (name, f) =
  f ();
  (* warmup *)
  let budget = 0.25 and max_runs = 8 in
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 in
  while
    !runs = 0
    || (!runs < max_runs && Unix.gettimeofday () -. t0 < budget)
  do
    f ();
    incr runs
  done;
  let mean_ms = (Unix.gettimeofday () -. t0) /. float_of_int !runs *. 1e3 in
  Printf.printf "%-36s %10.3f ms  (%d runs)\n%!" name mean_ms !runs;
  (name, mean_ms, !runs)

(* Sequential vs parallel probe of the shared Monte-Carlo engine on a
   real trial loop (Steane-EC memory).  The two counts must agree —
   that is the engine's domain-count-invariance contract. *)
let parallel_probe () =
  let domains = Mc.Runner.default_domains () in
  let trials = 600 in
  let pnoise = Ft.Noise.gates_only 8e-3 in
  let run d =
    let t0 = Unix.gettimeofday () in
    let e =
      Ft.Memory.steane_ec_failure_mc ~domains:d ~noise:pnoise
        ~policy:Ft.Steane_ec.Repeat_if_nontrivial ~verify:Ft.Steane_ec.Reject
        ~trials ~seed:2026 ()
    in
    (e.Mc.Stats.failures, Unix.gettimeofday () -. t0)
  in
  ignore (run domains);
  (* warm both code paths *)
  let f_seq, t_seq = run 1 in
  let f_par, t_par = run domains in
  let speedup = t_seq /. t_par in
  Printf.printf
    "parallel probe: %d trials, %d domains: seq %.3f s, par %.3f s \
     (%.2fx), counts %d/%d %s\n%!"
    trials domains t_seq t_par speedup f_seq f_par
    (if f_seq = f_par then "agree" else "DISAGREE");
  (trials, domains, t_seq, t_par, speedup, f_seq, f_par)

(* Batch-vs-scalar probe, now a tile-width sweep: shots/sec of the
   legacy per-shot _mc path vs the bit-sliced engine at each tile
   width (64 / 256 / 512 shots per op) at domains:1, plus the
   engine's bit-identity contract — the batch count at {e every}
   width must equal the [`Scalar] cross-check (identical sampled
   noise, per-shot decoding) exactly.  A mismatch fails the bench
   (and hence CI).  The per-width shots/sec land in the committed
   performance trajectory via [--record].

   Kernel choice: steane-level2 and toric-L5 are the standard
   mid-noise kernels; toric-L3-deep runs the paper's deep
   subthreshold regime (p = 2^-12, where almost every shot is clean
   and the word-parallel front-end carries the whole load);
   toric-L3-deep-ckpt is the same workload under a live campaign
   checkpoint (default [flush_every]), where a wider tile amortizes
   the per-chunk ledger append and journal flush over 8x the shots —
   the configuration every long supervised campaign actually runs.

   Timing discipline: widths are measured interleaved round-robin
   with the best of [probe_rounds] kept per width, because this
   container's clock jitter between back-to-back runs (~2x worst
   case) would otherwise masquerade as a width effect. *)
let tile_widths = [ 64; 256; 512 ]
let probe_rounds = 5

type width_probe_entry = {
  wp_name : string;
  wp_trials : int;
  wp_mc_sps : float;
  wp_mc_fail : int;
  wp_cross_fail : int;
  wp_widths : (int * float * int) list; (* width, shots/s, failures *)
  wp_identical : bool;
}

let batch_probe () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let probe name ~trials ~mc ~batch ~crosscheck =
    ignore (mc ());
    ignore (batch 64 ());
    (* warm both paths *)
    let mc_fail, t_mc = time mc in
    let c_fail, _ = time crosscheck in
    let mc_sps = float_of_int trials /. t_mc in
    let wa = Array.of_list tile_widths in
    let nw = Array.length wa in
    let best = Array.make nw infinity in
    let fails = Array.make nw 0 in
    Array.iter (fun w -> ignore (batch w ())) wa;
    (* warm every width *)
    for _ = 1 to probe_rounds do
      Array.iteri
        (fun i w ->
          let b_fail, t_b = time (batch w) in
          fails.(i) <- b_fail;
          if t_b < best.(i) then best.(i) <- t_b)
        wa
    done;
    let widths =
      List.init nw (fun i ->
          (wa.(i), float_of_int trials /. best.(i), fails.(i)))
    in
    let identical = List.for_all (fun (_, _, bf) -> bf = c_fail) widths in
    let base_sps = match widths with (_, s, _) :: _ -> s | [] -> 1.0 in
    Printf.printf "batch probe %-16s mc %9.0f shots/s%s\n%!" name mc_sps
      (String.concat ""
         (List.map
            (fun (w, sps, _) ->
              Printf.sprintf ", w%d %9.0f/s (%4.2fx)" w sps (sps /. base_sps))
            widths));
    Printf.printf
      "            %-16s widths %s vs scalar cross-check %d: %s\n%!" name
      (String.concat "/"
         (List.map (fun (_, _, bf) -> string_of_int bf) widths))
      c_fail
      (if identical then "bit-identical" else "DISAGREE");
    {
      wp_name = name;
      wp_trials = trials;
      wp_mc_sps = mc_sps;
      wp_mc_fail = mc_fail;
      wp_cross_fail = c_fail;
      wp_widths = widths;
      wp_identical = identical;
    }
  in
  let steane_trials = 20000 in
  let steane engine () =
    (match engine with
    | `Mc ->
      Codes.Pauli_frame.memory_failure_mc ~domains:1 ~level:2 ~eps:0.01
        ~rounds:1 ~trials:steane_trials ~seed:909 ()
    | `Batch w ->
      Codes.Pauli_frame.memory_failure_batch ~domains:1 ~tile_width:w
        ~level:2 ~eps:0.01 ~rounds:1 ~trials:steane_trials ~seed:909 ()
    | `Cross ->
      Codes.Pauli_frame.memory_failure_batch ~domains:1 ~engine:`Scalar
        ~level:2 ~eps:0.01 ~rounds:1 ~trials:steane_trials ~seed:909 ())
      .Mc.Stats.failures
  in
  let toric_trials = 20000 in
  let toric engine () =
    (match engine with
    | `Mc ->
      Toric.Memory.run_mc ~domains:1 ~l:5 ~p:0.05 ~trials:toric_trials
        ~seed:910 ()
    | `Batch w ->
      Toric.Memory.run_batch ~domains:1 ~tile_width:w ~l:5 ~p:0.05
        ~trials:toric_trials ~seed:910 ()
    | `Cross ->
      Toric.Memory.run_batch ~domains:1 ~engine:`Scalar ~l:5 ~p:0.05
        ~trials:toric_trials ~seed:910 ())
      .Toric.Memory.failures
  in
  (* deep subthreshold: p = 2^-12 (a 12-draw dyadic plan), l = 3;
     1M shots keeps each width's run well above timer jitter *)
  let deep_trials = 1_000_000 and deep_p = 0.000244140625 in
  let deep engine () =
    (match engine with
    | `Mc ->
      Toric.Memory.run_mc ~domains:1 ~l:3 ~p:deep_p ~trials:deep_trials
        ~seed:911 ()
    | `Batch w ->
      Toric.Memory.run_batch ~domains:1 ~tile_width:w ~l:3 ~p:deep_p
        ~trials:deep_trials ~seed:911 ()
    | `Cross ->
      Toric.Memory.run_batch ~domains:1 ~engine:`Scalar ~l:3 ~p:deep_p
        ~trials:deep_trials ~seed:911 ())
      .Toric.Memory.failures
  in
  (* the same deep workload under a live checkpoint: each run journals
     into a fresh campaign file (created and deleted inside the timed
     region — that is the cost a supervised campaign pays), chunk
     granularity = tile width, default flush cadence.  Counts are
     campaign-invariant, so the scalar cross-check needs no ledger. *)
  let ckpt_trials = 50_000 in
  let deep_ckpt engine () =
    (match engine with
    | `Mc ->
      Toric.Memory.run_mc ~domains:1 ~l:3 ~p:deep_p ~trials:ckpt_trials
        ~seed:912 ()
    | `Batch w ->
      let file = Filename.temp_file "ftqc_bench_ckpt" ".json" in
      Sys.remove file;
      Fun.protect
        ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
        (fun () ->
          let c =
            match Mc.Campaign.create file with
            | Ok c -> c
            | Error m -> failwith m
          in
          Toric.Memory.run_batch ~domains:1 ~campaign:c ~tile_width:w ~l:3
            ~p:deep_p ~trials:ckpt_trials ~seed:912 ())
    | `Cross ->
      Toric.Memory.run_batch ~domains:1 ~engine:`Scalar ~l:3 ~p:deep_p
        ~trials:ckpt_trials ~seed:912 ())
      .Toric.Memory.failures
  in
  (* the generic CSS pipeline's heaviest zoo member: [[23,1,7]] Golay
     at one memory round, batch-classified through the per-shot memo
     path (22 checks is far beyond the OR-mux cutoff) *)
  let css_trials = 20000 in
  let golay = Csskit.Zoo.get "golay23" in
  let css engine () =
    (match engine with
    | `Mc ->
      Csskit.Memory.memory_failure_mc ~domains:1 golay ~eps:0.08 ~rounds:1
        ~trials:css_trials ~seed:913 ()
    | `Batch w ->
      Csskit.Memory.memory_failure_batch ~domains:1 ~tile_width:w golay
        ~eps:0.08 ~rounds:1 ~trials:css_trials ~seed:913 ()
    | `Cross ->
      Csskit.Memory.memory_failure_batch ~domains:1 ~engine:`Scalar golay
        ~eps:0.08 ~rounds:1 ~trials:css_trials ~seed:913 ())
      .Mc.Stats.failures
  in
  [ probe "steane-level2" ~trials:steane_trials ~mc:(steane `Mc)
      ~batch:(fun w -> steane (`Batch w))
      ~crosscheck:(steane `Cross);
    probe "css-golay-L1" ~trials:css_trials ~mc:(css `Mc)
      ~batch:(fun w -> css (`Batch w))
      ~crosscheck:(css `Cross);
    probe "toric-L5" ~trials:toric_trials ~mc:(toric `Mc)
      ~batch:(fun w -> toric (`Batch w))
      ~crosscheck:(toric `Cross);
    probe "toric-L3-deep" ~trials:deep_trials ~mc:(deep `Mc)
      ~batch:(fun w -> deep (`Batch w))
      ~crosscheck:(deep `Cross);
    probe "toric-L3-deep-ckpt" ~trials:ckpt_trials ~mc:(deep_ckpt `Mc)
      ~batch:(fun w -> deep_ckpt (`Batch w))
      ~crosscheck:(deep_ckpt `Cross) ]

(* Rare-engine probe: evaluations/sec of the weight-class subset
   sampler on the two deep-subthreshold kernels the engine exists
   for.  steane-L2-rare evaluates the level-2 Pauli-frame model (49
   locations x 3 Pauli kinds; weight-2 and up stratified-sampled);
   toric-L3-deep-rare enumerates every class up to weight 4 exactly
   (18 single-kind locations — zero sampling variance) at the same
   p = 2^-12 the batch deep kernel runs.  The trajectory records
   evals/sec per kernel with the truncation order standing in for the
   tile width.  The probe also asserts the estimate's basic sanity —
   an ordered, nonnegative interval with the truncation bound folded
   into its upper edge. *)
type rare_probe_entry = {
  rp_name : string;
  rp_max_weight : int;
  rp_evals : int;
  rp_evals_per_s : float;
  rp_rate : float;
  rp_ci_low : float;
  rp_ci_high : float;
  rp_sane : bool;
}

let rare_probe () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let probe name ~max_weight run =
    ignore (run ());
    (* warm *)
    let (w : Mc.Stats.weighted), t = time run in
    let evals_per_s = float_of_int w.evals /. t in
    let sane =
      Float.is_finite w.rate && w.ci_low >= 0.0 && w.rate >= w.ci_low
      && w.ci_high >= w.rate
    in
    Printf.printf
      "rare probe %-18s W%d: %d evals in %.3f s (%9.0f evals/s), rate \
       %.4g in [%.4g, %.4g] %s\n%!"
      name max_weight w.evals t evals_per_s w.rate w.ci_low w.ci_high
      (if sane then "sane" else "INSANE");
    {
      rp_name = name;
      rp_max_weight = max_weight;
      rp_evals = w.evals;
      rp_evals_per_s = evals_per_s;
      rp_rate = w.rate;
      rp_ci_low = w.ci_low;
      rp_ci_high = w.ci_high;
      rp_sane = sane;
    }
  in
  let deep_p = 0.000244140625 in
  let steane_cfg = { Mc.Engine.default_rare with max_weight = 3 } in
  let toric_cfg = { Mc.Engine.default_rare with max_weight = 4 } in
  [ probe "steane-L2-rare" ~max_weight:steane_cfg.max_weight (fun () ->
        Codes.Pauli_frame.memory_failure_rare ~domains:1 ~config:steane_cfg
          ~level:2 ~eps:1e-3 ~rounds:1 ~seed:913 ());
    probe "toric-L3-deep-rare" ~max_weight:toric_cfg.max_weight (fun () ->
        Toric.Memory.run_rare ~domains:1 ~config:toric_cfg ~l:3 ~p:deep_p
          ~seed:914 ()) ]

(* Crash-recovery probe: run a checkpointed campaign, interrupt it at
   a deterministic chunk (a chaos hook raising the same stop flag a
   SIGINT would), resume from the checkpoint file, and require the
   resumed count to equal an uninterrupted reference bit-for-bit. *)
let resume_probe () =
  let trials = 50_000 and chunk = 500 and seed = 2027 in
  (* a cheap Bernoulli body keeps the probe's wall-time small; what is
     under test is the checkpoint/resume machinery, not a gadget *)
  let trial rng _ = Random.State.float rng 1.0 < 0.1 in
  let reference =
    Mc.Runner.failures ~domains:1 ~chunk ~trials ~seed (Mc.Runner.scalar trial)
  in
  let file = Filename.temp_file "ftqc_bench_resume" ".json" in
  Sys.remove file;
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Mc.Campaign.reset_stop ();
      let c =
        match Mc.Campaign.create ~flush_every:1 file with
        | Ok c -> c
        | Error m -> failwith m
      in
      (match
         Mc.Runner.failures ~domains:2 ~chunk ~campaign:c ~trials ~seed
           ~chaos:(Mc.Chaos.at_chunk ~chunk:20 Mc.Campaign.request_stop)
           (Mc.Runner.scalar trial)
       with
      | _ -> ()
      | exception Mc.Campaign.Interrupted _ -> ());
      Mc.Campaign.reset_stop ();
      let c' =
        match Mc.Campaign.load file with
        | Ok c -> c
        | Error m -> failwith m
      in
      let resumed =
        Mc.Runner.failures ~domains:2 ~chunk ~campaign:c' ~trials ~seed
          (Mc.Runner.scalar trial)
      in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf
        "resume probe: %d trials interrupted+resumed in %.3f s, counts %d/%d \
         %s\n%!"
        trials dt reference resumed
        (if reference = resumed then "agree" else "DISAGREE");
      (trials, dt, reference, resumed))

(* Service round-trip probe: an in-process ftqcd on a temp socket.
   Measures cold (fresh job) latency, cache-hit latency and ping
   round-trips/sec, and checks the byte-identity contract: the cached
   reply must equal the fresh one, and both must equal the result
   frame a direct in-process run of the same estimator produces. *)
let service_probe () =
  Mc.Campaign.reset_stop ();
  let socket = Filename.temp_file "ftqc_bench_svc" ".sock" in
  Sys.remove socket;
  let cfg =
    Svc.Server.config ~workers:2 ~cache_capacity:8 ~progress_interval:5.0
      ~socket ()
  in
  let th = Thread.create (fun () -> Svc.Server.run cfg) () in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n = 0 then failwith "service probe: daemon did not start"
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  Fun.protect
    ~finally:(fun () ->
      Mc.Campaign.request_stop ();
      Thread.join th;
      Mc.Campaign.reset_stop ())
    (fun () ->
      let est seed =
        Svc.Protocol.Toric_memory
          { l = 8; p = 0.08; trials = 2000; seed; engine = `Scalar;
            tile_width = 64 }
      in
      let request seed () =
        match
          Svc.Client.with_connection ~socket (fun fd ->
              Svc.Client.request fd (est seed))
        with
        | Ok (Ok o) -> o
        | Ok (Error e) ->
          failwith (Printf.sprintf "service probe: %s: %s" e.code e.message)
        | Error msg -> failwith ("service probe: " ^ msg)
      in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let v = f () in
        (v, Unix.gettimeofday () -. t0)
      in
      (* each latency is the best of three — a single ~30 ms sample
         carries enough scheduler jitter to trip the trajectory
         gate's 2x ceiling; distinct seeds keep every cold request a
         genuine cache miss *)
      let fresh, cold1 = timed (request 2026) in
      let cached, hit1 = timed (request 2026) in
      let _, cold2 = timed (request 2027) in
      let _, cold3 = timed (request 2028) in
      let _, hit2 = timed (request 2026) in
      let _, hit3 = timed (request 2026) in
      let cold_s = min cold1 (min cold2 cold3) in
      let hit_s = min hit1 (min hit2 hit3) in
      let direct = Svc.Server.execute (est 2026) in
      let expected =
        Svc.Codec.encode
          (Svc.Protocol.result_frame
             ~key:(Svc.Protocol.to_canonical (Run (est 2026)))
             direct)
      in
      let identical =
        (not fresh.cached) && cached.cached
        && fresh.raw_result = cached.raw_result
        && fresh.raw_result = expected
      in
      let pings = 200 in
      let (), ping_dt =
        timed (fun () ->
            match
              Svc.Client.with_connection ~socket (fun fd ->
                  for _ = 1 to pings do
                    match Svc.Client.ping fd with
                    | Ok () -> ()
                    | Error e -> failwith ("service probe ping: " ^ e.message)
                  done)
            with
            | Ok () -> ()
            | Error msg -> failwith ("service probe: " ^ msg))
      in
      let rps = float_of_int pings /. ping_dt in
      Printf.printf
        "service probe: cold %.3f s, cache hit %.4f s, %.0f pings/s, \
         replies %s\n%!"
        cold_s hit_s rps
        (if identical then "byte-identical" else "DISAGREE");
      (cold_s, hit_s, rps, identical))

(* The artifact uses the same ftqc-manifest/1 schema as
   `experiments --json` (one record per kernel/probe), so one
   validator — bin/manifest_check.ml — covers both CI artifacts.
   With [--record], the width-probe shots/sec and daemon latencies
   are additionally appended to the performance trajectory. *)
let run_smoke ~out ~record ~trajectory ~label =
  let entries = List.map smoke_run kernels in
  let trials, domains, t_seq, t_par, speedup, f_seq, f_par =
    parallel_probe ()
  in
  let agree = f_seq = f_par in
  let batch_entries = batch_probe () in
  let rare_entries = rare_probe () in
  let r_trials, r_dt, r_ref, r_resumed = resume_probe () in
  let resume_agree = r_ref = r_resumed in
  let svc_cold, svc_hit, svc_rps, svc_identical = service_probe () in
  let m = Obs.Manifest.create () in
  let count name ~failures ~trials =
    let e = Mc.Stats.estimate ~failures ~trials () in
    {
      Obs.Manifest.name;
      failures = e.failures;
      trials_used = e.trials;
      rate = e.rate;
      ci_lo = e.ci_low;
      ci_hi = e.ci_high;
    }
  in
  List.iter
    (fun (name, mean_ms, runs) ->
      Obs.Manifest.add m
        {
          Obs.Manifest.experiment = "bench:" ^ name;
          params = [ ("runs", Obs.Json.Int runs) ];
          results = [];
          telemetry =
            [ ("wall_s", Obs.Json.Float (mean_ms /. 1e3 *. float_of_int runs));
              ("mean_ms", Obs.Json.Float mean_ms) ];
        })
    entries;
  Obs.Manifest.add m
    {
      Obs.Manifest.experiment = "bench:parallel-probe";
      params =
        [ ("trials", Obs.Json.Int trials); ("domains", Obs.Json.Int domains) ];
      results =
        [ count "seq" ~failures:f_seq ~trials;
          count "par" ~failures:f_par ~trials ];
      telemetry =
        [ ("wall_s", Obs.Json.Float (t_seq +. t_par));
          ("seq_s", Obs.Json.Float t_seq);
          ("par_s", Obs.Json.Float t_par);
          ("speedup", Obs.Json.Float speedup);
          ("identical_counts", Obs.Json.Bool agree) ];
    };
  List.iter
    (fun wp ->
      let b_sps =
        match wp.wp_widths with (_, s, _) :: _ -> s | [] -> 0.0
      in
      let bf =
        match wp.wp_widths with (_, _, f) :: _ -> f | [] -> 0
      in
      Obs.Manifest.add m
        {
          Obs.Manifest.experiment = "bench:batch-" ^ wp.wp_name;
          params = [ ("trials", Obs.Json.Int wp.wp_trials) ];
          results =
            [ count "batch" ~failures:bf ~trials:wp.wp_trials;
              count "crosscheck" ~failures:wp.wp_cross_fail
                ~trials:wp.wp_trials ];
          telemetry =
            [ ("wall_s", Obs.Json.Float 0.0);
              ("mc_shots_per_s", Obs.Json.Float wp.wp_mc_sps);
              ("batch_shots_per_s", Obs.Json.Float b_sps);
              ("speedup", Obs.Json.Float (b_sps /. wp.wp_mc_sps));
              ( "widths",
                Obs.Json.List
                  (List.map
                     (fun (w, sps, _) ->
                       Obs.Json.Obj
                         [ ("width", Obs.Json.Int w);
                           ("shots_per_s", Obs.Json.Float sps) ])
                     wp.wp_widths) );
              ("identical_counts", Obs.Json.Bool wp.wp_identical) ];
        })
    batch_entries;
  List.iter
    (fun rp ->
      Obs.Manifest.add m
        {
          Obs.Manifest.experiment = "bench:rare-" ^ rp.rp_name;
          params = [ ("max_weight", Obs.Json.Int rp.rp_max_weight) ];
          results = [];
          telemetry =
            [ ("wall_s", Obs.Json.Float 0.0);
              ("evals", Obs.Json.Int rp.rp_evals);
              ("evals_per_s", Obs.Json.Float rp.rp_evals_per_s);
              ("rate", Obs.Json.Float rp.rp_rate);
              ("ci_low", Obs.Json.Float rp.rp_ci_low);
              ("ci_high", Obs.Json.Float rp.rp_ci_high);
              ("sane", Obs.Json.Bool rp.rp_sane) ];
        })
    rare_entries;
  Obs.Manifest.add m
    {
      Obs.Manifest.experiment = "bench:resume-probe";
      params = [ ("trials", Obs.Json.Int r_trials) ];
      results =
        [ count "reference" ~failures:r_ref ~trials:r_trials;
          count "resumed" ~failures:r_resumed ~trials:r_trials ];
      telemetry =
        [ ("wall_s", Obs.Json.Float r_dt);
          ("identical_counts", Obs.Json.Bool resume_agree) ];
    };
  Obs.Manifest.add m
    {
      Obs.Manifest.experiment = "bench:service-probe";
      params = [];
      results = [];
      telemetry =
        [ ("wall_s", Obs.Json.Float (svc_cold +. svc_hit));
          ("cold_request_s", Obs.Json.Float svc_cold);
          ("cache_hit_s", Obs.Json.Float svc_hit);
          ("requests_per_s", Obs.Json.Float svc_rps);
          ("identical_replies", Obs.Json.Bool svc_identical) ];
    };
  Obs.Manifest.write ~generator:"bench-smoke" m ~file:out;
  Printf.printf "wrote %s\n%!" out;
  if record then begin
    let entry =
      {
        Obs.Perf.label;
        kernels =
          List.concat_map
            (fun wp ->
              List.map
                (fun (w, sps, _) ->
                  { Obs.Perf.name = wp.wp_name; width = w; shots_per_s = sps })
                wp.wp_widths)
            batch_entries
          @ List.map
              (fun rp ->
                (* the truncation order plays the width's role in the
                   trajectory key; shots_per_s is evals/sec *)
                {
                  Obs.Perf.name = rp.rp_name;
                  width = rp.rp_max_weight;
                  shots_per_s = rp.rp_evals_per_s;
                })
              rare_entries;
        daemon = Some { Obs.Perf.cold_s = svc_cold; hit_s = svc_hit };
      }
    in
    Obs.Perf.append ~file:trajectory entry;
    Printf.printf "recorded trajectory entry %S in %s\n%!" label trajectory
  end;
  let disagree =
    (not agree) || List.exists (fun wp -> not wp.wp_identical) batch_entries
  in
  if disagree then begin
    Printf.eprintf
      "FATAL: batch/scalar failure counts disagree (see %s)\n" out;
    exit 1
  end;
  if List.exists (fun rp -> not rp.rp_sane) rare_entries then begin
    Printf.eprintf
      "FATAL: rare-engine estimate violates its interval invariants (see \
       %s)\n"
      out;
    exit 1
  end;
  if not resume_agree then begin
    Printf.eprintf
      "FATAL: interrupted+resumed campaign count differs from the \
       uninterrupted reference (see %s)\n"
      out;
    exit 1
  end;
  if not svc_identical then begin
    Printf.eprintf
      "FATAL: service replies are not byte-identical to the direct run \
       (see %s)\n"
      out;
    exit 1
  end

(* --------------------------------------------------------------- CLI *)

let () =
  let smoke = ref false and out = ref "BENCH_smoke.json" in
  let record = ref false
  and trajectory = ref "BENCH_trajectory.json"
  and label = ref "local"
  and trace = ref None in
  let usage () =
    Printf.eprintf
      "usage: bench [--smoke [--out FILE]] [--record [--trajectory FILE] \
       [--label NAME]] [--tile-width N] [--trace FILE]\n";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | "--record" :: rest ->
      (* recording runs the smoke probes (that is where the width
         sweep and daemon latencies come from) *)
      smoke := true;
      record := true;
      parse rest
    | "--trajectory" :: file :: rest ->
      trajectory := file;
      parse rest
    | "--label" :: name :: rest ->
      label := name;
      parse rest
    | "--trace" :: file :: rest ->
      (* ftqc-trace/1 span trace (Perfetto-loadable); observational
         only — measured numbers and outputs are unchanged *)
      trace := Some file;
      parse rest
    | "--tile-width" :: w :: rest -> (
      match int_of_string_opt w with
      | Some w when w >= 64 && w mod 64 = 0 ->
        cli_tile_width := w;
        parse rest
      | _ ->
        Printf.eprintf "bench: --tile-width must be a positive multiple of 64\n";
        exit 2)
    | arg :: _ ->
      Printf.eprintf "bench: unknown argument %S\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sink =
    match !trace with
    | None -> None
    | Some _ ->
      let sk = Obs.Trace.sink () in
      Obs.Trace.install (Some sk);
      Some sk
  in
  (if !smoke then
     run_smoke ~out:!out ~record:!record ~trajectory:!trajectory ~label:!label
   else run_bechamel ());
  match (!trace, sink) with
  | Some file, Some sk ->
    Obs.Trace.install None;
    Obs.Trace.write sk ~file;
    Printf.eprintf "wrote trace (%d spans) to %s\n%!"
      (Obs.Trace.sink_length sk) file
  | _ -> ()
