(* Bechamel benchmarks: one Test.make per experiment family (the
   kernel that regenerates each table/figure of EXPERIMENTS.md) plus
   the ablations called out in DESIGN.md (Shor vs Steane extraction,
   syndrome-repetition policy, union-find vs greedy toric decoding,
   simulator throughput).  Prints mean wall-clock time per run. *)

open Bechamel
open Toolkit
open Ftqc

let rng = Random.State.make [| 77 |]
let steane = Codes.Steane.code

let prep_block sim ~offset =
  let n = Ft.Sim.num_qubits sim in
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g ->
      ignore
        (Tableau.postselect_pauli tab
           (Codes.Stabilizer_code.embed steane ~offset ~total:n g)
           ~outcome:false))
    steane.generators;
  ignore
    (Tableau.postselect_pauli tab
       (Codes.Stabilizer_code.embed steane ~offset ~total:n
          steane.logical_z.(0))
       ~outcome:false)

(* --- E1: encoded memory round ---------------------------------------- *)

let bench_e1_memory =
  Test.make ~name:"e1-steane-ideal-ec-round"
    (Staged.stage (fun () ->
         ignore
           (Ft.Memory.encoded_ideal_ec steane ~eps:1e-2 ~rounds:1 ~trials:10
              rng)))

(* --- E2: syndrome extraction gadgets (ablation: Shor vs Steane vs
       non-FT) -------------------------------------------------------- *)

let noise = Ft.Noise.gates_only 1e-3

let bench_shor_ec verified name =
  Test.make ~name
    (Staged.stage (fun () ->
         let sim = Ft.Sim.create ~n:12 ~noise rng in
         prep_block sim ~offset:0;
         ignore
           (Ft.Shor_ec.recover sim steane
              ~policy:Ft.Shor_ec.Repeat_if_nontrivial ~offset:0 ~cat_base:7
              ~check:11 ~verified)))

let bench_e2_shor_ft = bench_shor_ec true "e2-shor-ec-verified"
let bench_e2_shor_nonft = bench_shor_ec false "e2-shor-ec-shared-ancilla"

let bench_steane_ec policy name =
  Test.make ~name
    (Staged.stage (fun () ->
         let sim = Ft.Sim.create ~n:21 ~noise rng in
         prep_block sim ~offset:0;
         ignore
           (Ft.Steane_ec.recover sim ~policy ~verify:Ft.Steane_ec.Reject
              ~data:0 ~ancilla:7 ~checker:14)))

let bench_e2_steane =
  bench_steane_ec Ft.Steane_ec.Repeat_if_nontrivial "e2-steane-ec"

(* --- E4 ablation: syndrome acceptance policy -------------------------- *)

let bench_e4_accept_first =
  bench_steane_ec Ft.Steane_ec.Accept_first "e4-steane-ec-accept-first"

(* --- E5: logical CNOT extended rectangle ------------------------------- *)

let bench_e5_exrec =
  Test.make ~name:"e5-cnot-exrec"
    (Staged.stage (fun () ->
         ignore (Ft.Memory.logical_cnot_exrec_failure ~noise ~trials:5 rng)))

(* --- E6/E7/E8: analytic tables ----------------------------------------- *)

let bench_e6_flow =
  Test.make ~name:"e6-flow-table"
    (Staged.stage (fun () ->
         List.iter
           (fun eps ->
             for l = 0 to 4 do
               ignore (Threshold.Flow.level_error ~a:21.0 ~eps ~level:l)
             done;
             ignore (Threshold.Flow.block_size_for ~a:21.0 ~eps ~gates:3e9))
           [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6 ]))

let bench_e7_bigcode =
  Test.make ~name:"e7-bigcode-table"
    (Staged.stage (fun () ->
         List.iter
           (fun eps ->
             ignore (Threshold.Bigcode.best_integer_t ~b:4.0 ~eps ~t_max:1000))
           [ 1e-4; 1e-5; 1e-6; 1e-7 ]))

let bench_e8_resources =
  Test.make ~name:"e8-resource-table"
    (Staged.stage (fun () ->
         List.iter
           (fun bits ->
             ignore (Threshold.Resources.estimate ~bits ~physical_eps:1e-6 ()))
           [ 128; 256; 432; 512; 1024 ]))

(* --- E9: systematic error sweep ---------------------------------------- *)

let bench_e9_systematic =
  Test.make ~name:"e9-systematic-sweep"
    (Staged.stage (fun () ->
         ignore
           (Ft.Systematic.crossover_table ~theta:0.01
              ~steps_list:[ 1; 10; 100 ] ~trials:20 rng)))

(* --- E10: toric decoding (ablation: union-find vs greedy) -------------- *)

let toric_bench decoder name =
  let lat = Toric.Lattice.create 12 in
  let n = Toric.Lattice.num_qubits lat in
  Test.make ~name
    (Staged.stage (fun () ->
         let e = Gf2.Bitvec.create n in
         Gf2.Bitvec.randomize ~p:0.08 rng e;
         let s = Toric.Lattice.syndrome lat e in
         ignore (decoder lat s)))

let bench_e10_uf = toric_bench Toric.Decoder.decode "e10-toric-unionfind-L12"

let bench_e10_greedy =
  toric_bench Toric.Decoder.greedy_decode "e10-toric-greedy-L12"

(* --- E11: anyon substrate ----------------------------------------------- *)

let bench_e11_charge =
  let a5 = Group.Finite_group.alternating 5 in
  let u0, _, v = Anyon.Register.paper_a5_encoding () in
  Test.make ~name:"e11-charge-interferometer"
    (Staged.stage (fun () ->
         let pair = Anyon.Pair_sim.create a5 ~class_rep:u0 in
         ignore (Anyon.Pair_sim.measure_charge pair rng ~projectile:v)))

let bench_e11_closure =
  let s4 = Group.Finite_group.symmetric 4 in
  Test.make ~name:"e11-commutator-closure-S4"
    (Staged.stage (fun () ->
         ignore (Anyon.Logic.commutator_closure_depth s4 ~max_depth:12)))

(* --- E12: leakage scrub -------------------------------------------------- *)

let bench_e12_scrub =
  Test.make ~name:"e12-leak-scrub-block"
    (Staged.stage (fun () ->
         let t =
           Ft.Leakage.create ~n:8 ~noise:Ft.Noise.none ~leak_rate:0.0 rng
         in
         Ft.Leakage.leak t 3;
         ignore
           (Ft.Leakage.scrub t ~qubits:[ 0; 1; 2; 3; 4; 5; 6 ] ~ancilla:7)))

(* --- E13: code machinery -------------------------------------------------- *)

let bench_e13_distance =
  Test.make ~name:"e13-distance-steane"
    (Staged.stage (fun () -> ignore (Codes.Stabilizer_code.distance steane)))

(* --- E14: FT Toffoli ------------------------------------------------------- *)

let bench_e14_toffoli =
  Test.make ~name:"e14-teleported-toffoli"
    (Staged.stage (fun () ->
         let sv = Statevec.create 7 in
         Statevec.h sv 0;
         Statevec.h sv 1;
         Ft.Toffoli.apply sv rng ~data:(0, 1, 2) ~scratch:(3, 4, 5) ~control:6))

(* --- E16: generalized CSS EC / E6b: pauli frame ----------------------------- *)

let bench_e16_css_ec_rm15 =
  let gadget = Ft.Css_ec.for_reed_muller () in
  Test.make ~name:"e16-css-ec-reed-muller"
    (Staged.stage (fun () ->
         let sim = Ft.Sim.create ~n:45 ~noise rng in
         ignore
           (Ft.Css_ec.recover sim gadget
              ~policy:Ft.Css_ec.Repeat_if_nontrivial ~data:0 ~ancilla:15
              ~checker:30 ~max_attempts:25)))

let bench_e6b_level2 =
  Test.make ~name:"e6b-pauli-frame-level2"
    (Staged.stage (fun () ->
         ignore
           (Codes.Pauli_frame.memory_failure ~level:2 ~eps:0.02 ~rounds:1
              ~trials:50 rng)))

let bench_e6b_level3 =
  Test.make ~name:"e6b-pauli-frame-level3"
    (Staged.stage (fun () ->
         ignore
           (Codes.Pauli_frame.memory_failure ~level:3 ~eps:0.02 ~rounds:1
              ~trials:10 rng)))

(* --- E17..E20 ---------------------------------------------------------------- *)

let bench_e17_l2_recover =
  Test.make ~name:"e17-level2-ec-cycle"
    (Staged.stage (fun () ->
         let total = 49 + Ft.Concat_ec.scratch_qubits in
         let sim = Ft.Sim.create ~n:total ~noise:Ft.Noise.none rng in
         let tab = Ft.Sim.tableau sim in
         let code2 = Codes.Concat.steane_level 2 in
         Array.iter
           (fun g ->
             ignore
               (Tableau.postselect_pauli tab
                  (Codes.Stabilizer_code.embed code2 ~offset:0 ~total g)
                  ~outcome:false))
           code2.generators;
         Ft.Concat_ec.recover_l2 sim ~data:0 ~scratch:49 ~max_attempts:10))

let bench_e18_golay =
  Test.make ~name:"e18-golay-decode"
    (Staged.stage (fun () ->
         let w = Gf2.Bitvec.create 23 in
         Gf2.Bitvec.randomize ~p:0.1 rng w;
         ignore (Codes.Golay.decode w)))

let bench_e19_noisy_toric =
  Test.make ~name:"e19-noisy-toric-L8x8"
    (Staged.stage (fun () ->
         ignore
           (Toric.Noisy_memory.run ~l:8 ~rounds:8 ~p:0.02 ~q:0.02 ~trials:1
              rng)))

let bench_e11_synthesis =
  Test.make ~name:"e11-synthesis-exhaust-depth4"
    (Staged.stage (fun () ->
         ignore (Anyon.Synthesis.no_cnot_without_ancilla ~max_depth:4)))

let bench_e20_depth =
  Test.make ~name:"e20-circuit-depth"
    (Staged.stage (fun () ->
         ignore (Circuit.depth (Ft.Steane_ec.syndrome_extraction_circuit ()))))

(* --- code machinery ---------------------------------------------------------- *)

let bench_exact_polynomial =
  Test.make ~name:"codes-exact-steane-4^7-enum"
    (Staged.stage (fun () ->
         ignore
           (Codes.Exact.failure_polynomial Codes.Steane.code
              (Codes.Steane.css_decoder ()))))

let bench_measurement_encoder =
  Test.make ~name:"codes-measurement-encoder-5q"
    (Staged.stage (fun () ->
         let c =
           Codes.Stabilizer_code.encoding_circuit_via_measurement
             Codes.Five_qubit.code
         in
         let sv = Statevec.create 6 in
         ignore (Statevec.run sv c)))

let bench_conjugate =
  Test.make ~name:"codes-conjugate-100-gates"
    (Staged.stage (fun () ->
         let c = Codes.Conjugate.random_clifford_circuit rng ~n:10 ~gates:100 in
         ignore (Codes.Conjugate.circuit c (Pauli.random rng 10))))

let bench_macwilliams =
  Test.make ~name:"codes-macwilliams-golay"
    (Staged.stage (fun () ->
         ignore
           (Codes.Weight_enumerator.macwilliams_transform ~n:23
              (Codes.Weight_enumerator.distribution Codes.Golay.generator))))

(* --- simulator throughput -------------------------------------------------- *)

let bench_tableau_343 =
  Test.make ~name:"sim-tableau-cnot-chain-343q"
    (Staged.stage (fun () ->
         let tab = Tableau.create 343 in
         for q = 0 to 341 do
           Tableau.cnot tab q (q + 1)
         done))

let bench_statevec_16 =
  Test.make ~name:"sim-statevec-h-layer-16q"
    (Staged.stage (fun () ->
         let sv = Statevec.create 16 in
         for q = 0 to 15 do
           Statevec.h sv q
         done))

let tests =
  [ bench_e1_memory; bench_e2_shor_ft; bench_e2_shor_nonft; bench_e2_steane;
    bench_e4_accept_first; bench_e5_exrec; bench_e6_flow; bench_e7_bigcode;
    bench_e8_resources; bench_e9_systematic; bench_e10_uf; bench_e10_greedy;
    bench_e11_charge; bench_e11_closure; bench_e12_scrub; bench_e13_distance;
    bench_e14_toffoli; bench_e16_css_ec_rm15; bench_e6b_level2;
    bench_e6b_level3; bench_e17_l2_recover; bench_e18_golay;
    bench_e19_noisy_toric; bench_e11_synthesis; bench_e20_depth;
    bench_exact_polynomial; bench_measurement_encoder; bench_conjugate;
    bench_macwilliams; bench_tableau_343; bench_statevec_16 ]

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Printf.printf "%-36s %14s %10s\n" "benchmark" "time/run" "r²";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] ->
            let r2 =
              match Analyze.OLS.r_square ols_result with
              | Some r -> Printf.sprintf "%.4f" r
              | None -> "-"
            in
            let time_str =
              if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
              else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
              else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
              else Printf.sprintf "%.1f ns" t
            in
            Printf.printf "%-36s %14s %10s\n%!" name time_str r2
          | _ -> Printf.printf "%-36s %14s\n%!" name "n/a")
        analyzed)
    tests
