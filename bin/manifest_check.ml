(* Validate ftqc-manifest/1 documents (CI gate: the manifest written
   by `experiments --json` and the bench-smoke artifact must parse and
   every result's Wilson interval must bracket its rate).  Exits 0
   when every file validates, 1 otherwise. *)

let check file =
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ftqc.Obs.Json.of_string s
  with
  | exception Sys_error msg ->
    Printf.eprintf "%s: %s\n" file msg;
    false
  | Error msg ->
    Printf.eprintf "%s: JSON parse error: %s\n" file msg;
    false
  | Ok j -> (
    match Ftqc.Obs.Manifest.validate j with
    | Ok n ->
      Printf.printf "%s: ok (%d records)\n" file n;
      true
    | Error msg ->
      Printf.eprintf "%s: invalid manifest: %s\n" file msg;
      false)

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as files) ->
    let ok = List.for_all check files in
    exit (if ok then 0 else 1)
  | _ ->
    prerr_endline "usage: manifest_check FILE...";
    exit 2
