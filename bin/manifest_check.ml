(* Validate ftqc-manifest/1, ftqc-checkpoint/1 and ftqc-trace/1
   documents (CI gate:
   the manifest written by `experiments --json`, the bench-smoke
   artifact and any campaign checkpoint must parse; manifests must
   bracket every rate with its Wilson interval, checkpoints must have
   in-range, duplicate-free chunk ledgers).  Exits 0 when every file
   validates, 1 otherwise.

   With --diff-results REF OTHER, additionally compare the two
   manifests' result payloads (experiment names, per-result failures,
   trials, rate and CI bounds) for exact equality — the crash-recovery
   CI job uses this to assert that an interrupted-and-resumed campaign
   reproduced the uninterrupted reference bit-for-bit.  Telemetry
   (wall times, throughput) is excluded: it legitimately differs.

   With --perf-diff BASE NEW, compare two ftqc-bench-trajectory/1
   documents instead (Obs.Perf): the last entry of NEW against the
   last entry of BASE, failing on a >25% throughput regression of any
   (kernel, tile-width) pair or a >2x daemon latency regression — the
   perf-gate CI job runs this against the committed trajectory. *)

module Json = Ftqc.Obs.Json

let schema_of j =
  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  match Option.bind (Json.member "schema" j) Json.to_string_opt with
  | Some s when has_prefix "ftqc-checkpoint/" s -> `Checkpoint
  | Some s when has_prefix "ftqc-trace/" s -> `Trace
  | _ -> `Manifest

let check file =
  match Json.read_file file with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    false
  | Ok j -> (
    match schema_of j with
    | `Checkpoint -> (
      match Ftqc.Mc.Campaign.validate j with
      | Ok n ->
        Printf.printf "%s: ok (checkpoint, %d jobs)\n" file n;
        true
      | Error msg ->
        Printf.eprintf "%s: invalid checkpoint: %s\n" file msg;
        false)
    | `Trace -> (
      match Ftqc.Obs.Trace.validate j with
      | Ok n ->
        Printf.printf "%s: ok (trace, %d spans)\n" file n;
        true
      | Error msg ->
        Printf.eprintf "%s: invalid trace: %s\n" file msg;
        false)
    | `Manifest -> (
      match Ftqc.Obs.Manifest.validate j with
      | Ok n ->
        Printf.printf "%s: ok (%d records)\n" file n;
        true
      | Error msg ->
        Printf.eprintf "%s: invalid manifest: %s\n" file msg;
        false))

(* ------------------------------------------------------ result diff *)

(* The comparable payload of one manifest: every record's experiment
   name with its results' counting fields, in order. *)
let payload j =
  let records =
    match Option.bind (Json.member "records" j) Json.to_list_opt with
    | Some l -> l
    | None -> []
  in
  List.map
    (fun r ->
      let str name =
        Option.value ~default:"?"
          (Option.bind (Json.member name r) Json.to_string_opt)
      in
      let results =
        match Option.bind (Json.member "results" r) Json.to_list_opt with
        | Some l -> l
        | None -> []
      in
      ( str "experiment",
        List.map
          (fun res ->
            let get name =
              match Json.member name res with Some v -> v | None -> Json.Null
            in
            ( get "name", get "failures", get "trials_used", get "rate",
              get "ci_lo", get "ci_hi" ))
          results ))
    records

let diff_results ref_file other_file =
  match (Json.read_file ref_file, Json.read_file other_file) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "%s\n" msg;
    false
  | Ok a, Ok b ->
    let pa = payload a and pb = payload b in
    if pa = pb then begin
      Printf.printf "%s == %s: results identical (%d records)\n" ref_file
        other_file (List.length pa);
      true
    end
    else begin
      (* locate the first divergence for the diagnostic *)
      let rec first_diff i xs ys =
        match (xs, ys) with
        | [], [] -> Printf.sprintf "record %d differs" i
        | x :: xs', y :: ys' ->
          if x = y then first_diff (i + 1) xs' ys'
          else
            Printf.sprintf "record %d (%s vs %s) differs" i (fst x) (fst y)
        | _ ->
          Printf.sprintf "record counts differ (%d vs %d)" (List.length pa)
            (List.length pb)
      in
      Printf.eprintf "%s != %s: %s\n" ref_file other_file
        (first_diff 0 pa pb);
      false
    end

(* -------------------------------------------------------- perf diff *)

let perf_diff base_file new_file =
  match Ftqc.Obs.Perf.compare_files ~base:base_file new_file with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    false
  | Ok verdicts ->
    List.iter (fun (v : Ftqc.Obs.Perf.verdict) -> print_endline v.line) verdicts;
    if Ftqc.Obs.Perf.regressed verdicts then begin
      Printf.eprintf "%s vs %s: performance regression\n" new_file base_file;
      false
    end
    else begin
      Printf.printf "%s vs %s: within the regression band\n" new_file
        base_file;
      true
    end

let usage () =
  prerr_endline
    "usage: manifest_check FILE...\n\
    \       manifest_check --diff-results REF OTHER [FILE...]\n\
    \       manifest_check --perf-diff BASE NEW";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "--diff-results" :: ref_file :: other_file :: files ->
    let ok_diff = diff_results ref_file other_file in
    let ok_files = List.for_all check (ref_file :: other_file :: files) in
    exit (if ok_diff && ok_files then 0 else 1)
  | [ _; "--perf-diff"; base_file; new_file ] ->
    exit (if perf_diff base_file new_file then 0 else 1)
  | _ :: (_ :: _ as files)
    when not (List.mem "--diff-results" files || List.mem "--perf-diff" files)
    ->
    let ok = List.for_all check files in
    exit (if ok then 0 else 1)
  | _ -> usage ()
