(* ftqc_client — command-line client for ftqcd (ftqc-rpc/1).

   Each estimator subcommand sends one request and prints the result
   cells; `--json FILE` additionally writes an ftqc-manifest/1
   document whose record matches what a direct `experiments` run with
   the same parameters and seed would emit (so `manifest_check
   --diff-results` can compare them), and `--out FILE` stores the raw
   bytes of the result frame — the byte-identity contract is checked
   on those bytes.  Cache/coalescing metadata goes to stderr.  Exit
   codes: 0 success, 1 error, 3 overloaded. *)

module Svc = Ftqc.Svc
module Protocol = Svc.Protocol
module Json = Ftqc.Obs.Json
module Manifest = Ftqc.Obs.Manifest
open Cmdliner

(* --------------------------------------------------------- printing *)

let pp_cell (c : Protocol.cell) =
  Format.printf "  %-24s %a@." c.name Ftqc.Mc.Stats.pp c.estimate

let print_payload = function
  | Protocol.Estimate c -> pp_cell c
  | Protocol.Cells cs -> List.iter pp_cell cs
  | Protocol.Fit { cells; a; threshold } ->
    List.iter pp_cell cells;
    Format.printf "  fitted A = %g  =>  pseudo-threshold 1/A = %g@." a
      threshold

let write_manifest ~file ~est ~(outcome : Svc.Client.outcome) =
  let m = Manifest.create () in
  Manifest.add m
    {
      experiment = Protocol.experiment_name est;
      params = [ ("request", Protocol.request_to_json (Run est)) ];
      results = Protocol.manifest_results outcome.payload;
      telemetry =
        [
          ("wall_s", Json.Float outcome.server_wall_s);
          ("cached", Json.Bool outcome.cached);
          ("coalesced", Json.Bool outcome.coalesced);
        ];
    };
  Manifest.write ~generator:"ftqc_client" m ~file

let write_raw ~file bytes =
  let oc = open_out_bin file in
  output_string oc bytes;
  close_out oc

(* ------------------------------------------------------ subcommands *)

(* --watch renders an in-place progress bar from the server's
   completion fields; without it each frame is one plain stderr line.
   Both write stderr only — stdout stays reserved for results. *)
let render_watch (p : Svc.Client.progress) =
  let bar =
    match (p.p_completed, p.p_total) with
    | Some d, Some t when t > 0 ->
      let width = 24 in
      let filled = min width (width * d / t) in
      Printf.sprintf " [%s%s] %d/%d %s"
        (String.make filled '#')
        (String.make (width - filled) '-')
        d t
        (match p.p_phase with None -> "" | Some ph -> ph)
    | _ -> ""
  in
  Printf.eprintf "\r\027[K%s %.1fs%s%!" p.p_state p.p_elapsed_s bar

let on_progress ~watch (p : Svc.Client.progress) =
  if watch then render_watch p
  else
    Printf.eprintf "progress: %s (%.1fs)%s\n%!" p.p_state p.p_elapsed_s
      (match (p.p_completed, p.p_total) with
      | Some d, Some t -> Printf.sprintf " %d/%d" d t
      | _ -> "")

(* QoS/retry options shared by every estimator subcommand. *)
type copts = {
  retries : int;
  retry_after : float;
  tenant : string option;
  priority : string option;
}

let run_estimator socket copts json out watch est =
  (* retries = 0 means a single attempt — the retry wrapper is then
     just connect + request + close *)
  let r =
    Svc.Client.request_retrying ~on_progress:(on_progress ~watch)
      ?tenant:copts.tenant ?priority:copts.priority ~retries:copts.retries
      ~retry_cap:copts.retry_after ~socket est
  in
  (* end the in-place watch line before any other output *)
  if watch then Printf.eprintf "\r\027[K%!";
  match r with
  | Error e ->
    Printf.eprintf "ftqc_client: %s: %s%s\n" e.code e.message
      (if copts.retries > 0 then
         Printf.sprintf " (after %d retries)" copts.retries
       else "");
    if e.code = "overloaded" then 3 else 1
  | Ok o ->
    print_payload o.payload;
    Printf.eprintf "meta: cached=%b coalesced=%b server_wall=%.3fs\n%!"
      o.cached o.coalesced o.server_wall_s;
    Option.iter (fun file -> write_manifest ~file ~est ~outcome:o) json;
    Option.iter (fun file -> write_raw ~file o.raw_result) out;
    0

(* ------------------------------------------------------------- args *)

let socket_arg =
  Arg.(
    value
    & opt string "ftqcd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"daemon socket path")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"write an ftqc-manifest/1 document (diffable against a \
              direct experiments run)")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"write the raw result-frame bytes (byte-identity checks)")

let watch_arg =
  Arg.(
    value & flag
    & info [ "watch" ]
        ~doc:
          "render live progress (completed/total chunks, current phase) \
           as an in-place bar on stderr while waiting")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ]
        ~doc:
          "retry budget for $(i,overloaded) replies and failed connects \
           (default 0: fail immediately).  Backoff is exponential with \
           deterministic jitter, floored at the server's retry-after \
           hint; exit 3 only after the budget is exhausted")

let retry_after_arg =
  Arg.(
    value & opt float 30.0
    & info [ "retry-after" ] ~docv:"SECONDS"
        ~doc:"cap on the delay before any single retry")

let tenant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:
          "tenant identity for the daemon's per-tenant QoS (rate limits, \
           fair scheduling); never part of the request key, so results \
           are unaffected")

let priority_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "priority" ] ~docv:"LEVEL"
        ~doc:"queue priority: $(i,high) or $(i,normal) (the default)")

let copts_term =
  Term.(
    const (fun retries retry_after tenant priority ->
        { retries; retry_after; tenant; priority })
    $ retries_arg $ retry_after_arg $ tenant_arg $ priority_arg)

let trials_arg default =
  Arg.(value & opt int default & info [ "trials" ] ~doc:"Monte-Carlo trials")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"random seed")

let derive_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "derive" ] ~docv:"PATH"
        ~doc:"derive the seed through this split path (e.g. 10,8,2 for \
              the e10 cell l=8, p-index 2) before sending")

let engine_arg =
  Arg.(
    value
    & opt string "scalar"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Monte-Carlo engine (scalar, batch or rare)")

let tile_width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile-width" ] ~docv:"SHOTS"
        ~doc:
          "batch-engine shots per bit-slice tile (a positive multiple of \
           64; counts are bit-identical across widths)")

let max_weight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-weight" ] ~docv:"W"
        ~doc:
          "rare-engine truncation order: fault configurations of weight \
           above W are bounded analytically, not evaluated")

let samples_per_class_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "samples-per-class" ] ~docv:"K"
        ~doc:"rare-engine evaluations per sampled weight class")

(* One grammar for every subcommand: the raw flag values go through
   the shared {!Mc.Engine.of_cli} combinator (same rejection text as
   the experiments/bench binaries), and the validated engine is
   mapped onto the wire selector. *)
let wire_engine ~engine ~tile_width ~max_weight ~samples_per_class k =
  match
    Ftqc.Mc.Engine.of_cli ~engine ?tile_width ?max_weight ?samples_per_class
      ()
  with
  | Error msg ->
    Printf.eprintf "ftqc_client: %s\n" msg;
    2
  | Ok `Scalar -> k (`Scalar : Protocol.engine) 64
  | Ok (`Batch { Ftqc.Mc.Engine.tile_width }) -> k `Batch tile_width
  | Ok (`Rare { Ftqc.Mc.Engine.max_weight; samples_per_class; _ }) ->
    k (`Rare { Protocol.max_weight; samples_per_class }) 64

let finish_seed seed path =
  match path with [] -> seed | path -> Ftqc.Mc.Rng.derive seed path

let cmd name ~doc term = Cmd.v (Cmd.info name ~doc) term

let steane_cmd =
  let run socket copts json out watch level eps rounds trials seed path engine
      tile_width max_weight samples_per_class =
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        run_estimator socket copts json out watch
          (Protocol.Steane_memory
             {
               level;
               eps;
               rounds;
               trials;
               seed = finish_seed seed path;
               engine;
               tile_width;
             }))
  in
  let level =
    Arg.(value & opt int 1 & info [ "level" ] ~doc:"concatenation level (1-3)")
  in
  let eps =
    Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"physical error rate")
  in
  let rounds =
    Arg.(value & opt int 1 & info [ "rounds" ] ~doc:"memory rounds")
  in
  cmd "steane" ~doc:"concatenated-Steane memory failure (one E6b cell)"
    Term.(
      const run $ socket_arg $ copts_term $ json_arg $ out_arg $ watch_arg $ level $ eps
      $ rounds
      $ trials_arg 30000 $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let toric_cmd =
  let run socket copts json out watch l p trials seed path engine tile_width
      max_weight samples_per_class =
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        run_estimator socket copts json out watch
          (Protocol.Toric_memory
             { l; p; trials; seed = finish_seed seed path; engine; tile_width }))
  in
  let l = Arg.(value & opt int 8 & info [ "l"; "lattice" ] ~doc:"lattice size") in
  let p =
    Arg.(value & opt float 0.08 & info [ "p"; "prob" ] ~doc:"X-error probability")
  in
  cmd "toric" ~doc:"toric-code memory failure (one E10 cell)"
    Term.(
      const run $ socket_arg $ copts_term $ json_arg $ out_arg $ watch_arg $ l $ p
      $ trials_arg 2000 $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let toric_scan_cmd =
  let run socket copts json out watch ls ps trials seed engine tile_width max_weight
      samples_per_class =
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        run_estimator socket copts json out watch
          (Protocol.Toric_scan { ls; ps; trials; seed; engine; tile_width }))
  in
  let ls =
    Arg.(
      value
      & opt (list int) [ 4; 6; 8; 12 ]
      & info [ "ls" ] ~doc:"lattice sizes")
  in
  let ps =
    Arg.(
      value
      & opt (list float) [ 0.02; 0.05; 0.08; 0.10; 0.12; 0.15 ]
      & info [ "ps" ] ~doc:"error probabilities")
  in
  cmd "toric-scan"
    ~doc:
      "the E10 grid with the experiments driver's per-cell seed \
       derivation (diffable against `experiments e10`)"
    Term.(
      const run $ socket_arg $ copts_term $ json_arg $ out_arg $ watch_arg $ ls $ ps
      $ trials_arg 2000 $ seed_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let toric_noisy_cmd =
  let run socket copts json out watch l rounds p q trials seed path engine tile_width
      max_weight samples_per_class =
    let rounds = match rounds with Some r -> r | None -> l in
    let q = match q with Some q -> q | None -> p in
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        match engine with
        | `Rare _ ->
          Printf.eprintf
            "ftqc_client: toric-noisy supports engines scalar and batch only\n";
          2
        | (`Scalar | `Batch) as engine ->
          run_estimator socket copts json out watch
            (Protocol.Toric_noisy
               {
                 l;
                 rounds;
                 p;
                 q;
                 trials;
                 seed = finish_seed seed path;
                 engine;
                 tile_width;
               }))
  in
  let l = Arg.(value & opt int 6 & info [ "l"; "lattice" ] ~doc:"lattice size") in
  let rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~doc:"measurement rounds (default l)")
  in
  let p =
    Arg.(value & opt float 0.03 & info [ "p"; "prob" ] ~doc:"data error probability")
  in
  let q =
    Arg.(
      value
      & opt (some float) None
      & info [ "q"; "meas-prob" ] ~doc:"measurement error probability (default p)")
  in
  cmd "toric-noisy" ~doc:"toric memory with noisy measurements (E19 cell)"
    Term.(
      const run $ socket_arg $ copts_term $ json_arg $ out_arg $ watch_arg $ l $ rounds $ p
      $ q
      $ trials_arg 2000 $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let toric_circuit_cmd =
  let run socket copts json out watch l rounds eps trials seed path engine tile_width
      max_weight samples_per_class =
    let rounds = match rounds with Some r -> r | None -> l in
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine _tile_width ->
        match engine with
        | `Batch ->
          Printf.eprintf
            "ftqc_client: toric-circuit supports engines scalar and rare \
             only\n";
          2
        | (`Scalar | `Rare _) as engine ->
          run_estimator socket copts json out watch
            (Protocol.Toric_circuit
               { l; rounds; eps; trials; seed = finish_seed seed path; engine }))
  in
  let l = Arg.(value & opt int 4 & info [ "l"; "lattice" ] ~doc:"lattice size") in
  let rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~doc:"noisy syndrome rounds (default l)")
  in
  let eps =
    Arg.(value & opt float 0.002 & info [ "eps" ] ~doc:"gate noise strength")
  in
  cmd "toric-circuit" ~doc:"circuit-level toric memory (E24 cell)"
    Term.(
      const run $ socket_arg $ copts_term $ json_arg $ out_arg $ watch_arg $ l $ rounds
      $ eps
      $ trials_arg 400 $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let css_memory_cmd =
  let run socket copts json out watch code eps rounds trials seed path engine
      tile_width max_weight samples_per_class =
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        match engine with
        | `Rare _ ->
          Printf.eprintf
            "ftqc_client: css-memory supports engines scalar and batch only\n";
          2
        | (`Scalar | `Batch) as engine ->
          run_estimator socket copts json out watch
            (Protocol.Css_memory
               {
                 code;
                 eps;
                 rounds;
                 trials;
                 seed = finish_seed seed path;
                 engine;
                 tile_width;
               }))
  in
  let code =
    Arg.(
      value & opt string "golay23"
      & info [ "code" ] ~docv:"CODE"
          ~doc:
            "Csskit.Zoo member (steane7, golay23, bch15, bch31); validated \
             server-side at parse time")
  in
  let eps =
    Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"physical error rate")
  in
  let rounds =
    Arg.(value & opt int 1 & info [ "rounds" ] ~doc:"memory rounds")
  in
  cmd "css-memory"
    ~doc:
      "code-zoo memory failure through the generic CSS pipeline (one \
       `experiments css` cell; its per-eps seeds derive as 25,EPS-INDEX)"
    Term.(
      const run $ socket_arg $ copts_term $ json_arg $ out_arg $ watch_arg
      $ code $ eps $ rounds $ trials_arg 20000 $ seed_arg $ derive_arg
      $ engine_arg $ tile_width_arg $ max_weight_arg $ samples_per_class_arg)

let pseudothreshold_cmd =
  let run socket copts json out watch eps_list trials seed =
    run_estimator socket copts json out watch
      (Protocol.Pseudothreshold { eps_list; trials; seed })
  in
  let eps_list =
    Arg.(
      value
      & opt (list float) [ 1e-3; 2e-3; 4e-3 ]
      & info [ "eps-list" ] ~doc:"noise strengths")
  in
  cmd "pseudothreshold"
    ~doc:
      "the E5 pseudo-threshold scan with the driver's seed derivation \
       (diffable against `experiments e5`)"
    Term.(
      const run $ socket_arg $ copts_term $ json_arg $ out_arg $ watch_arg $ eps_list
      $ trials_arg 20000 $ seed_arg)

let status_cmd =
  let run socket json =
    match Svc.Client.with_connection ~socket Svc.Client.status with
    | Error msg ->
      Printf.eprintf "ftqc_client: %s\n" msg;
      1
    | Ok (Error e) ->
      Printf.eprintf "ftqc_client: %s: %s\n" e.code e.message;
      1
    | Ok (Ok j) ->
      print_string (Json.to_string j);
      Option.iter (fun file -> Json.write ~file j) json;
      0
  in
  cmd "status" ~doc:"daemon status (queue, cache, metrics registry)"
    Term.(const run $ socket_arg $ json_arg)

(* `top` — a one-screen fleet view rendered from the status frame:
   uptime, worker utilization, queue/cache occupancy, cache hit rate,
   in-flight jobs with live completion, per-estimator request counts
   and latency.  `--once` prints a single snapshot (CI-friendly);
   otherwise the screen refreshes until interrupted. *)
let top_cmd =
  let member path j =
    List.fold_left (fun j k -> Option.bind j (Json.member k)) (Some j) path
  in
  let num path j =
    Option.value ~default:0.0 (Option.bind (member path j) Json.to_float_opt)
  in
  let int path j = int_of_float (num path j) in
  let str ~default path j =
    match member path j with Some (Json.String s) -> s | _ -> default
  in
  let counters j =
    match member [ "metrics"; "counters" ] j with
    | Some (Json.Obj kvs) -> kvs
    | _ -> []
  in
  let render j =
    let b = Buffer.create 1024 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let cs = counters j in
    let counter k =
      match List.assoc_opt k cs with Some (Json.Int i) -> i | _ -> 0
    in
    let hits = counter "svc.cache_hits" and misses = counter "svc.cache_misses" in
    let hit_rate =
      if hits + misses = 0 then 0.0
      else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
    in
    pf "ftqcd up %.0fs  workers %d/%d busy  queue %d/%d  cache %d/%d (%.0f%% hit)\n"
      (num [ "uptime_s" ] j)
      (int [ "workers"; "busy" ] j)
      (int [ "workers"; "count" ] j)
      (int [ "queue"; "depth" ] j)
      (int [ "queue"; "capacity" ] j)
      (int [ "cache"; "length" ] j)
      (int [ "cache"; "capacity" ] j)
      hit_rate;
    pf "requests %d  done %d  coalesced %d  overloaded %d  rate-limited %d\n"
      (counter "svc.requests") (counter "svc.jobs_done")
      (counter "svc.coalesced") (counter "svc.overloaded")
      (counter "svc.rate_limited");
    (* worker-process fleet: registry + lifecycle counters *)
    (match member [ "fleet" ] j with
    | Some (Json.Obj _ as f) ->
      pf "fleet %d/%d alive  spawned %d  restarts %d  redispatched %d  hangs %d\n"
        (int [ "alive" ] f) (int [ "size" ] f) (int [ "spawned" ] f)
        (int [ "restarts" ] f)
        (int [ "redispatched" ] f)
        (int [ "hangs" ] f);
      (match member [ "workers" ] f with
      | Some (Json.List (_ :: _ as ws)) ->
        pf "  workers:";
        List.iter
          (fun w ->
            pf " %d:gen%d/pid%d" (int [ "slot" ] w) (int [ "gen" ] w)
              (int [ "pid" ] w))
          ws;
        pf "\n"
      | _ -> ())
    | _ -> ());
    (* per-tenant QoS: queued work (status section) + counters *)
    let tenant_counters =
      let prefix = "svc.tenant." in
      let plen = String.length prefix in
      List.filter_map
        (fun (k, v) ->
          if String.length k > plen && String.sub k 0 plen = prefix then
            match (String.rindex_opt k '.', v) with
            | Some dot, Json.Int n when dot > plen ->
              Some
                ( String.sub k plen (dot - plen),
                  String.sub k (dot + 1) (String.length k - dot - 1),
                  n )
            | _ -> None
          else None)
        cs
    in
    let queued =
      match member [ "tenants" ] j with
      | Some (Json.List rows) ->
        List.filter_map
          (fun r ->
            match member [ "tenant" ] r with
            | Some (Json.String name) ->
              Some (name, (int [ "queued_high" ] r, int [ "queued_normal" ] r))
            | _ -> None)
          rows
      | _ -> []
    in
    if tenant_counters <> [] || queued <> [] then begin
      let names =
        List.sort_uniq compare
          (List.map (fun (n, _, _) -> n) tenant_counters
          @ List.map fst queued)
      in
      let get name series =
        List.fold_left
          (fun acc (n, s, v) -> if n = name && s = series then v else acc)
          0 tenant_counters
      in
      pf "\n%-12s %8s %8s %12s %8s %8s\n" "TENANT" "REQUESTS" "OVERLOAD"
        "RATE-LIMITED" "Q-HIGH" "Q-NORM";
      List.iter
        (fun name ->
          let qh, qn =
            match List.assoc_opt name queued with
            | Some q -> q
            | None -> (0, 0)
          in
          pf "%-12s %8d %8d %12d %8d %8d\n" name (get name "requests")
            (get name "overloaded")
            (get name "rate_limited")
            qh qn)
        names
    end;
    (match member [ "jobs" ] j with
    | Some (Json.List (_ :: _ as jobs)) ->
      pf "\n%-10s %-16s %-9s %8s  %s\n" "KEY" "ESTIMATOR" "STATE" "ELAPSED"
        "PROGRESS";
      List.iter
        (fun jj ->
          let key = str ~default:"?" [ "key" ] jj in
          let key = if String.length key > 10 then String.sub key 0 10 else key in
          let progress =
            match (member [ "completed" ] jj, member [ "total" ] jj) with
            | Some (Json.Int d), Some (Json.Int t) when t > 0 ->
              Printf.sprintf "%d/%d (%d%%) %s" d t (100 * d / t)
                (str ~default:"" [ "phase" ] jj)
            | _ -> "-"
          in
          pf "%-10s %-16s %-9s %7.1fs  %s\n" key
            (str ~default:"?" [ "estimator" ] jj)
            (str ~default:"?" [ "state" ] jj)
            (num [ "elapsed_s" ] jj)
            progress)
        jobs
    | _ -> pf "\nno jobs in flight\n");
    (* per-estimator request counters, sorted *)
    let prefix = "svc.requests." in
    let plen = String.length prefix in
    let per_est =
      List.filter_map
        (fun (k, v) ->
          if String.length k > plen && String.sub k 0 plen = prefix then
            match v with
            | Json.Int n -> Some (String.sub k plen (String.length k - plen), n)
            | _ -> None
          else None)
        cs
    in
    if per_est <> [] then begin
      pf "\n%-16s %8s\n" "ESTIMATOR" "REQUESTS";
      List.iter (fun (k, n) -> pf "%-16s %8d\n" k n) per_est
    end;
    Buffer.contents b
  in
  let fetch socket =
    match Svc.Client.with_connection ~socket Svc.Client.status with
    | Error msg -> Error msg
    | Ok (Error e) -> Error (Printf.sprintf "%s: %s" e.code e.message)
    | Ok (Ok j) -> Ok j
  in
  let run socket once interval =
    if once then (
      match fetch socket with
      | Error msg ->
        Printf.eprintf "ftqc_client: %s\n" msg;
        1
      | Ok j ->
        print_string (render j);
        0)
    else
      let rec loop () =
        match fetch socket with
        | Error msg ->
          Printf.eprintf "ftqc_client: %s\n" msg;
          1
        | Ok j ->
          (* home + clear-to-end keeps the screen stable between frames *)
          Printf.printf "\027[H\027[2J%s%!" (render j);
          Unix.sleepf interval;
          loop ()
      in
      loop ()
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"print one snapshot and exit (no screen control)")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"refresh interval")
  in
  cmd "top" ~doc:"live fleet view (workers, queue, in-flight jobs, latency)"
    Term.(const run $ socket_arg $ once_arg $ interval_arg)

let ping_cmd =
  let run socket =
    match Svc.Client.with_connection ~socket Svc.Client.ping with
    | Ok (Ok ()) ->
      print_endline "pong";
      0
    | Ok (Error e) ->
      Printf.eprintf "ftqc_client: %s: %s\n" e.code e.message;
      1
    | Error msg ->
      Printf.eprintf "ftqc_client: %s\n" msg;
      1
  in
  cmd "ping" ~doc:"liveness probe" Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    match Svc.Client.with_connection ~socket Svc.Client.shutdown with
    | Ok (Ok ()) ->
      print_endline "shutting down";
      0
    | Ok (Error e) ->
      Printf.eprintf "ftqc_client: %s: %s\n" e.code e.message;
      1
    | Error msg ->
      Printf.eprintf "ftqc_client: %s\n" msg;
      1
  in
  cmd "shutdown" ~doc:"stop the daemon (drains queued jobs)"
    Term.(const run $ socket_arg)

let () =
  let info = Cmd.info "ftqc_client" ~doc:"client for the ftqcd service" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            steane_cmd;
            toric_cmd;
            toric_scan_cmd;
            toric_noisy_cmd;
            toric_circuit_cmd;
            css_memory_cmd;
            pseudothreshold_cmd;
            status_cmd;
            top_cmd;
            ping_cmd;
            shutdown_cmd;
          ]))
