(* ftqc_client — command-line client for ftqcd (ftqc-rpc/1).

   Each estimator subcommand sends one request and prints the result
   cells; `--json FILE` additionally writes an ftqc-manifest/1
   document whose record matches what a direct `experiments` run with
   the same parameters and seed would emit (so `manifest_check
   --diff-results` can compare them), and `--out FILE` stores the raw
   bytes of the result frame — the byte-identity contract is checked
   on those bytes.  Cache/coalescing metadata goes to stderr.  Exit
   codes: 0 success, 1 error, 3 overloaded. *)

module Svc = Ftqc.Svc
module Protocol = Svc.Protocol
module Json = Ftqc.Obs.Json
module Manifest = Ftqc.Obs.Manifest
open Cmdliner

(* --------------------------------------------------------- printing *)

let pp_cell (c : Protocol.cell) =
  Format.printf "  %-24s %a@." c.name Ftqc.Mc.Stats.pp c.estimate

let print_payload = function
  | Protocol.Estimate c -> pp_cell c
  | Protocol.Cells cs -> List.iter pp_cell cs
  | Protocol.Fit { cells; a; threshold } ->
    List.iter pp_cell cells;
    Format.printf "  fitted A = %g  =>  pseudo-threshold 1/A = %g@." a
      threshold

let write_manifest ~file ~est ~(outcome : Svc.Client.outcome) =
  let m = Manifest.create () in
  Manifest.add m
    {
      experiment = Protocol.experiment_name est;
      params = [ ("request", Protocol.request_to_json (Run est)) ];
      results = Protocol.manifest_results outcome.payload;
      telemetry =
        [
          ("wall_s", Json.Float outcome.server_wall_s);
          ("cached", Json.Bool outcome.cached);
          ("coalesced", Json.Bool outcome.coalesced);
        ];
    };
  Manifest.write ~generator:"ftqc_client" m ~file

let write_raw ~file bytes =
  let oc = open_out_bin file in
  output_string oc bytes;
  close_out oc

(* ------------------------------------------------------ subcommands *)

let on_progress ~state ~elapsed_s =
  Printf.eprintf "progress: %s (%.1fs)\n%!" state elapsed_s

let run_estimator socket json out est =
  match
    Svc.Client.with_connection ~socket (fun fd ->
        Svc.Client.request ~on_progress fd est)
  with
  | Error msg ->
    Printf.eprintf "ftqc_client: %s\n" msg;
    1
  | Ok (Error e) ->
    Printf.eprintf "ftqc_client: %s: %s\n" e.code e.message;
    if e.code = "overloaded" then 3 else 1
  | Ok (Ok o) ->
    print_payload o.payload;
    Printf.eprintf "meta: cached=%b coalesced=%b server_wall=%.3fs\n%!"
      o.cached o.coalesced o.server_wall_s;
    Option.iter (fun file -> write_manifest ~file ~est ~outcome:o) json;
    Option.iter (fun file -> write_raw ~file o.raw_result) out;
    0

(* ------------------------------------------------------------- args *)

let socket_arg =
  Arg.(
    value
    & opt string "ftqcd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"daemon socket path")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"write an ftqc-manifest/1 document (diffable against a \
              direct experiments run)")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"write the raw result-frame bytes (byte-identity checks)")

let trials_arg default =
  Arg.(value & opt int default & info [ "trials" ] ~doc:"Monte-Carlo trials")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"random seed")

let derive_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "derive" ] ~docv:"PATH"
        ~doc:"derive the seed through this split path (e.g. 10,8,2 for \
              the e10 cell l=8, p-index 2) before sending")

let engine_arg =
  Arg.(
    value
    & opt string "scalar"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Monte-Carlo engine (scalar, batch or rare)")

let tile_width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile-width" ] ~docv:"SHOTS"
        ~doc:
          "batch-engine shots per bit-slice tile (a positive multiple of \
           64; counts are bit-identical across widths)")

let max_weight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-weight" ] ~docv:"W"
        ~doc:
          "rare-engine truncation order: fault configurations of weight \
           above W are bounded analytically, not evaluated")

let samples_per_class_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "samples-per-class" ] ~docv:"K"
        ~doc:"rare-engine evaluations per sampled weight class")

(* One grammar for every subcommand: the raw flag values go through
   the shared {!Mc.Engine.of_cli} combinator (same rejection text as
   the experiments/bench binaries), and the validated engine is
   mapped onto the wire selector. *)
let wire_engine ~engine ~tile_width ~max_weight ~samples_per_class k =
  match
    Ftqc.Mc.Engine.of_cli ~engine ?tile_width ?max_weight ?samples_per_class
      ()
  with
  | Error msg ->
    Printf.eprintf "ftqc_client: %s\n" msg;
    2
  | Ok `Scalar -> k (`Scalar : Protocol.engine) 64
  | Ok (`Batch { Ftqc.Mc.Engine.tile_width }) -> k `Batch tile_width
  | Ok (`Rare { Ftqc.Mc.Engine.max_weight; samples_per_class; _ }) ->
    k (`Rare { Protocol.max_weight; samples_per_class }) 64

let finish_seed seed path =
  match path with [] -> seed | path -> Ftqc.Mc.Rng.derive seed path

let cmd name ~doc term = Cmd.v (Cmd.info name ~doc) term

let steane_cmd =
  let run socket json out level eps rounds trials seed path engine tile_width
      max_weight samples_per_class =
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        run_estimator socket json out
          (Protocol.Steane_memory
             {
               level;
               eps;
               rounds;
               trials;
               seed = finish_seed seed path;
               engine;
               tile_width;
             }))
  in
  let level =
    Arg.(value & opt int 1 & info [ "level" ] ~doc:"concatenation level (1-3)")
  in
  let eps =
    Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"physical error rate")
  in
  let rounds =
    Arg.(value & opt int 1 & info [ "rounds" ] ~doc:"memory rounds")
  in
  cmd "steane" ~doc:"concatenated-Steane memory failure (one E6b cell)"
    Term.(
      const run $ socket_arg $ json_arg $ out_arg $ level $ eps $ rounds
      $ trials_arg 30000 $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let toric_cmd =
  let run socket json out l p trials seed path engine tile_width max_weight
      samples_per_class =
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        run_estimator socket json out
          (Protocol.Toric_memory
             { l; p; trials; seed = finish_seed seed path; engine; tile_width }))
  in
  let l = Arg.(value & opt int 8 & info [ "l"; "lattice" ] ~doc:"lattice size") in
  let p =
    Arg.(value & opt float 0.08 & info [ "p"; "prob" ] ~doc:"X-error probability")
  in
  cmd "toric" ~doc:"toric-code memory failure (one E10 cell)"
    Term.(
      const run $ socket_arg $ json_arg $ out_arg $ l $ p $ trials_arg 2000
      $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg $ max_weight_arg
      $ samples_per_class_arg)

let toric_scan_cmd =
  let run socket json out ls ps trials seed engine tile_width max_weight
      samples_per_class =
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        run_estimator socket json out
          (Protocol.Toric_scan { ls; ps; trials; seed; engine; tile_width }))
  in
  let ls =
    Arg.(
      value
      & opt (list int) [ 4; 6; 8; 12 ]
      & info [ "ls" ] ~doc:"lattice sizes")
  in
  let ps =
    Arg.(
      value
      & opt (list float) [ 0.02; 0.05; 0.08; 0.10; 0.12; 0.15 ]
      & info [ "ps" ] ~doc:"error probabilities")
  in
  cmd "toric-scan"
    ~doc:
      "the E10 grid with the experiments driver's per-cell seed \
       derivation (diffable against `experiments e10`)"
    Term.(
      const run $ socket_arg $ json_arg $ out_arg $ ls $ ps $ trials_arg 2000
      $ seed_arg $ engine_arg $ tile_width_arg $ max_weight_arg
      $ samples_per_class_arg)

let toric_noisy_cmd =
  let run socket json out l rounds p q trials seed path engine tile_width
      max_weight samples_per_class =
    let rounds = match rounds with Some r -> r | None -> l in
    let q = match q with Some q -> q | None -> p in
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine tile_width ->
        match engine with
        | `Rare _ ->
          Printf.eprintf
            "ftqc_client: toric-noisy supports engines scalar and batch only\n";
          2
        | (`Scalar | `Batch) as engine ->
          run_estimator socket json out
            (Protocol.Toric_noisy
               {
                 l;
                 rounds;
                 p;
                 q;
                 trials;
                 seed = finish_seed seed path;
                 engine;
                 tile_width;
               }))
  in
  let l = Arg.(value & opt int 6 & info [ "l"; "lattice" ] ~doc:"lattice size") in
  let rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~doc:"measurement rounds (default l)")
  in
  let p =
    Arg.(value & opt float 0.03 & info [ "p"; "prob" ] ~doc:"data error probability")
  in
  let q =
    Arg.(
      value
      & opt (some float) None
      & info [ "q"; "meas-prob" ] ~doc:"measurement error probability (default p)")
  in
  cmd "toric-noisy" ~doc:"toric memory with noisy measurements (E19 cell)"
    Term.(
      const run $ socket_arg $ json_arg $ out_arg $ l $ rounds $ p $ q
      $ trials_arg 2000 $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let toric_circuit_cmd =
  let run socket json out l rounds eps trials seed path engine tile_width
      max_weight samples_per_class =
    let rounds = match rounds with Some r -> r | None -> l in
    wire_engine ~engine ~tile_width ~max_weight ~samples_per_class
      (fun engine _tile_width ->
        match engine with
        | `Batch ->
          Printf.eprintf
            "ftqc_client: toric-circuit supports engines scalar and rare \
             only\n";
          2
        | (`Scalar | `Rare _) as engine ->
          run_estimator socket json out
            (Protocol.Toric_circuit
               { l; rounds; eps; trials; seed = finish_seed seed path; engine }))
  in
  let l = Arg.(value & opt int 4 & info [ "l"; "lattice" ] ~doc:"lattice size") in
  let rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~doc:"noisy syndrome rounds (default l)")
  in
  let eps =
    Arg.(value & opt float 0.002 & info [ "eps" ] ~doc:"gate noise strength")
  in
  cmd "toric-circuit" ~doc:"circuit-level toric memory (E24 cell)"
    Term.(
      const run $ socket_arg $ json_arg $ out_arg $ l $ rounds $ eps
      $ trials_arg 400 $ seed_arg $ derive_arg $ engine_arg $ tile_width_arg
      $ max_weight_arg $ samples_per_class_arg)

let pseudothreshold_cmd =
  let run socket json out eps_list trials seed =
    run_estimator socket json out
      (Protocol.Pseudothreshold { eps_list; trials; seed })
  in
  let eps_list =
    Arg.(
      value
      & opt (list float) [ 1e-3; 2e-3; 4e-3 ]
      & info [ "eps-list" ] ~doc:"noise strengths")
  in
  cmd "pseudothreshold"
    ~doc:
      "the E5 pseudo-threshold scan with the driver's seed derivation \
       (diffable against `experiments e5`)"
    Term.(
      const run $ socket_arg $ json_arg $ out_arg $ eps_list
      $ trials_arg 20000 $ seed_arg)

let status_cmd =
  let run socket json =
    match Svc.Client.with_connection ~socket Svc.Client.status with
    | Error msg ->
      Printf.eprintf "ftqc_client: %s\n" msg;
      1
    | Ok (Error e) ->
      Printf.eprintf "ftqc_client: %s: %s\n" e.code e.message;
      1
    | Ok (Ok j) ->
      print_string (Json.to_string j);
      Option.iter (fun file -> Json.write ~file j) json;
      0
  in
  cmd "status" ~doc:"daemon status (queue, cache, metrics registry)"
    Term.(const run $ socket_arg $ json_arg)

let ping_cmd =
  let run socket =
    match Svc.Client.with_connection ~socket Svc.Client.ping with
    | Ok (Ok ()) ->
      print_endline "pong";
      0
    | Ok (Error e) ->
      Printf.eprintf "ftqc_client: %s: %s\n" e.code e.message;
      1
    | Error msg ->
      Printf.eprintf "ftqc_client: %s\n" msg;
      1
  in
  cmd "ping" ~doc:"liveness probe" Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    match Svc.Client.with_connection ~socket Svc.Client.shutdown with
    | Ok (Ok ()) ->
      print_endline "shutting down";
      0
    | Ok (Error e) ->
      Printf.eprintf "ftqc_client: %s: %s\n" e.code e.message;
      1
    | Error msg ->
      Printf.eprintf "ftqc_client: %s\n" msg;
      1
  in
  cmd "shutdown" ~doc:"stop the daemon (drains queued jobs)"
    Term.(const run $ socket_arg)

let () =
  let info = Cmd.info "ftqc_client" ~doc:"client for the ftqcd service" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            steane_cmd;
            toric_cmd;
            toric_scan_cmd;
            toric_noisy_cmd;
            toric_circuit_cmd;
            pseudothreshold_cmd;
            status_cmd;
            ping_cmd;
            shutdown_cmd;
          ]))
