(* Experiment driver: regenerates every quantitative claim of the
   paper (E1..E20 in DESIGN.md).  `experiments all` prints the full
   report; individual experiments accept --trials/--seed. *)

open Ftqc

(* ------------------------------------------------ manifest plumbing *)

(* With --json FILE every experiment appends an Obs.Manifest.record
   and [run_obs] is a live Obs handle, so Mc.Runner telemetry lands in
   the same file.  Recording is observation-only: the sampled
   randomness and the stdout report are bit-identical with or without
   it (the only extra output is one note on stderr). *)
let manifest : Obs.Manifest.t option ref = ref None
let run_obs : Obs.t ref = ref Obs.none
let obs () = !run_obs

(* results of the experiment currently running, oldest first *)
let acc : Obs.Manifest.result list ref = ref []

let emit name (e : Mc.Stats.estimate) =
  if !manifest <> None then
    acc :=
      {
        Obs.Manifest.name;
        failures = e.failures;
        trials_used = e.trials;
        rate = e.rate;
        ci_lo = e.ci_low;
        ci_hi = e.ci_high;
      }
      :: !acc

(* a bare failure count: wrap in the Wilson interval without touching
   how the experiment itself sampled or printed *)
let emit_count name ~failures ~trials =
  if !manifest <> None then emit name (Mc.Stats.estimate ~failures ~trials ())

(* an analytic quantity: degenerate result, ci_lo = rate = ci_hi.
   Non-finite values (e.g. a slope over too few points at tiny
   --trials) are dropped — they cannot satisfy the bracketing
   invariant {!Obs.Manifest.validate} checks. *)
let emit_value name v =
  if !manifest <> None && Float.is_finite v then
    acc := Obs.Manifest.value name v :: !acc

let p_trials t = ("trials", Obs.Json.Int t)
let p_seed s = ("seed", Obs.Json.Int s)

(* engine + its parameters as manifest params (only the parameters
   the selected engine actually has) *)
let p_engine (e : Mc.Engine.t) =
  ("engine", Obs.Json.String (Mc.Engine.name e))
  ::
  (match e with
  | `Scalar -> []
  | `Batch { tile_width } -> [ ("tile_width", Obs.Json.Int tile_width) ]
  | `Rare { max_weight; samples_per_class; _ } ->
    [ ("max_weight", Obs.Json.Int max_weight);
      ("samples_per_class", Obs.Json.Int samples_per_class) ])

let dused = function Some d -> d | None -> Mc.Runner.default_domains ()

(* [recording ~experiment ~domains_used ~params body] — run [body],
   then flush the results it emitted as one manifest record with
   wall-clock and throughput telemetry.  The body runs under a
   campaign label equal to the experiment name, so checkpoint job
   keys from different experiments can never collide. *)
let recording ~experiment ?(domains_used = 1) ?(params = []) body =
  let body () = Mc.Campaign.with_label experiment body in
  match !manifest with
  | None -> body ()
  | Some m ->
    acc := [];
    let t0 = Obs.now () in
    body ();
    let wall = Obs.now () -. t0 in
    let results = List.rev !acc in
    acc := [];
    let shots =
      List.fold_left
        (fun a (r : Obs.Manifest.result) -> a + r.trials_used)
        0 results
    in
    let telemetry =
      [ ("wall_s", Obs.Json.Float wall);
        ( "shots_per_s",
          if wall > 0.0 && shots > 0 then
            Obs.Json.Float (float_of_int shots /. wall)
          else Obs.Json.Null );
        ("domains_used", Obs.Json.Int domains_used) ]
    in
    Obs.Manifest.add m { Obs.Manifest.experiment; params; results; telemetry }

let hr () = print_endline (String.make 72 '-')

let header title =
  hr ();
  Printf.printf "%s\n" title;
  hr ()

(* ---------------------------------------------------------------- E1 *)

let e1 ?domains ~trials ~seed () =
  header
    "E1  Encoded memory fidelity (Eq. 14): unencoded 1-eps vs Steane 1-O(eps^2)";
  let decoder = Codes.Steane.css_decoder () in
  Printf.printf "%10s %14s %14s %14s %14s\n" "eps" "unencoded"
    "steane (MC)" "steane (exact)" "21*eps^2";
  List.iteri
    (fun i eps ->
      let u =
        Ft.Memory.unencoded_mc ?domains ~obs:(obs ()) ~eps ~trials
          ~seed:(Mc.Rng.derive seed [ 1; 0; i ])
          ()
      in
      let e =
        Ft.Memory.encoded_ideal_ec_mc ?domains ~obs:(obs ()) Codes.Steane.code
          ~eps ~rounds:1 ~trials
          ~seed:(Mc.Rng.derive seed [ 1; 1; i ])
          ()
      in
      let exact =
        Codes.Exact.failure_probability ~metric:`Basis_avg Codes.Steane.code
          decoder ~eps
      in
      emit (Printf.sprintf "unencoded@eps=%g" eps) u;
      emit (Printf.sprintf "steane@eps=%g" eps) e;
      emit_value (Printf.sprintf "steane_exact@eps=%g" eps) exact;
      Printf.printf "%10.4g %14.5g %14.5g %14.5g %14.5g\n" eps u.rate e.rate
        exact
        (21.0 *. eps *. eps))
    [ 1e-3; 3e-3; 1e-2; 3e-2; 0.1 ];
  (* the MC and exact columns use basis-averaged readout; the Eq. 14
     any-error fidelity metric is what the Eq. 33 model estimates *)
  (match Codes.Exact.pseudothreshold ~metric:`Any Codes.Steane.code decoder with
  | Some t ->
    emit_value "pseudothreshold_exact" t;
    Printf.printf
      "\nexact code-capacity pseudo-threshold, Eq. 14 metric (full 4^7\n\
       enumeration): eps* = %.4f — the paper's Eq. 33 model says 1/21 = %.4f\n"
      t (1.0 /. 21.0)
  | None -> print_endline "no pseudothreshold (unexpected)");
  Printf.printf
    "same metric, other codes:  five-qubit %s   shor9 %s\n"
    (match
       Codes.Exact.pseudothreshold ~metric:`Any Codes.Five_qubit.code
         (Codes.Stabilizer_code.default_decoder Codes.Five_qubit.code)
     with
    | Some t -> Printf.sprintf "%.4f" t
    | None -> "-")
    (match
       Codes.Exact.pseudothreshold ~metric:`Any Codes.Shor9.code
         (Codes.Stabilizer_code.default_decoder Codes.Shor9.code)
     with
    | Some t -> Printf.sprintf "%.4f" t
    | None -> "-")

(* ---------------------------------------------------------------- E2 *)

let slope pts =
  (* log-log least-squares slope *)
  let pts = List.filter (fun (_, p) -> p > 0.0) pts in
  match pts with
  | [] | [ _ ] -> nan
  | _ ->
    let n = float_of_int (List.length pts) in
    let lx = List.map (fun (e, _) -> log e) pts in
    let ly = List.map (fun (_, p) -> log p) pts in
    let sx = List.fold_left ( +. ) 0.0 lx and sy = List.fold_left ( +. ) 0.0 ly in
    let sxx = List.fold_left (fun a x -> a +. (x *. x)) 0.0 lx in
    let sxy = List.fold_left2 (fun a x y -> a +. (x *. y)) 0.0 lx ly in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let e2 ?domains ~trials ~seed () =
  header
    "E2  Fault-tolerant vs non-FT syndrome extraction (Figs. 2/6): O(eps) vs O(eps^2)";
  Printf.printf "%10s %14s %14s %14s\n" "eps" "nonFT(Fig.2)" "Shor-FT"
    "Steane-FT";
  let eps_list = [ 1e-3; 2e-3; 4e-3; 8e-3; 1.6e-2 ] in
  let bad_pts = ref [] and shor_pts = ref [] and steane_pts = ref [] in
  List.iteri
    (fun i eps ->
      let noise = Ft.Noise.gates_only eps in
      (* one independent stream per (family, eps): run order and trial
         counts of one column can no longer perturb another *)
      let bad =
        Ft.Memory.shor_ec_failure_mc ?domains ~obs:(obs ()) ~noise
          ~policy:Ft.Shor_ec.Repeat_if_nontrivial ~verified:false ~trials
          ~seed:(Mc.Rng.derive seed [ 2; 0; i ])
          ()
      in
      let shor =
        Ft.Memory.shor_ec_failure_mc ?domains ~obs:(obs ()) ~noise
          ~policy:Ft.Shor_ec.Repeat_if_nontrivial ~verified:true ~trials
          ~seed:(Mc.Rng.derive seed [ 2; 1; i ])
          ()
      in
      let steane =
        Ft.Memory.steane_ec_failure_mc ?domains ~obs:(obs ()) ~noise
          ~policy:Ft.Steane_ec.Repeat_if_nontrivial ~verify:Ft.Steane_ec.Reject
          ~trials
          ~seed:(Mc.Rng.derive seed [ 2; 2; i ])
          ()
      in
      emit (Printf.sprintf "nonft@eps=%g" eps) bad;
      emit (Printf.sprintf "shor_ft@eps=%g" eps) shor;
      emit (Printf.sprintf "steane_ft@eps=%g" eps) steane;
      bad_pts := (eps, bad.rate) :: !bad_pts;
      shor_pts := (eps, shor.rate) :: !shor_pts;
      steane_pts := (eps, steane.rate) :: !steane_pts;
      Printf.printf "%10.4g %14.5g %14.5g %14.5g\n" eps bad.rate shor.rate
        steane.rate)
    eps_list;
  emit_value "slope_nonft" (slope !bad_pts);
  emit_value "slope_shor_ft" (slope !shor_pts);
  emit_value "slope_steane_ft" (slope !steane_pts);
  Printf.printf
    "\nlog-log slopes: nonFT %.2f (expect ~1), Shor-FT %.2f (expect ~2), \
     Steane-FT %.2f (expect ~2)\n"
    (slope !bad_pts) (slope !shor_pts) (slope !steane_pts)

(* ---------------------------------------------------------------- E3 *)

let e3 ?domains ~trials ~seed () =
  header "E3  Cat-state verification (Fig. 8): feedback damage with/without";
  (* measure one weight-4 generator of a perfect block; judge the
     block afterwards *)
  let code = Codes.Steane.code in
  let probe ~verified ~key eps =
    let noise = Ft.Noise.gates_only eps in
    let trial rng t =
      let plus_basis = t mod 2 = 0 in
      let sim = Ft.Sim.create ~n:12 ~noise rng in
      let tab = Ft.Sim.tableau sim in
      Array.iter
        (fun g ->
          ignore
            (Tableau.postselect_pauli tab
               (Codes.Stabilizer_code.embed code ~offset:0 ~total:12 g)
               ~outcome:false))
        code.generators;
      let l = if plus_basis then code.logical_x.(0) else code.logical_z.(0) in
      ignore
        (Tableau.postselect_pauli tab
           (Codes.Stabilizer_code.embed code ~offset:0 ~total:12 l)
           ~outcome:false);
      (* measure the X-type generator M4 (it feeds back phase errors) *)
      ignore
        (Ft.Shor_ec.measure_generator sim ~generator:code.generators.(3)
           ~offset:0 ~cat_base:7 ~check:11 ~verified);
      if plus_basis then Ft.Sim.ideal_measure_logical_x sim code ~offset:0
      else Ft.Sim.ideal_measure_logical_z sim code ~offset:0
    in
    let failures =
      Mc.Runner.failures ?domains ~obs:(obs ()) ~trials ~seed:key
        (Mc.Runner.scalar trial)
    in
    emit_count
      (Printf.sprintf "%s@eps=%g"
         (if verified then "verified" else "unverified")
         eps)
      ~failures ~trials;
    float_of_int failures /. float_of_int trials
  in
  Printf.printf "%10s %18s %18s\n" "eps" "unverified cat" "verified cat";
  List.iteri
    (fun i eps ->
      Printf.printf "%10.4g %18.5g %18.5g\n" eps
        (probe ~verified:false ~key:(Mc.Rng.derive seed [ 3; 0; i ]) eps)
        (probe ~verified:true ~key:(Mc.Rng.derive seed [ 3; 1; i ]) eps))
    [ 2e-3; 5e-3; 1e-2; 2e-2 ];
  print_endline
    "\n(single generator measurement on a perfect block; the verified cat\n\
     keeps block damage at O(eps^2), the shared/unverified ancilla at O(eps))"

(* ---------------------------------------------------------------- E4 *)

let e4 ?domains ~trials ~seed () =
  header
    "E4  Syndrome repetition and ancilla verification policies (Sec. 3.3-3.4)";
  Printf.printf "%10s %14s %14s %14s %14s\n" "eps" "accept-first"
    "repeat-rule" "paper-flip" "no-verify";
  List.iteri
    (fun i eps ->
      let noise = Ft.Noise.gates_only eps in
      let run k label policy verify =
        let r =
          Ft.Memory.steane_ec_failure_mc ?domains ~obs:(obs ()) ~noise ~policy
            ~verify ~trials
            ~seed:(Mc.Rng.derive seed [ 4; k; i ])
            ()
        in
        emit (Printf.sprintf "%s@eps=%g" label eps) r;
        r.rate
      in
      Printf.printf "%10.4g %14.5g %14.5g %14.5g %14.5g\n" eps
        (run 0 "accept_first" Ft.Steane_ec.Accept_first Ft.Steane_ec.Reject)
        (run 1 "repeat_rule" Ft.Steane_ec.Repeat_if_nontrivial
           Ft.Steane_ec.Reject)
        (run 2 "paper_flip" Ft.Steane_ec.Repeat_if_nontrivial
           Ft.Steane_ec.Paper_flip)
        (run 3 "no_verify" Ft.Steane_ec.Repeat_if_nontrivial
           Ft.Steane_ec.No_verification))
    [ 2e-3; 5e-3; 1e-2; 2e-2 ];
  print_endline
    "\ncolumns 2-4 vary the Sec. 3.4 acceptance rule and the Sec. 3.3 ancilla\n\
     verification (reject-on-anomaly vs the paper's flip-on-confirmed-1 vs\n\
     none).  Unverified ancillas and unconfirmed syndromes both reopen an\n\
     O(eps) failure channel."

(* ---------------------------------------------------------------- E5 *)

let e5 ?domains ~trials ~seed () =
  header
    "E5  Level-1 pseudo-threshold (Eq. 33): p1 = A*eps^2, threshold = 1/A";
  let eps_list = [ 1e-3; 2e-3; 4e-3 ] in
  let pts =
    List.mapi
      (fun i eps ->
        let noise = Ft.Noise.gates_only eps in
        let r =
          Ft.Memory.logical_cnot_exrec_failure_mc ?domains ~obs:(obs ())
            ~noise ~trials
            ~seed:(Mc.Rng.derive seed [ 5; i ])
            ()
        in
        emit (Printf.sprintf "exrec@eps=%g" eps) r;
        Format.printf "  eps=%8.4g  p1 = %a@." eps Mc.Stats.pp r;
        (eps, r.rate))
      eps_list
  in
  let f = Threshold.Pseudothreshold.fit pts in
  emit_value "fitted_A" f.a;
  emit_value "pseudothreshold" f.threshold;
  Printf.printf "\nfitted A = %.1f  =>  pseudo-threshold eps* = 1/A = %.2e\n"
    f.a f.threshold;
  Printf.printf
    "paper's combinatorial model: A = 21, threshold 1/21 = %.2e per *block\n\
     error*; with all gadget locations counted the paper estimates\n\
     eps_gate,0 ~ 6e-4 (Eq. 34).  Our gadget's A reflects its ~%d fault\n\
     locations; shape (quadratic flow, threshold = 1/A) is the claim.\n"
    Threshold.Flow.paper_threshold 300;
  let projections = Threshold.Pseudothreshold.project f ~eps:1e-4 ~levels:4 in
  Printf.printf "projected p_L at eps=1e-4:";
  List.iteri (fun l p -> Printf.printf "  L%d=%.2e" l p) projections;
  print_newline ()

(* ---------------------------------------------------------------- E6 *)

let e6 () =
  header "E6  Concatenation flow (Eqs. 36-37)";
  let a = Threshold.Flow.paper_coefficient in
  Printf.printf "eps(L) = eps0*(eps/eps0)^(2^L), eps0 = 1/21:\n";
  Printf.printf "%10s %12s %12s %12s %12s %12s\n" "eps" "L=0" "L=1" "L=2"
    "L=3" "L=4";
  List.iter
    (fun eps ->
      Printf.printf "%10.1e" eps;
      for l = 0 to 4 do
        let p = Threshold.Flow.level_error ~a ~eps ~level:l in
        emit_value (Printf.sprintf "level_error@eps=%g,L=%d" eps l) p;
        Printf.printf " %12.3e" p
      done;
      print_newline ())
    [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6 ];
  Printf.printf "\nblock size for a T-gate computation (Eq. 37):\n";
  Printf.printf "%12s %10s %8s %12s %14s\n" "T" "eps" "levels" "block 7^L"
    "Eq.37 estimate";
  List.iter
    (fun (gates, eps) ->
      match Threshold.Flow.block_size_for ~a ~eps ~gates with
      | Some (l, b, est) ->
        Printf.printf "%12.2e %10.1e %8d %12.0f %14.1f\n" gates eps l b est
      | None -> Printf.printf "%12.2e %10.1e  above threshold\n" gates eps)
    [ (1e6, 1e-4); (1e9, 1e-4); (3e9, 1e-6); (1e12, 1e-6) ]

(* --------------------------------------------------------------- E6b *)

let e6b ?domains ?(engine = Mc.Engine.scalar) ~trials ~seed () =
  header
    "E6b Concatenated Steane, direct Monte Carlo (Pauli frame, ideal EC)";
  Printf.printf
    "%8s %12s %12s %12s   (failure per recovery, levels L = 1..3)\n" "eps"
    "L=1 (7q)" "L=2 (49q)" "L=3 (343q)";
  List.iteri
    (fun i eps ->
      let run level t =
        let seed = Mc.Rng.derive seed [ 66; i; level ] in
        let r =
          match engine with
          | `Scalar ->
            Codes.Pauli_frame.memory_failure_mc ?domains ~obs:(obs ()) ~level
              ~eps ~rounds:1 ~trials:t ~seed ()
          | `Batch { Mc.Engine.tile_width } ->
            Codes.Pauli_frame.memory_failure_batch ?domains ~obs:(obs ())
              ~tile_width ~level ~eps ~rounds:1 ~trials:t ~seed ()
          | `Rare config ->
            Mc.Stats.weighted_to_estimate
              (Codes.Pauli_frame.memory_failure_rare ?domains ~obs:(obs ())
                 ~config ~level ~eps ~rounds:1 ~seed ())
        in
        emit (Printf.sprintf "L%d@eps=%g" level eps) r;
        r.rate
      in
      Printf.printf "%8.3f %12.5f %12.5f %12.5f\n%!" eps (run 1 trials)
        (run 2 trials)
        (run 3 (max 2000 (trials / 3))))
    [ 0.01; 0.03; 0.05; 0.07; 0.10; 0.12 ];
  print_endline
    "\nbelow the code-capacity threshold (~0.08-0.10 here) each level\n\
     multiplies the suppression (Eq. 36's double exponential); above it\n\
     concatenation makes things worse — 'if the error rates are too high\n\
     to begin with, coding will make things worse instead of better.'"

(* --------------------------------------------------------------- E15 *)

let e15 ?domains ?(engine = Mc.Engine.scalar) ~trials ~seed () =
  header
    "E15 Biased noise ablation (Sec. 6: tailoring the scheme to the model)";
  Printf.printf
    "total eps fixed at 0.02; eta = P(Z)/P(X); self-dual CSS decoding\n\n";
  Printf.printf "%8s %12s %12s\n" "eta" "L=1" "L=2";
  List.iteri
    (fun i eta ->
      let run level =
        let seed = Mc.Rng.derive seed [ 15; i; level ] in
        let r =
          match engine with
          | `Scalar ->
            Codes.Pauli_frame.memory_failure_biased_mc ?domains ~obs:(obs ())
              ~level ~eps:0.02 ~eta ~rounds:1 ~trials ~seed ()
          | `Rare _ ->
            (* the CLI whitelists engines per experiment; biased noise
               has no subset fault model *)
            invalid_arg "e15: rare engine unsupported"
          | `Batch { Mc.Engine.tile_width } ->
            Codes.Pauli_frame.memory_failure_biased_batch ?domains
              ~obs:(obs ()) ~tile_width ~level ~eps:0.02 ~eta ~rounds:1
              ~trials ~seed ()
        in
        emit (Printf.sprintf "L%d@eta=%g" level eta) r;
        r.rate
      in
      Printf.printf "%8.1f %12.5f %12.5f\n%!" eta (run 1) (run 2))
    [ 1.0; 3.0; 10.0; 100.0 ];
  print_endline
    "\nat fixed total error rate, bias concentrates errors in one Hamming\n\
     sector and the untailored self-dual decoder does worse — the\n\
     quantitative face of Sec. 6's remark that a scheme tailored to the\n\
     real error model would tolerate higher rates."

(* ---------------------------------------------------------------- E7 *)

let e7 () =
  header "E7  Big-code scaling without concatenation (Eqs. 30-32), b = 4";
  let b = Threshold.Bigcode.shor_b in
  Printf.printf "%10s %10s %10s %16s %16s\n" "eps" "t*(real)" "t*(int)"
    "min block error" "exp(-b/e eps^-1/4)";
  List.iter
    (fun eps ->
      let t_real = Threshold.Bigcode.optimal_t ~b ~eps in
      let t_int, p = Threshold.Bigcode.best_integer_t ~b ~eps ~t_max:1000 in
      emit_value (Printf.sprintf "min_block_error@eps=%g" eps) p;
      Printf.printf "%10.1e %10.2f %10d %16.3e %16.3e\n" eps t_real t_int p
        (Threshold.Bigcode.min_block_error ~b ~eps))
    [ 1e-4; 1e-5; 1e-6; 1e-7 ];
  Printf.printf "\nrequired accuracy eps ~ (log T)^-b (Eq. 32):\n";
  List.iter
    (fun cycles ->
      let eps = Threshold.Bigcode.required_accuracy ~b ~cycles in
      emit_value (Printf.sprintf "required_accuracy@T=%g" cycles) eps;
      Printf.printf "  T = %8.1e  =>  eps = %.3e\n" cycles eps)
    [ 1e6; 1e9; 1e12 ]

(* ---------------------------------------------------------------- E8 *)

let e8 () =
  header "E8  Factoring resource estimates (Sec. 6)";
  let e = Threshold.Resources.paper_432 () in
  Format.printf "%a@." Threshold.Resources.pp e;
  let logical, physical = Threshold.Resources.steane_block55 ~bits:432 in
  Printf.printf
    "Steane (ref. 48) alternative: block-55 code, gate error 1e-5:\n\
    \  logical qubits = %d, physical qubits ~ %.2g\n\n"
    logical physical;
  Printf.printf "scaling with problem size (eps = 1e-6):\n";
  Printf.printf "%8s %12s %14s %10s %14s\n" "bits" "logical" "Toffolis"
    "levels" "total qubits";
  List.iter
    (fun bits ->
      let r = Threshold.Resources.estimate ~bits ~physical_eps:1e-6 () in
      match (r.levels, r.total_qubits) with
      | Some l, Some t ->
        emit_value (Printf.sprintf "total_qubits@bits=%d" bits) t;
        Printf.printf "%8d %12d %14.3g %10d %14.3g\n" bits r.logical_qubits
          r.toffoli_gates l t
      | _ -> Printf.printf "%8d: above threshold\n" bits)
    [ 128; 256; 432; 512; 1024 ]

(* ---------------------------------------------------------------- E9 *)

let e9 ~trials ~seed () =
  let rng = Random.State.make [| seed; 9 |] in
  header "E9  Random vs systematic phase errors (Sec. 6, bullet 1)";
  let theta = 0.01 in
  Printf.printf "theta = %g per step\n" theta;
  Printf.printf "%8s %14s %14s %14s %14s\n" "N" "p(random)" "p(systematic)"
    "N(th/2)^2" "(N th/2)^2";
  List.iter
    (fun (n, pr, ps, lin, quad) ->
      emit_value (Printf.sprintf "random@N=%d" n) pr;
      emit_value (Printf.sprintf "systematic@N=%d" n) ps;
      Printf.printf "%8d %14.5g %14.5g %14.5g %14.5g\n" n pr ps lin quad)
    (Ft.Systematic.crossover_table ~theta ~steps_list:[ 1; 10; 100; 300 ]
       ~trials rng);
  print_endline
    "\nrandom signs follow the linear law, conspiring signs the quadratic\n\
     law: systematic errors need a quadratically better gate accuracy."

(* --------------------------------------------------------------- E10 *)

let e10 ?domains ?(engine = Mc.Engine.scalar) ~trials ~seed () =
  header "E10  Toric-code memory (Sec. 7): threshold of the Kitaev model";
  let ls = [ 4; 6; 8; 12 ] in
  let ps = [ 0.02; 0.05; 0.08; 0.10; 0.12; 0.15 ] in
  Printf.printf "%8s" "p \\ L";
  List.iter (fun l -> Printf.printf " %9d" l) ls;
  print_newline ();
  List.iteri
    (fun pi p ->
      Printf.printf "%8.3f" p;
      List.iter
        (fun l ->
          let seed = Mc.Rng.derive seed [ 10; l; pi ] in
          let e =
            match engine with
            | `Scalar ->
              let r =
                Toric.Memory.run_mc ?domains ~obs:(obs ()) ~l ~p ~trials ~seed
                  ()
              in
              Mc.Stats.estimate ~failures:r.failures ~trials:r.trials ()
            | `Batch { Mc.Engine.tile_width } ->
              let r =
                Toric.Memory.run_batch ?domains ~obs:(obs ()) ~tile_width ~l
                  ~p ~trials ~seed ()
              in
              Mc.Stats.estimate ~failures:r.failures ~trials:r.trials ()
            | `Rare config ->
              Mc.Stats.weighted_to_estimate
                (Toric.Memory.run_rare ?domains ~obs:(obs ()) ~config ~l ~p
                   ~seed ())
          in
          emit_count
            (Printf.sprintf "l=%d,p=%g" l p)
            ~failures:e.failures ~trials:e.trials;
          Printf.printf " %9.4f" e.rate)
        ls;
      print_newline ())
    ps;
  print_endline
    "\nbelow ~0.10 the failure rate falls with L (protected phase); above\n\
     it rises: the intrinsic fault tolerance of the topological medium."

(* --------------------------------------------------------------- E11 *)

let e11 ~seed () =
  let rng = Random.State.make [| seed; 11 |] in
  header "E11  Nonabelian flux-pair logic over A5 (Sec. 7.4)";
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  Printf.printf "computational fluxes (Eq. 45): u0 = %s, u1 = %s, v = %s\n"
    (Group.Perm.to_string u0) (Group.Perm.to_string u1)
    (Group.Perm.to_string v);
  let reg = Anyon.Register.create ~degree:5 [ u0; v ] in
  Anyon.Register.not_gate reg ~data:0 ~not_pair:1;
  emit_value "not_gate_ok"
    (if Group.Perm.equal (Anyon.Register.flux reg 0) u1 then 1.0 else 0.0);
  Printf.printf "pull-through NOT: u0 -> %s  (expected u1: %s)\n"
    (Group.Perm.to_string (Anyon.Register.flux reg 0))
    (string_of_bool (Group.Perm.equal (Anyon.Register.flux reg 0) u1));
  let a5 = Group.Finite_group.alternating 5 in
  let pair = Anyon.Pair_sim.create a5 ~class_rep:u0 in
  let minus = Anyon.Pair_sim.measure_charge pair rng ~projectile:v in
  Printf.printf
    "charge interferometer on |u0>: outcome %s, state = (|u0> %s |u1>)/sqrt2\n"
    (if minus then "-1" else "+1")
    (if minus then "-" else "+");
  Printf.printf "\ncommutator-closure depth (AND-tree survival):\n";
  List.iter
    (fun (name, g) ->
      match Anyon.Logic.commutator_closure_depth g ~max_depth:12 with
      | None ->
        Printf.printf
          "  %-4s order %3d: never dies (nonsolvable -> universal)\n" name
          (Group.Finite_group.order g)
      | Some d ->
        Printf.printf "  %-4s order %3d: dies at depth %d (solvable)\n" name
          (Group.Finite_group.order g) d)
    [ ("A5", a5);
      ("S4", Group.Finite_group.symmetric 4);
      ("A4", Group.Finite_group.alternating 4);
      ("D5", Group.Finite_group.dihedral 5);
      ("Z5", Group.Finite_group.cyclic 5) ];
  emit_value "a5_smallest_nonsolvable"
    (if Anyon.Logic.smallest_nonsolvable_check () then 1.0 else 0.0);
  Printf.printf "A5 smallest nonsolvable (checked against library groups): %b\n"
    (Anyon.Logic.smallest_nonsolvable_check ());
  (* exhaustive gate synthesis over the pull-through repertoire *)
  (match Anyon.Synthesis.not_via_pull_through () with
  | Some prog ->
    Printf.printf "synthesis: NOT rediscovered in %d pull-through move(s)\n"
      (List.length prog)
  | None -> print_endline "synthesis: NOT not found (unexpected)");
  Printf.printf
    "synthesis: no 2-register CNOT exists within 6 moves (exhaustive): %b\n"
    (Anyon.Synthesis.no_cnot_without_ancilla ~max_depth:6);
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  let cnot_with_v =
    Anyon.Synthesis.search
      ~encodings:[ (u0, u1); (u0, u1) ]
      ~ancillas:[ v ]
      ~targets:(function [ a; b ] -> [ a; a <> b ] | _ -> assert false)
      ~max_depth:4
  in
  Printf.printf
    "synthesis: no CNOT even with one v-ancilla within 4 moves: %b\n"
    (cnot_with_v = None);
  print_endline
    "(multi-qubit gates genuinely need the deep ancilla-assisted\n\
     constructions of Ogburn-Preskill: 16 moves / 6 ancillas for Toffoli)"

(* --------------------------------------------------------------- E12 *)

let e12 ?domains ~trials ~seed () =
  let rng = Random.State.make [| seed; 12 |] in
  header "E12  Leakage detection (Fig. 15)";
  (* single-qubit demo *)
  let t =
    Ft.Leakage.create ~n:2 ~noise:Ft.Noise.none ~leak_rate:0.0 rng
  in
  let d0 = Ft.Leakage.detect t ~data:0 ~ancilla:1 in
  Ft.Leakage.leak t 0;
  let d1 = Ft.Leakage.detect t ~data:0 ~ancilla:1 in
  Printf.printf "healthy qubit flagged: %b; leaked qubit flagged: %b\n" d0 d1;
  (* Block-level: one data qubit leaks, then several rounds of
     otherwise-perfect Steane-style EC run *through the leaky gates*
     (a leaked operand makes its XOR trivial) while healthy qubits
     depolarize at rate eps.  Without leak scrubbing the dead qubit
     keeps injecting phantom syndrome bits, so a single ordinary error
     elsewhere gets miscorrected onto a third qubit — failure at
     O(eps).  Scrubbing first (detect + replace with |0>) turns the
     leak into an ordinary correctable error and restores O(eps²). *)
  let code = Codes.Steane.code in
  (* data 0..6, ancilla block 7..13, detector ancilla 14 *)
  let total = 15 in
  let prepare_block tab =
    Array.iter
      (fun g ->
        ignore
          (Tableau.postselect_pauli tab
             (Codes.Stabilizer_code.embed code ~offset:0 ~total g)
             ~outcome:false))
      code.generators;
    ignore
      (Tableau.postselect_pauli tab
         (Codes.Stabilizer_code.embed code ~offset:0 ~total code.logical_z.(0))
         ~outcome:false)
  in
  let fresh_plus_ancilla tab =
    (* perfect |+bar> on qubits 7..13 by projection *)
    for i = 7 to 13 do
      Tableau.reset tab rng i
    done;
    Array.iter
      (fun g ->
        ignore
          (Tableau.postselect_pauli tab
             (Codes.Stabilizer_code.embed code ~offset:7 ~total g)
             ~outcome:false))
      code.generators;
    ignore
      (Tableau.postselect_pauli tab
         (Codes.Stabilizer_code.embed code ~offset:7 ~total code.logical_x.(0))
         ~outcome:false)
  in
  let run ~scrub ~key ~eps =
    let trial rng _ =
      let t =
        Ft.Leakage.create ~n:total ~noise:Ft.Noise.none ~leak_rate:0.0 rng
      in
      let sim = Ft.Leakage.sim t in
      let tab = Ft.Sim.tableau sim in
      prepare_block tab;
      Ft.Leakage.leak t (Random.State.int rng 7);
      for _round = 1 to 3 do
        if scrub then
          ignore
            (Ft.Leakage.scrub t ~qubits:(List.init 7 Fun.id) ~ancilla:14);
        (* storage noise on healthy data qubits *)
        for q = 0 to 6 do
          if (not (Ft.Leakage.leaked t q)) && Random.State.float rng 1.0 < eps
          then
            Tableau.apply_pauli tab
              (Pauli.single total q
                 [| Pauli.X; Pauli.Y; Pauli.Z |].(Random.State.int rng 3))
        done;
        (* bit-flip syndrome through leaky transversal XORs *)
        fresh_plus_ancilla tab;
        for i = 0 to 6 do
          Ft.Leakage.cnot t i (7 + i)
        done;
        let w = Gf2.Bitvec.create 7 in
        for i = 0 to 6 do
          if Ft.Leakage.measure t (7 + i) then Gf2.Bitvec.set w i true
        done;
        let s = Codes.Hamming.syndrome w in
        let v =
          (if Gf2.Bitvec.get s 0 then 4 else 0)
          + (if Gf2.Bitvec.get s 1 then 2 else 0)
          + if Gf2.Bitvec.get s 2 then 1 else 0
        in
        if v > 0 then Ft.Leakage.x t (v - 1)
      done;
      (* end of life: scrub in both arms (otherwise the leaked qubit
         cannot even be read out), then judge ideally *)
      ignore (Ft.Leakage.scrub t ~qubits:(List.init 7 Fun.id) ~ancilla:14);
      Ft.Sim.ideal_measure_logical_z sim code ~offset:0
    in
    let failures =
      Mc.Runner.failures ?domains ~obs:(obs ()) ~trials ~seed:key
        (Mc.Runner.scalar trial)
    in
    emit_count
      (Printf.sprintf "%s@eps=%g" (if scrub then "scrub" else "no_scrub") eps)
      ~failures ~trials;
    float_of_int failures /. float_of_int trials
  in
  Printf.printf "%10s %20s %20s\n" "eps" "scrub every round" "no scrubbing";
  List.iteri
    (fun i eps ->
      Printf.printf "%10.4g %20.5g %20.5g\n" eps
        (run ~scrub:true ~key:(Mc.Rng.derive seed [ 12; 0; i ]) ~eps)
        (run ~scrub:false ~key:(Mc.Rng.derive seed [ 12; 1; i ]) ~eps))
    [ 0.0; 5e-3; 1e-2; 2e-2 ];
  print_endline
    "(scrubbing converts the leak into a located, correctable error;\n\
     an unscrubbed leak corrupts every syndrome and amplifies ordinary\n\
     noise into logical failure)"

(* --------------------------------------------------------------- E13 *)

let e13 () =
  header "E13  Code comparison (Sec. 4.2): 5-qubit vs Steane vs Shor-9";
  Printf.printf "%12s %4s %4s %4s %10s %22s\n" "code" "n" "k" "d" "type"
    "bitwise H stays in code?";
  let check_h (code : Codes.Stabilizer_code.t) =
    (* apply bitwise H to |0bar> and test all stabilizers still ±1 *)
    let tab = Codes.Stabilizer_code.prepare_logical_zero code in
    for q = 0 to code.n - 1 do
      Tableau.h tab q
    done;
    Array.for_all
      (fun g -> Tableau.expectation tab g <> None)
      code.generators
  in
  List.iter
    (fun ((code : Codes.Stabilizer_code.t), kind) ->
      emit_value
        (code.name ^ ".distance")
        (float_of_int (Codes.Stabilizer_code.distance code));
      Printf.printf "%12s %4d %4d %4d %10s %22b\n" code.name code.n code.k
        (Codes.Stabilizer_code.distance code)
        kind (check_h code))
    [ (Codes.Steane.code, "CSS"); (Codes.Five_qubit.code, "non-CSS");
      (Codes.Shor9.code, "CSS") ];
  print_endline
    "\nSteane: bitwise H/P/CNOT are logical gates; the denser 5-qubit code\n\
     lacks them (its gate constructions are 'quite complex', Sec. 4.2)."

(* --------------------------------------------------------------- E14 *)

let e14 ~seed () =
  let rng = Random.State.make [| seed; 14 |] in
  header "E14  Shor's fault-tolerant Toffoli (Figs. 12-13)";
  (* all 8 basis inputs *)
  let ok = ref true in
  for input = 0 to 7 do
    let sv = Statevec.create 7 in
    if input land 1 = 1 then Statevec.x sv 0;
    if input land 2 = 2 then Statevec.x sv 1;
    if input land 4 = 4 then Statevec.x sv 2;
    Ft.Toffoli.apply sv rng ~data:(0, 1, 2) ~scratch:(3, 4, 5) ~control:6;
    let expected = Statevec.create 7 in
    if input land 1 = 1 then Statevec.x expected 0;
    if input land 2 = 2 then Statevec.x expected 1;
    if input land 4 = 4 then Statevec.x expected 2;
    Statevec.toffoli expected 0 1 2;
    (* scratch/control qubits of sv hold measurement leftovers: reset
       them in both states before comparing *)
    List.iter
      (fun q ->
        Statevec.reset sv rng q;
        Statevec.reset expected rng q)
      [ 3; 4; 5; 6 ];
    if Statevec.fidelity sv expected < 1.0 -. 1e-9 then ok := false
  done;
  emit_value "toffoli_basis_ok" (if !ok then 1.0 else 0.0);
  Printf.printf "teleported Toffoli exact on all 8 basis inputs: %b\n" !ok;
  (* superposition input *)
  let sv = Statevec.create 7 in
  Statevec.h sv 0;
  Statevec.h sv 1;
  Ft.Toffoli.apply sv rng ~data:(0, 1, 2) ~scratch:(3, 4, 5) ~control:6;
  let expected = Statevec.create 7 in
  Statevec.h expected 0;
  Statevec.h expected 1;
  Statevec.toffoli expected 0 1 2;
  List.iter
    (fun q ->
      Statevec.reset sv rng q;
      Statevec.reset expected rng q)
    [ 3; 4; 5; 6 ];
  emit_value "toffoli_superposition_fidelity" (Statevec.fidelity sv expected);
  Printf.printf "teleported Toffoli on (|00>+|01>+|10>+|11>)|0>: fidelity %.6f\n"
    (Statevec.fidelity sv expected);
  Printf.printf "transversal ingredients (encoded CNOT/CZ/H/measure): %b\n"
    (Ft.Toffoli.transversal_ingredients_check rng)

(* --------------------------------------------------------------- E16 *)

let e16 ?domains ~trials ~seed () =
  header
    "E16 Generalized Steane-method EC across CSS codes (Sec. 3.6, Fig. 10)";
  Printf.printf
    "one noisy EC cycle on a perfect block, judged ideally (eps = gate error)\n\n";
  Printf.printf "%18s %6s %10s %10s %10s\n" "code" "n" "eps=1e-3" "eps=4e-3"
    "eps=1e-2";
  List.iteri
    (fun ci (gadget, label) ->
      let code = Ft.Css_ec.code gadget in
      let n = code.Codes.Stabilizer_code.n in
      let total = 3 * n in
      let run ei eps =
        let noise = Ft.Noise.gates_only eps in
        let trial rng t =
          let plus_basis = t mod 2 = 0 in
          let sim = Ft.Sim.create ~n:total ~noise rng in
          let tab = Ft.Sim.tableau sim in
          Array.iter
            (fun g ->
              ignore
                (Tableau.postselect_pauli tab
                   (Codes.Stabilizer_code.embed code ~offset:0 ~total g)
                   ~outcome:false))
            code.generators;
          let l =
            if plus_basis then code.logical_x.(0) else code.logical_z.(0)
          in
          ignore
            (Tableau.postselect_pauli tab
               (Codes.Stabilizer_code.embed code ~offset:0 ~total l)
               ~outcome:false);
          ignore
            (Ft.Css_ec.recover sim gadget
               ~policy:Ft.Css_ec.Repeat_if_nontrivial ~data:0 ~ancilla:n
               ~checker:(2 * n) ~max_attempts:50);
          if plus_basis then Ft.Sim.ideal_measure_logical_x sim code ~offset:0
          else Ft.Sim.ideal_measure_logical_z sim code ~offset:0
        in
        let failures =
          Mc.Runner.failures ?domains ~obs:(obs ()) ~trials
            ~seed:(Mc.Rng.derive seed [ 16; ci; ei ])
            (Mc.Runner.scalar trial)
        in
        emit_count
          (Printf.sprintf "%s@eps=%g" label eps)
          ~failures ~trials;
        float_of_int failures /. float_of_int trials
      in
      Printf.printf "%18s %6d %10.5f %10.5f %10.5f\n%!" label n (run 0 1e-3)
        (run 1 4e-3) (run 2 1e-2))
    [ (Ft.Css_ec.for_steane (), "steane [[7,1,3]]");
      (Ft.Css_ec.for_shor9 (), "shor [[9,1,3]]");
      (Ft.Css_ec.for_reed_muller (), "RM [[15,1,3]]") ];
  print_endline
    "\nall distance-3, so all quadratic in eps; bigger blocks pay more fault\n\
     locations per cycle (the Eq. 30 trade-off in miniature)."

(* --------------------------------------------------------------- E17 *)

let e17 ?domains ~trials ~seed () =
  header
    "E17 Circuit-level concatenation: level-2 vs level-1 EC gadgets (Sec. 5)";
  Printf.printf
    "full fault-tolerant machinery at both levels (inner EC per sub-block,\n\
     outer syndromes through verified |0bar>_2 ancillas); %d / %d trials\n\n"
    (trials * 10) trials;
  Printf.printf "%10s %14s %14s\n" "eps" "p1 (level 1)" "p2 (level 2)";
  List.iteri
    (fun i eps ->
      let noise = Ft.Noise.gates_only eps in
      let f1, n1 =
        Ft.Concat_ec.logical_failure_rate_par ?domains ~obs:(obs ()) ~noise
          ~level:1 ~trials:(trials * 10)
          ~seed:(Mc.Rng.derive seed [ 17; 1; i ])
          ()
      in
      let f2, n2 =
        Ft.Concat_ec.logical_failure_rate_par ?domains ~obs:(obs ()) ~noise
          ~level:2 ~trials
          ~seed:(Mc.Rng.derive seed [ 17; 2; i ])
          ()
      in
      emit_count (Printf.sprintf "L1@eps=%g" eps) ~failures:f1 ~trials:n1;
      emit_count (Printf.sprintf "L2@eps=%g" eps) ~failures:f2 ~trials:n2;
      Printf.printf "%10.4g %14.5g %14.5g%s\n%!" eps
        (float_of_int f1 /. float_of_int n1)
        (float_of_int f2 /. float_of_int n2)
        (if f2 = 0 then
           Printf.sprintf "   (0/%d: <= %.1e at 95%%)" n2
             (3.0 /. float_of_int n2)
         else ""))
    [ 1e-3; 2e-3; 4e-3 ];
  print_endline
    "\nbelow the level-1 pseudo-threshold the level-2 block wins (the flow\n\
     p2 = A p1^2 in the flesh); near/above it the extra machinery of the\n\
     big block costs more than it buys."

(* --------------------------------------------------------------- E18 *)

let e18 ?domains ~trials ~seed () =
  header
    "E18 One big code vs concatenation (Sec. 5): Golay [[23,1,7]] vs Steane";
  Printf.printf
    "ideal-recovery memory failure per round (Pauli-frame Monte Carlo)\n\n";
  Printf.printf "%8s %14s %16s %14s\n" "eps" "steane (7q)" "steane^2 (49q)"
    "golay (23q)";
  let golay_decoder = Codes.Golay.css_decoder () in
  List.iteri
    (fun i eps ->
      let s1 =
        Codes.Pauli_frame.memory_failure_mc ?domains ~obs:(obs ()) ~level:1
          ~eps ~rounds:1 ~trials
          ~seed:(Mc.Rng.derive seed [ 18; 0; i ])
          ()
      in
      let s2 =
        Codes.Pauli_frame.memory_failure_mc ?domains ~obs:(obs ()) ~level:2
          ~eps ~rounds:1 ~trials
          ~seed:(Mc.Rng.derive seed [ 18; 1; i ])
          ()
      in
      let g =
        Codes.Pauli_frame.code_memory_failure_mc ?domains ~obs:(obs ())
          Codes.Golay.code golay_decoder ~eps ~rounds:1 ~trials
          ~seed:(Mc.Rng.derive seed [ 18; 2; i ])
          ()
      in
      emit (Printf.sprintf "steane_L1@eps=%g" eps) s1;
      emit (Printf.sprintf "steane_L2@eps=%g" eps) s2;
      emit (Printf.sprintf "golay@eps=%g" eps) g;
      Printf.printf "%8.3f %14.5f %16.5f %14.5f\n%!" eps s1.rate s2.rate g.rate)
    [ 0.002; 0.01; 0.03; 0.06; 0.10 ];
  print_endline
    "\nGolay corrects 3 errors in 23 qubits (failure ~ eps^4): it matches\n\
     the 49-qubit level-2 concatenated Steane code with under half the\n\
     qubits and beats it as eps grows — the paper's remark that 'a code\n\
     chosen from the family originally described by Shor may turn out to\n\
     be more efficient than the concatenated 7-bit code.'  Concatenation's\n\
     virtue is asymptotic (arbitrarily long computation), not\n\
     constant-factor efficiency."

(* --------------------------------------------------------------- E19 *)

let e19 ?domains ?(engine = Mc.Engine.scalar) ~trials ~seed () =
  header
    "E19 Toric memory with noisy syndrome measurement (Sec. 7, finite T)";
  Printf.printf
    "L rounds of measurement, qubit error p and measurement error q = p per\n\
     round; space-time (union-find) decoding of detection events\n\n";
  let ls = [ 4; 6; 8 ] in
  let ps = [ 0.005; 0.01; 0.02; 0.03; 0.04 ] in
  Printf.printf "%8s" "p \\ L";
  List.iter (fun l -> Printf.printf " %9d" l) ls;
  print_newline ();
  List.iteri
    (fun pi p ->
      Printf.printf "%8.3f" p;
      List.iter
        (fun l ->
          let seed = Mc.Rng.derive seed [ 19; l; pi ] in
          let r =
            match engine with
            | `Scalar ->
              Toric.Noisy_memory.run_mc ?domains ~obs:(obs ()) ~l ~rounds:l
                ~p ~q:p ~trials ~seed ()
            | `Batch { Mc.Engine.tile_width } ->
              Toric.Noisy_memory.run_batch ?domains ~obs:(obs ()) ~tile_width
                ~l ~rounds:l ~p ~q:p ~trials ~seed ()
            | `Rare _ ->
              (* the CLI whitelists engines per experiment; the
                 phenomenological model has no subset fault model *)
              invalid_arg "e19: rare engine unsupported"
          in
          emit_count
            (Printf.sprintf "l=%d,p=%g" l p)
            ~failures:r.failures ~trials:r.trials;
          Printf.printf " %9.4f" r.rate)
        ls;
      print_newline ())
    ps;
  print_endline
    "\nthe threshold drops from ~0.10 (perfect measurement, E10) to ~0.025:\n\
     when even looking at the medium is noisy, the syndrome history must\n\
     be decoded in space-time — Sec. 7's finite-temperature operation."

(* --------------------------------------------------------------- E20 *)

let e20 ?domains ~trials ~seed () =
  header
    "E20 Maximal parallelism vs storage errors (Sec. 6, third bullet)";
  let circuit = Ft.Steane_ec.syndrome_extraction_circuit () in
  let d_par = Circuit.depth circuit in
  let d_seq = Circuit.length circuit in
  Printf.printf
    "one Steane double-syndrome extraction: depth %d when maximally\n\
     parallel, %d operations when strictly serial (%.1fx longer exposure\n\
     for every resting qubit)\n\n"
    d_par d_seq
    (float_of_int d_seq /. float_of_int d_par);
  Printf.printf "%12s %18s %18s\n" "eps_store" "parallel schedule"
    "serial schedule";
  List.iteri
    (fun i eps_store ->
      let run k label exposure =
        let r =
          Codes.Pauli_frame.memory_failure_mc ?domains ~obs:(obs ()) ~level:1
            ~eps:(Float.min 0.75 (eps_store *. float_of_int exposure))
            ~rounds:1 ~trials
            ~seed:(Mc.Rng.derive seed [ 20; k; i ])
            ()
        in
        emit (Printf.sprintf "%s@eps_store=%g" label eps_store) r;
        r.rate
      in
      Printf.printf "%12.1e %18.5f %18.5f\n%!" eps_store
        (run 0 "parallel" d_par) (run 1 "serial" d_seq))
    [ 1e-5; 3e-5; 1e-4; 3e-4; 1e-3 ];
  print_endline
    "\n(each resting qubit is exposed for one gadget-execution per EC cycle;\n\
     serial hardware multiplies the effective storage error by the\n\
     depth ratio, shrinking the storage-error budget accordingly —\n\
     'parallel operation ... is critical for controlling storage errors.')"

(* --------------------------------------------------------------- E22 *)

let e22 ?domains ~trials ~seed () =
  header
    "E22 Gate vs storage error thresholds (Eqs. 34-35)";
  Printf.printf
    "Steane-EC failure with only gate errors vs only storage errors\n\
     (ancilla factories pipelined per Sec. 6: data idles one step per round)\n\n";
  Printf.printf "%10s %16s %16s\n" "eps" "gates only" "storage only";
  let gate_pts = ref [] and store_pts = ref [] in
  List.iteri
    (fun i eps ->
      let run k label noise =
        let r =
          Ft.Memory.steane_ec_failure_mc ?domains ~obs:(obs ()) ~noise
            ~policy:Ft.Steane_ec.Repeat_if_nontrivial
            ~verify:Ft.Steane_ec.Reject ~trials
            ~seed:(Mc.Rng.derive seed [ 22; k; i ])
            ()
        in
        emit (Printf.sprintf "%s@eps=%g" label eps) r;
        r.rate
      in
      let g = run 0 "gates_only" (Ft.Noise.gates_only eps) in
      let st = run 1 "storage_only" (Ft.Noise.storage_only eps) in
      gate_pts := (eps, g) :: !gate_pts;
      store_pts := (eps, st) :: !store_pts;
      Printf.printf "%10.4g %16.5g %16.5g\n%!" eps g st)
    [ 2e-3; 4e-3; 8e-3 ];
  let fit pts =
    Threshold.Pseudothreshold.fit (List.filter (fun (_, p) -> p > 0.0) pts)
  in
  (try
     let fg = fit !gate_pts and fs = fit !store_pts in
     emit_value "pseudothreshold_gates" fg.threshold;
     emit_value "pseudothreshold_storage" fs.threshold;
     Printf.printf
       "\nfitted pseudo-thresholds: gates %.2e, storage %.2e (ratio %.1f)\n"
       fg.threshold fs.threshold (fs.threshold /. fg.threshold)
   with _ -> ());
  print_endline
    "the paper: 'the thresholds for gate and storage errors are\n\
     essentially the same because the Steane method is well optimized for\n\
     dealing with storage errors' (Eqs. 34-35: both ~6e-4) — here both\n\
     land within a small factor of each other."

(* --------------------------------------------------------------- E23 *)

let e23 ?domains ~trials ~seed () =
  header
    "E23 The same logical program on stronger hardware codes (Sec. 4.2/5)";
  Printf.printf
    "logical GHZ (H + 2 CNOTs, EC after every gate) on three blocks;\n\
     identical program, different self-dual CSS code underneath\n\n";
  Printf.printf "%10s %16s %16s\n" "eps" "steane [[7,1,3]]" "golay [[23,1,7]]";
  let run gadget ~label ~key eps =
    let trial rng _ =
      let t =
        Ft.Css_logical.create ~gadget ~blocks:3
          ~noise:(Ft.Noise.gates_only eps) rng
      in
      Ft.Css_logical.h t 0;
      Ft.Css_logical.cnot t ~control:0 ~target:1;
      Ft.Css_logical.cnot t ~control:1 ~target:2;
      let a = Ft.Css_logical.ideal_z t 0 in
      let b = Ft.Css_logical.ideal_z t 1 in
      let c = Ft.Css_logical.ideal_z t 2 in
      not (a = b && b = c)
    in
    let failures =
      Mc.Runner.failures ?domains ~obs:(obs ()) ~trials ~seed:key
        (Mc.Runner.scalar trial)
    in
    emit_count (Printf.sprintf "%s@eps=%g" label eps) ~failures ~trials;
    float_of_int failures /. float_of_int trials
  in
  let steane = Ft.Css_ec.for_steane () in
  let golay = Ft.Css_ec.for_golay () in
  List.iteri
    (fun i eps ->
      Printf.printf "%10.4g %16.5g %16.5g\n%!" eps
        (run steane ~label:"steane" ~key:(Mc.Rng.derive seed [ 23; 0; i ]) eps)
        (run golay ~label:"golay" ~key:(Mc.Rng.derive seed [ 23; 1; i ]) eps))
    [ 1e-3; 3e-3; 6e-3 ];
  print_endline
    "\nthe identical logical program runs unchanged on either code (the\n\
     generalized transversal repertoire + Fig. 10 EC).  Near the gadget\n\
     threshold the Golay block's ~4x fault locations overwhelm its\n\
     distance-7 correction power and it LOSES — exactly the paper's 'if\n\
     the reliability of our hardware is close to the accuracy threshold,\n\
     then efficient codes will not work effectively; but as the hardware\n\
     improves, we can use better codes' (compare E18, where at code\n\
     capacity the Golay block wins at every rate)."

(* --------------------------------------------------------------- E24 *)

let e24 ?domains ~trials ~seed () =
  header
    "E24 Circuit-level toric memory: Kitaev's bare-ancilla scheme (Sec. 3.6)";
  Printf.printf
    "every plaquette measured through ONE unverified ancilla (|+>, four\n\
     CZs, X readout) under the full gate/prep/meas noise model; L rounds;\n\
     space-time union-find decoding\n\n";
  let ls = [ 3; 5 ] in
  Printf.printf "%10s" "eps \\ L";
  List.iter (fun l -> Printf.printf " %9d" l) ls;
  print_newline ();
  List.iteri
    (fun ei eps ->
      Printf.printf "%10.4f" eps;
      List.iter
        (fun l ->
          let r =
            Toric.Circuit_memory.run_mc ?domains ~obs:(obs ()) ~l ~rounds:l
              ~noise:(Ft.Noise.uniform eps) ~trials
              ~seed:(Mc.Rng.derive seed [ 24; l; ei ])
              ()
          in
          emit_count
            (Printf.sprintf "l=%d,eps=%g" l eps)
            ~failures:r.failures ~trials:r.trials;
          Printf.printf " %9.4f" r.rate)
        ls;
      print_newline ())
    [ 0.001; 0.003; 0.006; 0.010 ];
  print_endline
    "\nthe protected phase survives bare ancillas — Kitaev's point in Sec. 3.6\n\
     ('only a limited number of errors can feed back from the ancilla into\n\
     the data') — at a threshold ~0.5-1%, an order below the\n\
     phenomenological model's ~2.5% (E19) because every check now costs\n\
     ~6 noisy operations."

(* -------------------------------------------------------------- CSS *)

(* The generic-pipeline counterpart of E18: any Csskit.Zoo member,
   same memory model, scalar or bit-sliced engine.  Cell names and
   per-eps seed derivations ([derive seed [25; i]]) are the contract
   the css-memory service estimator reproduces. *)
let css ?domains ?(engine = Mc.Engine.scalar) ~code ~eps_list ~rounds ~trials
    ~seed () =
  let t = Csskit.Zoo.get code in
  header
    (Format.asprintf "CSS %a memory failure (generic pipeline)" Csskit.pp t);
  Printf.printf
    "per-trial logical failure, %d ideal-recovery round%s of depolarizing \
     noise\n\n"
    rounds
    (if rounds = 1 then "" else "s");
  let pts =
    List.mapi
      (fun i eps ->
        let seed = Mc.Rng.derive seed [ 25; i ] in
        let r =
          match engine with
          | `Scalar ->
            Csskit.Memory.memory_failure_mc ?domains ~obs:(obs ()) t ~eps
              ~rounds ~trials ~seed ()
          | `Batch { Mc.Engine.tile_width } ->
            Csskit.Memory.memory_failure_batch ?domains ~obs:(obs ())
              ~tile_width t ~eps ~rounds ~trials ~seed ()
          | `Rare _ ->
            (* parse_engine ~rare:false rejects this at flag time *)
            assert false
        in
        emit (Printf.sprintf "%s@eps=%g" code eps) r;
        Format.printf "  eps=%8.4g  p_L = %a@." eps Mc.Stats.pp r;
        (eps, r.rate))
      eps_list
  in
  (* Pseudothreshold participation: a t-error-correcting code fails at
     p_L ~ A·eps^(t+1), so the encoding pays below the crossover
     p_L = eps, i.e. eps* = A^(-1/t) — the E5 fit generalized from
     t = 1 (where it reduces to 1/A) to the code's own order. *)
  let tc = t.Csskit.correctable in
  let good = List.filter (fun (e, p) -> e > 0.0 && p > 0.0) pts in
  (* the fit needs a scan; a single-eps run emits just its cell, so it
     stays --diff-results-comparable with a css-memory service reply *)
  if tc >= 1 && List.length good >= 2 then begin
    let a =
      List.fold_left
        (fun acc (e, p) -> acc +. (p /. (e ** float_of_int (tc + 1))))
        0.0 good
      /. float_of_int (List.length good)
    in
    let threshold = a ** (-1.0 /. float_of_int tc) in
    emit_value "fitted_A" a;
    emit_value "pseudothreshold" threshold;
    Printf.printf
      "\nfitted p_L = A*eps^%d: A = %.3g  =>  pseudo-threshold eps* = \
       A^(-1/%d) = %.3g\n"
      (tc + 1) a tc threshold
  end

(* ------------------------------------------------------------- CLI *)

open Cmdliner

let trials_arg default =
  Arg.(value & opt int default & info [ "trials" ] ~doc:"Monte-Carlo trials")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"random seed")

(* 0 = auto: FTQC_DOMAINS if set, else the recommended domain count *)
let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:"worker domains for Monte-Carlo experiments (0 = auto)")

let resolve_domains d = if d <= 0 then None else Some d

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write a machine-readable manifest (schema ftqc-manifest/1) with \
           one record per experiment run — parameters, per-cell estimates \
           with Wilson intervals, wall-clock telemetry and engine metrics — \
           to $(docv).  Stdout is unchanged; recording never perturbs the \
           sampled randomness.")

(* Campaign flags, shared by every subcommand: --checkpoint FILE
   starts a fresh crash-safe campaign (refusing to clobber an
   existing checkpoint), --resume FILE reopens one and replays its
   completed chunks, --chunk-timeout SECS arms the per-chunk
   watchdog.  With a campaign active, SIGINT/SIGTERM degrade
   gracefully: workers stop at the next chunk boundary, the
   checkpoint and a partial manifest (with a resume token) are
   flushed, and the process exits 130. *)
let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "record completed Monte-Carlo chunks in a crash-safe checkpoint \
           (schema ftqc-checkpoint/1, atomic writes).  Refuses to overwrite \
           an existing $(docv) — resume it with $(b,--resume) instead.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "resume an interrupted campaign from $(docv): chunks already \
           recorded are replayed from the checkpoint (bit-identical to an \
           uninterrupted run, at any --domains), only missing chunks are \
           computed, and new completions keep being recorded.")

let chunk_timeout_arg =
  Arg.(
    value & opt float 0.0
    & info [ "chunk-timeout" ] ~docv:"SECS"
        ~doc:
          "per-chunk watchdog: a chunk stalled past $(docv) seconds is \
           abandoned and retried (with backoff) on the same deterministic \
           RNG stream; 0 disables.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "write a span trace of the run (schema ftqc-trace/1, Chrome \
           trace-event JSON — load it in Perfetto or chrome://tracing): \
           runner chunks and retries, rare-event weight classes, campaign \
           checkpoint flushes.  Purely observational: stdout, results and \
           checkpoints are byte-identical with or without it.")

let session_arg =
  let combine checkpoint resume chunk_timeout trace =
    (checkpoint, resume, chunk_timeout, trace)
  in
  Term.(
    const combine $ checkpoint_arg $ resume_arg $ chunk_timeout_arg
    $ trace_arg)

let die msg =
  Printf.eprintf "[ftqc] error: %s\n%!" msg;
  exit 2

(* Set up the campaign + manifest + live obs handle around [run],
   then write the files.  Notes go to stderr so stdout stays
   bit-identical to a run without --json.  A graceful interrupt
   (SIGINT/SIGTERM routed through Mc.Campaign) still writes both
   artifacts — the manifest gains an "interrupted" marker record
   carrying the resume token — and exits 130. *)
let with_session json (checkpoint, resume, chunk_timeout, trace) run =
  if chunk_timeout < 0.0 then die "--chunk-timeout must be >= 0";
  Mc.Runner.set_default_chunk_timeout chunk_timeout;
  let sink =
    match trace with
    | None -> None
    | Some _ ->
      let sk = Obs.Trace.sink () in
      Obs.Trace.install (Some sk);
      Some sk
  in
  let write_trace () =
    match (trace, sink) with
    | Some file, Some sk ->
      Obs.Trace.install None;
      Obs.Trace.write sk ~file;
      Printf.eprintf "[ftqc] wrote trace (%d spans) to %s\n%!"
        (Obs.Trace.sink_length sk) file
    | _ -> ()
  in
  let campaign =
    match (checkpoint, resume) with
    | Some _, Some _ -> die "--checkpoint and --resume are mutually exclusive"
    | Some file, None -> (
      match Mc.Campaign.create file with
      | Ok c -> Some c
      | Error msg -> die msg)
    | None, Some file -> (
      match Mc.Campaign.load file with
      | Ok c ->
        Printf.eprintf "[ftqc] resuming campaign from %s\n%!" file;
        Some c
      | Error msg -> die msg)
    | None, None -> None
  in
  if campaign <> None then Mc.Campaign.install_signal_handlers ();
  Mc.Campaign.set_current campaign;
  let interrupted = ref None in
  let body () =
    try run ()
    with Mc.Campaign.Interrupted { completed; total; checkpoint } ->
      interrupted := Some (completed, total, checkpoint)
  in
  (match json with
  | None -> body ()
  | Some file ->
    let m = Obs.Manifest.create () in
    manifest := Some m;
    run_obs := Obs.create ();
    body ();
    (match !interrupted with
    | None -> ()
    | Some (completed, total, cp) ->
      (* resume token: a well-formed record (empty results validate
         vacuously) that tells readers the run is partial and where
         to pick it up *)
      Obs.Manifest.add m
        { Obs.Manifest.experiment = "interrupted";
          params =
            (match cp with
            | Some f -> [ ("resume", Obs.Json.String f) ]
            | None -> []);
          results = [];
          telemetry =
            [ ("wall_s", Obs.Json.Float 0.0);
              ("chunks_done", Obs.Json.Int completed);
              ("chunks_total", Obs.Json.Int total) ] });
    Obs.Manifest.write ~generator:"ftqc-experiments"
      ~metrics:(Obs.to_json !run_obs) m ~file;
    Printf.eprintf "[ftqc] wrote manifest (%d records) to %s\n%!"
      (Obs.Manifest.length m) file);
  (match campaign with Some c -> Mc.Campaign.flush c | None -> ());
  Mc.Campaign.set_current None;
  (* after the final campaign flush, so its span is captured; also on
     the interrupted path (we exit 130 below) *)
  write_trace ();
  match !interrupted with
  | None -> ()
  | Some (_, _, cp) ->
    (match cp with
    | Some f ->
      Printf.eprintf
        "[ftqc] interrupted; progress saved — resume with --resume %s\n%!" f
    | None ->
      Printf.eprintf
        "[ftqc] interrupted; no --checkpoint, unfinished progress lost\n%!");
    exit 130

let simple name doc f =
  let run json session =
    with_session json session (fun () -> recording ~experiment:name f)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ json_arg $ session_arg)

let with_trials name doc default f =
  let run trials seed json session =
    with_session json session (fun () ->
        recording ~experiment:name
          ~params:[ p_trials trials; p_seed seed ]
          (fun () -> f ~trials ~seed ()))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ trials_arg default $ seed_arg $ json_arg $ session_arg)

(* parallel experiments additionally take --domains *)
let with_trials_par name doc default f =
  let run domains trials seed json session =
    let domains = resolve_domains domains in
    with_session json session (fun () ->
        recording ~experiment:name ~domains_used:(dused domains)
          ~params:[ p_trials trials; p_seed seed ]
          (fun () -> f ?domains ~trials ~seed ()))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ domains_arg $ trials_arg default $ seed_arg $ json_arg
      $ session_arg)

(* engine-capable experiments additionally take --engine and its
   per-engine options; the raw flag values go through the one shared
   {!Mc.Engine.of_cli} grammar, so every binary rejects a bad
   combination with the same message. *)
let engine_arg =
  Arg.(
    value
    & opt string "scalar"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Monte-Carlo engine: $(b,scalar) (per-shot, legacy sampling), \
           $(b,batch) (bit-sliced, 64 shots per word) or $(b,rare) \
           (weight-class subset sampling; ignores $(b,--trials))")

let tile_width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile-width" ] ~docv:"SHOTS"
        ~doc:
          "batch-engine shots per bit-slice tile: a positive multiple of 64 \
           (64, 256 and 512 are the tuned widths).  Failure counts are \
           bit-identical across widths; only throughput changes.")

let max_weight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-weight" ] ~docv:"W"
        ~doc:
          "rare-engine truncation order: fault configurations of weight \
           above W are bounded analytically instead of evaluated")

let samples_per_class_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "samples-per-class" ] ~docv:"K"
        ~doc:"rare-engine evaluations per sampled weight class")

(* [~rare:false] experiments have no subset fault model; the rejection
   happens here, at flag-parse time, with the shared usage text. *)
let parse_engine ~name ~rare engine tile_width max_weight samples_per_class =
  match
    Mc.Engine.of_cli ~engine ?tile_width ?max_weight ?samples_per_class ()
  with
  | Error msg ->
    Printf.eprintf "experiments: %s\n" msg;
    exit 2
  | Ok (`Rare _) when not rare ->
    Printf.eprintf
      "experiments: %s supports engines scalar and batch only (no subset \
       fault model)\n%s\n"
      name Mc.Engine.usage;
    exit 2
  | Ok e -> e

let with_trials_par_engine ?(rare = true) name doc default f =
  let run domains trials seed engine tile_width max_weight samples_per_class
      json session =
    let engine =
      parse_engine ~name ~rare engine tile_width max_weight samples_per_class
    in
    let domains = resolve_domains domains in
    with_session json session (fun () ->
        recording ~experiment:name ~domains_used:(dused domains)
          ~params:([ p_trials trials; p_seed seed ] @ p_engine engine)
          (fun () -> f ?domains ?engine:(Some engine) ~trials ~seed ()))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ domains_arg $ trials_arg default $ seed_arg $ engine_arg
      $ tile_width_arg $ max_weight_arg $ samples_per_class_arg $ json_arg
      $ session_arg)

let code_arg =
  Arg.(
    value & opt string "golay23"
    & info [ "code" ] ~docv:"CODE"
        ~doc:
          "code-zoo member to run: $(b,steane7), $(b,golay23), $(b,bch15) or \
           $(b,bch31)")

let eps_scan_arg =
  Arg.(
    value & opt_all float []
    & info [ "eps" ] ~docv:"EPS"
        ~doc:
          "physical depolarizing rate; repeat the flag for a scan (default \
           0.01 0.03 0.05)")

let rounds_arg =
  Arg.(
    value & opt int 1
    & info [ "rounds" ] ~docv:"R"
        ~doc:"ideal-recovery rounds per Monte-Carlo trial")

let css_cmd =
  let run domains trials seed engine tile_width max_weight samples_per_class
      code eps rounds json session =
    let engine =
      parse_engine ~name:"css" ~rare:false engine tile_width max_weight
        samples_per_class
    in
    if not (Csskit.Zoo.mem code) then
      die
        (Printf.sprintf "unknown zoo code %S (known: %s)" code
           (String.concat ", " (Csskit.Zoo.names ())));
    if rounds < 1 then die "--rounds must be >= 1";
    let eps_list = if eps = [] then [ 0.01; 0.03; 0.05 ] else eps in
    let domains = resolve_domains domains in
    with_session json session (fun () ->
        recording ~experiment:"css" ~domains_used:(dused domains)
          ~params:
            ([ ("code", Obs.Json.String code); p_trials trials; p_seed seed;
               ("rounds", Obs.Json.Int rounds) ]
            @ p_engine engine)
          (fun () ->
            css ?domains ~engine ~code ~eps_list ~rounds ~trials ~seed ()))
  in
  Cmd.v
    (Cmd.info "css"
       ~doc:
         "code-zoo memory failure through the generic CSS pipeline (any \
          Csskit.Zoo member, scalar or bit-sliced engine)")
    Term.(
      const run $ domains_arg $ trials_arg 20000 $ seed_arg $ engine_arg
      $ tile_width_arg $ max_weight_arg $ samples_per_class_arg $ code_arg
      $ eps_scan_arg $ rounds_arg $ json_arg $ session_arg)

let with_seed name doc f =
  let run seed json session =
    with_session json session (fun () ->
        recording ~experiment:name ~params:[ p_seed seed ] (fun () ->
            f ~seed ()))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ seed_arg $ json_arg $ session_arg)

let all_cmd =
  let run domains trials seed json session =
    let domains = resolve_domains domains in
    let du = dused domains in
    (* [par] records a --domains experiment, [seq] a sequential one;
       each closes over the exact trial count the experiment gets *)
    let par name ~trials:t body =
      recording ~experiment:name ~domains_used:du
        ~params:[ p_trials t; p_seed seed ]
        body
    in
    let seq name ?trials:t body =
      let params =
        match t with
        | Some t -> [ p_trials t; p_seed seed ]
        | None -> [ p_seed seed ]
      in
      recording ~experiment:name ~params body
    in
    with_session json session (fun () ->
        par "e1" ~trials (fun () -> e1 ?domains ~trials ~seed ());
        par "e2" ~trials (fun () -> e2 ?domains ~trials ~seed ());
        par "e3" ~trials (fun () -> e3 ?domains ~trials ~seed ());
        par "e4" ~trials (fun () -> e4 ?domains ~trials ~seed ());
        par "e5" ~trials:(trials * 2) (fun () ->
            e5 ?domains ~trials:(trials * 2) ~seed ());
        seq "e6" e6;
        par "e6b" ~trials:(max 5000 trials) (fun () ->
            e6b ?domains ~trials:(max 5000 trials) ~seed ());
        seq "e7" e7;
        seq "e8" e8;
        seq "e9" ~trials:200 (fun () -> e9 ~trials:200 ~seed ());
        par "e10"
          ~trials:(max 500 (trials / 4))
          (fun () -> e10 ?domains ~trials:(max 500 (trials / 4)) ~seed ());
        seq "e11" (fun () -> e11 ~seed ());
        par "e12"
          ~trials:(max 500 (trials / 4))
          (fun () -> e12 ?domains ~trials:(max 500 (trials / 4)) ~seed ());
        seq "e13" e13;
        seq "e14" (fun () -> e14 ~seed ());
        par "e15" ~trials:(max 5000 trials) (fun () ->
            e15 ?domains ~trials:(max 5000 trials) ~seed ());
        par "e16" ~trials:(min 3000 trials) (fun () ->
            e16 ?domains ~trials:(min 3000 trials) ~seed ());
        par "e17" ~trials:800 (fun () -> e17 ?domains ~trials:800 ~seed ());
        par "e18" ~trials:(max 20000 trials) (fun () ->
            e18 ?domains ~trials:(max 20000 trials) ~seed ());
        par "e19"
          ~trials:(max 1000 (trials / 6))
          (fun () -> e19 ?domains ~trials:(max 1000 (trials / 6)) ~seed ());
        par "e20" ~trials:(max 20000 trials) (fun () ->
            e20 ?domains ~trials:(max 20000 trials) ~seed ());
        par "e22" ~trials (fun () -> e22 ?domains ~trials ~seed ());
        par "e23"
          ~trials:(max 500 (trials / 8))
          (fun () -> e23 ?domains ~trials:(max 500 (trials / 8)) ~seed ());
        par "e24" ~trials:400 (fun () -> e24 ?domains ~trials:400 ~seed ());
        par "css"
          ~trials:(max 2000 (trials / 4))
          (fun () ->
            css ?domains ~code:"golay23" ~eps_list:[ 0.01; 0.03; 0.05 ]
              ~rounds:1
              ~trials:(max 2000 (trials / 4))
              ~seed ()))
  in
  Cmd.v (Cmd.info "all" ~doc:"run every experiment")
    Term.(
      const run $ domains_arg $ trials_arg 4000 $ seed_arg $ json_arg
      $ session_arg)

let () =
  let cmds =
    [ with_trials_par "e1" "memory fidelity (Eq. 14)" 20000 e1;
      with_trials_par "e2" "FT vs non-FT extraction" 20000 e2;
      with_trials_par "e3" "cat verification" 20000 e3;
      with_trials_par "e4" "syndrome repetition" 20000 e4;
      with_trials_par "e5" "pseudo-threshold" 20000 e5;
      simple "e6" "concatenation flow (Eqs. 36-37)" e6;
      with_trials_par_engine "e6b" "concatenated Steane Monte Carlo" 30000 e6b;
      simple "e7" "big-code scaling (Eqs. 30-32)" e7;
      simple "e8" "factoring resources (Sec. 6)" e8;
      with_trials "e9" "random vs systematic errors" 500 e9;
      with_trials_par_engine "e10" "toric-code threshold" 2000 e10;
      with_seed "e11" "A5 flux-pair logic" e11;
      with_trials_par "e12" "leakage detection" 2000 e12;
      simple "e13" "code comparison" e13;
      with_seed "e14" "fault-tolerant Toffoli" e14;
      with_trials_par_engine ~rare:false "e15" "biased-noise ablation" 30000
        e15;
      with_trials_par "e16" "generalized CSS EC" 5000 e16;
      with_trials_par "e17" "level-2 vs level-1 EC gadget" 3000 e17;
      with_trials_par "e18" "Golay vs concatenation" 50000 e18;
      with_trials_par_engine ~rare:false "e19" "toric with noisy measurement"
        2000 e19;
      with_trials_par "e20" "parallelism vs storage errors" 50000 e20;
      with_trials_par "e22" "gate vs storage thresholds" 20000 e22;
      with_trials_par "e23" "same program, stronger code" 2000 e23;
      with_trials_par "e24" "circuit-level toric memory" 500 e24;
      css_cmd; all_cmd ]
  in
  let info = Cmd.info "experiments" ~doc:"Preskill FTQC reproduction experiments" in
  exit (Cmd.eval (Cmd.group info cmds))
