(* ftqcd — the persistent estimation daemon.  Binds a Unix-domain
   socket and serves ftqc-rpc/1 requests (see lib/svc) until SIGINT,
   SIGTERM or a client shutdown request; the signal path is the same
   campaign stop flag the Monte-Carlo engine already honours, so a
   signal also stops in-flight runners at the next chunk boundary.
   The socket file is removed on the way out. *)

open Cmdliner
module Svc = Ftqc.Svc

let run socket max_queue workers cache_size domains progress_interval trace =
  let domains = if domains <= 0 then None else Some domains in
  Ftqc.Mc.Campaign.install_signal_handlers ();
  let cfg =
    Svc.Server.config ~socket ~max_queue ~workers ~cache_capacity:cache_size
      ?domains ~progress_interval ()
  in
  let sink =
    match trace with
    | None -> None
    | Some _ ->
      let sk = Ftqc.Obs.Trace.sink () in
      Ftqc.Obs.Trace.install (Some sk);
      Some sk
  in
  let write_trace () =
    match (trace, sink) with
    | Some file, Some sk ->
      Ftqc.Obs.Trace.install None;
      Ftqc.Obs.Trace.write sk ~file;
      Printf.eprintf "ftqcd: wrote %d spans to %s\n%!"
        (Ftqc.Obs.Trace.sink_length sk)
        file
    | _ -> ()
  in
  match
    Printf.printf "ftqcd: listening on %s (workers=%d, queue<=%d, cache<=%d)\n%!"
      socket workers max_queue cache_size;
    Svc.Server.run cfg
  with
  | () ->
    write_trace ();
    Printf.printf "ftqcd: stopped, %s removed\n%!" socket;
    0
  | exception Failure msg ->
    write_trace ();
    Printf.eprintf "ftqcd: %s\n" msg;
    1

let socket_arg =
  Arg.(
    value
    & opt string "ftqcd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let max_queue_arg =
  Arg.(
    value & opt int 32
    & info [ "max-queue" ]
        ~doc:"admission limit; further requests get a structured \
              $(i,overloaded) error")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~doc:"worker threads")

let cache_arg =
  Arg.(
    value & opt int 128 & info [ "cache-size" ] ~doc:"LRU result-cache entries")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:"Monte-Carlo domains per job (0 = engine default); results \
              do not depend on it")

let progress_arg =
  Arg.(
    value & opt float 1.0
    & info [ "progress-interval" ]
        ~doc:"seconds between progress frames to waiting clients")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "record request-lifecycle and runner spans and write a \
           $(i,ftqc-trace/1) Chrome trace-event file (Perfetto-loadable) on \
           exit; purely observational — results and cache keys are \
           unaffected")

let () =
  let term =
    Term.(
      const run $ socket_arg $ max_queue_arg $ workers_arg $ cache_arg
      $ domains_arg $ progress_arg $ trace_arg)
  in
  let info =
    Cmd.info "ftqcd" ~doc:"persistent FTQC estimation service daemon"
  in
  exit (Cmd.eval' (Cmd.v info term))
