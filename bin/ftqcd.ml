(* ftqcd — the persistent estimation daemon.  Binds a Unix-domain
   socket and serves ftqc-rpc/1 requests (see lib/svc) until SIGINT,
   SIGTERM or a client shutdown request; the signal path is the same
   campaign stop flag the Monte-Carlo engine already honours, so a
   signal also stops in-flight runners at the next chunk boundary.
   The socket file is removed on the way out.

   By default requests are sharded over a fleet of worker processes
   (--workers, crash-tolerant and byte-identical at any count; see
   Svc.Fleet); --in-process reverts to threads in this process. *)

(* Fleet workers are this same executable, re-exec'd with the worker
   marker in the environment: divert before cmdliner ever runs. *)
let () = Ftqc.Svc.Fleet.run_if_worker ()

open Cmdliner
module Svc = Ftqc.Svc

let run socket max_queue workers cache_size domains progress_interval trace
    in_process hang_timeout max_restarts rate_limit burst chaos_fleet =
  let domains = if domains <= 0 then None else Some domains in
  match
    match chaos_fleet with
    | None -> Ok []
    | Some s -> Ftqc.Mc.Chaos.fleet_list_of_string s
  with
  | Error msg ->
    Printf.eprintf "ftqcd: --chaos-fleet: %s\n" msg;
    2
  | Ok chaos -> (
    Ftqc.Mc.Campaign.install_signal_handlers ();
    let fleet =
      if in_process then None
      else
        Some
          (Svc.Fleet.config ?domains ~hang_timeout ~max_restarts ~chaos
             ~size:workers ())
    in
    let limit =
      if rate_limit <= 0.0 then Svc.Qos.unlimited
      else Svc.Qos.limit ~rate:rate_limit ~burst
    in
    let cfg =
      Svc.Server.config ~socket ~max_queue ~workers
        ~cache_capacity:cache_size ?domains ~progress_interval ?fleet ~limit
        ()
    in
    let sink =
      match trace with
      | None -> None
      | Some _ ->
        let sk = Ftqc.Obs.Trace.sink () in
        Ftqc.Obs.Trace.install (Some sk);
        Some sk
    in
    let write_trace () =
      match (trace, sink) with
      | Some file, Some sk ->
        Ftqc.Obs.Trace.install None;
        Ftqc.Obs.Trace.write sk ~file;
        Printf.eprintf "ftqcd: wrote %d spans to %s\n%!"
          (Ftqc.Obs.Trace.sink_length sk)
          file
      | _ -> ()
    in
    match
      Printf.printf
        "ftqcd: listening on %s (%s, queue<=%d, cache<=%d)\n%!" socket
        (if in_process then Printf.sprintf "workers=%d in-process" workers
         else Printf.sprintf "fleet of %d worker processes" workers)
        max_queue cache_size;
      Svc.Server.run cfg
    with
    | () ->
      write_trace ();
      Printf.printf "ftqcd: stopped, %s removed\n%!" socket;
      0
    | exception Failure msg ->
      write_trace ();
      Printf.eprintf "ftqcd: %s\n" msg;
      1)

let socket_arg =
  Arg.(
    value
    & opt string "ftqcd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let max_queue_arg =
  Arg.(
    value & opt int 32
    & info [ "max-queue" ]
        ~doc:"admission limit; further requests get a structured \
              $(i,overloaded) error")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ]
        ~doc:"worker processes (the fleet); with $(b,--in-process), worker \
              threads instead.  Results are byte-identical at any count")

let cache_arg =
  Arg.(
    value & opt int 128 & info [ "cache-size" ] ~doc:"LRU result-cache entries")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:"Monte-Carlo domains per job (0 = engine default); results \
              do not depend on it")

let progress_arg =
  Arg.(
    value & opt float 1.0
    & info [ "progress-interval" ]
        ~doc:"seconds between progress frames to waiting clients")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "record request-lifecycle and runner spans and write a \
           $(i,ftqc-trace/1) Chrome trace-event file (Perfetto-loadable) on \
           exit; purely observational — results and cache keys are \
           unaffected")

let in_process_arg =
  Arg.(
    value & flag
    & info [ "in-process" ]
        ~doc:"execute jobs on threads in this process instead of the \
              worker-process fleet")

let hang_timeout_arg =
  Arg.(
    value & opt float 30.0
    & info [ "hang-timeout" ]
        ~doc:"SIGKILL and restart a fleet worker whose progress stalls \
              this many seconds (0 disables the watchdog)")

let max_restarts_arg =
  Arg.(
    value & opt int 5
    & info [ "max-restarts" ]
        ~doc:"crash-restart budget per fleet worker slot (exponential \
              backoff between restarts)")

let rate_limit_arg =
  Arg.(
    value & opt float 0.0
    & info [ "rate-limit" ]
        ~doc:"per-tenant token-bucket rate, requests per second (0 = \
              unlimited); an empty bucket sheds load with a structured \
              $(i,overloaded) error carrying a retry-after hint")

let burst_arg =
  Arg.(
    value & opt float 8.0
    & info [ "burst" ] ~doc:"token-bucket burst size (with --rate-limit)")

let chaos_fleet_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-fleet" ] ~docv:"SPECS"
        ~doc:
          "fault injection for the fleet: ';'-separated specs \
           $(i,kill@W.G.N), $(i,hang:SECS@W.G.N), $(i,drop@W.G.N) (worker \
           slot W, spawn generation G, Nth dispatch).  Results are \
           byte-identical regardless")

let () =
  let term =
    Term.(
      const run $ socket_arg $ max_queue_arg $ workers_arg $ cache_arg
      $ domains_arg $ progress_arg $ trace_arg $ in_process_arg
      $ hang_timeout_arg $ max_restarts_arg $ rate_limit_arg $ burst_arg
      $ chaos_fleet_arg)
  in
  let info =
    Cmd.info "ftqcd" ~doc:"persistent FTQC estimation service daemon"
  in
  exit (Cmd.eval' (Cmd.v info term))
