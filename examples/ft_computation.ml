(* A complete fault-tolerant logical computation (§4–§5 in action):
   three logical qubits on Steane blocks, a GHZ-preparation circuit
   built from transversal gates with an error-correction cycle after
   every logical gate, run at several physical error rates, and judged
   by its logical correlations.

   Run with: dune exec examples/ft_computation.exe -- [trials] *)

open Ftqc

let () =
  let trials =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let rng = Random.State.make [| 808 |] in
  Printf.printf
    "logical GHZ on 3 Steane blocks (H, CNOT, CNOT + EC after each gate)\n";
  Printf.printf "%d trials per point; judged by ideal readout\n\n" trials;
  Printf.printf "%10s %14s %16s\n" "eps" "GHZ intact" "physical gates";
  List.iter
    (fun eps ->
      let ok = ref 0 and gates = ref 0 in
      for _ = 1 to trials do
        let t =
          Ft.Logical.create ~blocks:3 ~noise:(Ft.Noise.gates_only eps) rng
        in
        Ft.Logical.h t 0;
        Ft.Logical.cnot t ~control:0 ~target:1;
        Ft.Logical.cnot t ~control:1 ~target:2;
        gates := !gates + Ft.Sim.gate_count (Ft.Logical.sim t);
        let a = Ft.Logical.ideal_z t 0 in
        let b = Ft.Logical.ideal_z t 1 in
        let c = Ft.Logical.ideal_z t 2 in
        if a = b && b = c then incr ok
      done;
      Printf.printf "%10.1e %14.3f %16d\n%!" eps
        (float_of_int !ok /. float_of_int trials)
        (!gates / trials))
    [ 0.0; 1e-4; 3e-4; 1e-3; 3e-3 ];
  print_endline
    "\neach trial runs ~1000 noisy physical operations; the logical GHZ\n\
     correlations survive while eps stays below the gadget's threshold\n\
     scale, exactly the paper's promise of arbitrarily long reliable\n\
     computation from imperfect parts."
