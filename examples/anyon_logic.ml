(* Topological quantum logic with nonabelian fluxes (§7.3–7.4): the
   Eq. (45) encoding over A5, the pull-through NOT of Fig. 21, charge
   interferometry (Fig. 22), calibration of pairs from charge-zero
   vacuum pairs (Eq. 44), and the solvability analysis behind the
   universality claim.

   Run with: dune exec examples/anyon_logic.exe *)

open Ftqc

let () =
  let rng = Random.State.make [| 2718 |] in
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  Printf.printf "encoding: |0> = |%s pair>, |1> = |%s pair>, NOT flux %s\n\n"
    (Group.Perm.to_string u0) (Group.Perm.to_string u1)
    (Group.Perm.to_string v);

  (* classical register machine: a 3-bit register and some NOTs *)
  let bits = [ false; true; true ] in
  let reg =
    Anyon.Register.create ~degree:5
      (List.map (Anyon.Register.encode_bit ~zero:u0 ~one:u1) bits @ [ v ])
  in
  Printf.printf "register: %s %s %s\n"
    (Group.Perm.to_string (Anyon.Register.flux reg 0))
    (Group.Perm.to_string (Anyon.Register.flux reg 1))
    (Group.Perm.to_string (Anyon.Register.flux reg 2));
  Anyon.Register.not_gate reg ~data:0 ~not_pair:3;
  Anyon.Register.not_gate reg ~data:2 ~not_pair:3;
  Printf.printf "after NOT on bits 0 and 2: %s %s %s\n\n"
    (Group.Perm.to_string (Anyon.Register.flux reg 0))
    (Group.Perm.to_string (Anyon.Register.flux reg 1))
    (Group.Perm.to_string (Anyon.Register.flux reg 2));

  (* calibrate pairs out of the vacuum: charge-zero pairs (Eq. 44)
     collapse to definite flux under interferometry (Fig. 18) *)
  let a5 = Group.Finite_group.alternating 5 in
  let counts = Hashtbl.create 20 in
  for _ = 1 to 1000 do
    let pair = Anyon.Pair_sim.charge_zero a5 ~class_rep:u0 in
    let flux = Anyon.Pair_sim.measure_flux pair rng in
    let k = Group.Perm.to_string flux in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  Printf.printf
    "flux calibration of 1000 vacuum pairs: %d distinct 3-cycle fluxes seen\n"
    (Hashtbl.length counts);

  (* charge measurement prepares |+>/|->; repeated measurement agrees *)
  let pair = Anyon.Pair_sim.create a5 ~class_rep:u0 in
  let minus = Anyon.Pair_sim.measure_charge pair rng ~projectile:v in
  Printf.printf "charge measurement of |u0>: %s -> state (|u0> %s |u1>)/sqrt2\n"
    (if minus then "-1" else "+1")
    (if minus then "-" else "+");
  let again = Anyon.Pair_sim.measure_charge pair rng ~projectile:v in
  Printf.printf "repeated measurement agrees: %b\n\n" (minus = again);

  (* why A5: the conjugation dynamics survive iterated commutators *)
  Printf.printf "commutator-closure depths (AND-tree survival):\n";
  List.iter
    (fun (name, g) ->
      match Anyon.Logic.commutator_closure_depth g ~max_depth:12 with
      | None -> Printf.printf "  %-3s: unbounded (nonsolvable)\n" name
      | Some d -> Printf.printf "  %-3s: dies at depth %d\n" name d)
    [ ("A5", a5);
      ("S4", Group.Finite_group.symmetric 4);
      ("A4", Group.Finite_group.alternating 4) ]
