(* A tour of every code in the library: parameters, distances, bounds,
   exact code-capacity behaviour — the §2/§4.2/§5 menagerie in one
   table.

   Run with: dune exec examples/codes_tour.exe *)

open Ftqc
module Code = Codes.Stabilizer_code

let () =
  let rng = Random.State.make [| 1234 |] in
  Printf.printf "%14s %4s %3s %3s %9s %9s %11s %13s\n" "code" "n" "k" "d"
    "hamming" "perfect" "singleton" "p_fail(1%)";
  let tour =
    [ ("rep3 (bitflip)", Codes.More_codes.rep3_bit, true);
      ("[[4,2,2]]", Codes.More_codes.four_two_two, false);
      ("[[5,1,3]]", Codes.Five_qubit.code, true);
      ("steane [[7]]", Codes.Steane.code, true);
      ("shor [[9]]", Codes.Shor9.code, true);
      ("RM [[15]]", Codes.More_codes.reed_muller15, false);
      ("golay [[23]]", Codes.Golay.code, false);
      ("toric L=3", Toric.Code.stabilizer_code 3, false) ]
  in
  (* Golay's brute-force Pauli search is infeasible; its distance
     comes from the classical weight enumerators instead *)
  let distance (code : Code.t) =
    if code.name = "golay23" then Codes.Golay.quantum_distance ()
    else Code.distance code
  in
  let tour = List.map (fun (n, c, e) -> (n, c, e, distance c)) tour in
  List.iter
    (fun (name, (code : Code.t), exact_feasible, d) ->
      let hamming, perfect, singleton = Codes.Bounds.check_with ~d code in
      let p_fail =
        if exact_feasible && code.k = 1 then
          Printf.sprintf "%.3e"
            (Codes.Exact.failure_probability code (Code.default_decoder code)
               ~eps:0.01)
        else "-"
      in
      Printf.printf "%14s %4d %3d %3d %9b %9b %11b %13s\n" name code.n code.k
        d hamming perfect singleton p_fail)
    tour;
  print_newline ();

  (* every k=1 code round-trips a random single error through its own
     machinery *)
  List.iter
    (fun (name, (code : Code.t), _, d) ->
      if code.k = 1 && d >= 3 then begin
        let tab = Code.prepare_logical_zero code in
        let q = Random.State.int rng code.n in
        Tableau.apply_pauli tab (Pauli.single code.n q Pauli.Y);
        ignore (Code.ideal_recover code tab rng);
        Printf.printf "%-14s single-Y recovery: %s\n" name
          (if Code.logical_measure_z code tab rng 0 then "FAILED" else "ok")
      end)
    tour;
  print_newline ();
  Printf.printf
    "the [[5,1,3]] code saturates the quantum Hamming bound (1 + 15 = 2^4);\n";
  Printf.printf
    "the Golay code corrects t = 3 errors — failure O(eps^4) vs Steane's\n";
  Printf.printf "O(eps^2), visible in the p_fail column above.\n"
