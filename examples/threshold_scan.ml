(* Threshold scan: measure the level-1 failure rate of the logical
   CNOT extended rectangle over a range of gate error rates, fit the
   quadratic flow p1 = A eps^2, and project the concatenation flow
   equations to higher levels (§5).

   Run with: dune exec examples/threshold_scan.exe -- [trials] *)

open Ftqc

let () =
  let trials =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5000
  in
  let rng = Random.State.make [| 12345 |] in
  Printf.printf "logical CNOT exRec, %d trials per point\n\n" trials;
  let points =
    List.map
      (fun eps ->
        let r =
          Ft.Memory.logical_cnot_exrec_failure
            ~noise:(Ft.Noise.gates_only eps) ~trials rng
        in
        Printf.printf "  eps = %8.2e   p1 = %.3e (+- %.1e)\n%!" eps r.rate
          r.stderr;
        (eps, r.rate))
      [ 1e-3; 2e-3; 4e-3 ]
  in
  let fit = Threshold.Pseudothreshold.fit points in
  Printf.printf "\nfit: p1 = %.0f * eps^2   =>   pseudo-threshold %.2e\n" fit.a
    fit.threshold;
  Printf.printf "(paper's Eq. 33 toy model: A = 21; Eq. 34 estimate with all\n";
  Printf.printf " locations counted: eps0 ~ 6e-4; ours differs by gadget\n";
  Printf.printf " bookkeeping but the quadratic flow is the point)\n\n";
  Printf.printf "flow projections p_L = A p_{L-1}^2:\n";
  List.iter
    (fun eps ->
      Printf.printf "  eps = %8.2e :" eps;
      List.iteri
        (fun l p -> Printf.printf "  L%d %.2e" l p)
        (Threshold.Pseudothreshold.project fit ~eps ~levels:3);
      print_newline ())
    [ 1e-3; 1e-4; 1e-5 ]
