(* Kitaev's intrinsically fault-tolerant memory (§7): logical failure
   of the toric code versus physical error rate for growing lattices,
   decoded by union-find, plus the greedy-decoder ablation.

   Run with: dune exec examples/toric_memory.exe -- [trials] *)

open Ftqc

let () =
  let trials =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3000
  in
  let rng = Random.State.make [| 31337 |] in
  let ls = [ 4; 6; 8; 12; 16 ] in
  let ps = [ 0.02; 0.04; 0.06; 0.08; 0.09; 0.10; 0.11; 0.12 ] in
  Printf.printf "toric code, IID X noise, union-find decoder (%d trials)\n\n"
    trials;
  Printf.printf "%8s" "p \\ L";
  List.iter (fun l -> Printf.printf " %8d" l) ls;
  print_newline ();
  List.iter
    (fun p ->
      Printf.printf "%8.3f" p;
      List.iter
        (fun l ->
          let r = Toric.Memory.run ~l ~p ~trials rng in
          Printf.printf " %8.4f" r.rate)
        ls;
      print_newline ())
    ps;
  Printf.printf "\nunion-find vs greedy matching at p = 0.08:\n";
  List.iter
    (fun l ->
      let uf = Toric.Memory.run ~decoder:`Union_find ~l ~p:0.08 ~trials rng in
      let gr = Toric.Memory.run ~decoder:`Greedy ~l ~p:0.08 ~trials rng in
      Printf.printf "  L=%2d  union-find %.4f   greedy %.4f\n" l uf.rate
        gr.rate)
    [ 6; 10 ]
