(* Quickstart: encode a qubit with Steane's 7-qubit code, hit it with
   an error, extract the syndrome fault-tolerantly, recover, and read
   the logical qubit back out.

   Run with: dune exec examples/quickstart.exe *)

open Ftqc

let () =
  let rng = Random.State.make [| 42 |] in

  (* 1. Encode |1bar> exactly on the state-vector simulator using the
        Fig. 3 encoding circuit. *)
  let sv = Statevec.create 7 in
  Statevec.x sv Codes.Steane.input_qubit;
  ignore (Statevec.run ~rng sv (Codes.Steane.encoding_circuit ()));
  let one = Statevec.of_amplitudes (Codes.Steane.logical_one_amplitudes ()) in
  Printf.printf "encoded |1bar> fidelity with Eq. (7): %.6f\n"
    (Statevec.fidelity sv one);

  (* 2. Same state on the stabilizer simulator, then corrupt it. *)
  let code = Codes.Steane.code in
  let tab = Codes.Stabilizer_code.prepare_logical_zero code in
  let error = Pauli.of_string "IIYIIII" in
  Tableau.apply_pauli tab error;
  Printf.printf "injected error: %s\n" (Pauli.to_string error);

  (* 3. Diagnose: the 6-bit syndrome of Eq. (18). *)
  let syndrome = Codes.Stabilizer_code.ideal_recover code tab rng in
  Printf.printf "measured syndrome: %s (bit flips | phase flips)\n"
    (Gf2.Bitvec.to_string syndrome);

  (* 4. Read out the logical qubit: still |0bar>. *)
  let outcome = Codes.Stabilizer_code.logical_measure_z code tab rng 0 in
  Printf.printf "logical readout after recovery: |%dbar>  (expected |0bar>)\n"
    (if outcome then 1 else 0);

  (* 5. The same recovery as a noisy fault-tolerant gadget: Steane-style
        EC with verified ancilla blocks at gate error 1e-3. *)
  let noise = Ft.Noise.gates_only 1e-3 in
  let sim = Ft.Sim.create ~n:21 ~noise rng in
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g ->
      ignore
        (Tableau.postselect_pauli tab
           (Codes.Stabilizer_code.embed code ~offset:0 ~total:21 g)
           ~outcome:false))
    code.generators;
  ignore
    (Tableau.postselect_pauli tab
       (Codes.Stabilizer_code.embed code ~offset:0 ~total:21 code.logical_z.(0))
       ~outcome:false);
  let rounds =
    Ft.Steane_ec.recover sim ~policy:Ft.Steane_ec.Repeat_if_nontrivial
      ~verify:Ft.Steane_ec.Reject ~data:0 ~ancilla:7 ~checker:14
  in
  Printf.printf
    "noisy FT recovery used %d syndrome rounds, %d gates, %d faults injected\n"
    rounds (Ft.Sim.gate_count sim) (Ft.Sim.fault_count sim);
  Printf.printf "block still reads |0bar>: %b\n"
    (not (Ft.Sim.ideal_measure_logical_z sim code ~offset:0))
