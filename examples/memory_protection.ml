(* Memory protection (the paper's §2 motivation): store one qubit for
   many time steps, with and without Steane encoding, and watch the
   encoded fidelity scale as 1 − O(ε²) per round while the bare qubit
   decays linearly.

   Run with: dune exec examples/memory_protection.exe *)

open Ftqc

let () =
  let rng = Random.State.make [| 7 |] in
  let trials = 20_000 in
  let rounds = 5 in
  Printf.printf
    "storing a qubit for %d noise+recovery rounds (%d trials/point)\n\n"
    rounds trials;
  Printf.printf "%10s %16s %16s %12s\n" "eps" "bare qubit" "steane block"
    "gain";
  List.iter
    (fun eps ->
      (* a bare qubit suffers `rounds` depolarizing steps *)
      let bare_failures = ref 0 in
      for t = 1 to trials do
        let plus = t mod 2 = 0 in
        let tab = Tableau.create 1 in
        if plus then Tableau.h tab 0;
        for _ = 1 to rounds do
          if Random.State.float rng 1.0 < eps then
            Tableau.apply_pauli tab
              (Pauli.single 1 0
                 [| Pauli.X; Pauli.Y; Pauli.Z |].(Random.State.int rng 3))
        done;
        let o =
          if plus then Tableau.measure_x tab rng 0 else Tableau.measure tab rng 0
        in
        if o then incr bare_failures
      done;
      let bare = float_of_int !bare_failures /. float_of_int trials in
      let enc =
        Ft.Memory.encoded_ideal_ec Codes.Steane.code ~eps ~rounds ~trials rng
      in
      Printf.printf "%10.4g %16.5g %16.5g %12s\n" eps bare enc.rate
        (if enc.rate > 0.0 then Printf.sprintf "%.1fx" (bare /. enc.rate)
         else "inf"))
    [ 1e-3; 3e-3; 1e-2; 3e-2 ]
