(* "Digitalizing" decoherence (§2, Eq. 4): a data qubit of an encoded
   block becomes entangled with an environment qubit — a genuinely
   continuous error.  Measuring the error syndrome projects the
   continuum onto "no error" or "definite bit flip", and after the
   (discrete!) correction, the block returns exactly to the codespace
   and the environment is completely disentangled.

   Everything here is exact state-vector simulation: 7 data qubits +
   1 environment + 1 syndrome ancilla.

   Run with: dune exec examples/decoherence.exe *)

open Ftqc
module Sv = Statevec

let data = 0 (* block occupies qubits 0..6 *)
let env = 7
let anc = 8

(* measure one Z-type generator with the ancilla, returning the bit *)
let measure_generator sv rng gen =
  Sv.reset sv rng anc;
  Sv.h sv anc;
  for q = 0 to 6 do
    match Pauli.letter gen q with
    | Pauli.Z -> Sv.cz sv anc (data + q)
    | Pauli.X -> Sv.cnot sv anc (data + q)
    | Pauli.I -> ()
    | Pauli.Y -> assert false
  done;
  Sv.h sv anc;
  Sv.measure sv rng anc

let codespace_check sv =
  Array.for_all
    (fun g ->
      let g9 = Codes.Stabilizer_code.embed Codes.Steane.code ~offset:0 ~total:9 g in
      Float.abs (Sv.expectation sv g9 -. 1.0) < 1e-9)
    Codes.Steane.code.generators

let () =
  let rng = Random.State.make [| 20260704 |] in
  let theta = 0.6 in
  Printf.printf
    "encoded |0bar>; environment couples to data qubit 4 with angle %.2f\n"
    theta;
  Printf.printf "(error amplitude sin θ = %.3f, error probability %.3f)\n\n"
    (sin theta)
    (sin theta *. sin theta);

  let runs = 2000 in
  let no_error = ref 0 and flagged = ref 0 and failures = ref 0 in
  for _ = 1 to runs do
    let sv = Sv.create 9 in
    ignore (Sv.run ~rng sv
        (Circuit.map_qubits ~num_qubits:9 ~f:Fun.id
           (Codes.Steane.encoding_circuit ())));
    (* the continuous entangling interaction of Eq. (4):
       |d⟩|0⟩_env → cos θ |d⟩|0⟩ + sin θ (X₄|d⟩)|1⟩ *)
    Sv.apply_1q sv
      (Qmath.Cmat.of_lists
         [ [ Qmath.Cx.re (cos theta); Qmath.Cx.re (-.sin theta) ];
           [ Qmath.Cx.re (sin theta); Qmath.Cx.re (cos theta) ] ])
      env;
    Sv.cnot sv env (data + 4);
    (* block now entangled with the environment: not in the codespace,
       and the environment's reduced state is mixed *)
    assert (not (codespace_check sv));
    assert (Sv.purity sv ~keep:[ env ] < 1.0 -. 1e-6);
    (* measure the three bit-flip syndrome bits *)
    let s = Gf2.Bitvec.create 3 in
    List.iteri
      (fun i g -> if measure_generator sv rng g then Gf2.Bitvec.set s i true)
      [ Pauli.of_string "IIIZZZZ"; Pauli.of_string "IZZIIZZ";
        Pauli.of_string "ZIZIZIZ" ];
    (* decode: the syndrome points at the flipped qubit, or at none *)
    let v =
      (if Gf2.Bitvec.get s 0 then 4 else 0)
      + (if Gf2.Bitvec.get s 1 then 2 else 0)
      + if Gf2.Bitvec.get s 2 then 1 else 0
    in
    (if v = 0 then incr no_error
     else begin
       incr flagged;
       Sv.x sv (data + v - 1)
     end);
    (* after correction: back in the codespace exactly, logical intact,
       environment disentangled (the codespace projector has
       expectation 1, so the state factorizes) *)
    if
      not
        (codespace_check sv
        && Float.abs
             (Sv.expectation sv
                (Codes.Stabilizer_code.embed Codes.Steane.code ~offset:0
                   ~total:9 Codes.Steane.code.logical_z.(0))
             -. 1.0)
           < 1e-9)
    then incr failures;
    (* the environment is exactly pure again: provably disentangled *)
    if Float.abs (Sv.purity sv ~keep:[ env ] -. 1.0) > 1e-9 then
      incr failures
  done;
  Printf.printf "%d runs: syndrome said 'no error' %d times (expect ~%.0f),\n"
    runs !no_error
    (float_of_int runs *. (cos theta *. cos theta));
  Printf.printf "'qubit 4 flipped' %d times (expect ~%.0f)\n" !flagged
    (float_of_int runs *. (sin theta *. sin theta));
  Printf.printf
    "recovery failures: %d — after every single run the block is exactly\n"
    !failures;
  print_endline
    "back in the codespace with the logical qubit intact and the\n\
     environment disentangled: the continuous error was digitalized by\n\
     the syndrome measurement, exactly as §2 promises."
