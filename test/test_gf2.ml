open Ftqc
module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bitvec ---------------------------------------------------------- *)

let test_basic_ops () =
  let v = Bitvec.create 70 in
  check_int "length" 70 (Bitvec.length v);
  check "fresh is zero" true (Bitvec.is_zero v);
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 69 true;
  check "get 0" true (Bitvec.get v 0);
  check "get 63" true (Bitvec.get v 63);
  check "get 69" true (Bitvec.get v 69);
  check "get 1" false (Bitvec.get v 1);
  check_int "weight" 3 (Bitvec.weight v);
  check "parity odd" true (Bitvec.parity v);
  Bitvec.flip v 69;
  check "flipped off" false (Bitvec.get v 69);
  check_int "weight after flip" 2 (Bitvec.weight v)

let test_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 8" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v 8))

let test_string_roundtrip () =
  let s = "1010011100101" in
  let v = Bitvec.of_string s in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string v);
  check_int "weight" 7 (Bitvec.weight v)

let test_int_roundtrip () =
  for x = 0 to 127 do
    let v = Bitvec.of_int ~width:7 x in
    check_int "int roundtrip" x (Bitvec.to_int v)
  done

let test_xor_dot () =
  let a = Bitvec.of_string "110100" and b = Bitvec.of_string "011100" in
  Alcotest.(check string) "xor" "101000" (Bitvec.to_string (Bitvec.xor a b));
  check "dot" false (Bitvec.dot a b);
  (* |a∧b| = 2 -> even *)
  let c = Bitvec.of_string "100000" in
  check "dot odd" true (Bitvec.dot a c)

let test_append_sub () =
  let a = Bitvec.of_string "101" and b = Bitvec.of_string "0110" in
  let ab = Bitvec.append a b in
  Alcotest.(check string) "append" "1010110" (Bitvec.to_string ab);
  Alcotest.(check string) "sub" "011"
    (Bitvec.to_string (Bitvec.sub ab ~pos:3 ~len:3))

let test_support () =
  let v = Bitvec.of_string "0101001" in
  Alcotest.(check (list int)) "support" [ 1; 3; 6 ] (Bitvec.support v)

let test_blit_clear () =
  let a = Bitvec.of_string "1111" and b = Bitvec.of_string "0101" in
  Bitvec.blit ~src:b a;
  check "blit" true (Bitvec.equal a b);
  Bitvec.clear a;
  check "clear" true (Bitvec.is_zero a)

(* --- Mat ------------------------------------------------------------- *)

let test_identity_mul () =
  let i5 = Mat.identity 5 in
  let m = Mat.of_int_lists [ [ 1; 0; 1; 1; 0 ]; [ 0; 1; 1; 0; 1 ] ] in
  check "I*m... m*I = m" true (Mat.equal (Mat.mul m i5) m)

let test_rank_kernel () =
  let m =
    Mat.of_int_lists [ [ 1; 0; 1; 0 ]; [ 0; 1; 1; 0 ]; [ 1; 1; 0; 0 ] ]
  in
  (* row3 = row1 + row2 *)
  check_int "rank" 2 (Mat.rank m);
  let kernel = Mat.kernel m in
  check_int "kernel dim" 2 (List.length kernel);
  List.iter
    (fun k -> check "m*k = 0" true (Bitvec.is_zero (Mat.mul_vec m k)))
    kernel

let test_solve () =
  let m = Mat.of_int_lists [ [ 1; 1; 0 ]; [ 0; 1; 1 ] ] in
  let b = Bitvec.of_string "10" in
  (match Mat.solve m b with
  | None -> Alcotest.fail "solvable system reported unsolvable"
  | Some x ->
    check "solution valid" true (Bitvec.equal (Mat.mul_vec m x) b));
  (* inconsistent system: x+y = 0 and x+y = 1 *)
  let m2 = Mat.of_int_lists [ [ 1; 1 ]; [ 1; 1 ] ] in
  check "inconsistent" true (Mat.solve m2 (Bitvec.of_string "01") = None)

let test_inverse () =
  let m = Mat.of_int_lists [ [ 1; 1; 0 ]; [ 0; 1; 1 ]; [ 0; 0; 1 ] ] in
  (match Mat.inverse m with
  | None -> Alcotest.fail "invertible matrix reported singular"
  | Some inv ->
    check "m*inv = I" true (Mat.equal (Mat.mul m inv) (Mat.identity 3)));
  let singular = Mat.of_int_lists [ [ 1; 1 ]; [ 1; 1 ] ] in
  check "singular" true (Mat.inverse singular = None)

let test_transpose_row_space () =
  let m = Mat.of_int_lists [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ] in
  let t = Mat.transpose m in
  check_int "t rows" 3 (Mat.rows t);
  check "t entries" true (Mat.get t 2 0 && Mat.get t 2 1);
  check "row space membership" true
    (Mat.in_row_space m (Bitvec.of_string "110"));
  check "row space non-membership" false
    (Mat.in_row_space m (Bitvec.of_string "100"))

(* --- properties ------------------------------------------------------ *)

let bitvec_gen n =
  QCheck.Gen.(map (fun bits -> Bitvec.of_bool_list bits) (list_repeat n bool))

let arb_bitvec n =
  QCheck.make ~print:Bitvec.to_string (bitvec_gen n)

let prop_xor_involution =
  QCheck.Test.make ~name:"xor is an involution" ~count:200
    (QCheck.pair (arb_bitvec 37) (arb_bitvec 37))
    (fun (a, b) -> Bitvec.equal (Bitvec.xor (Bitvec.xor a b) b) a)

let prop_weight_xor =
  QCheck.Test.make ~name:"weight(a xor b) = |a|+|b|-2|a and b|" ~count:200
    (QCheck.pair (arb_bitvec 41) (arb_bitvec 41))
    (fun (a, b) ->
      Bitvec.weight (Bitvec.xor a b)
      = Bitvec.weight a + Bitvec.weight b - (2 * Bitvec.weight (Bitvec.and_ a b)))

let prop_dot_bilinear =
  QCheck.Test.make ~name:"dot is bilinear" ~count:200
    (QCheck.triple (arb_bitvec 23) (arb_bitvec 23) (arb_bitvec 23))
    (fun (a, b, c) ->
      Bool.equal
        (Bitvec.dot (Bitvec.xor a b) c)
        (Bitvec.dot a c <> Bitvec.dot b c))

let mat_gen rows cols =
  QCheck.Gen.(
    map
      (fun rs -> Mat.of_rows rs)
      (list_repeat rows (bitvec_gen cols)))

let arb_mat rows cols =
  QCheck.make ~print:(Format.asprintf "%a" Mat.pp) (mat_gen rows cols)

let prop_rank_transpose =
  QCheck.Test.make ~name:"rank m = rank mT" ~count:100 (arb_mat 5 9)
    (fun m -> Mat.rank m = Mat.rank (Mat.transpose m))

let prop_kernel_dim =
  QCheck.Test.make ~name:"rank + kernel dim = cols" ~count:100 (arb_mat 6 8)
    (fun m -> Mat.rank m + List.length (Mat.kernel m) = Mat.cols m)

let prop_mul_assoc =
  QCheck.Test.make ~name:"matrix multiplication associative" ~count:50
    (QCheck.triple (arb_mat 4 5) (arb_mat 5 6) (arb_mat 6 3))
    (fun (a, b, c) ->
      Mat.equal (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c)))

let prop_solve_consistent =
  QCheck.Test.make ~name:"solve returns a valid solution" ~count:100
    (QCheck.pair (arb_mat 5 7) (arb_bitvec 7))
    (fun (m, x) ->
      let b = Mat.mul_vec m x in
      match Mat.solve m b with
      | None -> false
      | Some x' -> Bitvec.equal (Mat.mul_vec m x') b)

let suites =
  [ ( "gf2.bitvec",
      [ Alcotest.test_case "basic ops" `Quick test_basic_ops;
        Alcotest.test_case "bounds" `Quick test_bounds;
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
        Alcotest.test_case "xor/dot" `Quick test_xor_dot;
        Alcotest.test_case "append/sub" `Quick test_append_sub;
        Alcotest.test_case "support" `Quick test_support;
        Alcotest.test_case "blit/clear" `Quick test_blit_clear;
        QCheck_alcotest.to_alcotest prop_xor_involution;
        QCheck_alcotest.to_alcotest prop_weight_xor;
        QCheck_alcotest.to_alcotest prop_dot_bilinear ] );
    ( "gf2.mat",
      [ Alcotest.test_case "identity mul" `Quick test_identity_mul;
        Alcotest.test_case "rank/kernel" `Quick test_rank_kernel;
        Alcotest.test_case "solve" `Quick test_solve;
        Alcotest.test_case "inverse" `Quick test_inverse;
        Alcotest.test_case "transpose/row space" `Quick test_transpose_row_space;
        QCheck_alcotest.to_alcotest prop_rank_transpose;
        QCheck_alcotest.to_alcotest prop_kernel_dim;
        QCheck_alcotest.to_alcotest prop_mul_assoc;
        QCheck_alcotest.to_alcotest prop_solve_consistent ] ) ]
