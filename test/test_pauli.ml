open Ftqc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_string_roundtrip () =
  List.iter
    (fun s -> check_str "roundtrip" s (Pauli.to_string (Pauli.of_string s)))
    [ "IIIZZZZ"; "XIXIXIX"; "YYY"; "-XZ"; "iY"; "-iZZ"; "IIII" ]

let test_single_letters () =
  let p = Pauli.of_string "IXYZ" in
  check "letter I" true (Pauli.letter p 0 = Pauli.I);
  check "letter X" true (Pauli.letter p 1 = Pauli.X);
  check "letter Y" true (Pauli.letter p 2 = Pauli.Y);
  check "letter Z" true (Pauli.letter p 3 = Pauli.Z);
  check_int "weight" 3 (Pauli.weight p);
  check_int "phase" 0 (Pauli.phase p)

let test_mul_phases () =
  let x = Pauli.of_string "X" and y = Pauli.of_string "Y" and z = Pauli.of_string "Z" in
  (* X·Y = iZ, Y·X = -iZ, Z·X = iY, X·Z = -iY, Y·Z = iX, Z·Y = -iX *)
  check_str "XY = iZ" "iZ" (Pauli.to_string (Pauli.mul x y));
  check_str "YX = -iZ" "-iZ" (Pauli.to_string (Pauli.mul y x));
  check_str "ZX = iY" "iY" (Pauli.to_string (Pauli.mul z x));
  check_str "XZ = -iY" "-iY" (Pauli.to_string (Pauli.mul x z));
  check_str "YZ = iX" "iX" (Pauli.to_string (Pauli.mul y z));
  check_str "ZY = -iX" "-iX" (Pauli.to_string (Pauli.mul z y));
  check "X² = I" true (Pauli.equal (Pauli.mul x x) (Pauli.identity 1));
  check "Y² = I" true (Pauli.equal (Pauli.mul y y) (Pauli.identity 1));
  check "Z² = I" true (Pauli.equal (Pauli.mul z z) (Pauli.identity 1))

let test_commutation () =
  let p = Pauli.of_string and c = Pauli.commutes in
  check "X,Z anticommute" false (c (p "X") (p "Z"));
  check "X,X commute" true (c (p "X") (p "X"));
  check "XX,ZZ commute" true (c (p "XX") (p "ZZ"));
  check "XI,ZZ anticommute" false (c (p "XI") (p "ZZ"));
  check "steane gens commute" true
    (c (p "IIIZZZZ") (p "XIXIXIX"))

let test_embed_via_single () =
  let y2 = Pauli.single 5 2 Pauli.Y in
  check_str "single" "IIYII" (Pauli.to_string y2);
  check_int "phase of Y single" 0 (Pauli.phase y2)

let test_neg_phase () =
  let p = Pauli.of_string "XX" in
  check_str "neg" "-XX" (Pauli.to_string (Pauli.neg p));
  check "neg . neg = id" true (Pauli.equal (Pauli.neg (Pauli.neg p)) p);
  check "equal_up_to_phase" true (Pauli.equal_up_to_phase p (Pauli.neg p));
  check "not equal" false (Pauli.equal p (Pauli.neg p))

let test_to_matrix () =
  (* to_matrix is a homomorphism: M(a·b) = M(a)·M(b) on 2 qubits *)
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 20 do
    let a = Pauli.random rng 2 and b = Pauli.random rng 2 in
    let lhs = Pauli.to_matrix (Pauli.mul a b) in
    let rhs = Qmath.Cmat.mul (Pauli.to_matrix a) (Pauli.to_matrix b) in
    check "matrix homomorphism" true (Qmath.Cmat.equal lhs rhs)
  done

let test_set_letter () =
  let p = Pauli.of_string "XYZ" in
  let q = Pauli.set_letter p 1 Pauli.I in
  check_str "set letter" "XIZ" (Pauli.to_string q);
  check_str "original untouched" "XYZ" (Pauli.to_string p)

(* properties *)

let arb_pauli n =
  let gen =
    QCheck.Gen.(
      map
        (fun (seed, phase) ->
          let rng = Random.State.make [| seed |] in
          Pauli.mul_phase (Pauli.random rng n) phase)
        (pair int (int_bound 3)))
  in
  QCheck.make ~print:Pauli.to_string gen

let prop_mul_assoc =
  QCheck.Test.make ~name:"pauli mul associative" ~count:300
    (QCheck.triple (arb_pauli 5) (arb_pauli 5) (arb_pauli 5))
    (fun (a, b, c) ->
      Pauli.equal (Pauli.mul (Pauli.mul a b) c) (Pauli.mul a (Pauli.mul b c)))

let prop_commute_or_anticommute =
  QCheck.Test.make ~name:"ab = ±ba" ~count:300
    (QCheck.pair (arb_pauli 5) (arb_pauli 5))
    (fun (a, b) ->
      let ab = Pauli.mul a b and ba = Pauli.mul b a in
      if Pauli.commutes a b then Pauli.equal ab ba
      else Pauli.equal ab (Pauli.neg ba))

let prop_square_phase =
  QCheck.Test.make ~name:"p² = ±I" ~count:300 (arb_pauli 6) (fun p ->
      let sq = Pauli.mul p p in
      Pauli.equal_up_to_phase sq (Pauli.identity 6)
      && (Pauli.phase sq = 0 || Pauli.phase sq = 2))

let prop_weight_subadditive =
  QCheck.Test.make ~name:"weight(ab) <= weight a + weight b" ~count:300
    (QCheck.pair (arb_pauli 7) (arb_pauli 7))
    (fun (a, b) -> Pauli.weight (Pauli.mul a b) <= Pauli.weight a + Pauli.weight b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:300 (arb_pauli 6) (fun p ->
      Pauli.equal p (Pauli.of_string (Pauli.to_string p)))

let suites =
  [ ( "pauli",
      [ Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "letters" `Quick test_single_letters;
        Alcotest.test_case "mul phases" `Quick test_mul_phases;
        Alcotest.test_case "commutation" `Quick test_commutation;
        Alcotest.test_case "single" `Quick test_embed_via_single;
        Alcotest.test_case "neg/phase" `Quick test_neg_phase;
        Alcotest.test_case "to_matrix homomorphism" `Quick test_to_matrix;
        Alcotest.test_case "set_letter" `Quick test_set_letter;
        QCheck_alcotest.to_alcotest prop_mul_assoc;
        QCheck_alcotest.to_alcotest prop_commute_or_anticommute;
        QCheck_alcotest.to_alcotest prop_square_phase;
        QCheck_alcotest.to_alcotest prop_weight_subadditive;
        QCheck_alcotest.to_alcotest prop_string_roundtrip ] ) ]
