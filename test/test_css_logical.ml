open Ftqc

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 149 |]

let test_golay_processor_gates () =
  let r = rng () in
  let t =
    Ft.Css_logical.create ~gadget:(Ft.Css_ec.for_golay ()) ~blocks:2
      ~noise:Ft.Noise.none r
  in
  check "starts |00>" true
    ((not (Ft.Css_logical.ideal_z t 0)) && not (Ft.Css_logical.ideal_z t 1));
  Ft.Css_logical.x t 0;
  Ft.Css_logical.cnot t ~control:0 ~target:1;
  check "X;CNOT -> |11>" true
    (Ft.Css_logical.ideal_z t 0 && Ft.Css_logical.ideal_z t 1);
  check "destructive readout" true (Ft.Css_logical.measure_z t 1);
  Ft.Css_logical.prepare_zero t 1;
  check "re-prepared |0>" false (Ft.Css_logical.ideal_z t 1);
  Ft.Css_logical.h t 1;
  Ft.Css_logical.s t 1;
  Ft.Css_logical.s t 1;
  Ft.Css_logical.h t 1;
  check "H S S H = X (transversal P on Golay)" true (Ft.Css_logical.ideal_z t 1)

let test_steane_gadget_matches_logical () =
  (* the generalized processor over the Steane gadget behaves like the
     specialized Logical processor *)
  let r = rng () in
  let t =
    Ft.Css_logical.create ~gadget:(Ft.Css_ec.for_steane ()) ~blocks:3
      ~noise:Ft.Noise.none r
  in
  Ft.Css_logical.h t 0;
  Ft.Css_logical.cnot t ~control:0 ~target:1;
  Ft.Css_logical.cnot t ~control:1 ~target:2;
  let a = Ft.Css_logical.ideal_z t 0 in
  let b = Ft.Css_logical.ideal_z t 1 in
  let c = Ft.Css_logical.ideal_z t 2 in
  check "GHZ correlations" true (a = b && b = c)

let test_non_self_dual_rejected () =
  let r = rng () in
  try
    ignore
      (Ft.Css_logical.create ~gadget:(Ft.Css_ec.for_shor9 ()) ~blocks:1
         ~noise:Ft.Noise.none r);
    Alcotest.fail "shor9 (not self-dual) accepted"
  with Invalid_argument _ -> ()

let test_golay_noisy_cnot () =
  let r = rng () in
  let ok = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    let t =
      Ft.Css_logical.create ~gadget:(Ft.Css_ec.for_golay ()) ~blocks:2
        ~noise:(Ft.Noise.gates_only 5e-4) r
    in
    Ft.Css_logical.x t 0;
    Ft.Css_logical.cnot t ~control:0 ~target:1;
    if Ft.Css_logical.ideal_z t 0 && Ft.Css_logical.ideal_z t 1 then incr ok
  done;
  check "noisy golay CNOT mostly survives" true (!ok >= trials - 1)

let test_readout_robust_to_errors () =
  (* up to 3 injected bit flips cannot fool the Golay destructive
     readout *)
  let r = rng () in
  let t =
    Ft.Css_logical.create ~gadget:(Ft.Css_ec.for_golay ()) ~blocks:1
      ~noise:Ft.Noise.none r
  in
  Ft.Css_logical.x t 0;
  Ft.Sim.inject (Ft.Css_logical.sim t)
    (Pauli.mul
       (Pauli.single 69 2 Pauli.X)
       (Pauli.mul (Pauli.single 69 9 Pauli.X) (Pauli.single 69 20 Pauli.X)));
  check "readout robust to 3 flips" true (Ft.Css_logical.measure_z t 0)

let suites =
  [ ( "ft.css_logical",
      [ Alcotest.test_case "golay gates" `Quick test_golay_processor_gates;
        Alcotest.test_case "steane gadget GHZ" `Quick
          test_steane_gadget_matches_logical;
        Alcotest.test_case "non-self-dual rejected" `Quick
          test_non_self_dual_rejected;
        Alcotest.test_case "noisy golay CNOT" `Quick test_golay_noisy_cnot;
        Alcotest.test_case "robust readout" `Quick
          test_readout_robust_to_errors ] ) ]
