open Ftqc
module Pf = Codes.Pauli_frame

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 71 |]

let test_class_algebra () =
  check "I neutral" true (Pf.compose Pf.L_i Pf.L_x = Pf.L_x);
  check "X∘X = I" true (Pf.compose Pf.L_x Pf.L_x = Pf.L_i);
  check "X∘Z = Y" true (Pf.compose Pf.L_x Pf.L_z = Pf.L_y);
  check "Y∘Z = X" true (Pf.compose Pf.L_y Pf.L_z = Pf.L_x)

let test_steane_class_basics () =
  check "identity -> I" true (Pf.steane_class (Pauli.identity 7) = Pf.L_i);
  (* single errors are corrected *)
  for q = 0 to 6 do
    List.iter
      (fun l ->
        check "weight-1 -> I" true
          (Pf.steane_class (Pauli.single 7 q l) = Pf.L_i))
      [ Pauli.X; Pauli.Y; Pauli.Z ]
  done;
  (* logical operators decode to their own class *)
  check "Xbar -> X" true (Pf.steane_class (Pauli.of_string "XXXXXXX") = Pf.L_x);
  check "Zbar -> Z" true (Pf.steane_class (Pauli.of_string "ZZZZZZZ") = Pf.L_z);
  check "weight-3 Xbar -> X" true
    (Pf.steane_class Codes.Steane.logical_x_weight3 = Pf.L_x);
  (* double bit flip -> logical X (Eq. 12) *)
  check "XX -> logical X" true
    (Pf.steane_class (Pauli.of_string "XXIIIII") = Pf.L_x);
  check "ZZ -> logical Z" true
    (Pf.steane_class (Pauli.of_string "ZZIIIII") = Pf.L_z)

let test_concatenated_consistency () =
  (* level 1 = plain Steane *)
  let r = rng () in
  for _ = 1 to 50 do
    let e = Pauli.random r 7 in
    check "level-1 = steane" true
      (Pf.concatenated_steane_class ~level:1 e = Pf.steane_class e)
  done

let test_concatenated_level2_single_block () =
  (* a logical X on one inner block of the 49-qubit code looks like a
     single X at the outer level: corrected *)
  let inner_logical_x =
    Codes.Stabilizer_code.embed Codes.Steane.code ~offset:0 ~total:49
      (Pauli.of_string "XXXXXXX")
  in
  check "one inner logical -> corrected" true
    (Pf.concatenated_steane_class ~level:2 inner_logical_x = Pf.L_i);
  (* logical X on the whole level-2 code *)
  let full = Pauli.of_letters (List.init 49 (fun _ -> Pauli.X)) in
  check "all-X -> logical X" true
    (Pf.concatenated_steane_class ~level:2 full = Pf.L_x)

let test_concatenated_level2_two_blocks () =
  (* logical X on two inner blocks = weight-2 outer error: decoded to a
     definite (possibly wrong) class, but composed with a third it is
     the Eq. 12 failure; check two inner logicals give a logical
     failure exactly when the outer decode miscorrects *)
  let lx b =
    Codes.Stabilizer_code.embed Codes.Steane.code ~offset:(7 * b) ~total:49
      (Pauli.of_string "XXXXXXX")
  in
  let e = Pauli.mul (lx 0) (lx 1) in
  check "two inner logicals -> outer logical error" true
    (Pf.concatenated_steane_class ~level:2 e = Pf.L_x)

let test_depolarize_statistics () =
  let r = rng () in
  let total = ref 0 in
  let n = 1000 and eps = 0.3 in
  for _ = 1 to 30 do
    total := !total + Pauli.weight (Pf.depolarize r ~eps ~n)
  done;
  let mean = float_of_int !total /. 30.0 /. float_of_int n in
  check "depolarize rate" true (Float.abs (mean -. eps) < 0.03)

let test_biased_statistics () =
  let r = rng () in
  let nz = ref 0 and nx = ref 0 in
  let n = 2000 in
  for _ = 1 to 30 do
    let e = Pf.biased_depolarize r ~eps:0.3 ~eta:10.0 ~n in
    for q = 0 to n - 1 do
      match Pauli.letter e q with
      | Pauli.Z -> incr nz
      | Pauli.X -> incr nx
      | _ -> ()
    done
  done;
  let ratio = float_of_int !nz /. float_of_int (max 1 !nx) in
  check "Z/X ratio ~ eta" true (ratio > 7.0 && ratio < 14.0)

let test_memory_suppression () =
  let r = rng () in
  let p1 = (Pf.memory_failure ~level:1 ~eps:0.02 ~rounds:1 ~trials:20000 r).rate in
  let p2 = (Pf.memory_failure ~level:2 ~eps:0.02 ~rounds:1 ~trials:20000 r).rate in
  check "level 2 strongly suppressed" true (p2 < p1 /. 4.0);
  (* above threshold the ordering reverses *)
  let q1 = (Pf.memory_failure ~level:1 ~eps:0.13 ~rounds:1 ~trials:5000 r).rate in
  let q2 = (Pf.memory_failure ~level:2 ~eps:0.13 ~rounds:1 ~trials:5000 r).rate in
  check "above threshold level 2 worse" true (q2 > q1)

let test_rounds_accumulate () =
  let r = rng () in
  let one = (Pf.memory_failure ~level:1 ~eps:0.02 ~rounds:1 ~trials:30000 r).rate in
  let five = (Pf.memory_failure ~level:1 ~eps:0.02 ~rounds:5 ~trials:30000 r).rate in
  check "5 rounds ~ 5x failure" true
    (five > 3.0 *. one && five < 7.0 *. one)

let test_code_memory_generic () =
  let r = rng () in
  let d = Codes.Stabilizer_code.lookup_decoder Codes.Five_qubit.code in
  let e =
    Pf.code_memory_failure Codes.Five_qubit.code d ~eps:0.01 ~rounds:1
      ~trials:20000 r
  in
  (* distance 3: failure O(eps^2) *)
  check "five-qubit pauli-frame memory" true (e.rate < 0.01)

let prop_class_matches_tableau =
  (* the pauli-frame classification agrees with a tableau experiment *)
  QCheck.Test.make ~name:"pauli-frame class = tableau ground truth" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let e = Codes.Pauli_frame.depolarize r ~eps:0.15 ~n:7 in
      let cls = Pf.steane_class e in
      (* tableau: prepare |0bar>, apply e, ideal recover, measure Zbar;
         the Z outcome must flip iff the class has an X component *)
      let tab = Codes.Stabilizer_code.prepare_logical_zero Codes.Steane.code in
      Tableau.apply_pauli tab e;
      ignore
        (Codes.Stabilizer_code.ideal_recover Codes.Steane.code tab r);
      let flipped =
        Codes.Stabilizer_code.logical_measure_z Codes.Steane.code tab r 0
      in
      let has_x = cls = Pf.L_x || cls = Pf.L_y in
      Bool.equal flipped has_x)

let suites =
  [ ( "codes.pauli_frame",
      [ Alcotest.test_case "class algebra" `Quick test_class_algebra;
        Alcotest.test_case "steane classes" `Quick test_steane_class_basics;
        Alcotest.test_case "level-1 consistency" `Quick
          test_concatenated_consistency;
        Alcotest.test_case "level-2 single block" `Quick
          test_concatenated_level2_single_block;
        Alcotest.test_case "level-2 two blocks" `Quick
          test_concatenated_level2_two_blocks;
        Alcotest.test_case "depolarize statistics" `Quick
          test_depolarize_statistics;
        Alcotest.test_case "biased statistics" `Quick test_biased_statistics;
        Alcotest.test_case "memory suppression" `Quick test_memory_suppression;
        Alcotest.test_case "rounds accumulate" `Quick test_rounds_accumulate;
        Alcotest.test_case "generic code memory" `Quick
          test_code_memory_generic;
        QCheck_alcotest.to_alcotest prop_class_matches_tableau ] ) ]
