(* The rare-event engine: Mc.Subset combinatorics, Mc.Stats weighted
   estimates, and the `Rare engine behind the unified Mc.Runner API.
   The load-bearing properties: the analytic binomial prefactors and
   enumeration are exact (a fully-enumerated estimate equals the
   closed-form answer), the truncation bound is monotone and lands in
   the reported interval, class sums merge associatively (the
   determinism primitive), rare and plain Monte Carlo agree where
   their regimes overlap — at any domain count — and an interrupted
   rare campaign resumes bit-identically. *)

open Ftqc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------ Subset combinatorics *)

let small = { Mc.Subset.locations = 6; kinds = 1; p = 0.3 }

let test_class_prob_normalizes () =
  let total = ref 0.0 in
  for w = 0 to small.locations do
    let pr = Mc.Subset.class_prob small ~weight:w in
    check (Printf.sprintf "P(%d) in [0,1]" w) true (pr >= 0.0 && pr <= 1.0);
    total := !total +. pr
  done;
  check_float "class probabilities sum to 1" 1.0 !total

let test_tail_mass_monotone () =
  let m = { Mc.Subset.locations = 50; kinds = 3; p = 0.02 } in
  let prev = ref (Mc.Subset.tail_mass m ~max_weight:0) in
  for w = 1 to 12 do
    let t = Mc.Subset.tail_mass m ~max_weight:w in
    check (Printf.sprintf "tail(W=%d) <= tail(W=%d)" w (w - 1)) true
      (t <= !prev);
    check "tail nonnegative" true (t >= 0.0);
    prev := t
  done;
  check "tail at W=N vanishes" true
    (Mc.Subset.tail_mass m ~max_weight:m.locations <= 1e-12)

let test_unrank_enumerates_distinct () =
  let m = { Mc.Subset.locations = 5; kinds = 2; p = 0.1 } in
  let size = Mc.Subset.class_size_capped m ~weight:2 ~cap:1000 in
  check_int "class size C(5,2)*2^2" 40 size;
  let seen = Hashtbl.create 64 in
  for i = 0 to size - 1 do
    let faults = Mc.Subset.unrank m ~weight:2 ~index:i in
    check_int "weight-2 config has 2 faults" 2 (Array.length faults);
    Array.iter
      (fun { Mc.Subset.loc; kind } ->
        check "loc in range" true (loc >= 0 && loc < m.locations);
        check "kind in range" true (kind >= 0 && kind < m.kinds))
      faults;
    check "locs strictly sorted" true
      (faults.(0).Mc.Subset.loc < faults.(1).Mc.Subset.loc);
    let key =
      Array.to_list faults
      |> List.map (fun { Mc.Subset.loc; kind } -> Printf.sprintf "%d:%d" loc kind)
      |> String.concat ","
    in
    check ("config " ^ key ^ " unranked once") false (Hashtbl.mem seen key);
    Hashtbl.add seen key ()
  done;
  check_int "all configurations enumerated" size (Hashtbl.length seen)

let test_sample_shape () =
  let m = { Mc.Subset.locations = 40; kinds = 3; p = 0.05 } in
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 50 do
    let faults = Mc.Subset.sample m ~weight:4 rng in
    check_int "sampled weight" 4 (Array.length faults);
    for i = 0 to 2 do
      check "sampled locs strictly sorted" true
        (faults.(i).Mc.Subset.loc < faults.(i + 1).Mc.Subset.loc)
    done;
    Array.iter
      (fun { Mc.Subset.loc; kind } ->
        check "sampled loc in range" true (loc >= 0 && loc < m.locations);
        check "sampled kind in range" true (kind >= 0 && kind < m.kinds))
      faults
  done

(* ----------------------------------------------- class-sum merge laws *)

let cs evals failures =
  { Mc.Stats.weight = 3; prob = 0.125; evals; failures; exhaustive = false }

let test_merge_class_laws () =
  let a = cs 100 7 and b = cs 50 3 and c = cs 25 1 in
  let ( + ) = Mc.Stats.merge_class in
  check "associative" true (a + b + c = a + (b + c));
  check "commutative" true (a + b = b + a);
  let zero = cs 0 0 in
  check "zero-count sum is identity" true (a + zero = a);
  (* merging across classes must be refused *)
  let other = { (cs 10 1) with Mc.Stats.weight = 4 } in
  check "cross-class merge raises" true
    (match Mc.Stats.merge_class a other with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------- exactness of full enumeration *)

(* failure iff at least 3 of 6 sites fire: the fully-enumerated rare
   estimate must equal the closed-form binomial tail, with zero
   stderr and zero truncation *)
let test_enumeration_exact () =
  let model =
    Mc.Runner.model
      ~worker_init:(fun () -> ())
      ~rare:
        { Mc.Runner.fault_model = small;
          evaluate = (fun () faults -> Array.length faults >= 3) }
      ()
  in
  let config =
    match Mc.Engine.rare ~max_weight:6 ~samples_per_class:10 () with
    | `Rare c -> c
    | _ -> assert false
  in
  let w = Mc.Runner.estimate_rare ~domains:2 ~config ~seed:41 model in
  let analytic = ref 0.0 in
  for k = 3 to 6 do
    analytic := !analytic +. Mc.Subset.class_prob small ~weight:k
  done;
  check_float "rate equals the closed-form tail" !analytic w.rate;
  check_float "exhaustive classes carry no sampling error" 0.0 w.stderr;
  check_float "no truncation at W = N" 0.0 w.truncation;
  check "truncation bound inside the reported interval" true
    (w.ci_high >= w.rate +. w.truncation);
  (* failures under the rare engine is the raw failing-config count *)
  let raw =
    Mc.Runner.failures ~engine:(`Rare config) ~trials:0 ~seed:41 model
  in
  check_int "failures = raw_failures" w.raw_failures raw

(* truncating the same model reports the dropped mass as the bound *)
let test_truncation_reported () =
  let model =
    Mc.Runner.model
      ~worker_init:(fun () -> ())
      ~rare:
        { Mc.Runner.fault_model = small;
          evaluate = (fun () faults -> Array.length faults >= 3) }
      ()
  in
  let at max_weight =
    let config =
      match Mc.Engine.rare ~max_weight ~samples_per_class:10 () with
      | `Rare c -> c
      | _ -> assert false
    in
    Mc.Runner.estimate_rare ~config ~seed:41 model
  in
  let w2 = at 2 and w4 = at 4 in
  check_float "truncation = analytic tail mass"
    (Mc.Subset.tail_mass small ~max_weight:2)
    w2.truncation;
  check "truncation shrinks with the cutoff" true
    (w4.truncation < w2.truncation);
  check "upper edge covers the truncated tail" true
    (w2.ci_high >= w2.rate +. w2.truncation);
  (* here every failure has weight >= 3, so the W=2 rate is 0 but the
     interval still contains the exact answer via the bound *)
  check_float "W=2 sees no failures" 0.0 w2.rate;
  check "interval still contains the exact rate" true
    (w2.ci_high >= Mc.Subset.tail_mass small ~max_weight:2)

(* ---------------------------------------------- engine CLI + mismatch *)

let test_of_cli () =
  let ok r = match r with Ok e -> e | Error m -> Alcotest.fail m in
  check "default is scalar" true (ok (Mc.Engine.of_cli ()) = `Scalar);
  (match ok (Mc.Engine.of_cli ~engine:"rare" ~max_weight:3
               ~samples_per_class:10 ()) with
  | `Rare { Mc.Engine.max_weight; samples_per_class; enum_cutoff } ->
    check_int "max_weight threaded" 3 max_weight;
    check_int "samples_per_class threaded" 10 samples_per_class;
    check_int "enum_cutoff defaulted" Mc.Engine.default_enum_cutoff enum_cutoff
  | _ -> Alcotest.fail "rare flags must select the rare engine");
  let rejected r = match r with Error _ -> true | Ok _ -> false in
  check "unknown engine rejected" true
    (rejected (Mc.Engine.of_cli ~engine:"turbo" ()));
  check "tile width on scalar rejected" true
    (rejected (Mc.Engine.of_cli ~tile_width:256 ()));
  check "tile width on rare rejected" true
    (rejected (Mc.Engine.of_cli ~engine:"rare" ~tile_width:256 ()));
  check "max_weight on batch rejected" true
    (rejected (Mc.Engine.of_cli ~engine:"batch" ~max_weight:3 ()));
  check "samples_per_class on scalar rejected" true
    (rejected (Mc.Engine.of_cli ~samples_per_class:10 ()));
  (* every rejection carries the engine grammar *)
  (match Mc.Engine.of_cli ~engine:"turbo" () with
  | Error msg ->
    let n = String.length msg and m = String.length Mc.Engine.usage in
    let found = ref false in
    for i = 0 to n - m do
      if String.sub msg i m = Mc.Engine.usage then found := true
    done;
    check "error message ends with the usage text" true !found
  | Ok _ -> Alcotest.fail "unknown engine accepted")

let test_capability_mismatch () =
  let scalar_only = Mc.Runner.scalar (fun _ _ -> false) in
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "batch engine on a scalar-only model raises" true
    (raises (fun () ->
         Mc.Runner.failures ~engine:(Mc.Engine.batch ()) ~trials:64 ~seed:1
           scalar_only));
  check "rare engine on a scalar-only model raises" true
    (raises (fun () ->
         Mc.Runner.failures ~engine:(Mc.Engine.rare ()) ~trials:64 ~seed:1
           scalar_only))

(* ------------------------------- cross-validation in the overlap regime *)

(* Toric memory, l = 3, p = 0.08: shallow enough that plain MC pins the
   rate, deep enough that the rare plan covers nearly all of the mass.
   The two estimates run the identical IID model, so their intervals
   must overlap — at every domain count the acceptance criteria name. *)
let overlap ~what (plain : Mc.Stats.estimate) (rare : Mc.Stats.weighted) =
  check
    (what ^ ": rare interval reaches the plain one")
    true
    (rare.ci_low <= plain.ci_high);
  check
    (what ^ ": plain interval reaches the rare one")
    true
    (plain.ci_low <= rare.ci_high)

let toric_rare_config =
  match Mc.Engine.rare ~max_weight:6 ~samples_per_class:2000 () with
  | `Rare c -> c
  | _ -> assert false

let test_rare_vs_plain_toric () =
  let l = 3 and p = 0.08 and trials = 20000 in
  let r = Toric.Memory.run_mc ~l ~p ~trials ~seed:2027 () in
  let plain = Mc.Stats.estimate ~failures:r.failures ~trials () in
  let rare d =
    Toric.Memory.run_rare ~domains:d ~config:toric_rare_config ~l ~p ~seed:501
      ()
  in
  let w1 = rare 1 in
  overlap ~what:"domains 1" plain w1;
  let w4 = rare 4 in
  overlap ~what:"domains 4" plain w4;
  check "rare estimate is bit-identical across domain counts" true (w1 = w4)

(* the Delfosse–Paetznick dictionary sampler against its own plain-MC
   comparator (the same fault model, sampled IID) *)
let test_rare_vs_plain_circuit () =
  let l = 3 and rounds = 2 and p = 0.01 in
  check "single-fault dictionary reproduces the tableau" true
    (Toric.Circuit_memory.dp_self_check ~l ~rounds ~weight:2 ~samples:25
       ~seed:5);
  let plain =
    Toric.Circuit_memory.run_dp ~l ~rounds ~p ~trials:20000 ~seed:77 ()
  in
  let config =
    match Mc.Engine.rare ~max_weight:4 ~samples_per_class:1000 () with
    | `Rare c -> c
    | _ -> assert false
  in
  let rare =
    Toric.Circuit_memory.run_rare ~domains:2 ~config ~l ~rounds ~p ~seed:78 ()
  in
  overlap ~what:"circuit" plain rare

(* --------------------------------------- rare interrupt + resume *)

let fresh_path () =
  let f = Filename.temp_file "ftqc_rare" ".json" in
  Sys.remove f;
  f

let test_rare_interrupt_resume () =
  let model = Toric.Memory.rare_model ~l:3 ~p:0.01 () in
  let config =
    match Mc.Engine.rare ~max_weight:4 ~samples_per_class:500 () with
    | `Rare c -> c
    | _ -> assert false
  in
  let run ?campaign ?chaos () =
    Mc.Runner.estimate_rare ?campaign ?chaos ~domains:2 ~chunk:50 ~config
      ~seed:909 model
  in
  let expected = run () in
  let path = fresh_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c =
        match Mc.Campaign.create ~flush_every:1 path with
        | Ok c -> c
        | Error m -> failwith m
      in
      Mc.Campaign.reset_stop ();
      (match
         run ~campaign:c
           ~chaos:(Mc.Chaos.at_chunk ~chunk:2 Mc.Campaign.request_stop)
           ()
       with
      | _ -> ()
      | exception Mc.Campaign.Interrupted _ -> ());
      Mc.Campaign.reset_stop ();
      let c' = Result.get_ok (Mc.Campaign.load path) in
      let resumed = run ~campaign:c' () in
      check "interrupted rare campaign resumes bit-identically" true
        (resumed = expected))

let suites =
  [ ( "subset",
      [ Alcotest.test_case "class probabilities normalize" `Quick
          test_class_prob_normalizes;
        Alcotest.test_case "tail mass monotone in cutoff" `Quick
          test_tail_mass_monotone;
        Alcotest.test_case "unrank enumerates each config once" `Quick
          test_unrank_enumerates_distinct;
        Alcotest.test_case "sampled configs well-formed" `Quick
          test_sample_shape;
        Alcotest.test_case "class-sum merge laws" `Quick
          test_merge_class_laws ] );
    ( "rare-engine",
      [ Alcotest.test_case "full enumeration is exact" `Quick
          test_enumeration_exact;
        Alcotest.test_case "truncation bound reported + monotone" `Quick
          test_truncation_reported;
        Alcotest.test_case "engine CLI combinator" `Quick test_of_cli;
        Alcotest.test_case "capability mismatch raises" `Quick
          test_capability_mismatch;
        Alcotest.test_case "rare vs plain MC (toric memory)" `Slow
          test_rare_vs_plain_toric;
        Alcotest.test_case "rare vs plain MC (toric circuit)" `Slow
          test_rare_vs_plain_circuit;
        Alcotest.test_case "rare interrupt + resume bit-identical" `Quick
          test_rare_interrupt_resume ] ) ]
