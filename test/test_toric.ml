open Ftqc
module Lattice = Toric.Lattice
module Bitvec = Gf2.Bitvec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rng () = Random.State.make [| 53 |]

let test_lattice_indexing () =
  let lat = Lattice.create 4 in
  check_int "qubits" 32 (Lattice.num_qubits lat);
  check_int "plaquettes" 16 (Lattice.num_plaquettes lat);
  (* every edge index in range, each edge has two distinct endpoints *)
  for e = 0 to 31 do
    let a, b = Lattice.edge_endpoints lat e in
    check "endpoints in range" true (a >= 0 && a < 16 && b >= 0 && b < 16);
    check "distinct endpoints" true (a <> b)
  done;
  (* wraparound: h(-1, y) = h(L-1, y) *)
  check_int "wraparound" (Lattice.h_edge lat ~x:3 ~y:0)
    (Lattice.h_edge lat ~x:(-1) ~y:0)

let test_plaquette_edge_duality () =
  (* edge e borders plaquette p iff p is an endpoint of e *)
  let lat = Lattice.create 4 in
  for y = 0 to 3 do
    for x = 0 to 3 do
      let p = Lattice.plaquette_index lat ~x ~y in
      List.iter
        (fun e ->
          let a, b = Lattice.edge_endpoints lat e in
          check "duality" true (a = p || b = p))
        (Lattice.plaquette_edges lat ~x ~y)
    done
  done

let test_single_error_syndrome () =
  let lat = Lattice.create 4 in
  let e = Bitvec.create 32 in
  Bitvec.set e (Lattice.h_edge lat ~x:1 ~y:2) true;
  let s = Lattice.syndrome lat e in
  check_int "two defects" 2 (Bitvec.weight s)

let test_logical_loops () =
  let lat = Lattice.create 5 in
  List.iter
    (fun loop ->
      check "trivial syndrome" true
        (Bitvec.is_zero (Lattice.syndrome lat loop));
      let wx, wy = Lattice.winding lat loop in
      check "nontrivial winding" true (wx || wy))
    [ Lattice.logical_x1 lat; Lattice.logical_x2 lat ];
  (* a contractible X-loop is a vertex (star) operator: the four edges
     meeting a vertex have trivial plaquette syndrome and no winding *)
  let star = Bitvec.create (Lattice.num_qubits lat) in
  List.iter
    (fun e -> Bitvec.flip star e)
    (Lattice.vertex_edges lat ~x:2 ~y:2);
  check "vertex operator trivial syndrome" true
    (Bitvec.is_zero (Lattice.syndrome lat star));
  let wx, wy = Lattice.winding lat star in
  check "contractible: zero winding" true ((not wx) && not wy)

let decoder_property decoder =
  let r = rng () in
  let lat = Lattice.create 6 in
  let n = Lattice.num_qubits lat in
  for _ = 1 to 100 do
    let e = Bitvec.create n in
    Bitvec.randomize ~p:0.08 r e;
    let s = Lattice.syndrome lat e in
    let c = decoder lat s in
    check "correction matches syndrome" true
      (Bitvec.equal (Lattice.syndrome lat c) s)
  done

let test_uf_decoder_valid () = decoder_property Toric.Decoder.decode
let test_greedy_decoder_valid () = decoder_property Toric.Decoder.greedy_decode

let test_uf_corrects_sparse_errors () =
  (* any single error and any pair of well-separated errors must be
     corrected without a logical fault *)
  let lat = Lattice.create 8 in
  let n = Lattice.num_qubits lat in
  for e1 = 0 to n - 1 do
    let e = Bitvec.create n in
    Bitvec.set e e1 true;
    let c = Toric.Decoder.decode lat (Lattice.syndrome lat e) in
    let residual = Bitvec.xor e c in
    let wx, wy = Lattice.winding lat residual in
    check "single edge error corrected" true ((not wx) && not wy)
  done

(* The decoder.mli ablation claim, pinned: at d=5 the union-find
   decoder's logical failure rate is no worse than the greedy
   baseline's.  Fixed seed, Mc-engine counts — bit-reproducible, so a
   decoder regression flips this deterministically (at p=0.05 the gap
   is about 2x: ~200 vs ~405 failures in 4000 trials). *)
let test_uf_no_worse_than_greedy () =
  let run decoder =
    Toric.Memory.run_mc ~decoder ~l:5 ~p:0.05 ~trials:4000 ~seed:2026 ()
  in
  let uf = run `Union_find and greedy = run `Greedy in
  check "union-find no worse than greedy at d=5" true
    (uf.failures <= greedy.failures);
  check "union-find materially better at p=0.05" true
    (float_of_int uf.failures < 0.75 *. float_of_int greedy.failures)

let test_threshold_behaviour () =
  let r = rng () in
  let low_small = Toric.Memory.run ~l:4 ~p:0.03 ~trials:1500 r in
  let low_big = Toric.Memory.run ~l:10 ~p:0.03 ~trials:1500 r in
  check "below threshold: larger L better" true
    (low_big.rate <= low_small.rate);
  let hi = Toric.Memory.run ~l:10 ~p:0.2 ~trials:500 r in
  check "far above threshold: failure high" true (hi.rate > 0.3)

let test_stabilizer_code_view () =
  let c2 = Toric.Code.stabilizer_code 2 in
  check_int "L=2 n" 8 c2.n;
  check_int "L=2 k" 2 c2.k;
  check_int "L=2 distance" 2 (Codes.Stabilizer_code.distance c2);
  let c3 = Toric.Code.stabilizer_code 3 in
  check_int "L=3 n" 18 c3.n;
  check_int "L=3 distance" 3 (Codes.Stabilizer_code.distance c3);
  (* logical state prep through the generic machinery *)
  let tab = Codes.Stabilizer_code.prepare_logical_zero c3 in
  check "toric |0bar,0bar>" true
    (Tableau.expectation tab c3.logical_z.(0) = Some true
    && Tableau.expectation tab c3.logical_z.(1) = Some true)

let prop_residual_trivial =
  QCheck.Test.make ~name:"uf residual always trivial syndrome" ~count:50
    (QCheck.make
       ~print:(fun (seed, p) -> Printf.sprintf "seed %d p %f" seed p)
       QCheck.Gen.(pair int (float_range 0.0 0.3)))
    (fun (seed, p) ->
      let r = Random.State.make [| seed |] in
      let lat = Lattice.create 5 in
      let e = Bitvec.create (Lattice.num_qubits lat) in
      Bitvec.randomize ~p r e;
      let c = Toric.Decoder.decode lat (Lattice.syndrome lat e) in
      Bitvec.is_zero (Lattice.syndrome lat (Bitvec.xor e c)))

let suites =
  [ ( "toric",
      [ Alcotest.test_case "lattice indexing" `Quick test_lattice_indexing;
        Alcotest.test_case "plaquette-edge duality" `Quick
          test_plaquette_edge_duality;
        Alcotest.test_case "single error syndrome" `Quick
          test_single_error_syndrome;
        Alcotest.test_case "logical loops" `Quick test_logical_loops;
        Alcotest.test_case "uf decoder validity" `Quick test_uf_decoder_valid;
        Alcotest.test_case "greedy decoder validity" `Quick
          test_greedy_decoder_valid;
        Alcotest.test_case "sparse errors corrected" `Quick
          test_uf_corrects_sparse_errors;
        Alcotest.test_case "uf no worse than greedy (d=5)" `Slow
          test_uf_no_worse_than_greedy;
        Alcotest.test_case "threshold behaviour" `Slow test_threshold_behaviour;
        Alcotest.test_case "stabilizer code view" `Quick
          test_stabilizer_code_view;
        QCheck_alcotest.to_alcotest prop_residual_trivial ] ) ]
