(* Cross-cutting circuit and gate identities, each verified on the
   exact state-vector simulator (and, where Clifford, on the tableau):
   the algebra the paper's constructions lean on. *)

open Ftqc
module Sv = Statevec

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 131 |]

(* a pseudo-random 3-qubit state via a fixed gate sequence *)
let scrambled () =
  let sv = Sv.create 3 in
  Sv.h sv 0;
  Sv.s_gate sv 0;
  Sv.cnot sv 0 1;
  Sv.h sv 1;
  Sv.cnot sv 1 2;
  Sv.s_gate sv 2;
  Sv.h sv 2;
  Sv.cz sv 0 2;
  sv

let same a b = Float.abs (Sv.fidelity a b -. 1.0) < 1e-9

let test_conjugation_identities () =
  (* H X H = Z; H Z H = X; S X S† = Y on arbitrary states *)
  List.iter
    (fun (name, lhs, rhs) ->
      let a = scrambled () and b = scrambled () in
      lhs a;
      rhs b;
      check name true (same a b))
    [ ( "HXH = Z",
        (fun s ->
          Sv.h s 1;
          Sv.x s 1;
          Sv.h s 1),
        fun s -> Sv.z s 1 );
      ( "HZH = X",
        (fun s ->
          Sv.h s 1;
          Sv.z s 1;
          Sv.h s 1),
        fun s -> Sv.x s 1 );
      ( "S X S† = Y (up to phase)",
        (fun s ->
          Sv.sdg s 1;
          Sv.x s 1;
          Sv.s_gate s 1),
        fun s -> Sv.y s 1 );
      ( "S S = Z",
        (fun s ->
          Sv.s_gate s 1;
          Sv.s_gate s 1),
        fun s -> Sv.z s 1 ) ]

let test_swap_is_three_cnots () =
  let a = scrambled () and b = scrambled () in
  Sv.swap a 0 2;
  Sv.cnot b 0 2;
  Sv.cnot b 2 0;
  Sv.cnot b 0 2;
  check "SWAP = CNOT³" true (same a b)

let test_cz_symmetric () =
  let a = scrambled () and b = scrambled () in
  Sv.cz a 0 2;
  Sv.cz b 2 0;
  check "CZ symmetric" true (same a b)

let test_cz_from_cnot () =
  let a = scrambled () and b = scrambled () in
  Sv.cz a 0 1;
  Sv.h b 1;
  Sv.cnot b 0 1;
  Sv.h b 1;
  check "CZ = H·CNOT·H" true (same a b)

let test_fig5_on_states () =
  (* Fig. 5: H⊗H conjugation reverses the XOR *)
  let a = scrambled () and b = scrambled () in
  Sv.h a 0;
  Sv.h a 1;
  Sv.cnot a 0 1;
  Sv.h a 0;
  Sv.h a 1;
  Sv.cnot b 1 0;
  check "Fig. 5 identity on states" true (same a b)

let test_toffoli_involution () =
  let a = scrambled () and b = scrambled () in
  Sv.toffoli a 0 1 2;
  Sv.toffoli a 0 1 2;
  check "Toffoli² = I" true (same a b)

let test_toffoli_from_ccz () =
  let a = scrambled () and b = scrambled () in
  Sv.toffoli a 0 1 2;
  Sv.h b 2;
  (* CCZ via Toffoli conjugated by H — the inverse direction *)
  Sv.h b 2;
  Sv.toffoli b 0 1 2;
  check "Toffoli = H·CCZ·H (trivial wrap)" true (same a b)

let test_cnot_propagation () =
  (* §3.1: X on the source propagates forward, Z on the target
     propagates backward *)
  let a = scrambled () and b = scrambled () in
  (* X₀ then CNOT(0,1) = CNOT(0,1) then X₀X₁ *)
  Sv.x a 0;
  Sv.cnot a 0 1;
  Sv.cnot b 0 1;
  Sv.x b 0;
  Sv.x b 1;
  check "X propagates forward through XOR" true (same a b);
  let a = scrambled () and b = scrambled () in
  (* Z₁ then CNOT(0,1) = CNOT(0,1) then Z₀Z₁ *)
  Sv.z a 1;
  Sv.cnot a 0 1;
  Sv.cnot b 0 1;
  Sv.z b 0;
  Sv.z b 1;
  check "Z propagates backward through XOR" true (same a b)

let test_tableau_conjugation () =
  (* the same propagation rules at the stabilizer level: conjugate a
     Pauli by a circuit and compare with the tableau's evolution *)
  let r = rng () in
  for _ = 1 to 30 do
    let tab = Tableau.create 4 in
    (* prepare a random stabilizer state *)
    for _ = 1 to 15 do
      match Random.State.int r 5 with
      | 0 -> Tableau.h tab (Random.State.int r 4)
      | 1 -> Tableau.s_gate tab (Random.State.int r 4)
      | 2 ->
        let a = Random.State.int r 4 in
        let b = (a + 1 + Random.State.int r 3) mod 4 in
        Tableau.cnot tab a b
      | 3 -> Tableau.x tab (Random.State.int r 4)
      | _ -> Tableau.z tab (Random.State.int r 4)
    done;
    (* applying a stabilizer of the state must leave it unchanged *)
    let before = Tableau.copy tab in
    let stabs = Tableau.stabilizers tab in
    let s = List.nth stabs (Random.State.int r 4) in
    Tableau.apply_pauli tab s;
    check "applying a stabilizer is a no-op" true
      (Tableau.equal_states before tab)
  done

let test_random_circuit_inverse () =
  let r = rng () in
  for _ = 1 to 20 do
    let c = ref (Circuit.create ~num_qubits:4 ()) in
    for _ = 1 to 25 do
      let g : Circuit.gate =
        match Random.State.int r 6 with
        | 0 -> H (Random.State.int r 4)
        | 1 -> S (Random.State.int r 4)
        | 2 -> Sdg (Random.State.int r 4)
        | 3 ->
          let a = Random.State.int r 4 in
          Cnot (a, (a + 1 + Random.State.int r 3) mod 4)
        | 4 ->
          let a = Random.State.int r 4 in
          Cz (a, (a + 1 + Random.State.int r 3) mod 4)
        | _ ->
          let a = Random.State.int r 4 in
          let b = (a + 1 + Random.State.int r 3) mod 4 in
          let t = List.find (fun q -> q <> a && q <> b) [ 0; 1; 2; 3 ] in
          Toffoli (a, b, t)
      in
      c := Circuit.add_gate !c g
    done;
    let sv = Sv.create 4 in
    ignore (Sv.run sv !c);
    ignore (Sv.run sv (Circuit.inverse !c));
    check "U U⁻¹ = I" true
      (Qmath.Cx.approx (Sv.amplitude sv 0) Qmath.Cx.one)
  done

let test_depth_regressions () =
  (* reference depths the E20 analysis quotes *)
  let extraction = Ft.Steane_ec.syndrome_extraction_circuit () in
  Alcotest.(check int) "extraction depth" 18 (Circuit.depth extraction);
  Alcotest.(check int) "extraction length" 77 (Circuit.length extraction);
  (* a transversal layer has depth 1 *)
  let c = ref (Circuit.create ~num_qubits:7 ()) in
  for q = 0 to 6 do
    c := Circuit.add_gate !c (Circuit.H q)
  done;
  Alcotest.(check int) "transversal layer depth" 1 (Circuit.depth !c);
  (* a CNOT chain has depth = length *)
  let c = ref (Circuit.create ~num_qubits:8 ()) in
  for q = 0 to 6 do
    c := Circuit.add_gate !c (Circuit.Cnot (q, q + 1))
  done;
  Alcotest.(check int) "chain depth" 7 (Circuit.depth !c);
  (* the Steane encoder: 14 gates, parallelizable to depth < 14 *)
  let enc = Codes.Steane.encoding_circuit () in
  check "encoder parallelizes" true
    (Circuit.depth enc < Circuit.length enc)

let test_encoder_unitarity () =
  (* the Fig. 3 encoder is unitary: running it then its inverse on a
     random input restores the input *)
  let enc = Codes.Steane.encoding_circuit () in
  let sv = Sv.create 7 in
  Sv.h sv Codes.Steane.input_qubit;
  Sv.s_gate sv Codes.Steane.input_qubit;
  let before = Sv.copy sv in
  ignore (Sv.run sv enc);
  ignore (Sv.run sv (Circuit.inverse enc));
  check "encoder · encoder⁻¹ = I" true (same before sv)

let test_logical_s_gives_y_eigenstate () =
  (* S̄|+̄⟩ is the +1 eigenstate of Ȳ = i X̄ Z̄ *)
  let r = rng () in
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g -> ignore (Tableau.postselect_pauli tab g ~outcome:false))
    Codes.Steane.code.generators;
  ignore
    (Tableau.postselect_pauli tab Codes.Steane.code.logical_x.(0)
       ~outcome:false);
  Ft.Transversal.logical_s sim ~block:0;
  let y_bar =
    Pauli.mul_phase
      (Pauli.mul Codes.Steane.code.logical_x.(0)
         Codes.Steane.code.logical_z.(0))
      1
  in
  check "S̄|+̄⟩ stabilized by Ȳ" true (Tableau.expectation tab y_bar = Some true)

let suites =
  [ ( "identities",
      [ Alcotest.test_case "conjugation" `Quick test_conjugation_identities;
        Alcotest.test_case "swap = cnot³" `Quick test_swap_is_three_cnots;
        Alcotest.test_case "cz symmetric" `Quick test_cz_symmetric;
        Alcotest.test_case "cz from cnot" `Quick test_cz_from_cnot;
        Alcotest.test_case "fig. 5 on states" `Quick test_fig5_on_states;
        Alcotest.test_case "toffoli involution" `Quick test_toffoli_involution;
        Alcotest.test_case "toffoli/ccz wrap" `Quick test_toffoli_from_ccz;
        Alcotest.test_case "error propagation (§3.1)" `Quick
          test_cnot_propagation;
        Alcotest.test_case "stabilizer no-op" `Quick test_tableau_conjugation;
        Alcotest.test_case "random circuit inverse" `Quick
          test_random_circuit_inverse;
        Alcotest.test_case "depth regressions" `Quick test_depth_regressions;
        Alcotest.test_case "encoder unitarity" `Quick test_encoder_unitarity;
        Alcotest.test_case "S̄ makes Ȳ eigenstate" `Quick
          test_logical_s_gives_y_eigenstate ] ) ]
