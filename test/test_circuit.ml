open Ftqc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample () =
  let open Circuit in
  let c = create ~num_cbits:2 ~num_qubits:3 () in
  let c = add_gate c (H 0) in
  let c = add_gate c (Cnot (0, 1)) in
  let c = add c Tick in
  let c = add_gate c (Toffoli (0, 1, 2)) in
  let c = add c (Measure { qubit = 2; cbit = 0 }) in
  let c = add c (Cond { cbit = 0; gate = X 1 }) in
  c

let test_counts () =
  let c = sample () in
  check_int "length" 6 (Circuit.length c);
  check_int "gate count" 4 (Circuit.gate_count c);
  check_int "measure count" 1 (Circuit.measure_count c);
  check_int "tick count" 1 (Circuit.tick_count c);
  check_int "two-qubit gates" 2 (Circuit.two_qubit_gate_count c);
  check "not clifford" false (Circuit.is_clifford c)

let test_validation () =
  let c = Circuit.create ~num_qubits:2 () in
  Alcotest.check_raises "qubit out of range"
    (Invalid_argument "Circuit.add: qubit 5 out of range") (fun () ->
      ignore (Circuit.add_gate c (Circuit.H 5)));
  Alcotest.check_raises "repeated operand"
    (Invalid_argument "Circuit.add: repeated qubit operand") (fun () ->
      ignore (Circuit.add_gate c (Circuit.Cnot (1, 1))));
  Alcotest.check_raises "cbit out of range"
    (Invalid_argument "Circuit.add: cbit 0 out of range") (fun () ->
      ignore (Circuit.add c (Circuit.Measure { qubit = 0; cbit = 0 })))

let test_inverse () =
  let open Circuit in
  let c = create ~num_cbits:1 ~num_qubits:2 () in
  let c = add_gate c (H 0) in
  let c = add_gate c (S 1) in
  let c = add_gate c (Cnot (0, 1)) in
  let inv = inverse c in
  (* play c then inv on a state vector: must return to |00> basis *)
  let sv = Statevec.create 2 in
  List.iter
    (fun i -> match i with Gate g -> Statevec.apply_gate sv g | _ -> ())
    (instrs (append c inv));
  check "c · c⁻¹ = id" true
    (Qmath.Cx.approx (Statevec.amplitude sv 0) Qmath.Cx.one);
  Alcotest.check_raises "cannot invert measurement"
    (Invalid_argument "Circuit.inverse: non-unitary instruction") (fun () ->
      ignore (inverse (add c (Measure { qubit = 0; cbit = 0 }))))

let test_map_qubits () =
  let open Circuit in
  let c = create ~num_qubits:2 () in
  let c = add_gate c (Cnot (0, 1)) in
  let shifted = map_qubits ~f:(fun q -> q + 3) c in
  check_int "new size" 5 (num_qubits shifted);
  (match instrs shifted with
  | [ Gate (Cnot (3, 4)) ] -> ()
  | _ -> Alcotest.fail "wrong mapped instruction");
  let wide = map_qubits ~num_qubits:10 ~f:(fun q -> q + 3) c in
  check_int "explicit size" 10 (num_qubits wide)

let test_gate_qubits () =
  Alcotest.(check (list int)) "toffoli qubits" [ 4; 5; 6 ]
    (Circuit.gate_qubits (Circuit.Toffoli (4, 5, 6)));
  Alcotest.(check (list int)) "h qubits" [ 2 ]
    (Circuit.gate_qubits (Circuit.H 2))

let test_inverse_gate () =
  check "S inverse" true (Circuit.inverse_gate (Circuit.S 0) = Circuit.Sdg 0);
  check "Sdg inverse" true (Circuit.inverse_gate (Circuit.Sdg 0) = Circuit.S 0);
  check "H self-inverse" true (Circuit.inverse_gate (Circuit.H 1) = Circuit.H 1)

let test_append_mismatch () =
  let a = Circuit.create ~num_qubits:2 () in
  let b = Circuit.create ~num_qubits:3 () in
  Alcotest.check_raises "register mismatch"
    (Invalid_argument "Circuit.append: register mismatch") (fun () ->
      ignore (Circuit.append a b))

let suites =
  [ ( "circuit",
      [ Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "inverse" `Quick test_inverse;
        Alcotest.test_case "map_qubits" `Quick test_map_qubits;
        Alcotest.test_case "gate_qubits" `Quick test_gate_qubits;
        Alcotest.test_case "inverse_gate" `Quick test_inverse_gate;
        Alcotest.test_case "append mismatch" `Quick test_append_mismatch ] ) ]
