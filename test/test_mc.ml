(* The shared Monte-Carlo engine: Mc.Rng splittable streams,
   Mc.Runner domain-parallel map-reduce, Mc.Stats Wilson intervals.
   The load-bearing property throughout is the determinism contract:
   the same root seed gives bit-identical aggregates for ANY domain
   count, so every parallel result below is checked against the
   sequential (~domains:1) reference, not statistically. *)

open Ftqc

let check msg expected actual = Alcotest.(check bool) msg expected actual

(* --- Mc.Rng ----------------------------------------------------------- *)

let test_rng_reproducible () =
  let k = Mc.Rng.split (Mc.Rng.root 42) 7 in
  let a = Mc.Rng.to_state k and b = Mc.Rng.to_state k in
  let same = ref true in
  for _ = 1 to 100 do
    if Random.State.bits a <> Random.State.bits b then same := false
  done;
  check "same key, same stream" true !same

let test_rng_streams_independent () =
  (* sibling streams never collide on a prefix of raw draws: 16
     streams x 64 draws are all distinct 64-bit values *)
  let root = Mc.Rng.root 2026 in
  let seen = Hashtbl.create 1024 in
  let clash = ref false in
  for i = 0 to 15 do
    let k = Mc.Rng.split root i in
    for n = 0 to 63 do
      let v = Mc.Rng.draw k n in
      if Hashtbl.mem seen v then clash := true;
      Hashtbl.add seen v ()
    done
  done;
  check "no collisions across 16 streams x 64 draws" false !clash

let test_rng_streams_decorrelated () =
  (* the Random.State sequences of sibling streams look unrelated:
     bitwise agreement of the first 1000 draws is ~50%, not ~100% *)
  let root = Mc.Rng.root 7 in
  let a = Mc.Rng.to_state (Mc.Rng.split root 0) in
  let b = Mc.Rng.to_state (Mc.Rng.split root 1) in
  let agree = ref 0 in
  let n = 1000 in
  for _ = 1 to n do
    if Random.State.bool a = Random.State.bool b then incr agree
  done;
  let frac = float_of_int !agree /. float_of_int n in
  check "sibling streams decorrelated" true (frac > 0.4 && frac < 0.6)

let test_rng_derive () =
  check "same path, same seed" true
    (Mc.Rng.derive 5 [ 1; 2; 3 ] = Mc.Rng.derive 5 [ 1; 2; 3 ]);
  check "different path, different seed" true
    (Mc.Rng.derive 5 [ 1; 2; 3 ] <> Mc.Rng.derive 5 [ 1; 3; 2 ]);
  check "different root, different seed" true
    (Mc.Rng.derive 5 [ 1 ] <> Mc.Rng.derive 6 [ 1 ]);
  check "derived seeds nonnegative" true
    (Mc.Rng.derive 5 [ 1; 2; 3 ] >= 0 && Mc.Rng.derive (-9) [ 0 ] >= 0)

(* --- Mc.Runner: domain-count invariance ------------------------------- *)

let bernoulli p rng _ = Random.State.float rng 1.0 < p

let test_runner_parallel_equals_sequential () =
  let f1 = Mc.Runner.failures ~domains:1 ~trials:10000 ~seed:3 (Mc.Runner.scalar (bernoulli 0.3)) in
  let f4 = Mc.Runner.failures ~domains:4 ~trials:10000 ~seed:3 (Mc.Runner.scalar (bernoulli 0.3)) in
  Alcotest.(check int) "domains:4 = domains:1" f1 f4;
  check "rate plausible" true (abs (f1 - 3000) < 300)

let test_runner_steane_scan_invariant () =
  (* the acceptance check: a Steane pseudothreshold-style scan point
     gives identical failure counts sequentially and on 4 domains *)
  let run d =
    (Ft.Memory.steane_ec_failure_mc ~domains:d
       ~noise:(Ft.Noise.gates_only 8e-3)
       ~policy:Ft.Steane_ec.Repeat_if_nontrivial ~verify:Ft.Steane_ec.Reject
       ~trials:300 ~seed:2026 ())
      .Mc.Stats.failures
  in
  Alcotest.(check int) "steane EC: domains:4 = domains:1" (run 1) (run 4)

let test_runner_float_merge_deterministic () =
  (* chunk-ordered merge makes even float sums bit-identical *)
  let sum d =
    Mc.Runner.map_reduce ~domains:d ~trials:5000 ~seed:11 ~init:0.0
      ~accum:( +. ) ~merge:( +. )
      (fun rng _ -> Random.State.float rng 1.0)
  in
  check "float sum bit-identical across domain counts" true
    (sum 1 = sum 3 && sum 3 = sum 5)

let test_runner_worker_ctx () =
  (* per-worker scratch buffers reused across a worker's chunks *)
  let count d =
    Mc.Runner.failures ~domains:d ~trials:2000 ~seed:9
      (Mc.Runner.model
         ~worker_init:(fun () -> Bytes.create 8)
         ~trial:(fun buf rng _ ->
           Bytes.set_int64_le buf 0 (Random.State.int64 rng Int64.max_int);
           Int64.rem (Bytes.get_int64_le buf 0) 2L = 0L)
         ())
  in
  Alcotest.(check int) "ctx runs agree" (count 1) (count 4)

let test_runner_zero_and_tiny () =
  Alcotest.(check int) "zero trials"
    0
    (Mc.Runner.failures ~domains:4 ~trials:0 ~seed:1
       (Mc.Runner.scalar (fun _ _ -> true)));
  Alcotest.(check int) "one trial, always true"
    1
    (Mc.Runner.failures ~domains:4 ~trials:1 ~seed:1
       (Mc.Runner.scalar (fun _ _ -> true)))

let prop_domain_invariance =
  QCheck.Test.make ~name:"failures invariant in domain count" ~count:25
    QCheck.(triple small_nat (int_range 1 6) (int_range 0 300))
    (fun (seed, domains, trials) ->
      Mc.Runner.failures ~domains ~trials ~seed (Mc.Runner.scalar (bernoulli 0.4))
      = Mc.Runner.failures ~domains:1 ~trials ~seed (Mc.Runner.scalar (bernoulli 0.4)))

(* --- Mc.Stats: Wilson intervals --------------------------------------- *)

let test_wilson_basic () =
  let e = Mc.Stats.estimate ~failures:30 ~trials:100 () in
  check "rate" true (Float.abs (e.rate -. 0.3) < 1e-12);
  check "interval brackets rate" true (e.ci_low <= e.rate && e.rate <= e.ci_high);
  check "bounds in [0,1]" true (e.ci_low >= 0.0 && e.ci_high <= 1.0);
  let z0 = Mc.Stats.wilson ~failures:0 ~trials:50 () in
  check "0 failures: lower bound 0" true (fst z0 < 1e-9);
  let z1 = Mc.Stats.wilson ~failures:50 ~trials:50 () in
  check "all failures: upper bound 1" true (snd z1 > 1.0 -. 1e-9);
  let empty = Mc.Stats.wilson ~failures:0 ~trials:0 () in
  check "no trials: vacuous interval" true (empty = (0.0, 1.0))

let test_estimate_edges () =
  (* degenerate inputs every experiment driver can produce *)
  let z = Mc.Stats.estimate ~failures:0 ~trials:1000 () in
  check "0 failures: rate 0" true (z.rate = 0.0);
  check "0 failures: interval starts at 0" true
    (z.ci_low = 0.0 && z.ci_high > 0.0 && z.ci_high < 0.01);
  let a = Mc.Stats.estimate ~failures:1000 ~trials:1000 () in
  check "all failures: rate 1" true (a.rate = 1.0);
  check "all failures: interval ends at 1" true
    (a.ci_high >= 1.0 -. 1e-12 && a.ci_low < 1.0 && a.ci_low > 0.99);
  let one_f = Mc.Stats.estimate ~failures:1 ~trials:1 () in
  let one_s = Mc.Stats.estimate ~failures:0 ~trials:1 () in
  check "1 trial: rate is 0 or 1" true (one_s.rate = 0.0 && one_f.rate = 1.0);
  check "1 trial: intervals still bracket and stay in [0,1]" true
    (one_s.ci_low = 0.0 && one_f.ci_high = 1.0
    && one_s.ci_high <= 1.0 && one_f.ci_low >= 0.0
    && one_s.ci_high > 0.5 && one_f.ci_low < 0.5);
  check "1 trial: interval is wide" true
    (Mc.Stats.half_width one_f > 0.3);
  check "stderr nonnegative everywhere" true
    (z.stderr >= 0.0 && a.stderr >= 0.0 && one_f.stderr >= 0.0)

let test_wilson_coverage () =
  (* a 95% Wilson interval covers the true rate ~95% of the time;
     with 200 independent experiments, coverage below 90% would be a
     ~3.5-sigma fluke *)
  let p = 0.3 and n = 400 and experiments = 200 in
  let covered = ref 0 in
  for i = 1 to experiments do
    let failures =
      Mc.Runner.failures ~domains:1 ~trials:n
        ~seed:(Mc.Rng.derive 77 [ i ])
        (Mc.Runner.scalar (bernoulli p))
    in
    let lo, hi = Mc.Stats.wilson ~failures ~trials:n () in
    if lo <= p && p <= hi then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int experiments in
  check "coverage >= 0.9" true (coverage >= 0.9);
  check "coverage not degenerate" true (coverage <= 1.0)

(* --- Mc.Runner: early stopping ---------------------------------------- *)

let test_early_stop_floor () =
  (* a huge target stops as early as allowed -- but never below the
     min-trial floor *)
  let e =
    Mc.Runner.estimate ~domains:1 ~target_half_width:1.0 ~trials:100_000
      ~seed:4 (Mc.Runner.scalar (bernoulli 0.2))
  in
  check "stops early" true (e.trials < 100_000);
  check "never below the floor" true
    (e.trials >= Mc.Runner.default_min_trials);
  let e2 =
    Mc.Runner.estimate ~domains:1 ~target_half_width:1.0 ~min_trials:5000
      ~trials:100_000 ~seed:4 (Mc.Runner.scalar (bernoulli 0.2))
  in
  check "custom floor respected" true (e2.trials >= 5000)

let test_early_stop_exhausts_on_tight_target () =
  let e =
    Mc.Runner.estimate ~domains:1 ~target_half_width:0.0 ~trials:3000 ~seed:4
      (Mc.Runner.scalar (bernoulli 0.2))
  in
  Alcotest.(check int) "unreachable target runs everything" 3000 e.trials

let test_early_stop_domain_invariant () =
  let run d =
    Mc.Runner.estimate ~domains:d ~target_half_width:0.02 ~trials:50_000
      ~seed:13 (Mc.Runner.scalar (bernoulli 0.1))
  in
  let a = run 1 and b = run 3 in
  Alcotest.(check int) "stopped at same trial count" a.trials b.trials;
  Alcotest.(check int) "same failures" a.failures b.failures;
  check "actually stopped early" true (a.trials < 50_000);
  check "target reached" true (Mc.Stats.half_width a <= 0.02)

let suites =
  [ ( "mc.rng",
      [ Alcotest.test_case "reproducible" `Quick test_rng_reproducible;
        Alcotest.test_case "streams independent" `Quick
          test_rng_streams_independent;
        Alcotest.test_case "streams decorrelated" `Quick
          test_rng_streams_decorrelated;
        Alcotest.test_case "derive" `Quick test_rng_derive ] );
    ( "mc.runner",
      [ Alcotest.test_case "parallel = sequential" `Quick
          test_runner_parallel_equals_sequential;
        Alcotest.test_case "steane scan invariant" `Slow
          test_runner_steane_scan_invariant;
        Alcotest.test_case "float merge deterministic" `Quick
          test_runner_float_merge_deterministic;
        Alcotest.test_case "worker contexts" `Quick test_runner_worker_ctx;
        Alcotest.test_case "edge cases" `Quick test_runner_zero_and_tiny;
        QCheck_alcotest.to_alcotest prop_domain_invariance ] );
    ( "mc.stats",
      [ Alcotest.test_case "wilson basics" `Quick test_wilson_basic;
        Alcotest.test_case "estimate edge cases" `Quick test_estimate_edges;
        Alcotest.test_case "wilson coverage" `Quick test_wilson_coverage ] );
    ( "mc.early-stop",
      [ Alcotest.test_case "floor" `Quick test_early_stop_floor;
        Alcotest.test_case "tight target exhausts" `Quick
          test_early_stop_exhausts_on_tight_target;
        Alcotest.test_case "domain invariant" `Quick
          test_early_stop_domain_invariant ] ) ]
