open Ftqc

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 23 |]

let random_gate r n : Circuit.gate =
  let q () = Random.State.int r n in
  let rec two () =
    let a = q () and b = q () in
    if a = b then two () else (a, b)
  in
  match Random.State.int r 8 with
  | 0 -> H (q ())
  | 1 -> X (q ())
  | 2 -> Y (q ())
  | 3 -> Z (q ())
  | 4 -> S (q ())
  | 5 -> Sdg (q ())
  | 6 ->
    let a, b = two () in
    Cnot (a, b)
  | _ ->
    let a, b = two () in
    Cz (a, b)

(* The central correctness test: every stabilizer the tableau reports
   must have expectation +1 in the exact state vector, after random
   Clifford circuits and random fault injection. *)
let test_crosscheck_statevec () =
  let r = rng () in
  for _ = 1 to 100 do
    let n = 5 in
    let sv = Statevec.create n in
    let tab = Tableau.create n in
    for _ = 1 to 25 do
      let g = random_gate r n in
      Statevec.apply_gate sv g;
      Tableau.apply_gate tab g
    done;
    let p = Pauli.random r n in
    Statevec.apply_pauli sv p;
    Tableau.apply_pauli tab p;
    List.iter
      (fun stab ->
        check "stabilizer expectation +1" true
          (Float.abs (Statevec.expectation sv stab -. 1.0) < 1e-6))
      (Tableau.stabilizers tab)
  done

let test_measurement_agreement () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = 4 in
    let sv = Statevec.create n in
    let tab = Tableau.create n in
    for _ = 1 to 20 do
      let g = random_gate r n in
      Statevec.apply_gate sv g;
      Tableau.apply_gate tab g
    done;
    for q = 0 to n - 1 do
      let p1 = Statevec.prob_one sv q in
      if Tableau.measure_is_random tab q then
        check "random <-> p = 1/2" true (Float.abs (p1 -. 0.5) < 1e-6)
      else begin
        let tab' = Tableau.copy tab in
        let o = Tableau.measure tab' r q in
        check "deterministic agrees" true
          (if o then p1 > 1.0 -. 1e-6 else p1 < 1e-6)
      end
    done
  done

let test_ghz () =
  let tab = Tableau.create 3 in
  Tableau.h tab 0;
  Tableau.cnot tab 0 1;
  Tableau.cnot tab 1 2;
  check "XXX stabilizes GHZ" true
    (Tableau.expectation tab (Pauli.of_string "XXX") = Some true);
  check "ZZI stabilizes GHZ" true
    (Tableau.expectation tab (Pauli.of_string "ZZI") = Some true);
  check "-XXX has expectation -1" true
    (Tableau.expectation tab (Pauli.of_string "-XXX") = Some false);
  check "ZII random" true (Tableau.expectation tab (Pauli.of_string "ZII") = None);
  (* measurement correlations *)
  let r = rng () in
  for _ = 1 to 20 do
    let t = Tableau.copy tab in
    let a = Tableau.measure t r 0 in
    let b = Tableau.measure t r 1 in
    let c = Tableau.measure t r 2 in
    check "GHZ correlated" true (a = b && b = c)
  done

let test_y_eigenstate () =
  (* S·H|0> is the +1 eigenstate of Y *)
  let tab = Tableau.create 1 in
  Tableau.h tab 0;
  Tableau.s_gate tab 0;
  check "Y stabilizes SH|0>" true
    (Tableau.expectation tab (Pauli.of_string "Y") = Some true)

let test_measure_pauli () =
  let r = rng () in
  let tab = Tableau.create 2 in
  (* measure XX on |00>: random, then ZZ still +1, and XX repeats *)
  let o1 = Tableau.measure_pauli tab r (Pauli.of_string "XX") in
  let o2 = Tableau.measure_pauli tab r (Pauli.of_string "XX") in
  check "repeated pauli measurement agrees" true (o1 = o2);
  check "ZZ survives XX measurement" true
    (Tableau.expectation tab (Pauli.of_string "ZZ") = Some true)

let test_postselect_pauli () =
  let tab = Tableau.create 2 in
  check "postselect -XX from |00>" true
    (Tableau.postselect_pauli tab (Pauli.of_string "XX") ~outcome:true);
  check "now in -1 eigenstate" true
    (Tableau.expectation tab (Pauli.of_string "XX") = Some false);
  (* impossible postselection: |00> has ZI = +1 deterministically *)
  let t2 = Tableau.create 2 in
  check "impossible postselection refused" false
    (Tableau.postselect_pauli t2 (Pauli.of_string "ZI") ~outcome:true)

let test_equal_states () =
  let a = Tableau.create 2 in
  Tableau.h a 0;
  Tableau.cnot a 0 1;
  let b = Tableau.create 2 in
  Tableau.h b 1;
  Tableau.cnot b 1 0;
  check "bell states equal regardless of construction" true
    (Tableau.equal_states a b);
  Tableau.z b 0;
  check "different after phase flip" false (Tableau.equal_states a b)

let test_reset () =
  let r = rng () in
  let tab = Tableau.create 1 in
  Tableau.h tab 0;
  Tableau.reset tab r 0;
  check "reset gives |0>" true
    (Tableau.expectation tab (Pauli.of_string "Z") = Some true)

let test_destabilizers () =
  let tab = Tableau.create 3 in
  let stabs = Tableau.stabilizers tab in
  let destabs = Tableau.destabilizers tab in
  (* pairing: destab i anticommutes with stab i, commutes with others *)
  List.iteri
    (fun i d ->
      List.iteri
        (fun j s ->
          check "destabilizer pairing" true
            (Bool.equal (Pauli.commutes d s) (i <> j)))
        stabs)
    destabs

let test_toffoli_rejected () =
  let tab = Tableau.create 3 in
  Alcotest.check_raises "toffoli not clifford"
    (Invalid_argument "Tableau.apply_gate: Toffoli is not Clifford") (fun () ->
      Tableau.apply_gate tab (Circuit.Toffoli (0, 1, 2)))

let test_large_register () =
  (* 343-qubit register: level-3 Steane block scale *)
  let n = 343 in
  let tab = Tableau.create n in
  let r = rng () in
  for q = 0 to n - 1 do
    Tableau.h tab q
  done;
  for q = 0 to n - 2 do
    Tableau.cnot tab q (q + 1)
  done;
  (* still a valid stabilizer state: measuring every qubit works *)
  for q = 0 to n - 1 do
    ignore (Tableau.measure tab r q)
  done;
  check "large register survives" true true

let suites =
  [ ( "tableau",
      [ Alcotest.test_case "crosscheck vs statevec" `Quick
          test_crosscheck_statevec;
        Alcotest.test_case "measurement agreement" `Quick
          test_measurement_agreement;
        Alcotest.test_case "GHZ" `Quick test_ghz;
        Alcotest.test_case "Y eigenstate" `Quick test_y_eigenstate;
        Alcotest.test_case "measure_pauli" `Quick test_measure_pauli;
        Alcotest.test_case "postselect_pauli" `Quick test_postselect_pauli;
        Alcotest.test_case "equal_states" `Quick test_equal_states;
        Alcotest.test_case "reset" `Quick test_reset;
        Alcotest.test_case "destabilizer pairing" `Quick test_destabilizers;
        Alcotest.test_case "toffoli rejected" `Quick test_toffoli_rejected;
        Alcotest.test_case "343-qubit register" `Quick test_large_register ] )
  ]
