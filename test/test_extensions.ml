open Ftqc
module Code = Codes.Stabilizer_code

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rng () = Random.State.make [| 83 |]
let steane = Codes.Steane.code

(* --- more codes -------------------------------------------------------- *)

let test_rep3 () =
  let c = Codes.More_codes.rep3_bit in
  check_int "n" 3 c.n;
  check_int "k" 1 c.k;
  (* distance 1 as a quantum code: a single Z is already logical *)
  check_int "quantum distance 1" 1 (Code.distance c);
  (* but it corrects any single bit flip *)
  let d = Code.lookup_decoder c in
  for q = 0 to 2 do
    check "bit flip corrected" true
      (Code.correct d c (Pauli.single 3 q Pauli.X) = `Ok)
  done;
  check "phase flip is logical" true
    (Code.classify c (Pauli.of_string "ZII") = `Logical)

let test_four_two_two () =
  let c = Codes.More_codes.four_two_two in
  check_int "n" 4 c.n;
  check_int "k" 2 c.k;
  check_int "distance 2" 2 (Code.distance c);
  (* detects (nonzero syndrome) every weight-1 error *)
  for q = 0 to 3 do
    List.iter
      (fun l ->
        check "single error detected" false
          (Gf2.Bitvec.is_zero (Code.syndrome c (Pauli.single 4 q l))))
      [ Pauli.X; Pauli.Y; Pauli.Z ]
  done

let test_reed_muller () =
  let c = Codes.More_codes.reed_muller15 in
  check_int "n" 15 c.n;
  check_int "k" 1 c.k;
  check_int "distance 3" 3 (Code.distance c);
  check_int "generators" 14 (Array.length c.generators);
  (* logical state prep and recovery work through the generic path *)
  let r = rng () in
  let tab = Code.prepare_logical_zero c in
  Tableau.apply_pauli tab (Pauli.single 15 7 Pauli.Y);
  ignore (Code.ideal_recover c tab r);
  check "RM recovers single Y" false (Code.logical_measure_z c tab r 0)

let test_bounds () =
  let h5, s5, g5 = Codes.Bounds.check Codes.Five_qubit.code in
  check "5q hamming" true h5;
  check "5q perfect" true s5;
  check "5q singleton" true g5;
  let h7, s7, g7 = Codes.Bounds.check Codes.Steane.code in
  check "steane hamming" true h7;
  check "steane not perfect" false s7;
  check "steane singleton" true g7;
  (* Shor-9 is degenerate: the nondegenerate Hamming bound fails even
     though the code is fine *)
  let h9, _, g9 = Codes.Bounds.check Codes.Shor9.code in
  check "shor9 hamming (degenerate, bound not applicable)" true h9;
  (* 9-4... sphere: 1+27 = 28 <= 2^8 = 256: actually holds *)
  check "shor9 singleton" true g9;
  (* a parameter set that must violate the hamming bound *)
  check "no [[4,1]] t=1 code" false
    (Codes.Bounds.quantum_hamming_ok ~n:4 ~k:1 ~t:1)

(* --- generic (non-CSS) Shor EC ------------------------------------------ *)

let test_shor_ec_five_qubit () =
  let r = rng () in
  let code = Codes.Five_qubit.code in
  (* data 0..4, cat 5..8, check 9 *)
  for q = 0 to 4 do
    List.iter
      (fun l ->
        let sim = Ft.Sim.create ~n:10 ~noise:Ft.Noise.none r in
        let tab = Ft.Sim.tableau sim in
        Array.iter
          (fun g ->
            ignore
              (Tableau.postselect_pauli tab
                 (Code.embed code ~offset:0 ~total:10 g)
                 ~outcome:false))
          code.generators;
        ignore
          (Tableau.postselect_pauli tab
             (Code.embed code ~offset:0 ~total:10 code.logical_z.(0))
             ~outcome:false);
        Ft.Sim.inject sim (Pauli.single 10 q l);
        ignore
          (Ft.Shor_ec.recover sim code ~policy:Ft.Shor_ec.Repeat_if_nontrivial
             ~offset:0 ~cat_base:5 ~check:9 ~verified:true);
        check "five-qubit shor EC" false
          (Ft.Sim.ideal_measure_logical_z sim code ~offset:0))
      [ Pauli.X; Pauli.Y; Pauli.Z ]
  done

let test_cy_gate () =
  (* CY on tableau agrees with statevec *)
  let r = rng () in
  for _ = 1 to 20 do
    let sv = Statevec.create 2 and tab = Tableau.create 2 in
    (* random Clifford prefix *)
    for _ = 1 to 8 do
      match Random.State.int r 4 with
      | 0 ->
        Statevec.h sv 0;
        Tableau.h tab 0
      | 1 ->
        Statevec.s_gate sv 1;
        Tableau.s_gate tab 1
      | 2 ->
        Statevec.cnot sv 0 1;
        Tableau.cnot tab 0 1
      | _ ->
        Statevec.h sv 1;
        Tableau.h tab 1
    done;
    (* CY on statevec = S_t CNOT Sdg_t *)
    Statevec.sdg sv 1;
    Statevec.cnot sv 0 1;
    Statevec.s_gate sv 1;
    Tableau.cy tab 0 1;
    List.iter
      (fun stab ->
        check "cy agreement" true
          (Float.abs (Statevec.expectation sv stab -. 1.0) < 1e-6))
      (Tableau.stabilizers tab)
  done

(* --- generalized CSS Steane-method EC (Fig. 10) --------------------------- *)

let css_ec_fixes_single_errors gadget =
  let r = rng () in
  let code = Ft.Css_ec.code gadget in
  let n = code.Code.n in
  let total = 3 * n in
  for q = 0 to n - 1 do
    List.iter
      (fun l ->
        let sim = Ft.Sim.create ~n:total ~noise:Ft.Noise.none r in
        let tab = Ft.Sim.tableau sim in
        Array.iter
          (fun g ->
            ignore
              (Tableau.postselect_pauli tab
                 (Code.embed code ~offset:0 ~total g)
                 ~outcome:false))
          code.generators;
        ignore
          (Tableau.postselect_pauli tab
             (Code.embed code ~offset:0 ~total code.logical_z.(0))
             ~outcome:false);
        Ft.Sim.inject sim (Pauli.single total q l);
        ignore
          (Ft.Css_ec.recover sim gadget ~policy:Ft.Css_ec.Repeat_if_nontrivial
             ~data:0 ~ancilla:n ~checker:(2 * n) ~max_attempts:5);
        check "css_ec fixes single error" false
          (Ft.Sim.ideal_measure_logical_z sim code ~offset:0))
      [ Pauli.X; Pauli.Y; Pauli.Z ]
  done

let test_css_ec_steane () = css_ec_fixes_single_errors (Ft.Css_ec.for_steane ())
let test_css_ec_shor9 () = css_ec_fixes_single_errors (Ft.Css_ec.for_shor9 ())

let test_css_ec_reed_muller () =
  css_ec_fixes_single_errors (Ft.Css_ec.for_reed_muller ())

let test_css_ec_no_info_leak () =
  (* extracting a syndrome from a clean block must not perturb a
     logical superposition: run on |+bar> and check X̄ survives *)
  let r = rng () in
  let gadget = Ft.Css_ec.for_steane () in
  let sim = Ft.Sim.create ~n:21 ~noise:Ft.Noise.none r in
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g ->
      ignore
        (Tableau.postselect_pauli tab
           (Code.embed Codes.Steane.code ~offset:0 ~total:21 g)
           ~outcome:false))
    Codes.Steane.code.generators;
  ignore
    (Tableau.postselect_pauli tab
       (Code.embed Codes.Steane.code ~offset:0 ~total:21
          Codes.Steane.code.logical_x.(0))
       ~outcome:false);
  ignore
    (Ft.Css_ec.recover sim gadget ~policy:Ft.Css_ec.Repeat_if_nontrivial
       ~data:0 ~ancilla:7 ~checker:14 ~max_attempts:5);
  check "|+bar> survives syndrome extraction" false
    (Ft.Sim.ideal_measure_logical_x sim Codes.Steane.code ~offset:0)

let test_superposition_circuit () =
  (* the circuit prepares exactly the uniform code-state: check for the
     Hamming parity-check basis against Eq. (6)'s amplitudes *)
  let c = Codes.Css.superposition_circuit Codes.Hamming.parity_check in
  let sv = Statevec.create 7 in
  ignore (Statevec.run sv c);
  let zero = Statevec.of_amplitudes (Codes.Steane.logical_zero_amplitudes ()) in
  check "superposition circuit = |0bar>" true
    (Statevec.fidelity sv zero > 1.0 -. 1e-9)

(* --- measurement-based encoding circuits -------------------------------------- *)

let encoder_test (code : Code.t) =
  let r = rng () in
  let c = Code.encoding_circuit_via_measurement code in
  let n = code.Code.n in
  (* exact statevector check *)
  let sv = Statevec.create (n + 1) in
  ignore (Statevec.run ~rng:r sv c);
  Array.iter
    (fun g ->
      check
        (code.Code.name ^ " generator +1")
        true
        (Float.abs
           (Statevec.expectation sv (Code.embed code ~offset:0 ~total:(n + 1) g)
           -. 1.0)
        < 1e-9))
    code.Code.generators;
  Array.iter
    (fun z ->
      check
        (code.Code.name ^ " logical Z +1")
        true
        (Float.abs
           (Statevec.expectation sv (Code.embed code ~offset:0 ~total:(n + 1) z)
           -. 1.0)
        < 1e-9))
    code.Code.logical_z;
  (* tableau run agrees with the direct projection preparation *)
  let tab = Tableau.create (n + 1) in
  ignore (Tableau.run ~rng:r tab c);
  Array.iter
    (fun g ->
      check
        (code.Code.name ^ " tableau generator")
        true
        (Tableau.expectation tab (Code.embed code ~offset:0 ~total:(n + 1) g)
        = Some true))
    code.Code.generators

let test_measurement_encoder_five_qubit () = encoder_test Codes.Five_qubit.code
let test_measurement_encoder_steane () = encoder_test Codes.Steane.code
let test_measurement_encoder_toric () = encoder_test (Toric.Code.stabilizer_code 2)

let test_measurement_encoder_rm15 () =
  (* 16 qubits: the largest the statevector can comfortably take *)
  encoder_test Codes.More_codes.reed_muller15

(* --- multicore Monte Carlo --------------------------------------------------- *)

(* The Ft.Parmc compat suite is gone with the shim itself; Mc.Runner's
   own guarantees (reproducibility, domain-count invariance, the
   exactly-once trial index) live in test/test_mc.ml.  What stays here
   is the one experiment-level consumer of the parallel entry point. *)

let test_concat_ec_parallel_experiment () =
  let noise = Ft.Noise.gates_only 2e-3 in
  let f, n =
    Ft.Concat_ec.logical_failure_rate_par ~domains:2 ~noise ~level:1
      ~trials:4000 ~seed:5 ()
  in
  check "parallel level-1 plausible" true
    (n = 4000 && float_of_int f /. float_of_int n < 0.01)

(* --- logical teleportation -------------------------------------------------- *)

(* source 0-6, bell_a 7-13, bell_b 14-20, checker 21-27, total 28 *)
let prep_source sim ~state =
  let tab = Ft.Sim.tableau sim in
  let n = Ft.Sim.num_qubits sim in
  Array.iter
    (fun g ->
      ignore
        (Tableau.postselect_pauli tab
           (Code.embed steane ~offset:0 ~total:n g)
           ~outcome:false))
    steane.Code.generators;
  (* project onto the +1 eigenstate of the basis operator, then apply
     the conjugate logical to flip when needed (postselecting the −1
     eigenvalue of a deterministic +1 operator would be a no-op) *)
  let op, flip =
    match state with
    | `Zero -> (steane.Code.logical_z.(0), None)
    | `One -> (steane.Code.logical_z.(0), Some steane.Code.logical_x.(0))
    | `Plus -> (steane.Code.logical_x.(0), None)
    | `Minus -> (steane.Code.logical_x.(0), Some steane.Code.logical_z.(0))
  in
  ignore
    (Tableau.postselect_pauli tab (Code.embed steane ~offset:0 ~total:n op)
       ~outcome:false);
  match flip with
  | Some f -> Tableau.apply_pauli tab (Code.embed steane ~offset:0 ~total:n f)
  | None -> ()

let test_teleport_basis_states () =
  let r = rng () in
  List.iter
    (fun (state, check_x, expect) ->
      let sim = Ft.Sim.create ~n:28 ~noise:Ft.Noise.none r in
      prep_source sim ~state;
      ignore
        (Ft.Teleport.teleport sim ~source:0 ~bell_a:7 ~bell_b:14 ~checker:21
           ~verify:Ft.Steane_ec.Reject);
      let out =
        if check_x then Ft.Sim.ideal_measure_logical_x sim steane ~offset:14
        else Ft.Sim.ideal_measure_logical_z sim steane ~offset:14
      in
      check "teleported state correct" true (out = expect))
    [ (`Zero, false, false); (`One, false, true); (`Plus, true, false);
      (`Minus, true, true) ]

let test_teleport_under_noise () =
  let r = rng () in
  let ok = ref 0 in
  let trials = 40 in
  for _ = 1 to trials do
    let sim = Ft.Sim.create ~n:28 ~noise:(Ft.Noise.gates_only 3e-4) r in
    prep_source sim ~state:`One;
    ignore
      (Ft.Teleport.teleport sim ~source:0 ~bell_a:7 ~bell_b:14 ~checker:21
         ~verify:Ft.Steane_ec.Reject);
    if Ft.Sim.ideal_measure_logical_z sim steane ~offset:14 then incr ok
  done;
  check "teleportation mostly survives noise" true (!ok >= trials - 2)

let test_bell_pair_correlations () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:28 ~noise:Ft.Noise.none r in
  Ft.Teleport.logical_bell_pair sim ~block_a:0 ~block_b:7 ~checker:21
    ~verify:Ft.Steane_ec.Reject;
  let tab = Ft.Sim.tableau sim in
  let zz =
    Pauli.mul
      (Code.embed steane ~offset:0 ~total:28 steane.Code.logical_z.(0))
      (Code.embed steane ~offset:7 ~total:28 steane.Code.logical_z.(0))
  in
  let xx =
    Pauli.mul
      (Code.embed steane ~offset:0 ~total:28 steane.Code.logical_x.(0))
      (Code.embed steane ~offset:7 ~total:28 steane.Code.logical_x.(0))
  in
  check "ZZ correlation" true (Tableau.expectation tab zz = Some true);
  check "XX correlation" true (Tableau.expectation tab xx = Some true)

(* --- level-2 concatenated EC ----------------------------------------------- *)

let total_l2 = 49 + Ft.Concat_ec.scratch_qubits
let code2 = lazy (Codes.Concat.steane_level 2)

let prep_l2 sim ~plus =
  let tab = Ft.Sim.tableau sim in
  let code2 = Lazy.force code2 in
  Array.iter
    (fun g ->
      ignore
        (Tableau.postselect_pauli tab
           (Code.embed code2 ~offset:0 ~total:total_l2 g)
           ~outcome:false))
    code2.Code.generators;
  let l = if plus then code2.logical_x.(0) else code2.logical_z.(0) in
  ignore
    (Tableau.postselect_pauli tab
       (Code.embed code2 ~offset:0 ~total:total_l2 l)
       ~outcome:false)

let test_l2_recovery_scattered_errors () =
  let r = rng () in
  for _ = 1 to 5 do
    let sim = Ft.Sim.create ~n:total_l2 ~noise:Ft.Noise.none r in
    prep_l2 sim ~plus:false;
    (* one random error in each of three different inner blocks *)
    List.iter
      (fun b ->
        let q = (7 * b) + Random.State.int r 7 in
        let l = [| Pauli.X; Pauli.Y; Pauli.Z |].(Random.State.int r 3) in
        Ft.Sim.inject sim (Pauli.single total_l2 q l))
      [ 0; 3; 6 ];
    Ft.Concat_ec.recover_l2 sim ~data:0 ~scratch:49 ~max_attempts:10;
    check "level-2 recovery (3 scattered errors)" false
      (Ft.Concat_ec.measure_logical_z_destructive_l2 sim ~block:0)
  done

let test_l2_recovery_inner_logical_error () =
  (* a full inner logical X (an outer-level single error) must be
     caught by the *outer* syndrome round *)
  let r = rng () in
  for b = 0 to 6 do
    let sim = Ft.Sim.create ~n:total_l2 ~noise:Ft.Noise.none r in
    prep_l2 sim ~plus:false;
    Ft.Sim.inject sim
      (Code.embed Codes.Steane.code ~offset:(7 * b) ~total:total_l2
         (Pauli.of_string "XXXXXXX"));
    Ft.Concat_ec.recover_l2 sim ~data:0 ~scratch:49 ~max_attempts:10;
    check "level-2 fixes an inner logical X" false
      (Ft.Concat_ec.measure_logical_z_destructive_l2 sim ~block:0)
  done

let test_l2_prepare_zero () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:total_l2 ~noise:Ft.Noise.none r in
  Ft.Concat_ec.prepare_zero_l2 sim ~block:0 ~scratch:49 ~max_attempts:5;
  let tab = Ft.Sim.tableau sim in
  let code2 = Lazy.force code2 in
  check "prepared |0bar>_2 is stabilized" true
    (Array.for_all
       (fun g ->
         Tableau.expectation tab (Code.embed code2 ~offset:0 ~total:total_l2 g)
         = Some true)
       code2.Code.generators);
  check "logical value 0" false
    (Ft.Concat_ec.measure_logical_z_destructive_l2 sim ~block:0)

let test_l2_noisy_smoke () =
  (* a handful of noisy trials must run to completion with low failure *)
  let r = rng () in
  let f, n =
    Ft.Concat_ec.logical_failure_rate ~noise:(Ft.Noise.gates_only 5e-4)
      ~level:2 ~trials:30 r
  in
  check "noisy level-2 smoke" true (n = 30 && f <= 2)

(* --- nondestructive logical measurement ---------------------------------- *)

let test_nondestructive_measure () =
  let r = rng () in
  let prep plus =
    let sim = Ft.Sim.create ~n:8 ~noise:Ft.Noise.none r in
    let tab = Ft.Sim.tableau sim in
    Array.iter
      (fun g ->
        ignore
          (Tableau.postselect_pauli tab
             (Code.embed Codes.Steane.code ~offset:0 ~total:8 g)
             ~outcome:false))
      Codes.Steane.code.generators;
    let l =
      if plus then Codes.Steane.code.logical_x.(0)
      else Codes.Steane.code.logical_z.(0)
    in
    ignore
      (Tableau.postselect_pauli tab
         (Code.embed Codes.Steane.code ~offset:0 ~total:8 l)
         ~outcome:false);
    sim
  in
  (* measures |0bar> as 0 and |1bar> as 1, preserving the block *)
  let sim = prep false in
  check "reads |0bar>" false
    (Ft.Transversal.logical_measure_z_nondestructive sim ~block:0 ~ancilla:7
       ~repetitions:3);
  check "block intact" false
    (Ft.Sim.ideal_measure_logical_z sim Codes.Steane.code ~offset:0);
  let sim = prep false in
  Ft.Transversal.logical_x sim ~block:0;
  check "reads |1bar>" true
    (Ft.Transversal.logical_measure_z_nondestructive sim ~block:0 ~ancilla:7
       ~repetitions:3);
  (* collapses |+bar> to a definite logical value, still in codespace *)
  let sim = prep true in
  let o =
    Ft.Transversal.logical_measure_z_nondestructive sim ~block:0 ~ancilla:7
      ~repetitions:3
  in
  check "collapsed consistently" true
    (Ft.Sim.ideal_measure_logical_z sim Codes.Steane.code ~offset:0 = o);
  (* robust to a single injected bit flip: majority of 3 still right *)
  let sim = prep false in
  Ft.Sim.inject sim (Pauli.single 8 3 Pauli.X);
  check "robust to one flip" false
    (Ft.Transversal.logical_measure_z_nondestructive sim ~block:0 ~ancilla:7
       ~repetitions:3);
  (* X-basis version *)
  let sim = prep true in
  check "reads |+bar>" false
    (Ft.Transversal.logical_measure_x_nondestructive sim ~block:0 ~ancilla:7
       ~repetitions:3)

(* --- logical processor ---------------------------------------------------- *)

let test_logical_processor_basics () =
  let r = rng () in
  let t = Ft.Logical.create ~blocks:2 ~noise:Ft.Noise.none r in
  check "starts |00>" true
    ((not (Ft.Logical.ideal_z t 0)) && not (Ft.Logical.ideal_z t 1));
  Ft.Logical.x t 0;
  Ft.Logical.cnot t ~control:0 ~target:1;
  check "X then CNOT gives |11>" true
    (Ft.Logical.ideal_z t 0 && Ft.Logical.ideal_z t 1);
  check "destructive readout" true (Ft.Logical.measure_z t 1);
  Ft.Logical.prepare_zero t 1;
  check "re-prepared" false (Ft.Logical.ideal_z t 1)

let test_logical_ghz () =
  (* fault-tolerant logical GHZ on three blocks, with noise, judged
     ideally: parity correlations must survive *)
  let r = rng () in
  let successes = ref 0 in
  let trials = 60 in
  for _ = 1 to trials do
    let t =
      Ft.Logical.create ~blocks:3 ~noise:(Ft.Noise.gates_only 2e-4) r
    in
    Ft.Logical.h t 0;
    Ft.Logical.cnot t ~control:0 ~target:1;
    Ft.Logical.cnot t ~control:1 ~target:2;
    let a = Ft.Logical.ideal_z t 0 in
    let b = Ft.Logical.ideal_z t 1 in
    let c = Ft.Logical.ideal_z t 2 in
    if a = b && b = c then incr successes
  done;
  check "GHZ correlations survive noisy FT circuit" true
    (!successes >= trials - 2)

let test_logical_s_gate () =
  let r = rng () in
  let t = Ft.Logical.create ~blocks:1 ~noise:Ft.Noise.none r in
  Ft.Logical.h t 0;
  Ft.Logical.s t 0;
  Ft.Logical.s t 0;
  Ft.Logical.h t 0;
  (* HZH = X: |0> -H-> |+> -Z-> |-> -H-> |1> *)
  check "H S S H = X" true (Ft.Logical.ideal_z t 0)

let test_logical_nondestructive () =
  let r = rng () in
  let t = Ft.Logical.create ~blocks:1 ~noise:Ft.Noise.none r in
  Ft.Logical.x t 0;
  check "nondestructive reads 1" true (Ft.Logical.measure_z_nondestructive t 0);
  check "still |1bar> afterwards" true (Ft.Logical.ideal_z t 0)

let suites =
  [ ( "codes.more",
      [ Alcotest.test_case "rep3" `Quick test_rep3;
        Alcotest.test_case "[[4,2,2]]" `Quick test_four_two_two;
        Alcotest.test_case "[[15,1,3]] Reed-Muller" `Quick test_reed_muller;
        Alcotest.test_case "quantum bounds" `Quick test_bounds ] );
    ( "ft.css_ec",
      [ Alcotest.test_case "steane" `Quick test_css_ec_steane;
        Alcotest.test_case "shor9" `Quick test_css_ec_shor9;
        Alcotest.test_case "reed-muller 15" `Quick test_css_ec_reed_muller;
        Alcotest.test_case "no information leak" `Quick
          test_css_ec_no_info_leak;
        Alcotest.test_case "superposition circuit" `Quick
          test_superposition_circuit ] );
    ( "codes.encoding_circuits",
      [ Alcotest.test_case "five-qubit" `Quick
          test_measurement_encoder_five_qubit;
        Alcotest.test_case "steane" `Quick test_measurement_encoder_steane;
        Alcotest.test_case "toric L=2" `Quick test_measurement_encoder_toric;
        Alcotest.test_case "reed-muller 15" `Quick
          test_measurement_encoder_rm15 ] );
    ( "ft.teleport",
      [ Alcotest.test_case "basis states" `Quick test_teleport_basis_states;
        Alcotest.test_case "under noise" `Quick test_teleport_under_noise;
        Alcotest.test_case "bell correlations" `Quick
          test_bell_pair_correlations ] );
    ( "ft.concat_ec",
      [ Alcotest.test_case "scattered errors" `Quick
          test_l2_recovery_scattered_errors;
        Alcotest.test_case "inner logical error" `Quick
          test_l2_recovery_inner_logical_error;
        Alcotest.test_case "verified |0bar>_2 prep" `Quick
          test_l2_prepare_zero;
        Alcotest.test_case "noisy smoke" `Slow test_l2_noisy_smoke;
        Alcotest.test_case "parallel experiment" `Slow
          test_concat_ec_parallel_experiment ] );
    ( "ft.extensions",
      [ Alcotest.test_case "shor EC on 5-qubit code" `Quick
          test_shor_ec_five_qubit;
        Alcotest.test_case "controlled-Y" `Quick test_cy_gate;
        Alcotest.test_case "nondestructive measurement" `Quick
          test_nondestructive_measure;
        Alcotest.test_case "logical processor" `Quick
          test_logical_processor_basics;
        Alcotest.test_case "logical GHZ under noise" `Quick test_logical_ghz;
        Alcotest.test_case "logical S" `Quick test_logical_s_gate;
        Alcotest.test_case "logical nondestructive readout" `Quick
          test_logical_nondestructive ] ) ]
