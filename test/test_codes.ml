open Ftqc
module Code = Codes.Stabilizer_code
module Bitvec = Gf2.Bitvec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rng () = Random.State.make [| 31 |]

(* --- Hamming --------------------------------------------------------- *)

let test_hamming_basics () =
  check_int "16 codewords" 16 (List.length Codes.Hamming.codewords);
  check_int "8 even" 8 (List.length Codes.Hamming.even_codewords);
  check_int "8 odd" 8 (List.length Codes.Hamming.odd_codewords);
  check_int "distance 3" 3 Codes.Hamming.minimum_distance;
  (* Eq. 6's codewords are all present *)
  List.iter
    (fun s ->
      check ("codeword " ^ s) true
        (List.exists
           (fun w -> Bitvec.to_string w = s)
           Codes.Hamming.even_codewords))
    [ "0000000"; "0001111"; "0110011"; "0111100"; "1010101"; "1011010";
      "1100110"; "1101001" ]

let test_hamming_decode_all_single_errors () =
  List.iter
    (fun w ->
      for i = 0 to 6 do
        let corrupted = Bitvec.copy w in
        Bitvec.flip corrupted i;
        let fixed, pos = Codes.Hamming.decode corrupted in
        check "single error fixed" true (Bitvec.equal fixed w);
        check "position identified" true (pos = Some i)
      done)
    Codes.Hamming.codewords

let test_hamming_double_error_fails () =
  (* Eq. 12's failure mode: two flips miscorrect to a *different*
     codeword *)
  let w = List.hd Codes.Hamming.codewords in
  let corrupted = Bitvec.copy w in
  Bitvec.flip corrupted 0;
  Bitvec.flip corrupted 1;
  let fixed, _ = Codes.Hamming.decode corrupted in
  check "still a codeword" true (Codes.Hamming.is_codeword fixed);
  check "but the wrong one" false (Bitvec.equal fixed w)

let test_hamming_encode () =
  for x = 0 to 15 do
    let w = Codes.Hamming.encode (Bitvec.of_int ~width:4 x) in
    check "encoded word valid" true (Codes.Hamming.is_codeword w)
  done

(* --- stabilizer codes ------------------------------------------------ *)

let all_codes () =
  [ Codes.Steane.code; Codes.Five_qubit.code; Codes.Shor9.code ]

let test_distances () =
  check_int "steane d=3" 3 (Code.distance Codes.Steane.code);
  check_int "five-qubit d=3" 3 (Code.distance Codes.Five_qubit.code);
  check_int "shor9 d=3" 3 (Code.distance Codes.Shor9.code)

let test_make_validation () =
  let p = Pauli.of_string in
  (* anticommuting generators must be rejected *)
  (try
     ignore
       (Code.make ~name:"bad" ~generators:[ p "XI"; p "ZI" ]
          ~logical_x:[] ~logical_z:[]);
     Alcotest.fail "anticommuting generators accepted"
   with Invalid_argument _ -> ());
  (* dependent generators rejected *)
  (try
     ignore
       (Code.make ~name:"bad2"
          ~generators:[ p "ZZI"; p "IZZ"; p "ZIZ" ]
          ~logical_x:[] ~logical_z:[]);
     Alcotest.fail "dependent generators accepted"
   with Invalid_argument _ -> ());
  (* wrong logical pairing rejected: XX and ZZ commute, so they cannot
     be an X̄/Z̄ pair *)
  try
    ignore
      (Code.make ~name:"bad3" ~generators:[ p "ZZ" ]
         ~logical_x:[ p "XX" ] ~logical_z:[ p "ZZ" ]);
    Alcotest.fail "commuting X̄/Z̄ pair accepted"
  with Invalid_argument _ -> ()

let test_syndromes_identify_single_errors () =
  List.iter
    (fun (code : Code.t) ->
      (* every single-qubit error has a nonzero syndrome, and two
         single-qubit errors share a syndrome only when they are
         equivalent modulo the stabilizer (degeneracy — Shor's code
         has it: Z₁ and Z₂ differ by the generator Z₁Z₂) *)
      let seen : (string, Pauli.t) Hashtbl.t = Hashtbl.create 32 in
      for q = 0 to code.n - 1 do
        List.iter
          (fun l ->
            let e = Pauli.single code.n q l in
            let s = Bitvec.to_string (Code.syndrome code e) in
            check (code.name ^ " nonzero syndrome") true
              (String.contains s '1');
            (match Hashtbl.find_opt seen s with
            | Some e' ->
              check
                (code.name ^ " colliding errors are degenerate")
                true
                (Code.classify code (Pauli.mul e e') = `Stabilizer)
            | None -> Hashtbl.add seen s e))
          [ Pauli.X; Pauli.Y; Pauli.Z ]
      done)
    (all_codes ())

let test_decoder_corrects_weight_one () =
  List.iter
    (fun (code : Code.t) ->
      let d = Code.lookup_decoder code in
      for q = 0 to code.n - 1 do
        List.iter
          (fun l ->
            check
              (code.name ^ " corrects weight 1")
              true
              (Code.correct d code (Pauli.single code.n q l) = `Ok))
          [ Pauli.X; Pauli.Y; Pauli.Z ]
      done)
    (all_codes ())

let test_steane_css_decoder_xz_pairs () =
  let d = Codes.Steane.css_decoder () in
  for a = 0 to 6 do
    for b = 0 to 6 do
      let e = Pauli.mul (Pauli.single 7 a Pauli.X) (Pauli.single 7 b Pauli.Z) in
      check "X_a Z_b corrected" true (Code.correct d Codes.Steane.code e = `Ok)
    done
  done

let test_steane_double_bitflip_is_logical () =
  let d = Codes.Steane.css_decoder () in
  check "XX -> logical error (Eq. 12)" true
    (Code.correct d Codes.Steane.code (Pauli.of_string "XXIIIII")
    = `Logical_error);
  check "ZZ -> logical error (Eq. 13)" true
    (Code.correct d Codes.Steane.code (Pauli.of_string "ZZIIIII")
    = `Logical_error)

let test_classify () =
  let code = Codes.Steane.code in
  check "generator is stabilizer" true
    (Code.classify code code.generators.(0) = `Stabilizer);
  check "product of generators is stabilizer" true
    (Code.classify code (Pauli.mul code.generators.(0) code.generators.(1))
    = `Stabilizer);
  check "logical Z classified logical" true
    (Code.classify code code.logical_z.(0) = `Logical);
  check "weight-3 logical X" true
    (Code.classify code Codes.Steane.logical_x_weight3 = `Logical);
  check "single X detectable" true
    (Code.classify code (Pauli.of_string "XIIIIII") = `Detectable)

let test_encoders_match_codewords () =
  (* Fig. 3 encoder: input a|0>+b|1> becomes a|0bar>+b|1bar> exactly *)
  let sv = Statevec.create 7 in
  Statevec.h sv Codes.Steane.input_qubit;
  ignore (Statevec.run sv (Codes.Steane.encoding_circuit ()));
  let target =
    Statevec.of_amplitudes
      (Array.map2
         (fun a b -> Qmath.Cx.scale (1.0 /. sqrt 2.0) (Qmath.Cx.add a b))
         (Codes.Steane.logical_zero_amplitudes ())
         (Codes.Steane.logical_one_amplitudes ()))
  in
  check "steane encoder exact on |+>" true
    (Statevec.fidelity sv target > 1.0 -. 1e-9);
  (* shor9 encoder produces a state stabilized by all generators *)
  let sv9 = Statevec.create 9 in
  ignore (Statevec.run sv9 (Codes.Shor9.encoding_circuit ()));
  Array.iter
    (fun g ->
      check "shor9 stabilized" true
        (Float.abs (Statevec.expectation sv9 g -. 1.0) < 1e-9))
    Codes.Shor9.code.generators;
  check "shor9 logical Z = +1" true
    (Float.abs (Statevec.expectation sv9 Codes.Shor9.code.logical_z.(0) -. 1.0)
    < 1e-9)

let test_prepare_logical_states () =
  List.iter
    (fun (code : Code.t) ->
      let z = Code.prepare_logical_zero code in
      check (code.name ^ " |0bar> gens") true
        (Array.for_all
           (fun g -> Tableau.expectation z g = Some true)
           code.generators);
      check (code.name ^ " Zbar = +1") true
        (Tableau.expectation z code.logical_z.(0) = Some true);
      let p = Code.prepare_logical_plus code in
      check (code.name ^ " Xbar = +1") true
        (Tableau.expectation p code.logical_x.(0) = Some true))
    (all_codes ())

let test_css_equals_steane () =
  let css = Codes.Css.steane_from_hamming () in
  check_int "css n" 7 css.n;
  check_int "css k" 1 css.k;
  check "same |0bar>" true
    (Tableau.equal_states
       (Code.prepare_logical_zero css)
       (Code.prepare_logical_zero Codes.Steane.code))

let test_css_orthogonality_enforced () =
  let hx = Gf2.Mat.of_int_lists [ [ 0; 1; 1 ]; [ 1; 1; 0 ] ] in
  let hz = Gf2.Mat.of_int_lists [ [ 1; 0; 0 ] ] in
  (match Codes.Css.build ~name:"bad" ~hx ~hz with
  | Ok _ -> Alcotest.fail "non-orthogonal CSS accepted"
  | Error (Codes.Css.Non_orthogonal { x_row; z_row }) ->
    (* row 0 of hx is orthogonal to hz; row 1 is the offender *)
    check_int "offending hx row" 1 x_row;
    check_int "offending hz row" 0 z_row
  | Error e ->
    Alcotest.failf "wrong rejection reason: %s" (Codes.Css.error_to_string e));
  (* the raising entry point reports the same structured reason *)
  (try
     ignore (Codes.Css.make ~name:"bad" ~hx ~hz);
     Alcotest.fail "non-orthogonal CSS accepted by make"
   with
  | Codes.Css.Invalid_css
      { name = "bad"; error = Codes.Css.Non_orthogonal _ } ->
    ());
  (* width mismatch is its own structured reason *)
  match
    Codes.Css.build ~name:"bad" ~hx
      ~hz:(Gf2.Mat.of_int_lists [ [ 1; 0 ] ])
  with
  | Error (Codes.Css.Width_mismatch { x_cols = 3; z_cols = 2 }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "width mismatch not reported"

let test_concatenated_steane () =
  let l2 = Codes.Concat.steane_level 2 in
  check_int "level-2 n" 49 l2.n;
  check_int "level-2 k" 1 l2.k;
  check_int "level-2 generators" 48 (Array.length l2.generators);
  let tab = Code.prepare_logical_zero l2 in
  check "level-2 |0bar>" true
    (Tableau.expectation tab l2.logical_z.(0) = Some true);
  (* weight-1 errors corrected by the generic decoder *)
  let d = Code.lookup_decoder ~max_weight:1 l2 in
  let r = rng () in
  for _ = 1 to 10 do
    let q = Random.State.int r 49 in
    let l = [| Pauli.X; Pauli.Y; Pauli.Z |].(Random.State.int r 3) in
    check "level-2 corrects weight 1" true
      (Code.correct d l2 (Pauli.single 49 q l) = `Ok)
  done

let test_ideal_recover_roundtrip () =
  let r = rng () in
  List.iter
    (fun (code : Code.t) ->
      for _ = 1 to 30 do
        let tab = Code.prepare_logical_zero code in
        let q = Random.State.int r code.n in
        let l = [| Pauli.X; Pauli.Y; Pauli.Z |].(Random.State.int r 3) in
        Tableau.apply_pauli tab (Pauli.single code.n q l);
        ignore (Code.ideal_recover code tab r);
        check (code.name ^ " recovery") false
          (Code.logical_measure_z code tab r 0)
      done)
    (all_codes ())

let test_embed () =
  let code = Codes.Steane.code in
  let e = Code.embed code ~offset:3 ~total:12 (Pauli.of_string "XIIIIIZ") in
  check "embedded letters" true
    (Pauli.letter e 3 = Pauli.X && Pauli.letter e 9 = Pauli.Z
   && Pauli.letter e 0 = Pauli.I && Pauli.weight e = 2)

(* property: every single-qubit error, after CSS decoding, leaves the
   Steane block in the codespace with no logical flip *)
let prop_steane_random_weight1 =
  QCheck.Test.make ~name:"steane corrects random weight-1 + stabilizer noise"
    ~count:100
    (QCheck.make
       ~print:(fun (q, l, g) -> Printf.sprintf "q%d l%d g%d" q l g)
       QCheck.Gen.(triple (int_bound 6) (int_bound 2) (int_bound 5)))
    (fun (q, l, g) ->
      let code = Codes.Steane.code in
      let d = Code.default_decoder code in
      let letter = [| Pauli.X; Pauli.Y; Pauli.Z |].(l) in
      (* error = single letter times a random stabilizer generator:
         must still be handled (degeneracy) *)
      let e = Pauli.mul (Pauli.single 7 q letter) code.generators.(g) in
      Code.correct d code e = `Ok)

let suites =
  [ ( "codes.hamming",
      [ Alcotest.test_case "basics" `Quick test_hamming_basics;
        Alcotest.test_case "single-error decode" `Quick
          test_hamming_decode_all_single_errors;
        Alcotest.test_case "double-error miscorrect" `Quick
          test_hamming_double_error_fails;
        Alcotest.test_case "encode" `Quick test_hamming_encode ] );
    ( "codes.stabilizer",
      [ Alcotest.test_case "distances" `Quick test_distances;
        Alcotest.test_case "make validation" `Quick test_make_validation;
        Alcotest.test_case "syndromes identify errors" `Quick
          test_syndromes_identify_single_errors;
        Alcotest.test_case "decoder corrects weight 1" `Quick
          test_decoder_corrects_weight_one;
        Alcotest.test_case "css decoder X+Z pairs" `Quick
          test_steane_css_decoder_xz_pairs;
        Alcotest.test_case "double flips are logical" `Quick
          test_steane_double_bitflip_is_logical;
        Alcotest.test_case "classify" `Quick test_classify;
        Alcotest.test_case "encoders" `Quick test_encoders_match_codewords;
        Alcotest.test_case "logical state prep" `Quick
          test_prepare_logical_states;
        Alcotest.test_case "css = steane" `Quick test_css_equals_steane;
        Alcotest.test_case "css orthogonality" `Quick
          test_css_orthogonality_enforced;
        Alcotest.test_case "concatenated level 2" `Quick
          test_concatenated_steane;
        Alcotest.test_case "ideal recovery" `Quick test_ideal_recover_roundtrip;
        Alcotest.test_case "embed" `Quick test_embed;
        QCheck_alcotest.to_alcotest prop_steane_random_weight1 ] ) ]
