open Ftqc
module We = Codes.Weight_enumerator
module Mat = Gf2.Mat

let check = Alcotest.(check bool)
let check_arr name a b = Alcotest.(check (array int)) name a b

let hamming_basis =
  (* generator of the [7,4] Hamming code: basis of ker H *)
  Mat.of_rows (Mat.kernel Codes.Hamming.parity_check)

let test_hamming_distribution () =
  (* A(z) = 1 + 7z³ + 7z⁴ + z⁷ *)
  check_arr "hamming weights" [| 1; 0; 0; 7; 7; 0; 0; 1 |]
    (We.distribution hamming_basis);
  Alcotest.(check int) "min distance" 3 (We.minimum_distance hamming_basis)

let test_hamming_dual () =
  (* the dual (even subcode/simplex-like [7,3]): all nonzero words have
     weight 4 *)
  check_arr "dual weights" [| 1; 0; 0; 0; 7; 0; 0; 0 |]
    (We.dual_distribution hamming_basis)

let test_macwilliams_hamming () =
  let direct = We.dual_distribution hamming_basis in
  let transformed =
    We.macwilliams_transform ~n:7 (We.distribution hamming_basis)
  in
  check_arr "MacWilliams = direct dual" direct transformed;
  (* and the transform is an involution (up to the size factor) *)
  let back = We.macwilliams_transform ~n:7 transformed in
  check_arr "transform involutive" (We.distribution hamming_basis) back

let test_macwilliams_golay () =
  let direct = We.dual_distribution Codes.Golay.generator in
  let transformed =
    We.macwilliams_transform ~n:23 (We.distribution Codes.Golay.generator)
  in
  check_arr "golay MacWilliams" direct transformed;
  (* dual = [23,11,8]: minimum weight 8 *)
  Alcotest.(check int) "dual min weight" 8
    (We.minimum_distance (Mat.of_rows (Mat.kernel Codes.Golay.generator)))

let test_golay_distribution_matches_module () =
  check_arr "golay distribution consistent"
    (Array.of_list (Array.to_list (Codes.Golay.weight_distribution ())))
    (We.distribution Codes.Golay.generator)

let test_krawtchouk_basics () =
  (* K_0(i) = 1; K_j(0) = C(n, j) *)
  for i = 0 to 7 do
    Alcotest.(check int) "K0" 1 (We.krawtchouk ~n:7 ~j:0 i)
  done;
  Alcotest.(check int) "K2(0)" 21 (We.krawtchouk ~n:7 ~j:2 0);
  Alcotest.(check int) "K1(i) = n-2i" (7 - (2 * 3)) (We.krawtchouk ~n:7 ~j:1 3)

let prop_macwilliams_random =
  QCheck.Test.make ~name:"MacWilliams identity on random codes" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let n = 5 + Random.State.int r 5 in
      let k = 1 + Random.State.int r 3 in
      (* random full-rank basis *)
      let rec make_basis () =
        let rows =
          List.init k (fun _ ->
              let v = Gf2.Bitvec.create n in
              Gf2.Bitvec.randomize ~p:0.5 r v;
              v)
        in
        let m = Mat.of_rows rows in
        if Mat.rank m = k then m else make_basis ()
      in
      let basis = make_basis () in
      We.dual_distribution basis
      = We.macwilliams_transform ~n (We.distribution basis))

let suites =
  [ ( "codes.weight_enumerator",
      [ Alcotest.test_case "hamming distribution" `Quick
          test_hamming_distribution;
        Alcotest.test_case "hamming dual" `Quick test_hamming_dual;
        Alcotest.test_case "MacWilliams (hamming)" `Quick
          test_macwilliams_hamming;
        Alcotest.test_case "MacWilliams (golay)" `Quick test_macwilliams_golay;
        Alcotest.test_case "golay module consistency" `Quick
          test_golay_distribution_matches_module;
        Alcotest.test_case "krawtchouk" `Quick test_krawtchouk_basics;
        QCheck_alcotest.to_alcotest prop_macwilliams_random ] ) ]
