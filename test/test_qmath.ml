open Ftqc
module Cx = Qmath.Cx
module Cmat = Qmath.Cmat
module Gates = Qmath.Gates

let check = Alcotest.(check bool)

let test_cx_arith () =
  let open Cx in
  check "i*i = -1" true (approx (i * i) minus_one);
  check "conj" true (approx (conj (make 1. 2.)) (make 1. (-2.)));
  check "exp_i pi = -1" true (approx ~tol:1e-12 (exp_i Float.pi) minus_one);
  check "norm2" true (Float.abs (norm2 (make 3. 4.) -. 25.) < 1e-12)

let test_gates_unitary () =
  List.iter
    (fun (name, m) ->
      check (name ^ " unitary") true (Cmat.is_unitary m))
    [ ("X", Gates.x); ("Y", Gates.y); ("Z", Gates.z); ("H", Gates.h);
      ("S", Gates.s); ("S†", Gates.sdg); ("R'", Gates.r'); ("CNOT", Gates.cnot);
      ("CZ", Gates.cz); ("SWAP", Gates.swap); ("Toffoli", Gates.toffoli);
      ("Rz(0.3)", Gates.rz 0.3) ]

let test_pauli_algebra () =
  check "H^2 = I" true (Cmat.equal (Cmat.mul Gates.h Gates.h) Gates.id2);
  check "XZ = -iY (textbook)" true
    (Cmat.equal (Cmat.mul Gates.x Gates.z)
       (Cmat.smul (Cx.neg Cx.i) Gates.y));
  check "paper Y = X·Z" true (Cmat.equal Gates.y_paper (Cmat.mul Gates.x Gates.z));
  check "S^2 = Z" true (Cmat.equal (Cmat.mul Gates.s Gates.s) Gates.z);
  check "HXH = Z" true
    (Cmat.equal (Cmat.mul Gates.h (Cmat.mul Gates.x Gates.h)) Gates.z);
  check "HZH = X" true
    (Cmat.equal (Cmat.mul Gates.h (Cmat.mul Gates.z Gates.h)) Gates.x);
  (* R' turns Y into Z: R'† Y R' = Z up to phase *)
  let conj = Cmat.mul (Cmat.dagger Gates.r') (Cmat.mul Gates.y Gates.r') in
  check "R'† Y R' ∝ Z" true (Cmat.proportional conj Gates.z)

(* Fig. 5: (H⊗H) CNOT (H⊗H) = CNOT with source and target exchanged *)
let test_fig5_identity () =
  let hh = Cmat.kron Gates.h Gates.h in
  let lhs = Cmat.mul hh (Cmat.mul Gates.cnot hh) in
  (* reversed CNOT = SWAP · CNOT · SWAP *)
  let reversed = Cmat.mul Gates.swap (Cmat.mul Gates.cnot Gates.swap) in
  check "Fig. 5 identity" true (Cmat.equal lhs reversed)

let test_toffoli_action () =
  (* Toffoli flips the target iff both controls are set *)
  for input = 0 to 7 do
    let v = Array.make 8 Cx.zero in
    v.(input) <- Cx.one;
    let out = Cmat.apply Gates.toffoli v in
    let expected = if input land 0b110 = 0b110 then input lxor 1 else input in
    check
      (Printf.sprintf "toffoli |%d⟩" input)
      true
      (Cx.approx out.(expected) Cx.one)
  done

let test_kron_dims () =
  let k = Cmat.kron Gates.cnot Gates.h in
  Alcotest.(check int) "kron rows" 8 (Cmat.rows k);
  check "kron unitary" true (Cmat.is_unitary k);
  (* kron is multiplicative: (A⊗B)(C⊗D) = AC ⊗ BD *)
  let a = Gates.h and b = Gates.s and c = Gates.x and d = Gates.z in
  check "kron multiplicative" true
    (Cmat.equal
       (Cmat.mul (Cmat.kron a b) (Cmat.kron c d))
       (Cmat.kron (Cmat.mul a c) (Cmat.mul b d)))

let test_proportional () =
  check "proportional to self times i" true
    (Cmat.proportional Gates.x (Cmat.smul Cx.i Gates.x));
  check "not proportional" false (Cmat.proportional Gates.x Gates.z)

let test_trace_dagger () =
  check "trace Z = 0" true (Cx.approx (Cmat.trace Gates.z) Cx.zero);
  check "trace I = 2" true (Cx.approx (Cmat.trace Gates.id2) (Cx.re 2.0));
  check "dagger of S is S†" true (Cmat.equal (Cmat.dagger Gates.s) Gates.sdg)

let suites =
  [ ( "qmath",
      [ Alcotest.test_case "complex arithmetic" `Quick test_cx_arith;
        Alcotest.test_case "gates unitary" `Quick test_gates_unitary;
        Alcotest.test_case "pauli algebra" `Quick test_pauli_algebra;
        Alcotest.test_case "Fig. 5 identity" `Quick test_fig5_identity;
        Alcotest.test_case "toffoli action" `Quick test_toffoli_action;
        Alcotest.test_case "kron" `Quick test_kron_dims;
        Alcotest.test_case "proportional" `Quick test_proportional;
        Alcotest.test_case "trace/dagger" `Quick test_trace_dagger ] ) ]
