(* The resilience layer: Mc.Campaign checkpoint store, Mc.Runner
   supervision (watchdog/retry/graceful stop) and the Mc.Chaos
   injection harness.  The load-bearing property is that recovery of
   any kind — resume from checkpoint, chunk retry after a kill or a
   stall, a second process picking up after SIGKILL — yields counts
   bit-identical to an uninterrupted run, at any domain count and on
   both engines; corrupted checkpoints must be rejected with a
   diagnostic, never quietly mis-resumed. *)

open Ftqc

let check msg expected actual = Alcotest.(check bool) msg expected actual
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let tmp_file () = Filename.temp_file "ftqc_campaign" ".json"

(* a fresh checkpoint path that does not exist yet *)
let fresh_path () =
  let f = tmp_file () in
  Sys.remove f;
  f

let with_fresh_campaign ?flush_every f =
  let path = fresh_path () in
  let c =
    match Mc.Campaign.create ?flush_every path with
    | Ok c -> c
    | Error m -> failwith m
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path c)

(* The canonical workload: a Bernoulli(0.3) trial over the runner's
   stream discipline.  Any supervised/resumed run must reproduce the
   plain run's count exactly. *)
let trial rng _ = Random.State.float rng 1.0 < 0.3
let trials = 4000
let mc_chunk = 250 (* 16 chunks: chunk size pins the RNG ledger, so every
                      run below must share it with the reference *)
let seed = 99

let reference =
  lazy
    (Mc.Runner.failures ~domains:1 ~chunk:mc_chunk ~trials ~seed
       (Mc.Runner.scalar trial))

let batch _ctx keys ~base ~count:_ =
  (* deterministic per-word pattern derived from each lane's key *)
  Array.mapi
    (fun j key ->
      let w = ref 0L in
      for k = 0 to 63 do
        if Int64.rem (Mc.Rng.draw key (base + (64 * j) + k)) 5L = 0L then
          w := Int64.logor !w (Int64.shift_left 1L k)
      done;
      !w)
    keys

let batch_trials = 1000
let batch_model = Mc.Runner.model ~worker_init:(fun () -> ()) ~batch ()

let batch_reference =
  lazy
    (Mc.Runner.failures ~domains:1 ~engine:(Mc.Engine.batch ())
       ~trials:batch_trials ~seed batch_model)

(* --- checkpoint store basics ----------------------------------------- *)

let test_create_refuses_clobber () =
  let f = tmp_file () in
  (* file exists (empty): create must refuse *)
  (match Mc.Campaign.create f with
  | Error msg -> check "mentions resume" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "create over an existing file must error");
  Sys.remove f

let test_create_writes_resume_token_immediately () =
  with_fresh_campaign (fun path _c ->
      check "file exists before any record" true (Sys.file_exists path);
      match Obs.Json.read_file path with
      | Ok j -> check_int "empty checkpoint validates"
          0 (Result.get_ok (Mc.Campaign.validate j))
      | Error m -> Alcotest.fail m)

let test_record_find_roundtrip () =
  with_fresh_campaign ~flush_every:1 (fun path c ->
      let job =
        { Mc.Campaign.label = "t"; engine = "scalar"; seed = 1; trials = 100;
          chunk = 10 }
      in
      Mc.Campaign.record c ~job ~chunk:3 ~failures:7;
      Mc.Campaign.record c ~job ~chunk:0 ~failures:0;
      check "find recorded" true (Mc.Campaign.find c ~job ~chunk:3 = Some 7);
      check "find missing" true (Mc.Campaign.find c ~job ~chunk:4 = None);
      check_int "completed" 2 (Mc.Campaign.completed c ~job);
      (* reload from disk: flush_every:1 persisted both records *)
      match Mc.Campaign.load path with
      | Ok c' ->
        check "reloaded chunk 3" true
          (Mc.Campaign.find c' ~job ~chunk:3 = Some 7);
        check "reloaded chunk 0" true
          (Mc.Campaign.find c' ~job ~chunk:0 = Some 0)
      | Error m -> Alcotest.fail m)

let test_serialization_stable () =
  with_fresh_campaign (fun _ c ->
      let job =
        { Mc.Campaign.label = ""; engine = "batch"; seed = 5; trials = 640;
          chunk = 64 }
      in
      List.iter
        (fun (i, n) -> Mc.Campaign.record c ~job ~chunk:i ~failures:n)
        [ (7, 1); (2, 30); (9, 64) ];
      let a = Obs.Json.to_string (Mc.Campaign.to_json c) in
      (* same records in a different order must render identically *)
      with_fresh_campaign (fun _ c2 ->
          List.iter
            (fun (i, n) -> Mc.Campaign.record c2 ~job ~chunk:i ~failures:n)
            [ (9, 64); (7, 1); (2, 30) ];
          check "sorted render is order-independent" true
            (a = Obs.Json.to_string (Mc.Campaign.to_json c2))))

(* --- corrupt / truncated checkpoints rejected ------------------------ *)

let expect_load_error what path =
  match Mc.Campaign.load path with
  | Error msg ->
    check (what ^ " yields a diagnostic") true (String.length msg > 0)
  | Ok _ -> Alcotest.fail (what ^ " must be rejected")

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let test_load_missing () = expect_load_error "missing file" (fresh_path ())

let test_load_truncated () =
  (* build a real checkpoint, then truncate it mid-document *)
  with_fresh_campaign ~flush_every:1 (fun path c ->
      let job =
        { Mc.Campaign.label = ""; engine = "scalar"; seed = 3; trials = 100;
          chunk = 10 }
      in
      for i = 0 to 9 do
        Mc.Campaign.record c ~job ~chunk:i ~failures:i
      done;
      let full = In_channel.with_open_bin path In_channel.input_all in
      write_string path (String.sub full 0 (String.length full / 2));
      expect_load_error "truncated checkpoint" path)

let test_load_garbage () =
  let path = tmp_file () in
  write_string path "{\"schema\": \"ftqc-checkpoint/1\", \"jobs\": []}garbage";
  expect_load_error "trailing garbage" path;
  write_string path "not json at all";
  expect_load_error "non-JSON" path;
  Sys.remove path

let test_load_wrong_schema () =
  let path = tmp_file () in
  write_string path "{\"schema\": \"ftqc-manifest/1\", \"jobs\": []}";
  expect_load_error "manifest schema in checkpoint slot" path;
  write_string path "{\"schema\": \"ftqc-checkpoint/99\", \"jobs\": []}";
  expect_load_error "future checkpoint version" path;
  Sys.remove path

let test_validate_ranges () =
  let bad body what =
    match Obs.Json.of_string body with
    | Error _ -> Alcotest.fail ("test document must parse: " ^ what)
    | Ok j -> (
      match Mc.Campaign.validate j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (what ^ " must be invalid"))
  in
  let doc chunks =
    Printf.sprintf
      "{\"schema\": \"ftqc-checkpoint/1\", \"jobs\": [{\"engine\": \
       \"scalar\", \"seed\": 1, \"trials\": 100, \"chunk\": 10, \"chunks\": \
       %s}]}"
      chunks
  in
  bad (doc "[[10, 0]]") "chunk index beyond nchunks";
  bad (doc "[[-1, 0]]") "negative chunk index";
  bad (doc "[[0, 11]]") "count above chunk trials";
  bad (doc "[[0, -1]]") "negative count";
  bad (doc "[[0, 1], [0, 1]]") "duplicate chunk index";
  (* and a good one for contrast *)
  match Obs.Json.of_string (doc "[[0, 10], [9, 3]]") with
  | Ok j -> check_int "valid doc has 1 job" 1
      (Result.get_ok (Mc.Campaign.validate j))
  | Error m -> Alcotest.fail m

(* --- interrupt + resume is bit-identical ----------------------------- *)

(* Stop the campaign at a deterministic chunk via a chaos hook, then
   resume with a second runner call; the total must equal the
   uninterrupted reference — for every engine x domain-count combo
   the acceptance criteria name. *)
let interrupt_resume_scalar ~domains () =
  let expected = Lazy.force reference in
  with_fresh_campaign ~flush_every:1 (fun path c ->
      Mc.Campaign.reset_stop ();
      (match
         Mc.Runner.failures ~domains ~chunk:mc_chunk ~campaign:c ~trials ~seed
           ~chaos:(Mc.Chaos.at_chunk ~chunk:2 Mc.Campaign.request_stop)
           (Mc.Runner.scalar trial)
       with
      | _ ->
        (* fast runs can finish before the flag lands; then there is
           nothing to resume, which is fine *)
        ()
      | exception Mc.Campaign.Interrupted { checkpoint; _ } ->
        check "interrupt carries resume token" true (checkpoint = Some path));
      Mc.Campaign.reset_stop ();
      (* resume from the file a fresh process would load *)
      let c' = Result.get_ok (Mc.Campaign.load path) in
      let resumed =
        Mc.Runner.failures ~domains ~chunk:mc_chunk ~campaign:c' ~trials ~seed
          (Mc.Runner.scalar trial)
      in
      check_int
        (Printf.sprintf "kill+resume = reference (scalar, domains %d)" domains)
        expected resumed)

let interrupt_resume_batch ?tile_width ~domains () =
  let expected = Lazy.force batch_reference in
  with_fresh_campaign ~flush_every:1 (fun path c ->
      Mc.Campaign.reset_stop ();
      let engine = Mc.Engine.batch ?tile_width () in
      (match
         Mc.Runner.failures ~domains ~engine ~campaign:c ~trials:batch_trials
           ~seed
           ~chaos:(Mc.Chaos.at_chunk ~chunk:3 Mc.Campaign.request_stop)
           batch_model
       with
      | _ -> ()
      | exception Mc.Campaign.Interrupted _ -> ());
      Mc.Campaign.reset_stop ();
      let c' = Result.get_ok (Mc.Campaign.load path) in
      let resumed =
        Mc.Runner.failures ~domains ~engine ~campaign:c' ~trials:batch_trials
          ~seed batch_model
      in
      check_int
        (Printf.sprintf "kill+resume = reference (batch, domains %d)" domains)
        expected resumed)

(* wider tiles are a pure scheduling change: lane j of tile c runs the
   stream of width-64 chunk c·lanes+j, so the count cannot move — at
   any width, any domain count, including ragged tails (1000 trials is
   not a multiple of 256 or 512) *)
let test_tile_width_invariant () =
  let expected = Lazy.force batch_reference in
  List.iter
    (fun tile_width ->
      let n =
        Mc.Runner.failures ~domains:1 ~engine:(Mc.Engine.batch ~tile_width ())
          ~trials:batch_trials ~seed batch_model
      in
      check_int
        (Printf.sprintf "tile width %d = width 64 count" tile_width)
        expected n)
    [ 128; 256; 512 ];
  let n =
    Mc.Runner.failures ~domains:4 ~engine:(Mc.Engine.batch ~tile_width:256 ())
      ~trials:batch_trials ~seed batch_model
  in
  check_int "tile width 256 across 4 domains" expected n

(* completing a checkpointed run and replaying it entirely from cache
   must also agree (no trial executes the second time) *)
let test_full_replay () =
  let expected = Lazy.force reference in
  with_fresh_campaign ~flush_every:1 (fun _ c ->
      let first =
        Mc.Runner.failures ~domains:2 ~chunk:mc_chunk ~campaign:c ~trials ~seed
          (Mc.Runner.scalar trial)
      in
      check_int "checkpointed run = reference" expected first;
      let executed = ref 0 in
      let replay =
        Mc.Runner.failures ~domains:1 ~chunk:mc_chunk ~campaign:c ~trials ~seed
          (Mc.Runner.scalar (fun rng i ->
               incr executed;
               trial rng i))
      in
      check_int "full replay = reference" expected replay;
      check_int "replay executes no trials" 0 !executed)

(* --- SIGKILL mid-write: the file on disk always parses --------------- *)

(* [Unix.fork] is illegal once domains exist (and earlier tests spawn
   them), so the child is this very test binary re-executed with
   [child_env] set: the top-level hook below runs the checkpointing
   workload and exits before Alcotest ever starts.
   [Unix.create_process] is posix_spawn-based and domain-safe. *)
let child_env = "FTQC_CAMPAIGN_CHILD"
let child_trials = 2_000_000
let child_chunk = 2000

let child_workload path =
  match Mc.Campaign.create ~flush_every:1 path with
  | Error _ -> exit 3
  | Ok c ->
    ignore
      (Mc.Runner.failures ~domains:1 ~chunk:child_chunk ~campaign:c
         ~trials:child_trials ~seed (Mc.Runner.scalar trial));
    exit 0

let () =
  match Sys.getenv_opt child_env with
  | Some path when path <> "" -> child_workload path
  | _ -> ()

let test_sigkill_checkpoint_always_parseable () =
  let path = fresh_path () in
  Unix.putenv child_env path;
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.putenv child_env "")
      (fun () ->
        Unix.create_process Sys.executable_name
          [| Sys.executable_name |]
          Unix.stdin Unix.stdout Unix.stderr)
  in
  (* let some flushes happen, then SIGKILL — no graceful handler runs
     in the child *)
  Unix.sleepf 0.3;
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* whatever instant the kill landed, the atomic write discipline
         means the file is a complete document *)
      (match Obs.Json.read_file path with
      | Ok j ->
        check "killed checkpoint validates" true
          (Result.is_ok (Mc.Campaign.validate j))
      | Error m -> Alcotest.fail ("checkpoint corrupt after SIGKILL: " ^ m));
      (* and resuming it reproduces the reference *)
      let c = Result.get_ok (Mc.Campaign.load path) in
      let resumed =
        Mc.Runner.failures ~domains:2 ~chunk:child_chunk ~campaign:c
          ~trials:child_trials ~seed (Mc.Runner.scalar trial)
      in
      let expected =
        Mc.Runner.failures ~domains:1 ~chunk:child_chunk ~trials:child_trials
          ~seed (Mc.Runner.scalar trial)
      in
      check_int "resume after SIGKILL = reference" expected resumed)

(* --- chaos: worker death, stall, trial exception --------------------- *)

let test_chaos_kill_retried () =
  let obs = Obs.create () in
  let n =
    Mc.Runner.failures ~domains:2 ~chunk:mc_chunk ~obs ~trials ~seed
      ~backoff:0.0
      ~chaos:(Mc.Chaos.kill_chunk ~chunk:1 ())
      (Mc.Runner.scalar trial)
  in
  check_int "count survives a killed worker" (Lazy.force reference) n;
  check "retry counted" true (Obs.counter obs "mc.chunk_retries" >= 1)

let test_chaos_trial_exception_retried () =
  let n =
    Mc.Runner.failures ~domains:1 ~chunk:mc_chunk ~trials ~seed ~backoff:0.0
      ~chaos:(Mc.Chaos.fail_trial ~chunk:2 ~trial:((2 * mc_chunk) + 1) ())
      (Mc.Runner.scalar trial)
  in
  check_int "count survives a throwing trial" (Lazy.force reference) n

let test_chaos_stall_times_out_and_retries () =
  let obs = Obs.create () in
  let n =
    Mc.Runner.failures ~domains:2 ~chunk:mc_chunk ~obs ~trials ~seed
      ~chunk_timeout:0.05 ~backoff:0.0
      ~chaos:(Mc.Chaos.stall_chunk ~chunk:1 ~seconds:0.2 ())
      (Mc.Runner.scalar trial)
  in
  check_int "count survives a stalled chunk" (Lazy.force reference) n;
  check "timeout counted" true (Obs.counter obs "mc.chunk_timeouts" >= 1)

let test_chaos_permanent_failure_is_clean () =
  with_fresh_campaign ~flush_every:1 (fun path c ->
      (match
         Mc.Runner.failures ~domains:1 ~chunk:mc_chunk ~campaign:c ~trials
           ~seed ~retries:1 ~backoff:0.0
           ~chaos:(Mc.Chaos.kill_chunk ~once:false ~chunk:2 ())
           (Mc.Runner.scalar trial)
       with
      | _ -> Alcotest.fail "permanently failing chunk must raise"
      | exception Mc.Runner.Chunk_failed { chunk; attempts; _ } ->
        check_int "failing chunk identified" 2 chunk;
        check_int "both attempts used" 2 attempts);
      (* chunks completed before the failure were flushed: the file
         is a valid checkpoint with progress in it *)
      match Mc.Campaign.load path with
      | Ok c' ->
        let job =
          { Mc.Campaign.label = ""; engine = "scalar"; seed; trials;
            chunk = mc_chunk }
        in
        check "progress survived the failure" true
          (Mc.Campaign.completed c' ~job > 0)
      | Error m -> Alcotest.fail m)

let test_chaos_batch_kill_retried () =
  let n =
    Mc.Runner.failures ~domains:2 ~engine:(Mc.Engine.batch ())
      ~trials:batch_trials ~seed ~backoff:0.0
      ~chaos:(Mc.Chaos.kill_chunk ~chunk:1 ())
      batch_model
  in
  check_int "batch count survives a killed worker" (Lazy.force batch_reference)
    n

(* --- early stopping under resume ------------------------------------- *)

let es_trial rng _ = Random.State.float rng 1.0 < 0.2

let test_early_stop_resume_invariant () =
  let run ?campaign () =
    Mc.Runner.estimate ?campaign ~domains:1 ~chunk:100 ~trials:20000
      ~target_half_width:0.02 ~min_trials:500 ~seed:7
      (Mc.Runner.scalar es_trial)
  in
  let expected = run () in
  with_fresh_campaign ~flush_every:1 (fun path c ->
      Mc.Campaign.reset_stop ();
      (match
         Mc.Runner.estimate ~campaign:c ~domains:1 ~chunk:100 ~trials:20000
           ~target_half_width:0.02 ~min_trials:500 ~seed:7
           ~chaos:(Mc.Chaos.at_chunk ~chunk:3 Mc.Campaign.request_stop)
           (Mc.Runner.scalar es_trial)
       with
      | _ -> ()
      | exception Mc.Campaign.Interrupted _ -> ());
      Mc.Campaign.reset_stop ();
      let c' = Result.get_ok (Mc.Campaign.load path) in
      let resumed = run ~campaign:c' () in
      check "early-stopped resume = uninterrupted estimate" true
        (resumed = expected))

(* the same estimate through the batch engine honors the store too *)
let test_estimate_batched_checkpointed () =
  let run ?campaign () =
    Mc.Runner.estimate ?campaign ~domains:1 ~engine:(Mc.Engine.batch ())
      ~trials:batch_trials ~seed batch_model
  in
  let expected = run () in
  with_fresh_campaign ~flush_every:1 (fun _ c ->
      let first = run ~campaign:c () in
      check "checkpointed batched estimate = reference" true (first = expected);
      let replay = run ~campaign:c () in
      check "replayed batched estimate = reference" true (replay = expected))

let suites =
  [ ( "campaign-store",
      [ Alcotest.test_case "create refuses clobber" `Quick
          test_create_refuses_clobber;
        Alcotest.test_case "resume token from t=0" `Quick
          test_create_writes_resume_token_immediately;
        Alcotest.test_case "record/find round-trip" `Quick
          test_record_find_roundtrip;
        Alcotest.test_case "stable serialization" `Quick
          test_serialization_stable;
        Alcotest.test_case "missing file rejected" `Quick test_load_missing;
        Alcotest.test_case "truncated file rejected" `Quick
          test_load_truncated;
        Alcotest.test_case "garbage rejected" `Quick test_load_garbage;
        Alcotest.test_case "wrong schema rejected" `Quick
          test_load_wrong_schema;
        Alcotest.test_case "range validation" `Quick test_validate_ranges ] );
    ( "campaign-resume",
      [ Alcotest.test_case "scalar interrupt+resume, domains 1" `Quick
          (interrupt_resume_scalar ~domains:1);
        Alcotest.test_case "scalar interrupt+resume, domains 4" `Quick
          (interrupt_resume_scalar ~domains:4);
        Alcotest.test_case "batch interrupt+resume, domains 1" `Quick
          (interrupt_resume_batch ~domains:1);
        Alcotest.test_case "batch interrupt+resume, domains 4" `Quick
          (interrupt_resume_batch ~domains:4);
        Alcotest.test_case "batch interrupt+resume, tile width 256" `Quick
          (interrupt_resume_batch ~tile_width:256 ~domains:2);
        Alcotest.test_case "tile width invariance" `Quick
          test_tile_width_invariant;
        Alcotest.test_case "full replay executes nothing" `Quick
          test_full_replay;
        Alcotest.test_case "SIGKILL leaves parseable checkpoint" `Quick
          test_sigkill_checkpoint_always_parseable;
        Alcotest.test_case "early-stop resume invariant" `Quick
          test_early_stop_resume_invariant;
        Alcotest.test_case "batched estimate checkpointed" `Quick
          test_estimate_batched_checkpointed ] );
    ( "campaign-chaos",
      [ Alcotest.test_case "killed worker retried" `Quick
          test_chaos_kill_retried;
        Alcotest.test_case "throwing trial retried" `Quick
          test_chaos_trial_exception_retried;
        Alcotest.test_case "stalled chunk times out + retries" `Quick
          test_chaos_stall_times_out_and_retries;
        Alcotest.test_case "permanent failure is clean" `Quick
          test_chaos_permanent_failure_is_clean;
        Alcotest.test_case "batch killed worker retried" `Quick
          test_chaos_batch_kill_retried ] ) ]
