open Ftqc
module Exact = Codes.Exact

let check = Alcotest.(check bool)

let steane_decoder = Codes.Steane.css_decoder ()

let test_zero_noise () =
  check "no noise, no failure" true
    (Exact.failure_probability Codes.Steane.code steane_decoder ~eps:0.0 = 0.0)

let test_low_order_coefficients () =
  (* distance 3: no weight-0 or weight-1 pattern fails *)
  let cx, cy, cz = Exact.failure_polynomial Codes.Steane.code steane_decoder in
  check "c(0) = 0" true (cx.(0) = 0.0 && cy.(0) = 0.0 && cz.(0) = 0.0);
  check "c(1) = 0" true (cx.(1) = 0.0 && cy.(1) = 0.0 && cz.(1) = 0.0);
  check "some weight-2 failures" true (cx.(2) +. cy.(2) +. cz.(2) > 0.0);
  (* X/Z symmetry of the self-dual code and CSS decoder *)
  check "X/Z symmetric" true (Array.for_all2 ( = ) cx cz)

let test_quadratic_leading_order () =
  (* at small eps, failure ≈ C eps²: ratio stable over a decade *)
  let f eps =
    Exact.failure_probability Codes.Steane.code steane_decoder ~eps
  in
  let r1 = f 1e-4 /. 1e-8 in
  let r2 = f 1e-5 /. 1e-10 in
  check "quadratic leading order" true (Float.abs (r1 /. r2 -. 1.0) < 0.05)

let test_matches_monte_carlo () =
  let rng = Random.State.make [| 107 |] in
  let eps = 0.02 in
  let exact =
    Exact.failure_probability Codes.Steane.code steane_decoder ~eps
  in
  let mc =
    Codes.Pauli_frame.code_memory_failure Codes.Steane.code steane_decoder
      ~eps ~rounds:1 ~trials:60000 rng
  in
  (* 5 sigma agreement *)
  check "exact = MC within 5 sigma" true
    (Float.abs (mc.rate -. exact) < (5.0 *. mc.stderr) +. 1e-6)

let test_basis_metric_smaller () =
  let eps = 0.03 in
  let any = Exact.failure_probability ~metric:`Any Codes.Steane.code steane_decoder ~eps in
  let basis =
    Exact.failure_probability ~metric:`Basis_avg Codes.Steane.code
      steane_decoder ~eps
  in
  check "basis-averaged <= any" true (basis <= any);
  check "basis-averaged >= 2/3 any (Y counts double)" true
    (basis >= (0.5 *. any) -. 1e-12)

let test_pseudothresholds () =
  (match Exact.pseudothreshold ~metric:`Any Codes.Steane.code steane_decoder with
  | Some t -> check "steane eps* ~ 0.081" true (t > 0.07 && t < 0.09)
  | None -> Alcotest.fail "no steane threshold");
  match
    Exact.pseudothreshold ~metric:`Any Codes.Five_qubit.code
      (Codes.Stabilizer_code.default_decoder Codes.Five_qubit.code)
  with
  | Some t -> check "five-qubit eps* ~ 0.14" true (t > 0.12 && t < 0.15)
  | None -> Alcotest.fail "no 5q threshold"

let test_rejects_large_codes () =
  try
    ignore
      (Exact.failure_polynomial Codes.More_codes.reed_muller15
         (Codes.Stabilizer_code.default_decoder Codes.More_codes.reed_muller15));
    Alcotest.fail "n = 15 accepted"
  with Invalid_argument _ -> ()

let suites =
  [ ( "codes.exact",
      [ Alcotest.test_case "zero noise" `Quick test_zero_noise;
        Alcotest.test_case "low-order coefficients" `Quick
          test_low_order_coefficients;
        Alcotest.test_case "quadratic leading order" `Quick
          test_quadratic_leading_order;
        Alcotest.test_case "matches Monte Carlo" `Slow test_matches_monte_carlo;
        Alcotest.test_case "metrics ordered" `Quick test_basis_metric_smaller;
        Alcotest.test_case "pseudothresholds" `Quick test_pseudothresholds;
        Alcotest.test_case "size guard" `Quick test_rejects_large_codes ] ) ]
