(* The bit-sliced batch frame engine.  The load-bearing property is
   the batch-vs-scalar contract: [`Batch] and [`Scalar] engines issue
   the identical Frame.Sampler call sequence per 64-shot chunk, so
   their failure counts must be bit-identical — exactly, at any domain
   count — while [`Scalar] runs every shot through the pre-existing
   per-shot decoder pipeline.  Everything else (word sampling, plane
   propagation, transposition) is checked directly. *)

open Ftqc

let check msg expected actual = Alcotest.(check bool) msg expected actual

(* --- Frame.Plane: propagation and transposition ----------------------- *)

let test_plane_propagation () =
  let pl = Frame.Plane.create 3 in
  (* shot 0: X on qubit 0; shot 1: Z on qubit 1; shot 5: Y on qubit 0 *)
  Frame.Plane.xor_x pl 0 0b100001L;
  Frame.Plane.xor_z pl 0 0b100000L;
  Frame.Plane.xor_z pl 1 0b000010L;
  (* CNOT 0->1 copies X forward and Z backward *)
  Frame.Plane.cnot pl 0 1;
  check "cnot: X propagates to target" true
    (Frame.Plane.get_x pl 1 = 0b100001L);
  check "cnot: Z propagates to control" true
    (Frame.Plane.get_z pl 0 = 0b100010L);
  (* H swaps the planes *)
  Frame.Plane.h pl 0;
  check "h swaps x and z" true
    (Frame.Plane.get_x pl 0 = 0b100010L
    && Frame.Plane.get_z pl 0 = 0b100001L);
  (* S: X -> Y, so z ^= x *)
  let x_before = Frame.Plane.get_x pl 2 in
  Frame.Plane.xor_x pl 2 1L;
  Frame.Plane.s_gate pl 2;
  check "s: z ^= x" true
    (Frame.Plane.get_z pl 2 = Int64.logxor x_before 1L)

let test_plane_matches_pauli_conjugation () =
  (* random frames pushed through random CNOT/H/S sequences agree with
     Tableau.conj_gate on the extracted per-shot Paulis *)
  let n = 5 in
  let rng = Random.State.make [| 77 |] in
  let pl = Frame.Plane.create n in
  for q = 0 to n - 1 do
    Frame.Plane.xor_x pl q (Random.State.bits64 rng);
    Frame.Plane.xor_z pl q (Random.State.bits64 rng)
  done;
  let shots = Array.init 8 (fun k -> Frame.Plane.extract_shot pl k) in
  let gates =
    List.init 30 (fun _ ->
        match Random.State.int rng 3 with
        | 0 ->
          let a = Random.State.int rng n in
          let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
          Circuit.Cnot (a, b)
        | 1 -> Circuit.H (Random.State.int rng n)
        | _ -> Circuit.S (Random.State.int rng n))
  in
  List.iter
    (fun g ->
      match g with
      | Circuit.Cnot (a, b) -> Frame.Plane.cnot pl a b
      | Circuit.H q -> Frame.Plane.h pl q
      | Circuit.S q -> Frame.Plane.s_gate pl q
      | _ -> assert false)
    gates;
  let reference =
    Array.map
      (fun p -> List.fold_left (fun p g -> Codes.Conjugate.gate g p) p gates)
      shots
  in
  let ok = ref true in
  Array.iteri
    (fun k r ->
      let e = Frame.Plane.extract_shot pl k in
      for q = 0 to n - 1 do
        if Pauli.letter e q <> Pauli.letter r q then ok := false
      done)
    reference;
  check "frame propagation = phase-free Pauli conjugation" true !ok

let test_transpose_round_trip () =
  let rng = Random.State.make [| 3 |] in
  let words = Array.init 17 (fun _ -> Random.State.bits64 rng) in
  let reloaded = Array.make 17 0L in
  for k = 0 to 63 do
    Frame.Plane.load_shot reloaded k (Frame.Plane.shot_vec words k)
  done;
  check "shot_vec / load_shot round-trips the word array" true
    (words = reloaded)

let test_transpose64_orientation () =
  (* single bit (r, c) lands at (c, r), and the transpose is an
     involution on random blocks *)
  let block = Array.make 64 0L in
  List.iter
    (fun (r, c) ->
      Array.fill block 0 64 0L;
      block.(r) <- Int64.shift_left 1L c;
      Frame.Plane.transpose64 block 0;
      let ok = ref true in
      for i = 0 to 63 do
        let expect = if i = c then Int64.shift_left 1L r else 0L in
        if block.(i) <> expect then ok := false
      done;
      check (Printf.sprintf "bit (%d,%d) transposes to (%d,%d)" r c c r)
        true !ok)
    [ (0, 0); (0, 63); (63, 0); (17, 42); (63, 63) ];
  let rng = Random.State.make [| 29 |] in
  (* offset 64 exercises the [off] parameter *)
  let a = Array.init 128 (fun _ -> Random.State.bits64 rng) in
  let saved = Array.copy a in
  Frame.Plane.transpose64 a 64;
  Frame.Plane.transpose64 a 64;
  check "transpose64 is an involution (at offset)" true (a = saved)

let test_transpose_rows_matches_row_shot_vec () =
  (* the tile-at-a-time block transpose must agree with the per-shot
     strided extraction for every lane count and ragged nrows *)
  let rng = Random.State.make [| 41 |] in
  List.iter
    (fun lanes ->
      List.iter
        (fun nrows ->
          let src =
            Array.init (((nrows + 7) * lanes) + 3) (fun _ ->
                Random.State.bits64 rng)
          in
          let pos = 2 in
          let dst = Array.make ((nrows + 63) / 64 * 64) 0L in
          let ok = ref true in
          for lane = 0 to lanes - 1 do
            Frame.Plane.transpose_rows ~src ~lanes ~lane ~pos ~nrows dst;
            for k = 0 to 63 do
              let via_blocks =
                Frame.Plane.shot_of_transposed dst ~len:nrows k
              in
              let via_probe =
                Frame.Plane.row_shot_vec src ~lanes ~lane ~pos ~len:nrows k
              in
              if not (Gf2.Bitvec.equal via_blocks via_probe) then ok := false
            done
          done;
          check
            (Printf.sprintf "transpose_rows = row_shot_vec (lanes %d, nrows %d)"
               lanes nrows)
            true !ok)
        [ 1; 63; 64; 130 ])
    [ 1; 4; 8 ]

(* --- Frame.Sampler: word-sampled Bernoulli ----------------------------- *)

let test_bernoulli_distribution () =
  (* aggregate bit rate over many words ≈ p, and per-bit-position
     rates are individually plausible (each position is Binomial) *)
  List.iter
    (fun p ->
      let words = 4000 in
      let s = Frame.Sampler.create (Mc.Rng.root 505) in
      let total = ref 0 in
      let per_bit = Array.make 64 0 in
      for _ = 1 to words do
        let w = Frame.Sampler.bernoulli s p in
        for k = 0 to 63 do
          if Frame.Plane.bit w k then begin
            incr total;
            per_bit.(k) <- per_bit.(k) + 1
          end
        done
      done;
      let n = float_of_int (64 * words) in
      let rate = float_of_int !total /. n in
      let sigma = sqrt (p *. (1.0 -. p) /. n) in
      check
        (Printf.sprintf "aggregate rate for p=%g within 5 sigma" p)
        true
        (Float.abs (rate -. p) < (5.0 *. sigma) +. 1e-9);
      (* crude chi-square over bit positions: sum of squared
         standardized deviations should be ~64, far below 2x *)
      let expect = p *. float_of_int words in
      let var = expect *. (1.0 -. p) in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expect in
            acc +. (d *. d /. var))
          0.0 per_bit
      in
      check
        (Printf.sprintf "per-bit chi-square for p=%g plausible" p)
        true
        (chi2 < 128.0))
    [ 0.003; 0.05; 0.3; 0.5 ]

let test_bernoulli_draw_count_depends_only_on_p () =
  (* the contract behind batch/scalar equality: the number of uniform
     words consumed is a function of p alone, so call sequences align *)
  let consumed p seed =
    let s = Frame.Sampler.create (Mc.Rng.root seed) in
    ignore (Frame.Sampler.bernoulli s p);
    (* position is not exposed; infer by checking the next uniform
       word equals the draw at the inferred position *)
    let next = Frame.Sampler.uniform s in
    let rec find pos =
      if pos > Frame.Sampler.digits + 1 then -1
      else if Mc.Rng.draw (Mc.Rng.root seed) pos = next then pos
      else find (pos + 1)
    in
    find 0
  in
  List.iter
    (fun p ->
      let a = consumed p 1 and b = consumed p 999 in
      check
        (Printf.sprintf "draw count for p=%g seed-independent" p)
        true
        (a >= 0 && a = b))
    [ 0.003; 0.05; 0.3; 0.9 ]

(* --- batch vs scalar: bit-identical failure counts --------------------- *)

let steane_counts ?(tile_width = 64) ~level ~domains ~engine () =
  (Codes.Pauli_frame.memory_failure_batch ~domains ~engine ~tile_width ~level
     ~eps:0.06 ~rounds:2 ~trials:500 ~seed:31 ())
    .failures

let test_steane_batch_equals_scalar () =
  List.iter
    (fun level ->
      let reference = steane_counts ~level ~domains:1 ~engine:`Scalar () in
      check
        (Printf.sprintf "level %d: some failures observed" level)
        true (reference > 0);
      List.iter
        (fun domains ->
          check
            (Printf.sprintf "level %d batch = scalar (domains %d)" level
               domains)
            true
            (steane_counts ~level ~domains ~engine:`Batch () = reference))
        [ 1; 4 ])
    [ 1; 2 ]

let test_steane_batch_plausible_vs_legacy () =
  (* the batch engine samples noise differently from the legacy _mc
     path, so rates (not counts) must agree statistically *)
  let trials = 4000 in
  let batch =
    Codes.Pauli_frame.memory_failure_batch ~domains:1 ~level:1 ~eps:0.08
      ~rounds:1 ~trials ~seed:5 ()
  in
  let legacy =
    Codes.Pauli_frame.memory_failure_mc ~domains:1 ~level:1 ~eps:0.08
      ~rounds:1 ~trials ~seed:5 ()
  in
  let sigma = legacy.stderr +. batch.stderr in
  check "batch rate within 5 sigma of legacy rate" true
    (Float.abs (batch.rate -. legacy.rate) < 5.0 *. sigma)

let toric_counts ?(tile_width = 64) ~l ~domains ~engine () =
  (Toric.Memory.run_batch ~domains ~engine ~tile_width ~l ~p:0.08 ~trials:500
     ~seed:77 ())
    .Toric.Memory.failures

let test_toric_batch_equals_scalar () =
  List.iter
    (fun l ->
      let reference = toric_counts ~l ~domains:1 ~engine:`Scalar () in
      List.iter
        (fun domains ->
          check
            (Printf.sprintf "toric l=%d batch = scalar (domains %d)" l domains)
            true
            (toric_counts ~l ~domains ~engine:`Batch () = reference))
        [ 1; 4 ])
    [ 3; 5 ]

let noisy_toric_counts ?(tile_width = 64) ~domains ~engine () =
  (Toric.Noisy_memory.run_batch ~domains ~engine ~tile_width ~l:3 ~rounds:3
     ~p:0.03 ~q:0.03 ~trials:300 ~seed:13 ())
    .Toric.Noisy_memory.failures

let test_noisy_toric_batch_equals_scalar () =
  let reference = noisy_toric_counts ~domains:1 ~engine:`Scalar () in
  check "noisy toric: some failures observed" true (reference > 0);
  List.iter
    (fun domains ->
      check
        (Printf.sprintf "noisy toric batch = scalar (domains %d)" domains)
        true
        (noisy_toric_counts ~domains ~engine:`Batch () = reference))
    [ 1; 4 ]

(* --- multi-word tiles: bit-identical counts at any width --------------- *)

let tile_widths = [ 64; 256; 512 ]

let test_tile_width_bit_identity () =
  (* every kernel, every width, every domain count: exactly the
     scalar-engine counts.  Lane j of a width-64k tile runs the same
     64 shots on the same Rng.split key as width-64 chunk
     [c * k + j], so this holds bit-for-bit, not statistically. *)
  List.iter
    (fun level ->
      let reference = steane_counts ~level ~domains:1 ~engine:`Scalar () in
      List.iter
        (fun tile_width ->
          List.iter
            (fun domains ->
              check
                (Printf.sprintf "steane L%d width %d (domains %d) = scalar"
                   level tile_width domains)
                true
                (steane_counts ~tile_width ~level ~domains ~engine:`Batch ()
                = reference))
            [ 1; 4 ])
        tile_widths)
    [ 1; 2 ];
  List.iter
    (fun l ->
      let reference = toric_counts ~l ~domains:1 ~engine:`Scalar () in
      List.iter
        (fun tile_width ->
          List.iter
            (fun domains ->
              check
                (Printf.sprintf "toric l=%d width %d (domains %d) = scalar" l
                   tile_width domains)
                true
                (toric_counts ~tile_width ~l ~domains ~engine:`Batch ()
                = reference))
            [ 1; 4 ])
        tile_widths)
    [ 3; 5 ];
  let reference = noisy_toric_counts ~domains:1 ~engine:`Scalar () in
  List.iter
    (fun tile_width ->
      List.iter
        (fun domains ->
          check
            (Printf.sprintf "noisy toric width %d (domains %d) = scalar"
               tile_width domains)
            true
            (noisy_toric_counts ~tile_width ~domains ~engine:`Batch ()
            = reference))
        [ 1; 4 ])
    tile_widths

let test_tile_width_ragged_tail () =
  (* trial counts that are not multiples of the tile width: the live
     mask must kill dead lanes and dead bits inside the last tile *)
  let counts ~tile_width ~trials =
    (Codes.Pauli_frame.memory_failure_batch ~domains:1 ~tile_width ~level:1
       ~eps:0.06 ~rounds:1 ~trials ~seed:3 ())
      .failures
  in
  List.iter
    (fun trials ->
      let reference = counts ~tile_width:64 ~trials in
      List.iter
        (fun tile_width ->
          check
            (Printf.sprintf "ragged %d trials at width %d = width 64" trials
               tile_width)
            true
            (counts ~tile_width ~trials = reference))
        [ 256; 512 ])
    (* 100: inside one lane; 300: kills lanes 5.. of a 512 tile plus a
       partial word; 500: one full 256 tile + ragged second *)
    [ 100; 300; 500 ]

let test_batch_trials_not_multiple_of_64 () =
  (* partial last word: the live mask must drop the dead bits *)
  let counts trials =
    (Codes.Pauli_frame.memory_failure_batch ~domains:1 ~level:1 ~eps:0.06
       ~rounds:1 ~trials ~seed:3 ())
      .failures
  in
  let c100 = counts 100 and c164 = counts 164 in
  check "counts monotone in trials (same seed prefix)" true (c100 <= c164);
  let scalar =
    (Codes.Pauli_frame.memory_failure_batch ~domains:1 ~engine:`Scalar
       ~level:1 ~eps:0.06 ~rounds:1 ~trials:100 ~seed:3 ())
      .failures
  in
  check "ragged trials: batch = scalar" true (c100 = scalar)

(* --- Mc.Rng stream type ------------------------------------------------ *)

let test_rng_stream_reproducible () =
  let a = Mc.Rng.of_seed 9 and b = Mc.Rng.of_seed 9 in
  let same = ref true in
  for _ = 1 to 50 do
    if Mc.Rng.bits64 a <> Mc.Rng.bits64 b then same := false
  done;
  check "same seed, same stream" true !same

let test_rng_legacy_wrapper_shares_state () =
  let s = Random.State.make [| 4 |] and s' = Random.State.make [| 4 |] in
  let r = Mc.Rng.of_random_state s in
  let same = ref true in
  for _ = 1 to 50 do
    if Mc.Rng.bits64 r <> Random.State.bits64 s' then same := false
  done;
  check "legacy wrapper delegates draws bit-identically" true !same

let suites =
  [
    ( "frame",
      [
        Alcotest.test_case "plane propagation" `Quick test_plane_propagation;
        Alcotest.test_case "plane = Pauli conjugation" `Quick
          test_plane_matches_pauli_conjugation;
        Alcotest.test_case "transpose round-trip" `Quick
          test_transpose_round_trip;
        Alcotest.test_case "transpose64 orientation" `Quick
          test_transpose64_orientation;
        Alcotest.test_case "transpose_rows = row_shot_vec" `Quick
          test_transpose_rows_matches_row_shot_vec;
        Alcotest.test_case "bernoulli distribution" `Quick
          test_bernoulli_distribution;
        Alcotest.test_case "bernoulli draw count" `Quick
          test_bernoulli_draw_count_depends_only_on_p;
        Alcotest.test_case "steane batch = scalar" `Quick
          test_steane_batch_equals_scalar;
        Alcotest.test_case "steane batch vs legacy rate" `Quick
          test_steane_batch_plausible_vs_legacy;
        Alcotest.test_case "toric batch = scalar" `Quick
          test_toric_batch_equals_scalar;
        Alcotest.test_case "noisy toric batch = scalar" `Quick
          test_noisy_toric_batch_equals_scalar;
        Alcotest.test_case "ragged trial count" `Quick
          test_batch_trials_not_multiple_of_64;
        Alcotest.test_case "tile width bit-identity" `Quick
          test_tile_width_bit_identity;
        Alcotest.test_case "tile width ragged tail" `Quick
          test_tile_width_ragged_tail;
        Alcotest.test_case "rng stream reproducible" `Quick
          test_rng_stream_reproducible;
        Alcotest.test_case "rng legacy wrapper" `Quick
          test_rng_legacy_wrapper_shares_state;
      ] );
  ]
