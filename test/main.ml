(* Fleet workers are this same binary re-exec'd with the worker
   marker in the environment (the fleet tests spawn them): divert
   before Alcotest ever runs. *)
let () = Ftqc.Svc.Fleet.run_if_worker ()

let () =
  Alcotest.run "ftqc"
    (Test_gf2.suites @ Test_qmath.suites @ Test_group.suites
   @ Test_pauli.suites @ Test_circuit.suites @ Test_statevec.suites
   @ Test_tableau.suites @ Test_codes.suites @ Test_ft.suites
   @ Test_identities.suites @ Test_css_logical.suites
   @ Test_conjugate.suites @ Test_pauli_frame.suites @ Test_frame.suites @ Test_extensions.suites @ Test_golay.suites @ Test_weight_enumerator.suites
   @ Test_exact.suites
   @ Test_threshold.suites
   @ Test_toric.suites @ Test_noisy_toric.suites @ Test_anyon.suites
   @ Test_synthesis.suites @ Test_more_properties.suites @ Test_mc.suites
   @ Test_obs.suites @ Test_campaign.suites @ Test_inject.suites
   @ Test_subset.suites @ Test_csskit.suites @ Test_svc.suites
   @ Test_fleet.suites)
