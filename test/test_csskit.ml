open Ftqc
module Code = Codes.Stabilizer_code
module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* name, n, k, distance for every registered zoo member *)
let zoo_params =
  [ ("steane7", 7, 1, 3); ("golay23", 23, 1, 7); ("bch15", 15, 7, 3);
    ("bch31", 31, 21, 3) ]

(* [e] is handled exactly when decoding its syndrome leaves a residual
   in the stabilizer group. *)
let corrects t e = Code.correct (Csskit.decoder t) t.Csskit.code e = `Ok

(* all supports of weight [w] over [n] bits, as index lists *)
let rec supports n w start =
  if w = 0 then [ [] ]
  else if start >= n then []
  else
    List.map (fun s -> start :: s) (supports n (w - 1) (start + 1))
    @ supports n w (start + 1)

let bv_of_support n s =
  let v = Bitvec.create n in
  List.iter (fun i -> Bitvec.set v i true) s;
  v

(* --- registry -------------------------------------------------------- *)

let test_zoo_registry () =
  List.iter
    (fun (name, n, k, d) ->
      check ("mem " ^ name) true (Csskit.Zoo.mem name);
      check ("names has " ^ name) true
        (List.mem name (Csskit.Zoo.names ()));
      let t = Csskit.Zoo.get name in
      check_int (name ^ " n") n t.Csskit.n;
      check_int (name ^ " k") k t.Csskit.k;
      check_int (name ^ " distance") d t.Csskit.distance;
      check_int (name ^ " correctable") ((d - 1) / 2) t.Csskit.correctable;
      check (name ^ " exact decoder") true t.Csskit.exact;
      check_int (name ^ " code n") n t.Csskit.code.Code.n;
      check_int (name ^ " code k") k t.Csskit.code.Code.k)
    zoo_params;
  check "mem nosuch" false (Csskit.Zoo.mem "nosuch");
  check "find nosuch" true (Csskit.Zoo.find "nosuch" = None);
  check "get nosuch raises" true
    (match Csskit.Zoo.get "nosuch" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- hand-written anchors -------------------------------------------- *)

(* The acceptance bar: the pipeline-built Steane and Golay codes must
   reproduce the hand-written codes' checks, generators and syndrome
   tables bit for bit. *)
let test_steane_matches_hamming () =
  let t = Csskit.Zoo.get "steane7" in
  check "hx = Hamming H" true
    (Mat.equal t.Csskit.hx Codes.Hamming.parity_check);
  check "hz = Hamming H" true
    (Mat.equal t.Csskit.hz Codes.Hamming.parity_check);
  let ref_code = Codes.Css.steane_from_hamming () in
  check "generators identical" true
    (Array.for_all2 Pauli.equal t.Csskit.code.Code.generators
       ref_code.Code.generators);
  let expect =
    Codes.Css.side_table_entries ~checks:Codes.Hamming.parity_check ~n:7
      ~max_weight:1
  in
  let bit, phase = Csskit.side_tables t in
  check "bit-side syndrome table" true (bit = expect);
  check "phase-side syndrome table" true (phase = expect)

let test_golay_matches_handwritten () =
  let t = Csskit.Zoo.get "golay23" in
  check "hx = Golay H" true (Mat.equal t.Csskit.hx Codes.Golay.parity_check);
  check "hz = Golay H" true (Mat.equal t.Csskit.hz Codes.Golay.parity_check);
  check "generators identical" true
    (Array.for_all2 Pauli.equal t.Csskit.code.Code.generators
       Codes.Golay.code.Code.generators);
  let expect =
    Codes.Css.side_table_entries ~checks:Codes.Golay.parity_check ~n:23
      ~max_weight:3
  in
  let bit, phase = Csskit.side_tables t in
  check "bit-side syndrome table" true (bit = expect);
  check "phase-side syndrome table" true (phase = expect)

(* --- the correction property ----------------------------------------- *)

(* Every zoo member's decoder corrects every error of weight up to
   ⌊(d−1)/2⌋ per side: all single-qubit X/Y/Z, and all X-type, Z-type
   and Y-type errors on supports up to the correctable weight. *)
let test_decoder_corrects_within_t () =
  List.iter
    (fun (name, _, _, _) ->
      let t = Csskit.Zoo.get name in
      let n = t.Csskit.n in
      List.iter
        (fun (ln, l) ->
          for q = 0 to n - 1 do
            check (Printf.sprintf "%s corrects %s at %d" name ln q) true
              (corrects t (Pauli.single n q l))
          done)
        [ ("X", Pauli.X); ("Y", Pauli.Y); ("Z", Pauli.Z) ];
      for w = 2 to t.Csskit.correctable do
        List.iter
          (fun s ->
            let v = bv_of_support n s in
            let zero = Bitvec.create n in
            let lbl ty =
              Printf.sprintf "%s corrects weight-%d %s-type" name w ty
            in
            check (lbl "X") true
              (corrects t (Pauli.of_bits ~x:v ~z:zero ()));
            check (lbl "Z") true
              (corrects t (Pauli.of_bits ~x:zero ~z:v ()));
            check (lbl "Y") true (corrects t (Pauli.of_bits ~x:v ~z:v ())))
          (supports n w 0)
      done)
    zoo_params

let test_golay_mixed_support () =
  (* X and Z parts on disjoint supports: each classical side decodes
     independently, so weight 3 + 3 mixed errors are still handled *)
  let t = Csskit.Zoo.get "golay23" in
  let x = bv_of_support 23 [ 0; 5; 11 ] and z = bv_of_support 23 [ 2; 7; 19 ] in
  check "disjoint X/Z supports corrected" true
    (corrects t (Pauli.of_bits ~x ~z ()))

(* --- greedy fallback -------------------------------------------------- *)

let test_greedy_fallback () =
  let h = Codes.Hamming.parity_check in
  let t =
    Csskit.build_exn ~distance:3 ~table_budget:1 ~name:"steane-greedy" ~hx:h
      ~hz:h ()
  in
  check "fallback is not exact" false t.Csskit.exact;
  List.iter
    (fun l ->
      for q = 0 to 6 do
        check "greedy corrects weight 1" true (corrects t (Pauli.single 7 q l))
      done)
    [ Pauli.X; Pauli.Y; Pauli.Z ];
  check "side_tables raises on greedy codes" true
    (match Csskit.side_tables t with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* the exposed one-side descent explains each single-bit syndrome by
     exactly that bit *)
  for i = 0 to 6 do
    let e = Bitvec.create 7 in
    Bitvec.set e i true;
    match Csskit.greedy_decode_side ~checks:h ~n:7 (Codes.Hamming.syndrome e) with
    | Some sup ->
      check (Printf.sprintf "greedy side support %d" i) true
        (Bitvec.equal sup e)
    | None -> Alcotest.fail "greedy side hit a dead end on weight 1"
  done

(* --- distance probe --------------------------------------------------- *)

let test_probe_distance () =
  let h = Codes.Hamming.parity_check in
  check "steane probes to 3" true
    (Csskit.probe_distance ~hx:h ~hz:h ~n:7 () = Some 3);
  let b = Csskit.Zoo.get "bch15" in
  check "bch15 probes to 3" true
    (Csskit.probe_distance ~hx:b.Csskit.hx ~hz:b.Csskit.hz ~n:15 () = Some 3);
  let g = Codes.Golay.parity_check in
  (* the Golay distance (7) exceeds the cap, so the bounded probe must
     report that it found nothing *)
  check "golay capped probe finds none" true
    (Csskit.probe_distance ~cap:4 ~hx:g ~hz:g ~n:23 () = None)

(* --- structured build errors ------------------------------------------ *)

let test_build_errors () =
  let h = Codes.Hamming.parity_check in
  (match Csskit.build ~distance_cap:1 ~name:"capped" ~hx:h ~hz:h () with
  | Error (Csskit.Distance_not_found { cap }) -> check_int "cap echoed" 1 cap
  | Ok _ -> Alcotest.fail "distance 3 must not be found under cap 1"
  | Error e -> Alcotest.failf "unexpected error %s" (Csskit.error_to_string e));
  (* a single-bit hz row anticommutes with some Hamming row (H has no
     zero column), so the CSS commutation check must trip *)
  let e0 = Bitvec.create 7 in
  Bitvec.set e0 0 true;
  (match Csskit.build ~name:"bad" ~hx:h ~hz:(Mat.of_rows [ e0 ]) () with
  | Error (Csskit.Css _) -> ()
  | Ok _ -> Alcotest.fail "non-commuting pair accepted"
  | Error e -> Alcotest.failf "unexpected error %s" (Csskit.error_to_string e));
  check "build_exn raises Invalid" true
    (match Csskit.build_exn ~name:"bad" ~hx:h ~hz:(Mat.of_rows [ e0 ]) () with
    | exception Csskit.Invalid { name = "bad"; _ } -> true
    | _ -> false)

(* --- cyclic / BCH constructions --------------------------------------- *)

let test_cyclic_and_bch () =
  (* x³ + x + 1 divides x⁷ + 1: 4 generator rows, 3 check rows *)
  let g = Csskit.Zoo.cyclic_generator ~n:7 (Gf2.Poly.of_exponents [ 0; 1; 3 ]) in
  check_int "cyclic generator rows" 4 (Mat.rows g);
  let h = Csskit.Zoo.cyclic_parity_check ~n:7 (Gf2.Poly.of_exponents [ 0; 1; 3 ]) in
  check_int "cyclic parity rows" 3 (Mat.rows h);
  check "non-divisor rejected" true
    (match
       Csskit.Zoo.cyclic_generator ~n:7 (Gf2.Poly.of_exponents [ 0; 1; 2 ])
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "coset of 1 mod 15" true
    (Csskit.Zoo.cyclotomic_coset ~n:15 1 = [ 1; 2; 4; 8 ]);
  (* the minimal polynomial of a primitive α over GF(2⁴) is degree 4
     and divides x¹⁵ + 1 *)
  let m1 = Csskit.Zoo.minimal_polynomial ~m:4 1 in
  check_int "min poly degree" 4 (Gf2.Poly.degree m1);
  check "min poly divides x^15+1" true
    (Gf2.Poly.divides m1 (Gf2.Poly.xn_plus_one 15));
  (* BCH with defining set {1} over GF(2⁴) is the [15, 11] Hamming
     code; its generator is exactly that minimal polynomial *)
  check "bch generator = min poly" true
    (Gf2.Poly.equal (Csskit.Zoo.bch_generator ~m:4 ~defining:[ 1 ]) m1)

(* --- batch classifier: bit-identity ----------------------------------- *)

(* The `Scalar engine replays the identical sampler stream through the
   scalar decoder, so counts must be bit-identical to `Batch at every
   tile width and domain count — steane7 exercises the minterm OR-mux
   path, golay23 the per-shot memo path, bch15 the k = 7 multi-logical
   mux. *)
let css_counts ~name ~tile_width ~domains ~engine () =
  let t = Csskit.Zoo.get name in
  (Csskit.Memory.memory_failure_batch ~domains ~engine ~tile_width t ~eps:0.08
     ~rounds:2 ~trials:700 ~seed:97 ())
    .Mc.Stats.failures

let test_batch_scalar_identity () =
  List.iter
    (fun name ->
      List.iter
        (fun tile_width ->
          let reference =
            css_counts ~name ~tile_width ~domains:1 ~engine:`Scalar ()
          in
          List.iter
            (fun domains ->
              check_int
                (Printf.sprintf "%s w=%d batch = scalar (domains %d)" name
                   tile_width domains)
                reference
                (css_counts ~name ~tile_width ~domains ~engine:`Batch ());
              check_int
                (Printf.sprintf "%s w=%d scalar domain-invariant (domains %d)"
                   name tile_width domains)
                reference
                (css_counts ~name ~tile_width ~domains ~engine:`Scalar ()))
            [ 1; 4 ])
        [ 64; 256; 512 ])
    [ "steane7"; "golay23"; "bch15" ]

(* the two memory drivers agree statistically at matched trial counts
   (they draw different streams, so compare intervals, not counts) *)
let test_mc_and_batch_consistent () =
  let t = Csskit.Zoo.get "steane7" in
  let mc =
    Csskit.Memory.memory_failure_mc ~domains:2 t ~eps:0.1 ~rounds:1
      ~trials:4000 ~seed:5 ()
  in
  let batch =
    Csskit.Memory.memory_failure_batch ~domains:2 ~tile_width:256 t ~eps:0.1
      ~rounds:1 ~trials:4000 ~seed:5 ()
  in
  check "estimates overlap" true
    Mc.Stats.(mc.ci_low <= batch.ci_high && batch.ci_low <= mc.ci_high)

let suites =
  [ ( "csskit",
      [ Alcotest.test_case "zoo registry" `Quick test_zoo_registry;
        Alcotest.test_case "steane7 = hand-written Steane" `Quick
          test_steane_matches_hamming;
        Alcotest.test_case "golay23 = hand-written Golay" `Quick
          test_golay_matches_handwritten;
        Alcotest.test_case "decoders correct within t" `Slow
          test_decoder_corrects_within_t;
        Alcotest.test_case "golay mixed supports" `Quick
          test_golay_mixed_support;
        Alcotest.test_case "greedy fallback" `Quick test_greedy_fallback;
        Alcotest.test_case "distance probe" `Slow test_probe_distance;
        Alcotest.test_case "structured build errors" `Quick test_build_errors;
        Alcotest.test_case "cyclic and BCH constructions" `Quick
          test_cyclic_and_bch;
        Alcotest.test_case "batch = scalar bit-identity" `Slow
          test_batch_scalar_identity;
        Alcotest.test_case "mc and batch drivers consistent" `Slow
          test_mc_and_batch_consistent ] ) ]
