open Ftqc
module Perm = Group.Perm
module Fg = Group.Finite_group

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_cycles () =
  let p = Perm.of_cycles 5 [ [ 1; 2; 5 ] ] in
  check_int "apply 0 -> 1" 1 (Perm.apply p 0);
  check_int "apply 1 -> 4" 4 (Perm.apply p 1);
  check_int "apply 4 -> 0" 0 (Perm.apply p 4);
  check_int "apply 2 fixed" 2 (Perm.apply p 2);
  Alcotest.(check string) "to_string" "(1 2 5)" (Perm.to_string p);
  check "roundtrip" true
    (Perm.equal p (Perm.of_cycles 5 (Perm.to_cycles p)))

let test_compose_inverse () =
  let a = Perm.of_cycles 4 [ [ 1; 2 ] ] and b = Perm.of_cycles 4 [ [ 2; 3 ] ] in
  (* left-to-right composition: apply a, then b *)
  let ab = Perm.compose a b in
  check_int "(1 2)(2 3): 1 -> 2 -> 3" 2 (Perm.apply ab 0);
  check "inverse" true
    (Perm.is_identity (Perm.compose a (Perm.inverse a)))

let test_order_sign () =
  check_int "3-cycle order" 3 (Perm.order (Perm.of_cycles 5 [ [ 1; 2; 3 ] ]));
  check_int "transposition order" 2 (Perm.order (Perm.of_cycles 5 [ [ 1; 2 ] ]));
  check_int "5-cycle order" 5
    (Perm.order (Perm.of_cycles 5 [ [ 1; 2; 3; 4; 5 ] ]));
  check_int "3-cycle even" 1 (Perm.sign (Perm.of_cycles 5 [ [ 1; 2; 3 ] ]));
  check_int "transposition odd" (-1) (Perm.sign (Perm.of_cycles 5 [ [ 1; 2 ] ]));
  check_int "(12)(34) even" 1
    (Perm.sign (Perm.of_cycles 5 [ [ 1; 2 ]; [ 3; 4 ] ]))

let test_conj () =
  (* Eq. 40/45: (14)(35) conjugates (125) to (234) *)
  let u0 = Perm.of_cycles 5 [ [ 1; 2; 5 ] ] in
  let v = Perm.of_cycles 5 [ [ 1; 4 ]; [ 3; 5 ] ] in
  let u1 = Perm.of_cycles 5 [ [ 2; 3; 4 ] ] in
  check "conjugation matches the paper" true (Perm.equal (Perm.conj u0 v) u1)

let test_group_orders () =
  check_int "S3" 6 (Fg.order (Fg.symmetric 3));
  check_int "S4" 24 (Fg.order (Fg.symmetric 4));
  check_int "S5" 120 (Fg.order (Fg.symmetric 5));
  check_int "A4" 12 (Fg.order (Fg.alternating 4));
  check_int "A5" 60 (Fg.order (Fg.alternating 5));
  check_int "Z7" 7 (Fg.order (Fg.cyclic 7));
  check_int "D4" 8 (Fg.order (Fg.dihedral 4));
  check_int "D6" 12 (Fg.order (Fg.dihedral 6))

let test_a5_classes () =
  let a5 = Fg.alternating 5 in
  let sizes =
    List.map List.length (Fg.conjugacy_classes a5) |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "A5 class sizes" [ 1; 12; 12; 15; 20 ] sizes

let test_solvability () =
  check "A5 not solvable" false (Fg.is_solvable (Fg.alternating 5));
  check "S5 not solvable" false (Fg.is_solvable (Fg.symmetric 5));
  check "S4 solvable" true (Fg.is_solvable (Fg.symmetric 4));
  check "A4 solvable" true (Fg.is_solvable (Fg.alternating 4));
  check "D5 solvable" true (Fg.is_solvable (Fg.dihedral 5));
  check "Z12 solvable" true (Fg.is_solvable (Fg.cyclic 12))

let test_derived () =
  let s4 = Fg.symmetric 4 in
  check_int "[S4,S4] = A4" 12 (Fg.order (Fg.derived_subgroup s4));
  let a5 = Fg.alternating 5 in
  check_int "[A5,A5] = A5" 60 (Fg.order (Fg.derived_subgroup a5))

let test_center_centralizer () =
  let s4 = Fg.symmetric 4 in
  check_int "Z(S4) trivial" 1 (Fg.order (Fg.center s4));
  let d4 = Fg.dihedral 4 in
  check_int "Z(D4) = Z2" 2 (Fg.order (Fg.center d4));
  let a5 = Fg.alternating 5 in
  let three_cycle = Perm.of_cycles 5 [ [ 1; 2; 3 ] ] in
  check_int "centralizer of a 3-cycle in A5" 3
    (Fg.order (Fg.centralizer a5 three_cycle))

let test_abelian () =
  check "Z6 abelian" true (Fg.is_abelian (Fg.cyclic 6));
  check "S3 not abelian" false (Fg.is_abelian (Fg.symmetric 3))

(* properties *)

let arb_perm n =
  let gen =
    QCheck.Gen.(
      map
        (fun seed ->
          let rng = Random.State.make [| seed |] in
          let a = Array.init n Fun.id in
          for i = n - 1 downto 1 do
            let j = Random.State.int rng (i + 1) in
            let t = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- t
          done;
          Perm.of_array a)
        int)
  in
  QCheck.make ~print:Perm.to_string gen

let prop_compose_assoc =
  QCheck.Test.make ~name:"composition associative" ~count:200
    (QCheck.triple (arb_perm 6) (arb_perm 6) (arb_perm 6))
    (fun (a, b, c) ->
      Perm.equal
        (Perm.compose (Perm.compose a b) c)
        (Perm.compose a (Perm.compose b c)))

let prop_inverse =
  QCheck.Test.make ~name:"p · p⁻¹ = e" ~count:200 (arb_perm 7) (fun p ->
      Perm.is_identity (Perm.compose p (Perm.inverse p)))

let prop_conj_homomorphism =
  QCheck.Test.make ~name:"conj by v is an automorphism" ~count:200
    (QCheck.triple (arb_perm 6) (arb_perm 6) (arb_perm 6))
    (fun (a, b, v) ->
      Perm.equal
        (Perm.conj (Perm.compose a b) v)
        (Perm.compose (Perm.conj a v) (Perm.conj b v)))

let prop_sign_multiplicative =
  QCheck.Test.make ~name:"sign multiplicative" ~count:200
    (QCheck.pair (arb_perm 6) (arb_perm 6))
    (fun (a, b) -> Perm.sign (Perm.compose a b) = Perm.sign a * Perm.sign b)

let prop_order_divides =
  QCheck.Test.make ~name:"order divides |S6| (Lagrange)" ~count:100
    (arb_perm 6) (fun p -> 720 mod Perm.order p = 0)

let suites =
  [ ( "group",
      [ Alcotest.test_case "cycles" `Quick test_cycles;
        Alcotest.test_case "compose/inverse" `Quick test_compose_inverse;
        Alcotest.test_case "order/sign" `Quick test_order_sign;
        Alcotest.test_case "paper conjugation" `Quick test_conj;
        Alcotest.test_case "group orders" `Quick test_group_orders;
        Alcotest.test_case "A5 conjugacy classes" `Quick test_a5_classes;
        Alcotest.test_case "solvability" `Quick test_solvability;
        Alcotest.test_case "derived subgroups" `Quick test_derived;
        Alcotest.test_case "center/centralizer" `Quick test_center_centralizer;
        Alcotest.test_case "abelian" `Quick test_abelian;
        QCheck_alcotest.to_alcotest prop_compose_assoc;
        QCheck_alcotest.to_alcotest prop_inverse;
        QCheck_alcotest.to_alcotest prop_conj_homomorphism;
        QCheck_alcotest.to_alcotest prop_sign_multiplicative;
        QCheck_alcotest.to_alcotest prop_order_divides ] ) ]
