(* Telemetry subsystem: Obs.Json round-trips, Obs.Metrics merge laws
   (associativity of histogram merge in particular), the no-op-handle
   contract (instrumented runs give bit-identical counts with
   telemetry on or off), and Obs.Manifest validation. *)

open Ftqc

let check msg expected actual = Alcotest.(check bool) msg expected actual

(* --- Obs.Json ---------------------------------------------------------- *)

let sample : Obs.Json.t =
  Obs.Json.(
    Obj
      [ ("schema", String "x/1");
        ("n", Int 42);
        ("rate", Float 0.125);
        ("ok", Bool true);
        ("none", Null);
        ("xs", List [ Int 1; Int 2; Int 3 ]);
        ("msg", String "a \"quoted\" line\nand a tab\t.") ])

let test_json_roundtrip () =
  match Obs.Json.of_string (Obs.Json.to_string sample) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j ->
    check "round-trips structurally" true (j = sample);
    check "member" true (Obs.Json.member "n" j = Some (Obs.Json.Int 42));
    check "absent member" true (Obs.Json.member "zzz" j = None);
    check "int as float" true
      (Obs.Json.(member "n" j |> Option.get |> to_float_opt) = Some 42.0)

let test_json_nonfinite_encodes_null () =
  check "nan -> null" true
    (String.trim (Obs.Json.to_string (Obs.Json.Float Float.nan)) = "null");
  check "inf -> null" true
    (String.trim (Obs.Json.to_string (Obs.Json.Float Float.infinity)) = "null")

let test_json_parse_errors () =
  let bad s =
    match Obs.Json.of_string s with Error _ -> true | Ok _ -> false
  in
  check "empty" true (bad "");
  check "truncated object" true (bad "{\"a\": 1");
  check "trailing garbage" true (bad "{} {}");
  check "bare word" true (bad "nope");
  check "unterminated string" true (bad "\"abc")

let test_json_numbers () =
  check "plain int parses as Int" true
    (Obs.Json.of_string "17" = Ok (Obs.Json.Int 17));
  check "decimal parses as Float" true
    (Obs.Json.of_string "0.5" = Ok (Obs.Json.Float 0.5));
  check "exponent parses as Float" true
    (Obs.Json.of_string "1e3" = Ok (Obs.Json.Float 1000.0));
  check "negative int" true
    (Obs.Json.of_string "-4" = Ok (Obs.Json.Int (-4)))

(* --- Obs.Metrics ------------------------------------------------------- *)

let test_metrics_basics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "c";
  Obs.Metrics.add m "c" 4;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter m "c");
  Alcotest.(check int) "untouched counter" 0 (Obs.Metrics.counter m "zzz");
  Obs.Metrics.set_gauge m "g" 1.0;
  Obs.Metrics.set_gauge m "g" 2.5;
  check "gauge keeps last write" true (Obs.Metrics.gauge m "g" = Some 2.5);
  Obs.Metrics.observe m "t" 3.0;
  Obs.Metrics.observe m "t" 1.0;
  check "summary (count,total,min,max)" true
    (Obs.Metrics.summary m "t" = Some (2, 4.0, 1.0, 3.0))

let test_metrics_histogram_buckets () =
  let m = Obs.Metrics.create () in
  let bounds = [| 1.0; 10.0; 100.0 |] in
  List.iter
    (Obs.Metrics.observe_histogram ~bounds m "h")
    [ 0.5; 1.0; 5.0; 50.0; 1e6 ];
  match Obs.Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some (b, counts) ->
    check "bounds preserved" true (b = bounds);
    (* <=1, <=10, <=100, overflow *)
    check "bucket placement" true (counts = [| 2; 1; 1; 1 |])

let fill seed m =
  (* a deterministic little workload touching every series kind *)
  let st = Random.State.make [| seed |] in
  for _ = 1 to 50 do
    Obs.Metrics.incr m "events";
    Obs.Metrics.add m "bytes" (Random.State.int st 100);
    Obs.Metrics.observe m "dt" (Random.State.float st 2.0);
    Obs.Metrics.observe_histogram ~bounds:[| 0.5; 1.0 |] m "dt"
      (Random.State.float st 2.0)
  done;
  Obs.Metrics.set_gauge m "last" (float_of_int seed);
  m

let test_metrics_merge_associative () =
  let h () = (fill 1 (Obs.Metrics.create ()),
              fill 2 (Obs.Metrics.create ()),
              fill 3 (Obs.Metrics.create ())) in
  let a, b, c = h () in
  let left = Obs.Metrics.(merge (merge a b) c) in
  let a, b, c = h () in
  let right = Obs.Metrics.(merge a (merge b c)) in
  check "(a+b)+c = a+(b+c) (serialized)" true
    (Obs.Json.to_string (Obs.Metrics.to_json left)
    = Obs.Json.to_string (Obs.Metrics.to_json right))

let test_metrics_merge_counts_commute () =
  let a = fill 4 (Obs.Metrics.create ())
  and b = fill 5 (Obs.Metrics.create ()) in
  let ab = Obs.Metrics.merge a b and ba = Obs.Metrics.merge b a in
  Alcotest.(check int) "counters commute"
    (Obs.Metrics.counter ab "events")
    (Obs.Metrics.counter ba "events");
  Alcotest.(check int) "added counters commute"
    (Obs.Metrics.counter ab "bytes")
    (Obs.Metrics.counter ba "bytes");
  let count m = match Obs.Metrics.summary m "dt" with
    | Some (n, _, _, _) -> n
    | None -> 0
  in
  Alcotest.(check int) "observation counts commute" (count ab) (count ba);
  let buckets m = match Obs.Metrics.histogram m "dt" with
    | Some (_, counts) -> Array.to_list counts
    | None -> []
  in
  Alcotest.(check (list int)) "histogram buckets commute"
    (buckets ab) (buckets ba)

let test_metrics_histogram_merge_bounds_mismatch () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.observe_histogram ~bounds:[| 1.0 |] a "h" 0.5;
  Obs.Metrics.observe_histogram ~bounds:[| 2.0 |] b "h" 0.5;
  check "incompatible bounds rejected" true
    (match Obs.Metrics.merge a b with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Obs handle -------------------------------------------------------- *)

let test_obs_none_is_noop () =
  let o = Obs.none in
  check "disabled" false (Obs.enabled o);
  Obs.incr o "c";
  Obs.observe o "t" 1.0;
  Obs.event o "e" [];
  Alcotest.(check int) "counter stays 0" 0 (Obs.counter o "c");
  check "no summary" true (Obs.summary o "t" = None);
  check "json is Null" true (Obs.to_json o = Obs.Json.Null)

let test_obs_live_records () =
  let o = Obs.create () in
  check "enabled" true (Obs.enabled o);
  Obs.incr o "c";
  Obs.add o "c" 2;
  Obs.event o "boot" [ ("k", Obs.Json.Int 1) ];
  Alcotest.(check int) "counter" 3 (Obs.counter o "c");
  match Obs.events_json o with
  | Obs.Json.List [ e ] ->
    check "event name" true
      (Obs.Json.member "event" e = Some (Obs.Json.String "boot"));
    check "event field" true
      (Obs.Json.member "k" e = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "expected a one-event log"

let bernoulli p rng _ = Random.State.float rng 1.0 < p

let test_obs_does_not_perturb_counts () =
  (* the whole point of the no-op default: identical failure counts
     with telemetry off, on, and on-across-domains *)
  let plain = Mc.Runner.failures ~domains:1 ~trials:4000 ~seed:8 (Mc.Runner.scalar (bernoulli 0.3)) in
  let o = Obs.create () in
  let observed =
    Mc.Runner.failures ~domains:1 ~obs:o ~trials:4000 ~seed:8 (Mc.Runner.scalar (bernoulli 0.3))
  in
  Alcotest.(check int) "obs on = obs off" plain observed;
  let o4 = Obs.create () in
  let par =
    Mc.Runner.failures ~domains:4 ~obs:o4 ~trials:4000 ~seed:8 (Mc.Runner.scalar (bernoulli 0.3))
  in
  Alcotest.(check int) "obs on, 4 domains = obs off" plain par;
  let e =
    Mc.Runner.estimate ~domains:3 ~obs:(Obs.create ()) ~trials:4000 ~seed:8
      (Mc.Runner.scalar (bernoulli 0.3))
  in
  Alcotest.(check int) "estimate under obs agrees" plain e.Mc.Stats.failures

let test_obs_runner_populates_metrics () =
  let o = Obs.create () in
  let trials = 3000 in
  ignore (Mc.Runner.failures ~domains:2 ~obs:o ~trials ~seed:5 (Mc.Runner.scalar (bernoulli 0.5)));
  Alcotest.(check int) "one run recorded" 1 (Obs.counter o "mc.runs");
  Alcotest.(check int) "all trials recorded" trials (Obs.counter o "mc.trials");
  check "chunks recorded" true (Obs.counter o "mc.chunks" > 0);
  check "chunk wall times observed" true
    (match Obs.summary o "mc.chunk_wall_s" with
    | Some (n, total, mn, mx) -> n > 0 && total >= 0.0 && mn <= mx
    | None -> false);
  check "throughput gauge set" true
    (match Obs.gauge o "mc.shots_per_s" with
    | Some v -> v > 0.0
    | None -> false);
  check "mc.run event logged" true
    (match Obs.events_json o with
    | Obs.Json.List evs ->
      List.exists
        (fun e -> Obs.Json.member "event" e = Some (Obs.Json.String "mc.run"))
        evs
    | _ -> false)

let test_progress_disabled_by_default () =
  (* the suite runs without FTQC_PROGRESS set, so the reporter stays
     off; stepping a [None] reporter is a no-op *)
  if not (Obs.Progress.enabled ()) then begin
    check "create yields None" true
      (Obs.Progress.create ~label:"t" ~total:10 = None);
    Obs.Progress.step None;
    Obs.Progress.finish None
  end;
  check "zero total never reports" true
    (Obs.Progress.create ~label:"t" ~total:0 = None)

let test_progress_format_line () =
  let line = Obs.Progress.format_line in
  (* half done in 10 s: same pace gives 10 more seconds *)
  Alcotest.(check string)
    "midpoint" "[ftqc] e3: 5/10 chunks (50%) elapsed 10.0s eta 10.0s"
    (line ~label:"e3" ~done_:5 ~total:10 ~elapsed:10.0);
  (* nothing done yet: no pace to extrapolate, ETA reads 0.0 *)
  Alcotest.(check string)
    "zero done" "[ftqc] e3: 0/10 chunks (0%) elapsed 1.0s eta 0.0s"
    (line ~label:"e3" ~done_:0 ~total:10 ~elapsed:1.0);
  (* finished: 100%, eta 0 *)
  Alcotest.(check string)
    "finished" "[ftqc] e3: 10/10 chunks (100%) elapsed 4.2s eta 0.0s"
    (line ~label:"e3" ~done_:10 ~total:10 ~elapsed:4.2);
  (* single chunk is both 0% and then 100% — no intermediate states *)
  Alcotest.(check string)
    "single chunk" "[ftqc] x: 1/1 chunks (100%) elapsed 0.5s eta 0.0s"
    (line ~label:"x" ~done_:1 ~total:1 ~elapsed:0.5);
  (* degenerate totals must not divide by zero *)
  Alcotest.(check string)
    "zero total" "[ftqc] x: 0/0 chunks (100%) elapsed 0.0s eta 0.0s"
    (line ~label:"x" ~done_:0 ~total:0 ~elapsed:0.0);
  (* uneven pace: 3 chunks in 2 s -> 7 remaining at 2/3 s each *)
  Alcotest.(check string)
    "extrapolated eta" "[ftqc] e: 3/10 chunks (30%) elapsed 2.0s eta 4.7s"
    (line ~label:"e" ~done_:3 ~total:10 ~elapsed:2.0)

let test_progress_env_gate () =
  let prev = Sys.getenv_opt Obs.Progress.env_var in
  let restore () =
    Unix.putenv Obs.Progress.env_var (Option.value ~default:"" prev)
  in
  Fun.protect ~finally:restore (fun () ->
      List.iter
        (fun v ->
          Unix.putenv Obs.Progress.env_var v;
          check
            (Printf.sprintf "FTQC_PROGRESS=%S disables" v)
            false
            (Obs.Progress.enabled ()))
        [ ""; "0"; "false"; "no" ];
      Unix.putenv Obs.Progress.env_var "1";
      check "FTQC_PROGRESS=1 enables" true (Obs.Progress.enabled ());
      check "enabled create yields a reporter" true
        (let p = Obs.Progress.create ~label:"t" ~total:3 in
         Obs.Progress.abandon p;
         p <> None);
      Unix.putenv Obs.Progress.env_var "0.5";
      check "numeric value enables too" true (Obs.Progress.enabled ()))

let test_progress_never_writes_stdout () =
  (* progress is a stderr facility: capture stdout around a full
     enabled create/step/finish cycle and require it byte-empty *)
  let prev = Sys.getenv_opt Obs.Progress.env_var in
  let restore () =
    Unix.putenv Obs.Progress.env_var (Option.value ~default:"" prev)
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv Obs.Progress.env_var "1";
      let file = Filename.temp_file "ftqc_stdout" ".txt" in
      let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let saved = Unix.dup Unix.stdout in
      flush stdout;
      Unix.dup2 fd Unix.stdout;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 saved Unix.stdout;
          Unix.close saved;
          Unix.close fd;
          try Sys.remove file with Sys_error _ -> ())
        (fun () ->
          let p = Obs.Progress.create ~label:"cap" ~total:4 in
          check "reporter live" true (p <> None);
          for _ = 1 to 4 do
            Obs.Progress.step p
          done;
          Obs.Progress.finish p;
          flush stdout;
          let ic = open_in_bin file in
          let len = in_channel_length ic in
          close_in ic;
          Alcotest.(check int) "stdout untouched" 0 len))

(* --- Obs.Json atomic writes -------------------------------------------- *)

let test_write_atomic_roundtrip () =
  let file = Filename.temp_file "ftqc_atomic" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Obs.Json.write_atomic ~file sample;
      check "read back" true (Obs.Json.read_file file = Ok sample);
      (* overwrite in place — and no temp droppings left behind *)
      Obs.Json.write_atomic ~fsync:true ~file (Obs.Json.Int 1);
      check "overwrite read back" true
        (Obs.Json.read_file file = Ok (Obs.Json.Int 1));
      let dir = Filename.dirname file and base = Filename.basename file in
      let leftovers =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > String.length base
               && String.sub f 0 (String.length base) = base)
      in
      check "no temp files left" true (leftovers = []))

let test_read_file_rejects_corruption () =
  let bad what content =
    let file = Filename.temp_file "ftqc_corrupt" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin file in
        output_string oc content;
        close_out oc;
        match Obs.Json.read_file file with
        | Error msg ->
          check (what ^ " error names the file") true
            (String.length msg > 0
            && String.sub msg 0 (String.length file) = file)
        | Ok _ -> Alcotest.fail (what ^ " must be rejected"))
  in
  bad "truncated document" "{\"a\": [1, 2";
  bad "trailing bytes" "{}{}";
  bad "binary garbage" "\x00\x01\x02";
  match Obs.Json.read_file "/nonexistent/ftqc.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an error"

(* --- Obs.Manifest ------------------------------------------------------ *)

let manifest_doc () =
  let m = Obs.Manifest.create () in
  let e = Mc.Stats.estimate ~failures:3 ~trials:100 () in
  Obs.Manifest.add m
    { experiment = "e-test";
      params = [ ("trials", Obs.Json.Int 100) ];
      results =
        [ { name = "cell";
            failures = e.failures;
            trials_used = e.trials;
            rate = e.rate;
            ci_lo = e.ci_low;
            ci_hi = e.ci_high };
          Obs.Manifest.value "analytic" 0.25 ];
      telemetry = [ ("wall_s", Obs.Json.Float 0.5) ] };
  m

let test_manifest_validate_ok () =
  let m = manifest_doc () in
  Alcotest.(check int) "length" 1 (Obs.Manifest.length m);
  match Obs.Manifest.validate (Obs.Manifest.to_json ~generator:"test" m) with
  | Ok n -> Alcotest.(check int) "one record validates" 1 n
  | Error e -> Alcotest.failf "expected valid manifest: %s" e

let test_manifest_write_reparses () =
  let file = Filename.temp_file "ftqc_manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Obs.Manifest.write ~generator:"test" (manifest_doc ()) ~file;
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string s with
      | Error e -> Alcotest.failf "written manifest unparsable: %s" e
      | Ok j -> (
        check "schema tag" true
          (Obs.Json.member "schema" j
          = Some (Obs.Json.String Obs.Manifest.schema_version));
        match Obs.Manifest.validate j with
        | Ok 1 -> ()
        | Ok n -> Alcotest.failf "expected 1 record, got %d" n
        | Error e -> Alcotest.failf "written manifest invalid: %s" e))

let test_manifest_validate_rejects () =
  let reject msg doc =
    check msg true
      (match Obs.Json.of_string doc with
      | Ok j -> Result.is_error (Obs.Manifest.validate j)
      | Error _ -> true)
  in
  reject "not an object" "[1,2]";
  reject "wrong schema" {|{"schema": "other/9", "records": []}|};
  reject "records not a list" {|{"schema": "ftqc-manifest/1", "records": 3}|};
  reject "rate outside interval"
    {|{"schema": "ftqc-manifest/1", "records": [
        {"experiment": "e", "params": {}, "telemetry": {"wall_s": 0.1},
         "results": [{"name": "x", "failures": 1, "trials_used": 10,
                      "rate": 0.9, "ci_lo": 0.0, "ci_hi": 0.5}]}]}|};
  reject "missing wall_s"
    {|{"schema": "ftqc-manifest/1", "records": [
        {"experiment": "e", "params": {}, "telemetry": {},
         "results": []}]}|};
  check "empty manifest is fine" true
    (Obs.Json.of_string {|{"schema": "ftqc-manifest/1", "records": []}|}
     |> Result.get_ok |> Obs.Manifest.validate = Ok 0)

(* --- Obs.Perf: trajectory comparator ----------------------------------- *)

let kernel name width shots_per_s = { Obs.Perf.name; width; shots_per_s }

let base_entry =
  { Obs.Perf.label = "base";
    kernels =
      [ kernel "steane-level2" 64 1.0e6;
        kernel "toric-L3-deep" 512 4.0e7 ];
    daemon = Some { Obs.Perf.cold_s = 0.10; hit_s = 0.002 } }

let diff ?throughput_floor ?latency_ceiling kernels daemon =
  Obs.Perf.compare_entries ?throughput_floor ?latency_ceiling ~base:base_entry
    { Obs.Perf.label = "new"; kernels; daemon }

let test_perf_regression_fails () =
  (* a >25% throughput drop on any kernel trips the gate *)
  let verdicts =
    diff
      [ kernel "steane-level2" 64 0.70e6; (* -30%: regression *)
        kernel "toric-L3-deep" 512 4.0e7 ]
      base_entry.Obs.Perf.daemon
  in
  check "synthetic 30% slowdown flagged" true (Obs.Perf.regressed verdicts);
  (* ...and the verdict names the offending kernel *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "offender named" true
    (List.exists
       (fun (v : Obs.Perf.verdict) ->
         v.regressed && contains v.line "steane-level2")
       verdicts)

let test_perf_improvement_and_noise_pass () =
  (* improvements and in-band noise (10% down) both pass *)
  let improved =
    diff
      [ kernel "steane-level2" 64 2.0e6; kernel "toric-L3-deep" 512 9.0e7 ]
      (Some { Obs.Perf.cold_s = 0.05; hit_s = 0.001 })
  in
  check "improvement passes" false (Obs.Perf.regressed improved);
  let noisy =
    diff
      [ kernel "steane-level2" 64 0.9e6; (* -10%: inside the band *)
        kernel "toric-L3-deep" 512 3.7e7 ]
      (Some { Obs.Perf.cold_s = 0.15; hit_s = 0.003 })
      (* latencies 1.5x: inside the 2x ceiling *)
  in
  check "noise-band wobble passes" false (Obs.Perf.regressed noisy)

let test_perf_missing_and_new_kernels () =
  (* a (kernel, width) pair that vanished is a regression; a new one
     is informational only *)
  let vanished = diff [ kernel "steane-level2" 64 1.0e6 ] None in
  check "missing kernel flagged" true (Obs.Perf.regressed vanished);
  let extra =
    diff
      (base_entry.Obs.Perf.kernels @ [ kernel "brand-new" 256 1.0 ])
      base_entry.Obs.Perf.daemon
  in
  check "new kernel is informational" false (Obs.Perf.regressed extra);
  (* width is part of the identity: same name at a new width does not
     satisfy the base (name, width) pair *)
  let rewidthed =
    diff
      [ kernel "steane-level2" 256 1.0e6; kernel "toric-L3-deep" 512 4.0e7 ]
      base_entry.Obs.Perf.daemon
  in
  check "width change = missing pair" true (Obs.Perf.regressed rewidthed)

let test_perf_latency_ceiling () =
  let slow_cold =
    diff base_entry.Obs.Perf.kernels
      (Some { Obs.Perf.cold_s = 0.25; hit_s = 0.002 }) (* 2.5x: regression *)
  in
  check ">2x cold latency flagged" true (Obs.Perf.regressed slow_cold);
  let slow_hit =
    diff base_entry.Obs.Perf.kernels
      (Some { Obs.Perf.cold_s = 0.10; hit_s = 0.005 }) (* 2.5x: regression *)
  in
  check ">2x cache-hit latency flagged" true (Obs.Perf.regressed slow_hit);
  (* custom thresholds are honored *)
  let strict =
    diff ~throughput_floor:0.99 [ kernel "steane-level2" 64 0.98e6;
                                  kernel "toric-L3-deep" 512 4.0e7 ]
      None
  in
  check "custom throughput floor honored" true (Obs.Perf.regressed strict)

let test_perf_trajectory_file_round_trip () =
  let file = Filename.temp_file "ftqc_traj" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Sys.remove file;
      (* append creates the file, then extends it *)
      Obs.Perf.append ~file base_entry;
      Obs.Perf.append ~file
        { base_entry with Obs.Perf.label = "next" };
      (match Obs.Perf.read_trajectory file with
      | Error e -> Alcotest.failf "trajectory unreadable: %s" e
      | Ok entries ->
        check "append-only: both entries, oldest first" true
          (List.map (fun (e : Obs.Perf.entry) -> e.label) entries
          = [ "base"; "next" ]));
      (* a trajectory diffed against itself is never a regression *)
      match Obs.Perf.compare_files ~base:file file with
      | Error e -> Alcotest.failf "self-diff failed: %s" e
      | Ok verdicts ->
        check "self-diff passes" false (Obs.Perf.regressed verdicts));
  (* wrong schema tag rejected *)
  let bad = Filename.temp_file "ftqc_traj_bad" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove bad with Sys_error _ -> ())
    (fun () ->
      let oc = open_out bad in
      output_string oc {|{"schema": "other/9", "entries": []}|};
      close_out oc;
      check "wrong schema rejected" true
        (Result.is_error (Obs.Perf.read_trajectory bad)))

(* --- Obs.Trace ---------------------------------------------------------- *)

let with_sink f =
  let sk = Obs.Trace.sink () in
  Obs.Trace.install (Some sk);
  Fun.protect ~finally:(fun () -> Obs.Trace.install None) (fun () -> f sk)

let test_now_monotonic () =
  let prev = ref (Obs.now ()) in
  for _ = 1 to 100 do
    let t = Obs.now () in
    check "Obs.now never goes backwards" true (t >= !prev);
    prev := t
  done

let test_trace_span_id () =
  let id = Obs.Trace.span_id in
  Alcotest.(check string) "deterministic" (id [ "a"; "b" ]) (id [ "a"; "b" ]);
  check "16 lowercase hex digits" true
    (String.length (id [ "x" ]) = 16
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
         (id [ "x" ]));
  check "separator-folded: [ab;c] <> [a;bc]" true
    (id [ "ab"; "c" ] <> id [ "a"; "bc" ]);
  check "path-sensitive" true (id [ "a" ] <> id [ "b" ])

let mk_span ?(parent = "") ?(cat = "test") ?(args = []) ?(start_s = 0.0)
    ?(dur_s = 0.0) ~id ~name () =
  { Obs.Trace.id; parent; name; cat; start_s; dur_s; args }

let test_trace_buf_merge_and_sink_bounds () =
  let b1 = Obs.Trace.buf () and b2 = Obs.Trace.buf () in
  let s1 = mk_span ~id:"01" ~name:"one" ()
  and s2 = mk_span ~id:"02" ~name:"two" () in
  Obs.Trace.record b1 s1;
  Obs.Trace.record b2 s2;
  Obs.Trace.merge_into ~into:b1 b2;
  check "order-preserving merge" true (Obs.Trace.contents b1 = [ s1; s2 ]);
  Alcotest.(check int) "merged length" 2 (Obs.Trace.buf_length b1);
  (* a tiny sink counts overflow instead of growing or blocking *)
  let sk = Obs.Trace.sink ~capacity:2 () in
  Obs.Trace.install (Some sk);
  Fun.protect
    ~finally:(fun () -> Obs.Trace.install None)
    (fun () ->
      check "enabled with a sink" true (Obs.Trace.enabled ());
      for i = 1 to 5 do
        Obs.Trace.emit (mk_span ~id:(string_of_int i) ~name:"s" ())
      done;
      Alcotest.(check int) "bounded" 2 (Obs.Trace.sink_length sk);
      Alcotest.(check int) "overflow counted" 3 (Obs.Trace.sink_dropped sk));
  check "disabled after uninstall" false (Obs.Trace.enabled ())

let test_trace_timed_nesting () =
  (* without a sink, timed is exactly the thunk *)
  check "disabled by default" false (Obs.Trace.enabled ());
  Alcotest.(check int) "disabled timed = f ()" 7
    (Obs.Trace.timed ~name:"n" ~id:"deadbeef00000000" (fun () -> 7));
  with_sink (fun sk ->
      let outer = Obs.Trace.span_id [ "outer" ]
      and inner = Obs.Trace.span_id [ "inner" ] in
      let r =
        Obs.Trace.timed ~name:"outer" ~id:outer (fun () ->
            Obs.Trace.timed ~name:"inner" ~id:inner (fun () -> 41) + 1)
      in
      Alcotest.(check int) "result threads through" 42 r;
      let find id =
        List.find_opt
          (fun (s : Obs.Trace.span) -> s.id = id)
          (Obs.Trace.sink_spans sk)
      in
      (match find inner with
      | Some s -> check "inner parented under outer" true (s.parent = outer)
      | None -> Alcotest.fail "inner span missing");
      (match find outer with
      | Some s -> check "outer is a root" true (s.parent = "")
      | None -> Alcotest.fail "outer span missing");
      check "ambient parent restored" true (Obs.Trace.current_parent () = "");
      (* the exceptional path still emits, and restores the parent *)
      (match
         Obs.Trace.timed ~name:"boom"
           ~id:(Obs.Trace.span_id [ "boom" ])
           (fun () -> failwith "x")
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception must propagate");
      check "raised span still emitted" true
        (List.exists
           (fun (s : Obs.Trace.span) -> s.name = "boom")
           (Obs.Trace.sink_spans sk));
      check "parent restored after raise" true
        (Obs.Trace.current_parent () = ""))

(* the span *tree* (ids, parents, names) — everything but the timings *)
let sorted_identities sk =
  Obs.Trace.sink_spans sk
  |> List.map (fun (s : Obs.Trace.span) -> (s.id, s.parent, s.name))
  |> List.sort compare

let test_trace_runner_neutral_and_domain_invariant () =
  let workload domains =
    Mc.Runner.failures ~domains ~trials:4000 ~seed:8
      (Mc.Runner.scalar (bernoulli 0.3))
  in
  let plain = workload 1 in
  let run domains =
    with_sink (fun sk ->
        let n = workload domains in
        (n, sorted_identities sk, Obs.Trace.to_json sk))
  in
  let n1, ids1, doc1 = run 1 in
  let n4, ids4, _ = run 4 in
  Alcotest.(check int) "tracing does not perturb counts (1 domain)" plain n1;
  Alcotest.(check int) "tracing does not perturb counts (4 domains)" plain n4;
  check "span tree bit-identical across domain counts" true (ids1 = ids4);
  check "run span present" true
    (List.exists (fun (_, p, _) -> p = "") ids1);
  check "chunk spans present" true
    (List.exists (fun (_, _, n) -> n = "chunk 0") ids1);
  match Obs.Trace.validate doc1 with
  | Ok n -> check "exported document validates" true (n > 0)
  | Error e -> Alcotest.failf "trace invalid: %s" e

let test_trace_rare_engine_spans () =
  let model =
    Mc.Runner.model
      ~worker_init:(fun () -> ())
      ~rare:
        { Mc.Runner.fault_model = { Mc.Subset.locations = 6; kinds = 1; p = 0.3 };
          evaluate = (fun () faults -> Array.length faults >= 3) }
      ()
  in
  let config =
    match Mc.Engine.rare ~max_weight:4 ~samples_per_class:10 () with
    | `Rare c -> c
    | _ -> assert false
  in
  let plain = Mc.Runner.estimate_rare ~domains:2 ~config ~seed:41 model in
  with_sink (fun sk ->
      let traced = Mc.Runner.estimate_rare ~domains:2 ~config ~seed:41 model in
      check "tracing does not perturb the weighted estimate" true
        (plain = traced);
      let names =
        List.map (fun (s : Obs.Trace.span) -> s.name) (Obs.Trace.sink_spans sk)
      in
      check "rare root span present" true (List.mem "rare estimate" names);
      check "weight-class spans present" true
        (List.exists
           (fun n ->
             String.length n >= 12 && String.sub n 0 12 = "weight class")
           names);
      match Obs.Trace.validate (Obs.Trace.to_json sk) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "rare trace invalid: %s" e)

let test_trace_campaign_resume_cached_spans () =
  let file = Filename.temp_file "ftqc_trace_camp" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Sys.remove file;
      let c = Result.get_ok (Mc.Campaign.create file) in
      let n0 =
        Mc.Runner.failures ~domains:2 ~campaign:c ~trials:2000 ~seed:3
          (Mc.Runner.scalar (bernoulli 0.2))
      in
      Mc.Campaign.flush c;
      let c2 = Result.get_ok (Mc.Campaign.load file) in
      with_sink (fun sk ->
          let n1 =
            Mc.Runner.failures ~domains:2 ~campaign:c2 ~trials:2000 ~seed:3
              (Mc.Runner.scalar (bernoulli 0.2))
          in
          Alcotest.(check int) "resumed run reproduces" n0 n1;
          check "replayed chunks traced as cached" true
            (List.exists
               (fun (s : Obs.Trace.span) ->
                 List.mem_assoc "cached" s.Obs.Trace.args)
               (Obs.Trace.sink_spans sk));
          Mc.Campaign.flush c2;
          check "explicit flush emits a campaign span" true
            (List.exists
               (fun (s : Obs.Trace.span) -> s.cat = "campaign")
               (Obs.Trace.sink_spans sk))))

let test_trace_validate_rejects () =
  let reject msg doc =
    check msg true
      (match Obs.Json.of_string doc with
      | Ok j -> Result.is_error (Obs.Trace.validate j)
      | Error _ -> true)
  in
  let event ?(ph = "X") ?(id = "aa") ?(parent = "") ?(ts = 0) ?(dur = 10) () =
    Printf.sprintf
      {|{"ph": %S, "name": "e", "cat": "t", "ts": %d, "dur": %d,
         "pid": 1, "tid": 1, "args": {"span_id": %S, "parent": %S}}|}
      ph ts dur id parent
  in
  let doc events =
    Printf.sprintf
      {|{"schema": "ftqc-trace/1", "displayTimeUnit": "ms", "dropped": 0,
         "traceEvents": [%s]}|}
      (String.concat ", " events)
  in
  reject "wrong schema"
    {|{"schema": "other/9", "traceEvents": []}|};
  reject "non-complete event" (doc [ event ~ph:"B" () ]);
  reject "missing span identity"
    (doc
       [ {|{"ph": "X", "name": "e", "cat": "t", "ts": 0, "dur": 1,
            "args": {}}|} ]);
  reject "self-parenting" (doc [ event ~id:"aa" ~parent:"aa" () ]);
  reject "unknown parent" (doc [ event ~id:"bb" ~parent:"zz" () ]);
  reject "child escapes its parent"
    (doc [ event ~id:"aa" ~ts:0 ~dur:10 ();
           event ~id:"bb" ~parent:"aa" ~ts:5 ~dur:100 () ]);
  (match
     Obs.Json.of_string
       (doc [ event ~id:"aa" ~ts:0 ~dur:10 ();
              event ~id:"bb" ~parent:"aa" ~ts:2 ~dur:5 () ])
   with
  | Ok j -> check "contained child accepted" true (Obs.Trace.validate j = Ok 2)
  | Error e -> Alcotest.failf "fixture unparsable: %s" e);
  check "empty trace validates" true
    (Obs.Json.of_string (doc []) |> Result.get_ok |> Obs.Trace.validate = Ok 0)

(* --- Obs.Progress publish mode ------------------------------------------ *)

let with_publish f =
  let prev = Obs.Progress.publishing () in
  Obs.Progress.set_publish true;
  Fun.protect ~finally:(fun () -> Obs.Progress.set_publish prev) f

let test_progress_publish_snapshot () =
  check "publish off by default" false (Obs.Progress.publishing ());
  with_publish (fun () ->
      check "snapshot starts empty" true (Obs.Progress.snapshot () = []);
      Obs.Progress.with_scope "req-1" (fun () ->
          let p = Obs.Progress.create ~label:"work" ~total:4 in
          check "publish mode creates a reporter" true (p <> None);
          Obs.Progress.step p;
          Obs.Progress.step p;
          (match Obs.Progress.snapshot () with
          | [ v ] ->
            Alcotest.(check string) "scope" "req-1" v.Obs.Progress.v_scope;
            Alcotest.(check string) "label" "work" v.Obs.Progress.v_label;
            Alcotest.(check int) "done" 2 v.Obs.Progress.v_done;
            Alcotest.(check int) "total" 4 v.Obs.Progress.v_total;
            check "elapsed nonnegative" true (v.Obs.Progress.v_elapsed_s >= 0.0)
          | l -> Alcotest.failf "expected one live view, got %d" (List.length l));
          Obs.Progress.finish p;
          check "finish unregisters" true (Obs.Progress.snapshot () = []));
      (* abandon also unregisters — the exceptional path *)
      let p = Obs.Progress.create ~label:"doomed" ~total:2 in
      Obs.Progress.step p;
      Obs.Progress.abandon p;
      check "abandon unregisters" true (Obs.Progress.snapshot () = []))

let test_progress_watcher_hook () =
  with_publish (fun () ->
      let seen = ref [] in
      Obs.Progress.set_watcher
        (Some (fun v -> seen := (v.Obs.Progress.v_done, v.Obs.Progress.v_total) :: !seen));
      Fun.protect
        ~finally:(fun () -> Obs.Progress.set_watcher None)
        (fun () ->
          let p = Obs.Progress.create ~label:"w" ~total:3 in
          Obs.Progress.step p;
          Obs.Progress.step p;
          Obs.Progress.step p;
          Obs.Progress.finish p);
      check "watcher saw every step" true
        (List.mem (1, 3) !seen && List.mem (2, 3) !seen && List.mem (3, 3) !seen))

let suites =
  [ ( "obs.json",
      [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite -> null" `Quick
          test_json_nonfinite_encodes_null;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "number forms" `Quick test_json_numbers;
        Alcotest.test_case "atomic write round-trip" `Quick
          test_write_atomic_roundtrip;
        Alcotest.test_case "read_file rejects corruption" `Quick
          test_read_file_rejects_corruption ] );
    ( "obs.metrics",
      [ Alcotest.test_case "basics" `Quick test_metrics_basics;
        Alcotest.test_case "histogram buckets" `Quick
          test_metrics_histogram_buckets;
        Alcotest.test_case "merge associative" `Quick
          test_metrics_merge_associative;
        Alcotest.test_case "integer series commute" `Quick
          test_metrics_merge_counts_commute;
        Alcotest.test_case "bounds mismatch rejected" `Quick
          test_metrics_histogram_merge_bounds_mismatch ] );
    ( "obs.handle",
      [ Alcotest.test_case "none is a no-op" `Quick test_obs_none_is_noop;
        Alcotest.test_case "live handle records" `Quick test_obs_live_records;
        Alcotest.test_case "does not perturb counts" `Quick
          test_obs_does_not_perturb_counts;
        Alcotest.test_case "runner populates metrics" `Quick
          test_obs_runner_populates_metrics;
        Alcotest.test_case "progress off by default" `Quick
          test_progress_disabled_by_default;
        Alcotest.test_case "progress line format" `Quick
          test_progress_format_line;
        Alcotest.test_case "progress env gate" `Quick test_progress_env_gate;
        Alcotest.test_case "progress never writes stdout" `Quick
          test_progress_never_writes_stdout ] );
    ( "obs.trace",
      [ Alcotest.test_case "monotonic clock" `Quick test_now_monotonic;
        Alcotest.test_case "span ids deterministic" `Quick test_trace_span_id;
        Alcotest.test_case "buffers, merge, sink bounds" `Quick
          test_trace_buf_merge_and_sink_bounds;
        Alcotest.test_case "timed nesting" `Quick test_trace_timed_nesting;
        Alcotest.test_case "runner: neutral and domain-invariant" `Quick
          test_trace_runner_neutral_and_domain_invariant;
        Alcotest.test_case "rare engine spans" `Quick
          test_trace_rare_engine_spans;
        Alcotest.test_case "campaign resume cached spans" `Quick
          test_trace_campaign_resume_cached_spans;
        Alcotest.test_case "validate rejects" `Quick
          test_trace_validate_rejects ] );
    ( "obs.progress",
      [ Alcotest.test_case "publish snapshot" `Quick
          test_progress_publish_snapshot;
        Alcotest.test_case "watcher hook" `Quick test_progress_watcher_hook ] );
    ( "obs.manifest",
      [ Alcotest.test_case "validate ok" `Quick test_manifest_validate_ok;
        Alcotest.test_case "write/reparse" `Quick test_manifest_write_reparses;
        Alcotest.test_case "validate rejects" `Quick
          test_manifest_validate_rejects ] );
    ( "obs.perf",
      [ Alcotest.test_case "regression fails" `Quick test_perf_regression_fails;
        Alcotest.test_case "improvement and noise pass" `Quick
          test_perf_improvement_and_noise_pass;
        Alcotest.test_case "missing and new kernels" `Quick
          test_perf_missing_and_new_kernels;
        Alcotest.test_case "latency ceiling" `Quick test_perf_latency_ceiling;
        Alcotest.test_case "trajectory file round-trip" `Quick
          test_perf_trajectory_file_round_trip ] ) ]
