(* A second sweep of cross-module properties: the mathematical laws
   the substrates must obey, checked on randomized inputs. *)

open Ftqc
module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat
module Fg = Group.Finite_group

let check = Alcotest.(check bool)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.int

(* --- group theory -------------------------------------------------------- *)

let prop_orbit_stabilizer =
  QCheck.Test.make ~name:"orbit-stabilizer: |class| * |centralizer| = |G|"
    ~count:30 arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      let g =
        match Random.State.int r 3 with
        | 0 -> Fg.alternating 5
        | 1 -> Fg.symmetric 4
        | _ -> Fg.dihedral 6
      in
      let elems = Array.of_list (Fg.elements g) in
      let u = elems.(Random.State.int r (Array.length elems)) in
      List.length (Fg.conjugacy_class g u) * Fg.order (Fg.centralizer g u)
      = Fg.order g)

let prop_class_equation =
  QCheck.Test.make ~name:"class equation: sizes sum to |G|" ~count:10 arb_seed
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let g = if Random.State.bool r then Fg.symmetric 4 else Fg.alternating 5 in
      List.fold_left (fun a c -> a + List.length c) 0 (Fg.conjugacy_classes g)
      = Fg.order g)

let prop_derived_is_normal_subgroup =
  QCheck.Test.make ~name:"derived subgroup closed under conjugation" ~count:15
    arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      let g = Fg.symmetric 4 in
      let d = Fg.derived_subgroup g in
      let elems = Array.of_list (Fg.elements g) in
      let v = elems.(Random.State.int r (Array.length elems)) in
      List.for_all
        (fun u -> Fg.mem d (Group.Perm.conj u v))
        (Fg.elements d))

(* --- GF(2) matrices ------------------------------------------------------- *)

let bitvec_gen n =
  QCheck.Gen.(map Bitvec.of_bool_list (list_repeat n bool))

let mat_gen rows cols =
  QCheck.Gen.(map Mat.of_rows (list_repeat rows (bitvec_gen cols)))

let prop_double_inverse =
  QCheck.Test.make ~name:"inverse of inverse" ~count:60
    (QCheck.make (mat_gen 4 4))
    (fun m ->
      match Mat.inverse m with
      | None -> true (* singular: nothing to check *)
      | Some inv -> (
        match Mat.inverse inv with
        | None -> false
        | Some back -> Mat.equal back m))

let prop_kernel_orthogonal_rowspace =
  QCheck.Test.make ~name:"kernel ⊥ row space" ~count:60
    (QCheck.make (mat_gen 5 8))
    (fun m ->
      List.for_all
        (fun kv ->
          List.for_all (fun rv -> not (Bitvec.dot kv rv)) (Mat.row_space m))
        (Mat.kernel m))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:60
    (QCheck.make (mat_gen 4 7))
    (fun m -> Mat.equal (Mat.transpose (Mat.transpose m)) m)

let prop_mul_vec_linear =
  QCheck.Test.make ~name:"m(u+v) = mu + mv" ~count:60
    (QCheck.make QCheck.Gen.(triple (mat_gen 5 9) (bitvec_gen 9) (bitvec_gen 9)))
    (fun (m, u, v) ->
      Bitvec.equal
        (Mat.mul_vec m (Bitvec.xor u v))
        (Bitvec.xor (Mat.mul_vec m u) (Mat.mul_vec m v)))

(* --- simulators ----------------------------------------------------------- *)

let prop_measure_pauli_repeatable =
  QCheck.Test.make ~name:"pauli measurement repeatable on tableau" ~count:60
    arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      let tab = Tableau.create 4 in
      for _ = 1 to 12 do
        match Random.State.int r 3 with
        | 0 -> Tableau.h tab (Random.State.int r 4)
        | 1 -> Tableau.s_gate tab (Random.State.int r 4)
        | _ ->
          let a = Random.State.int r 4 in
          Tableau.cnot tab a ((a + 1) mod 4)
      done;
      let p = Pauli.random r 4 in
      let p = if Pauli.phase p mod 2 = 0 then p else Pauli.mul_phase p 1 in
      let o1 = Tableau.measure_pauli tab r p in
      let o2 = Tableau.measure_pauli tab r p in
      o1 = o2)

let prop_statevec_measure_destroys_superposition =
  QCheck.Test.make ~name:"statevec post-measurement eigenstate" ~count:40
    arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      let sv = Statevec.create 3 in
      Statevec.h sv 0;
      Statevec.cnot sv 0 1;
      Statevec.h sv 2;
      let q = Random.State.int r 3 in
      let o = Statevec.measure sv r q in
      let p = Statevec.prob_one sv q in
      if o then p > 1.0 -. 1e-9 else p < 1e-9)

let prop_depth_le_length =
  QCheck.Test.make ~name:"depth <= instruction count" ~count:60 arb_seed
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let c = Codes.Conjugate.random_clifford_circuit r ~n:5 ~gates:30 in
      Circuit.depth c <= Circuit.length c)

(* --- codes ----------------------------------------------------------------- *)

let prop_syndrome_linear =
  QCheck.Test.make ~name:"syndrome(e1 e2) = syndrome e1 + syndrome e2"
    ~count:80 arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      let code = Codes.Steane.code in
      let e1 = Pauli.random r 7 and e2 = Pauli.random r 7 in
      Bitvec.equal
        (Codes.Stabilizer_code.syndrome code (Pauli.mul e1 e2))
        (Bitvec.xor
           (Codes.Stabilizer_code.syndrome code e1)
           (Codes.Stabilizer_code.syndrome code e2)))

let prop_residual_class_invariant_mod_stabilizer =
  QCheck.Test.make ~name:"pauli-frame class invariant mod stabilizer"
    ~count:60 arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      let code = Codes.Steane.code in
      let e = Pauli.random r 7 in
      let g =
        code.Codes.Stabilizer_code.generators.(Random.State.int r 6)
      in
      Codes.Pauli_frame.steane_class e
      = Codes.Pauli_frame.steane_class (Pauli.mul e g))

let prop_toric_winding_stabilizer_invariant =
  QCheck.Test.make ~name:"toric winding invariant under star operators"
    ~count:40 arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      let lat = Toric.Lattice.create 5 in
      let n = Toric.Lattice.num_qubits lat in
      let e = Bitvec.create n in
      Bitvec.randomize ~p:0.1 r e;
      (* add a random star operator: a contractible loop *)
      let x = Random.State.int r 5 and y = Random.State.int r 5 in
      let e2 = Bitvec.copy e in
      List.iter (Bitvec.flip e2) (Toric.Lattice.vertex_edges lat ~x ~y);
      Toric.Lattice.winding lat e = Toric.Lattice.winding lat e2
      && Bitvec.equal (Toric.Lattice.syndrome lat e)
           (Toric.Lattice.syndrome lat e2))

let prop_concat_class_letter_lift =
  QCheck.Test.make ~name:"level-2 class of a lifted inner logical"
    ~count:40 arb_seed (fun seed ->
      let r = Random.State.make [| seed |] in
      (* a single inner-block logical operator decodes at level 2 to
         identity (the outer code corrects one 'outer qubit' error) *)
      let b = Random.State.int r 7 in
      let which = Random.State.int r 2 in
      let inner =
        if which = 0 then Pauli.of_string "XXXXXXX"
        else Pauli.of_string "ZZZZZZZ"
      in
      let e =
        Codes.Stabilizer_code.embed Codes.Steane.code ~offset:(7 * b)
          ~total:49 inner
      in
      Codes.Pauli_frame.concatenated_steane_class ~level:2 e
      = Codes.Pauli_frame.L_i)

let suites =
  [ ( "properties.group",
      [ QCheck_alcotest.to_alcotest prop_orbit_stabilizer;
        QCheck_alcotest.to_alcotest prop_class_equation;
        QCheck_alcotest.to_alcotest prop_derived_is_normal_subgroup ] );
    ( "properties.gf2",
      [ QCheck_alcotest.to_alcotest prop_double_inverse;
        QCheck_alcotest.to_alcotest prop_kernel_orthogonal_rowspace;
        QCheck_alcotest.to_alcotest prop_transpose_involution;
        QCheck_alcotest.to_alcotest prop_mul_vec_linear ] );
    ( "properties.simulators",
      [ QCheck_alcotest.to_alcotest prop_measure_pauli_repeatable;
        QCheck_alcotest.to_alcotest prop_statevec_measure_destroys_superposition;
        QCheck_alcotest.to_alcotest prop_depth_le_length ] );
    ( "properties.codes",
      [ QCheck_alcotest.to_alcotest prop_syndrome_linear;
        QCheck_alcotest.to_alcotest prop_residual_class_invariant_mod_stabilizer;
        QCheck_alcotest.to_alcotest prop_toric_winding_stabilizer_invariant;
        QCheck_alcotest.to_alcotest prop_concat_class_letter_lift ] ) ]
