(* Exhaustive single-fault injection against the §5 fault-tolerance
   criterion: for EVERY fault location of an EC gadget and EVERY fault
   the §6 model can deposit there (3 Paulis at a one-qubit gate or
   storage step, 15 pairs at a two-qubit gate, a flip at each
   preparation/measurement), one faulty EC followed by an ideal
   recovery must restore the encoded state — a single fault anywhere
   may never cause a logical error.  Both |0̄⟩ (X̄-sensitive) and
   |+̄⟩ (Z̄-sensitive) are judged, for the Steane-method and
   Shor-method gadgets.

   Mechanics (fault-path enumeration in the style of Van Rynbach et
   al., 1212.0845): a dry run under a recording hook lists the
   gadget's locations in execution order; then one fresh, noiseless,
   same-seeded run per (location, fault) pair deposits exactly that
   fault via [Sim.inject_at].  Because the hook draws no randomness,
   the run's prefix before the injection site is identical to the dry
   run, so location indices and kinds line up even through the
   gadgets' adaptive branches. *)

open Ftqc
module Code = Codes.Stabilizer_code

let check = Alcotest.(check bool)
let steane = Codes.Steane.code
let seed = 4242
let rng () = Random.State.make [| seed |]

(* perfect logical eigenstate via projection (no fault locations) *)
let prep sim ~plus =
  let n = Ft.Sim.num_qubits sim in
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g ->
      assert
        (Tableau.postselect_pauli tab
           (Code.embed steane ~offset:0 ~total:n g)
           ~outcome:false))
    steane.generators;
  let l = if plus then steane.logical_x.(0) else steane.logical_z.(0) in
  assert
    (Tableau.postselect_pauli tab
       (Code.embed steane ~offset:0 ~total:n l)
       ~outcome:false)

let judge sim ~plus =
  if plus then Ft.Sim.ideal_measure_logical_x sim steane ~offset:0
  else Ft.Sim.ideal_measure_logical_z sim steane ~offset:0

let kind_name = function
  | Ft.Sim.Gate1 q -> Printf.sprintf "gate1(%d)" q
  | Ft.Sim.Gate2 (a, b) -> Printf.sprintf "gate2(%d,%d)" a b
  | Ft.Sim.Prep q -> Printf.sprintf "prep(%d)" q
  | Ft.Sim.Meas q -> Printf.sprintf "meas(%d)" q
  | Ft.Sim.Store q -> Printf.sprintf "store(%d)" q

(* Run [gadget] once per (location, fault) pair and assert the §5
   criterion.  [fresh ()] must rebuild an identically-seeded
   simulator so the prefix before the injection site replays the dry
   run exactly. *)
let enumerate ~what ~fresh ~gadget ~plus =
  let sim0 = fresh () in
  prep sim0 ~plus;
  let (), locs = Ft.Sim.record_locations sim0 (fun () -> gadget sim0) in
  check
    (Printf.sprintf "%s: dry run enumerates locations" what)
    true
    (Array.length locs > 0);
  let pairs = ref 0 in
  Array.iteri
    (fun location kind ->
      List.iteri
        (fun fi fault ->
          incr pairs;
          let sim = fresh () in
          prep sim ~plus;
          Ft.Sim.inject_at sim ~location fault;
          gadget sim;
          Ft.Sim.set_location_hook sim None;
          let faults = Ft.Sim.fault_count sim in
          (* adaptive branches can legitimately end a run before the
             site is reached; then the run was clean *)
          check
            (Printf.sprintf "%s: at most the one injected fault" what)
            true (faults <= 1);
          if judge sim ~plus then
            Alcotest.failf
              "%s: single fault at location %d [%s, fault #%d] causes a \
               logical error (basis %s)"
              what location (kind_name kind) fi
              (if plus then "|+>" else "|0>"))
        (Ft.Sim.faults_of_kind kind))
    locs;
  !pairs

let steane_gadget sim =
  ignore
    (Ft.Steane_ec.recover sim ~policy:Ft.Steane_ec.Repeat_if_nontrivial
       ~verify:Ft.Steane_ec.Reject ~data:0 ~ancilla:7 ~checker:14)

let shor_gadget sim =
  ignore
    (Ft.Shor_ec.recover sim steane ~policy:Ft.Shor_ec.Repeat_if_nontrivial
       ~offset:0 ~cat_base:7 ~check:11 ~verified:true)

let fresh_steane () = Ft.Sim.create ~n:21 ~noise:Ft.Noise.none (rng ())
let fresh_shor () = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none (rng ())

let test_steane_ec_single_fault_zero () =
  ignore
    (enumerate ~what:"steane-ec" ~fresh:fresh_steane ~gadget:steane_gadget
       ~plus:false)

let test_steane_ec_single_fault_plus () =
  ignore
    (enumerate ~what:"steane-ec" ~fresh:fresh_steane ~gadget:steane_gadget
       ~plus:true)

let test_shor_ec_single_fault_zero () =
  ignore
    (enumerate ~what:"shor-ec" ~fresh:fresh_shor ~gadget:shor_gadget
       ~plus:false)

let test_shor_ec_single_fault_plus () =
  ignore
    (enumerate ~what:"shor-ec" ~fresh:fresh_shor ~gadget:shor_gadget
       ~plus:true)

(* the location machinery itself: recording is invisible (no faults,
   same final state as a bare run), and the fault menu per kind
   matches the §6 model's cardinalities *)
let test_fault_menu () =
  Alcotest.(check int)
    "gate1 menu" 3
    (List.length (Ft.Sim.faults_of_kind (Ft.Sim.Gate1 0)));
  Alcotest.(check int)
    "gate2 menu" 15
    (List.length (Ft.Sim.faults_of_kind (Ft.Sim.Gate2 (0, 1))));
  Alcotest.(check int)
    "store menu" 3
    (List.length (Ft.Sim.faults_of_kind (Ft.Sim.Store 0)));
  Alcotest.(check int)
    "prep menu" 1
    (List.length (Ft.Sim.faults_of_kind (Ft.Sim.Prep 0)));
  Alcotest.(check int)
    "meas menu" 1
    (List.length (Ft.Sim.faults_of_kind (Ft.Sim.Meas 0)))

let test_recording_is_invisible () =
  let run record =
    let sim = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none (rng ()) in
    prep sim ~plus:false;
    if record then begin
      let (), locs = Ft.Sim.record_locations sim (fun () -> shor_gadget sim) in
      check "locations recorded" true (Array.length locs > 0)
    end
    else shor_gadget sim;
    (Ft.Sim.fault_count sim, judge sim ~plus:false)
  in
  check "recording draws nothing and injects nothing" true
    (run true = run false)

let test_inject_at_lands_exactly_once () =
  let sim0 = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none (rng ()) in
  prep sim0 ~plus:false;
  let (), locs = Ft.Sim.record_locations sim0 (fun () -> shor_gadget sim0) in
  let fault = List.hd (Ft.Sim.faults_of_kind locs.(0)) in
  let sim = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none (rng ()) in
  prep sim ~plus:false;
  Ft.Sim.inject_at sim ~location:0 fault;
  shor_gadget sim;
  Ft.Sim.set_location_hook sim None;
  Alcotest.(check int) "exactly one fault" 1 (Ft.Sim.fault_count sim)

let suites =
  [ ( "ft.inject",
      [ Alcotest.test_case "fault menus (3/15/1/1)" `Quick test_fault_menu;
        Alcotest.test_case "recording is invisible" `Quick
          test_recording_is_invisible;
        Alcotest.test_case "inject_at lands once" `Quick
          test_inject_at_lands_exactly_once;
        Alcotest.test_case "steane EC single-fault FT, |0>" `Quick
          test_steane_ec_single_fault_zero;
        Alcotest.test_case "steane EC single-fault FT, |+>" `Quick
          test_steane_ec_single_fault_plus;
        Alcotest.test_case "shor EC single-fault FT, |0>" `Quick
          test_shor_ec_single_fault_zero;
        Alcotest.test_case "shor EC single-fault FT, |+>" `Quick
          test_shor_ec_single_fault_plus ] ) ]
