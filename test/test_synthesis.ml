open Ftqc
module Perm = Group.Perm
module Syn = Anyon.Synthesis

let check = Alcotest.(check bool)

let test_apply_program () =
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  let fluxes = [| u0; v |] in
  let out =
    Syn.apply_program ~fluxes [ { Syn.outer = 1; inner = 0; dir = `Fwd } ]
  in
  check "pull-through move" true (Perm.equal out.(0) u1);
  check "outer untouched" true (Perm.equal out.(1) v);
  (* Fwd then Bwd is the identity *)
  let back =
    Syn.apply_program ~fluxes:out [ { Syn.outer = 1; inner = 0; dir = `Bwd } ]
  in
  check "bwd undoes fwd" true (Perm.equal back.(0) u0)

let test_not_rediscovered () =
  match Syn.not_via_pull_through () with
  | Some [ { Syn.outer = 1; inner = 0; dir = _ } ] -> ()
  | Some prog ->
    Alcotest.failf "unexpected NOT program of length %d" (List.length prog)
  | None -> Alcotest.fail "NOT not found"

let test_identity_program () =
  (* the identity target is realized by the empty program *)
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  match
    Syn.search ~encodings:[ (u0, u1) ] ~ancillas:[ v ]
      ~targets:(fun bits -> bits) ~max_depth:2
  with
  | Some [] -> ()
  | Some prog ->
    Alcotest.failf "identity needed %d moves" (List.length prog)
  | None -> Alcotest.fail "identity not found"

let test_no_cnot_small_depth () =
  check "no bare 2-register CNOT (depth 6, exhaustive)" true
    (Syn.no_cnot_without_ancilla ~max_depth:6)

let test_double_not () =
  (* NOT on both of two registers sharing one v-ancilla: 2 moves *)
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  match
    Syn.search
      ~encodings:[ (u0, u1); (u0, u1) ]
      ~ancillas:[ v ]
      ~targets:(function [ a; b ] -> [ not a; not b ] | _ -> assert false)
      ~max_depth:3
  with
  | Some prog -> check "double NOT in 2 moves" true (List.length prog = 2)
  | None -> Alcotest.fail "double NOT not found"

let test_search_respects_depth () =
  (* with max_depth 0 only the identity is reachable *)
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  check "NOT unreachable at depth 0" true
    (Syn.search ~encodings:[ (u0, u1) ] ~ancillas:[ v ]
       ~targets:(function [ b ] -> [ not b ] | _ -> assert false)
       ~max_depth:0
    = None)

let suites =
  [ ( "anyon.synthesis",
      [ Alcotest.test_case "apply program" `Quick test_apply_program;
        Alcotest.test_case "NOT rediscovered" `Quick test_not_rediscovered;
        Alcotest.test_case "identity program" `Quick test_identity_program;
        Alcotest.test_case "no bare CNOT" `Quick test_no_cnot_small_depth;
        Alcotest.test_case "double NOT" `Quick test_double_not;
        Alcotest.test_case "depth bound respected" `Quick
          test_search_respects_depth ] ) ]
