open Ftqc
module Conj = Codes.Conjugate
module Code = Codes.Stabilizer_code

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 139 |]

let test_known_rules () =
  let p = Pauli.of_string in
  let g = Circuit.Cnot (0, 1) in
  (* §3.1: X on the source spreads forward *)
  check "CNOT: X_c -> X_c X_t" true (Pauli.equal (Conj.gate g (p "XI")) (p "XX"));
  check "CNOT: X_t fixed" true (Pauli.equal (Conj.gate g (p "IX")) (p "IX"));
  (* and Z on the target spreads backward *)
  check "CNOT: Z_t -> Z_c Z_t" true (Pauli.equal (Conj.gate g (p "IZ")) (p "ZZ"));
  check "CNOT: Z_c fixed" true (Pauli.equal (Conj.gate g (p "ZI")) (p "ZI"));
  check "H: X -> Z" true (Pauli.equal (Conj.gate (Circuit.H 0) (p "X")) (p "Z"));
  check "H: Y -> -Y" true (Pauli.equal (Conj.gate (Circuit.H 0) (p "Y")) (p "-Y"));
  check "S: X -> Y" true (Pauli.equal (Conj.gate (Circuit.S 0) (p "X")) (p "Y"));
  check "S: Y -> -X" true (Pauli.equal (Conj.gate (Circuit.S 0) (p "Y")) (p "-X"));
  check "X: Z -> -Z" true (Pauli.equal (Conj.gate (Circuit.X 0) (p "Z")) (p "-Z"));
  check "CZ: X_a -> X_a Z_b" true
    (Pauli.equal (Conj.gate (Circuit.Cz (0, 1)) (p "XI")) (p "XZ"));
  check "SWAP exchanges" true
    (Pauli.equal (Conj.gate (Circuit.Swap (0, 1)) (p "XZ")) (p "ZX"))

let random_clifford r n gates = Conj.random_clifford_circuit r ~n ~gates

let prop_statevec_agreement =
  QCheck.Test.make ~name:"conjugation = statevec evolution (exact phase)"
    ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let n = 4 in
      let c = random_clifford r n 15 in
      let p = Pauli.random r n in
      let a = Statevec.create n in
      Statevec.h a 0;
      Statevec.cnot a 0 1;
      Statevec.s_gate a 2;
      Statevec.h a 3;
      Statevec.cnot a 2 3;
      let b = Statevec.copy a in
      Statevec.apply_pauli a p;
      ignore (Statevec.run a c);
      ignore (Statevec.run b c);
      Statevec.apply_pauli b (Conj.circuit c p);
      Qmath.Cx.approx (Statevec.inner a b) Qmath.Cx.one)

let prop_homomorphism =
  QCheck.Test.make ~name:"conj (P·Q) = conj P · conj Q" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let n = 5 in
      let c = random_clifford r n 20 in
      let p = Pauli.random r n and q = Pauli.random r n in
      Pauli.equal
        (Conj.circuit c (Pauli.mul p q))
        (Pauli.mul (Conj.circuit c p) (Conj.circuit c q)))

let prop_inverse_circuit =
  QCheck.Test.make ~name:"conj by U then U⁻¹ is the identity" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let n = 5 in
      let c = random_clifford r n 20 in
      let p = Pauli.random r n in
      Pauli.equal (Conj.circuit (Circuit.inverse c) (Conj.circuit c p)) p)

let prop_commutation_preserved =
  QCheck.Test.make ~name:"conjugation preserves commutation" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let n = 5 in
      let c = random_clifford r n 20 in
      let p = Pauli.random r n and q = Pauli.random r n in
      Bool.equal (Pauli.commutes p q)
        (Pauli.commutes (Conj.circuit c p) (Conj.circuit c q)))

(* --- random codes ------------------------------------------------------- *)

let prop_random_codes_valid =
  QCheck.Test.make ~name:"random codes validate and prepare" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let n = 4 + Random.State.int r 3 in
      let k = 1 + Random.State.int r 2 in
      if k >= n then true
      else begin
        (* make validates internally; prep must stabilize everything *)
        let code = Codes.Random_code.generate r ~n ~k ~gates:30 in
        let tab = Code.prepare_logical_zero code in
        Array.for_all
          (fun g -> Tableau.expectation tab g = Some true)
          code.Code.generators
        && Array.for_all
             (fun z -> Tableau.expectation tab z = Some true)
             code.Code.logical_z
      end)

let prop_random_code_logicals_are_logical =
  QCheck.Test.make ~name:"random code logicals classify as logical" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let code = Codes.Random_code.generate r ~n:5 ~k:1 ~gates:25 in
      Code.classify code code.Code.logical_z.(0) = `Logical
      && Code.classify code code.Code.logical_x.(0) = `Logical
      && Code.classify code
           (Pauli.mul code.Code.generators.(0) code.Code.generators.(1))
         = `Stabilizer)

let prop_random_code_encoder =
  QCheck.Test.make ~name:"measurement encoder works on random codes"
    ~count:15
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let r = Random.State.make [| seed |] in
      let code = Codes.Random_code.generate r ~n:5 ~k:1 ~gates:25 in
      let c = Code.encoding_circuit_via_measurement code in
      let sv = Statevec.create 6 in
      ignore (Statevec.run ~rng:r sv c);
      Array.for_all
        (fun g ->
          Float.abs
            (Statevec.expectation sv (Code.embed code ~offset:0 ~total:6 g)
            -. 1.0)
          < 1e-9)
        code.Code.generators)

let test_decoding_circuit () =
  (* the conjugating circuit's inverse maps the code back to the
     trivial one: conjugating a generator by U⁻¹ gives ±Z_i *)
  let r = rng () in
  let code, c = Codes.Random_code.generate_with_circuit r ~n:5 ~k:1 ~gates:30 in
  let inv = Circuit.inverse c in
  Array.iteri
    (fun i g ->
      let back = Conj.circuit inv g in
      let expected = Pauli.single 5 i Pauli.Z in
      check "decodes to a trivial generator" true
        (Pauli.equal_up_to_phase back expected))
    code.Code.generators

let suites =
  [ ( "codes.conjugate",
      [ Alcotest.test_case "known rules" `Quick test_known_rules;
        QCheck_alcotest.to_alcotest prop_statevec_agreement;
        QCheck_alcotest.to_alcotest prop_homomorphism;
        QCheck_alcotest.to_alcotest prop_inverse_circuit;
        QCheck_alcotest.to_alcotest prop_commutation_preserved ] );
    ( "codes.random_code",
      [ QCheck_alcotest.to_alcotest prop_random_codes_valid;
        QCheck_alcotest.to_alcotest prop_random_code_logicals_are_logical;
        QCheck_alcotest.to_alcotest prop_random_code_encoder;
        Alcotest.test_case "decoding circuit" `Quick test_decoding_circuit ] )
  ]
