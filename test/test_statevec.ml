open Ftqc
module Sv = Statevec
module Cx = Qmath.Cx

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 17 |]

let test_initial_state () =
  let sv = Sv.create 3 in
  check "amp 0 = 1" true (Cx.approx (Sv.amplitude sv 0) Cx.one);
  check "norm 1" true (Float.abs (Sv.norm sv -. 1.0) < 1e-12)

let test_bell_state () =
  let sv = Sv.create 2 in
  Sv.h sv 0;
  Sv.cnot sv 0 1;
  let s = Cx.re (1.0 /. sqrt 2.0) in
  check "amp 00" true (Cx.approx (Sv.amplitude sv 0) s);
  check "amp 11" true (Cx.approx (Sv.amplitude sv 3) s);
  check "amp 01" true (Cx.approx (Sv.amplitude sv 1) Cx.zero);
  (* measurement correlations *)
  let r = rng () in
  for _ = 1 to 20 do
    let sv = Sv.create 2 in
    Sv.h sv 0;
    Sv.cnot sv 0 1;
    let a = Sv.measure sv r 0 in
    let b = Sv.measure sv r 1 in
    check "bell correlated" true (a = b)
  done

let test_gates_vs_matrices () =
  (* applying the dedicated gate = applying its matrix via apply_1q *)
  let r = rng () in
  List.iter
    (fun (name, direct, matrix) ->
      let a = Sv.create 3 in
      (* randomize the state with a few gates *)
      Sv.h a 0;
      Sv.cnot a 0 1;
      Sv.s_gate a 2;
      Sv.h a 2;
      let b = Sv.copy a in
      direct a 1;
      Sv.apply_1q b matrix 1;
      check (name ^ " matches matrix") true
        (Float.abs (Sv.fidelity a b -. 1.0) < 1e-9))
    [ ("x", Sv.x, Qmath.Gates.x); ("y", Sv.y, Qmath.Gates.y);
      ("z", Sv.z, Qmath.Gates.z); ("h", Sv.h, Qmath.Gates.h);
      ("s", Sv.s_gate, Qmath.Gates.s); ("sdg", Sv.sdg, Qmath.Gates.sdg) ];
  ignore r

let test_toffoli_basis () =
  for input = 0 to 7 do
    let sv = Sv.basis ~n:3 ~index:input in
    Sv.toffoli sv 0 1 2;
    (* qubits 0,1 control (bits 0,1), target bit 2 *)
    let expected = if input land 3 = 3 then input lxor 4 else input in
    check "toffoli basis" true (Cx.approx (Sv.amplitude sv expected) Cx.one)
  done

let test_swap_cz () =
  let sv = Sv.basis ~n:2 ~index:1 in
  Sv.swap sv 0 1;
  check "swap |01> -> |10>" true (Cx.approx (Sv.amplitude sv 2) Cx.one);
  let sv = Sv.basis ~n:2 ~index:3 in
  Sv.cz sv 0 1;
  check "cz phases |11>" true (Cx.approx (Sv.amplitude sv 3) Cx.minus_one)

let test_measurement_statistics () =
  let r = rng () in
  let ones = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    let sv = Sv.create 1 in
    Sv.h sv 0;
    if Sv.measure sv r 0 then incr ones
  done;
  let f = float_of_int !ones /. float_of_int n in
  check "|+> measures 1 half the time" true (Float.abs (f -. 0.5) < 0.05)

let test_postselect () =
  let sv = Sv.create 2 in
  Sv.h sv 0;
  Sv.cnot sv 0 1;
  let p = Sv.postselect sv 0 true in
  check "postselect prob" true (Float.abs (p -. 0.5) < 1e-9);
  check "collapsed to |11>" true (Cx.approx (Sv.amplitude sv 3) Cx.one)

let test_expectation () =
  let sv = Sv.create 2 in
  Sv.h sv 0;
  Sv.cnot sv 0 1;
  check "<XX> = 1" true
    (Float.abs (Sv.expectation sv (Pauli.of_string "XX") -. 1.0) < 1e-9);
  check "<ZZ> = 1" true
    (Float.abs (Sv.expectation sv (Pauli.of_string "ZZ") -. 1.0) < 1e-9);
  check "<ZI> = 0" true
    (Float.abs (Sv.expectation sv (Pauli.of_string "ZI")) < 1e-9);
  check "<YY> = -1" true
    (Float.abs (Sv.expectation sv (Pauli.of_string "YY") +. 1.0) < 1e-9)

let test_apply_pauli_phase () =
  let sv = Sv.create 1 in
  Sv.apply_pauli sv (Pauli.of_string "-Z");
  check "global phase -1 on |0>" true
    (Cx.approx (Sv.amplitude sv 0) Cx.minus_one)

let test_run_circuit_cond () =
  (* teleport-like conditional: measure a qubit and conditionally
     flip another *)
  let open Circuit in
  let c = create ~num_cbits:1 ~num_qubits:2 () in
  let c = add_gate c (X 0) in
  let c = add c (Measure { qubit = 0; cbit = 0 }) in
  let c = add c (Cond { cbit = 0; gate = X 1 }) in
  let sv = Sv.create 2 in
  let cbits = Sv.run ~rng:(rng ()) sv c in
  check "cbit recorded" true cbits.(0);
  check "conditional applied" true (Cx.approx (Sv.amplitude sv 3) Cx.one)

let test_norm_preserved_random_circuits () =
  let r = rng () in
  for _ = 1 to 20 do
    let sv = Sv.create 4 in
    for _ = 1 to 40 do
      match Random.State.int r 5 with
      | 0 -> Sv.h sv (Random.State.int r 4)
      | 1 -> Sv.s_gate sv (Random.State.int r 4)
      | 2 ->
        let a = Random.State.int r 4 in
        let b = (a + 1 + Random.State.int r 3) mod 4 in
        Sv.cnot sv a b
      | 3 ->
        let a = Random.State.int r 4 in
        let b = (a + 1 + Random.State.int r 3) mod 4 in
        Sv.cz sv a b
      | _ -> Sv.y sv (Random.State.int r 4)
    done;
    check "norm preserved" true (Float.abs (Sv.norm sv -. 1.0) < 1e-9)
  done

let test_partial_trace () =
  (* product state: every subsystem pure *)
  let sv = Sv.create 3 in
  Sv.h sv 0;
  Sv.s_gate sv 1;
  check "product purity 1" true (Float.abs (Sv.purity sv ~keep:[ 0 ] -. 1.0) < 1e-9);
  (* Bell pair: each side maximally mixed *)
  let sv = Sv.create 2 in
  Sv.h sv 0;
  Sv.cnot sv 0 1;
  check "bell half purity 1/2" true
    (Float.abs (Sv.purity sv ~keep:[ 0 ] -. 0.5) < 1e-9);
  let rho = Sv.reduced_density_matrix sv ~keep:[ 0 ] in
  check "bell half = I/2" true
    (Qmath.Cmat.equal rho
       (Qmath.Cmat.smul (Qmath.Cx.re 0.5) (Qmath.Cmat.identity 2)));
  (* GHZ: any two qubits are classically correlated, purity 1/2 *)
  let sv = Sv.create 3 in
  Sv.h sv 0;
  Sv.cnot sv 0 1;
  Sv.cnot sv 1 2;
  check "ghz pair purity 1/2" true
    (Float.abs (Sv.purity sv ~keep:[ 0; 1 ] -. 0.5) < 1e-9);
  (* trace of any reduced state is 1 *)
  check "trace one" true
    (Qmath.Cx.approx
       (Qmath.Cmat.trace (Sv.reduced_density_matrix sv ~keep:[ 1; 2 ]))
       Qmath.Cx.one)

let test_equal_up_to_phase () =
  let a = Sv.create 2 in
  Sv.h a 0;
  let b = Sv.copy a in
  Sv.apply_pauli b (Pauli.of_string "-II");
  check "global phase ignored" true (Sv.equal_up_to_phase a b);
  Sv.x b 1;
  check "different states" false (Sv.equal_up_to_phase a b)

let suites =
  [ ( "statevec",
      [ Alcotest.test_case "initial state" `Quick test_initial_state;
        Alcotest.test_case "bell state" `Quick test_bell_state;
        Alcotest.test_case "gates vs matrices" `Quick test_gates_vs_matrices;
        Alcotest.test_case "toffoli" `Quick test_toffoli_basis;
        Alcotest.test_case "swap/cz" `Quick test_swap_cz;
        Alcotest.test_case "measurement stats" `Quick test_measurement_statistics;
        Alcotest.test_case "postselect" `Quick test_postselect;
        Alcotest.test_case "expectation" `Quick test_expectation;
        Alcotest.test_case "pauli phase" `Quick test_apply_pauli_phase;
        Alcotest.test_case "classical control" `Quick test_run_circuit_cond;
        Alcotest.test_case "norm preservation" `Quick
          test_norm_preserved_random_circuits;
        Alcotest.test_case "partial trace" `Quick test_partial_trace;
        Alcotest.test_case "equal up to phase" `Quick test_equal_up_to_phase ] )
  ]
