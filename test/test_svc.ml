(* lib/svc — the persistent estimation service.  The load-bearing
   properties: the canonical request encoding is order- and
   default-insensitive (it is the cache/coalescing key), the codec
   never mis-parses a damaged frame, the LRU cache and bounded queue
   keep their contracts, and above all a cached, coalesced or fresh
   reply to the same canonical request is byte-identical to a direct
   library run with the same parameters and seed. *)

open Ftqc
module Protocol = Svc.Protocol
module Json = Obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let toric_est ?(l = 6) ?(p = 0.08) ?(trials = 400) ?(seed = 7)
    ?(engine = (`Scalar : Protocol.engine)) () =
  Protocol.Toric_memory { l; p; trials; seed; engine; tile_width = 64 }

(* ---------------------------------------------------- canonicalize *)

let all_estimators =
  [
    Protocol.Steane_memory
      { level = 2; eps = 0.01; rounds = 1; trials = 50; seed = 1;
        engine = `Batch; tile_width = 64 };
    Protocol.Steane_memory
      { level = 2; eps = 0.01; rounds = 1; trials = 50; seed = 1;
        engine = `Batch; tile_width = 256 };
    toric_est ();
    Protocol.Toric_scan
      { ls = [ 4; 6 ]; ps = [ 0.05; 0.1 ]; trials = 20; seed = 3;
        engine = `Scalar; tile_width = 64 };
    Protocol.Toric_noisy
      { l = 4; rounds = 4; p = 0.02; q = 0.02; trials = 20; seed = 4;
        engine = `Scalar; tile_width = 64 };
    Protocol.Toric_circuit
      { l = 4; rounds = 4; eps = 0.002; trials = 10; seed = 5;
        engine = `Scalar };
    Protocol.Toric_circuit
      { l = 4; rounds = 4; eps = 0.002; trials = 10; seed = 5;
        engine = `Rare { max_weight = 3; samples_per_class = 500 } };
    toric_est ~engine:(`Rare Protocol.default_rare) ();
    toric_est ~engine:(`Rare { max_weight = 2; samples_per_class = 100 }) ();
    Protocol.Steane_memory
      { level = 2; eps = 0.01; rounds = 1; trials = 50; seed = 1;
        engine = `Rare { max_weight = 3; samples_per_class = 250 };
        tile_width = 64 };
    Protocol.Pseudothreshold
      { eps_list = [ 1e-3; 2e-3 ]; trials = 30; seed = 6 };
    Protocol.Css_memory
      { code = "steane7"; eps = 0.02; rounds = 1; trials = 40; seed = 8;
        engine = `Scalar; tile_width = 64 };
    Protocol.Css_memory
      { code = "golay23"; eps = 0.02; rounds = 2; trials = 40; seed = 8;
        engine = `Batch; tile_width = 256 };
  ]

let test_request_roundtrip () =
  List.iter
    (fun est ->
      let req = Protocol.Run est in
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' ->
        check_str
          (Protocol.estimator_name est ^ " canonical survives round trip")
          (Protocol.to_canonical req) (Protocol.to_canonical req')
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)
    (all_estimators
    @ []);
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' -> check "control request round trips" true (req = req')
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)
    [ Protocol.Status; Protocol.Ping; Protocol.Shutdown ]

(* field order must not matter, and the defaulted engine field must
   canonicalize to the same key as the explicit one *)
let test_canonical_insensitive () =
  let reordered =
    Json.Obj
      [ ("seed", Json.Int 7); ("p", Json.Float 0.08); ("trials", Json.Int 400);
        ("type", Json.String "toric_memory"); ("l", Json.Int 6) ]
  in
  match Protocol.request_of_json reordered with
  | Error msg -> Alcotest.failf "reordered request rejected: %s" msg
  | Ok req ->
    check_str "reordered + defaulted request has the same canonical key"
      (Protocol.to_canonical (Run (toric_est ())))
      (Protocol.to_canonical req);
    check_str "and the same hash"
      (Protocol.hash (Run (toric_est ())))
      (Protocol.hash req);
    (* tile_width 64 is the default and must stay *out* of the
       canonical form: pre-tile cache keys survive the extension *)
    let batch64 =
      Protocol.Run
        (Toric_memory
           { l = 6; p = 0.08; trials = 400; seed = 7; engine = `Batch;
             tile_width = 64 })
    in
    let pre_tile =
      Json.Obj
        [ ("type", Json.String "toric_memory"); ("l", Json.Int 6);
          ("p", Json.Float 0.08); ("trials", Json.Int 400);
          ("seed", Json.Int 7); ("engine", Json.String "batch") ]
    in
    (match Protocol.request_of_json pre_tile with
    | Error msg -> Alcotest.failf "pre-tile request rejected: %s" msg
    | Ok req ->
      check_str "default tile_width canonicalizes to the pre-tile key"
        (Protocol.to_canonical batch64)
        (Protocol.to_canonical req);
      check "pre-tile canonical bytes carry no tile_width field" false
        (let canon = Protocol.to_canonical batch64 in
         let needle = "tile_width" in
         let n = String.length canon and m = String.length needle in
         let found = ref false in
         for i = 0 to n - m do
           if String.sub canon i m = needle then found := true
         done;
         !found));
    (* a non-default width is a different computation schedule and
       must get its own key *)
    let batch256 =
      Protocol.Run
        (Toric_memory
           { l = 6; p = 0.08; trials = 400; seed = 7; engine = `Batch;
             tile_width = 256 })
    in
    check "width 256 gets its own canonical key" false
      (Protocol.to_canonical batch64 = Protocol.to_canonical batch256)

(* the rare extension must not move any pre-rare cache key: default
   rare parameters stay out of the canonical form, and a scalar
   toric_circuit request canonicalizes without an engine field at
   all *)
let test_canonical_rare () =
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let found = ref false in
    for i = 0 to n - m do
      if String.sub hay i m = needle then found := true
    done;
    !found
  in
  (* defaulted rare params canonicalize to the bare engine key *)
  let rare_default = Protocol.Run (toric_est ~engine:(`Rare Protocol.default_rare) ()) in
  let bare =
    Json.Obj
      [ ("type", Json.String "toric_memory"); ("l", Json.Int 6);
        ("p", Json.Float 0.08); ("trials", Json.Int 400);
        ("seed", Json.Int 7); ("engine", Json.String "rare") ]
  in
  (match Protocol.request_of_json bare with
  | Error msg -> Alcotest.failf "bare rare request rejected: %s" msg
  | Ok req ->
    check_str "defaulted rare params canonicalize to the bare key"
      (Protocol.to_canonical rare_default)
      (Protocol.to_canonical req));
  check "default rare canonical bytes carry no max_weight field" false
    (contains (Protocol.to_canonical rare_default) "max_weight");
  (* non-default truncation order is a different computation *)
  let rare3 =
    Protocol.Run
      (toric_est ~engine:(`Rare { max_weight = 3; samples_per_class = 2000 }) ())
  in
  check "non-default max_weight gets its own key" false
    (Protocol.to_canonical rare_default = Protocol.to_canonical rare3);
  (* pre-rare toric_circuit requests: the engine field is new and must
     stay out of the canonical form when scalar *)
  let circuit_scalar =
    Protocol.Run
      (Toric_circuit
         { l = 4; rounds = 4; eps = 0.002; trials = 10; seed = 5;
           engine = `Scalar })
  in
  let pre_rare =
    Json.Obj
      [ ("type", Json.String "toric_circuit"); ("l", Json.Int 4);
        ("rounds", Json.Int 4); ("eps", Json.Float 0.002);
        ("trials", Json.Int 10); ("seed", Json.Int 5) ]
  in
  (match Protocol.request_of_json pre_rare with
  | Error msg -> Alcotest.failf "pre-rare circuit request rejected: %s" msg
  | Ok req ->
    check_str "scalar circuit canonicalizes to the pre-rare key"
      (Protocol.to_canonical circuit_scalar)
      (Protocol.to_canonical req));
  check "scalar circuit canonical bytes carry no engine field" false
    (contains (Protocol.to_canonical circuit_scalar) "engine")

let expect_reject name j =
  match Protocol.request_of_json j with
  | Ok _ -> Alcotest.failf "%s: should have been rejected" name
  | Error _ -> ()

let test_validation () =
  let base =
    [ ("type", Json.String "toric_memory"); ("l", Json.Int 6);
      ("p", Json.Float 0.08); ("trials", Json.Int 400); ("seed", Json.Int 7) ]
  in
  expect_reject "unknown field"
    (Json.Obj (base @ [ ("bogus", Json.Int 1) ]));
  expect_reject "bad probability"
    (Json.Obj
       (("p", Json.Float 1.5) :: List.remove_assoc "p" base));
  expect_reject "zero trials"
    (Json.Obj (("trials", Json.Int 0) :: List.remove_assoc "trials" base));
  expect_reject "bad engine"
    (Json.Obj (base @ [ ("engine", Json.String "turbo") ]));
  expect_reject "tile_width not a multiple of 64"
    (Json.Obj
       (base
       @ [ ("engine", Json.String "batch"); ("tile_width", Json.Int 100) ]));
  expect_reject "tile_width zero"
    (Json.Obj
       (base @ [ ("engine", Json.String "batch"); ("tile_width", Json.Int 0) ]));
  expect_reject "tile_width on the scalar engine"
    (Json.Obj (base @ [ ("tile_width", Json.Int 256) ]));
  expect_reject "max_weight on the scalar engine"
    (Json.Obj (base @ [ ("max_weight", Json.Int 3) ]));
  expect_reject "samples_per_class on the batch engine"
    (Json.Obj
       (base
       @ [ ("engine", Json.String "batch"); ("samples_per_class", Json.Int 5) ]));
  expect_reject "zero max_weight"
    (Json.Obj
       (base @ [ ("engine", Json.String "rare"); ("max_weight", Json.Int 0) ]));
  expect_reject "zero samples_per_class"
    (Json.Obj
       (base
       @ [ ("engine", Json.String "rare"); ("samples_per_class", Json.Int 0) ]));
  expect_reject "tile_width on the rare engine"
    (Json.Obj
       (base
       @ [ ("engine", Json.String "rare"); ("tile_width", Json.Int 256) ]));
  expect_reject "rare engine on toric_noisy"
    (Json.Obj
       [ ("type", Json.String "toric_noisy"); ("l", Json.Int 4);
         ("rounds", Json.Int 4); ("p", Json.Float 0.02);
         ("q", Json.Float 0.02); ("trials", Json.Int 20);
         ("seed", Json.Int 4); ("engine", Json.String "rare") ]);
  expect_reject "batch engine on toric_circuit"
    (Json.Obj
       [ ("type", Json.String "toric_circuit"); ("l", Json.Int 4);
         ("rounds", Json.Int 4); ("eps", Json.Float 0.002);
         ("trials", Json.Int 10); ("seed", Json.Int 5);
         ("engine", Json.String "batch") ]);
  expect_reject "unknown type"
    (Json.Obj [ ("type", Json.String "alchemy") ]);
  expect_reject "empty scan"
    (Json.Obj
       [ ("type", Json.String "toric_scan"); ("ls", Json.List []);
         ("ps", Json.List [ Json.Float 0.1 ]); ("trials", Json.Int 1);
         ("seed", Json.Int 0) ]);
  let css_base =
    [ ("type", Json.String "css_memory"); ("code", Json.String "steane7");
      ("eps", Json.Float 0.02); ("rounds", Json.Int 1);
      ("trials", Json.Int 40); ("seed", Json.Int 8) ]
  in
  expect_reject "rare engine on css_memory"
    (Json.Obj (css_base @ [ ("engine", Json.String "rare") ]));
  expect_reject "unknown zoo code"
    (Json.Obj
       (("code", Json.String "nosuch") :: List.remove_assoc "code" css_base));
  expect_reject "zero rounds on css_memory"
    (Json.Obj (("rounds", Json.Int 0) :: List.remove_assoc "rounds" css_base))

let test_payload_roundtrip () =
  let e = Mc.Stats.estimate ~failures:3 ~trials:100 () in
  let payloads =
    [
      Protocol.Estimate { name = "cell"; estimate = e };
      Protocol.Cells
        [ { name = "a"; estimate = e }; { name = "b"; estimate = e } ];
      Protocol.Fit
        { cells = [ { name = "a"; estimate = e } ]; a = 21.0;
          threshold = 1.0 /. 21.0 };
    ]
  in
  List.iter
    (fun p ->
      match Protocol.payload_of_json (Protocol.payload_to_json p) with
      | Ok p' ->
        check_str "payload round trips"
          (Json.to_string (Protocol.payload_to_json p))
          (Json.to_string (Protocol.payload_to_json p'))
      | Error msg -> Alcotest.failf "payload round trip: %s" msg)
    payloads;
  (* a non-finite fit value encodes as null and comes back nan,
     and is dropped from manifest rows — like the driver does *)
  let degenerate =
    Protocol.Fit { cells = [ { name = "a"; estimate = e } ]; a = 0.0;
                   threshold = infinity }
  in
  let reparsed =
    (* through the wire encoding: infinity serializes as null *)
    match Json.of_string (Json.to_string (Protocol.payload_to_json degenerate))
    with
    | Ok j -> Protocol.payload_of_json j
    | Error msg -> Error msg
  in
  match reparsed with
  | Error msg -> Alcotest.failf "degenerate fit: %s" msg
  | Ok (Fit f) ->
    check "infinite threshold decodes as nan" true (Float.is_nan f.threshold);
    check_int "non-finite fit values dropped from manifest rows" 2
      (List.length (Protocol.manifest_results degenerate))
  | Ok _ -> Alcotest.fail "degenerate fit decoded to the wrong payload"

(* ---------------------------------------------------------- codec *)

let test_codec_roundtrip () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let j = Protocol.request_frame (Run (toric_est ())) in
      Svc.Codec.write a j;
      (match Svc.Codec.read b with
      | Ok (j', raw) ->
        check_str "frame round trips" (Json.to_string j) (Json.to_string j');
        check_str "raw bytes are the deterministic rendering"
          (Svc.Codec.encode j) raw
      | Error _ -> Alcotest.fail "codec read failed");
      (* clean close between frames *)
      Unix.close b;
      check "clean EOF reads as `Closed" true
        (match Svc.Codec.read a with Error `Closed -> true | _ -> false))

let test_codec_truncated () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close a)
    (fun () ->
      (* a length header promising more bytes than ever arrive *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 64l;
      let n = Unix.write b header 0 4 in
      check_int "header written" 4 n;
      let _ = Unix.write_substring b "{}" 0 2 in
      Unix.close b;
      check "mid-frame close is `Bad, not `Closed" true
        (match Svc.Codec.read a with Error (`Bad _) -> true | _ -> false))

(* ---------------------------------------------------------- cache *)

let test_cache_lru () =
  let c = Svc.Cache.create ~capacity:2 in
  Svc.Cache.add c "a" 1;
  Svc.Cache.add c "b" 2;
  check "a present" true (Svc.Cache.find c "a" = Some 1);
  (* "a" is now MRU; inserting "c" must evict "b" *)
  Svc.Cache.add c "c" 3;
  check "b evicted" true (Svc.Cache.find c "b" = None);
  check "a survived" true (Svc.Cache.find c "a" = Some 1);
  check "c present" true (Svc.Cache.find c "c" = Some 3);
  check_int "length tracks evictions" 2 (Svc.Cache.length c);
  Svc.Cache.add c "c" 4;
  check "overwrite keeps one entry" true (Svc.Cache.find c "c" = Some 4);
  check_int "hits counted" 4 (Svc.Cache.hits c);
  check_int "misses counted" 1 (Svc.Cache.misses c)

(* ----------------------------------------------------------- jobq *)

let test_jobq () =
  let q = Svc.Jobq.create ~capacity:2 in
  check "push 1" true (Svc.Jobq.push q 1 = Ok ());
  check "push 2" true (Svc.Jobq.push q 2 = Ok ());
  check "push beyond capacity is rejected" true
    (Svc.Jobq.push q 3 = Error `Overloaded);
  check_int "depth" 2 (Svc.Jobq.depth q);
  check "FIFO pop" true (Svc.Jobq.pop q = Some 1);
  check "slot freed" true (Svc.Jobq.push q 3 = Ok ());
  Svc.Jobq.close q;
  check "push after close" true (Svc.Jobq.push q 4 = Error `Closed);
  check "drains after close" true (Svc.Jobq.pop q = Some 2);
  check "drains after close (2)" true (Svc.Jobq.pop q = Some 3);
  check "then None" true (Svc.Jobq.pop q = None)

(* ----------------------------------------------------- end-to-end *)

let fresh_socket_path () =
  let f = Filename.temp_file "ftqc_svc" ".sock" in
  Sys.remove f;
  f

(* An in-process daemon on a temp socket; the campaign stop flag is
   the shutdown path, exactly as in the real ftqcd. *)
let with_server ?(workers = 2) ?(max_queue = 8) f =
  Mc.Campaign.reset_stop ();
  let socket = fresh_socket_path () in
  let cfg =
    Svc.Server.config ~workers ~max_queue ~cache_capacity:8 ~domains:2
      ~progress_interval:0.05 ~socket ()
  in
  let obs = Obs.create () in
  let th = Thread.create (fun () -> Svc.Server.run ~obs cfg) () in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n = 0 then Alcotest.fail "server did not start"
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  Fun.protect
    ~finally:(fun () ->
      Mc.Campaign.request_stop ();
      Thread.join th;
      Mc.Campaign.reset_stop ();
      check "socket file removed on shutdown" false (Sys.file_exists socket))
    (fun () -> f socket)

let request_ok ?on_progress socket est =
  match
    Svc.Client.with_connection ~socket (fun fd ->
        Svc.Client.request ?on_progress fd est)
  with
  | Ok (Ok o) -> o
  | Ok (Error e) -> Alcotest.failf "request failed: %s: %s" e.code e.message
  | Error msg -> Alcotest.failf "connect failed: %s" msg

(* the central contract: fresh reply == cached reply == direct library
   run, byte for byte *)
let test_cached_bit_identical () =
  with_server (fun socket ->
      let est = toric_est () in
      let direct = Svc.Server.execute ~domains:3 est in
      let expected_raw =
        Svc.Codec.encode
          (Protocol.result_frame
             ~key:(Protocol.to_canonical (Run est))
             direct)
      in
      let fresh = request_ok socket est in
      check "first reply is not cached" false fresh.cached;
      check_str "fresh reply is byte-identical to the direct run"
        expected_raw fresh.raw_result;
      let cached = request_ok socket est in
      check "second reply is cached" true cached.cached;
      check_str "cached reply is byte-identical to the fresh one"
        fresh.raw_result cached.raw_result)

(* a second identical request arriving while the first is queued or
   running must share its job (one execution, two byte-identical
   replies) *)
let test_coalescing () =
  with_server ~workers:1 (fun socket ->
      (* occupy the single worker so the next request stays visible
         in the in-flight table long enough to be joined *)
      let blocker = Thread.create (fun () ->
          ignore (request_ok socket (toric_est ~l:12 ~p:0.1 ~trials:20000 ()))) ()
      in
      Thread.delay 0.2;
      let est = toric_est ~seed:11 () in
      let r1 = ref None and r2 = ref None in
      let t1 = Thread.create (fun () -> r1 := Some (request_ok socket est)) () in
      Thread.delay 0.1;
      let t2 = Thread.create (fun () -> r2 := Some (request_ok socket est)) () in
      Thread.join t1;
      Thread.join t2;
      Thread.join blocker;
      match (!r1, !r2) with
      | Some a, Some b ->
        check "second request joined the first job" true b.coalesced;
        check "coalesced reply is not a cache hit" false b.cached;
        check_str "coalesced replies are byte-identical" a.raw_result
          b.raw_result
      | _ -> Alcotest.fail "coalesced requests did not complete")

(* beyond max_queue the daemon must refuse with a structured error,
   never hang the client *)
let test_overload () =
  with_server ~workers:1 ~max_queue:1 (fun socket ->
      let blocker = Thread.create (fun () ->
          ignore (request_ok socket (toric_est ~l:12 ~p:0.1 ~trials:20000 ()))) ()
      in
      Thread.delay 0.2;
      (* the worker is busy: this one fills the single queue slot *)
      let filler = Thread.create (fun () ->
          ignore (request_ok socket (toric_est ~seed:21 ()))) ()
      in
      Thread.delay 0.1;
      let refused =
        Svc.Client.with_connection ~socket (fun fd ->
            Svc.Client.request fd (toric_est ~seed:22 ()))
      in
      (match refused with
      | Ok (Error e) -> check_str "structured overload error" "overloaded" e.code
      | Ok (Ok _) -> Alcotest.fail "request beyond max_queue was accepted"
      | Error msg -> Alcotest.failf "connect failed: %s" msg);
      Thread.join filler;
      Thread.join blocker)

let test_scan_matches_driver_derivation () =
  with_server (fun socket ->
      let ls = [ 4; 6 ] and ps = [ 0.05; 0.1 ] in
      let est =
        Protocol.Toric_scan { ls; ps; trials = 200; seed = 2026;
                              engine = `Scalar; tile_width = 64 }
      in
      let o = request_ok socket est in
      let cells =
        match o.payload with
        | Protocol.Cells cells -> cells
        | _ -> Alcotest.fail "scan reply is not a cell list"
      in
      check_int "full grid" (List.length ls * List.length ps)
        (List.length cells);
      (* every cell must equal the driver's derivation for that cell *)
      List.iteri
        (fun pi p ->
          List.iter
            (fun l ->
              let r =
                Toric.Memory.run_mc ~l ~p ~trials:200
                  ~seed:(Mc.Rng.derive 2026 [ 10; l; pi ])
                  ()
              in
              let cell =
                List.find
                  (fun (c : Protocol.cell) ->
                    c.name = Printf.sprintf "l=%d,p=%g" l p)
                  cells
              in
              check_int
                (Printf.sprintf "failures match driver at l=%d p=%g" l p)
                r.failures cell.estimate.failures)
            ls)
        ps)

let test_status_and_metrics () =
  with_server (fun socket ->
      let est = toric_est ~trials:100 () in
      ignore (request_ok socket est);
      ignore (request_ok socket est);
      match Svc.Client.with_connection ~socket Svc.Client.status with
      | Ok (Ok j) ->
        let counter name =
          match
            Option.bind (Json.member "metrics" j) (fun m ->
                Option.bind (Json.member "counters" m) (Json.member name))
          with
          | Some (Json.Int n) -> n
          | _ -> 0
        in
        check "requests counted" true (counter "svc.requests" >= 3);
        check_int "one cache hit" 1 (counter "svc.cache_hits");
        check_int "one cache miss" 1 (counter "svc.cache_misses");
        check "cache occupancy reported" true
          (match
             Option.bind (Json.member "cache" j) (Json.member "length")
           with
          | Some (Json.Int 1) -> true
          | _ -> false);
        check "latency histogram present" true
          (Option.is_some
             (Option.bind (Json.member "metrics" j) (fun m ->
                  Option.bind (Json.member "histograms" m)
                    (Json.member "svc.request_latency_s"))))
      | Ok (Error e) -> Alcotest.failf "status failed: %s" e.message
      | Error msg -> Alcotest.failf "connect failed: %s" msg)

(* progress frames must carry live runner completion — to the primary
   client and to a coalesced joiner alike *)
let test_progress_completion_streams () =
  with_server ~workers:1 (fun socket ->
      let est = toric_est ~l:12 ~p:0.1 ~trials:40000 ~seed:33 () in
      let saw cell (p : Svc.Client.progress) =
        match (p.p_completed, p.p_total, p.p_phase) with
        | Some d, Some t, Some _ when d >= 0 && t > 0 && d <= t -> cell := true
        | _ -> ()
      in
      let primary_saw = ref false and joiner_saw = ref false in
      let r1 = ref None and r2 = ref None in
      let t1 =
        Thread.create
          (fun () ->
            r1 := Some (request_ok ~on_progress:(saw primary_saw) socket est))
          ()
      in
      Thread.delay 0.15;
      let t2 =
        Thread.create
          (fun () ->
            r2 := Some (request_ok ~on_progress:(saw joiner_saw) socket est))
          ()
      in
      Thread.join t1;
      Thread.join t2;
      match (!r1, !r2) with
      | Some a, Some b ->
        check "second request joined the first job" true b.coalesced;
        check_str "coalesced replies are byte-identical" a.raw_result
          b.raw_result;
        check "primary saw completed/total/phase" true !primary_saw;
        check "coalesced joiner saw completed/total/phase" true !joiner_saw
      | _ -> Alcotest.fail "requests did not complete")

(* the extended status frame: worker utilization and the in-flight job
   table, live while a request runs *)
let test_status_inflight_jobs () =
  with_server ~workers:1 (fun socket ->
      let blocker =
        Thread.create
          (fun () ->
            ignore (request_ok socket (toric_est ~l:12 ~p:0.1 ~trials:40000 ())))
          ()
      in
      Thread.delay 0.25;
      (match Svc.Client.with_connection ~socket Svc.Client.status with
      | Ok (Ok j) ->
        let workers k =
          match Option.bind (Json.member "workers" j) (Json.member k) with
          | Some (Json.Int n) -> n
          | _ -> -1
        in
        check_int "worker count reported" 1 (workers "count");
        check_int "busy workers reported" 1 (workers "busy");
        (match Json.member "jobs" j with
        | Some (Json.List (job :: _)) ->
          check "job row names its estimator" true
            (Json.member "estimator" job
            = Some (Json.String "toric_memory"));
          check "job row carries a state" true
            (match Json.member "state" job with
            | Some (Json.String ("running" | "queued" | "finishing")) -> true
            | _ -> false);
          check "job row carries elapsed_s" true
            (match Json.member "elapsed_s" job with
            | Some (Json.Float e) -> e >= 0.0
            | _ -> false)
        | _ -> Alcotest.fail "no in-flight jobs listed");
        check "per-estimator latency histogram appears after completion" true
          true
      | Ok (Error e) -> Alcotest.failf "status failed: %s" e.message
      | Error msg -> Alcotest.failf "connect failed: %s" msg);
      Thread.join blocker;
      (* after the job drains: per-estimator latency histogram recorded *)
      match Svc.Client.with_connection ~socket Svc.Client.status with
      | Ok (Ok j) ->
        check "per-estimator latency histogram present" true
          (Option.is_some
             (Option.bind (Json.member "metrics" j) (fun m ->
                  Option.bind (Json.member "histograms" m)
                    (Json.member "svc.request_latency_s.toric_memory"))))
      | Ok (Error e) -> Alcotest.failf "status failed: %s" e.message
      | Error msg -> Alcotest.failf "connect failed: %s" msg)

(* tracing the whole daemon must not move a single result byte *)
let test_tracing_neutral_byte_identity () =
  let est = toric_est ~seed:55 () in
  let plain =
    with_server (fun socket -> (request_ok socket est).raw_result)
  in
  let sk = Obs.Trace.sink () in
  Obs.Trace.install (Some sk);
  let traced =
    Fun.protect
      ~finally:(fun () -> Obs.Trace.install None)
      (fun () -> with_server (fun socket -> (request_ok socket est).raw_result))
  in
  check_str "result frame bytes identical with tracing installed" plain traced;
  check "request-lifecycle spans recorded" true (Obs.Trace.sink_length sk > 0);
  let names =
    List.map (fun (s : Obs.Trace.span) -> s.name) (Obs.Trace.sink_spans sk)
  in
  List.iter
    (fun n -> check (n ^ " span present") true (List.mem n names))
    [ "cache lookup"; "admission"; "queue wait"; "execute"; "encode result" ];
  check "request span present" true
    (List.exists
       (fun n -> String.length n >= 8 && String.sub n 0 8 = "request ")
       names);
  match Obs.Trace.validate (Obs.Trace.to_json sk) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "service trace invalid: %s" e

let test_shutdown_request () =
  (* not via with_server: the shutdown request itself must stop the
     daemon and remove the socket *)
  Mc.Campaign.reset_stop ();
  let socket = fresh_socket_path () in
  let cfg = Svc.Server.config ~socket () in
  let th = Thread.create (fun () -> Svc.Server.run cfg) () in
  let rec wait n =
    if Sys.file_exists socket || n = 0 then () else (Thread.delay 0.02; wait (n - 1))
  in
  wait 250;
  (match Svc.Client.with_connection ~socket Svc.Client.shutdown with
  | Ok (Ok ()) -> ()
  | Ok (Error e) -> Alcotest.failf "shutdown failed: %s" e.message
  | Error msg -> Alcotest.failf "connect failed: %s" msg);
  Thread.join th;
  Mc.Campaign.reset_stop ();
  check "socket removed after shutdown request" false (Sys.file_exists socket)

let test_ping () =
  with_server (fun socket ->
      match Svc.Client.with_connection ~socket Svc.Client.ping with
      | Ok (Ok ()) -> ()
      | Ok (Error e) -> Alcotest.failf "ping failed: %s" e.message
      | Error msg -> Alcotest.failf "connect failed: %s" msg)

let suites =
  [ ( "svc",
      [ Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
        Alcotest.test_case "canonical key insensitivity" `Quick
          test_canonical_insensitive;
        Alcotest.test_case "rare canonical keys are backward stable" `Quick
          test_canonical_rare;
        Alcotest.test_case "request validation" `Quick test_validation;
        Alcotest.test_case "payload round trip" `Quick test_payload_roundtrip;
        Alcotest.test_case "codec round trip" `Quick test_codec_roundtrip;
        Alcotest.test_case "codec truncation" `Quick test_codec_truncated;
        Alcotest.test_case "cache LRU" `Quick test_cache_lru;
        Alcotest.test_case "job queue" `Quick test_jobq;
        Alcotest.test_case "ping" `Quick test_ping;
        Alcotest.test_case "cached replies bit-identical" `Quick
          test_cached_bit_identical;
        Alcotest.test_case "request coalescing" `Slow test_coalescing;
        Alcotest.test_case "overload admission control" `Slow test_overload;
        Alcotest.test_case "scan matches driver derivation" `Slow
          test_scan_matches_driver_derivation;
        Alcotest.test_case "status metrics" `Quick test_status_and_metrics;
        Alcotest.test_case "progress completion streams" `Slow
          test_progress_completion_streams;
        Alcotest.test_case "status lists in-flight jobs" `Slow
          test_status_inflight_jobs;
        Alcotest.test_case "tracing is byte-neutral" `Quick
          test_tracing_neutral_byte_identity;
        Alcotest.test_case "shutdown request" `Quick test_shutdown_request ] )
  ]
