open Ftqc
module Perm = Group.Perm
module Fg = Group.Finite_group

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 61 |]

let test_paper_encoding () =
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  Alcotest.(check string) "u0" "(1 2 5)" (Perm.to_string u0);
  Alcotest.(check string) "u1" "(2 3 4)" (Perm.to_string u1);
  Alcotest.(check string) "v" "(1 4)(3 5)" (Perm.to_string v);
  check "v involution" true (Perm.is_identity (Perm.compose v v));
  check "v conjugates u0 to u1 (Eq. 45)" true (Perm.equal (Perm.conj u0 v) u1)

let test_not_gate () =
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  let reg = Anyon.Register.create ~degree:5 [ u0; v ] in
  Anyon.Register.not_gate reg ~data:0 ~not_pair:1;
  check "NOT" true (Perm.equal (Anyon.Register.flux reg 0) u1);
  Anyon.Register.not_gate reg ~data:0 ~not_pair:1;
  check "NOT twice = id" true (Perm.equal (Anyon.Register.flux reg 0) u0);
  check "NOT pair unchanged" true (Perm.equal (Anyon.Register.flux reg 1) v)

let test_pull_through_reversible () =
  let r = rng () in
  let a5 = Fg.alternating 5 in
  let elems = Array.of_list (Fg.elements a5) in
  for _ = 1 to 50 do
    let u = elems.(Random.State.int r 60) in
    let w = elems.(Random.State.int r 60) in
    let reg = Anyon.Register.create ~degree:5 [ w; u ] in
    Anyon.Register.pull_through reg ~outer:0 ~inner:1;
    Anyon.Register.pull_through_inverse reg ~outer:0 ~inner:1;
    check "pull through then back = id" true
      (Perm.equal (Anyon.Register.flux reg 1) u)
  done

let test_pull_through_eq41 () =
  (* Eq. 41: |u1,u1^-1>|u2,u2^-1> -> |u2,...>|u2^-1 u1 u2,...> *)
  let r = rng () in
  let a5 = Fg.alternating 5 in
  let elems = Array.of_list (Fg.elements a5) in
  for _ = 1 to 50 do
    let u1 = elems.(Random.State.int r 60) in
    let u2 = elems.(Random.State.int r 60) in
    let reg = Anyon.Register.create ~degree:5 [ u2; u1 ] in
    Anyon.Register.pull_through reg ~outer:0 ~inner:1;
    check "inner conjugated" true
      (Perm.equal (Anyon.Register.flux reg 1) (Perm.conj u1 u2));
    check "outer unchanged" true (Perm.equal (Anyon.Register.flux reg 0) u2)
  done

let test_charge_measurement () =
  let r = rng () in
  let a5 = Fg.alternating 5 in
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  let plus_seen = ref 0 and minus_seen = ref 0 in
  for _ = 1 to 200 do
    let pair = Anyon.Pair_sim.create a5 ~class_rep:u0 in
    let minus = Anyon.Pair_sim.measure_charge pair r ~projectile:v in
    if minus then incr minus_seen else incr plus_seen;
    (* post-measurement state is (|u0> ± |u1>)/sqrt2 *)
    let s = 1.0 /. sqrt 2.0 in
    let a0 = Anyon.Pair_sim.amplitude pair u0 in
    let a1 = Anyon.Pair_sim.amplitude pair u1 in
    check "amp u0" true (Qmath.Cx.approx a0 (Qmath.Cx.re s));
    check "amp u1" true
      (Qmath.Cx.approx a1 (Qmath.Cx.re (if minus then -.s else s)));
    (* projective: repeating gives the same answer *)
    check "repeatable" true
      (Anyon.Pair_sim.measure_charge pair r ~projectile:v = minus)
  done;
  check "both outcomes occur" true (!plus_seen > 30 && !minus_seen > 30)

let test_flux_measurement_collapse () =
  let r = rng () in
  let a5 = Fg.alternating 5 in
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  let pair = Anyon.Pair_sim.create a5 ~class_rep:u0 in
  ignore (Anyon.Pair_sim.measure_charge pair r ~projectile:v);
  let f = Anyon.Pair_sim.measure_flux pair r in
  check "flux in {u0,u1}" true (Perm.equal f u0 || Perm.equal f u1);
  check "collapsed" true
    (Float.abs (Anyon.Pair_sim.prob_flux pair f -. 1.0) < 1e-9)

let test_charge_zero_pair () =
  let r = rng () in
  let a5 = Fg.alternating 5 in
  let u0, _, v = Anyon.Register.paper_a5_encoding () in
  (* Eq. 44: invariant under conjugation, +1 charge for any projectile *)
  let cz = Anyon.Pair_sim.charge_zero a5 ~class_rep:u0 in
  check "dimension 20" true (Anyon.Pair_sim.dimension cz = 20);
  check "+1 charge" false (Anyon.Pair_sim.measure_charge cz r ~projectile:v);
  (* conjugating the charge-zero pair leaves it invariant *)
  let cz2 = Anyon.Pair_sim.charge_zero a5 ~class_rep:u0 in
  Anyon.Pair_sim.conjugate_by cz2 v;
  check "conjugation invariant" true
    (Qmath.Cx.approx
       (Anyon.Pair_sim.amplitude cz2 u0)
       (Qmath.Cx.re (1.0 /. sqrt 20.0)))

let test_conjugate_by_permutes () =
  let a5 = Fg.alternating 5 in
  let u0, u1, v = Anyon.Register.paper_a5_encoding () in
  let pair = Anyon.Pair_sim.create a5 ~class_rep:u0 in
  Anyon.Pair_sim.conjugate_by pair v;
  check "basis state moved" true
    (Qmath.Cx.approx (Anyon.Pair_sim.amplitude pair u1) Qmath.Cx.one)

let test_solvability_landscape () =
  check "A5 smallest nonsolvable" true (Anyon.Logic.smallest_nonsolvable_check ());
  check "A5 perfect" true (Anyon.Logic.is_perfect (Fg.alternating 5));
  check "S4 not perfect" false (Anyon.Logic.is_perfect (Fg.symmetric 4));
  Alcotest.(check (list int)) "S4 derived series" [ 24; 12; 4; 1 ]
    (Anyon.Logic.derived_series (Fg.symmetric 4));
  Alcotest.(check (list int)) "A5 derived series" [ 60 ]
    (Anyon.Logic.derived_series (Fg.alternating 5))

let test_commutator_depths () =
  let depth g = Anyon.Logic.commutator_closure_depth g ~max_depth:12 in
  check "A5 unbounded" true (depth (Fg.alternating 5) = None);
  check "S5 unbounded" true (depth (Fg.symmetric 5) = None);
  check "S4 depth 3" true (depth (Fg.symmetric 4) = Some 3);
  check "A4 depth 2" true (depth (Fg.alternating 4) = Some 2);
  check "D4 depth 2" true (depth (Fg.dihedral 4) = Some 2);
  check "Z7 depth 1" true (depth (Fg.cyclic 7) = Some 1)

let test_and_gadget () =
  let a5 = Fg.alternating 5 in
  match Anyon.Logic.find_noncommuting a5 with
  | None -> Alcotest.fail "A5 reported abelian"
  | Some (a, b) ->
    List.iter
      (fun (x, y) ->
        let out = Anyon.Logic.and_gadget_value ~x ~y a b in
        check "AND truth table" true
          (Perm.is_identity out = not (x && y)))
      [ (false, false); (false, true); (true, false); (true, true) ]

let suites =
  [ ( "anyon",
      [ Alcotest.test_case "paper encoding" `Quick test_paper_encoding;
        Alcotest.test_case "NOT gate" `Quick test_not_gate;
        Alcotest.test_case "pull-through reversible" `Quick
          test_pull_through_reversible;
        Alcotest.test_case "Eq. 41" `Quick test_pull_through_eq41;
        Alcotest.test_case "charge measurement" `Quick test_charge_measurement;
        Alcotest.test_case "flux measurement" `Quick
          test_flux_measurement_collapse;
        Alcotest.test_case "charge-zero pair" `Quick test_charge_zero_pair;
        Alcotest.test_case "conjugate_by" `Quick test_conjugate_by_permutes;
        Alcotest.test_case "solvability landscape" `Quick
          test_solvability_landscape;
        Alcotest.test_case "commutator depths" `Quick test_commutator_depths;
        Alcotest.test_case "AND gadget" `Quick test_and_gadget ] ) ]
