open Ftqc
module Flow = Threshold.Flow
module Bigcode = Threshold.Bigcode
module Resources = Threshold.Resources

let check = Alcotest.(check bool)

let test_flow_basics () =
  check "paper threshold 1/21" true
    (Float.abs (Flow.paper_threshold -. (1.0 /. 21.0)) < 1e-12);
  check "step" true (Float.abs (Flow.step ~a:21.0 0.01 -. 2.1e-3) < 1e-12);
  check "level 0 is identity" true
    (Flow.level_error ~a:21.0 ~eps:0.007 ~level:0 = 0.007)

let test_closed_form_exact () =
  (* Eq. 36 is exactly the iterated flow, not just asymptotically *)
  List.iter
    (fun eps ->
      for l = 0 to 6 do
        let it = Flow.level_error ~a:21.0 ~eps ~level:l in
        let cf = Flow.closed_form ~a:21.0 ~eps ~level:l in
        check "closed form = iteration" true
          (Float.abs (it -. cf) <= 1e-9 *. Float.max it 1e-300)
      done)
    [ 1e-2; 1e-3; 1e-4 ]

let prop_closed_form =
  QCheck.Test.make ~name:"Eq. 36 = iterated flow (random a, eps)" ~count:200
    (QCheck.pair (QCheck.float_range 2.0 100.0) (QCheck.float_range 1e-8 1e-3))
    (fun (a, eps) ->
      let it = Flow.level_error ~a ~eps ~level:3 in
      let cf = Flow.closed_form ~a ~eps ~level:3 in
      Float.abs (it -. cf) <= 1e-9 *. Float.max it 1e-300)

let test_flow_monotone () =
  (* below threshold errors fall with level, above they grow *)
  let below = Flow.level_error ~a:21.0 ~eps:0.01 in
  check "below threshold decreasing" true
    (below ~level:1 < 0.01 && below ~level:2 < below ~level:1);
  let above = Flow.level_error ~a:21.0 ~eps:0.06 in
  check "above threshold increasing" true (above ~level:1 > 0.06)

let test_levels_needed () =
  check "exact at threshold boundary" true
    (Flow.levels_needed ~a:21.0 ~eps:0.05 ~target:1e-10 = None);
  (match Flow.levels_needed ~a:21.0 ~eps:1e-4 ~target:1e-10 with
  | Some l -> check "reasonable level count" true (l >= 1 && l <= 3)
  | None -> Alcotest.fail "below-threshold reported unreachable");
  check "already good enough" true
    (Flow.levels_needed ~a:21.0 ~eps:1e-12 ~target:1e-10 = Some 0)

let test_block_size () =
  match Flow.block_size_for ~a:21.0 ~eps:1e-6 ~gates:3e9 with
  | Some (l, b, est) ->
    check "levels small" true (l <= 2);
    check "block = 7^l" true (Float.abs (b -. (7.0 ** float_of_int l)) < 1e-9);
    check "estimate positive" true (est > 0.0)
  | None -> Alcotest.fail "should be below threshold"

let test_bigcode () =
  let b = Bigcode.shor_b in
  check "b = 4" true (b = 4.0);
  (* Eq. 30 at t=1 *)
  check "block error t=1" true
    (Float.abs (Bigcode.block_error ~b ~eps:1e-4 ~t:1 -. 1e-8) < 1e-20);
  (* integer optimum is near the real optimum *)
  List.iter
    (fun eps ->
      let t_real = Bigcode.optimal_t ~b ~eps in
      let t_int, p_int = Bigcode.best_integer_t ~b ~eps ~t_max:2000 in
      check "integer optimum near continuum" true
        (Float.abs (float_of_int t_int -. t_real) <= Float.max 2.0 (0.5 *. t_real));
      (* discrete minimum beats neighbours *)
      check "local minimum" true
        (p_int <= Bigcode.block_error ~b ~eps ~t:(t_int + 1)
        && (t_int = 1 || p_int <= Bigcode.block_error ~b ~eps ~t:(t_int - 1))))
    [ 1e-4; 1e-5; 1e-6 ];
  (* Eq. 32 inverse relationship: plugging the required accuracy back
     gives a min block error near 1/cycles *)
  let cycles = 1e9 in
  let eps = Bigcode.required_accuracy ~b ~cycles in
  let p = Bigcode.min_block_error ~b ~eps in
  check "required accuracy consistent" true
    (Float.abs (log (p *. cycles)) < 1e-6)

let test_resources_paper_example () =
  let e = Resources.paper_432 () in
  Alcotest.(check int) "2160 logical qubits" 2160 e.logical_qubits;
  check "3e9 toffolis" true
    (Float.abs (e.toffoli_gates -. (38.0 *. (432.0 ** 3.0))) < 1.0);
  check "~1e-9 gate budget" true
    (e.target_gate_error > 5e-10 && e.target_gate_error < 2e-9);
  check "3 levels" true (e.levels = Some 3);
  check "block 343" true (e.block_size = Some 343);
  (match e.total_qubits with
  | Some t -> check "order 1e6 qubits" true (t > 5e5 && t < 2e6)
  | None -> Alcotest.fail "no qubit estimate");
  let logical, physical = Resources.steane_block55 ~bits:432 in
  Alcotest.(check int) "steane logical" 2160 logical;
  check "steane ~4e5" true (physical > 3e5 && physical < 5e5)

let test_resources_above_threshold () =
  let e = Resources.estimate ~bits:432 ~physical_eps:0.1 () in
  check "no level works above threshold" true (e.levels = None)

let test_pseudothreshold_fit () =
  let f =
    Threshold.Pseudothreshold.fit [ (1e-3, 21e-6); (2e-3, 84e-6) ]
  in
  check "A = 21" true (Float.abs (f.a -. 21.0) < 1e-9);
  check "threshold = 1/21" true (Float.abs (f.threshold -. (1.0 /. 21.0)) < 1e-9);
  let proj = Threshold.Pseudothreshold.project f ~eps:1e-3 ~levels:2 in
  check "projection levels" true (List.length proj = 3);
  check "projection L1" true
    (Float.abs (List.nth proj 1 -. 21e-6) < 1e-12)

let suites =
  [ ( "threshold",
      [ Alcotest.test_case "flow basics" `Quick test_flow_basics;
        Alcotest.test_case "closed form exact" `Quick test_closed_form_exact;
        QCheck_alcotest.to_alcotest prop_closed_form;
        Alcotest.test_case "flow monotone" `Quick test_flow_monotone;
        Alcotest.test_case "levels needed" `Quick test_levels_needed;
        Alcotest.test_case "block size" `Quick test_block_size;
        Alcotest.test_case "big-code scaling" `Quick test_bigcode;
        Alcotest.test_case "paper 432-bit example" `Quick
          test_resources_paper_example;
        Alcotest.test_case "above threshold" `Quick
          test_resources_above_threshold;
        Alcotest.test_case "pseudothreshold fit" `Quick
          test_pseudothreshold_fit ] ) ]
