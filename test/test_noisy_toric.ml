open Ftqc
module Mg = Toric.Match_graph

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 103 |]

(* --- generic matching graph -------------------------------------------- *)

let path_graph n =
  let g = Mg.create ~num_nodes:n in
  for i = 0 to n - 2 do
    ignore (Mg.add_edge g i (i + 1))
  done;
  g

let boundary g selected =
  let marks = Array.make (Mg.num_nodes g) false in
  Array.iteri
    (fun e on ->
      if on then begin
        let a, b = Mg.endpoints g e in
        marks.(a) <- not marks.(a);
        marks.(b) <- not marks.(b)
      end)
    selected;
  marks

let test_path_matching () =
  let g = path_graph 10 in
  let defects = Array.make 10 false in
  defects.(2) <- true;
  defects.(7) <- true;
  let sel = Mg.decode g ~defects in
  check "boundary = defects" true (boundary g sel = defects);
  (* the unique path between 2 and 7 has 5 edges *)
  let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 sel in
  Alcotest.(check int) "path length" 5 count

let test_multi_pair_matching () =
  let r = rng () in
  let g = path_graph 30 in
  for _ = 1 to 50 do
    let defects = Array.make 30 false in
    (* random even defect set *)
    let k = 2 * (1 + Random.State.int r 5) in
    let placed = ref 0 in
    while !placed < k do
      let i = Random.State.int r 30 in
      if not defects.(i) then begin
        defects.(i) <- true;
        incr placed
      end
    done;
    let sel = Mg.decode g ~defects in
    check "boundary matches defects" true (boundary g sel = defects)
  done

let test_odd_parity_rejected () =
  let g = path_graph 4 in
  let defects = Array.make 4 false in
  defects.(1) <- true;
  try
    ignore (Mg.decode g ~defects);
    Alcotest.fail "odd parity accepted"
  with Invalid_argument _ -> ()

let test_disconnected_components () =
  let g = Mg.create ~num_nodes:6 in
  ignore (Mg.add_edge g 0 1);
  ignore (Mg.add_edge g 1 2);
  ignore (Mg.add_edge g 3 4);
  ignore (Mg.add_edge g 4 5);
  let defects = [| true; false; true; true; false; true |] in
  let sel = Mg.decode g ~defects in
  check "per-component pairing" true (boundary g sel = defects)

(* --- noisy-measurement memory ------------------------------------------ *)

let test_perfect_measurement_limit () =
  (* with q = 0 and a couple of rounds, results behave like the 2-D
     memory at the accumulated error rate *)
  let r = rng () in
  let res = Toric.Noisy_memory.run ~l:6 ~rounds:2 ~p:0.01 ~q:0.0 ~trials:2000 r in
  check "low failure at p=0.01, q=0" true (res.rate < 0.02)

let test_measurement_errors_tolerated () =
  (* pure measurement noise at a below-threshold rate is almost always
     diagnosed as such (matched through temporal edges); it can only
     hurt indirectly, via spatial miscorrections, which are rare *)
  let r = rng () in
  let pure_meas =
    Toric.Noisy_memory.run ~l:6 ~rounds:6 ~p:0.0 ~q:0.02 ~trials:2000 r
  in
  let both =
    Toric.Noisy_memory.run ~l:6 ~rounds:6 ~p:0.02 ~q:0.02 ~trials:2000 r
  in
  check "pure measurement noise mostly harmless" true
    (pure_meas.rate < 0.01);
  check "much safer than data+measurement noise" true
    (pure_meas.failures * 3 < max 1 both.failures)

let test_threshold_behaviour () =
  let r = rng () in
  let low_small = Toric.Noisy_memory.run ~l:4 ~rounds:4 ~p:0.01 ~q:0.01 ~trials:2000 r in
  let low_big = Toric.Noisy_memory.run ~l:8 ~rounds:8 ~p:0.01 ~q:0.01 ~trials:2000 r in
  check "below threshold bigger is better" true
    (low_big.failures <= low_small.failures);
  let hi_small = Toric.Noisy_memory.run ~l:4 ~rounds:4 ~p:0.05 ~q:0.05 ~trials:1000 r in
  let hi_big = Toric.Noisy_memory.run ~l:8 ~rounds:8 ~p:0.05 ~q:0.05 ~trials:1000 r in
  check "above threshold bigger is worse" true
    (hi_big.failures >= hi_small.failures)

(* --- circuit-level memory ------------------------------------------------ *)

let test_circuit_memory_noiseless () =
  let r = rng () in
  let res =
    Toric.Circuit_memory.run ~l:3 ~rounds:3 ~noise:Ft.Noise.none ~trials:20 r
  in
  check "noise-free circuit memory never fails" true (res.failures = 0)

let test_circuit_memory_low_noise () =
  let r = rng () in
  let res =
    Toric.Circuit_memory.run ~l:3 ~rounds:3 ~noise:(Ft.Noise.uniform 1e-3)
      ~trials:300 r
  in
  check "low-noise circuit memory mostly survives" true (res.rate < 0.02)

let test_circuit_memory_protected_phase () =
  let r = rng () in
  let low_small =
    Toric.Circuit_memory.run ~l:3 ~rounds:3 ~noise:(Ft.Noise.uniform 3e-3)
      ~trials:400 r
  in
  let low_big =
    Toric.Circuit_memory.run ~l:5 ~rounds:5 ~noise:(Ft.Noise.uniform 3e-3)
      ~trials:400 r
  in
  check "below threshold bigger lattice no worse" true
    (low_big.failures <= low_small.failures + 2)

let suites =
  [ ( "toric.match_graph",
      [ Alcotest.test_case "path matching" `Quick test_path_matching;
        Alcotest.test_case "multi-pair matching" `Quick
          test_multi_pair_matching;
        Alcotest.test_case "odd parity rejected" `Quick
          test_odd_parity_rejected;
        Alcotest.test_case "disconnected components" `Quick
          test_disconnected_components ] );
    ( "toric.noisy_memory",
      [ Alcotest.test_case "perfect measurement limit" `Quick
          test_perfect_measurement_limit;
        Alcotest.test_case "measurement noise alone harmless" `Quick
          test_measurement_errors_tolerated;
        Alcotest.test_case "threshold behaviour" `Slow
          test_threshold_behaviour ] );
    ( "toric.circuit_memory",
      [ Alcotest.test_case "noise-free" `Quick test_circuit_memory_noiseless;
        Alcotest.test_case "low noise" `Quick test_circuit_memory_low_noise;
        Alcotest.test_case "protected phase" `Slow
          test_circuit_memory_protected_phase ] ) ]
