open Ftqc
module Code = Codes.Stabilizer_code

let check = Alcotest.(check bool)
let rng () = Random.State.make [| 41 |]
let steane = Codes.Steane.code

(* prepare a perfect logical eigenstate inside a wider noisy register *)
let prep sim ~offset ~plus =
  let n = Ft.Sim.num_qubits sim in
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g ->
      assert
        (Tableau.postselect_pauli tab
           (Code.embed steane ~offset ~total:n g)
           ~outcome:false))
    steane.generators;
  let l = if plus then steane.logical_x.(0) else steane.logical_z.(0) in
  assert
    (Tableau.postselect_pauli tab
       (Code.embed steane ~offset ~total:n l)
       ~outcome:false)

(* --- noiseless gadget exactness -------------------------------------- *)

let test_shor_ec_fixes_all_single_errors () =
  let r = rng () in
  for q = 0 to 6 do
    List.iter
      (fun l ->
        let sim = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none r in
        prep sim ~offset:0 ~plus:false;
        Ft.Sim.inject sim (Pauli.single 12 q l);
        ignore
          (Ft.Shor_ec.recover sim steane
             ~policy:Ft.Shor_ec.Repeat_if_nontrivial ~offset:0 ~cat_base:7
             ~check:11 ~verified:true);
        check "shor EC fixes error" false
          (Ft.Sim.ideal_measure_logical_z sim steane ~offset:0))
      [ Pauli.X; Pauli.Y; Pauli.Z ]
  done

let test_steane_ec_fixes_all_single_errors () =
  let r = rng () in
  for q = 0 to 6 do
    List.iter
      (fun l ->
        let sim = Ft.Sim.create ~n:21 ~noise:Ft.Noise.none r in
        prep sim ~offset:0 ~plus:false;
        Ft.Sim.inject sim (Pauli.single 21 q l);
        ignore
          (Ft.Steane_ec.recover sim ~policy:Ft.Steane_ec.Repeat_if_nontrivial
             ~verify:Ft.Steane_ec.Reject ~data:0 ~ancilla:7 ~checker:14);
        check "steane EC fixes error" false
          (Ft.Sim.ideal_measure_logical_z sim steane ~offset:0))
      [ Pauli.X; Pauli.Y; Pauli.Z ]
  done

let test_shor_syndrome_matches_code_syndrome () =
  let r = rng () in
  for _ = 1 to 20 do
    let sim = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none r in
    prep sim ~offset:0 ~plus:false;
    let q = Random.State.int r 7 in
    let l = [| Pauli.X; Pauli.Y; Pauli.Z |].(Random.State.int r 3) in
    let e = Pauli.single 7 q l in
    Ft.Sim.inject sim (Code.embed steane ~offset:0 ~total:12 e);
    let s =
      Ft.Shor_ec.syndrome sim steane ~offset:0 ~cat_base:7 ~check:11
        ~verified:true
    in
    check "gadget syndrome = algebraic syndrome" true
      (Gf2.Bitvec.equal s (Code.syndrome steane e))
  done

let test_trivial_syndrome_on_clean_block () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:true;
  let s =
    Ft.Shor_ec.syndrome sim steane ~offset:0 ~cat_base:7 ~check:11
      ~verified:true
  in
  check "clean block -> trivial syndrome" true (Gf2.Bitvec.is_zero s);
  (* and the |+bar> state is untouched by the measurement *)
  check "syndrome extraction preserves |+bar>" false
    (Ft.Sim.ideal_measure_logical_x sim steane ~offset:0)

(* --- cat preparation -------------------------------------------------- *)

let test_cat_prepared_correctly () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:5 ~noise:Ft.Noise.none r in
  let attempts =
    Ft.Cat.prepare sim ~qubits:[ 0; 1; 2; 3 ] ~check:4 ~max_attempts:5
  in
  check "one attempt suffices noiselessly" true (attempts = 1);
  let tab = Ft.Sim.tableau sim in
  check "XXXX stabilizer" true
    (Tableau.expectation tab (Pauli.of_string "XXXXI") = Some true);
  check "ZZ on ends" true
    (Tableau.expectation tab (Pauli.of_string "ZIIZI") = Some true)

let test_cat_verification_catches_split () =
  (* inject the Fig. 8 failure (a mid-chain X fault -> |0011>+|1100>)
     and confirm verification rejects it: we emulate by corrupting
     after build inside a retry-free run *)
  let r = rng () in
  let sim = Ft.Sim.create ~n:5 ~noise:Ft.Noise.none r in
  Ft.Cat.prepare_unverified sim ~qubits:[ 0; 1; 2; 3 ];
  (* split the cat: X on qubits 2,3 makes ends disagree *)
  Ft.Sim.inject sim (Pauli.of_string "IIXXI");
  (* run the verification step manually *)
  Ft.Sim.prepare_zero sim 4;
  Ft.Sim.cnot sim 0 4;
  Ft.Sim.cnot sim 3 4;
  check "verification flags the split cat" true (Ft.Sim.measure sim 4)

(* --- ancilla verification --------------------------------------------- *)

let test_verified_zero_prep () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:14 ~noise:Ft.Noise.none r in
  Ft.Steane_ec.prepare_zero_verified sim ~block:0 ~checker:7
    ~verify:Ft.Steane_ec.Reject ~max_attempts:5;
  check "verified |0bar|" false
    (Ft.Sim.ideal_measure_logical_z sim steane ~offset:0);
  let tab = Ft.Sim.tableau sim in
  Array.iter
    (fun g ->
      check "stabilized" true
        (Tableau.expectation tab (Code.embed steane ~offset:0 ~total:14 g)
        = Some true))
    steane.generators

(* --- transversal gates ------------------------------------------------ *)

let test_transversal_x_z () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:false;
  Ft.Transversal.logical_x sim ~block:0;
  check "Xbar flips |0bar>" true
    (Ft.Sim.ideal_measure_logical_z sim steane ~offset:0);
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:true;
  Ft.Transversal.logical_z sim ~block:0;
  check "Zbar flips |+bar>" true
    (Ft.Sim.ideal_measure_logical_x sim steane ~offset:0)

let test_transversal_x_weight3 () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:false;
  Ft.Transversal.logical_x_w3 sim ~block:0;
  check "weight-3 NOT flips |0bar> (footnote f)" true
    (Ft.Sim.ideal_measure_logical_z sim steane ~offset:0)

let test_transversal_h () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:false;
  Ft.Transversal.logical_h sim ~block:0;
  check "Hbar: |0bar> -> |+bar>" false
    (Ft.Sim.ideal_measure_logical_x sim steane ~offset:0);
  (* and |1bar> -> |-bar| *)
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:false;
  Ft.Transversal.logical_x sim ~block:0;
  Ft.Transversal.logical_h sim ~block:0;
  check "Hbar: |1bar> -> |-bar>" true
    (Ft.Sim.ideal_measure_logical_x sim steane ~offset:0)

let test_transversal_s () =
  (* P̄ implemented bitwise as P⁻¹ (Sec. 4.1): check S̄² = Z̄ on |+bar> *)
  let r = rng () in
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:true;
  Ft.Transversal.logical_s sim ~block:0;
  Ft.Transversal.logical_s sim ~block:0;
  check "Sbar^2 = Zbar" true
    (Ft.Sim.ideal_measure_logical_x sim steane ~offset:0);
  (* S̄ maps the +1 Y̅ eigenstate story: |+bar> -> +i|1...>: verify
     via stabilizer: after S̄ on |+bar>, Ȳ = i·X̄·Z̄... simpler check:
     S̄ preserves |0bar> *)
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  prep sim ~offset:0 ~plus:false;
  Ft.Transversal.logical_s sim ~block:0;
  check "Sbar preserves |0bar>" false
    (Ft.Sim.ideal_measure_logical_z sim steane ~offset:0)

let test_transversal_cnot_truth_table () =
  let r = rng () in
  List.iter
    (fun (a, b) ->
      let sim = Ft.Sim.create ~n:14 ~noise:Ft.Noise.none r in
      prep sim ~offset:0 ~plus:false;
      prep sim ~offset:7 ~plus:false;
      if a then Ft.Transversal.logical_x sim ~block:0;
      if b then Ft.Transversal.logical_x sim ~block:7;
      Ft.Transversal.logical_cnot sim ~control:0 ~target:7;
      let ra = Ft.Sim.ideal_measure_logical_z sim steane ~offset:0 in
      let rb = Ft.Sim.ideal_measure_logical_z sim steane ~offset:7 in
      check "cnot control" true (ra = a);
      check "cnot target" true (rb = (a <> b)))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_destructive_measurement_robust () =
  let r = rng () in
  (* one bit flip before destructive readout must not change the
     logical outcome (classical Hamming correction, Sec. 2) *)
  for q = 0 to 6 do
    let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
    prep sim ~offset:0 ~plus:false;
    Ft.Transversal.logical_x sim ~block:0;
    Ft.Sim.inject sim (Pauli.single 7 q Pauli.X);
    check "robust readout" true
      (Ft.Transversal.logical_measure_z_destructive sim ~block:0)
  done

(* --- FT Toffoli -------------------------------------------------------- *)

let test_toffoli_all_basis () =
  let r = rng () in
  for input = 0 to 7 do
    let sv = Statevec.create 7 in
    if input land 1 = 1 then Statevec.x sv 0;
    if input land 2 = 2 then Statevec.x sv 1;
    if input land 4 = 4 then Statevec.x sv 2;
    Ft.Toffoli.apply sv r ~data:(0, 1, 2) ~scratch:(3, 4, 5) ~control:6;
    let expected = if input land 3 = 3 then input lxor 4 else input in
    List.iter (fun q -> Statevec.reset sv r q) [ 3; 4; 5; 6 ];
    check
      (Printf.sprintf "toffoli input %d" input)
      true
      (Qmath.Cx.norm2 (Statevec.amplitude sv expected) > 1.0 -. 1e-9)
  done

let test_toffoli_superposition () =
  let r = rng () in
  for _ = 1 to 5 do
    let sv = Statevec.create 7 in
    Statevec.h sv 0;
    Statevec.h sv 1;
    Statevec.h sv 2;
    Ft.Toffoli.apply sv r ~data:(0, 1, 2) ~scratch:(3, 4, 5) ~control:6;
    let expected = Statevec.create 7 in
    Statevec.h expected 0;
    Statevec.h expected 1;
    Statevec.h expected 2;
    Statevec.toffoli expected 0 1 2;
    List.iter
      (fun q ->
        Statevec.reset sv r q;
        Statevec.reset expected r q)
      [ 3; 4; 5; 6 ];
    check "toffoli on full superposition" true
      (Statevec.fidelity sv expected > 1.0 -. 1e-9)
  done

let test_ancilla_a_state () =
  let r = rng () in
  let sv = Statevec.create 4 in
  ignore (Ft.Toffoli.prepare_ancilla_a sv r ~a:0 ~b:1 ~c:2 ~control:3);
  Statevec.reset sv r 3;
  (* |A> = (|000>+|010>+|100>+|111>)/2, qubit order a,b,c -> bits 0,1,2 *)
  let expect = [ (0, 0.5); (2, 0.5); (1, 0.5); (7, 0.5) ] in
  List.iter
    (fun (idx, amp) ->
      check "A amplitude" true
        (Float.abs (Qmath.Cx.norm (Statevec.amplitude sv idx) -. amp) < 1e-9))
    [ (0, 0.5); (1, 0.5); (2, 0.5); (7, 0.5) ];
  ignore expect

let test_transversal_ingredients () =
  check "encoded ingredients" true
    (Ft.Toffoli.transversal_ingredients_check (rng ()))

(* --- leakage ----------------------------------------------------------- *)

let test_leakage_detection () =
  let r = rng () in
  let t = Ft.Leakage.create ~n:2 ~noise:Ft.Noise.none ~leak_rate:0.0 r in
  check "healthy not flagged" false (Ft.Leakage.detect t ~data:0 ~ancilla:1);
  Ft.Leakage.leak t 0;
  check "leaked flagged" true (Ft.Leakage.detect t ~data:0 ~ancilla:1);
  Ft.Leakage.replace t 0;
  check "replaced healthy" false (Ft.Leakage.detect t ~data:0 ~ancilla:1)

let test_leakage_detection_superposition () =
  (* detection must not disturb an unleaked qubit's superposition *)
  let r = rng () in
  let t = Ft.Leakage.create ~n:2 ~noise:Ft.Noise.none ~leak_rate:0.0 r in
  let tab = Ft.Sim.tableau (Ft.Leakage.sim t) in
  Tableau.h tab 0;
  check "not flagged" false (Ft.Leakage.detect t ~data:0 ~ancilla:1);
  check "superposition preserved" true
    (Tableau.expectation tab (Pauli.of_string "XI") = Some true)

let test_scrub () =
  let r = rng () in
  let t = Ft.Leakage.create ~n:4 ~noise:Ft.Noise.none ~leak_rate:0.0 r in
  Ft.Leakage.leak t 1;
  Ft.Leakage.leak t 2;
  let fixed = Ft.Leakage.scrub t ~qubits:[ 0; 1; 2 ] ~ancilla:3 in
  Alcotest.(check int) "two leaks repaired" 2 fixed;
  check "flags cleared" false (Ft.Leakage.leaked t 1 || Ft.Leakage.leaked t 2)

(* --- systematic vs random errors --------------------------------------- *)

let test_systematic_scaling () =
  let r = rng () in
  let p_sys n =
    Ft.Systematic.error_probability ~theta:0.01 ~steps:n ~mode:`Systematic
      ~trials:1 r
  in
  let p100 = p_sys 100 and p10 = p_sys 10 in
  (* quadratic: double-log slope 2 between N=10 and N=100 *)
  let slope = log (p100 /. p10) /. log 10.0 in
  check "systematic slope ~2" true (Float.abs (slope -. 2.0) < 0.1);
  let pr100 =
    Ft.Systematic.error_probability ~theta:0.01 ~steps:100 ~mode:`Random
      ~trials:300 r
  in
  let pr10 =
    Ft.Systematic.error_probability ~theta:0.01 ~steps:10 ~mode:`Random
      ~trials:300 r
  in
  let rslope = log (pr100 /. pr10) /. log 10.0 in
  check "random slope ~1" true (Float.abs (rslope -. 1.0) < 0.3)

(* --- Monte-Carlo separations (small but real) --------------------------- *)

let test_ft_beats_nonft () =
  let r = rng () in
  let noise = Ft.Noise.gates_only 2e-3 in
  let bad =
    Ft.Memory.shor_ec_failure ~noise ~policy:Ft.Shor_ec.Repeat_if_nontrivial
      ~verified:false ~trials:3000 r
  in
  let good =
    Ft.Memory.shor_ec_failure ~noise ~policy:Ft.Shor_ec.Repeat_if_nontrivial
      ~verified:true ~trials:3000 r
  in
  check "FT strictly better at 2e-3" true (good.failures <= bad.failures)

let test_encoded_beats_unencoded () =
  let r = rng () in
  let u = Ft.Memory.unencoded ~eps:5e-3 ~trials:6000 r in
  let e =
    Ft.Memory.encoded_ideal_ec steane ~eps:5e-3 ~rounds:1 ~trials:6000 r
  in
  check "encoding wins below crossover" true (e.failures < u.failures)

let test_noise_counters () =
  let r = rng () in
  let sim = Ft.Sim.create ~n:2 ~noise:(Ft.Noise.uniform 1.0) r in
  Ft.Sim.h sim 0;
  Ft.Sim.cnot sim 0 1;
  check "faults injected at eps=1" true (Ft.Sim.fault_count sim = 2);
  Alcotest.(check int) "gate count" 2 (Ft.Sim.gate_count sim)

let test_until_agree_policy () =
  let r = rng () in
  for q = 0 to 6 do
    let sim = Ft.Sim.create ~n:12 ~noise:Ft.Noise.none r in
    prep sim ~offset:0 ~plus:false;
    Ft.Sim.inject sim (Pauli.single 12 q Pauli.X);
    let rounds =
      Ft.Shor_ec.recover sim steane ~policy:(Ft.Shor_ec.Until_agree 5)
        ~offset:0 ~cat_base:7 ~check:11 ~verified:true
    in
    check "until-agree fixes error" false
      (Ft.Sim.ideal_measure_logical_z sim steane ~offset:0);
    check "noise-free agreement in 2 rounds" true (rounds = 2)
  done

(* §3.2's exact accounting: the Shor method couples the data block to
   24 ancilla bits through 24 XORs per double syndrome (one per unit
   of generator weight), the Steane method to 14 through 14 (two
   transversal XOR layers); the trade is that Steane's ancilla
   preparation is more complex.  Verify the 24 and the 14 from the
   gadgets' own structure. *)
let test_data_coupling_counts () =
  let shor_xors =
    Array.fold_left
      (fun acc g -> acc + Pauli.weight g)
      0 steane.Codes.Stabilizer_code.generators
  in
  Alcotest.(check int) "shor method data couplings" 24 shor_xors;
  let steane_xors = 2 * steane.Codes.Stabilizer_code.n in
  Alcotest.(check int) "steane method data couplings" 14 steane_xors;
  check "steane couples data to fewer ancilla bits" true
    (steane_xors < shor_xors)

let test_wide_cat () =
  (* cat states of width 6 (for weight-6 generators of bigger codes) *)
  let r = rng () in
  let sim = Ft.Sim.create ~n:7 ~noise:Ft.Noise.none r in
  ignore
    (Ft.Cat.prepare sim ~qubits:[ 0; 1; 2; 3; 4; 5 ] ~check:6 ~max_attempts:3);
  let tab = Ft.Sim.tableau sim in
  check "XXXXXX stabilizer" true
    (Tableau.expectation tab (Pauli.of_string "XXXXXXI") = Some true);
  check "end-to-end ZZ" true
    (Tableau.expectation tab (Pauli.of_string "ZIIIIZI") = Some true)

let test_fit_quadratic () =
  let a = Ft.Memory.fit_quadratic [ (0.01, 2.1e-3); (0.02, 8.4e-3) ] in
  check "fit recovers A=21" true (Float.abs (a -. 21.0) < 1e-6)

let suites =
  [ ( "ft.gadgets",
      [ Alcotest.test_case "shor EC all single errors" `Quick
          test_shor_ec_fixes_all_single_errors;
        Alcotest.test_case "steane EC all single errors" `Quick
          test_steane_ec_fixes_all_single_errors;
        Alcotest.test_case "gadget syndrome correct" `Quick
          test_shor_syndrome_matches_code_syndrome;
        Alcotest.test_case "clean block trivial syndrome" `Quick
          test_trivial_syndrome_on_clean_block;
        Alcotest.test_case "cat preparation" `Quick test_cat_prepared_correctly;
        Alcotest.test_case "cat verification" `Quick
          test_cat_verification_catches_split;
        Alcotest.test_case "verified |0bar> prep" `Quick test_verified_zero_prep ]
    );
    ( "ft.transversal",
      [ Alcotest.test_case "X/Z" `Quick test_transversal_x_z;
        Alcotest.test_case "weight-3 NOT" `Quick test_transversal_x_weight3;
        Alcotest.test_case "H" `Quick test_transversal_h;
        Alcotest.test_case "S" `Quick test_transversal_s;
        Alcotest.test_case "CNOT truth table" `Quick
          test_transversal_cnot_truth_table;
        Alcotest.test_case "robust readout" `Quick
          test_destructive_measurement_robust ] );
    ( "ft.toffoli",
      [ Alcotest.test_case "all basis inputs" `Quick test_toffoli_all_basis;
        Alcotest.test_case "superposition" `Quick test_toffoli_superposition;
        Alcotest.test_case "|A> preparation" `Quick test_ancilla_a_state;
        Alcotest.test_case "transversal ingredients" `Quick
          test_transversal_ingredients ] );
    ( "ft.leakage",
      [ Alcotest.test_case "detection" `Quick test_leakage_detection;
        Alcotest.test_case "superposition safe" `Quick
          test_leakage_detection_superposition;
        Alcotest.test_case "scrub" `Quick test_scrub ] );
    ( "ft.noise",
      [ Alcotest.test_case "systematic scaling" `Quick test_systematic_scaling;
        Alcotest.test_case "FT beats non-FT" `Quick test_ft_beats_nonft;
        Alcotest.test_case "encoding wins" `Quick test_encoded_beats_unencoded;
        Alcotest.test_case "noise counters" `Quick test_noise_counters;
        Alcotest.test_case "until-agree policy" `Quick test_until_agree_policy;
        Alcotest.test_case "data-coupling counts (24 vs 14)" `Quick
          test_data_coupling_counts;
        Alcotest.test_case "wide cat" `Quick test_wide_cat;
        Alcotest.test_case "quadratic fit" `Quick test_fit_quadratic ] ) ]
