open Ftqc
module Bitvec = Gf2.Bitvec
module Code = Codes.Stabilizer_code

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rng () = Random.State.make [| 97 |]

let test_weight_distribution () =
  (* the classic Golay weight enumerator *)
  let dist = Codes.Golay.weight_distribution () in
  List.iter
    (fun (w, expect) ->
      check_int (Printf.sprintf "A%d" w) expect dist.(w))
    [ (0, 1); (7, 253); (8, 506); (11, 1288); (12, 1288); (15, 506);
      (16, 253); (23, 1); (1, 0); (2, 0); (3, 0); (4, 0); (5, 0); (6, 0) ];
  check_int "4096 codewords" 4096 (Array.fold_left ( + ) 0 dist)

let test_perfect_decoding () =
  (* every pattern of <= 3 bit flips on any codeword decodes back *)
  let r = rng () in
  for _ = 1 to 200 do
    let data = Bitvec.of_int ~width:12 (Random.State.int r 4096) in
    let c = Gf2.Mat.vec_mul data Codes.Golay.generator in
    let corrupted = Bitvec.copy c in
    let flips = 1 + Random.State.int r 3 in
    let positions = ref [] in
    while List.length !positions < flips do
      let p = Random.State.int r 23 in
      if not (List.mem p !positions) then positions := p :: !positions
    done;
    List.iter (Bitvec.flip corrupted) !positions;
    check "3-error decode" true (Bitvec.equal (Codes.Golay.decode corrupted) c)
  done

let test_four_errors_fail () =
  (* 4 flips must (sometimes) miscorrect — the code is perfect, so the
     result is always *a* codeword, just sometimes the wrong one *)
  let c = Gf2.Mat.vec_mul (Bitvec.of_int ~width:12 5) Codes.Golay.generator in
  let corrupted = Bitvec.copy c in
  List.iter (Bitvec.flip corrupted) [ 0; 1; 2; 3 ];
  let decoded = Codes.Golay.decode corrupted in
  check "still a codeword" true (Codes.Golay.is_codeword decoded);
  check "but the wrong one" false (Bitvec.equal decoded c)

let test_quantum_golay_params () =
  let code = Codes.Golay.code in
  check_int "n" 23 code.n;
  check_int "k" 1 code.k;
  check_int "generators" 22 (Array.length code.generators);
  check_int "distance 7 (weight-enumerator argument)" 7
    (Codes.Golay.quantum_distance ());
  (* corroborate with a direct check in the feasible range: every
     weight-1 Pauli is detectable *)
  let found = ref false in
  for q = 0 to 22 do
    List.iter
      (fun l ->
        if Codes.Stabilizer_code.classify code (Pauli.single 23 q l) <> `Detectable
        then found := true)
      [ Pauli.X; Pauli.Y; Pauli.Z ]
  done;
  check "no weight-1 logical" false !found

let test_quantum_corrects_weight3 () =
  let r = rng () in
  let code = Codes.Golay.code in
  let d = Codes.Golay.css_decoder () in
  for _ = 1 to 100 do
    let e = ref (Pauli.identity 23) in
    (* up to 3 arbitrary single-qubit errors on distinct qubits *)
    let count = 1 + Random.State.int r 3 in
    let used = ref [] in
    while List.length !used < count do
      let q = Random.State.int r 23 in
      if not (List.mem q !used) then begin
        used := q :: !used;
        let l = [| Pauli.X; Pauli.Y; Pauli.Z |].(Random.State.int r 3) in
        e := Pauli.mul !e (Pauli.single 23 q l)
      end
    done;
    check "weight<=3 corrected" true (Code.correct d code !e = `Ok)
  done

let test_quantum_logical_states () =
  let r = rng () in
  let tab = Code.prepare_logical_zero Codes.Golay.code in
  check "Zbar = +1" true
    (Tableau.expectation tab Codes.Golay.code.logical_z.(0) = Some true);
  (* round trip through ideal recovery with a weight-3 error *)
  Tableau.apply_pauli tab
    (Pauli.mul
       (Pauli.single 23 2 Pauli.X)
       (Pauli.mul (Pauli.single 23 9 Pauli.Y) (Pauli.single 23 17 Pauli.Z)));
  ignore (Code.ideal_recover Codes.Golay.code tab r);
  check "weight-3 recovery on tableau" false
    (Code.logical_measure_z Codes.Golay.code tab r 0)

let test_memory_scaling () =
  (* quartic vs quadratic: at eps = 0.01 Golay must beat Steane by a
     wide margin *)
  let r = rng () in
  let s =
    Codes.Pauli_frame.code_memory_failure Codes.Steane.code
      (Codes.Steane.css_decoder ()) ~eps:0.02 ~rounds:1 ~trials:30000 r
  in
  let g =
    Codes.Pauli_frame.code_memory_failure Codes.Golay.code
      (Codes.Golay.css_decoder ()) ~eps:0.02 ~rounds:1 ~trials:30000 r
  in
  check "golay at least 4x better at eps=0.02" true
    (g.failures * 4 < s.failures)

let suites =
  [ ( "codes.golay",
      [ Alcotest.test_case "weight distribution" `Quick
          test_weight_distribution;
        Alcotest.test_case "perfect decoding" `Quick test_perfect_decoding;
        Alcotest.test_case "four errors miscorrect" `Quick
          test_four_errors_fail;
        Alcotest.test_case "quantum parameters" `Quick
          test_quantum_golay_params;
        Alcotest.test_case "corrects weight <= 3" `Quick
          test_quantum_corrects_weight3;
        Alcotest.test_case "logical states" `Quick test_quantum_logical_states;
        Alcotest.test_case "memory scaling" `Slow test_memory_scaling ] ) ]
