(* The distributed estimation fleet and its front door.  Load-bearing
   properties: fleet results are byte-identical to in-process runs at
   any worker count, under worker crashes and dropped results; the
   shard planner's per-chunk counts reassemble exactly; the QoS layer
   (token buckets, two-level deficit-round-robin scheduler) keeps its
   fairness and admission contracts; the codec honours its 16 MiB cap
   exactly at the boundary; and the client's retry schedule is a pure
   function of the request. *)

open Ftqc
module Protocol = Svc.Protocol
module Json = Obs.Json
module Chaos = Mc.Chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let toric_est ?(l = 6) ?(p = 0.08) ?(trials = 400) ?(seed = 7) () =
  Protocol.Toric_memory
    { l; p; trials; seed; engine = `Scalar; tile_width = 64 }

let payload_bytes p = Svc.Codec.encode (Protocol.payload_to_json p)

let fresh_socket_path () =
  let f = Filename.temp_file "ftqc_fleet" ".sock" in
  Sys.remove f;
  f

(* ------------------------------------------------ chaos fleet specs *)

let test_chaos_fleet_specs () =
  let specs =
    [
      Chaos.kill_worker ~worker:1 ();
      Chaos.hang_worker ~gen:2 ~nth:3 ~worker:0 ~seconds:1.5 ();
      Chaos.drop_result ~worker:2 ~nth:1 ();
    ]
  in
  let s = Chaos.fleet_list_to_string specs in
  check_str "printed form" "kill@1.0.0;hang:1.5@0.2.3;drop@2.0.1" s;
  (match Chaos.fleet_list_of_string s with
  | Ok back -> check "roundtrip" true (back = specs)
  | Error m -> Alcotest.fail m);
  (match Chaos.fleet_list_of_string "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty spec list must parse to []");
  List.iter
    (fun bad ->
      match Chaos.fleet_of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted bad spec %S" bad)
      | Error _ -> ())
    [ ""; "boom@1.0.0"; "kill@1.0"; "hang@1.0.0"; "hang:x@1.0.0";
      "hang:-1@1.0.0"; "kill@a.b.c"; "kill" ]

(* -------------------------------------------------------------- qos *)

let test_qos_limiter () =
  let l = Svc.Qos.limiter (Svc.Qos.limit ~rate:1.0 ~burst:2.0) in
  check "burst token 1" true (Svc.Qos.admit l ~tenant:"a" ~now:0.0 = `Ok);
  check "burst token 2" true (Svc.Qos.admit l ~tenant:"a" ~now:0.0 = `Ok);
  (match Svc.Qos.admit l ~tenant:"a" ~now:0.0 with
  | `Retry_after s ->
    check "empty bucket refills in exactly 1/rate" true
      (Float.abs (s -. 1.0) < 1e-9)
  | `Ok -> Alcotest.fail "third request must shed");
  (* buckets are per tenant *)
  check "other tenant unaffected" true
    (Svc.Qos.admit l ~tenant:"b" ~now:0.0 = `Ok);
  (* a failed admit spends nothing: one second refills one token *)
  check "refill" true (Svc.Qos.admit l ~tenant:"a" ~now:1.0 = `Ok);
  (match Svc.Qos.admit l ~tenant:"a" ~now:1.0 with
  | `Retry_after s -> check "hint again" true (Float.abs (s -. 1.0) < 1e-9)
  | `Ok -> Alcotest.fail "bucket must be empty again");
  let u = Svc.Qos.limiter Svc.Qos.unlimited in
  for _ = 1 to 64 do
    check "unlimited never sheds" true
      (Svc.Qos.admit u ~tenant:"a" ~now:0.0 = `Ok)
  done

let push_ok q ~tenant ~high ~cost v =
  match Svc.Qos.push q ~tenant ~high ~cost v with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "push rejected below capacity"

let test_qos_priority () =
  let q = Svc.Qos.create ~capacity:16 () in
  push_ok q ~tenant:"a" ~high:false ~cost:1 "a-normal";
  push_ok q ~tenant:"b" ~high:false ~cost:1 "b-normal";
  push_ok q ~tenant:"a" ~high:true ~cost:1 "a-high";
  push_ok q ~tenant:"b" ~high:true ~cost:1 "b-high";
  check_int "depth counts both levels" 4 (Svc.Qos.depth q);
  check "tenant rows" true
    (Svc.Qos.tenants q = [ ("a", 1, 1); ("b", 1, 1) ]);
  let popped = List.init 4 (fun _ -> Option.get (Svc.Qos.pop q)) in
  let is_high s = Filename.check_suffix s "high" in
  (match popped with
  | [ p1; p2; p3; p4 ] ->
    check "high strictly before normal" true
      (is_high p1 && is_high p2 && (not (is_high p3)) && not (is_high p4))
  | _ -> assert false);
  Svc.Qos.close q

let test_qos_drr_fairness () =
  let q = Svc.Qos.create ~capacity:16 () in
  (* a tenant of huge campaigns (cost clamps at 16 quanta) queued
     ahead of a tenant of tiny probes *)
  for i = 1 to 3 do
    push_ok q ~tenant:"big" ~high:false ~cost:10_000_000
      (Printf.sprintf "big%d" i)
  done;
  for i = 1 to 3 do
    push_ok q ~tenant:"small" ~high:false ~cost:1
      (Printf.sprintf "small%d" i)
  done;
  let popped = List.init 6 (fun _ -> Option.get (Svc.Qos.pop q)) in
  let pos p =
    let rec go i = function
      | [] -> Alcotest.fail (p ^ " never dispensed")
      | x :: tl -> if String.equal x p then i else go (i + 1) tl
    in
    go 0 popped
  in
  (* deficit round robin: the probes all clear before the big
     tenant's first job saves up enough deficit *)
  check "small tenant is not starved" true (pos "small3" < pos "big1");
  check "fifo within a tenant" true
    (pos "big1" < pos "big2" && pos "big2" < pos "big3"
    && pos "small1" < pos "small2" && pos "small2" < pos "small3");
  check_int "drained" 0 (Svc.Qos.depth q);
  Svc.Qos.close q;
  check "pop after close+drain is None" true (Svc.Qos.pop q = None)

let test_qos_overload_close () =
  let q = Svc.Qos.create ~capacity:2 () in
  push_ok q ~tenant:"a" ~high:false ~cost:1 1;
  push_ok q ~tenant:"a" ~high:true ~cost:1 2;
  (match Svc.Qos.push q ~tenant:"b" ~high:false ~cost:1 3 with
  | Error `Overloaded -> ()
  | _ -> Alcotest.fail "push above capacity must be `Overloaded");
  Svc.Qos.close q;
  (match Svc.Qos.push q ~tenant:"a" ~high:false ~cost:1 4 with
  | Error `Closed -> ()
  | _ -> Alcotest.fail "push after close must be `Closed");
  (* a closed queue drains (high first) before yielding None *)
  check "drains high entry" true (Svc.Qos.pop q = Some 2);
  check "drains normal entry" true (Svc.Qos.pop q = Some 1);
  check "then None" true (Svc.Qos.pop q = None)

(* ------------------------------------------------- codec boundaries *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let test_codec_at_cap () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter close_quiet [ a; b ])
    (fun () ->
      (* a JSON string of max_frame - 3 'x's encodes to exactly
         max_frame payload bytes (two quotes plus the renderer's
         trailing newline, nothing escaped) *)
      let j = Json.String (String.make (Svc.Codec.max_frame - 3) 'x') in
      let wr = Thread.create (fun () -> Svc.Codec.write a j) () in
      (match Svc.Codec.read b with
      | Ok (j', raw) ->
        check_int "payload exactly at the cap" Svc.Codec.max_frame
          (String.length raw);
        check "roundtrip at the cap" true (j' = j)
      | Error `Closed -> Alcotest.fail "cap-sized frame read as `Closed"
      | Error (`Bad m) -> Alcotest.fail ("cap-sized frame rejected: " ^ m));
      Thread.join wr)

let test_codec_over_cap () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter close_quiet [ a; b ])
    (fun () ->
      (* a length prefix one past the cap is rejected from the header
         alone — no payload byte is ever read *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Svc.Codec.max_frame + 1));
      check_int "header written" 4 (Unix.write a hdr 0 4);
      match Svc.Codec.read b with
      | Error (`Bad _) -> ()
      | Ok _ -> Alcotest.fail "oversized frame accepted"
      | Error `Closed -> Alcotest.fail "oversized frame read as `Closed")

let test_codec_partial_vs_closed () =
  (* EOF mid-header is `Bad ... *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  ignore (Unix.write a (Bytes.of_string "\x00\x00") 0 2);
  Unix.close a;
  (match Svc.Codec.read b with
  | Error (`Bad _) -> ()
  | _ -> Alcotest.fail "EOF mid-header must be `Bad");
  Unix.close b;
  (* ... but a clean EOF at a frame boundary is `Closed *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.close a;
  (match Svc.Codec.read b with
  | Error `Closed -> ()
  | _ -> Alcotest.fail "EOF at a frame boundary must be `Closed");
  Unix.close b

(* --------------------------------------------------------- jobq *)

let test_jobq_concurrent () =
  let q = Svc.Jobq.create ~capacity:1024 in
  let mu = Mutex.create () in
  let got = ref [] in
  let consumers =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            let rec go () =
              match Svc.Jobq.pop q with
              | Some v ->
                Mutex.lock mu;
                got := v :: !got;
                Mutex.unlock mu;
                go ()
              | None -> ()
            in
            go ())
          ())
  in
  let producers =
    List.init 4 (fun p ->
        Thread.create
          (fun () ->
            for i = 0 to 99 do
              match Svc.Jobq.push q ((100 * p) + i) with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "push rejected below capacity"
            done)
          ())
  in
  List.iter Thread.join producers;
  Svc.Jobq.close q;
  List.iter Thread.join consumers;
  let sorted = List.sort compare !got in
  check_int "every entry drained exactly once" 400 (List.length sorted);
  List.iteri (fun i v -> check_int "entry" i v) sorted

(* ----------------------------------------------- shard planner *)

let test_exec_shard_equivalence () =
  let est =
    Protocol.Toric_scan
      { ls = [ 4; 6 ]; ps = [ 0.05; 0.1 ]; trials = 400; seed = 3;
        engine = `Scalar; tile_width = 64 }
  in
  match Svc.Exec.plan est with
  | Whole -> Alcotest.fail "a toric scan must shard"
  | Sharded cells ->
    check_int "one cell per (l, p)" 4 (List.length cells);
    let totals = Array.make (List.length cells) 0 in
    List.iter
      (fun c ->
        (* split each cell at an uneven boundary: the second range's
           prefill must replay the first range's chunks exactly *)
        let n = Svc.Exec.nchunks c in
        let mid = max 1 (n / 3) in
        let parts =
          Svc.Exec.cell_counts est c ~lo:0 ~hi:mid
          @ Svc.Exec.cell_counts est c ~lo:mid ~hi:n
        in
        check_int "full chunk coverage" n (List.length parts);
        List.iteri (fun i (idx, _) -> check_int "chunk order" i idx) parts;
        totals.(c.Svc.Exec.c_index) <-
          List.fold_left (fun acc (_, f) -> acc + f) 0 parts)
      cells;
    let payload = Svc.Exec.assemble est ~totals in
    let direct = Svc.Exec.execute ~domains:2 est in
    check_str "assembled bytes match a direct run" (payload_bytes direct)
      (payload_bytes payload)

let test_exec_shard_css () =
  (* the css-memory estimator is fleet-shardable on the batch engine:
     chunked cell counts must reassemble to the direct run's bytes *)
  let est =
    Protocol.Css_memory
      { code = "steane7"; eps = 0.05; rounds = 2; trials = 500; seed = 11;
        engine = `Batch; tile_width = 128 }
  in
  match Svc.Exec.plan est with
  | Whole -> Alcotest.fail "css-memory must shard"
  | Sharded cells ->
    check_int "one cell" 1 (List.length cells);
    let c = List.hd cells in
    check_str "batch campaign engine" "batch" c.Svc.Exec.c_engine;
    let n = Svc.Exec.nchunks c in
    let mid = max 1 (n / 3) in
    let parts =
      Svc.Exec.cell_counts est c ~lo:0 ~hi:mid
      @ Svc.Exec.cell_counts est c ~lo:mid ~hi:n
    in
    check_int "full chunk coverage" n (List.length parts);
    let total = List.fold_left (fun acc (_, f) -> acc + f) 0 parts in
    let payload = Svc.Exec.assemble est ~totals:[| total |] in
    let direct = Svc.Exec.execute ~domains:2 est in
    check_str "assembled css bytes match a direct run" (payload_bytes direct)
      (payload_bytes payload)

(* ------------------------------------------- fleet, end to end *)

(* Worker processes are this test binary re-exec'd: test/main.ml
   calls [Svc.Fleet.run_if_worker] before Alcotest runs. *)

let test_fleet_byte_identity () =
  let est = toric_est ~trials:2000 ~seed:9 () in
  let direct = Svc.Exec.execute ~domains:2 est in
  let cfg =
    Svc.Fleet.config ~domains:1 ~hb_interval:0.05 ~restart_backoff:0.05
      ~chaos:
        [
          Chaos.kill_worker ~worker:1 ~nth:1 ();
          Chaos.drop_result ~worker:0 ~nth:0 ();
        ]
      ~size:2 ()
  in
  let fleet = Svc.Fleet.create cfg in
  Fun.protect
    ~finally:(fun () -> Svc.Fleet.shutdown fleet)
    (fun () ->
      let payload = Svc.Fleet.execute fleet est in
      check_str "bytes identical under kill + drop chaos"
        (payload_bytes direct) (payload_bytes payload);
      (* the kill's restart is counted before its backoff sleep, but
         give the supervisor a moment anyway *)
      let rec settle n =
        let s = Svc.Fleet.stats fleet in
        if s.Svc.Fleet.s_restarts >= 1 || n = 0 then s
        else begin
          Thread.delay 0.05;
          settle (n - 1)
        end
      in
      let s = settle 40 in
      check "the killed worker restarted" true (s.Svc.Fleet.s_restarts >= 1);
      check "lost shards were re-dispatched" true
        (s.Svc.Fleet.s_redispatched >= 2);
      check_int "the fleet is whole again" 2 s.Svc.Fleet.s_alive;
      check_int "registry row per slot" 2
        (List.length s.Svc.Fleet.s_workers))

(* An in-process daemon (as in test_svc) with a fleet and a rate
   limit at the front door. *)
let with_server ?fleet ?(limit = Svc.Qos.unlimited) ?(workers = 2)
    ?(max_queue = 8) f =
  Mc.Campaign.reset_stop ();
  let socket = fresh_socket_path () in
  let cfg =
    Svc.Server.config ~workers ~max_queue ~cache_capacity:8 ~domains:2
      ~progress_interval:0.05 ?fleet ~limit ~socket ()
  in
  let obs = Obs.create () in
  let th = Thread.create (fun () -> Svc.Server.run ~obs cfg) () in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n = 0 then Alcotest.fail "server did not start"
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  Fun.protect
    ~finally:(fun () ->
      Mc.Campaign.request_stop ();
      Thread.join th;
      Mc.Campaign.reset_stop ();
      check "socket file removed on shutdown" false (Sys.file_exists socket))
    (fun () -> f socket)

let test_server_fleet_status () =
  let est = toric_est ~trials:2000 ~seed:11 () in
  let direct = Svc.Exec.execute ~domains:2 est in
  let fleet =
    Svc.Fleet.config ~domains:1 ~hb_interval:0.05 ~restart_backoff:0.05
      ~chaos:[ Chaos.kill_worker ~worker:0 () ] ~size:2 ()
  in
  with_server ~fleet (fun socket ->
      match
        Svc.Client.with_connection ~socket (fun fd ->
            let r = Svc.Client.request fd est in
            (* the restart is counted before the lost shard can
               complete elsewhere, but poll a little to be safe *)
            let rec status n =
              match Svc.Client.status fd with
              | Error e -> Alcotest.fail e.Svc.Client.message
              | Ok j -> (
                match Protocol.frame_field j "fleet" with
                | None -> Alcotest.fail "status frame has no fleet section"
                | Some fl -> (
                  match Json.member "restarts" fl with
                  | Some (Json.Int r) when r >= 1 || n = 0 -> fl
                  | _ when n = 0 -> fl
                  | _ ->
                    Thread.delay 0.05;
                    status (n - 1)))
            in
            (r, status 40))
      with
      | Error msg -> Alcotest.fail msg
      | Ok (r, fl) ->
        (match r with
        | Error e -> Alcotest.fail e.Svc.Client.message
        | Ok o ->
          check_str "served fleet bytes match an in-process run"
            (payload_bytes direct)
            (payload_bytes o.Svc.Client.payload));
        let geti k =
          match Json.member k fl with Some (Json.Int i) -> i | _ -> -1
        in
        check_int "fleet size in status" 2 (geti "size");
        check_int "all workers alive" 2 (geti "alive");
        check "restart visible in status" true (geti "restarts" >= 1);
        check "re-dispatch visible in status" true
          (geti "redispatched" >= 1))

(* ------------------------------------------------ client retry *)

let test_rate_limit_and_retry () =
  with_server ~limit:(Svc.Qos.limit ~rate:0.001 ~burst:1.0) (fun socket ->
      let est seed = toric_est ~trials:50 ~seed () in
      (match
         Svc.Client.with_connection ~socket (fun fd ->
             Svc.Client.request fd (est 1))
       with
      | Ok (Ok _) -> ()
      | _ -> Alcotest.fail "first request must spend the burst token");
      (match
         Svc.Client.with_connection ~socket (fun fd ->
             Svc.Client.request fd (est 2))
       with
      | Ok (Error e) ->
        check_str "sheds as overloaded" "overloaded" e.Svc.Client.code;
        check "carries a retry-after hint" true
          (match e.Svc.Client.retry_after_s with
          | Some s -> s > 0.0
          | None -> false)
      | _ -> Alcotest.fail "second request must shed");
      (* bounded retry rides the hint, capped; then the error *)
      let sleeps = ref [] in
      (match
         Svc.Client.request_retrying ~retries:2 ~retry_cap:0.01
           ~sleep:(fun s -> sleeps := s :: !sleeps)
           ~socket (est 3)
       with
      | Error e ->
        check_str "still overloaded after retries" "overloaded"
          e.Svc.Client.code
      | Ok _ -> Alcotest.fail "retries cannot outlast a 1000 s refill");
      check_int "one sleep per retry" 2 (List.length !sleeps);
      List.iter (fun s -> check "sleep capped at retry_cap" true (s = 0.01))
        !sleeps;
      (* buckets are per tenant: another tenant passes immediately *)
      match
        Svc.Client.with_connection ~socket (fun fd ->
            Svc.Client.request ~tenant:"other" fd (est 4))
      with
      | Ok (Ok _) -> ()
      | _ -> Alcotest.fail "another tenant must not be throttled")

let test_retry_schedule_deterministic () =
  (* connect failures are retryable; the backoff schedule is a pure
     function of the request hash and attempt number *)
  let socket = fresh_socket_path () in
  let est = toric_est ~seed:5 () in
  let run () =
    let sleeps = ref [] in
    (match
       Svc.Client.request_retrying ~retries:3 ~backoff:0.5
         ~sleep:(fun s -> sleeps := s :: !sleeps)
         ~socket est
     with
    | Error e -> check_str "transport error" "transport" e.Svc.Client.code
    | Ok _ -> Alcotest.fail "connect to a missing socket cannot succeed");
    List.rev !sleeps
  in
  let s1 = run () in
  let s2 = run () in
  check "schedule is deterministic" true (s1 = s2);
  check_int "one sleep per retry" 3 (List.length s1);
  List.iteri
    (fun i s ->
      let base = 0.5 *. Float.of_int (1 lsl i) in
      check "exponential with jitter factor in [0.5, 1)" true
        (s >= 0.5 *. base && s < base))
    s1

(* -------------------------------------------- in-memory ledger *)

let test_campaign_in_memory () =
  let store = Mc.Campaign.in_memory () in
  let job =
    { Mc.Campaign.label = ""; engine = "scalar"; seed = 1; trials = 10;
      chunk = 2 }
  in
  check "empty" true (Mc.Campaign.find store ~job ~chunk:0 = None);
  Mc.Campaign.record store ~job ~chunk:0 ~failures:3;
  Mc.Campaign.record store ~job ~chunk:2 ~failures:1;
  check "finds recorded chunk" true
    (Mc.Campaign.find store ~job ~chunk:2 = Some 1);
  check "gap still missing" true
    (Mc.Campaign.find store ~job ~chunk:1 = None);
  check_int "completed chunks" 2 (Mc.Campaign.completed store ~job);
  check_str "no backing file" "" (Mc.Campaign.file store);
  (* flush is a no-op, not a crash *)
  Mc.Campaign.flush store

let suites =
  [
    ( "fleet",
      [
        Alcotest.test_case "chaos fleet spec roundtrip" `Quick
          test_chaos_fleet_specs;
        Alcotest.test_case "qos token bucket" `Quick test_qos_limiter;
        Alcotest.test_case "qos strict priority" `Quick test_qos_priority;
        Alcotest.test_case "qos drr fairness" `Quick test_qos_drr_fairness;
        Alcotest.test_case "qos overload and close drain" `Quick
          test_qos_overload_close;
        Alcotest.test_case "codec frame at the 16 MiB cap" `Quick
          test_codec_at_cap;
        Alcotest.test_case "codec frame over the cap" `Quick
          test_codec_over_cap;
        Alcotest.test_case "codec partial header vs clean close" `Quick
          test_codec_partial_vs_closed;
        Alcotest.test_case "jobq concurrent push, drain after close" `Quick
          test_jobq_concurrent;
        Alcotest.test_case "shard counts reassemble bit-identically" `Slow
          test_exec_shard_equivalence;
        Alcotest.test_case "css-memory shard reassembles bit-identically"
          `Slow test_exec_shard_css;
        Alcotest.test_case "campaign in-memory ledger" `Quick
          test_campaign_in_memory;
        Alcotest.test_case "fleet byte identity under chaos" `Slow
          test_fleet_byte_identity;
        Alcotest.test_case "served fleet result and status" `Slow
          test_server_fleet_status;
        Alcotest.test_case "rate limit sheds, client retries" `Slow
          test_rate_limit_and_retry;
        Alcotest.test_case "retry schedule is deterministic" `Quick
          test_retry_schedule_deterministic;
      ] );
  ]
