(** Permutations of \{0, …, n−1\}, the concrete elements of the finite
    groups used in §7.4 (A₅, S₅, …).

    A permutation is stored as the image array: [p.(i)] is the image of
    point [i].  Composition is written left-to-right: [compose p q]
    first applies [p], then [q], i.e. [(compose p q).(i) = q.(p.(i))].
    This matches the "flux metamorphosis" convention in which
    conjugation [u ↦ v⁻¹ u v] composes naturally. *)

type t

(** [identity n] is the identity on [n] points. *)
val identity : int -> t

(** [of_array a] validates [a] as a bijection and wraps it. *)
val of_array : int array -> t

(** [to_array p] is a copy of the image array. *)
val to_array : t -> int array

(** [degree p] is the number of points moved on (the [n]). *)
val degree : t -> int

(** [apply p i] is the image of point [i]. *)
val apply : t -> int -> int

(** [compose p q] applies [p] then [q]. *)
val compose : t -> t -> t

(** [inverse p] is the inverse permutation. *)
val inverse : t -> t

(** [conj u v] is v⁻¹·u·v, the conjugate of [u] by [v] — the flux
    metamorphosis rule of Eq. (40). *)
val conj : t -> t -> t

(** [commutator a b] is a⁻¹·b⁻¹·a·b. *)
val commutator : t -> t -> t

(** [of_cycles n cycles] builds a permutation on [n] points from
    disjoint cycles given 1-based (matching the paper's notation
    (125), (234), (14)(35)).  Raises [Invalid_argument] if cycles
    overlap or mention points outside 1..n. *)
val of_cycles : int -> int list list -> t

(** [to_cycles p] decomposes into nontrivial cycles, 1-based, each
    cycle starting from its least element, cycles sorted by least
    element. *)
val to_cycles : t -> int list list

(** [is_identity p] / [equal p q] / [compare p q] / [hash p]. *)
val is_identity : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [order p] is the multiplicative order. *)
val order : t -> int

(** [sign p] is +1 for even permutations, −1 for odd ones. *)
val sign : t -> int

(** [pp] prints cycle notation, e.g. "(1 2 5)(3 4)"; identity prints
    as "e". *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
