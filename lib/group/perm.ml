type t = int array

let identity n = Array.init n Fun.id

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n then invalid_arg "Perm.of_array: out of range";
      if seen.(x) then invalid_arg "Perm.of_array: not a bijection";
      seen.(x) <- true)
    a;
  Array.copy a

let to_array p = Array.copy p
let degree p = Array.length p
let apply p i = p.(i)

let compose p q =
  if Array.length p <> Array.length q then invalid_arg "Perm.compose: degree";
  Array.init (Array.length p) (fun i -> q.(p.(i)))

let inverse p =
  let r = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> r.(x) <- i) p;
  r

let conj u v = compose (compose (inverse v) u) v
let commutator a b = compose (compose (inverse a) (inverse b)) (compose a b)

let of_cycles n cycles =
  let a = Array.init n Fun.id in
  let touched = Array.make n false in
  List.iter
    (fun cycle ->
      let cycle0 =
        List.map
          (fun x ->
            if x < 1 || x > n then invalid_arg "Perm.of_cycles: point range";
            x - 1)
          cycle
      in
      List.iter
        (fun x ->
          if touched.(x) then invalid_arg "Perm.of_cycles: overlapping cycles";
          touched.(x) <- true)
        cycle0;
      match cycle0 with
      | [] -> ()
      | first :: _ ->
        let rec link = function
          | [ last ] -> a.(last) <- first
          | x :: (y :: _ as rest) ->
            a.(x) <- y;
            link rest
          | [] -> ()
        in
        link cycle0)
    cycles;
  a

let to_cycles p =
  let n = Array.length p in
  let seen = Array.make n false in
  let cycles = ref [] in
  for i = 0 to n - 1 do
    if (not seen.(i)) && p.(i) <> i then begin
      let cycle = ref [] in
      let j = ref i in
      while not seen.(!j) do
        seen.(!j) <- true;
        cycle := !j :: !cycle;
        j := p.(!j)
      done;
      cycles := List.rev_map (fun x -> x + 1) !cycle :: !cycles
    end
  done;
  List.rev !cycles

let is_identity p =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) p;
  !ok

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let hash (p : t) = Hashtbl.hash p

let order p =
  let rec loop q k = if is_identity q then k else loop (compose q p) (k + 1) in
  loop p 1

let sign p =
  let s = ref 1 in
  List.iter
    (fun cycle -> if List.length cycle mod 2 = 0 then s := - !s)
    (to_cycles p);
  !s

let to_string p =
  match to_cycles p with
  | [] -> "e"
  | cycles ->
    String.concat ""
      (List.map
         (fun cycle ->
           "(" ^ String.concat " " (List.map string_of_int cycle) ^ ")")
         cycles)

let pp fmt p = Format.pp_print_string fmt (to_string p)
