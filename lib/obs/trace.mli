(** Hierarchical spans with deterministic identities, exported as
    Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).

    A span's {!span.id} is a pure function of the work's identity
    path (label, engine, seed, chunk, …) via {!span_id}, so the span
    {e tree} is bit-identical at any domain count; only the timings
    (taken from the monotonic clock) vary run to run.  Workers record
    into unsynchronized per-worker {!buf}s which the orchestrating
    thread folds in a deterministic order ({!merge_into}) — the same
    discipline as [Metrics] per-worker registries — into the bounded
    process-wide {!install}ed sink.

    Tracing is purely observational: when no sink is installed every
    producer is a no-op, and with one installed nothing here draws
    randomness, changes control flow, or writes to stdout. *)

type span = {
  id : string;
  parent : string;  (** [""] for a root span *)
  name : string;
  cat : string;  (** coarse category: ["runner"], ["campaign"], ["svc"], … *)
  start_s : float;  (** monotonic seconds ([Obs.now]) *)
  dur_s : float;
  args : (string * Json.t) list;
}

(** The on-disk schema identifier, ["ftqc-trace/1"]. *)
val schema_version : string

(** [span_id parts] — deterministic 16-hex-digit id of an identity
    path (FNV-1a 64).  Equal paths give equal ids; components are
    separator-folded so [["ab"; "c"]] and [["a"; "bc"]] differ. *)
val span_id : string list -> string

(** {1 Per-worker buffers} (unsynchronized; single writer each) *)

type buf

val buf : unit -> buf
val buf_capacity : int

(** [record b s] — append; past {!buf_capacity} spans are counted as
    dropped instead. *)
val record : buf -> span -> unit

(** [contents b] — recorded spans, oldest first. *)
val contents : buf -> span list

val buf_length : buf -> int

(** [merge_into ~into b] — order-preserving append of [b]'s spans
    (and drop count); deterministic whenever callers fold buffers in
    a deterministic order. *)
val merge_into : into:buf -> buf -> unit

(** {1 The process-wide sink} *)

type sink

(** [sink ?capacity ()] — a bounded collection point (default
    capacity 262144 spans; overflow is counted, never blocks). *)
val sink : ?capacity:int -> unit -> sink

(** [install (Some sk)] — make [sk] the ambient sink every producer
    emits into; [install None] turns tracing off. *)
val install : sink option -> unit

val installed : unit -> sink option

(** [enabled ()] — whether a sink is installed (the producers' gate:
    span bookkeeping is skipped entirely when off). *)
val enabled : unit -> bool

(** [emit s] — record one finished span into the installed sink
    (no-op without one).  Thread- and domain-safe. *)
val emit : span -> unit

(** [absorb b] — fold a whole buffer into the installed sink under
    one lock acquisition. *)
val absorb : buf -> unit

val sink_spans : sink -> span list
val sink_length : sink -> int
val sink_dropped : sink -> int

(** {1 Ambient parent and timed convenience}

    The current parent span id is tracked per {e thread} (daemon
    worker threads each carry their own request context).  Worker
    {e domains} should not rely on it — the runner passes parents
    explicitly into its workers. *)

val current_parent : unit -> string

(** [with_parent id f] — run [f] with [id] as the ambient parent,
    restoring the previous parent after (exception-safe). *)
val with_parent : string -> (unit -> 'a) -> 'a

(** [timed ~name ~id f] — run [f] with [id] ambient as parent, then
    emit a span for it parented under the previous ambient parent,
    timed on the monotonic clock.  Emits even when [f] raises.  When
    tracing is disabled this is exactly [f ()]. *)
val timed :
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string ->
  id:string ->
  (unit -> 'a) ->
  'a

(** {1 Export} *)

(** [to_json sk] — the Chrome trace-event document: an object with
    [schema], [displayTimeUnit], [dropped] and [traceEvents] (one
    ["ph": "X"] complete event per span, [ts]/[dur] in integer
    microseconds rebased to the earliest span; the span identity
    rides in [args.span_id]/[args.parent]). *)
val to_json : sink -> Json.t

(** [write sk ~file] — {!to_json} via [Json.write_atomic]. *)
val write : sink -> file:string -> unit

(** [validate j] — check a parsed trace document: schema tag, every
    event a well-formed complete event (non-negative [ts]/[dur],
    span identity present, no self-parenting), and every non-root
    span contained within some occurrence of its parent (identical
    replayed workloads may legally repeat ids).  Returns the event
    count. *)
val validate : Json.t -> (int, string) result
