(** The committed performance trajectory ([ftqc-bench-trajectory/1])
    and its regression comparator.

    The trajectory file is an append-only record: one entry per PR,
    written by [bench --record], holding the smoke probe's measured
    shots/sec per (kernel, tile width) pair and the daemon's
    cold/cache-hit request latencies.  {!compare_entries} is the pure
    comparator behind [manifest_check --perf-diff] and the CI
    perf-gate job: it diffs the {e last} entry of a base trajectory
    against the last entry of a freshly measured one and flags

    - throughput regressions: a kernel's new shots/sec below
      [throughput_floor] (default {!default_throughput_floor} = 0.75,
      i.e. a >25% slowdown) times its base value, or a (kernel,
      width) pair that disappeared from the measurement;
    - latency regressions: a daemon latency above [latency_ceiling]
      (default {!default_latency_ceiling} = 2.0) times its base value.

    Improvements and new kernels are reported but never fail.  Smoke
    measurements are noisy; the asymmetric band (25% down vs 2x up)
    is deliberately loose so the gate only trips on real cliffs. *)

type kernel = { name : string; width : int; shots_per_s : float }

(** Daemon smoke-probe latencies: cold (fresh job) and cache-hit
    request round-trips, in seconds. *)
type daemon = { cold_s : float; hit_s : float }

(** One trajectory entry ([label] names the PR / measurement run;
    [daemon] is missing when the service probe did not run). *)
type entry = { label : string; kernels : kernel list; daemon : daemon option }

(** The trajectory schema tag, ["ftqc-bench-trajectory/1"]. *)
val schema : string

val default_throughput_floor : float
val default_latency_ceiling : float

(** {1 Encoding} *)

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> (entry, string) result

(** [trajectory_to_json entries] — the full document (schema tag +
    entry list, oldest first). *)
val trajectory_to_json : entry list -> Json.t

val trajectory_of_json : Json.t -> (entry list, string) result

(** [read_trajectory file] — parse a trajectory document.  Rejects
    wrong/missing schema tags and malformed entries. *)
val read_trajectory : string -> (entry list, string) result

(** [append ~file entry] — append [entry] to the trajectory at
    [file] (created with an empty history if missing), atomically. *)
val append : file:string -> entry -> unit

(** {1 Comparison} *)

(** One comparator finding: a human-readable [line] plus whether it
    counts as a regression. *)
type verdict = { line : string; regressed : bool }

(** [compare_entries ?throughput_floor ?latency_ceiling ~base entry]
    — pure: one verdict per base kernel (matched by name {e and}
    width), per new kernel absent from base, and per daemon latency.
    An empty base kernel list yields a single non-regressed note. *)
val compare_entries :
  ?throughput_floor:float ->
  ?latency_ceiling:float ->
  base:entry ->
  entry ->
  verdict list

(** [regressed verdicts] — true when any verdict is a regression. *)
val regressed : verdict list -> bool

(** [compare_files ~base ~file] — load both trajectories, diff their
    last entries.  Errors on unreadable files or empty trajectories. *)
val compare_files :
  ?throughput_floor:float ->
  ?latency_ceiling:float ->
  base:string ->
  string ->
  (verdict list, string) result
