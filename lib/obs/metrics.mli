(** Counters, gauges, timers and fixed-bucket histograms.

    A [t] is cheap to create and is meant to be owned by one worker at
    a time (no internal locking): each worker accumulates into its own
    registry and the per-worker registries are merged afterwards — the
    same discipline as the per-chunk result slots of [Mc.Runner], so
    metrics collection can never perturb the simulation it observes.

    {!merge_into} is associative, and commutative for every
    integer-valued series (counters, histogram bucket counts,
    observation counts); float totals are summed in merge order, which
    callers keep deterministic by merging in a fixed (chunk) order. *)

type t

val create : unit -> t

(** {1 Counters} (monotone ints) *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

(** [counter t name] — current value (0 if never touched). *)
val counter : t -> string -> int

(** {1 Gauges} (last-written floats; merge keeps the source value) *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

(** {1 Timers / summaries} (count, total, min, max of observations) *)

val observe : t -> string -> float -> unit

(** [summary t name] — [(count, total, min, max)] if any observation
    was recorded. *)
val summary : t -> string -> (int * float * float * float) option

(** {1 Fixed-bucket histograms} *)

(** Upper bucket bounds for durations in seconds: 1µs … 100s by
    decades, plus an overflow bucket. *)
val time_buckets : float array

(** [observe_histogram ?bounds t name v] — count [v] into the first
    bucket whose upper bound is ≥ [v] (one extra overflow bucket at
    the end).  [bounds] (default {!time_buckets}, must be strictly
    increasing) is fixed by the first observation of [name]; later
    calls must pass a compatible value or omit it. *)
val observe_histogram : ?bounds:float array -> t -> string -> float -> unit

(** [histogram t name] — [(bounds, counts)] with
    [Array.length counts = Array.length bounds + 1]. *)
val histogram : t -> string -> (float array * int array) option

(** {1 Merge / serialize} *)

(** [merge_into ~into src] — fold every series of [src] into [into].
    Histogram merges require identical bounds ([Invalid_argument]
    otherwise). *)
val merge_into : into:t -> t -> unit

(** [merge a b] — functional merge into a fresh registry ([a] first,
    then [b]; associative). *)
val merge : t -> t -> t

(** [to_json t] — all series, names sorted, as
    [{counters; gauges; summaries; histograms}]. *)
val to_json : t -> Json.t
