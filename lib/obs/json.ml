type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------ encode *)

(* Shortest decimal form that round-trips to the same float: try
   successively wider %.Ng formats.  Keeps manifests readable (0.05,
   not 0.05000000000000000278) without losing a bit. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else try_prec (p + 1)
    in
    try_prec 9

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b ~indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        emit b ~indent:(indent + 2) item)
      items;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        escape_string b k;
        Buffer.add_string b ": ";
        emit b ~indent:(indent + 2) item)
      fields;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Crash-safe write: stage the document in a temp file in the same
   directory (rename across filesystems is not atomic, same-dir is),
   optionally fsync, then [Sys.rename] over the target.  A reader —
   or a validator in CI — therefore sees either the old complete
   document or the new complete document, never a truncated prefix. *)
let write_atomic ?(fsync = false) ~file v =
  let dir = Filename.dirname file in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename file ^ ".") ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string v);
         flush oc;
         if fsync then Unix.fsync (Unix.descr_of_out_channel oc))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp file
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write ~file v = write_atomic ~file v

(* ------------------------------------------------------------- parse *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %S" word)
  in
  let utf8_of_code b code =
    (* BMP code point to UTF-8 bytes *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> utf8_of_code b code
          | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* [of_string] already rejects trailing garbage, so a file that was
   appended to after a crash, or truncated mid-token, parses to
   [Error] here rather than silently yielding a prefix document. *)
let read_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Printf.sprintf "%s: %s" file msg)
  | exception End_of_file -> Error (Printf.sprintf "%s: unexpected end of file" file)
  | contents -> (
    match of_string contents with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: %s" file msg))

(* --------------------------------------------------------- accessors *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
