type kernel = { name : string; width : int; shots_per_s : float }
type daemon = { cold_s : float; hit_s : float }
type entry = { label : string; kernels : kernel list; daemon : daemon option }

let schema = "ftqc-bench-trajectory/1"
let default_throughput_floor = 0.75
let default_latency_ceiling = 2.0

(* ------------------------------------------------------- encoding *)

let kernel_to_json k =
  Json.Obj
    [ ("name", Json.String k.name); ("width", Json.Int k.width);
      ("shots_per_s", Json.Float k.shots_per_s) ]

let entry_to_json e =
  Json.Obj
    (( "label", Json.String e.label )
    :: ("kernels", Json.List (List.map kernel_to_json e.kernels))
    ::
    (match e.daemon with
    | None -> []
    | Some d ->
      [ ( "daemon",
          Json.Obj
            [ ("cold_s", Json.Float d.cold_s); ("hit_s", Json.Float d.hit_s) ]
        ) ]))

let trajectory_to_json entries =
  Json.Obj
    [ ("schema", Json.String schema);
      ("entries", Json.List (List.map entry_to_json entries)) ]

let ( let* ) = Result.bind

let mfield j k what =
  match Json.member k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing %S" what k)

let mfloat j k what =
  let* v = mfield j k what in
  match Json.to_float_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: %S must be a number" what k)

let kernel_of_json j =
  let what = "trajectory kernel" in
  let* name = mfield j "name" what in
  let* name =
    match Json.to_string_opt name with
    | Some s -> Ok s
    | None -> Error (what ^ ": \"name\" must be a string")
  in
  let* width = mfield j "width" what in
  let* width =
    match Json.to_int_opt width with
    | Some w -> Ok w
    | None -> Error (what ^ ": \"width\" must be an integer")
  in
  let* shots_per_s = mfloat j "shots_per_s" what in
  Ok { name; width; shots_per_s }

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* tl = map_result f tl in
    Ok (y :: tl)

let entry_of_json j =
  let what = "trajectory entry" in
  let* label =
    match Json.member "label" j with
    | None -> Ok ""
    | Some v -> (
      match Json.to_string_opt v with
      | Some s -> Ok s
      | None -> Error (what ^ ": \"label\" must be a string"))
  in
  let* kernels = mfield j "kernels" what in
  let* kernels =
    match Json.to_list_opt kernels with
    | Some l -> map_result kernel_of_json l
    | None -> Error (what ^ ": \"kernels\" must be a list")
  in
  let* daemon =
    match Json.member "daemon" j with
    | None | Some Json.Null -> Ok None
    | Some d ->
      let* cold_s = mfloat d "cold_s" "trajectory daemon" in
      let* hit_s = mfloat d "hit_s" "trajectory daemon" in
      Ok (Some { cold_s; hit_s })
  in
  Ok { label; kernels; daemon }

let trajectory_of_json j =
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema -> Ok ()
    | Some (Json.String s) ->
      Error (Printf.sprintf "trajectory schema is %S, want %S" s schema)
    | _ -> Error "trajectory document has no \"schema\" tag"
  in
  let* entries = mfield j "entries" "trajectory" in
  match Json.to_list_opt entries with
  | Some l -> map_result entry_of_json l
  | None -> Error "trajectory \"entries\" must be a list"

let read_trajectory file =
  let* j = Json.read_file file in
  trajectory_of_json j

let append ~file entry =
  let existing =
    if Sys.file_exists file then
      match read_trajectory file with Ok l -> l | Error m -> failwith m
    else []
  in
  Json.write ~file (trajectory_to_json (existing @ [ entry ]))

(* ----------------------------------------------------- comparison *)

type verdict = { line : string; regressed : bool }

let regressed = List.exists (fun v -> v.regressed)

let compare_entries ?(throughput_floor = default_throughput_floor)
    ?(latency_ceiling = default_latency_ceiling) ~base entry =
  let kernel_verdict (b : kernel) =
    match
      List.find_opt
        (fun k -> k.name = b.name && k.width = b.width)
        entry.kernels
    with
    | None ->
      {
        line =
          Printf.sprintf "FAIL %s@w%d: missing from new measurement" b.name
            b.width;
        regressed = true;
      }
    | Some k ->
      let ratio =
        if b.shots_per_s > 0.0 then k.shots_per_s /. b.shots_per_s else 1.0
      in
      let bad = ratio < throughput_floor in
      {
        line =
          Printf.sprintf "%s %s@w%d: %.0f -> %.0f shots/s (%.2fx%s)"
            (if bad then "FAIL" else "ok  ")
            b.name b.width b.shots_per_s k.shots_per_s ratio
            (if bad then
               Printf.sprintf ", below the %.2fx floor" throughput_floor
             else "");
        regressed = bad;
      }
  in
  let fresh_verdict (k : kernel) =
    if
      List.exists
        (fun (b : kernel) -> b.name = k.name && b.width = k.width)
        base.kernels
    then None
    else
      Some
        {
          line =
            Printf.sprintf "new  %s@w%d: %.0f shots/s (no baseline)" k.name
              k.width k.shots_per_s;
          regressed = false;
        }
  in
  let latency_verdict what b n =
    let ratio = if b > 0.0 then n /. b else 1.0 in
    let bad = ratio > latency_ceiling in
    {
      line =
        Printf.sprintf "%s daemon %s: %.4f -> %.4f s (%.2fx%s)"
          (if bad then "FAIL" else "ok  ")
          what b n ratio
          (if bad then
             Printf.sprintf ", above the %.2fx ceiling" latency_ceiling
           else "");
      regressed = bad;
    }
  in
  let kernels =
    match base.kernels with
    | [] ->
      [ { line = "ok   base entry has no kernels"; regressed = false } ]
    | bs -> List.map kernel_verdict bs
  in
  let fresh = List.filter_map fresh_verdict entry.kernels in
  let daemon =
    match (base.daemon, entry.daemon) with
    | Some b, Some n ->
      [ latency_verdict "cold" b.cold_s n.cold_s;
        latency_verdict "cache-hit" b.hit_s n.hit_s ]
    | _ -> []
  in
  kernels @ fresh @ daemon

let last = function
  | [] -> Error "trajectory has no entries"
  | l -> Ok (List.nth l (List.length l - 1))

let compare_files ?throughput_floor ?latency_ceiling ~base file =
  let* base_entries = read_trajectory base in
  let* entries = read_trajectory file in
  let* b = last base_entries in
  let* n = last entries in
  Ok (compare_entries ?throughput_floor ?latency_ceiling ~base:b n)
