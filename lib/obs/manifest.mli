(** Machine-readable experiment manifests.

    One schema for every artifact the repo emits: each run appends
    [record]s (one per experiment / probe), and {!write} serializes
    the whole accumulator as

    {v
    { "schema": "ftqc-manifest/1",
      "generator": "experiments",
      "records": [
        { "experiment": "e1",
          "params": { "trials": 4000, "seed": 2026, "domains": 4 },
          "results": [
            { "name": "steane@eps=0.01", "failures": 7, "trials_used": 4000,
              "rate": 0.00175, "ci_lo": 0.00085, "ci_hi": 0.0036 } ],
          "telemetry": { "wall_s": 1.27, "shots_per_s": 9448.8,
                         "domains_used": 4 } } ],
      "metrics": { ... } }
    v}

    Analytic (non-Monte-Carlo) values are carried as degenerate
    results with [ci_lo = rate = ci_hi] and [trials_used = 0], so the
    invariant "the interval brackets the rate" holds for every record
    — that is what {!validate} checks. *)

type result = {
  name : string;
  failures : int;
  trials_used : int;
  rate : float;
  ci_lo : float;
  ci_hi : float;
}

type record = {
  experiment : string;
  params : (string * Json.t) list;
  results : result list;
  telemetry : (string * Json.t) list;
}

(** [value name v] — a degenerate result for an analytic quantity. *)
val value : string -> float -> result

type t

val schema_version : string

val create : unit -> t
val add : t -> record -> unit
val length : t -> int

(** [to_json ?generator ?metrics t] — the full document; [metrics]
    (e.g. [Obs.to_json]) is attached when it is not [Null]. *)
val to_json : ?generator:string -> ?metrics:Json.t -> t -> Json.t

val write : ?generator:string -> ?metrics:Json.t -> t -> file:string -> unit

(** [validate j] — check that [j] is a manifest document: schema tag,
    a [records] list, and for every record an [experiment] name,
    [params]/[telemetry] objects, a numeric [wall_s], and results
    whose interval brackets the rate ([ci_lo] ≤ [rate] ≤ [ci_hi],
    [trials_used] ≥ 0).  Returns the record count. *)
val validate : Json.t -> (int, string) Stdlib.result
