/* Monotonic time for Obs.now.
 *
 * Durations (span timings, watchdog deadlines, ETA math) must come
 * from a clock that cannot step backwards; gettimeofday can (NTP
 * slew, manual set), yielding negative chunk timings.  POSIX
 * CLOCK_MONOTONIC is the right source; the gettimeofday fallback only
 * exists for platforms without it and keeps the build portable.
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value ftqc_obs_monotonic_s(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  }
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
