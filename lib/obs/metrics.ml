type summ = {
  mutable s_n : int;
  mutable s_total : float;
  mutable s_min : float;
  mutable s_max : float;
}

type histo = { bounds : float array; counts : int array }

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  summaries : (string, summ) Hashtbl.t;
  histograms : (string, histo) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    summaries = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
  }

(* --------------------------------------------------------- counters *)

let add t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* ----------------------------------------------------------- gauges *)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

(* -------------------------------------------------------- summaries *)

let observe t name v =
  match Hashtbl.find_opt t.summaries name with
  | Some s ->
    s.s_n <- s.s_n + 1;
    s.s_total <- s.s_total +. v;
    if v < s.s_min then s.s_min <- v;
    if v > s.s_max then s.s_max <- v
  | None ->
    Hashtbl.add t.summaries name { s_n = 1; s_total = v; s_min = v; s_max = v }

let summary t name =
  Option.map
    (fun s -> (s.s_n, s.s_total, s.s_min, s.s_max))
    (Hashtbl.find_opt t.summaries name)

(* ------------------------------------------------------- histograms *)

let time_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; 100.0 |]

let bucket_index bounds v =
  (* first bound >= v; Array.length bounds = overflow *)
  let m = Array.length bounds in
  let rec go i = if i >= m || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe_histogram ?(bounds = time_buckets) t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
      let h =
        { bounds = Array.copy bounds;
          counts = Array.make (Array.length bounds + 1) 0 }
      in
      Hashtbl.add t.histograms name h;
      h
  in
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1

let histogram t name =
  Option.map
    (fun h -> (Array.copy h.bounds, Array.copy h.counts))
    (Hashtbl.find_opt t.histograms name)

(* ------------------------------------------------------------ merge *)

let merge_into ~into src =
  Hashtbl.iter (fun name r -> add into name !r) src.counters;
  Hashtbl.iter (fun name r -> set_gauge into name !r) src.gauges;
  Hashtbl.iter
    (fun name s ->
      match Hashtbl.find_opt into.summaries name with
      | Some d ->
        d.s_n <- d.s_n + s.s_n;
        d.s_total <- d.s_total +. s.s_total;
        if s.s_min < d.s_min then d.s_min <- s.s_min;
        if s.s_max > d.s_max then d.s_max <- s.s_max
      | None ->
        Hashtbl.add into.summaries name
          { s_n = s.s_n; s_total = s.s_total; s_min = s.s_min; s_max = s.s_max })
    src.summaries;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find_opt into.histograms name with
      | Some d ->
        if d.bounds <> h.bounds then
          invalid_arg
            (Printf.sprintf "Obs.Metrics.merge_into: histogram %S bounds differ"
               name);
        Array.iteri (fun i c -> d.counts.(i) <- d.counts.(i) + c) h.counts
      | None ->
        Hashtbl.add into.histograms name
          { bounds = Array.copy h.bounds; counts = Array.copy h.counts })
    src.histograms

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

(* -------------------------------------------------------- serialize *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t =
  let counters =
    List.map (fun (k, r) -> (k, Json.Int !r)) (sorted_bindings t.counters)
  in
  let gauges =
    List.map (fun (k, r) -> (k, Json.Float !r)) (sorted_bindings t.gauges)
  in
  let summaries =
    List.map
      (fun (k, s) ->
        ( k,
          Json.Obj
            [ ("count", Json.Int s.s_n);
              ("total", Json.Float s.s_total);
              ("min", Json.Float s.s_min);
              ("max", Json.Float s.s_max);
              ( "mean",
                if s.s_n = 0 then Json.Null
                else Json.Float (s.s_total /. float_of_int s.s_n) ) ] ))
      (sorted_bindings t.summaries)
  in
  let histograms =
    List.map
      (fun (k, h) ->
        ( k,
          Json.Obj
            [ ( "bounds",
                Json.List
                  (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds))
              );
              ( "counts",
                Json.List
                  (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)) )
            ] ))
      (sorted_bindings t.histograms)
  in
  Json.Obj
    [ ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("summaries", Json.Obj summaries);
      ("histograms", Json.Obj histograms) ]
