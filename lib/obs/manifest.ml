type result = {
  name : string;
  failures : int;
  trials_used : int;
  rate : float;
  ci_lo : float;
  ci_hi : float;
}

type record = {
  experiment : string;
  params : (string * Json.t) list;
  results : result list;
  telemetry : (string * Json.t) list;
}

let value name v =
  { name; failures = 0; trials_used = 0; rate = v; ci_lo = v; ci_hi = v }

type t = { mutable records : record list; mutable n : int }

let schema_version = "ftqc-manifest/1"
let create () = { records = []; n = 0 }

let add t r =
  t.records <- r :: t.records;
  t.n <- t.n + 1

let length t = t.n

let result_json r =
  Json.Obj
    [ ("name", Json.String r.name);
      ("failures", Json.Int r.failures);
      ("trials_used", Json.Int r.trials_used);
      ("rate", Json.Float r.rate);
      ("ci_lo", Json.Float r.ci_lo);
      ("ci_hi", Json.Float r.ci_hi) ]

let record_json r =
  Json.Obj
    [ ("experiment", Json.String r.experiment);
      ("params", Json.Obj r.params);
      ("results", Json.List (List.map result_json r.results));
      ("telemetry", Json.Obj r.telemetry) ]

let to_json ?(generator = "ftqc") ?(metrics = Json.Null) t =
  let base =
    [ ("schema", Json.String schema_version);
      ("generator", Json.String generator);
      ("records", Json.List (List.rev_map record_json t.records)) ]
  in
  Json.Obj (match metrics with Json.Null -> base | m -> base @ [ ("metrics", m) ])

let write ?generator ?metrics t ~file =
  Json.write ~file (to_json ?generator ?metrics t)

(* --------------------------------------------------------- validate *)

let validate j =
  let ( let* ) = Result.bind in
  let field ctx name conv v =
    match Option.bind (Json.member name v) conv with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "%s: missing or ill-typed %S" ctx name)
  in
  let* schema = field "document" "schema" Json.to_string_opt j in
  let* () =
    if String.length schema >= 14 && String.sub schema 0 14 = "ftqc-manifest/"
    then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* records = field "document" "records" Json.to_list_opt j in
  let validate_result ctx r =
    let* rate = field ctx "rate" Json.to_float_opt r in
    let* lo = field ctx "ci_lo" Json.to_float_opt r in
    let* hi = field ctx "ci_hi" Json.to_float_opt r in
    let* trials_used = field ctx "trials_used" Json.to_int_opt r in
    let* () =
      if lo <= rate && rate <= hi then Ok ()
      else
        Error
          (Printf.sprintf "%s: interval [%g, %g] does not bracket rate %g" ctx
             lo hi rate)
    in
    if trials_used >= 0 then Ok ()
    else Error (Printf.sprintf "%s: negative trials_used" ctx)
  in
  let validate_record i r =
    let* experiment =
      field (Printf.sprintf "record %d" i) "experiment" Json.to_string_opt r
    in
    let ctx = Printf.sprintf "record %d (%s)" i experiment in
    let* _params =
      match Json.member "params" r with
      | Some (Json.Obj fields) -> Ok fields
      | _ -> Error (ctx ^ ": missing params object")
    in
    let* telemetry =
      match Json.member "telemetry" r with
      | Some (Json.Obj _ as t) -> Ok t
      | _ -> Error (ctx ^ ": missing telemetry object")
    in
    let* _wall = field ctx "wall_s" Json.to_float_opt telemetry in
    let* results = field ctx "results" Json.to_list_opt r in
    List.fold_left
      (fun acc res ->
        let* () = acc in
        let name =
          match Option.bind (Json.member "name" res) Json.to_string_opt with
          | Some n -> n
          | None -> "?"
        in
        validate_result (Printf.sprintf "%s result %S" ctx name) res)
      (Ok ()) results
  in
  let* () =
    List.fold_left
      (fun acc (i, r) ->
        let* () = acc in
        validate_record i r)
      (Ok ())
      (List.mapi (fun i r -> (i, r)) records)
  in
  Ok (List.length records)
