(** Minimal JSON tree, encoder and parser — no external dependencies.

    The encoder is deterministic (object fields are emitted in the
    order given, floats print through a shortest-round-trip format)
    so serialized telemetry can be compared textually.  NaN and
    infinities encode as [null]; JSON has no representation for
    them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] — render with 2-space indentation and a trailing
    newline at top level. *)
val to_string : t -> string

(** [write_atomic ?fsync ~file v] — {!to_string} to a temp file in the
    same directory, then [Sys.rename] over [file].  Readers observe
    either the previous complete document or the new one, never a
    truncated prefix; with [~fsync:true] the data is forced to disk
    before the rename (for checkpoints that must survive power loss,
    not just process death). *)
val write_atomic : ?fsync:bool -> file:string -> t -> unit

(** [write ~file v] — alias for {!write_atomic} without fsync.  Kept
    as the ordinary entry point so every manifest emit in the tree is
    crash-safe by default. *)
val write : file:string -> t -> unit

(** [read_file file] — read and parse one JSON document from [file].
    Errors (missing file, I/O failure, malformed or trailing bytes)
    come back as [Error msg] with the filename prefixed — truncated
    or corrupted checkpoints are rejected, never mis-parsed. *)
val read_file : string -> (t, string) result

(** [of_string s] — parse one JSON document (surrounding whitespace
    allowed).  Numbers without [.]/[e] parse as [Int] when they fit,
    else [Float]; [\uXXXX] escapes decode to UTF-8. *)
val of_string : string -> (t, string) result

(** {1 Accessors} (for validation code; all total) *)

(** [member k v] — field [k] of an object, if any. *)
val member : string -> t -> t option

(** [to_float_opt v] — [Float] or [Int] as a float. *)
val to_float_opt : t -> float option

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
