(** Minimal JSON tree, encoder and parser — no external dependencies.

    The encoder is deterministic (object fields are emitted in the
    order given, floats print through a shortest-round-trip format)
    so serialized telemetry can be compared textually.  NaN and
    infinities encode as [null]; JSON has no representation for
    them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] — render with 2-space indentation and a trailing
    newline at top level. *)
val to_string : t -> string

(** [write ~file v] — {!to_string} to a file (truncating). *)
val write : file:string -> t -> unit

(** [of_string s] — parse one JSON document (surrounding whitespace
    allowed).  Numbers without [.]/[e] parse as [Int] when they fit,
    else [Float]; [\uXXXX] escapes decode to UTF-8. *)
val of_string : string -> (t, string) result

(** {1 Accessors} (for validation code; all total) *)

(** [member k v] — field [k] of an object, if any. *)
val member : string -> t -> t option

(** [to_float_opt v] — [Float] or [Int] as a float. *)
val to_float_opt : t -> float option

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
