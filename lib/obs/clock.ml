(* Two clocks with distinct jobs: [now] is monotonic and is the only
   clock durations may be computed from; [wall] is the absolute
   wall-clock time, for timestamps meant to be read by humans or
   correlated across machines.  Never mix readings of the two. *)

external monotonic_s : unit -> float = "ftqc_obs_monotonic_s"

let now = monotonic_s
let wall = Unix.gettimeofday
