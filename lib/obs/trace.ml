(* Hierarchical wall-where-did-it-go spans with deterministic
   identities, exported as Chrome trace-event JSON.

   A span's [id] is a pure function of the work's identity — the same
   (label, engine, seed, chunk) path hashes to the same id at any
   domain count — while its timings come from the monotonic clock.
   Producers record into unsynchronized per-worker buffers and the
   orchestrating thread folds them in a deterministic order
   ({!merge_into}), mirroring the [Metrics] per-worker-registry
   discipline; the process-wide {!install}ed sink is the bounded
   collection point the exporters read.

   Tracing is purely observational: nothing here draws randomness,
   gates control flow, or writes to stdout. *)

type span = {
  id : string;
  parent : string; (* "" = root *)
  name : string;
  cat : string;
  start_s : float; (* Clock.now (monotonic) *)
  dur_s : float;
  args : (string * Json.t) list;
}

let schema_version = "ftqc-trace/1"

(* ------------------------------------------------- deterministic ids *)

(* FNV-1a 64 over the path components, folding a separator byte
   between components so ["ab"; "c"] and ["a"; "bc"] stay distinct. *)
let span_id parts =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int b)) fnv_prime in
  List.iter
    (fun s ->
      String.iter (fun c -> byte (Char.code c)) s;
      byte 0x1f)
    parts;
  Printf.sprintf "%016Lx" !h

(* --------------------------------------------------- per-worker bufs *)

let buf_capacity = 65_536

type buf = {
  mutable spans : span list; (* newest first *)
  mutable n : int;
  mutable b_dropped : int;
}

let buf () = { spans = []; n = 0; b_dropped = 0 }

let record b s =
  if b.n >= buf_capacity then b.b_dropped <- b.b_dropped + 1
  else begin
    b.spans <- s :: b.spans;
    b.n <- b.n + 1
  end

let contents b = List.rev b.spans
let buf_length b = b.n

let merge_into ~into b =
  (* order-preserving append: deterministic whenever the sources are
     folded in a deterministic order (worker index, chunk order) *)
  List.iter (record into) (contents b);
  into.b_dropped <- into.b_dropped + b.b_dropped

(* --------------------------------------------------------- the sink *)

type sink = {
  lock : Mutex.t;
  capacity : int;
  mutable s_spans : span list; (* newest first *)
  mutable s_n : int;
  mutable s_dropped : int;
}

let sink ?(capacity = 262_144) () =
  { lock = Mutex.create ();
    capacity;
    s_spans = [];
    s_n = 0;
    s_dropped = 0 }

let current_sink : sink option Atomic.t = Atomic.make None
let install so = Atomic.set current_sink so
let installed () = Atomic.get current_sink
let enabled () = installed () <> None

let locked sk f =
  Mutex.lock sk.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sk.lock) f

let push_locked sk s =
  if sk.s_n >= sk.capacity then sk.s_dropped <- sk.s_dropped + 1
  else begin
    sk.s_spans <- s :: sk.s_spans;
    sk.s_n <- sk.s_n + 1
  end

let emit s =
  match installed () with
  | None -> ()
  | Some sk -> locked sk (fun () -> push_locked sk s)

let absorb b =
  match installed () with
  | None -> ()
  | Some sk ->
    locked sk (fun () ->
        List.iter (push_locked sk) (contents b);
        sk.s_dropped <- sk.s_dropped + b.b_dropped)

let sink_spans sk = locked sk (fun () -> List.rev sk.s_spans)
let sink_length sk = locked sk (fun () -> sk.s_n)
let sink_dropped sk = locked sk (fun () -> sk.s_dropped)

(* ---------------------------------------- ambient parent (per thread) *)

let parents : (int, string) Hashtbl.t = Hashtbl.create 16
let plock = Mutex.create ()

let current_parent () =
  Mutex.lock plock;
  let r = Hashtbl.find_opt parents (Thread.id (Thread.self ())) in
  Mutex.unlock plock;
  Option.value ~default:"" r

let with_parent id f =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock plock;
  let prev = Hashtbl.find_opt parents tid in
  Hashtbl.replace parents tid id;
  Mutex.unlock plock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock plock;
      (match prev with
      | None -> Hashtbl.remove parents tid
      | Some p -> Hashtbl.replace parents tid p);
      Mutex.unlock plock)
    f

let timed ?(cat = "ftqc") ?(args = []) ~name ~id f =
  if not (enabled ()) then f ()
  else begin
    let parent = current_parent () in
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        emit
          { id; parent; name; cat; start_s = t0;
            dur_s = Clock.now () -. t0; args })
      (fun () -> with_parent id f)
  end

(* ----------------------------------------------------------- export *)

(* Chrome trace-event "complete" events; ts/dur are microseconds.
   The span identity rides in [args] ([span_id]/[parent]) — the
   trace-event format has no first-class span-id field for "X"
   events, but Perfetto surfaces args on click. *)
let span_to_event ~origin s =
  let us x = Json.Int (int_of_float ((x *. 1e6) +. 0.5)) in
  Json.Obj
    [ ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("ph", Json.String "X");
      ("ts", us (s.start_s -. origin));
      ("dur", us s.dur_s);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ( "args",
        Json.Obj
          (("span_id", Json.String s.id)
           :: ("parent", Json.String s.parent)
           :: s.args) ) ]

let to_json sk =
  let spans, dropped =
    locked sk (fun () -> (List.rev sk.s_spans, sk.s_dropped))
  in
  let origin =
    List.fold_left (fun a s -> Float.min a s.start_s) Float.infinity spans
  in
  let origin = if Float.is_finite origin then origin else 0.0 in
  Json.Obj
    [ ("schema", Json.String schema_version);
      ("displayTimeUnit", Json.String "ms");
      ("dropped", Json.Int dropped);
      ("traceEvents", Json.List (List.map (span_to_event ~origin) spans)) ]

let write sk ~file = Json.write_atomic ~file (to_json sk)

(* --------------------------------------------------------- validate *)

let prefix = "ftqc-trace/"

(* Integer-microsecond rounding can move each endpoint by up to half a
   microsecond; give containment a 2 µs slack. *)
let slack_us = 2.0

let validate j =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s)
      when String.length s >= String.length prefix
           && String.sub s 0 (String.length prefix) = prefix ->
      Ok ()
    | Some (Json.String s) -> err "trace: unexpected schema %S" s
    | _ -> err "trace: missing schema tag"
  in
  let* events =
    match Json.member "traceEvents" j with
    | Some (Json.List evs) -> Ok evs
    | _ -> err "trace: traceEvents missing or not a list"
  in
  let num field e =
    match Option.bind (Json.member field e) Json.to_float_opt with
    | Some v when Float.is_finite v && v >= 0.0 -> Ok v
    | Some _ -> err "trace: event %s out of range" field
    | None -> err "trace: event missing numeric %s" field
  in
  let str field e =
    match Json.member field e with
    | Some (Json.String s) -> Ok s
    | _ -> err "trace: event missing string %s" field
  in
  (* first pass: shape, and an interval table per span id *)
  let intervals : (string, (float * float) list) Hashtbl.t =
    Hashtbl.create 256
  in
  let* parsed =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* ph = str "ph" e in
        let* () = if ph = "X" then Ok () else err "trace: ph %S, want X" ph in
        let* _name = str "name" e in
        let* ts = num "ts" e in
        let* dur = num "dur" e in
        let* args =
          match Json.member "args" e with
          | Some (Json.Obj _ as a) -> Ok a
          | _ -> err "trace: event missing args object"
        in
        let* id = str "span_id" args in
        let* parent = str "parent" args in
        let* () =
          if id = "" then err "trace: empty span_id"
          else if id = parent then err "trace: span %s is its own parent" id
          else Ok ()
        in
        let prev = Option.value ~default:[] (Hashtbl.find_opt intervals id) in
        Hashtbl.replace intervals id ((ts, ts +. dur) :: prev);
        Ok ((id, parent, ts, dur) :: acc))
      (Ok []) events
  in
  (* second pass: every non-root parent exists and (some occurrence of
     it — identical replayed workloads may legally repeat an id)
     contains the child *)
  let* () =
    List.fold_left
      (fun acc (id, parent, ts, dur) ->
        let* () = acc in
        if parent = "" then Ok ()
        else
          match Hashtbl.find_opt intervals parent with
          | None -> err "trace: span %s has unknown parent %s" id parent
          | Some ivs ->
            if
              List.exists
                (fun (lo, hi) ->
                  ts >= lo -. slack_us && ts +. dur <= hi +. slack_us)
                ivs
            then Ok ()
            else err "trace: span %s escapes parent %s" id parent)
      (Ok ()) parsed
  in
  Ok (List.length parsed)
