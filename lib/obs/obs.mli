(** Telemetry for the Monte-Carlo stack: a domain-safe metrics handle,
    a structured-event sink, and an opt-in progress/ETA reporter.

    The central type is the handle {!t}.  {!none} is a no-op handle:
    every recording function pattern-matches it away first, so code
    instrumented "behind an [Obs.t]" pays nothing when telemetry is
    off — and, enabled or not, recording only ever observes (it never
    draws randomness or changes control flow), so results are
    bit-identical either way.

    A live handle ({!create}) serializes all mutation behind one
    mutex, so concurrent OCaml 5 domains may record into it; bulk
    producers like [Mc.Runner] instead accumulate into per-worker
    {!Metrics} registries and merge them in chunk order. *)

module Json = Json
module Metrics = Metrics
module Manifest = Manifest
module Perf = Perf
module Trace = Trace

(** [now ()] — {e monotonic} seconds (arbitrary origin; POSIX
    [CLOCK_MONOTONIC]).  The only clock durations may be computed
    from: wall clocks can step backwards and yield negative span and
    chunk timings. *)
val now : unit -> float

(** [wall ()] — absolute wall-clock seconds ([Unix.gettimeofday]),
    for human-facing timestamps only.  Never subtract a [wall]
    reading from a [now] one. *)
val wall : unit -> float

type t

(** The disabled handle: all recording is a no-op. *)
val none : t

(** A live handle with an empty registry and event log. *)
val create : unit -> t

val enabled : t -> bool

(** {1 Recording} (all no-ops on {!none}; all thread-safe) *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set_gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit
val observe_histogram : ?bounds:float array -> t -> string -> float -> unit

(** [event t name fields] — append a structured event
    [{event = name; time_s; ...fields}].  The log is capped (oldest
    kept) at {!max_events}; a drop counter records any overflow. *)
val event : t -> string -> (string * Json.t) list -> unit

val max_events : int

(** [merge_metrics t m] — fold a per-worker registry into the handle
    (under the lock). *)
val merge_metrics : t -> Metrics.t -> unit

(** {1 Reading} *)

val counter : t -> string -> int
val gauge : t -> string -> float option
val summary : t -> string -> (int * float * float * float) option

(** [metrics_json t] — the metric registry as JSON ([Null] on
    {!none}). *)
val metrics_json : t -> Json.t

(** [events_json t] — the event log, oldest first ([Null] on
    {!none}). *)
val events_json : t -> Json.t

(** [to_json t] — [{metrics; events}] ([Null] on {!none}). *)
val to_json : t -> Json.t

(** {1 Progress / ETA reporting}

    Opt-in via the [FTQC_PROGRESS] environment variable: unset, empty,
    ["0"], ["false"] or ["no"] disable it; any other value enables
    stderr progress lines, and a numeric value sets the minimum
    interval between lines in seconds (default 1).  The reporter is
    purely an observer — it reads an atomic step counter and prints;
    it never touches simulation state. *)
module Progress : sig
  type p

  (** The environment variable ("FTQC_PROGRESS"). *)
  val env_var : string

  val enabled : unit -> bool

  (** {2 Publish mode}

      With [set_publish true], reporters are created (and appear in
      {!snapshot}) even when the env gate is off — but print
      nothing.  The daemon turns this on so it can sample runner
      completion for in-flight requests without touching stderr. *)

  val set_publish : bool -> unit

  val publishing : unit -> bool

  (** One live reporter's state, as sampled by {!snapshot} or pushed
      to the {!set_watcher} hook. *)
  type view = {
    v_scope : string;
    v_label : string;
    v_done : int;
    v_total : int;
    v_elapsed_s : float;
  }

  (** All currently live reporters (registered by [create], removed
      by [finish]/[abandon]), oldest first. *)
  val snapshot : unit -> view list

  (** [with_scope s f] — tag reporters created under [f] (on this
      thread) with scope [s]; the daemon scopes by request key so
      concurrent jobs' reporters stay distinguishable. *)
  val with_scope : string -> (unit -> 'a) -> 'a

  (** Test hook: called with the reporter's {!view} on every step
      and finish — deterministic observation without stderr capture
      or timing-dependent sampling. *)
  val set_watcher : (view -> unit) option -> unit

  (** [create ~label ~total] — [None] unless (enabled or
      {!publishing}) and [total > 0].  [total] is the number of
      steps (chunks). *)
  val create : label:string -> total:int -> p option

  (** [format_line ~label ~done_ ~total ~elapsed] — the progress line
      (no trailing newline), pure so the reporting contract is
      testable: percentage of [total], elapsed seconds, and an ETA
      extrapolated from the mean step cost (0.0 when no steps are
      done yet or [total <= 0]). *)
  val format_line :
    label:string -> done_:int -> total:int -> elapsed:float -> string

  (** [step p] — one step done; prints a rate-limited
      ["label: done/total (pct%) elapsed eta"] line.  Safe from any
      domain. *)
  val step : p option -> unit

  (** [finish p] — print the final line unconditionally (quiet
      publish-only reporters excepted) and leave the registry. *)
  val finish : p option -> unit

  (** [abandon p] — leave the registry {e without} the final line:
      the interrupted / exceptional path. *)
  val abandon : p option -> unit
end
