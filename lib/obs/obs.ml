module Json = Json
module Metrics = Metrics
module Manifest = Manifest
module Perf = Perf
module Trace = Trace

(* [now] is monotonic: durations (span timings, watchdog deadlines,
   ETA math) must come from a clock that cannot step backwards.
   [wall] is absolute wall-clock time, for human-facing timestamps
   only — never subtract a [wall] reading from a [now] one. *)
let now = Clock.now
let wall = Clock.wall

type handle = {
  metrics : Metrics.t;
  mutable events : Json.t list; (* newest first *)
  mutable n_events : int;
  mutable dropped : int;
  lock : Mutex.t;
}

type t = handle option

let none : t = None

let create () =
  Some
    { metrics = Metrics.create ();
      events = [];
      n_events = 0;
      dropped = 0;
      lock = Mutex.create () }

let enabled = Option.is_some

let locked h f =
  Mutex.lock h.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

let incr t name =
  match t with None -> () | Some h -> locked h (fun () -> Metrics.incr h.metrics name)

let add t name n =
  match t with
  | None -> ()
  | Some h -> locked h (fun () -> Metrics.add h.metrics name n)

let set_gauge t name v =
  match t with
  | None -> ()
  | Some h -> locked h (fun () -> Metrics.set_gauge h.metrics name v)

let observe t name v =
  match t with
  | None -> ()
  | Some h -> locked h (fun () -> Metrics.observe h.metrics name v)

let observe_histogram ?bounds t name v =
  match t with
  | None -> ()
  | Some h -> locked h (fun () -> Metrics.observe_histogram ?bounds h.metrics name v)

let max_events = 10_000

let event t name fields =
  match t with
  | None -> ()
  | Some h ->
    let e =
      Json.Obj (("event", Json.String name) :: ("time_s", Json.Float (now ())) :: fields)
    in
    locked h (fun () ->
        if h.n_events >= max_events then begin
          (* drop the oldest (cheaply: drop the newest would bias
             traces; instead drop from the tail of the list, which is
             the oldest since we cons) *)
          h.events <- e :: List.filteri (fun i _ -> i < max_events - 1) h.events;
          h.dropped <- h.dropped + 1
        end
        else begin
          h.events <- e :: h.events;
          h.n_events <- h.n_events + 1
        end)

let merge_metrics t m =
  match t with
  | None -> ()
  | Some h -> locked h (fun () -> Metrics.merge_into ~into:h.metrics m)

let counter t name =
  match t with None -> 0 | Some h -> locked h (fun () -> Metrics.counter h.metrics name)

let gauge t name =
  match t with None -> None | Some h -> locked h (fun () -> Metrics.gauge h.metrics name)

let summary t name =
  match t with
  | None -> None
  | Some h -> locked h (fun () -> Metrics.summary h.metrics name)

let metrics_json t =
  match t with
  | None -> Json.Null
  | Some h -> locked h (fun () -> Metrics.to_json h.metrics)

let events_json t =
  match t with
  | None -> Json.Null
  | Some h ->
    locked h (fun () ->
        let evs = Json.List (List.rev h.events) in
        if h.dropped = 0 then evs
        else
          Json.Obj
            [ ("dropped_oldest", Json.Int h.dropped); ("events", evs) ])

let to_json t =
  match t with
  | None -> Json.Null
  | Some _ ->
    Json.Obj [ ("metrics", metrics_json t); ("events", events_json t) ]

(* ------------------------------------------------------------ progress *)

module Progress = struct
  let env_var = "FTQC_PROGRESS"

  let setting () =
    match Sys.getenv_opt env_var with
    | None | Some "" | Some "0" | Some "false" | Some "no" -> None
    | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0.0 -> Some v
      | _ -> Some 1.0)

  let enabled () = setting () <> None

  (* Publish mode: reporters exist (and register in the snapshot
     registry below) even when the env gate is off — but stay silent.
     The daemon turns this on so it can sample runner completion for
     in-flight requests without writing anything to its stderr. *)
  let publish = Atomic.make false
  let set_publish b = Atomic.set publish b
  let publishing () = Atomic.get publish

  type p = {
    label : string;
    scope : string;
    total : int;
    start : float;
    interval : float;
    quiet : bool; (* publish-only reporter: never prints *)
    done_ : int Atomic.t;
    print_lock : Mutex.t;
    mutable last_print : float;
  }

  type view = {
    v_scope : string;
    v_label : string;
    v_done : int;
    v_total : int;
    v_elapsed_s : float;
  }

  (* Ambient scope, tracked per thread: the daemon tags every
     reporter created while serving a request with that request's
     key hash, so concurrent jobs' reporters stay distinguishable. *)
  let scopes : (int, string) Hashtbl.t = Hashtbl.create 8
  let slock = Mutex.create ()

  let current_scope () =
    Mutex.lock slock;
    let r = Hashtbl.find_opt scopes (Thread.id (Thread.self ())) in
    Mutex.unlock slock;
    Option.value ~default:"" r

  let with_scope scope f =
    let tid = Thread.id (Thread.self ()) in
    Mutex.lock slock;
    let prev = Hashtbl.find_opt scopes tid in
    Hashtbl.replace scopes tid scope;
    Mutex.unlock slock;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock slock;
        (match prev with
        | None -> Hashtbl.remove scopes tid
        | Some s -> Hashtbl.replace scopes tid s);
        Mutex.unlock slock)
      f

  (* Registry of live reporters (physical identity; a reporter leaves
     on [finish]/[abandon]). *)
  let live : p list ref = ref []
  let rlock = Mutex.create ()

  let register p =
    Mutex.lock rlock;
    live := p :: !live;
    Mutex.unlock rlock

  let unregister p =
    Mutex.lock rlock;
    live := List.filter (fun q -> q != p) !live;
    Mutex.unlock rlock

  let view p =
    { v_scope = p.scope;
      v_label = p.label;
      v_done = Atomic.get p.done_;
      v_total = p.total;
      v_elapsed_s = now () -. p.start }

  let snapshot () =
    Mutex.lock rlock;
    let ps = !live in
    Mutex.unlock rlock;
    List.rev_map view ps

  (* Test hook: observe every step/finish deterministically, without
     stderr capture or timing-dependent sampling. *)
  let watcher : (view -> unit) option ref = ref None
  let set_watcher w = watcher := w
  let notify p = match !watcher with None -> () | Some f -> f (view p)

  let create ~label ~total =
    let interval_opt = setting () in
    if total <= 0 || (interval_opt = None && not (publishing ())) then None
    else begin
      let p =
        { label;
          scope = current_scope ();
          total;
          start = now ();
          interval = Option.value ~default:1.0 interval_opt;
          quiet = interval_opt = None;
          done_ = Atomic.make 0;
          print_lock = Mutex.create ();
          last_print = now () }
      in
      register p;
      Some p
    end

  (* Pure formatter, split out so the reporting contract (ETA math,
     zero-progress and degenerate-total edges) is unit-testable
     without capturing stderr.  ETA extrapolates the mean step cost
     over the remaining steps; with no steps done yet (or a
     degenerate total) it reads 0.0 rather than inf/nan. *)
  let format_line ~label ~done_ ~total ~elapsed =
    let pct =
      if total <= 0 then 100.0
      else 100.0 *. float_of_int done_ /. float_of_int total
    in
    let eta =
      if done_ <= 0 || total <= 0 then Float.infinity
      else elapsed *. float_of_int (total - done_) /. float_of_int done_
    in
    Printf.sprintf "[ftqc] %s: %d/%d chunks (%.0f%%) elapsed %.1fs eta %.1fs"
      label done_ total pct elapsed
      (if Float.is_finite eta then eta else 0.0)

  let print p d =
    let t = now () in
    let elapsed = t -. p.start in
    Printf.eprintf "%s\n%!"
      (format_line ~label:p.label ~done_:d ~total:p.total ~elapsed);
    p.last_print <- t

  let step po =
    match po with
    | None -> ()
    | Some p ->
      let d = Atomic.fetch_and_add p.done_ 1 + 1 in
      notify p;
      if (not p.quiet) && d < p.total && now () -. p.last_print >= p.interval
      then
        if Mutex.try_lock p.print_lock then
          Fun.protect
            ~finally:(fun () -> Mutex.unlock p.print_lock)
            (fun () ->
              (* re-check under the lock: another domain may have just
                 printed *)
              if now () -. p.last_print >= p.interval then print p d)

  let finish po =
    match po with
    | None -> ()
    | Some p ->
      unregister p;
      notify p;
      if not p.quiet then begin
        Mutex.lock p.print_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock p.print_lock)
          (fun () -> print p (Atomic.get p.done_))
      end

  (* Leave the registry without the final print — the interrupted /
     exceptional path, where a progress line would suggest normal
     completion. *)
  let abandon po = match po with None -> () | Some p -> unregister p
end
