(** Quantum circuit intermediate representation.

    A circuit is a sequence of instructions over [num_qubits] qubits
    and [num_cbits] classical bits.  Unitary gates are the paper's
    repertoire (Fig. 1, Eqs. 5/9/22): Pauli gates, the Hadamard
    rotation R, the phase gate P, XOR (CNOT), CZ, SWAP and Toffoli.
    Measurements are destructive Z-basis measurements recorded into
    classical bits; classically controlled gates express the
    recovery/repair steps ("large circles" of Fig. 9, arrows of
    Fig. 13).  [Tick] marks a time step boundary, which noise models
    use to inject storage errors on idle qubits. *)

type gate =
  | H of int  (** Hadamard rotation R, Eq. (9) *)
  | X of int  (** NOT, Eq. (5) *)
  | Y of int  (** Pauli Y *)
  | Z of int  (** phase flip, Eq. (5) *)
  | S of int  (** phase gate P = diag(1, i), Eq. (22) *)
  | Sdg of int  (** P⁻¹ *)
  | Cnot of int * int  (** XOR gate: [Cnot (control, target)] *)
  | Cz of int * int
  | Swap of int * int
  | Toffoli of int * int * int
      (** controlled-controlled-NOT [Toffoli (c1, c2, target)] *)

type instr =
  | Gate of gate
  | Measure of { qubit : int; cbit : int }
      (** destructive Z-basis measurement of [qubit] into [cbit] *)
  | Measure_x of { qubit : int; cbit : int }
      (** X-basis measurement (used when measuring cat-state parity) *)
  | Reset of int  (** reset qubit to |0⟩ *)
  | Cond of { cbit : int; gate : gate }
      (** apply [gate] iff classical bit [cbit] = 1 *)
  | Cond_parity of { cbits : int list; gate : gate }
      (** apply [gate] iff the parity of the listed bits is odd *)
  | Tick  (** time-step boundary for storage noise *)

type t

(** [create ~num_qubits ~num_cbits ()] is an empty circuit. *)
val create : ?num_cbits:int -> num_qubits:int -> unit -> t

val num_qubits : t -> int
val num_cbits : t -> int

(** [instrs c] is the instruction sequence in order. *)
val instrs : t -> instr list

(** [length c] is the number of instructions. *)
val length : t -> int

(** [add c i] appends an instruction (validating qubit/cbit ranges);
    returns [c] for chaining. *)
val add : t -> instr -> t

(** [add_gate c g] = [add c (Gate g)]. *)
val add_gate : t -> gate -> t

(** [add_all c is] appends all. *)
val add_all : t -> instr list -> t

(** [append a b] concatenates two circuits over the same registers. *)
val append : t -> t -> t

(** [gate_qubits g] lists the qubits a gate touches (control first). *)
val gate_qubits : gate -> int list

(** [map_gate_qubits f g] relabels a single gate's qubits. *)
val map_gate_qubits : (int -> int) -> gate -> gate

(** [instr_qubits i] lists the qubits an instruction touches. *)
val instr_qubits : instr -> int list

(** [gate_count c] counts [Gate]/[Cond]/[Cond_parity] instructions;
    [measure_count c] counts measurements; [tick_count c] counts
    ticks; [two_qubit_gate_count c] counts entangling gates. *)
val gate_count : t -> int

val measure_count : t -> int
val tick_count : t -> int
val two_qubit_gate_count : t -> int

(** [depth c] — circuit depth under maximal parallelism (§6's
    assumption): greedy ASAP scheduling where an instruction starts as
    soon as all its qubits (and, for classically controlled gates, all
    earlier measurements of its cbits) are free.  [Tick]s force a new
    layer boundary for every qubit. *)
val depth : t -> int

(** [is_clifford_gate g] is [false] only for [Toffoli]. *)
val is_clifford_gate : gate -> bool

(** [is_clifford c] is [true] when the circuit contains no Toffoli. *)
val is_clifford : t -> bool

(** [inverse_gate g] is the inverse of a unitary gate. *)
val inverse_gate : gate -> gate

(** [inverse c] reverses a measurement-free circuit, inverting each
    gate; raises [Invalid_argument] if the circuit measures, resets or
    classically controls. *)
val inverse : t -> t

(** [map_qubits ~f c] relabels qubits through [f] (e.g. to embed a
    gadget into a larger register).  Classical bits are relabelled by
    [fc] if given.  The new register sizes default to one past the
    largest mapped index and may be widened explicitly with
    [num_qubits]/[num_cbits]. *)
val map_qubits :
  ?num_qubits:int ->
  ?num_cbits:int ->
  ?fc:(int -> int) ->
  f:(int -> int) ->
  t ->
  t

(** [pp] prints one instruction per line in a human-readable form. *)
val pp : Format.formatter -> t -> unit
