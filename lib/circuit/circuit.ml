type gate =
  | H of int
  | X of int
  | Y of int
  | Z of int
  | S of int
  | Sdg of int
  | Cnot of int * int
  | Cz of int * int
  | Swap of int * int
  | Toffoli of int * int * int

type instr =
  | Gate of gate
  | Measure of { qubit : int; cbit : int }
  | Measure_x of { qubit : int; cbit : int }
  | Reset of int
  | Cond of { cbit : int; gate : gate }
  | Cond_parity of { cbits : int list; gate : gate }
  | Tick

type t = { nq : int; nc : int; rev_instrs : instr list; len : int }

let create ?(num_cbits = 0) ~num_qubits () =
  if num_qubits < 0 || num_cbits < 0 then invalid_arg "Circuit.create";
  { nq = num_qubits; nc = num_cbits; rev_instrs = []; len = 0 }

let num_qubits c = c.nq
let num_cbits c = c.nc
let instrs c = List.rev c.rev_instrs
let length c = c.len

let gate_qubits = function
  | H q | X q | Y q | Z q | S q | Sdg q -> [ q ]
  | Cnot (a, b) | Cz (a, b) | Swap (a, b) -> [ a; b ]
  | Toffoli (a, b, t) -> [ a; b; t ]

let instr_qubits = function
  | Gate g | Cond { gate = g; _ } | Cond_parity { gate = g; _ } ->
    gate_qubits g
  | Measure { qubit; _ } | Measure_x { qubit; _ } -> [ qubit ]
  | Reset q -> [ q ]
  | Tick -> []

let instr_cbits = function
  | Measure { cbit; _ } | Measure_x { cbit; _ } | Cond { cbit; _ } -> [ cbit ]
  | Cond_parity { cbits; _ } -> cbits
  | Gate _ | Reset _ | Tick -> []

let validate c i =
  let distinct qs =
    let sorted = List.sort Int.compare qs in
    let rec dup = function
      | a :: (b :: _ as rest) -> a = b || dup rest
      | _ -> false
    in
    not (dup sorted)
  in
  let qs = instr_qubits i in
  List.iter
    (fun q ->
      if q < 0 || q >= c.nq then
        invalid_arg (Printf.sprintf "Circuit.add: qubit %d out of range" q))
    qs;
  if not (distinct qs) then invalid_arg "Circuit.add: repeated qubit operand";
  List.iter
    (fun b ->
      if b < 0 || b >= c.nc then
        invalid_arg (Printf.sprintf "Circuit.add: cbit %d out of range" b))
    (instr_cbits i)

let add c i =
  validate c i;
  { c with rev_instrs = i :: c.rev_instrs; len = c.len + 1 }

let add_gate c g = add c (Gate g)
let add_all c is = List.fold_left add c is

let append a b =
  if a.nq <> b.nq || a.nc <> b.nc then
    invalid_arg "Circuit.append: register mismatch";
  { a with rev_instrs = b.rev_instrs @ a.rev_instrs; len = a.len + b.len }

let gate_count c =
  List.length
    (List.filter
       (function Gate _ | Cond _ | Cond_parity _ -> true | _ -> false)
       (instrs c))

let measure_count c =
  List.length
    (List.filter
       (function Measure _ | Measure_x _ -> true | _ -> false)
       (instrs c))

let tick_count c =
  List.length (List.filter (function Tick -> true | _ -> false) (instrs c))

let two_qubit_gate_count c =
  List.length
    (List.filter
       (function
         | Gate (Cnot _ | Cz _ | Swap _ | Toffoli _)
         | Cond { gate = Cnot _ | Cz _ | Swap _ | Toffoli _; _ }
         | Cond_parity { gate = Cnot _ | Cz _ | Swap _ | Toffoli _; _ } ->
           true
         | _ -> false)
       (instrs c))

let depth c =
  let nq = max 1 c.nq and nc = max 1 c.nc in
  let qubit_free = Array.make nq 0 in
  let cbit_ready = Array.make nc 0 in
  let overall = ref 0 in
  List.iter
    (fun instr ->
      match instr with
      | Tick ->
        (* a global time-step boundary *)
        let m = Array.fold_left max 0 qubit_free in
        Array.fill qubit_free 0 nq m
      | _ ->
        let qs = instr_qubits instr in
        let cb_dependencies =
          match instr with
          | Cond { cbit; _ } -> [ cbit ]
          | Cond_parity { cbits; _ } -> cbits
          | _ -> []
        in
        let start =
          List.fold_left
            (fun acc b -> max acc cbit_ready.(b))
            (List.fold_left (fun acc q -> max acc qubit_free.(q)) 0 qs)
            cb_dependencies
        in
        let finish = start + 1 in
        List.iter (fun q -> qubit_free.(q) <- finish) qs;
        (match instr with
        | Measure { cbit; _ } | Measure_x { cbit; _ } ->
          cbit_ready.(cbit) <- finish
        | _ -> ());
        if finish > !overall then overall := finish)
    (instrs c);
  max !overall (Array.fold_left max 0 qubit_free)

let is_clifford_gate = function Toffoli _ -> false | _ -> true

let is_clifford c =
  List.for_all
    (function
      | Gate g | Cond { gate = g; _ } | Cond_parity { gate = g; _ } ->
        is_clifford_gate g
      | _ -> true)
    (instrs c)

let inverse_gate = function
  | S q -> Sdg q
  | Sdg q -> S q
  | (H _ | X _ | Y _ | Z _ | Cnot _ | Cz _ | Swap _ | Toffoli _) as g -> g

let inverse c =
  let rev =
    List.map
      (function
        | Gate g -> Gate (inverse_gate g)
        | Tick -> Tick
        | Measure _ | Measure_x _ | Reset _ | Cond _ | Cond_parity _ ->
          invalid_arg "Circuit.inverse: non-unitary instruction")
      c.rev_instrs
  in
  { c with rev_instrs = List.rev rev }

let map_gate f = function
  | H q -> H (f q)
  | X q -> X (f q)
  | Y q -> Y (f q)
  | Z q -> Z (f q)
  | S q -> S (f q)
  | Sdg q -> Sdg (f q)
  | Cnot (a, b) -> Cnot (f a, f b)
  | Cz (a, b) -> Cz (f a, f b)
  | Swap (a, b) -> Swap (f a, f b)
  | Toffoli (a, b, t) -> Toffoli (f a, f b, f t)

let map_gate_qubits f g = map_gate f g

let map_qubits ?num_qubits ?num_cbits ?(fc = Fun.id) ~f c =
  let mapped =
    List.map
      (function
        | Gate g -> Gate (map_gate f g)
        | Measure { qubit; cbit } -> Measure { qubit = f qubit; cbit = fc cbit }
        | Measure_x { qubit; cbit } ->
          Measure_x { qubit = f qubit; cbit = fc cbit }
        | Reset q -> Reset (f q)
        | Cond { cbit; gate } -> Cond { cbit = fc cbit; gate = map_gate f gate }
        | Cond_parity { cbits; gate } ->
          Cond_parity { cbits = List.map fc cbits; gate = map_gate f gate }
        | Tick -> Tick)
      (instrs c)
  in
  let max_over extract init =
    List.fold_left
      (fun acc i -> List.fold_left max acc (extract i))
      init mapped
  in
  let nq =
    match num_qubits with
    | Some n -> n
    | None -> 1 + max_over instr_qubits (-1)
  in
  let nc =
    match num_cbits with
    | Some n -> n
    | None -> 1 + max_over instr_cbits (-1)
  in
  List.fold_left add (create ~num_cbits:nc ~num_qubits:nq ()) mapped

let pp_gate fmt = function
  | H q -> Format.fprintf fmt "H %d" q
  | X q -> Format.fprintf fmt "X %d" q
  | Y q -> Format.fprintf fmt "Y %d" q
  | Z q -> Format.fprintf fmt "Z %d" q
  | S q -> Format.fprintf fmt "S %d" q
  | Sdg q -> Format.fprintf fmt "S† %d" q
  | Cnot (a, b) -> Format.fprintf fmt "CNOT %d %d" a b
  | Cz (a, b) -> Format.fprintf fmt "CZ %d %d" a b
  | Swap (a, b) -> Format.fprintf fmt "SWAP %d %d" a b
  | Toffoli (a, b, t) -> Format.fprintf fmt "TOFFOLI %d %d %d" a b t

let pp fmt c =
  List.iteri
    (fun i instr ->
      if i > 0 then Format.pp_print_newline fmt ();
      match instr with
      | Gate g -> pp_gate fmt g
      | Measure { qubit; cbit } -> Format.fprintf fmt "M %d -> c%d" qubit cbit
      | Measure_x { qubit; cbit } ->
        Format.fprintf fmt "MX %d -> c%d" qubit cbit
      | Reset q -> Format.fprintf fmt "RESET %d" q
      | Cond { cbit; gate } -> Format.fprintf fmt "IF c%d: %a" cbit pp_gate gate
      | Cond_parity { cbits; gate } ->
        Format.fprintf fmt "IF parity(%s): %a"
          (String.concat "," (List.map string_of_int cbits))
          pp_gate gate
      | Tick -> Format.fprintf fmt "TICK")
    (instrs c)
