(* 4-byte big-endian length prefix + JSON payload bytes. *)

let max_frame = 16 * 1024 * 1024

let encode j = Obs.Json.to_string j

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd buf !off (len - !off) in
    if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + n
  done

let write fd j =
  let payload = Bytes.unsafe_of_string (encode j) in
  let len = Bytes.length payload in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  write_all fd header;
  write_all fd payload

(* read exactly [len] bytes; [`Closed] only when EOF lands before the
   first byte (a clean connection close at a frame boundary) *)
let read_exact fd len ~at_boundary =
  let buf = Bytes.create len in
  let off = ref 0 in
  let result = ref (Ok buf) in
  (try
     while !off < len && Result.is_ok !result do
       let n = Unix.read fd buf !off (len - !off) in
       if n = 0 then
         result :=
           if !off = 0 && at_boundary then Error `Closed
           else
             Error
               (`Bad
                  (Printf.sprintf "connection closed mid-frame (%d/%d bytes)"
                     !off len))
       else off := !off + n
     done
   with Unix.Unix_error (e, _, _) ->
     result := Error (`Bad ("read: " ^ Unix.error_message e)));
  !result

let read fd =
  match read_exact fd 4 ~at_boundary:true with
  | Error _ as e -> e
  | Ok header -> (
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then
      Error (`Bad (Printf.sprintf "frame length %d out of range" len))
    else
      match read_exact fd len ~at_boundary:false with
      | Error _ as e -> e
      | Ok payload -> (
        let raw = Bytes.unsafe_to_string payload in
        match Obs.Json.of_string raw with
        | Ok j -> Ok (j, raw)
        | Error msg -> Error (`Bad ("malformed frame: " ^ msg))))
