(** Length-prefixed JSON framing over a stream socket.

    One frame = a 4-byte big-endian payload length followed by that
    many bytes of JSON (the deterministic {!Obs.Json.to_string}
    rendering).  Reads are exact: a peer that closes mid-frame or
    sends an oversized or malformed payload yields [Error], never a
    mis-parsed frame. *)

(** Maximum accepted payload size in bytes (16 MiB) — an admission
    guard, not a protocol limit. *)
val max_frame : int

(** [encode j] — the payload bytes of a frame (no length prefix):
    what a byte-identity comparison of two replies should compare. *)
val encode : Obs.Json.t -> string

(** [write fd j] — send one frame ([Unix.write] until complete). *)
val write : Unix.file_descr -> Obs.Json.t -> unit

(** [read fd] — receive one frame; returns the parsed document and
    its raw payload bytes.  [Error `Closed] on clean EOF at a frame
    boundary, [Error (`Bad msg)] on anything malformed. *)
val read :
  Unix.file_descr ->
  (Obs.Json.t * string, [ `Closed | `Bad of string ]) result
