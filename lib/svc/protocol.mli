(** The [ftqc-rpc/1] wire protocol of the estimation service.

    A request names one of the library's experiment estimators with
    fully explicit parameters; {!to_canonical} renders it as a
    {e canonical} JSON document — fixed field order, defaults filled
    in, deterministic float formatting (via {!Obs.Json.to_string}) —
    so two requests for the same computation always produce the same
    bytes.  The canonical string is the coalescing/cache key (the
    seed is part of it, which is what makes cached answers
    bit-identical to fresh ones), and {!hash} is its hex digest for
    display and logging.

    Frames are JSON objects tagged with [proto = "ftqc-rpc/1"] and a
    [type]; the {e result} frame is built by the pure
    {!result_frame}, so a cached reply re-encodes to the very same
    bytes as the fresh one. *)

(** Rare-engine parameters as carried on the wire.  [enum_cutoff] is
    not a protocol parameter: the server always uses
    {!Mc.Engine.default_enum_cutoff}, so a request determines the
    computation. *)
type rare = { max_weight : int; samples_per_class : int }

(** Monte-Carlo engine selector, as accepted by the unified
    {!Mc.Runner} entry points.  On the wire, [`Rare]'s parameters are
    the [max_weight] / [samples_per_class] fields; canonicalization
    omits them at their defaults ({!Mc.Engine.default_max_weight},
    {!Mc.Engine.default_samples_per_class}), mirroring [tile_width].
    Under [`Rare] the request's [trials] is ignored (the shot budget
    is [samples_per_class] per sampled weight class) but stays part
    of the canonical form. *)
type engine = [ `Scalar | `Batch | `Rare of rare ]

(** The wire-default rare parameters
    ([{ max_weight = Mc.Engine.default_max_weight;
        samples_per_class = Mc.Engine.default_samples_per_class }]):
    what a bare [{"engine": "rare"}] request parses to. *)
val default_rare : rare

(** One estimator request.  Seeds are final (already derived):
    clients that want the seed of a specific experiment cell apply
    [Mc.Rng.derive] themselves.

    [tile_width] (shots per bit-slice tile; a positive multiple of
    64) only applies to [engine = `Batch] and is encoded in the
    canonical form only when it differs from the default 64 — the
    canonical bytes of every pre-tile request are unchanged, so
    cached results keyed on them survive.  Batch counts are
    bit-identical across tile widths, but the width is an explicit
    request parameter (it changes the computation schedule), so it
    stays part of the key when non-default. *)
type estimator =
  | Steane_memory of {
      level : int;
      eps : float;
      rounds : int;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }  (** {!Codes.Pauli_frame} concatenated-Steane memory (one E6b cell). *)
  | Toric_memory of {
      l : int;
      p : float;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }  (** {!Toric.Memory} (one E10 cell, seed taken literally). *)
  | Toric_scan of {
      ls : int list;
      ps : float list;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
      (** The full E10 grid with the experiment driver's own per-cell
          seed derivation ([derive seed [10; l; pi]]), so the result
          cells are bit-identical to [experiments e10 --seed]. *)
  | Toric_noisy of {
      l : int;
      rounds : int;
      p : float;
      q : float;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
      (** {!Toric.Noisy_memory} (E19-style cell).  Scalar/batch only:
          the phenomenological model has no rare-event fault model. *)
  | Toric_circuit of {
      l : int;
      rounds : int;
      eps : float;
      trials : int;
      seed : int;
      engine : engine;
    }
      (** {!Toric.Circuit_memory} (E24-style cell).  [`Scalar] runs
          the tableau simulation; [`Rare] runs the propagation-free
          sampler ({!Toric.Circuit_memory.run_rare}).  The engine
          field is new in the rare extension and is omitted from the
          canonical form when [`Scalar], so pre-rare requests keep
          their cache keys.  [`Batch] is rejected. *)
  | Css_memory of {
      code : string;
      eps : float;
      rounds : int;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
      (** {!Csskit.Memory} code-memory failure for a zoo member
          ([code] is a {!Csskit.Zoo} name, validated at parse time).
          Scalar/batch only: the generic pipeline has no rare-event
          fault model. *)
  | Pseudothreshold of { eps_list : float list; trials : int; seed : int }
      (** The E5 scan: CNOT-exRec failure at each eps (seed
          [derive seed [5; i]]), fitted to p = A·eps². *)

type request = Run of estimator | Status | Ping | Shutdown

(** One named result cell ({!Mc.Stats.estimate} plus the result name
    the experiments driver would use for the same cell). *)
type cell = { name : string; estimate : Mc.Stats.estimate }

(** The deterministic result payload of a completed job. *)
type payload =
  | Estimate of cell  (** single-cell estimators *)
  | Cells of cell list  (** grid scans *)
  | Fit of { cells : cell list; a : float; threshold : float }
      (** pseudothreshold scan: per-eps cells + fitted A and 1/A *)

(** The protocol identifier, ["ftqc-rpc/1"]. *)
val proto_version : string

(** {1 Canonicalization} *)

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result

(** Estimator body alone (the [Run] payload) — the fleet ships these
    over worker pipes. *)
val estimator_to_json : estimator -> Obs.Json.t

val estimator_of_json : Obs.Json.t -> (estimator, string) result

(** [to_canonical r] — the canonical encoding: [request_to_json]
    rendered by the deterministic encoder.  Equal requests (after
    default-filling) yield equal strings. *)
val to_canonical : request -> string

(** [hash r] — hex digest of {!to_canonical} (the display form of
    the cache/coalescing key). *)
val hash : request -> string

(** [estimator_name e] — the request-type tag, e.g.
    ["toric_memory"]. *)
val estimator_name : estimator -> string

(** [experiment_name e] — the manifest experiment label; scans that
    reproduce an experiments-driver record exactly use its name
    (["e10"], ["e5"]) so [manifest_check --diff-results] can compare
    service output against a direct run. *)
val experiment_name : estimator -> string

(** [manifest_results p] — the payload as manifest result rows
    (degenerate rows for analytic fit values, dropped when
    non-finite, exactly as the experiments driver emits them). *)
val manifest_results : payload -> Obs.Manifest.result list

(** {1 Payload encoding} *)

val payload_to_json : payload -> Obs.Json.t
val payload_of_json : Obs.Json.t -> (payload, string) result

(** {1 Frames}

    Every frame carries [proto]; {!check_frame} rejects anything
    else.  Server→client frame types: [ack], [progress], [meta],
    [result], [error], [pong], [status], [ok]. *)

(** [request_frame ?tenant ?priority r] — [tenant] (client identity
    for QoS accounting, default ["anon"] server-side) and [priority]
    (["high"] | ["normal"]) are frame-level fields, deliberately
    outside the request body so the cache key and result bytes do not
    depend on them. *)
val request_frame :
  ?tenant:string -> ?priority:string -> request -> Obs.Json.t

(** [result_frame ~key payload] — the final reply.  Pure function of
    (key, payload): cached, coalesced and fresh replies to the same
    request are byte-identical. *)
val result_frame : key:string -> payload -> Obs.Json.t

(** [ack_frame ~key ~state] — first reply to an estimator request;
    [state] is ["cached"], ["coalesced"] or ["queued"]. *)
val ack_frame : key:string -> state:string -> Obs.Json.t

(** [progress_frame] — periodic in-flight update.  [completed]/
    [total] (runner chunks or rare classes of the job's busiest
    reporter) and [phase] (its label) are omitted when unknown;
    frame reading is name-based, so the optional fields are
    wire-compatible with pre-completion peers. *)
val progress_frame :
  ?completed:int ->
  ?total:int ->
  ?phase:string ->
  key:string ->
  state:string ->
  elapsed_s:float ->
  unit ->
  Obs.Json.t

(** [meta_frame] — per-request metadata that legitimately differs
    between cached and fresh replies (sent {e before} the result
    frame, which stays deterministic). *)
val meta_frame :
  cached:bool -> coalesced:bool -> wall_s:float -> Obs.Json.t

(** [error_frame ?retry_after_s ~code ~message ()] — terminal error
    reply.  [retry_after_s] accompanies [code = "overloaded"]: the
    earliest time (seconds) a retry can be admitted. *)
val error_frame :
  ?retry_after_s:float -> code:string -> message:string -> unit -> Obs.Json.t
val pong_frame : Obs.Json.t
val ok_frame : Obs.Json.t

(** [status_frame] — daemon introspection.  [workers]/[busy] (worker
    pool size and how many are executing) and [jobs] (one object per
    in-flight request: key, state, elapsed, completion) are the
    introspection extension and are omitted when absent, keeping the
    frame wire-compatible.  [fleet] (worker-process registry and
    restart counters) and [tenants] (per-tenant QoS rows) extend the
    same way. *)
val status_frame :
  ?workers:int ->
  ?busy:int ->
  ?jobs:Obs.Json.t list ->
  ?fleet:Obs.Json.t ->
  ?tenants:Obs.Json.t list ->
  uptime_s:float ->
  queue_depth:int ->
  queue_capacity:int ->
  cache_length:int ->
  cache_capacity:int ->
  metrics:Obs.Json.t ->
  unit ->
  Obs.Json.t

(** [check_frame j] — validate the [proto] tag and return the frame
    [type]. *)
val check_frame : Obs.Json.t -> (string, string) result

(** [frame_field j k] — field [k], if present and non-null. *)
val frame_field : Obs.Json.t -> string -> Obs.Json.t option
