(** Request execution and shard planning.

    {!execute} is the single-process reference semantics: it
    reproduces the experiments drivers' calls exactly (entry points,
    per-cell seed derivations, result names), so a service reply can
    be diffed against a direct [experiments] manifest.

    The rest of the module decomposes the same work for the
    distributed fleet.  A scalar- or batch-engine request splits into
    {!cell}s — one per independent driver call — and each cell pins
    the campaign chunk ledger its single [Mc.Runner] call will
    produce: every driver passes its seed unchanged into exactly one
    runner call and never overrides the chunk size, so the job key is
    a pure function of the cell.  {!cell_counts} runs an arbitrary
    chunk sub-range of a cell in the current process by zero-
    prefilling an in-memory campaign store outside the range and
    letting the unmodified driver replay the prefills; {!assemble}
    rebuilds the full payload from per-cell failure totals,
    bit-identically to {!execute} at any shard decomposition. *)

(** [execute ?domains ?obs est] — run the full request in this
    process.  May raise (estimator errors surface as [Failure] /
    [Invalid_argument]); the caller owns the try. *)
val execute :
  ?domains:int -> ?obs:Obs.t -> Protocol.estimator -> Protocol.payload

(** One independent driver call of a request's decomposition. *)
type cell = {
  c_index : int;  (** position in the request's cell order *)
  c_name : string;  (** payload cell name, e.g. ["l=4,p=0.01"] *)
  c_engine : string;  (** campaign engine tag: ["scalar"] or ["batch"] *)
  c_seed : int;  (** the seed the driver passes to its runner call *)
  c_trials : int;
  c_chunk : int;  (** the chunk size that runner call will use *)
}

(** [Whole] — not chunk-shardable (any rare-engine request): dispatch
    the entire request to one worker.  [Sharded cells] — the ordered
    cell decomposition. *)
type plan = Whole | Sharded of cell list

val plan : Protocol.estimator -> plan

(** Number of campaign chunks of a cell's ledger. *)
val nchunks : cell -> int

(** The campaign job key of a cell's runner call (label [""]). *)
val job_of_cell : cell -> Mc.Campaign.job

(** [cell_counts est cell ~lo ~hi] — compute chunks [lo, hi) of
    [cell]'s ledger and return [(chunk_index, failures)] pairs in
    chunk order.  Runs the unmodified driver under a range-prefilled
    in-memory campaign store (saving and restoring the ambient
    store).  Raises [Invalid_argument] on a bad range and [Failure]
    if the driver's job key does not match the plan (a planner bug —
    fail loud, never a wrong count). *)
val cell_counts :
  ?domains:int ->
  ?obs:Obs.t ->
  Protocol.estimator ->
  cell ->
  lo:int ->
  hi:int ->
  (int * int) list

(** [assemble est ~totals] — the full payload from per-cell failure
    totals (indexed by [c_index]).  Bit-identical to {!execute} for
    sharded plans. *)
val assemble : Protocol.estimator -> totals:int array -> Protocol.payload
