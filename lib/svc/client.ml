module Json = Obs.Json

type error = { code : string; message : string }

type outcome = {
  payload : Protocol.payload;
  raw_result : string;
  cached : bool;
  coalesced : bool;
  server_wall_s : float;
  progress_frames : int;
}

type progress = {
  p_state : string;
  p_elapsed_s : float;
  p_completed : int option;
  p_total : int option;
  p_phase : string option;
}

let transport message = { code = "transport"; message }

let connect ~socket =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  try
    Unix.connect fd (ADDR_UNIX socket);
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_connection ~socket f =
  match connect ~socket with
  | Error _ as e -> e
  | Ok fd -> Ok (Fun.protect ~finally:(fun () -> close fd) (fun () -> f fd))

let read_frame fd =
  match Codec.read fd with
  | Error `Closed -> Error (transport "connection closed by server")
  | Error (`Bad msg) -> Error (transport msg)
  | Ok (j, raw) -> (
    match Protocol.check_frame j with
    | Error msg -> Error (transport msg)
    | Ok ty -> Ok (ty, j, raw))

let field_string j k =
  Option.bind (Protocol.frame_field j k) Json.to_string_opt

let field_float j k =
  Option.bind (Protocol.frame_field j k) Json.to_float_opt

let field_bool j k =
  match Protocol.frame_field j k with Some (Json.Bool b) -> Some b | _ -> None

let error_of_frame j =
  {
    code = Option.value ~default:"error" (field_string j "code");
    message = Option.value ~default:"(no message)" (field_string j "message");
  }

let send fd req =
  try
    Codec.write fd (Protocol.request_frame req);
    Ok ()
  with
  | Unix.Unix_error (e, _, _) -> Error (transport (Unix.error_message e))
  | Failure msg -> Error (transport msg)

let request ?on_progress fd est =
  match send fd (Protocol.Run est) with
  | Error _ as e -> e
  | Ok () ->
    (* ack, then any number of progress frames, then meta + result
       (or a terminal error frame at any point) *)
    let rec loop ~cached ~coalesced ~wall ~progress =
      match read_frame fd with
      | Error _ as e -> e
      | Ok (ty, j, raw) -> (
        match ty with
        | "ack" -> loop ~cached ~coalesced ~wall ~progress
        | "progress" ->
          (match on_progress with
          | Some f ->
            let field_int j k =
              match Protocol.frame_field j k with
              | Some (Json.Int i) -> Some i
              | _ -> None
            in
            f
              {
                p_state = Option.value ~default:"?" (field_string j "state");
                p_elapsed_s =
                  Option.value ~default:0.0 (field_float j "elapsed_s");
                p_completed = field_int j "completed";
                p_total = field_int j "total";
                p_phase = field_string j "phase";
              }
          | None -> ());
          loop ~cached ~coalesced ~wall ~progress:(progress + 1)
        | "meta" ->
          loop
            ~cached:(Option.value ~default:cached (field_bool j "cached"))
            ~coalesced:
              (Option.value ~default:coalesced (field_bool j "coalesced"))
            ~wall:(Option.value ~default:wall (field_float j "wall_s"))
            ~progress
        | "result" -> (
          match
            Option.to_result ~none:"result frame: missing payload"
              (Protocol.frame_field j "payload")
            |> Fun.flip Result.bind Protocol.payload_of_json
          with
          | Error msg -> Error (transport msg)
          | Ok payload ->
            Ok
              {
                payload;
                raw_result = raw;
                cached;
                coalesced;
                server_wall_s = wall;
                progress_frames = progress;
              })
        | "error" -> Error (error_of_frame j)
        | other ->
          Error (transport (Printf.sprintf "unexpected %s frame" other)))
    in
    loop ~cached:false ~coalesced:false ~wall:0.0 ~progress:0

let simple fd req ~expect =
  match send fd req with
  | Error _ as e -> e
  | Ok () -> (
    match read_frame fd with
    | Error _ as e -> e
    | Ok (ty, j, _) ->
      if ty = expect then Ok j
      else if ty = "error" then Error (error_of_frame j)
      else Error (transport (Printf.sprintf "unexpected %s frame" ty)))

let status fd = simple fd Protocol.Status ~expect:"status"

let ping fd =
  Result.map (fun _ -> ()) (simple fd Protocol.Ping ~expect:"pong")

let shutdown fd =
  Result.map (fun _ -> ()) (simple fd Protocol.Shutdown ~expect:"ok")
