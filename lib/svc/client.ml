module Json = Obs.Json

type error = {
  code : string;
  message : string;
  retry_after_s : float option;
}

type outcome = {
  payload : Protocol.payload;
  raw_result : string;
  cached : bool;
  coalesced : bool;
  server_wall_s : float;
  progress_frames : int;
}

type progress = {
  p_state : string;
  p_elapsed_s : float;
  p_completed : int option;
  p_total : int option;
  p_phase : string option;
}

let transport message = { code = "transport"; message; retry_after_s = None }

let connect ~socket =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  try
    Unix.connect fd (ADDR_UNIX socket);
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_connection ~socket f =
  match connect ~socket with
  | Error _ as e -> e
  | Ok fd -> Ok (Fun.protect ~finally:(fun () -> close fd) (fun () -> f fd))

let read_frame fd =
  match Codec.read fd with
  | Error `Closed -> Error (transport "connection closed by server")
  | Error (`Bad msg) -> Error (transport msg)
  | Ok (j, raw) -> (
    match Protocol.check_frame j with
    | Error msg -> Error (transport msg)
    | Ok ty -> Ok (ty, j, raw))

let field_string j k =
  Option.bind (Protocol.frame_field j k) Json.to_string_opt

let field_float j k =
  Option.bind (Protocol.frame_field j k) Json.to_float_opt

let field_bool j k =
  match Protocol.frame_field j k with Some (Json.Bool b) -> Some b | _ -> None

let error_of_frame j =
  {
    code = Option.value ~default:"error" (field_string j "code");
    message = Option.value ~default:"(no message)" (field_string j "message");
    retry_after_s = field_float j "retry_after_s";
  }

let send ?tenant ?priority fd req =
  try
    Codec.write fd (Protocol.request_frame ?tenant ?priority req);
    Ok ()
  with
  | Unix.Unix_error (e, _, _) -> Error (transport (Unix.error_message e))
  | Failure msg -> Error (transport msg)

let request ?on_progress ?tenant ?priority fd est =
  match send ?tenant ?priority fd (Protocol.Run est) with
  | Error _ as e -> e
  | Ok () ->
    (* ack, then any number of progress frames, then meta + result
       (or a terminal error frame at any point) *)
    let rec loop ~cached ~coalesced ~wall ~progress =
      match read_frame fd with
      | Error _ as e -> e
      | Ok (ty, j, raw) -> (
        match ty with
        | "ack" -> loop ~cached ~coalesced ~wall ~progress
        | "progress" ->
          (match on_progress with
          | Some f ->
            let field_int j k =
              match Protocol.frame_field j k with
              | Some (Json.Int i) -> Some i
              | _ -> None
            in
            f
              {
                p_state = Option.value ~default:"?" (field_string j "state");
                p_elapsed_s =
                  Option.value ~default:0.0 (field_float j "elapsed_s");
                p_completed = field_int j "completed";
                p_total = field_int j "total";
                p_phase = field_string j "phase";
              }
          | None -> ());
          loop ~cached ~coalesced ~wall ~progress:(progress + 1)
        | "meta" ->
          loop
            ~cached:(Option.value ~default:cached (field_bool j "cached"))
            ~coalesced:
              (Option.value ~default:coalesced (field_bool j "coalesced"))
            ~wall:(Option.value ~default:wall (field_float j "wall_s"))
            ~progress
        | "result" -> (
          match
            Option.to_result ~none:"result frame: missing payload"
              (Protocol.frame_field j "payload")
            |> Fun.flip Result.bind Protocol.payload_of_json
          with
          | Error msg -> Error (transport msg)
          | Ok payload ->
            Ok
              {
                payload;
                raw_result = raw;
                cached;
                coalesced;
                server_wall_s = wall;
                progress_frames = progress;
              })
        | "error" -> Error (error_of_frame j)
        | other ->
          Error (transport (Printf.sprintf "unexpected %s frame" other)))
    in
    loop ~cached:false ~coalesced:false ~wall:0.0 ~progress:0

let simple fd req ~expect =
  match send fd req with
  | Error _ as e -> e
  | Ok () -> (
    match read_frame fd with
    | Error _ as e -> e
    | Ok (ty, j, _) ->
      if ty = expect then Ok j
      else if ty = "error" then Error (error_of_frame j)
      else Error (transport (Printf.sprintf "unexpected %s frame" ty)))

let status fd = simple fd Protocol.Status ~expect:"status"

let ping fd =
  Result.map (fun _ -> ()) (simple fd Protocol.Ping ~expect:"pong")

let shutdown fd =
  Result.map (fun _ -> ()) (simple fd Protocol.Shutdown ~expect:"ok")

(* --------------------------------------------------------- retries *)

(* Deterministic jitter: the retry schedule is a pure function of the
   request (seeded from its canonical hash) and the attempt number, so
   reruns of a script retry at the same instants — same spirit as the
   runner's chunk-RNG backoff jitter.  A herd of *distinct* requests
   still de-synchronizes, because distinct hashes give distinct
   schedules. *)
let retry_jitter ~hash ~attempt =
  let hex = String.sub hash 0 (min 15 (String.length hash)) in
  let seed =
    match int_of_string_opt ("0x" ^ hex) with Some s -> s | None -> 0
  in
  let key = Mc.Rng.split (Mc.Rng.split (Mc.Rng.root seed) 0x7274) attempt in
  0.5 +. (0.5 *. Mc.Rng.float (Mc.Rng.of_key key) 1.0)

let retryable_code = function "overloaded" -> true | _ -> false

let request_retrying ?on_progress ?tenant ?priority ?(retries = 0)
    ?(retry_cap = 30.0) ?(backoff = 0.5) ?(sleep = Unix.sleepf) ~socket est =
  if retries < 0 then invalid_arg "Client.request_retrying: retries < 0";
  if retry_cap <= 0.0 then
    invalid_arg "Client.request_retrying: retry_cap must be > 0";
  let hash = Protocol.hash (Run est) in
  let rec go attempt =
    (* a fresh connection per attempt: an [overloaded] reply or a
       refused connect leaves no descriptor worth reusing *)
    let verdict =
      match connect ~socket with
      | Error msg -> `Retryable (transport msg)
      | Ok fd -> (
        let r =
          Fun.protect
            ~finally:(fun () -> close fd)
            (fun () -> request ?on_progress ?tenant ?priority fd est)
        in
        match r with
        | Error e when retryable_code e.code -> `Retryable e
        | r -> `Final r)
    in
    match verdict with
    | `Final r -> r
    | `Retryable e ->
      if attempt >= retries then Error e
      else begin
        let base =
          backoff
          *. Float.of_int (1 lsl min attempt 16)
          *. retry_jitter ~hash ~attempt
        in
        (* never retry earlier than the server said to *)
        let hint = Option.value ~default:0.0 e.retry_after_s in
        sleep (Float.min retry_cap (Float.max hint base));
        go (attempt + 1)
      end
  in
  go 0
