(* Request execution and shard planning.

   [execute] reproduces the experiments drivers' calls exactly — same
   library entry points, same per-cell seed derivations, same result
   names — so a service reply can be diffed against a direct
   [experiments] manifest.  It is the single-process reference
   semantics.

   The rest of the module is the fleet's view of the same work: a
   request whose engine is scalar or batch decomposes into [cell]s
   (one per independent driver call), and each cell decomposes into
   the chunk ledger its one [Mc.Runner] call will produce — the
   campaign job key is a pure function of the cell, because every
   driver passes its seed unchanged into exactly one runner call and
   never overrides the chunk size.  [cell_counts] exploits that to run
   an arbitrary chunk sub-range of a cell out-of-process: prefill an
   in-memory campaign store with zero counts for every chunk outside
   the range, run the unmodified driver under it (the runner replays
   the prefills and computes only the range), then read the range's
   counts back out of the store.  [assemble] rebuilds the full payload
   from per-cell failure totals, bit-identically to [execute] — every
   estimate in a sharded payload is [Mc.Stats.estimate ~failures
   ~trials ()], which is exactly what the drivers return. *)

let rare_config { Protocol.max_weight; samples_per_class } =
  { Mc.Engine.default_rare with max_weight; samples_per_class }

let execute ?domains ?(obs = Obs.none) (est : Protocol.estimator) :
    Protocol.payload =
  let estimate_of ~failures ~trials =
    Mc.Stats.estimate ~failures ~trials ()
  in
  match est with
  | Steane_memory { level; eps; rounds; trials; seed; engine; tile_width } ->
    let e =
      match engine with
      | `Scalar ->
        Codes.Pauli_frame.memory_failure_mc ?domains ~obs ~level ~eps ~rounds
          ~trials ~seed ()
      | `Batch ->
        Codes.Pauli_frame.memory_failure_batch ?domains ~obs ~tile_width
          ~level ~eps ~rounds ~trials ~seed ()
      | `Rare cfg ->
        Mc.Stats.weighted_to_estimate
          (Codes.Pauli_frame.memory_failure_rare ?domains ~obs
             ~config:(rare_config cfg) ~level ~eps ~rounds ~seed ())
    in
    Estimate { name = Printf.sprintf "L%d@eps=%g" level eps; estimate = e }
  | Toric_memory { l; p; trials; seed; engine; tile_width } ->
    let e =
      match engine with
      | `Scalar ->
        let r = Toric.Memory.run_mc ?domains ~obs ~l ~p ~trials ~seed () in
        estimate_of ~failures:r.failures ~trials:r.trials
      | `Batch ->
        let r =
          Toric.Memory.run_batch ?domains ~obs ~tile_width ~l ~p ~trials ~seed
            ()
        in
        estimate_of ~failures:r.failures ~trials:r.trials
      | `Rare cfg ->
        Mc.Stats.weighted_to_estimate
          (Toric.Memory.run_rare ?domains ~obs ~config:(rare_config cfg) ~l ~p
             ~seed ())
    in
    Estimate { name = Printf.sprintf "l=%d,p=%g" l p; estimate = e }
  | Toric_scan { ls; ps; trials; seed; engine; tile_width } ->
    (* e10's loop shape: p outer (indexed), l inner, seed derived per
       cell — cells coincide with [experiments e10 --seed seed]. *)
    let cells = ref [] in
    List.iteri
      (fun pi p ->
        List.iter
          (fun l ->
            let seed = Mc.Rng.derive seed [ 10; l; pi ] in
            let e =
              match engine with
              | `Scalar ->
                let r =
                  Toric.Memory.run_mc ?domains ~obs ~l ~p ~trials ~seed ()
                in
                estimate_of ~failures:r.failures ~trials:r.trials
              | `Batch ->
                let r =
                  Toric.Memory.run_batch ?domains ~obs ~tile_width ~l ~p
                    ~trials ~seed ()
                in
                estimate_of ~failures:r.failures ~trials:r.trials
              | `Rare cfg ->
                Mc.Stats.weighted_to_estimate
                  (Toric.Memory.run_rare ?domains ~obs
                     ~config:(rare_config cfg) ~l ~p ~seed ())
            in
            cells :=
              { Protocol.name = Printf.sprintf "l=%d,p=%g" l p; estimate = e }
              :: !cells)
          ls)
      ps;
    Cells (List.rev !cells)
  | Toric_noisy { l; rounds; p; q; trials; seed; engine; tile_width } ->
    let r =
      match engine with
      | `Scalar ->
        Toric.Noisy_memory.run_mc ?domains ~obs ~l ~rounds ~p ~q ~trials
          ~seed ()
      | `Batch ->
        Toric.Noisy_memory.run_batch ?domains ~obs ~tile_width ~l ~rounds ~p
          ~q ~trials ~seed ()
      | `Rare _ ->
        (* unreachable through the protocol: estimator_of_json rejects
           the combination *)
        invalid_arg "Svc.Exec.execute: toric_noisy has no rare engine"
    in
    Estimate
      {
        name = Printf.sprintf "l=%d,p=%g" l p;
        estimate = estimate_of ~failures:r.failures ~trials:r.trials;
      }
  | Toric_circuit { l; rounds; eps; trials; seed; engine } ->
    let e =
      match engine with
      | `Scalar ->
        let r =
          Toric.Circuit_memory.run_mc ?domains ~obs ~l ~rounds
            ~noise:(Ft.Noise.uniform eps) ~trials ~seed ()
        in
        estimate_of ~failures:r.failures ~trials:r.trials
      | `Rare cfg ->
        Mc.Stats.weighted_to_estimate
          (Toric.Circuit_memory.run_rare ?domains ~obs
             ~config:(rare_config cfg) ~l ~rounds ~p:eps ~seed ())
      | `Batch ->
        invalid_arg "Svc.Exec.execute: toric_circuit has no batch engine"
    in
    Estimate { name = Printf.sprintf "l=%d,eps=%g" l eps; estimate = e }
  | Css_memory { code; eps; rounds; trials; seed; engine; tile_width } ->
    let t = Csskit.Zoo.get code in
    let e =
      match engine with
      | `Scalar ->
        Csskit.Memory.memory_failure_mc ?domains ~obs t ~eps ~rounds ~trials
          ~seed ()
      | `Batch ->
        Csskit.Memory.memory_failure_batch ?domains ~obs ~tile_width t ~eps
          ~rounds ~trials ~seed ()
      | `Rare _ ->
        (* unreachable through the protocol: estimator_of_json rejects
           the combination *)
        invalid_arg "Svc.Exec.execute: css_memory has no rare engine"
    in
    Estimate { name = Printf.sprintf "%s@eps=%g" code eps; estimate = e }
  | Pseudothreshold { eps_list; trials; seed } ->
    (* e5: per-eps exRec failure, then the A·eps² fit. *)
    let cells =
      List.mapi
        (fun i eps ->
          let e =
            Ft.Memory.logical_cnot_exrec_failure_mc ?domains ~obs
              ~noise:(Ft.Noise.gates_only eps) ~trials
              ~seed:(Mc.Rng.derive seed [ 5; i ])
              ()
          in
          { Protocol.name = Printf.sprintf "exrec@eps=%g" eps; estimate = e })
        eps_list
    in
    let pts =
      List.map2
        (fun eps (c : Protocol.cell) -> (eps, c.estimate.rate))
        eps_list cells
    in
    let f = Threshold.Pseudothreshold.fit pts in
    Fit { cells; a = f.a; threshold = f.threshold }

(* ---------------------------------------------------- shard planning *)

type cell = {
  c_index : int;  (* position in the request's cell order *)
  c_name : string;  (* the payload cell name, e.g. "l=4,p=0.01" *)
  c_engine : string;  (* campaign engine tag: "scalar" or "batch" *)
  c_seed : int;  (* the seed the driver passes to its runner call *)
  c_trials : int;
  c_chunk : int;  (* the chunk size that runner call will use *)
}

type plan = Whole | Sharded of cell list

let nchunks c = (c.c_trials + c.c_chunk - 1) / c.c_chunk

let job_of_cell c =
  { Mc.Campaign.label = ""; engine = c.c_engine; seed = c.c_seed;
    trials = c.c_trials; chunk = c.c_chunk }

(* Engine tag + chunk size of the one runner call a driver makes:
   scalar entry points never pass [?chunk] (so the runner picks
   {!Mc.Runner.default_chunk}), batch entry points chunk by tile. *)
let engine_chunk (engine : Protocol.engine) ~tile_width ~trials =
  match engine with
  | `Scalar -> Some ("scalar", Mc.Runner.default_chunk ~trials)
  | `Batch -> Some ("batch", tile_width)
  | `Rare _ -> None

let plan (est : Protocol.estimator) =
  let single ~name ~seed ~trials engine ~tile_width =
    match engine_chunk engine ~tile_width ~trials with
    | None -> Whole
    | Some (c_engine, c_chunk) ->
      Sharded
        [ { c_index = 0; c_name = name; c_engine; c_seed = seed;
            c_trials = trials; c_chunk } ]
  in
  match est with
  | Steane_memory { level; eps; trials; seed; engine; tile_width; _ } ->
    single ~name:(Printf.sprintf "L%d@eps=%g" level eps) ~seed ~trials engine
      ~tile_width
  | Toric_memory { l; p; trials; seed; engine; tile_width } ->
    single ~name:(Printf.sprintf "l=%d,p=%g" l p) ~seed ~trials engine
      ~tile_width
  | Toric_scan { ls; ps; trials; seed; engine; tile_width } -> (
    match engine_chunk engine ~tile_width ~trials with
    | None -> Whole
    | Some (c_engine, c_chunk) ->
      let cells = ref [] in
      let index = ref 0 in
      List.iteri
        (fun pi p ->
          List.iter
            (fun l ->
              cells :=
                { c_index = !index;
                  c_name = Printf.sprintf "l=%d,p=%g" l p;
                  c_engine;
                  c_seed = Mc.Rng.derive seed [ 10; l; pi ];
                  c_trials = trials;
                  c_chunk }
                :: !cells;
              incr index)
            ls)
        ps;
      Sharded (List.rev !cells))
  | Toric_noisy { l; p; trials; seed; engine; tile_width; _ } ->
    single ~name:(Printf.sprintf "l=%d,p=%g" l p) ~seed ~trials engine
      ~tile_width
  | Toric_circuit { l; eps; trials; seed; engine; _ } ->
    single ~name:(Printf.sprintf "l=%d,eps=%g" l eps) ~seed ~trials engine
      ~tile_width:64
  | Css_memory { code; eps; trials; seed; engine; tile_width; _ } ->
    single ~name:(Printf.sprintf "%s@eps=%g" code eps) ~seed ~trials engine
      ~tile_width
  | Pseudothreshold { eps_list; trials; seed } ->
    Sharded
      (List.mapi
         (fun i eps ->
           { c_index = i;
             c_name = Printf.sprintf "exrec@eps=%g" eps;
             c_engine = "scalar";
             c_seed = Mc.Rng.derive seed [ 5; i ];
             c_trials = trials;
             c_chunk = Mc.Runner.default_chunk ~trials })
         eps_list)

(* Run cell [index] of [est]'s plan — the one driver call that cell
   stands for, with the cell's own derived seed.  The aggregate the
   driver returns is discarded: callers read counts out of the ambient
   campaign store instead. *)
let run_cell ?domains ?(obs = Obs.none) (est : Protocol.estimator) ~index =
  match est with
  | Steane_memory { level; eps; rounds; trials; seed; engine; tile_width } ->
    (match engine with
    | `Scalar ->
      ignore
        (Codes.Pauli_frame.memory_failure_mc ?domains ~obs ~level ~eps
           ~rounds ~trials ~seed ())
    | `Batch ->
      ignore
        (Codes.Pauli_frame.memory_failure_batch ?domains ~obs ~tile_width
           ~level ~eps ~rounds ~trials ~seed ())
    | `Rare _ -> invalid_arg "Svc.Exec.run_cell: rare requests run whole")
  | Toric_memory { l; p; trials; seed; engine; tile_width } ->
    (match engine with
    | `Scalar ->
      ignore (Toric.Memory.run_mc ?domains ~obs ~l ~p ~trials ~seed ())
    | `Batch ->
      ignore
        (Toric.Memory.run_batch ?domains ~obs ~tile_width ~l ~p ~trials ~seed
           ())
    | `Rare _ -> invalid_arg "Svc.Exec.run_cell: rare requests run whole")
  | Toric_scan { ls; ps; trials; seed; engine; tile_width } ->
    let nl = List.length ls in
    let pi = index / nl and li = index mod nl in
    let l = List.nth ls li and p = List.nth ps pi in
    let seed = Mc.Rng.derive seed [ 10; l; pi ] in
    (match engine with
    | `Scalar ->
      ignore (Toric.Memory.run_mc ?domains ~obs ~l ~p ~trials ~seed ())
    | `Batch ->
      ignore
        (Toric.Memory.run_batch ?domains ~obs ~tile_width ~l ~p ~trials ~seed
           ())
    | `Rare _ -> invalid_arg "Svc.Exec.run_cell: rare requests run whole")
  | Toric_noisy { l; rounds; p; q; trials; seed; engine; tile_width } ->
    (match engine with
    | `Scalar ->
      ignore
        (Toric.Noisy_memory.run_mc ?domains ~obs ~l ~rounds ~p ~q ~trials
           ~seed ())
    | `Batch ->
      ignore
        (Toric.Noisy_memory.run_batch ?domains ~obs ~tile_width ~l ~rounds ~p
           ~q ~trials ~seed ())
    | `Rare _ -> invalid_arg "Svc.Exec.run_cell: toric_noisy has no rare engine")
  | Toric_circuit { l; rounds; eps; trials; seed; engine } ->
    (match engine with
    | `Scalar ->
      ignore
        (Toric.Circuit_memory.run_mc ?domains ~obs ~l ~rounds
           ~noise:(Ft.Noise.uniform eps) ~trials ~seed ())
    | `Rare _ | `Batch ->
      invalid_arg "Svc.Exec.run_cell: unsupported toric_circuit engine")
  | Css_memory { code; eps; rounds; trials; seed; engine; tile_width } ->
    let t = Csskit.Zoo.get code in
    (match engine with
    | `Scalar ->
      ignore
        (Csskit.Memory.memory_failure_mc ?domains ~obs t ~eps ~rounds ~trials
           ~seed ())
    | `Batch ->
      ignore
        (Csskit.Memory.memory_failure_batch ?domains ~obs ~tile_width t ~eps
           ~rounds ~trials ~seed ())
    | `Rare _ -> invalid_arg "Svc.Exec.run_cell: css_memory has no rare engine")
  | Pseudothreshold { eps_list; trials; seed } ->
    let eps = List.nth eps_list index in
    ignore
      (Ft.Memory.logical_cnot_exrec_failure_mc ?domains ~obs
         ~noise:(Ft.Noise.gates_only eps) ~trials
         ~seed:(Mc.Rng.derive seed [ 5; index ])
         ())

let cell_counts ?domains ?obs est (c : cell) ~lo ~hi =
  let n = nchunks c in
  if lo < 0 || hi > n || lo >= hi then
    invalid_arg "Svc.Exec.cell_counts: bad chunk range";
  let store = Mc.Campaign.in_memory () in
  let job = job_of_cell c in
  (* Zero-prefill everything outside [lo, hi): the runner's skip path
     replays those for free and computes only the range. *)
  for idx = 0 to n - 1 do
    if idx < lo || idx >= hi then
      Mc.Campaign.record store ~job ~chunk:idx ~failures:0
  done;
  let saved = Mc.Campaign.current () in
  Mc.Campaign.set_current (Some store);
  Fun.protect
    ~finally:(fun () -> Mc.Campaign.set_current saved)
    (fun () -> run_cell ?domains ?obs est ~index:c.c_index);
  List.init (hi - lo) (fun k ->
      let idx = lo + k in
      match Mc.Campaign.find store ~job ~chunk:idx with
      | Some f -> (idx, f)
      | None ->
        (* the driver's runner call used a different job key than the
           plan predicted — a planner bug, never a data race; fail loud
           so the identity test catches it *)
        failwith
          (Printf.sprintf
             "Svc.Exec.cell_counts: chunk %d missing after run (job \
              engine=%s seed=%d trials=%d chunk=%d)"
             idx c.c_engine c.c_seed c.c_trials c.c_chunk))

(* Rebuild the full payload from per-cell failure totals ([totals] in
   cell-index order).  Bit-identical to [execute]: the drivers' own
   estimates are [Mc.Stats.estimate ~failures ~trials ()] with the
   default interval, and the pseudothreshold fit is a deterministic
   function of the per-cell rates. *)
let assemble (est : Protocol.estimator) ~totals : Protocol.payload =
  let est_of i trials = Mc.Stats.estimate ~failures:totals.(i) ~trials () in
  match est with
  | Steane_memory { level; eps; trials; _ } ->
    Estimate
      { name = Printf.sprintf "L%d@eps=%g" level eps;
        estimate = est_of 0 trials }
  | Toric_memory { l; p; trials; _ } ->
    Estimate
      { name = Printf.sprintf "l=%d,p=%g" l p; estimate = est_of 0 trials }
  | Toric_scan { ls; ps; trials; _ } ->
    let cells = ref [] in
    let index = ref 0 in
    List.iter
      (fun p ->
        List.iter
          (fun l ->
            cells :=
              { Protocol.name = Printf.sprintf "l=%d,p=%g" l p;
                estimate = est_of !index trials }
              :: !cells;
            incr index)
          ls)
      ps;
    Cells (List.rev !cells)
  | Toric_noisy { l; p; trials; _ } ->
    Estimate
      { name = Printf.sprintf "l=%d,p=%g" l p; estimate = est_of 0 trials }
  | Toric_circuit { l; eps; trials; _ } ->
    Estimate
      { name = Printf.sprintf "l=%d,eps=%g" l eps;
        estimate = est_of 0 trials }
  | Css_memory { code; eps; trials; _ } ->
    Estimate
      { name = Printf.sprintf "%s@eps=%g" code eps;
        estimate = est_of 0 trials }
  | Pseudothreshold { eps_list; trials; _ } ->
    let cells =
      List.mapi
        (fun i eps ->
          { Protocol.name = Printf.sprintf "exrec@eps=%g" eps;
            estimate = est_of i trials })
        eps_list
    in
    let pts =
      List.map2
        (fun eps (c : Protocol.cell) -> (eps, c.estimate.rate))
        eps_list cells
    in
    let f = Threshold.Pseudothreshold.fit pts in
    Fit { cells; a = f.a; threshold = f.threshold }
