(** A thread-safe LRU result cache keyed by canonical request
    strings.

    Capacity-bounded: inserting beyond [capacity] evicts the least
    recently used entry ({!find} counts as use).  Hit/miss counters
    feed the daemon's [status] metrics.  All operations take the
    internal mutex, so worker and connection threads may share one
    cache. *)

type 'a t

(** [create ~capacity] — capacity must be >= 1. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Current number of entries. *)
val length : 'a t -> int

(** [find t key] — the cached value, promoting the entry to
    most-recently-used; bumps the hit or miss counter. *)
val find : 'a t -> string -> 'a option

(** [add t key v] — insert or overwrite (either way the entry
    becomes most-recently-used), evicting the LRU entry when over
    capacity. *)
val add : 'a t -> string -> 'a -> unit

val hits : 'a t -> int
val misses : 'a t -> int
