(* Mutex + condition around a Queue.t; push is non-blocking by design
   (admission control happens here, not in the workers). *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutable closed : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobq.create: capacity must be >= 1";
  {
    capacity;
    q = Queue.create ();
    closed = false;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let depth t = locked t (fun () -> Queue.length t.q)

let push t v =
  locked t (fun () ->
      if t.closed then Error `Closed
      else if Queue.length t.q >= t.capacity then Error `Overloaded
      else begin
        Queue.add v t.q;
        Condition.signal t.nonempty;
        Ok ()
      end)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      if Queue.is_empty t.q then None else Some (Queue.take t.q))

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)
