(** The [ftqcd] daemon: a Unix-domain-socket server over the
    library's Monte-Carlo estimators.

    Request lifecycle: a connection thread parses one [ftqc-rpc/1]
    request, consults the LRU {!Cache} (hit → immediate byte-identical
    reply), otherwise coalesces onto an in-flight job with the same
    canonical key or enqueues a new one on the bounded {!Jobq}
    (overflow → structured [overloaded] error).  A pool of worker
    threads drains the queue, driving {!Mc.Runner}-based estimators —
    whose counts are domain-count-invariant, so a cached, coalesced or
    fresh reply to the same canonical request (seed included) carries
    bit-identical failure counts.  While a job runs, waiting
    connections stream periodic [progress] frames; completion sends a
    [meta] frame (cache/coalescing flags, wall time) and then the
    deterministic [result] frame.

    Telemetry: the handle passed to {!run} (or a fresh live one)
    accumulates [svc.*] series — request/hit/miss/coalesced/overloaded
    counters, a queue-depth gauge, per-request latency histogram — and
    every [mc.*] series the runner records; a [status] request
    returns the whole registry.

    Shutdown rides the campaign signal path:
    [Mc.Campaign.install_signal_handlers] (or a [shutdown] request,
    or {!Mc.Campaign.request_stop}) raises the stop flag; the accept
    loop notices, drains queued jobs, joins the workers, closes every
    connection and removes the socket file. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  max_queue : int;  (** admission limit: queued (not yet running) jobs *)
  workers : int;  (** worker threads driving estimators *)
  cache_capacity : int;  (** LRU result-cache entries *)
  domains : int option;
      (** [?domains] forwarded to {!Mc.Runner} (None = engine default);
          counts do not depend on it *)
  progress_interval : float;  (** seconds between progress frames *)
  fleet : Fleet.config option;
      (** [Some cfg] shards jobs over a multi-process {!Fleet};
          [None] executes in-process *)
  limit : Qos.limit;  (** per-tenant front-door rate limit *)
}

(** [config ~socket ()] — defaults: [max_queue 32], [workers 2],
    [cache_capacity 128], [domains None], [progress_interval 1.0],
    no fleet, no rate limit. *)
val config :
  ?max_queue:int ->
  ?workers:int ->
  ?cache_capacity:int ->
  ?domains:int ->
  ?progress_interval:float ->
  ?fleet:Fleet.config ->
  ?limit:Qos.limit ->
  socket:string ->
  unit ->
  config

(** [execute ?domains ?obs est] — run one estimator synchronously
    (the function worker threads apply); exposed so tests and bench
    probes can compare service replies against direct runs. *)
val execute :
  ?domains:int -> ?obs:Obs.t -> Protocol.estimator -> Protocol.payload

(** [run ?obs cfg] — bind the socket and serve until the campaign
    stop flag ({!Mc.Campaign.stop_requested}) turns true; then clean
    up (socket file removed) and return.  Raises [Failure] if the
    socket path is in use by a live daemon; a stale socket file (no
    listener) is replaced.  Call from a thread to embed a daemon
    in-process. *)
val run : ?obs:Obs.t -> config -> unit
