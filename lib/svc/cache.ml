(* Doubly-linked LRU list + hashtable, one mutex around everything:
   the cache is shared between connection threads (lookups) and
   worker threads (inserts). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create 64;
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let length t = locked t (fun () -> Hashtbl.length t.table)

(* unlink [n] from the list (caller holds the lock) *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_mru t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_mru t n;
        Some n.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some n ->
        n.value <- value;
        unlink t n;
        push_mru t n
      | None ->
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key n;
        push_mru t n);
      if Hashtbl.length t.table > t.capacity then
        match t.lru with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key
        | None -> assert false)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
