(** Multi-process estimation fleet: worker registry, liveness
    detection, crash recovery and deterministic re-dispatch.

    The coordinator splits each request's campaign chunk ranges over
    [size] worker {e processes} using {!Exec.plan}; workers compute
    sub-ranges with the per-chunk RNG streams of a single-process run
    ({!Exec.cell_counts}), so the merged counts — and the assembled
    result frame — are bit-identical at any worker count.

    Robustness contract: a worker dying (crash, SIGKILL, hang past
    the watchdog) or dropping a result mid-campaign changes nothing
    in the result bytes.  Lost shards flow back through the request's
    in-memory [Mc.Campaign] ledger and are re-dispatched to a live
    worker; the dead slot restarts with exponential backoff at the
    next spawn generation, up to [max_restarts] times.  Fault
    injection for all three paths is wired through [Mc.Chaos]'s fleet
    specs (addressed by worker slot, spawn generation and dispatch
    ordinal, so a restarted worker does not re-trigger the fault).

    Workers are separate processes spawned by re-exec
    ([Unix.create_process_env Sys.executable_name] — [Unix.fork] is
    unavailable once domains exist), with dispatches and results as
    length-prefixed JSON frames ({!Codec}) on inherited pipe fds named
    in the environment; the child's stdin/stdout point at /dev/null,
    so nothing the host binary prints can corrupt the protocol.  The
    host binary {b must} call {!run_if_worker} before its own main. *)

type config = {
  size : int;  (** worker processes *)
  domains : int option;  (** per-worker domain count; [None] inherits *)
  hb_interval : float;  (** busy-worker heartbeat period, seconds *)
  hang_timeout : float;  (** SIGKILL a busy worker whose progress
                             stalls this long; [0.] disables *)
  max_restarts : int;  (** per slot, over the fleet's lifetime *)
  restart_backoff : float;  (** base restart delay, doubled each time *)
  shard_factor : int;  (** target shards per worker per request *)
  chaos : Mc.Chaos.fleet list;  (** fault injection, forwarded to
                                    workers via the environment *)
}

(** Validated constructor.  Defaults: [hb_interval = 0.25],
    [hang_timeout = 30.], [max_restarts = 5],
    [restart_backoff = 0.25], [shard_factor = 4], no chaos. *)
val config :
  ?domains:int ->
  ?hb_interval:float ->
  ?hang_timeout:float ->
  ?max_restarts:int ->
  ?restart_backoff:float ->
  ?shard_factor:int ->
  ?chaos:Mc.Chaos.fleet list ->
  size:int ->
  unit ->
  config

type t

(** [create ?obs cfg] — spawn the workers and their supervisor
    threads.  Counters: [svc.fleet.spawns], [svc.fleet.restarts],
    [svc.fleet.redispatched], [svc.fleet.hangs]; gauge
    [svc.fleet.alive]. *)
val create : ?obs:Obs.t -> config -> t

(** [execute t est] — run one request on the fleet and return the
    payload, bit-identical to [Exec.execute est] in-process.  Raises
    [Failure] when the request cannot complete (estimator error, or
    every slot exhausted its restarts). *)
val execute : t -> Protocol.estimator -> Protocol.payload

type stats = {
  s_size : int;
  s_alive : int;
  s_spawned : int;
  s_restarts : int;
  s_redispatched : int;
  s_hangs : int;
  s_workers : (int * int * int) list;  (** (slot, gen, pid), sorted *)
}

val stats : t -> stats

(** [shutdown t] — drain outstanding shards, stop the workers and
    join the supervisors. *)
val shutdown : t -> unit

(** {1 Worker-process entry} *)

(** The environment variable ([FTQC_FLEET_WORKER], value
    ["<slot>.<gen>"]) marking a process as a fleet worker. *)
val worker_env : string

(** [run_if_worker ()] — if {!worker_env} is set, run the worker
    protocol on stdin/stdout and [exit]; otherwise return.  Call
    first thing in any binary that hosts a fleet. *)
val run_if_worker : unit -> unit

(** The worker main loop.  Never returns. *)
val worker_main : unit -> 'a
