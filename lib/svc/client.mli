(** Blocking client for the [ftqc-rpc/1] estimation service.

    One {!connect}ed descriptor carries any number of sequential
    requests.  {!request} streams the server's frames: [progress]
    frames invoke the callback, the [meta] frame fills the outcome's
    cache/coalescing flags, and the final deterministic [result]
    frame is returned both parsed ([payload]) and as the exact bytes
    the server sent ([raw_result]) — the byte-identity contract is
    checked against those bytes, not a re-encoding. *)

type error = {
  code : string;
      (** server error code ([overloaded], [failed], [bad_request],
          [shutting_down], …) or ["transport"] for connection-level
          failures *)
  message : string;
  retry_after_s : float option;
      (** server hint accompanying [overloaded]: earliest useful
          retry, in seconds *)
}

type outcome = {
  payload : Protocol.payload;
  raw_result : string;  (** exact bytes of the result frame *)
  cached : bool;  (** answered from the LRU cache *)
  coalesced : bool;  (** joined an in-flight identical request *)
  server_wall_s : float;  (** server-side wall time for this request *)
  progress_frames : int;  (** progress frames received while waiting *)
}

(** [connect ~socket] — open a connection to a daemon's Unix-domain
    socket. *)
val connect : socket:string -> (Unix.file_descr, string) result

val close : Unix.file_descr -> unit

(** One progress frame, parsed.  Completion fields are [None] when
    the server predates (or has not yet sampled) runner completion
    for the job; [p_phase] is the label of the innermost live
    reporter (e.g. the current scan cell). *)
type progress = {
  p_state : string;
  p_elapsed_s : float;
  p_completed : int option;
  p_total : int option;
  p_phase : string option;
}

(** [request ?on_progress ?tenant ?priority fd est] — run one
    estimator remotely.  [tenant] and [priority] (["high"] |
    ["normal"]) ride at frame level for the daemon's QoS scheduler;
    they never enter the canonical request, so the result bytes do
    not depend on them. *)
val request :
  ?on_progress:(progress -> unit) ->
  ?tenant:string ->
  ?priority:string ->
  Unix.file_descr ->
  Protocol.estimator ->
  (outcome, error) result

(** [request_retrying ~socket est] — {!request} on a fresh connection
    per attempt, with bounded retry on [overloaded] replies and
    failed connects (other errors return immediately).  Off by
    default ([retries = 0]).  The backoff is exponential
    ([backoff * 2^attempt], default base 0.5s) with {e deterministic}
    jitter — a pure function of the request's canonical hash and the
    attempt number — floored at the server's [retry_after_s] hint and
    capped at [retry_cap] (default 30s).  [sleep] is a test hook. *)
val request_retrying :
  ?on_progress:(progress -> unit) ->
  ?tenant:string ->
  ?priority:string ->
  ?retries:int ->
  ?retry_cap:float ->
  ?backoff:float ->
  ?sleep:(float -> unit) ->
  socket:string ->
  Protocol.estimator ->
  (outcome, error) result

(** [status fd] — the daemon's status frame (uptime, queue and cache
    occupancy, full metrics registry) as JSON. *)
val status : Unix.file_descr -> (Obs.Json.t, error) result

val ping : Unix.file_descr -> (unit, error) result

(** [shutdown fd] — ask the daemon to stop (it drains queued jobs,
    then removes its socket). *)
val shutdown : Unix.file_descr -> (unit, error) result

(** [with_connection ~socket f] — connect, apply [f], always close. *)
val with_connection :
  socket:string -> (Unix.file_descr -> 'a) -> ('a, string) result
