(** Per-tenant quality of service: token-bucket rate limits and a
    two-level fair scheduler.

    {1 Rate limiting}

    A {!limiter} keeps one token bucket per tenant key: [rate] tokens
    accrue per second up to [burst], one request costs one token, and
    an empty bucket yields [`Retry_after] with the exact time until
    the next token — the daemon forwards it as the [overloaded]
    reply's retry-after hint.  [rate <= 0] (the {!unlimited} default)
    disables limiting entirely.  Time is an explicit argument so tests
    are deterministic.

    {1 Scheduling}

    A {!t} replaces the admission FIFO between the front door and the
    workers.  Two strict priority levels (high before normal, always);
    within a level, tenants share by {e deficit round robin}: each
    ring visit tops the tenant's deficit up by [quantum] and queued
    jobs spend their [cost] (the request's trial volume, clamped to
    16 quanta) against it — so a tenant submitting huge campaigns
    cannot starve one submitting small probes.  Same contract as
    {!Jobq}: {!push} never blocks ([`Overloaded] beyond capacity),
    {!pop} blocks until work or {!close}, and a closed queue drains
    before yielding [None]. *)

type limit = { rate : float; burst : float }

(** No limiting ([rate = 0]). *)
val unlimited : limit

(** [limit ~rate ~burst] — validated constructor: [rate >= 0]; when
    limiting is on, [burst >= 1]. *)
val limit : rate:float -> burst:float -> limit

type limiter

val limiter : limit -> limiter

(** [admit l ~tenant ~now] — spend one token from [tenant]'s bucket
    ([now] in seconds, any monotone clock).  [`Retry_after s] means
    the bucket is empty and refills in [s] seconds.  Thread-safe. *)
val admit : limiter -> tenant:string -> now:float -> [ `Ok | `Retry_after of float ]

type 'a t

val default_quantum : int

val create : ?quantum:int -> capacity:int -> unit -> 'a t
val capacity : 'a t -> int

(** Entries currently queued across both levels. *)
val depth : 'a t -> int

val push :
  'a t ->
  tenant:string ->
  high:bool ->
  cost:int ->
  'a ->
  (unit, [ `Overloaded | `Closed ]) result

(** [pop t] — block until an entry is dispensed; [None] once closed
    and drained. *)
val pop : 'a t -> 'a option

val close : 'a t -> unit

(** [(tenant, queued_high, queued_normal)] rows for tenants with
    queued work, sorted — for status introspection. *)
val tenants : 'a t -> (string * int * int) list
