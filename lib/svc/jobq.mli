(** A bounded FIFO job queue with reject-on-overflow admission
    control.

    {!push} never blocks: beyond [capacity] queued entries it returns
    [Error `Overloaded] — the daemon turns that into a structured
    [overloaded] reply instead of letting requests pile up or hang.
    {!pop} blocks workers until an entry or {!close} arrives. *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int

(** Entries currently queued (excludes entries already popped by a
    worker). *)
val depth : 'a t -> int

val push : 'a t -> 'a -> (unit, [ `Overloaded | `Closed ]) result

(** [pop t] — block until an entry is available; [None] once the
    queue is closed and drained. *)
val pop : 'a t -> 'a option

(** [close t] — reject further pushes and wake every blocked
    {!pop} (each drains remaining entries, then gets [None]). *)
val close : 'a t -> unit
