(* Multi-process estimation fleet.

   The coordinator shards each request's campaign-chunk ranges over N
   worker *processes* and merges the returned per-chunk counts through
   an in-memory [Mc.Campaign] ledger, so the assembled payload is
   bit-identical to a single-process run at any worker count — and
   stays so when workers crash, hang or drop results mid-campaign,
   because a lost shard is simply re-dispatched against the ledger and
   a retried chunk re-derives the same RNG stream.

   Processes, not domains: OCaml 5 forbids [Unix.fork] once domains
   exist, so workers are spawned by re-exec —
   [Unix.create_process_env Sys.executable_name] with
   [FTQC_FLEET_WORKER=<slot>.<gen>] in the environment; the host
   binary must call {!run_if_worker} before its own main (ftqcd and
   the test runner both do).  The dispatch and result pipes are
   inherited fds whose numbers ride in [FTQC_FLEET_FDS] — deliberately
   *not* the worker's stdin/stdout, which point at /dev/null from
   birth: anything the host binary prints before {!run_if_worker}
   gets control (module initializers, a library banner) or during a
   computation can then never corrupt the frame stream.  Frames are
   the same length-prefixed JSON as the client socket ([Codec]).

   Liveness: a worker heartbeats over the result pipe only while busy,
   plus one final beat on the busy→idle transition.  Idle workers are
   silent on purpose — a beating idle worker would slowly fill the
   pipe buffer nobody is draining — and an idle crash is caught at the
   next dispatch (EPIPE/EOF).  The final idle beat is what exposes a
   dropped result: [busy = false] with [rx >= id] and [tx < id] means
   the worker consumed dispatch [id] and went idle without answering
   it.  A busy worker whose progress stops advancing past the hang
   timeout is SIGKILLed and takes the crash path.  Crashes restart the
   slot with exponential backoff, [max_restarts] times, at the next
   spawn generation — which is why chaos specs address (slot, gen):
   the restarted process does not re-trigger the fault. *)

module Json = Obs.Json

let worker_env = "FTQC_FLEET_WORKER"
let hb_env = "FTQC_FLEET_HB"
let fds_env = "FTQC_FLEET_FDS"

(* The Unix library represents a POSIX [file_descr] as the raw fd
   number; these two are how inherited fds cross an exec boundary.
   POSIX-only, like the rest of the daemon (Unix sockets, signals). *)
let int_of_fd : Unix.file_descr -> int = Obj.magic
let fd_of_int : int -> Unix.file_descr = Obj.magic

type config = {
  size : int;
  domains : int option;  (* worker FTQC_DOMAINS; None = inherit *)
  hb_interval : float;
  hang_timeout : float;  (* 0 = hang watchdog off *)
  max_restarts : int;  (* per slot, over the fleet's lifetime *)
  restart_backoff : float;  (* base delay, doubled per restart *)
  shard_factor : int;  (* target shards per worker per request *)
  chaos : Mc.Chaos.fleet list;
}

let config ?domains ?(hb_interval = 0.25) ?(hang_timeout = 30.0)
    ?(max_restarts = 5) ?(restart_backoff = 0.25) ?(shard_factor = 4)
    ?(chaos = []) ~size () =
  if size < 1 then invalid_arg "Fleet.config: size must be >= 1";
  if hb_interval <= 0.0 then
    invalid_arg "Fleet.config: hb_interval must be > 0";
  if hang_timeout < 0.0 then
    invalid_arg "Fleet.config: hang_timeout must be >= 0";
  if max_restarts < 0 then
    invalid_arg "Fleet.config: max_restarts must be >= 0";
  if restart_backoff < 0.0 then
    invalid_arg "Fleet.config: restart_backoff must be >= 0";
  if shard_factor < 1 then
    invalid_arg "Fleet.config: shard_factor must be >= 1";
  { size; domains; hb_interval; hang_timeout; max_restarts; restart_backoff;
    shard_factor; chaos }

(* ------------------------------------------------------ pipe frames *)

let jint j k =
  match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let jstr j k =
  match Json.member k j with Some (Json.String s) -> Some s | _ -> None

let jbool j k =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let shard_frame ~id ~body ~cell ~lo ~hi =
  Json.Obj
    [ ("op", Json.String "shard"); ("id", Json.Int id); ("body", body);
      ("cell", Json.Int cell); ("lo", Json.Int lo); ("hi", Json.Int hi) ]

let whole_frame ~id ~body =
  Json.Obj [ ("op", Json.String "whole"); ("id", Json.Int id); ("body", body) ]

let exit_frame = Json.Obj [ ("op", Json.String "exit") ]

let hb_frame ~busy ~rx ~tx ~done_ ~total =
  Json.Obj
    [ ("op", Json.String "hb"); ("busy", Json.Bool busy);
      ("rx", Json.Int rx); ("tx", Json.Int tx); ("done", Json.Int done_);
      ("total", Json.Int total) ]

let ok_counts_frame ~id counts =
  Json.Obj
    [ ("op", Json.String "ok"); ("id", Json.Int id);
      ( "counts",
        Json.List
          (List.map (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ]) counts)
      ) ]

let ok_payload_frame ~id payload =
  Json.Obj
    [ ("op", Json.String "ok"); ("id", Json.Int id); ("payload", payload) ]

let fail_frame ~id ~message =
  Json.Obj
    [ ("op", Json.String "fail"); ("id", Json.Int id);
      ("message", Json.String message) ]

(* --------------------------------------------------- worker process *)

(* The worker half runs in the spawned process, speaking frames on
   stdin/stdout.  It exists in the same binary as the coordinator:
   {!run_if_worker} diverts execution here before the host's main. *)

let parse_slot_gen s =
  match String.split_on_char '.' s with
  | [ slot; gen ] -> (
    match (int_of_string_opt slot, int_of_string_opt gen) with
    | Some s, Some g when s >= 0 && g >= 0 -> (s, g)
    | _ -> failwith (Printf.sprintf "bad %s value %S" worker_env s))
  | _ -> failwith (Printf.sprintf "bad %s value %S" worker_env s)

let progress_totals () =
  List.fold_left
    (fun (d, t) (v : Obs.Progress.view) -> (d + v.v_done, t + v.v_total))
    (0, 0)
    (Obs.Progress.snapshot ())

let worker_main () =
  let slot, gen =
    match Sys.getenv_opt worker_env with
    | Some s -> parse_slot_gen s
    | None -> failwith "Fleet.worker_main: not a fleet worker"
  in
  let hb_interval =
    match Sys.getenv_opt hb_env with
    | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 0.25)
    | None -> 0.25
  in
  let chaos =
    match Sys.getenv_opt Mc.Chaos.fleet_env with
    | None -> []
    | Some s -> (
      match Mc.Chaos.fleet_list_of_string s with
      | Ok l ->
        List.filter (fun f -> f.Mc.Chaos.f_worker = slot && f.f_gen = gen) l
      | Error msg -> failwith msg)
  in
  (* The pipes are inherited fds named in the environment; stdin and
     stdout already point at /dev/null (the spawner's doing), so no
     print anywhere in this process can corrupt the frame stream.
     Fallback for running a worker by hand: speak on stdin/stdout,
     moved to private fds and replaced by /dev/null. *)
  let down, up =
    match Sys.getenv_opt fds_env with
    | Some s -> (
      match String.split_on_char '.' s with
      | [ d; u ] -> (
        match (int_of_string_opt d, int_of_string_opt u) with
        | Some d, Some u -> (fd_of_int d, fd_of_int u)
        | _ -> failwith (Printf.sprintf "bad %s value %S" fds_env s))
      | _ -> failwith (Printf.sprintf "bad %s value %S" fds_env s))
    | None ->
      let down = Unix.dup Unix.stdin in
      let up = Unix.dup Unix.stdout in
      let null_r = Unix.openfile "/dev/null" [ O_RDONLY ] 0 in
      let null_w = Unix.openfile "/dev/null" [ O_WRONLY ] 0 in
      Unix.dup2 null_r Unix.stdin;
      Unix.dup2 null_w Unix.stdout;
      Unix.close null_r;
      Unix.close null_w;
      (down, up)
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* publish runner progress so heartbeats can report completion *)
  Obs.Progress.set_publish true;
  let wmu = Mutex.create () in
  let rx = ref 0 and tx = ref 0 in
  let busy = ref false in
  let send j =
    Mutex.lock wmu;
    Fun.protect ~finally:(fun () -> Mutex.unlock wmu) (fun () ->
        Codec.write up j)
  in
  let hb () =
    let done_, total = progress_totals () in
    hb_frame ~busy:!busy ~rx:!rx ~tx:!tx ~done_ ~total
  in
  (* Heartbeats only while busy: an idle worker must stay silent or
     the unread pipe eventually fills and wedges this thread (and,
     because it holds [wmu], the whole worker). *)
  let _hb_thread =
    Thread.create
      (fun () ->
        while true do
          Thread.delay hb_interval;
          if !busy then try send (hb ()) with _ -> ()
        done)
      ()
  in
  let compute j =
    let body =
      match Json.member "body" j with
      | Some b -> b
      | None -> failwith "fleet dispatch: missing body"
    in
    let est =
      match Protocol.estimator_of_json body with
      | Ok e -> e
      | Error msg -> failwith ("fleet dispatch: " ^ msg)
    in
    match jstr j "op" with
    | Some "shard" ->
      let geti k =
        match jint j k with
        | Some i -> i
        | None -> failwith (Printf.sprintf "fleet dispatch: missing %s" k)
      in
      let cell_index = geti "cell" and lo = geti "lo" and hi = geti "hi" in
      let cell =
        match Exec.plan est with
        | Sharded cells -> (
          match
            List.find_opt (fun (c : Exec.cell) -> c.c_index = cell_index) cells
          with
          | Some c -> c
          | None -> failwith "fleet dispatch: cell index out of plan")
        | Whole -> failwith "fleet dispatch: shard op on a whole-plan request"
      in
      let counts = Exec.cell_counts est cell ~lo ~hi in
      ok_counts_frame ~id:!rx counts
    | Some "whole" ->
      let payload = Exec.execute est in
      ok_payload_frame ~id:!rx (Protocol.payload_to_json payload)
    | op ->
      failwith
        (Printf.sprintf "fleet dispatch: unknown op %S"
           (Option.value ~default:"" op))
  in
  let rec loop () =
    match Codec.read down with
    | Error `Closed -> exit 0
    | Error (`Bad msg) -> failwith ("fleet worker: " ^ msg)
    | Ok (j, _) -> (
      match jstr j "op" with
      | Some "exit" -> exit 0
      | _ ->
        incr rx;
        let nth = !rx - 1 in
        Mutex.lock wmu;
        busy := true;
        Mutex.unlock wmu;
        let fault =
          List.find_opt (fun f -> f.Mc.Chaos.f_nth = nth) chaos
        in
        (match fault with
        | Some { f_event = Kill_worker; _ } ->
          (* crash without cleanup: the coordinator must see raw EOF *)
          Unix.kill (Unix.getpid ()) Sys.sigkill
        | Some { f_event = Hang_worker seconds; _ } -> Unix.sleepf seconds
        | Some { f_event = Drop_result; _ } | None -> ());
        let reply =
          match compute j with
          | r -> Some r
          | exception e -> Some (fail_frame ~id:!rx ~message:(Printexc.to_string e))
        in
        let drop =
          match fault with
          | Some { f_event = Drop_result; _ } -> true
          | _ -> false
        in
        Mutex.lock wmu;
        (match reply with
        | Some r when not drop ->
          Codec.write up r;
          incr tx
        | _ -> ());
        busy := false;
        (* final beat of the busy interval: with [busy = false],
           [rx >= id], [tx < id] it is exactly the coordinator's
           dropped-result signal *)
        let done_, total = progress_totals () in
        (try Codec.write up (hb_frame ~busy:false ~rx:!rx ~tx:!tx ~done_ ~total)
         with _ -> ());
        Mutex.unlock wmu;
        loop ())
  in
  (try loop () with _ -> ());
  exit 0

let run_if_worker () =
  match Sys.getenv_opt worker_env with
  | Some _ -> worker_main ()
  | None -> ()

(* ------------------------------------------------------ coordinator *)

type request_state = {
  r_est : Protocol.estimator;
  r_body : Json.t;  (* encoded estimator, shipped in every dispatch *)
  r_store : Mc.Campaign.t;  (* in-memory re-dispatch ledger *)
  r_progress : Obs.Progress.p option;
  mutable r_left : int;  (* shards outstanding *)
  mutable r_error : string option;
  mutable r_payload : Protocol.payload option;  (* whole-plan result *)
}

type shard = {
  s_req : request_state;
  s_kind : [ `Cell of Exec.cell * int * int | `Whole ];
}

type proc = {
  pid : int;
  gen : int;
  down : Unix.file_descr;  (* write: dispatches *)
  up : Unix.file_descr;  (* read: results + heartbeats *)
  mutable sent : int;  (* dispatches sent to this process (1-based ids) *)
}

type t = {
  cfg : config;
  obs : Obs.t;
  squeue : shard Jobq.t;
  tmu : Mutex.t;  (* request state + registry *)
  rcv : Condition.t;
  mutable active : request_state list;  (* under [tmu] *)
  mutable workers : (int * int * int) list;  (* slot, gen, pid; under [tmu] *)
  alive : int Atomic.t;
  spawned : int Atomic.t;
  restarts : int Atomic.t;
  redispatched : int Atomic.t;
  hangs : int Atomic.t;
  supervisors : Thread.t list ref;
}

(* Environment of a worker process: the parent's, minus any stale
   fleet variables, plus this worker's address, pipe fds and config. *)
let worker_environment t ~slot ~gen ~down ~up =
  let keep kv =
    let name = match String.index_opt kv '=' with
      | Some i -> String.sub kv 0 i
      | None -> kv
    in
    name <> worker_env && name <> hb_env && name <> fds_env
    && name <> Mc.Chaos.fleet_env
    && (t.cfg.domains = None || name <> Mc.Runner.env_domains)
  in
  let base = Array.to_list (Unix.environment ()) |> List.filter keep in
  let extra =
    [ Printf.sprintf "%s=%d.%d" worker_env slot gen;
      Printf.sprintf "%s=%d.%d" fds_env (int_of_fd down) (int_of_fd up);
      Printf.sprintf "%s=%g" hb_env t.cfg.hb_interval ]
    @ (match t.cfg.chaos with
      | [] -> []
      | l ->
        [ Printf.sprintf "%s=%s" Mc.Chaos.fleet_env
            (Mc.Chaos.fleet_list_to_string l) ])
    @
    match t.cfg.domains with
    | Some d -> [ Printf.sprintf "%s=%d" Mc.Runner.env_domains d ]
    | None -> []
  in
  Array.of_list (base @ extra)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Spawns are serialized: the child's pipe ends must have close-on-exec
   cleared to survive the exec, and a concurrent fork in that window
   would leak them into a sibling — whose copy of a dead worker's
   write end would then mask the EOF the supervisor waits for.  The
   mutex closes the window: child ends are closed again before the
   next spawn may fork. *)
let spawn_mu = Mutex.create ()

let spawn t ~slot ~gen =
  Mutex.lock spawn_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock spawn_mu)
    (fun () ->
      let down_r, down_w = Unix.pipe ~cloexec:true () in
      let up_r, up_w = Unix.pipe ~cloexec:true () in
      Unix.clear_close_on_exec down_r;
      Unix.clear_close_on_exec up_w;
      let null_r = Unix.openfile "/dev/null" [ O_RDONLY ] 0 in
      let null_w = Unix.openfile "/dev/null" [ O_WRONLY ] 0 in
      let pid =
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          (worker_environment t ~slot ~gen ~down:down_r ~up:up_w)
          null_r null_w Unix.stderr
      in
      List.iter close_fd [ down_r; up_w; null_r; null_w ];
      Atomic.incr t.spawned;
      Obs.incr t.obs "svc.fleet.spawns";
      { pid; gen; down = down_w; up = up_r; sent = 0 })

let reap p =
  close_fd p.down;
  close_fd p.up;
  try ignore (Unix.waitpid [] p.pid) with Unix.Unix_error _ -> ()

let set_worker_row t ~slot ~gen ~pid =
  Mutex.lock t.tmu;
  t.workers <-
    (slot, gen, pid) :: List.filter (fun (s, _, _) -> s <> slot) t.workers;
  Mutex.unlock t.tmu

let drop_worker_row t ~slot =
  Mutex.lock t.tmu;
  t.workers <- List.filter (fun (s, _, _) -> s <> slot) t.workers;
  Mutex.unlock t.tmu

(* Complete one shard: merge its counts into the request ledger and
   wake the waiter.  [counts] is empty for whole-plan results. *)
let complete_shard t shard ~counts ~payload =
  Mutex.lock t.tmu;
  let r = shard.s_req in
  (match shard.s_kind with
  | `Cell (cell, _, _) ->
    let job = Exec.job_of_cell cell in
    List.iter
      (fun (idx, failures) ->
        Mc.Campaign.record r.r_store ~job ~chunk:idx ~failures)
      counts
  | `Whole -> r.r_payload <- payload);
  r.r_left <- r.r_left - 1;
  Obs.Progress.step r.r_progress;
  Condition.broadcast t.rcv;
  Mutex.unlock t.tmu

let fail_request t r msg =
  Mutex.lock t.tmu;
  if r.r_error = None then r.r_error <- Some msg;
  Condition.broadcast t.rcv;
  Mutex.unlock t.tmu

let fail_all t msg =
  Mutex.lock t.tmu;
  List.iter
    (fun r -> if r.r_error = None then r.r_error <- Some msg)
    t.active;
  Condition.broadcast t.rcv;
  Mutex.unlock t.tmu

(* Narrow a popped shard against the request ledger: chunks whose
   counts already landed (an earlier dispatch of this shard raced a
   re-dispatch, or a duplicate) need not be recomputed.  Whole-shard
   loss leaves the full range missing, so this is usually identity —
   but it is the ledger, not the scheduler, that decides what a
   re-dispatched worker recomputes. *)
let narrow_range store cell ~lo ~hi =
  let job = Exec.job_of_cell cell in
  let missing idx = Mc.Campaign.find store ~job ~chunk:idx = None in
  let rec first i = if i >= hi then None else if missing i then Some i else first (i + 1) in
  match first lo with
  | None -> None
  | Some lo' ->
    let rec last i = if missing i then i else last (i - 1) in
    Some (lo', last (hi - 1) + 1)

let requeue t shard =
  Atomic.incr t.redispatched;
  Obs.incr t.obs "svc.fleet.redispatched";
  match Jobq.push t.squeue shard with
  | Ok () -> ()
  | Error (`Closed | `Overloaded) ->
    fail_request t shard.s_req "fleet shutting down with shard in flight"

(* Await the result of dispatch [id] on [p].  Returns [`Done] when the
   shard completed or failed cleanly, [`Lost] when the worker consumed
   the dispatch and went idle without answering (dropped result), and
   [`Crashed] on EOF / corrupt stream (after SIGKILLing a hung
   worker, this is also the hang path). *)
let await_result t p ~id ~shard =
  let hang_on = t.cfg.hang_timeout > 0.0 in
  let last_frame = ref (Obs.now ()) in
  let last_sample = ref (-1, -1) in
  let last_advance = ref (Obs.now ()) in
  let killed = ref false in
  let kill_hung () =
    if not !killed then begin
      killed := true;
      Atomic.incr t.hangs;
      Obs.incr t.obs "svc.fleet.hangs";
      try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ()
    end
  in
  let rec loop () =
    let timeout = t.cfg.hb_interval in
    match Unix.select [ p.up ] [] [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | [], _, _ ->
      (* silence: no result, no heartbeat.  A busy worker beats every
         [hb_interval], so prolonged silence means the process is
         wedged harder than the cooperative watchdog can see. *)
      if hang_on
         && Obs.now () -. !last_frame
            > t.cfg.hang_timeout +. (2.0 *. t.cfg.hb_interval)
      then kill_hung ();
      loop ()
    | _ :: _, _, _ -> (
      match Codec.read p.up with
      | Error (`Closed | `Bad _) -> `Crashed
      | Ok (j, _) -> (
        last_frame := Obs.now ();
        match jstr j "op" with
        | Some "ok" when jint j "id" = Some id ->
          let counts =
            match Json.member "counts" j with
            | Some (Json.List l) ->
              List.filter_map
                (function
                  | Json.List [ Json.Int i; Json.Int c ] -> Some (i, c)
                  | _ -> None)
                l
            | _ -> []
          in
          let payload =
            match Json.member "payload" j with
            | Some pj -> (
              match Protocol.payload_of_json pj with
              | Ok p -> Some p
              | Error _ -> None)
            | None -> None
          in
          (match (shard.s_kind, payload) with
          | `Whole, None ->
            fail_request t shard.s_req
              "fleet worker returned a malformed whole-request payload"
          | _ -> complete_shard t shard ~counts ~payload);
          `Done
        | Some "fail" when jint j "id" = Some id ->
          fail_request t shard.s_req
            (Option.value ~default:"(no message)" (jstr j "message"));
          `Done
        | Some "hb" -> (
          let busy = Option.value ~default:false (jbool j "busy") in
          let rx = Option.value ~default:0 (jint j "rx") in
          let tx = Option.value ~default:0 (jint j "tx") in
          let done_ = Option.value ~default:0 (jint j "done") in
          let total = Option.value ~default:0 (jint j "total") in
          if (not busy) && rx >= id && tx < id then `Lost
          else begin
            if busy then begin
              if (done_, total) <> !last_sample then begin
                last_sample := (done_, total);
                last_advance := Obs.now ()
              end
              else if
                hang_on && Obs.now () -. !last_advance > t.cfg.hang_timeout
              then kill_hung ()
            end;
            loop ()
          end)
        | _ -> loop ()))
  in
  loop ()

(* One slot's supervisor: owns the slot's worker process end to end —
   dispatch, liveness, restart — and claims shards from the shared
   queue.  Runs until the queue closes, then tells the worker to
   exit. *)
let supervisor t ~slot =
  let gen = ref 0 in
  let restarts_used = ref 0 in
  let p = ref (spawn t ~slot ~gen:0) in
  set_worker_row t ~slot ~gen:0 ~pid:!p.pid;
  Obs.set_gauge t.obs "svc.fleet.alive" (float_of_int (Atomic.get t.alive));
  let respawn_or_retire () =
    reap !p;
    Atomic.incr t.restarts;
    Obs.incr t.obs "svc.fleet.restarts";
    if !restarts_used >= t.cfg.max_restarts then begin
      drop_worker_row t ~slot;
      let alive = Atomic.fetch_and_add t.alive (-1) - 1 in
      Obs.set_gauge t.obs "svc.fleet.alive" (float_of_int alive);
      if alive <= 0 then
        fail_all t
          (Printf.sprintf "fleet: all workers exhausted their %d restarts"
             t.cfg.max_restarts);
      false
    end
    else begin
      incr restarts_used;
      if t.cfg.restart_backoff > 0.0 then
        Unix.sleepf
          (t.cfg.restart_backoff
          *. Float.of_int (1 lsl min (!restarts_used - 1) 16));
      incr gen;
      p := spawn t ~slot ~gen:!gen;
      set_worker_row t ~slot ~gen:!gen ~pid:!p.pid;
      true
    end
  in
  let rec serve () =
    match Jobq.pop t.squeue with
    | None ->
      (try Codec.write !p.down exit_frame with _ -> ());
      reap !p;
      drop_worker_row t ~slot;
      ignore (Atomic.fetch_and_add t.alive (-1))
    | Some shard ->
      let r = shard.s_req in
      let skip =
        Mutex.lock t.tmu;
        let s = r.r_error <> None in
        Mutex.unlock t.tmu;
        s
      in
      if skip then serve ()
      else begin
        let dispatch =
          match shard.s_kind with
          | `Whole ->
            let id = !p.sent + 1 in
            Some (id, whole_frame ~id ~body:r.r_body, shard)
          | `Cell (cell, lo, hi) -> (
            match narrow_range r.r_store cell ~lo ~hi with
            | None ->
              (* every chunk already in the ledger: complete without
                 burning a worker on it *)
              complete_shard t shard ~counts:[] ~payload:None;
              None
            | Some (lo', hi') ->
              let id = !p.sent + 1 in
              let shard =
                { shard with s_kind = `Cell (cell, lo', hi') }
              in
              Some
                ( id,
                  shard_frame ~id ~body:r.r_body ~cell:cell.Exec.c_index
                    ~lo:lo' ~hi:hi',
                  shard ))
        in
        match dispatch with
        | None -> serve ()
        | Some (id, frame, shard) -> (
          match Codec.write !p.down frame with
          | () -> (
            !p.sent <- id;
            match await_result t !p ~id ~shard with
            | `Done -> serve ()
            | `Lost ->
              requeue t shard;
              serve ()
            | `Crashed ->
              requeue t shard;
              if respawn_or_retire () then serve ())
          | exception _ ->
            (* the pipe died while the worker was idle: crash path,
               with the shard never having left our hands *)
            requeue t shard;
            if respawn_or_retire () then serve ())
      end
  in
  serve ()

let create ?(obs = Obs.none) cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    { cfg;
      obs;
      squeue = Jobq.create ~capacity:65536;
      tmu = Mutex.create ();
      rcv = Condition.create ();
      active = [];
      workers = [];
      alive = Atomic.make cfg.size;
      spawned = Atomic.make 0;
      restarts = Atomic.make 0;
      redispatched = Atomic.make 0;
      hangs = Atomic.make 0;
      supervisors = ref [] }
  in
  t.supervisors :=
    List.init cfg.size (fun slot ->
        Thread.create (fun () -> supervisor t ~slot) ());
  t

(* Cut a request into shards: aim for [size * shard_factor] shards so
   re-dispatch after a mid-campaign crash loses little work, but never
   split below one chunk. *)
let shards_of_cells t cells =
  let total_chunks =
    List.fold_left (fun acc c -> acc + Exec.nchunks c) 0 cells
  in
  let span =
    max 1 (total_chunks / max 1 (t.cfg.size * t.cfg.shard_factor))
  in
  List.concat_map
    (fun cell ->
      let n = Exec.nchunks cell in
      let rec cut lo acc =
        if lo >= n then List.rev acc
        else
          let hi = min n (lo + span) in
          cut hi ((cell, lo, hi) :: acc)
      in
      cut 0 [])
    cells

let execute t (est : Protocol.estimator) : Protocol.payload =
  let body = Protocol.estimator_to_json est in
  let plan = Exec.plan est in
  let kinds =
    match plan with
    | Whole -> [ `Whole ]
    | Sharded cells ->
      List.map (fun (c, lo, hi) -> `Cell (c, lo, hi)) (shards_of_cells t cells)
  in
  let r =
    { r_est = est;
      r_body = body;
      r_store = Mc.Campaign.in_memory ();
      r_progress =
        Obs.Progress.create
          ~label:(Protocol.estimator_name est)
          ~total:(List.length kinds);
      r_left = List.length kinds;
      r_error = None;
      r_payload = None }
  in
  Mutex.lock t.tmu;
  t.active <- r :: t.active;
  Mutex.unlock t.tmu;
  let detach () =
    Mutex.lock t.tmu;
    t.active <- List.filter (fun r' -> r' != r) t.active;
    Mutex.unlock t.tmu
  in
  Fun.protect ~finally:detach @@ fun () ->
  if Atomic.get t.alive <= 0 then begin
    Obs.Progress.abandon r.r_progress;
    failwith "fleet: no live workers"
  end;
  List.iter
    (fun s_kind ->
      match Jobq.push t.squeue { s_req = r; s_kind } with
      | Ok () -> ()
      | Error (`Closed | `Overloaded) ->
        fail_request t r "fleet: shard queue unavailable")
    kinds;
  Mutex.lock t.tmu;
  while r.r_left > 0 && r.r_error = None do
    Condition.wait t.rcv t.tmu
  done;
  let verdict = (r.r_error, r.r_payload) in
  Mutex.unlock t.tmu;
  match verdict with
  | Some msg, _ ->
    Obs.Progress.abandon r.r_progress;
    failwith msg
  | None, Some payload ->
    Obs.Progress.finish r.r_progress;
    payload
  | None, None ->
    (* sharded completion: sum the ledger per cell and reassemble *)
    let cells = match plan with Sharded cs -> cs | Whole -> [] in
    let totals = Array.make (List.length cells) 0 in
    List.iter
      (fun (c : Exec.cell) ->
        let job = Exec.job_of_cell c in
        let n = Exec.nchunks c in
        let sum = ref 0 in
        for idx = 0 to n - 1 do
          match Mc.Campaign.find r.r_store ~job ~chunk:idx with
          | Some f -> sum := !sum + f
          | None ->
            failwith
              (Printf.sprintf
                 "fleet: chunk %d of cell %d missing at assembly" idx
                 c.c_index)
        done;
        totals.(c.c_index) <- !sum)
      cells;
    Obs.Progress.finish r.r_progress;
    Exec.assemble est ~totals

type stats = {
  s_size : int;
  s_alive : int;
  s_spawned : int;
  s_restarts : int;
  s_redispatched : int;
  s_hangs : int;
  s_workers : (int * int * int) list;  (* slot, gen, pid *)
}

let stats t =
  Mutex.lock t.tmu;
  let workers = List.sort compare t.workers in
  Mutex.unlock t.tmu;
  { s_size = t.cfg.size;
    s_alive = Atomic.get t.alive;
    s_spawned = Atomic.get t.spawned;
    s_restarts = Atomic.get t.restarts;
    s_redispatched = Atomic.get t.redispatched;
    s_hangs = Atomic.get t.hangs;
    s_workers = workers }

let shutdown t =
  Jobq.close t.squeue;
  List.iter Thread.join !(t.supervisors);
  t.supervisors := []
