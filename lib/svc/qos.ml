(* Per-tenant quality of service: token-bucket rate limiting at the
   front door and a two-level deficit-round-robin scheduler between
   admission and the workers.

   The limiter is deliberately time-explicit ([~now] is an argument,
   not a clock read) so tests drive it deterministically.  The
   scheduler replaces the plain FIFO between admission and workers:
   high priority is served strictly before normal, and within a level
   tenants share capacity by deficit round robin — each visit tops a
   tenant's deficit up by [quantum] and the tenant may spend it on its
   queued jobs' costs (cost = the request's trial volume), so a tenant
   submitting huge campaigns cannot starve one submitting small
   probes.  One item is dispensed per [pop]; a tenant that still has
   work re-enters the ring at the back with its remaining deficit. *)

(* ------------------------------------------------------ rate limits *)

type limit = { rate : float; burst : float }

let unlimited = { rate = 0.0; burst = 0.0 }

let limit ~rate ~burst =
  if rate < 0.0 then invalid_arg "Qos.limit: rate must be >= 0";
  if rate > 0.0 && burst < 1.0 then
    invalid_arg "Qos.limit: burst must be >= 1";
  { rate; burst }

type bucket = { mutable tokens : float; mutable last : float }

type limiter = {
  lim : limit;
  buckets : (string, bucket) Hashtbl.t;
  lmu : Mutex.t;
}

let limiter lim = { lim; buckets = Hashtbl.create 8; lmu = Mutex.create () }

let admit l ~tenant ~now =
  if l.lim.rate <= 0.0 then `Ok
  else begin
    Mutex.lock l.lmu;
    let b =
      match Hashtbl.find_opt l.buckets tenant with
      | Some b -> b
      | None ->
        let b = { tokens = l.lim.burst; last = now } in
        Hashtbl.replace l.buckets tenant b;
        b
    in
    (* monotone refill; a clock step backwards refills nothing *)
    let dt = now -. b.last in
    if dt > 0.0 then b.tokens <- Float.min l.lim.burst (b.tokens +. (dt *. l.lim.rate));
    b.last <- Float.max b.last now;
    let verdict =
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        `Ok
      end
      else `Retry_after ((1.0 -. b.tokens) /. l.lim.rate)
    in
    Mutex.unlock l.lmu;
    verdict
  end

(* -------------------------------------------------------- scheduler *)

let default_quantum = 100_000

(* A cost clamp bounds how many quantum top-ups one item can require
   before it is served, which in turn bounds the ring walk in [pick]. *)
let max_cost_quanta = 16

type 'a tenant_q = {
  jobs : (int * 'a) Queue.t;  (* (cost, item) *)
  mutable deficit : int;
  mutable in_ring : bool;
}

type 'a level = {
  tenants : (string, 'a tenant_q) Hashtbl.t;
  ring : string Queue.t;  (* tenants with queued work, visit order *)
}

let make_level () = { tenants = Hashtbl.create 8; ring = Queue.create () }

type 'a t = {
  capacity : int;
  quantum : int;
  high : 'a level;
  normal : 'a level;
  mutable depth : int;
  mutable closed : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create ?(quantum = default_quantum) ~capacity () =
  if capacity < 1 then invalid_arg "Qos.create: capacity must be >= 1";
  if quantum < 1 then invalid_arg "Qos.create: quantum must be >= 1";
  { capacity;
    quantum;
    high = make_level ();
    normal = make_level ();
    depth = 0;
    closed = false;
    lock = Mutex.create ();
    nonempty = Condition.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let depth t = locked t (fun () -> t.depth)

let push t ~tenant ~high ~cost v =
  locked t (fun () ->
      if t.closed then Error `Closed
      else if t.depth >= t.capacity then Error `Overloaded
      else begin
        let level = if high then t.high else t.normal in
        let tq =
          match Hashtbl.find_opt level.tenants tenant with
          | Some tq -> tq
          | None ->
            let tq =
              { jobs = Queue.create (); deficit = 0; in_ring = false }
            in
            Hashtbl.replace level.tenants tenant tq;
            tq
        in
        let cost = max 1 (min cost (max_cost_quanta * t.quantum)) in
        Queue.add (cost, v) tq.jobs;
        if not tq.in_ring then begin
          tq.in_ring <- true;
          Queue.add tenant level.ring
        end;
        t.depth <- t.depth + 1;
        Condition.signal t.nonempty;
        Ok ()
      end)

(* One DRR dispense from a level.  The clamp guarantees any head item
   is servable within [max_cost_quanta] top-ups, so the walk is
   bounded by [max_cost_quanta * |ring|] visits. *)
let pick t level =
  if Queue.is_empty level.ring then None
  else begin
    let guard = ref (max_cost_quanta * (Queue.length level.ring + 1)) in
    let result = ref None in
    while !result = None && !guard > 0 do
      decr guard;
      let tenant = Queue.take level.ring in
      let tq = Hashtbl.find level.tenants tenant in
      let cost, _ = Queue.peek tq.jobs in
      if tq.deficit < cost then begin
        tq.deficit <- tq.deficit + t.quantum;
        if tq.deficit >= cost then begin
          let cost, v = Queue.take tq.jobs in
          tq.deficit <- tq.deficit - cost;
          if Queue.is_empty tq.jobs then begin
            tq.deficit <- 0;
            tq.in_ring <- false
          end
          else Queue.add tenant level.ring;
          result := Some v
        end
        else Queue.add tenant level.ring
      end
      else begin
        let cost, v = Queue.take tq.jobs in
        tq.deficit <- tq.deficit - cost;
        if Queue.is_empty tq.jobs then begin
          tq.deficit <- 0;
          tq.in_ring <- false
        end
        else Queue.add tenant level.ring;
        result := Some v
      end
    done;
    !result
  end

let pop t =
  locked t (fun () ->
      let rec wait () =
        if t.depth = 0 && not t.closed then begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ();
      if t.depth = 0 then None
      else begin
        let v =
          match pick t t.high with
          | Some v -> Some v
          | None -> pick t t.normal
        in
        match v with
        | Some _ as v ->
          t.depth <- t.depth - 1;
          v
        | None ->
          (* unreachable while depth tracks ring contents; fail loud
             rather than spin *)
          failwith "Qos.pop: depth/ring invariant broken"
      end)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

(* Per-tenant queued counts, for status introspection. *)
let tenants t =
  locked t (fun () ->
      let count level tenant =
        match Hashtbl.find_opt level.tenants tenant with
        | Some tq -> Queue.length tq.jobs
        | None -> 0
      in
      let names = Hashtbl.create 8 in
      List.iter
        (fun (level : 'a level) ->
          Hashtbl.iter
            (fun name tq ->
              if Queue.length tq.jobs > 0 then Hashtbl.replace names name ())
            level.tenants)
        [ t.high; t.normal ];
      Hashtbl.fold
        (fun name () acc ->
          (name, count t.high name, count t.normal name) :: acc)
        names []
      |> List.sort compare)
