(* ftqc-rpc/1: canonical request encoding + frame builders.  The
   canonical string (fixed field order, defaults filled in, the
   deterministic Obs.Json encoder) is the cache/coalescing key; the
   result frame is a pure function of (key, payload) so cached and
   fresh replies are byte-identical. *)

module Json = Obs.Json

let proto_version = "ftqc-rpc/1"

type rare = { max_weight : int; samples_per_class : int }
type engine = [ `Scalar | `Batch | `Rare of rare ]

type estimator =
  | Steane_memory of {
      level : int;
      eps : float;
      rounds : int;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
  | Toric_memory of {
      l : int;
      p : float;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
  | Toric_scan of {
      ls : int list;
      ps : float list;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
  | Toric_noisy of {
      l : int;
      rounds : int;
      p : float;
      q : float;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
  | Toric_circuit of {
      l : int;
      rounds : int;
      eps : float;
      trials : int;
      seed : int;
      engine : engine;
    }
  | Css_memory of {
      code : string;
      eps : float;
      rounds : int;
      trials : int;
      seed : int;
      engine : engine;
      tile_width : int;
    }
  | Pseudothreshold of { eps_list : float list; trials : int; seed : int }

type request = Run of estimator | Status | Ping | Shutdown
type cell = { name : string; estimate : Mc.Stats.estimate }

type payload =
  | Estimate of cell
  | Cells of cell list
  | Fit of { cells : cell list; a : float; threshold : float }

(* ------------------------------------------------------- encoding *)

let engine_to_string = function
  | `Scalar -> "scalar"
  | `Batch -> "batch"
  | `Rare _ -> "rare"

let default_rare =
  {
    max_weight = Mc.Engine.default_max_weight;
    samples_per_class = Mc.Engine.default_samples_per_class;
  }

let engine_of_string = function
  | "scalar" -> Ok `Scalar
  | "batch" -> Ok `Batch
  | "rare" -> Ok (`Rare default_rare)
  | s -> Error (Printf.sprintf "unknown engine %S" s)

let estimator_name = function
  | Steane_memory _ -> "steane_memory"
  | Toric_memory _ -> "toric_memory"
  | Toric_scan _ -> "toric_scan"
  | Toric_noisy _ -> "toric_noisy"
  | Toric_circuit _ -> "toric_circuit"
  | Css_memory _ -> "css_memory"
  | Pseudothreshold _ -> "pseudothreshold"

(* Scans that replay an experiments-driver record keep its experiment
   name so manifest_check --diff-results can compare a service reply
   against a direct run; single cells get the request-type tag. *)
let experiment_name = function
  | Toric_scan _ -> "e10"
  | Pseudothreshold _ -> "e5"
  (* a css cell with the driver's derived seed reproduces a single-eps
     `experiments css` record exactly (one cell, no fit rows) *)
  | Css_memory _ -> "css"
  | e -> estimator_name e

let floats l = Json.List (List.map (fun f -> Json.Float f) l)
let ints l = Json.List (List.map (fun i -> Json.Int i) l)

(* [tile_width] is emitted only when it differs from the default 64:
   the canonical bytes of every pre-tile request are unchanged, so
   cached results keyed on them survive the protocol extension. *)
let tile_fields tile_width =
  if tile_width = 64 then [] else [ ("tile_width", Json.Int tile_width) ]

(* Likewise the rare-engine parameters: encoded only when they differ
   from {!Mc.Engine.default_rare}, so an all-defaults rare request has
   exactly one canonical form. *)
let rare_fields = function
  | `Scalar | `Batch -> []
  | `Rare { max_weight; samples_per_class } ->
    (if max_weight = default_rare.max_weight then []
     else [ ("max_weight", Json.Int max_weight) ])
    @
    if samples_per_class = default_rare.samples_per_class then []
    else [ ("samples_per_class", Json.Int samples_per_class) ]

(* [Toric_circuit] predates the engine field; [`Scalar] is omitted so
   every pre-rare request keeps its canonical bytes — and thus its
   cache key. *)
let circuit_engine_fields = function
  | `Scalar -> []
  | e -> ("engine", Json.String (engine_to_string e)) :: rare_fields e

let estimator_to_json e =
  let typ = ("type", Json.String (estimator_name e)) in
  match e with
  | Steane_memory { level; eps; rounds; trials; seed; engine; tile_width } ->
    Json.Obj
      ([ typ; ("level", Int level); ("eps", Float eps); ("rounds", Int rounds);
         ("trials", Int trials); ("seed", Int seed);
         ("engine", String (engine_to_string engine)) ]
      @ rare_fields engine @ tile_fields tile_width)
  | Toric_memory { l; p; trials; seed; engine; tile_width } ->
    Json.Obj
      ([ typ; ("l", Int l); ("p", Float p); ("trials", Int trials);
         ("seed", Int seed); ("engine", String (engine_to_string engine)) ]
      @ rare_fields engine @ tile_fields tile_width)
  | Toric_scan { ls; ps; trials; seed; engine; tile_width } ->
    Json.Obj
      ([ typ; ("ls", ints ls); ("ps", floats ps); ("trials", Int trials);
         ("seed", Int seed); ("engine", String (engine_to_string engine)) ]
      @ rare_fields engine @ tile_fields tile_width)
  | Toric_noisy { l; rounds; p; q; trials; seed; engine; tile_width } ->
    Json.Obj
      ([ typ; ("l", Int l); ("rounds", Int rounds); ("p", Float p);
         ("q", Float q); ("trials", Int trials); ("seed", Int seed);
         ("engine", String (engine_to_string engine)) ]
      @ tile_fields tile_width)
  | Toric_circuit { l; rounds; eps; trials; seed; engine } ->
    Json.Obj
      ([ typ; ("l", Int l); ("rounds", Int rounds); ("eps", Float eps);
         ("trials", Int trials); ("seed", Int seed) ]
      @ circuit_engine_fields engine)
  | Css_memory { code; eps; rounds; trials; seed; engine; tile_width } ->
    Json.Obj
      ([ typ; ("code", String code); ("eps", Float eps);
         ("rounds", Int rounds); ("trials", Int trials); ("seed", Int seed);
         ("engine", String (engine_to_string engine)) ]
      @ tile_fields tile_width)
  | Pseudothreshold { eps_list; trials; seed } ->
    Json.Obj
      [ typ; ("eps_list", floats eps_list); ("trials", Int trials);
        ("seed", Int seed) ]

let request_to_json = function
  | Run e -> estimator_to_json e
  | Status -> Json.Obj [ ("type", String "status") ]
  | Ping -> Json.Obj [ ("type", String "ping") ]
  | Shutdown -> Json.Obj [ ("type", String "shutdown") ]

(* ------------------------------------------------------- decoding *)

let ( let* ) = Result.bind

(* strict object reader: every present field must be consumed, every
   consumed field must be well-typed; [engine] and [tile_width] are
   the defaulted fields (canonicalization fills engine in and omits
   the default tile_width) *)
type reader = { fields : (string * Json.t) list; mutable seen : string list }

let reader_of_json = function
  | Json.Obj fields -> Ok { fields; seen = [] }
  | _ -> Error "request must be a JSON object"

let field r name =
  r.seen <- name :: r.seen;
  List.assoc_opt name r.fields

let req_int r name =
  match field r name with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let req_float r name =
  match field r name with
  | Some v -> (
    match Json.to_float_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "field %S must be a number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_int r name =
  match field r name with
  | None -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let check cond msg = if cond then Ok () else Error msg

(* Missing rare parameters mean {!Mc.Engine.default_rare}
   (canonicalization omits defaults); outside the rare engine they
   are rejected, keeping one canonical form per computation. *)
let req_engine r =
  let* e =
    match field r "engine" with
    | None -> Ok `Scalar
    | Some (Json.String s) -> engine_of_string s
    | Some _ -> Error "field \"engine\" must be a string"
  in
  let* mw = opt_int r "max_weight" in
  let* spc = opt_int r "samples_per_class" in
  match e with
  | `Rare d ->
    let max_weight = Option.value mw ~default:d.max_weight in
    let samples_per_class = Option.value spc ~default:d.samples_per_class in
    let* () = check (max_weight >= 1) "max_weight must be positive" in
    let* () =
      check (samples_per_class >= 1) "samples_per_class must be positive"
    in
    Ok (`Rare { max_weight; samples_per_class })
  | (`Scalar | `Batch) as e ->
    let* () = check (mw = None) "max_weight requires engine \"rare\"" in
    let* () =
      check (spc = None) "samples_per_class requires engine \"rare\""
    in
    Ok e

let req_list elem r name =
  match field r name with
  | Some (Json.List l) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: tl -> (
        match elem v with
        | Some x -> go (x :: acc) tl
        | None -> Error (Printf.sprintf "field %S has a malformed element" name))
    in
    let* l = go [] l in
    if l = [] then Error (Printf.sprintf "field %S must be non-empty" name)
    else Ok l
  | Some _ -> Error (Printf.sprintf "field %S must be a list" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let finish r v =
  let unknown =
    List.filter
      (fun (k, _) -> not (List.mem k ("type" :: r.seen)))
      r.fields
  in
  match unknown with
  | [] -> v
  | (k, _) :: _ -> Error (Printf.sprintf "unknown field %S" k)

let prob name p =
  check (p >= 0.0 && p <= 1.0) (Printf.sprintf "%s must be in [0,1]" name)

let positive name i =
  check (i > 0) (Printf.sprintf "%s must be positive" name)

(* Missing tile_width means the pre-tile default (64).  The scalar
   engine has no tiles; rejecting the combination keeps one canonical
   encoding (and one cache key) per distinct computation. *)
let req_tile_width r engine =
  let* w =
    match field r "tile_width" with
    | None -> Ok 64
    | Some (Json.Int w) -> Ok w
    | Some _ -> Error "field \"tile_width\" must be an integer"
  in
  let* () =
    check
      (w >= 64 && w mod 64 = 0)
      "tile_width must be a positive multiple of 64"
  in
  let* () =
    check (engine = `Batch || w = 64) "tile_width requires engine \"batch\"" in
  Ok w

let estimator_of_json j =
  let* r = reader_of_json j in
  let* typ =
    match List.assoc_opt "type" r.fields with
    | Some (Json.String s) -> Ok s
    | _ -> Error "missing request \"type\""
  in
  finish r
    (match typ with
    | "steane_memory" ->
      let* level = req_int r "level" in
      let* eps = req_float r "eps" in
      let* rounds = req_int r "rounds" in
      let* trials = req_int r "trials" in
      let* seed = req_int r "seed" in
      let* engine = req_engine r in
      let* tile_width = req_tile_width r engine in
      let* () = check (level >= 1 && level <= 3) "level must be 1..3" in
      let* () = prob "eps" eps in
      let* () = positive "rounds" rounds in
      let* () = positive "trials" trials in
      Ok (Steane_memory { level; eps; rounds; trials; seed; engine; tile_width })
    | "toric_memory" ->
      let* l = req_int r "l" in
      let* p = req_float r "p" in
      let* trials = req_int r "trials" in
      let* seed = req_int r "seed" in
      let* engine = req_engine r in
      let* tile_width = req_tile_width r engine in
      let* () = check (l >= 2) "l must be >= 2" in
      let* () = prob "p" p in
      let* () = positive "trials" trials in
      Ok (Toric_memory { l; p; trials; seed; engine; tile_width })
    | "toric_scan" ->
      let* ls = req_list Json.to_int_opt r "ls" in
      let* ps = req_list Json.to_float_opt r "ps" in
      let* trials = req_int r "trials" in
      let* seed = req_int r "seed" in
      let* engine = req_engine r in
      let* tile_width = req_tile_width r engine in
      let* () = check (List.for_all (fun l -> l >= 2) ls) "ls must be >= 2" in
      let* () =
        check (List.for_all (fun p -> p >= 0.0 && p <= 1.0) ps)
          "ps must be in [0,1]"
      in
      let* () = positive "trials" trials in
      Ok (Toric_scan { ls; ps; trials; seed; engine; tile_width })
    | "toric_noisy" ->
      let* l = req_int r "l" in
      let* rounds = req_int r "rounds" in
      let* p = req_float r "p" in
      let* q = req_float r "q" in
      let* trials = req_int r "trials" in
      let* seed = req_int r "seed" in
      let* engine = req_engine r in
      let* () =
        check
          (match engine with `Rare _ -> false | `Scalar | `Batch -> true)
          "toric_noisy does not support engine \"rare\""
      in
      let* tile_width = req_tile_width r engine in
      let* () = check (l >= 2) "l must be >= 2" in
      let* () = positive "rounds" rounds in
      let* () = prob "p" p in
      let* () = prob "q" q in
      let* () = positive "trials" trials in
      Ok (Toric_noisy { l; rounds; p; q; trials; seed; engine; tile_width })
    | "toric_circuit" ->
      let* l = req_int r "l" in
      let* rounds = req_int r "rounds" in
      let* eps = req_float r "eps" in
      let* trials = req_int r "trials" in
      let* seed = req_int r "seed" in
      let* engine = req_engine r in
      let* () =
        check
          (match engine with `Batch -> false | `Scalar | `Rare _ -> true)
          "toric_circuit does not support engine \"batch\""
      in
      let* () = check (l >= 2) "l must be >= 2" in
      let* () = positive "rounds" rounds in
      let* () = prob "eps" eps in
      let* () = positive "trials" trials in
      Ok (Toric_circuit { l; rounds; eps; trials; seed; engine })
    | "css_memory" ->
      let* code =
        match field r "code" with
        | Some (Json.String s) -> Ok s
        | Some _ -> Error "field \"code\" must be a string"
        | None -> Error "missing field \"code\""
      in
      let* eps = req_float r "eps" in
      let* rounds = req_int r "rounds" in
      let* trials = req_int r "trials" in
      let* seed = req_int r "seed" in
      let* engine = req_engine r in
      let* () =
        check
          (match engine with `Rare _ -> false | `Scalar | `Batch -> true)
          "css_memory does not support engine \"rare\""
      in
      let* tile_width = req_tile_width r engine in
      let* () =
        check (Csskit.Zoo.mem code)
          (Printf.sprintf "unknown zoo code %S (known: %s)" code
             (String.concat ", " (Csskit.Zoo.names ())))
      in
      let* () = prob "eps" eps in
      let* () = positive "rounds" rounds in
      let* () = positive "trials" trials in
      Ok (Css_memory { code; eps; rounds; trials; seed; engine; tile_width })
    | "pseudothreshold" ->
      let* eps_list = req_list Json.to_float_opt r "eps_list" in
      let* trials = req_int r "trials" in
      let* seed = req_int r "seed" in
      let* () =
        check
          (List.for_all (fun e -> e > 0.0 && e <= 1.0) eps_list)
          "eps_list must be in (0,1]"
      in
      let* () = positive "trials" trials in
      Ok (Pseudothreshold { eps_list; trials; seed })
    | t -> Error (Printf.sprintf "unknown request type %S" t))

let request_of_json j =
  match j with
  | Json.Obj fields -> (
    match List.assoc_opt "type" fields with
    | Some (Json.String "status") -> Ok Status
    | Some (Json.String "ping") -> Ok Ping
    | Some (Json.String "shutdown") -> Ok Shutdown
    | _ ->
      let* e = estimator_of_json j in
      Ok (Run e))
  | _ -> Error "request must be a JSON object"

let to_canonical r = Json.to_string (request_to_json r)
let hash r = Digest.to_hex (Digest.string (to_canonical r))

(* ------------------------------------------------------- payloads *)

let estimate_to_json (e : Mc.Stats.estimate) =
  Json.Obj
    [ ("failures", Int e.failures); ("trials", Int e.trials);
      ("rate", Float e.rate); ("stderr", Float e.stderr);
      ("ci_low", Float e.ci_low); ("ci_high", Float e.ci_high) ]

let estimate_of_json j =
  let* r = reader_of_json j in
  let* failures = req_int r "failures" in
  let* trials = req_int r "trials" in
  let* rate = req_float r "rate" in
  let* stderr = req_float r "stderr" in
  let* ci_low = req_float r "ci_low" in
  let* ci_high = req_float r "ci_high" in
  Ok { Mc.Stats.failures; trials; rate; stderr; ci_low; ci_high }

let cell_to_json c =
  Json.Obj
    [ ("name", String c.name); ("estimate", estimate_to_json c.estimate) ]

let cell_of_json j =
  let* r = reader_of_json j in
  let* name =
    match field r "name" with
    | Some (Json.String s) -> Ok s
    | _ -> Error "cell needs a string \"name\""
  in
  let* e =
    match field r "estimate" with
    | Some v -> estimate_of_json v
    | None -> Error "cell needs an \"estimate\""
  in
  Ok { name; estimate = e }

let cells_to_json cells = Json.List (List.map cell_to_json cells)

let cells_of_json = function
  | Json.List l ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: tl ->
        let* c = cell_of_json v in
        go (c :: acc) tl
    in
    go [] l
  | _ -> Error "cells must be a list"

let payload_to_json = function
  | Estimate c ->
    Json.Obj
      [ ("kind", String "estimate"); ("name", String c.name);
        ("estimate", estimate_to_json c.estimate) ]
  | Cells cells ->
    Json.Obj [ ("kind", String "cells"); ("cells", cells_to_json cells) ]
  | Fit { cells; a; threshold } ->
    Json.Obj
      [ ("kind", String "fit"); ("cells", cells_to_json cells);
        ("a", Float a); ("threshold", Float threshold) ]

(* NaN/inf encode as Null (JSON has no representation); a fit over
   degenerate points comes back as nan, matching the driver's
   behaviour of dropping non-finite analytic values *)
let float_or_nan = function
  | Some v -> ( match Json.to_float_opt v with Some f -> f | None -> nan)
  | None -> nan

let payload_of_json j =
  let* r = reader_of_json j in
  match field r "kind" with
  | Some (Json.String "estimate") ->
    let* c = cell_of_json (Json.Obj (List.remove_assoc "kind" r.fields)) in
    Ok (Estimate c)
  | Some (Json.String "cells") -> (
    match field r "cells" with
    | Some v ->
      let* cells = cells_of_json v in
      Ok (Cells cells)
    | None -> Error "missing \"cells\"")
  | Some (Json.String "fit") -> (
    match field r "cells" with
    | Some v ->
      let* cells = cells_of_json v in
      let a = float_or_nan (field r "a") in
      let threshold = float_or_nan (field r "threshold") in
      Ok (Fit { cells; a; threshold })
    | None -> Error "missing \"cells\"")
  | _ -> Error "unknown payload kind"

let manifest_result (c : cell) =
  {
    Obs.Manifest.name = c.name;
    failures = c.estimate.failures;
    trials_used = c.estimate.trials;
    rate = c.estimate.rate;
    ci_lo = c.estimate.ci_low;
    ci_hi = c.estimate.ci_high;
  }

let manifest_results = function
  | Estimate c -> [ manifest_result c ]
  | Cells cells -> List.map manifest_result cells
  | Fit { cells; a; threshold } ->
    List.map manifest_result cells
    @ (if Float.is_finite a then [ Obs.Manifest.value "fitted_A" a ] else [])
    @
    if Float.is_finite threshold then
      [ Obs.Manifest.value "pseudothreshold" threshold ]
    else []

(* ------------------------------------------------------- frames *)

let frame typ fields =
  Json.Obj
    (("proto", Json.String proto_version) :: ("type", Json.String typ)
   :: fields)

(* [tenant]/[priority] are frame-level QoS hints, deliberately outside
   [body]: the canonical request string — and with it the cache key and
   result-frame bytes — must not depend on who asked or how urgently. *)
let request_frame ?tenant ?priority r =
  frame "request"
    (("body", request_to_json r)
     :: (match tenant with
        | None -> []
        | Some t -> [ ("tenant", Json.String t) ])
    @ match priority with
      | None -> []
      | Some p -> [ ("priority", Json.String p) ])

let result_frame ~key payload =
  frame "result" [ ("key", String key); ("payload", payload_to_json payload) ]

let ack_frame ~key ~state =
  frame "ack" [ ("key", String key); ("state", String state) ]

(* Completion fields are optional and omitted when unknown: frame
   reading is name-based, so older clients skip them and the frame
   stays wire-compatible with pre-completion peers. *)
let progress_frame ?completed ?total ?phase ~key ~state ~elapsed_s () =
  let opt name conv = function
    | None -> []
    | Some v -> [ (name, conv v) ]
  in
  frame "progress"
    ([ ("key", Json.String key); ("state", Json.String state);
       ("elapsed_s", Json.Float elapsed_s) ]
    @ opt "completed" (fun i -> Json.Int i) completed
    @ opt "total" (fun i -> Json.Int i) total
    @ opt "phase" (fun s -> Json.String s) phase)

let meta_frame ~cached ~coalesced ~wall_s =
  frame "meta"
    [ ("cached", Bool cached); ("coalesced", Bool coalesced);
      ("wall_s", Float wall_s) ]

let error_frame ?retry_after_s ~code ~message () =
  frame "error"
    ([ ("code", Json.String code); ("message", Json.String message) ]
    @
    match retry_after_s with
    | None -> []
    | Some s -> [ ("retry_after_s", Json.Float s) ])

let pong_frame = frame "pong" []
let ok_frame = frame "ok" []

(* [workers]/[jobs] are new in the introspection extension and
   default to absent so existing callers (and tests pinning the old
   shape) keep working; name-based frame reading makes the addition
   wire-safe. *)
let status_frame ?workers ?busy ?jobs ?fleet ?tenants ~uptime_s ~queue_depth
    ~queue_capacity ~cache_length ~cache_capacity ~metrics () =
  frame "status"
    ([ ("uptime_s", Json.Float uptime_s);
       ( "queue",
         Json.Obj
           [ ("depth", Json.Int queue_depth);
             ("capacity", Json.Int queue_capacity) ] );
       ( "cache",
         Json.Obj
           [ ("length", Json.Int cache_length);
             ("capacity", Json.Int cache_capacity) ] ) ]
    @ (match (workers, busy) with
      | Some w, Some b ->
        [ ( "workers",
            Json.Obj [ ("count", Json.Int w); ("busy", Json.Int b) ] ) ]
      | _ -> [])
    @ (match jobs with None -> [] | Some l -> [ ("jobs", Json.List l) ])
    @ (match fleet with None -> [] | Some f -> [ ("fleet", f) ])
    @ (match tenants with None -> [] | Some l -> [ ("tenants", Json.List l) ])
    @ [ ("metrics", metrics) ])

let frame_field j k =
  match Json.member k j with Some Json.Null -> None | v -> v

let check_frame j =
  match Json.member "proto" j with
  | Some (Json.String p) when p = proto_version -> (
    match Json.member "type" j with
    | Some (Json.String t) -> Ok t
    | _ -> Error "frame has no \"type\"")
  | Some (Json.String p) ->
    Error (Printf.sprintf "protocol mismatch: peer speaks %S, we speak %S" p
             proto_version)
  | _ -> Error "frame has no \"proto\" tag"
