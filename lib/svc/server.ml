(* Threading model: connection handlers and workers are systhreads
   (they block on sockets and the job queue); the actual parallelism
   lives inside each job, where Mc.Runner fans trials out over OCaml 5
   domains (Domain.join releases the runtime lock, so other threads
   keep serving).  *)

type config = {
  socket : string;
  max_queue : int;
  workers : int;
  cache_capacity : int;
  domains : int option;
  progress_interval : float;
  fleet : Fleet.config option;
  limit : Qos.limit;
}

let config ?(max_queue = 32) ?(workers = 2) ?(cache_capacity = 128) ?domains
    ?(progress_interval = 1.0) ?fleet ?(limit = Qos.unlimited) ~socket () =
  if max_queue < 1 then invalid_arg "Server.config: max_queue must be >= 1";
  if workers < 1 then invalid_arg "Server.config: workers must be >= 1";
  { socket; max_queue; workers; cache_capacity; domains; progress_interval;
    fleet; limit }

(* ------------------------------------------------------- estimators *)

(* Single-process request execution lives in [Exec] (the fleet shares
   it for shard computation); re-exported here for compatibility. *)
let execute = Exec.execute

(* Admission cost of a request, for deficit-round-robin fairness:
   total trial volume across the request's cells. *)
let est_cost (est : Protocol.estimator) =
  match est with
  | Steane_memory { trials; _ }
  | Toric_memory { trials; _ }
  | Toric_noisy { trials; _ }
  | Toric_circuit { trials; _ }
  | Css_memory { trials; _ } -> trials
  | Toric_scan { ls; ps; trials; _ } ->
    trials * List.length ls * List.length ps
  | Pseudothreshold { eps_list; trials; _ } ->
    trials * List.length eps_list

(* ------------------------------------------------------------- jobs *)

type job_state =
  | Queued
  | Running
  | Finished of (Protocol.payload, string) result

type job = {
  key : string;  (* canonical request string: cache/coalescing key *)
  khash : string;  (* display/scope form of [key] *)
  est : Protocol.estimator;
  tenant : string;  (* admitting tenant (coalesced joiners may differ) *)
  started : float;  (* admission time *)
  jlock : Mutex.t;
  mutable state : job_state;
}

type t = {
  cfg : config;
  obs : Obs.t;
  cache : Protocol.payload Cache.t;
  queue : job Qos.t;  (* two-level DRR scheduler, not a plain FIFO *)
  limiter : Qos.limiter;
  fleet : Fleet.t option;
  inflight : (string, job) Hashtbl.t;  (* key -> job, under [ilock] *)
  ilock : Mutex.t;
  started_at : float;
  busy : int Atomic.t;  (* workers currently executing *)
  mutable conns : (Thread.t * Unix.file_descr) list;  (* under [clock] *)
  clock : Mutex.t;
}

(* ------------------------------------------------- request tracing *)

(* Every span of a request's lifecycle hangs off one deterministic
   root id derived from the canonical request bytes, so traces of the
   same request line up run to run.  Coalesced joiners repeat the
   request span id — legal in the trace schema (children are valid
   under any occurrence of their parent). *)
let req_span_id khash = Obs.Trace.span_id [ "svc"; "request"; khash ]

let short_hash khash =
  if String.length khash > 8 then String.sub khash 0 8 else khash

(* The progress view of a job: the most recently created live
   reporter scoped to this request (the innermost phase — e.g. the
   current cell of a scan). *)
let job_progress khash =
  List.fold_left
    (fun acc (v : Obs.Progress.view) ->
      if v.v_scope = khash then Some v else acc)
    None
    (Obs.Progress.snapshot ())

let job_state j =
  Mutex.lock j.jlock;
  let s = j.state in
  Mutex.unlock j.jlock;
  s

let set_job_state j s =
  Mutex.lock j.jlock;
  j.state <- s;
  Mutex.unlock j.jlock

(* ---------------------------------------------------------- workers *)

let worker t =
  let rec loop () =
    match Qos.pop t.queue with
    | None -> ()
    | Some job ->
      Obs.set_gauge t.obs "svc.queue_depth" (float_of_int (Qos.depth t.queue));
      let rid = req_span_id job.khash in
      if Obs.Trace.enabled () then
        (* the queue-wait interval is only known once the pop happens,
           so it is emitted retroactively from the admission time *)
        Obs.Trace.emit
          { Obs.Trace.id = Obs.Trace.span_id [ rid; "queue" ];
            parent = rid;
            name = "queue wait";
            cat = "svc";
            start_s = job.started;
            dur_s = Obs.now () -. job.started;
            args = [ ("key", Obs.Json.String job.khash) ] };
      set_job_state job Running;
      Atomic.incr t.busy;
      let result =
        (* scope: reporters created while executing are tagged with
           the request hash, so [await_job] and [handle_status] can
           attribute runner completion to this job.  The ambient trace
           parent re-roots the runner's spans under this request. *)
        try
          Ok
            (Obs.Progress.with_scope job.khash (fun () ->
                 Obs.Trace.with_parent rid (fun () ->
                     Obs.Trace.timed ~cat:"svc" ~name:"execute"
                       ~id:(Obs.Trace.span_id [ rid; "exec" ])
                       ~args:
                         [ ( "estimator",
                             Obs.Json.String (Protocol.estimator_name job.est)
                           ) ]
                       (fun () ->
                         match t.fleet with
                         | Some fleet -> Fleet.execute fleet job.est
                         | None ->
                           execute ?domains:t.cfg.domains ~obs:t.obs job.est))))
        with exn -> Error (Printexc.to_string exn)
      in
      Atomic.decr t.busy;
      (match result with
      | Ok payload -> Cache.add t.cache job.key payload
      | Error _ -> ());
      (* drop from the coalescing table before publishing the state,
         so late arrivals go to the cache, not to a finished job *)
      Mutex.lock t.ilock;
      Hashtbl.remove t.inflight job.key;
      Mutex.unlock t.ilock;
      set_job_state job (Finished result);
      Obs.incr t.obs "svc.jobs_done";
      loop ()
  in
  loop ()

(* ------------------------------------------------------ connections *)

let send fd j = Codec.write fd j

let finish_request t fd ~key ~khash ~est_name ~t0 ~cached ~coalesced payload =
  let wall = Obs.now () -. t0 in
  (* record latency before the reply goes out: once the client has the
     result frame, a status request must already see these series *)
  Obs.observe_histogram t.obs "svc.request_latency_s" wall;
  (* per-estimator latency, for `ftqc_client top` and status *)
  Obs.observe_histogram t.obs
    (Printf.sprintf "svc.request_latency_s.%s" est_name)
    wall;
  Obs.Trace.timed ~cat:"svc" ~name:"encode result"
    ~id:(Obs.Trace.span_id [ req_span_id khash; "encode" ])
    (fun () ->
      send fd (Protocol.meta_frame ~cached ~coalesced ~wall_s:wall);
      send fd (Protocol.result_frame ~key payload))

(* Wait for [job] to finish, streaming progress frames.  Polling (with
   a short sleep) instead of a condition: OCaml's Condition.wait has
   no timeout, and we need to wake up for the progress cadence and for
   daemon shutdown anyway. *)
let await_job t fd ~coalesced ~t0 job =
  let last_progress = ref (Obs.now ()) in
  let rec loop () =
    match job_state job with
    | Finished (Ok payload) ->
      finish_request t fd ~key:job.key ~khash:job.khash
        ~est_name:(Protocol.estimator_name job.est) ~t0 ~cached:false
        ~coalesced payload
    | Finished (Error msg) ->
      send fd (Protocol.error_frame ~code:"failed" ~message:msg ())
    | Queued | Running ->
      let now = Obs.now () in
      if now -. !last_progress >= t.cfg.progress_interval then begin
        last_progress := now;
        let state =
          match job_state job with Running -> "running" | _ -> "queued"
        in
        (* sample the runner's own completion for this job (reporters
           are scoped by request hash); every waiter — primary and
           coalesced joiners alike — gets the enriched frame *)
        let completed, total, phase =
          match job_progress job.khash with
          | Some v -> (Some v.v_done, Some v.v_total, Some v.v_label)
          | None -> (None, None, None)
        in
        send fd
          (Protocol.progress_frame ?completed ?total ?phase ~key:job.key
             ~state
             ~elapsed_s:(now -. job.started)
             ())
      end;
      Thread.delay 0.02;
      loop ()
  in
  loop ()

let handle_run t fd ~tenant ~high est =
  let req = Protocol.Run est in
  let key = Protocol.to_canonical req in
  let khash = Protocol.hash req in
  let est_name = Protocol.estimator_name est in
  let rid = req_span_id khash in
  Obs.Trace.timed ~cat:"svc"
    ~name:(Printf.sprintf "request %s %s" est_name (short_hash khash))
    ~id:rid
    ~args:
      [ ("estimator", Obs.Json.String est_name);
        ("key", Obs.Json.String khash) ]
  @@ fun () ->
  let t0 = Obs.now () in
  Obs.incr t.obs "svc.requests";
  Obs.incr t.obs (Printf.sprintf "svc.requests.%s" est_name);
  Obs.incr t.obs (Printf.sprintf "svc.tenant.%s.requests" tenant);
  (* front-door rate limit: spend one token per run request before any
     work happens; an empty bucket sheds load with the exact refill
     time as the retry-after hint *)
  match Qos.admit t.limiter ~tenant ~now:(Obs.now ()) with
  | `Retry_after s ->
    Obs.incr t.obs "svc.rate_limited";
    Obs.incr t.obs (Printf.sprintf "svc.tenant.%s.rate_limited" tenant);
    send fd
      (Protocol.error_frame ~retry_after_s:s ~code:"overloaded"
         ~message:
           (Printf.sprintf "tenant %S over rate limit, retry in %.3fs" tenant
              s)
         ())
  | `Ok -> (
  let cached =
    Obs.Trace.timed ~cat:"svc" ~name:"cache lookup"
      ~id:(Obs.Trace.span_id [ rid; "cache" ])
      (fun () -> Cache.find t.cache key)
  in
  match cached with
  | Some payload ->
    Obs.incr t.obs "svc.cache_hits";
    send fd (Protocol.ack_frame ~key:khash ~state:"cached");
    finish_request t fd ~key ~khash ~est_name ~t0 ~cached:true
      ~coalesced:false payload
  | None -> (
    Obs.incr t.obs "svc.cache_misses";
    (* Coalesce onto an in-flight job for the same canonical request,
       or admit a new one (bounded; reject, never hang). *)
    let verdict =
      Obs.Trace.timed ~cat:"svc" ~name:"admission"
        ~id:(Obs.Trace.span_id [ rid; "admit" ])
      @@ fun () ->
      Mutex.lock t.ilock;
      let verdict =
        match Hashtbl.find_opt t.inflight key with
        | Some job -> `Join job
        | None -> (
          let job =
            {
              key;
              khash;
              est;
              tenant;
              started = t0;
              jlock = Mutex.create ();
              state = Queued;
            }
          in
          match Qos.push t.queue ~tenant ~high ~cost:(est_cost est) job with
          | Ok () ->
            Hashtbl.replace t.inflight key job;
            `Fresh job
          | Error `Overloaded -> `Overloaded
          | Error `Closed -> `Closed)
      in
      Mutex.unlock t.ilock;
      verdict
    in
    match verdict with
    | `Join job ->
      Obs.incr t.obs "svc.coalesced";
      send fd (Protocol.ack_frame ~key:khash ~state:"coalesced");
      await_job t fd ~coalesced:true ~t0 job
    | `Fresh job ->
      Obs.set_gauge t.obs "svc.queue_depth" (float_of_int (Qos.depth t.queue));
      send fd (Protocol.ack_frame ~key:khash ~state:"queued");
      await_job t fd ~coalesced:false ~t0 job
    | `Overloaded ->
      Obs.incr t.obs "svc.overloaded";
      Obs.incr t.obs (Printf.sprintf "svc.tenant.%s.overloaded" tenant);
      (* saturated: shed load with a hint scaled to the backlog — one
         progress interval per queued job is a deliberately rough but
         monotone proxy for drain time *)
      let hint =
        Float.max 0.1
          (t.cfg.progress_interval *. float_of_int (Qos.depth t.queue))
      in
      send fd
        (Protocol.error_frame ~retry_after_s:hint ~code:"overloaded"
           ~message:
             (Printf.sprintf "queue full (%d queued, capacity %d)"
                (Qos.depth t.queue) (Qos.capacity t.queue))
           ())
    | `Closed ->
      send fd
        (Protocol.error_frame ~code:"shutting_down"
           ~message:"daemon is shutting down" ())))

let handle_status t fd =
  Obs.incr t.obs "svc.requests";
  let now = Obs.now () in
  (* one row per in-flight request, with live runner completion *)
  let jobs =
    Mutex.lock t.ilock;
    let js = Hashtbl.fold (fun _ j acc -> j :: acc) t.inflight [] in
    Mutex.unlock t.ilock;
    List.sort (fun a b -> compare a.started b.started) js
    |> List.map (fun j ->
           let state =
             match job_state j with
             | Running -> "running"
             | Queued -> "queued"
             | Finished _ -> "finishing"
           in
           let progress =
             match job_progress j.khash with
             | None -> []
             | Some v ->
               [ ("completed", Obs.Json.Int v.v_done);
                 ("total", Obs.Json.Int v.v_total);
                 ("phase", Obs.Json.String v.v_label) ]
           in
           Obs.Json.Obj
             ([ ("key", Obs.Json.String j.khash);
                ( "estimator",
                  Obs.Json.String (Protocol.estimator_name j.est) );
                ("state", Obs.Json.String state);
                ("elapsed_s", Obs.Json.Float (now -. j.started)) ]
             @ progress))
  in
  (* fleet section: worker-process registry + lifecycle counters *)
  let fleet =
    match t.fleet with
    | None -> None
    | Some f ->
      let s = Fleet.stats f in
      Some
        (Obs.Json.Obj
           [ ("size", Obs.Json.Int s.s_size);
             ("alive", Obs.Json.Int s.s_alive);
             ("spawned", Obs.Json.Int s.s_spawned);
             ("restarts", Obs.Json.Int s.s_restarts);
             ("redispatched", Obs.Json.Int s.s_redispatched);
             ("hangs", Obs.Json.Int s.s_hangs);
             ( "workers",
               Obs.Json.List
                 (List.map
                    (fun (slot, gen, pid) ->
                      Obs.Json.Obj
                        [ ("slot", Obs.Json.Int slot);
                          ("gen", Obs.Json.Int gen);
                          ("pid", Obs.Json.Int pid) ])
                    s.s_workers) ) ])
  in
  (* tenants section: queued work per tenant (QoS scheduler rows) *)
  let tenants =
    match Qos.tenants t.queue with
    | [] -> None
    | rows ->
      Some
        (List.map
           (fun (name, qh, qn) ->
             Obs.Json.Obj
               [ ("tenant", Obs.Json.String name);
                 ("queued_high", Obs.Json.Int qh);
                 ("queued_normal", Obs.Json.Int qn) ])
           rows)
  in
  send fd
    (Protocol.status_frame ~workers:t.cfg.workers ~busy:(Atomic.get t.busy)
       ~jobs ?fleet ?tenants
       ~uptime_s:(now -. t.started_at)
       ~queue_depth:(Qos.depth t.queue) ~queue_capacity:(Qos.capacity t.queue)
       ~cache_length:(Cache.length t.cache)
       ~cache_capacity:(Cache.capacity t.cache) ~metrics:(Obs.metrics_json t.obs)
       ())

let handle_frame t fd j =
  let req =
    match Protocol.check_frame j with
    | Error msg -> Error msg
    | Ok "request" -> (
      match Protocol.frame_field j "body" with
      | None -> Error "request frame: missing body"
      | Some body -> Protocol.request_of_json body)
    | Ok other -> Error (Printf.sprintf "unexpected %s frame" other)
  in
  (* QoS hints ride at frame level, outside the canonical body *)
  let tenant =
    match Protocol.frame_field j "tenant" with
    | Some (Obs.Json.String s) when s <> "" -> s
    | _ -> "anon"
  in
  let high =
    match Protocol.frame_field j "priority" with
    | Some (Obs.Json.String "high") -> true
    | _ -> false
  in
  match req with
  | Error msg ->
    send fd (Protocol.error_frame ~code:"bad_request" ~message:msg ())
  | Ok (Run est) -> handle_run t fd ~tenant ~high est
  | Ok Status -> handle_status t fd
  | Ok Ping ->
    Obs.incr t.obs "svc.requests";
    send fd Protocol.pong_frame
  | Ok Shutdown ->
    Obs.incr t.obs "svc.requests";
    send fd Protocol.ok_frame;
    Mc.Campaign.request_stop ()

let handle_conn t fd =
  let rec loop () =
    match Codec.read fd with
    | Error `Closed -> ()
    | Error (`Bad msg) ->
      (try send fd (Protocol.error_frame ~code:"bad_frame" ~message:msg ())
       with _ -> ())
    | Ok (j, _) ->
      (match (try Ok (handle_frame t fd j) with exn -> Error exn) with
      | Ok () -> loop ()
      | Error _ -> ())
  in
  (try loop () with _ -> ());
  (* deregister before closing so the shutdown sweep never touches a
     closed (possibly reused) descriptor *)
  Mutex.lock t.clock;
  t.conns <- List.filter (fun (_, fd') -> fd' != fd) t.conns;
  Mutex.unlock t.clock;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------ setup *)

(* A socket file can be left behind by a crashed daemon.  Probe it:
   a live listener answers the connect; a stale file refuses, and is
   safe to replace. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "Svc.Server: %s: daemon already running" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let run ?(obs = Obs.create ()) cfg =
  claim_socket cfg.socket;
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (* fleet first: worker processes must exist before jobs can pop *)
  let fleet = Option.map (Fleet.create ~obs) cfg.fleet in
  let t =
    {
      cfg;
      obs;
      cache = Cache.create ~capacity:cfg.cache_capacity;
      queue = Qos.create ~capacity:cfg.max_queue ();
      limiter = Qos.limiter cfg.limit;
      fleet;
      inflight = Hashtbl.create 16;
      ilock = Mutex.create ();
      started_at = Obs.now ();
      busy = Atomic.make 0;
      conns = [];
      clock = Mutex.create ();
    }
  in
  (* Publish mode: runner progress reporters register (silently) so
     await_job/handle_status can sample in-flight completion.  The
     previous value is restored on exit — the daemon may be embedded
     in a test binary that runs other suites after it. *)
  let prev_publish = Obs.Progress.publishing () in
  Obs.Progress.set_publish true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Progress.set_publish prev_publish;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listen_fd (ADDR_UNIX cfg.socket);
      Unix.listen listen_fd 64;
      let workers = List.init cfg.workers (fun _ -> Thread.create worker t) in
      (* accept loop: select with a timeout so the campaign stop flag
         (signal handler or shutdown request) is noticed promptly *)
      while not (Mc.Campaign.stop_requested ()) do
        match Unix.select [ listen_fd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ :: _, _, _ ->
          (* cloexec: restarted fleet workers must not inherit client
             connections (an inherited fd would defeat EOF detection) *)
          let fd, _ = Unix.accept ~cloexec:true listen_fd in
          (* register under the lock so the handler can't deregister
             before its entry exists *)
          Mutex.lock t.clock;
          let th = Thread.create (fun () -> handle_conn t fd) () in
          t.conns <- (th, fd) :: t.conns;
          Mutex.unlock t.clock
        | exception Unix.Unix_error (EINTR, _, _) -> ()
      done;
      (* drain: workers finish queued jobs (pop empties the queue
         before yielding None), waiters then see Finished and reply *)
      Qos.close t.queue;
      List.iter Thread.join workers;
      Option.iter Fleet.shutdown t.fleet;
      Mutex.lock t.clock;
      let conns = t.conns in
      t.conns <- [];
      Mutex.unlock t.clock;
      (* nudge any connection still blocked in read, then collect *)
      List.iter
        (fun (_, fd) ->
          try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun (th, _) -> Thread.join th) conns)
