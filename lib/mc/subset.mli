(** Weight-class subset sampling over an IID fault model.

    A fault model has [locations] independent fault sites; each fires
    with probability [p], and a firing site takes one of [kinds]
    equiprobable fault kinds.  Conditioned on the {e weight} w (the
    number of firing sites), every configuration — a w-subset of
    sites with a kind per site — is equally likely, and the weight
    itself is binomial:

      P(w) = C(N, w) · p^w · (1−p)^(N−w).

    The rare-event engine ({!Runner} with [`Rare]) evaluates the
    failure fraction f_w of each class up to a truncation order W —
    exactly, when the class is small enough to enumerate, or by
    uniform stratified sampling — and reports

      p_L = Σ_(w≤W) P(w)·f_w  with tail bound Σ_(w>W) P(w) ≥ the
      contribution of the unevaluated classes (since f_w ≤ 1).

    Deep below threshold p·N ≪ 1, the mass collapses onto the first
    few weights, so a handful of exactly-enumerated classes pins the
    failure rate to relative precision no shot-count of plain Monte
    Carlo can reach.  (Van Rynbach et al., "A Quantum Performance
    Simulator based on fidelity and fault-path counting".)

    Everything here is pure combinatorics and planning; the parallel
    execution, checkpointing and supervision live in {!Runner}. *)

type model = {
  locations : int;  (** N: independent fault sites *)
  kinds : int;  (** equiprobable fault kinds per firing site (≥ 1) *)
  p : float;  (** per-site firing probability *)
}

(** One elementary fault of a configuration. *)
type fault = { loc : int; kind : int }

(** [validate m] — raises [Invalid_argument] unless
    [locations ≥ 0], [kinds ≥ 1] and [p ∈ \[0,1\]]. *)
val validate : model -> unit

(** [class_prob m ~weight] — P(w), computed in log space (stable for
    thousands of locations). *)
val class_prob : model -> weight:int -> float

(** [tail_mass m ~max_weight] — Σ_(w>W) P(w), the truncation bound.
    Computed as 1 − cumulative Σ_(w≤W) P(w) with a monotone running
    sum, so it is nonincreasing in [max_weight] (exactly, in floating
    point) and clamped to ≥ 0. *)
val tail_mass : model -> max_weight:int -> float

(** [class_size_capped m ~weight ~cap] — min(C(N,w)·kinds^w, cap+1):
    the class size, saturating just above [cap] so enumerability
    tests never overflow. *)
val class_size_capped : model -> weight:int -> cap:int -> int

(** [unrank m ~weight ~index] — the [index]-th (0-based) weight-w
    configuration, in lexicographic order of (site subset, kinds):
    loc-sorted, deterministic, total.  Only valid when the class was
    sized within an enumerable cap; [index] must be < the class
    size. *)
val unrank : model -> weight:int -> index:int -> fault array

(** [sample m ~weight rng] — a uniform random weight-w configuration
    (uniform w-subset of sites via Floyd's algorithm, then uniform
    kinds in loc order); loc-sorted. *)
val sample : model -> weight:int -> Random.State.t -> fault array

(** One planned weight class. *)
type cls = {
  weight : int;
  prob : float;  (** P(w) *)
  evals : int;  (** evaluations to run: class size or samples_per_class *)
  exhaustive : bool;  (** enumerate (exact f_w) vs sample *)
}

(** [plan m ~max_weight ~samples_per_class ~enum_cutoff] — one {!cls}
    per weight 0..min(max_weight, N), ascending.  A class is
    enumerated when its size is at most [max enum_cutoff
    samples_per_class] (enumerating is never more work than sampling
    and is exact); larger classes get [samples_per_class] uniform
    samples.  Zero-probability classes (p = 0 with w > 0, or p = 1
    with w < N) still appear with [prob = 0] so the ledger shape
    depends only on the plan inputs. *)
val plan :
  model -> max_weight:int -> samples_per_class:int -> enum_cutoff:int ->
  cls list

(** [weighted ?z ~model ~max_weight classes] — assemble the
    {!Stats.weighted} estimate from per-class counts, folding in
    {!tail_mass} as the truncation term. *)
val weighted :
  ?z:float -> model:model -> max_weight:int -> Stats.class_sum list ->
  Stats.weighted
