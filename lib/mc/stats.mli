(** Binomial estimators for Monte-Carlo failure rates. *)

type estimate = {
  failures : int;
  trials : int;
  rate : float;  (** failures / trials *)
  stderr : float;  (** binomial standard error √(p(1−p)/n) *)
  ci_low : float;  (** Wilson score lower bound *)
  ci_high : float;  (** Wilson score upper bound *)
}

(** The default confidence multiplier (1.96, a 95% interval). *)
val default_z : float

(** [wilson ?z ~failures ~trials] — the Wilson score interval, which
    (unlike the normal approximation) stays inside [0,1] and behaves
    at 0 or [trials] failures.  [trials = 0] returns (0, 1). *)
val wilson : ?z:float -> failures:int -> trials:int -> unit -> float * float

(** [estimate ?z ~failures ~trials ()] — the full record. *)
val estimate : ?z:float -> failures:int -> trials:int -> unit -> estimate

(** [half_width e] — half the Wilson interval width, the early-stop
    criterion of {!Runner.estimate}. *)
val half_width : estimate -> float

val pp : Format.formatter -> estimate -> unit
