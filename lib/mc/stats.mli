(** Binomial estimators for Monte-Carlo failure rates. *)

type estimate = {
  failures : int;
  trials : int;
  rate : float;  (** failures / trials *)
  stderr : float;  (** binomial standard error √(p(1−p)/n) *)
  ci_low : float;  (** Wilson score lower bound *)
  ci_high : float;  (** Wilson score upper bound *)
}

(** The default confidence multiplier (1.96, a 95% interval). *)
val default_z : float

(** [wilson ?z ~failures ~trials] — the Wilson score interval, which
    (unlike the normal approximation) stays inside [0,1] and behaves
    at 0 or [trials] failures.  [trials = 0] returns (0, 1). *)
val wilson : ?z:float -> failures:int -> trials:int -> unit -> float * float

(** [estimate ?z ~failures ~trials ()] — the full record. *)
val estimate : ?z:float -> failures:int -> trials:int -> unit -> estimate

(** [half_width e] — half the Wilson interval width, the early-stop
    criterion of {!Runner.estimate}. *)
val half_width : estimate -> float

val pp : Format.formatter -> estimate -> unit

(** {1 Weighted (stratified) estimates}

    The rare-event engine estimates p_L = Σ_w P(w)·f_w, where P(w) is
    the analytic probability that exactly w fault locations fire (the
    binomial prefactor) and f_w is the failure fraction over weight-w
    configurations — measured exactly (full enumeration) or by
    stratified sampling.  One {!class_sum} carries a weight class's
    running counts; {!weighted} folds a list of them plus the
    truncation bound (the probability mass of unevaluated weights,
    ≥ the mass they could contribute since f_w ≤ 1) into an interval. *)

(** Per-class running sums.  Counts merge by addition ({!merge_class}),
    so partial results combine associatively in any grouping. *)
type class_sum = {
  weight : int;
  prob : float;  (** P(w): probability that exactly [weight] locations fire *)
  evals : int;  (** configurations evaluated *)
  failures : int;
  exhaustive : bool;  (** full enumeration: zero sampling variance *)
}

(** [merge_class a b] — add the counts of two partial sums of the
    {e same} class (equal [weight]/[prob]/[exhaustive]; checked).
    Associative and commutative, with the zero-count sum as
    identity. *)
val merge_class : class_sum -> class_sum -> class_sum

type weighted = {
  classes : class_sum list;  (** ascending weight *)
  rate : float;  (** Σ_w P(w)·f̂_w *)
  stderr : float;  (** √(Σ_w P(w)²·var f̂_w), sampled classes only *)
  truncation : float;  (** Σ_(w>W) P(w), an upper bound on the unseen mass *)
  ci_low : float;  (** max(0, rate − z·stderr) *)
  ci_high : float;  (** min(1, rate + z·stderr + truncation) *)
  evals : int;  (** total configurations evaluated *)
  raw_failures : int;  (** total failing configurations (unweighted) *)
}

(** [weighted ?z ~truncation classes] — assemble the weighted
    estimate.  Sampled (non-exhaustive) classes with f̂ of 0 or 1
    still contribute variance (f̂ is clamped to [1/2n, 1−1/2n] for
    the variance term only), so an all-clean sampled class cannot
    collapse the interval.  The truncation bound is added to the
    upper edge only: it is a one-sided worst case (f_w ≤ 1). *)
val weighted : ?z:float -> truncation:float -> class_sum list -> weighted

(** [weighted_to_estimate w] — the flat record: [rate]/[stderr]/CI
    from the weighted computation, [failures]/[trials] the raw
    evaluation totals (so [rate] ≠ [failures]/[trials] in general —
    the whole point of importance weighting). *)
val weighted_to_estimate : weighted -> estimate

val pp_weighted : Format.formatter -> weighted -> unit
