(* Crash-safe checkpointing for Monte-Carlo campaigns.

   A campaign store maps a job key — (label, engine, seed, trials,
   chunk), i.e. everything that determines the deterministic chunk
   ledger — to the set of completed chunks and their failure counts.
   The runner consults the store before executing a chunk and records
   each freshly computed chunk; because chunk [c] always runs on
   [Rng.split root c] and results merge in chunk order, replaying
   cached counts is bit-identical to recomputing them, at any domain
   count.

   The on-disk format is one versioned JSON document written with
   [Json.write_atomic] (temp file + rename), so the file on disk is a
   complete, parseable checkpoint at every instant — a kill at an
   arbitrary point loses at most the chunks recorded since the last
   flush, never the file's integrity.  Serialization sorts jobs and
   chunks, so equal stores produce byte-identical files. *)

module Json = Obs.Json

let schema_version = "ftqc-checkpoint/1"

type job = {
  label : string;
  engine : string;
  seed : int;
  trials : int;
  chunk : int;
}

type t = {
  file : string;
  flush_every : int;
  fsync : bool;
  jobs : (job, (int, int) Hashtbl.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable dirty : int; (* records since the last flush *)
  mutable flushes : int; (* completed flushes, for trace span identity *)
}

let file t = t.file

(* ------------------------------------------------------- (de)serialize *)

let nchunks_of j = (j.trials + j.chunk - 1) / j.chunk
let chunk_trials j idx = min j.chunk (j.trials - (idx * j.chunk))

let job_to_json (j, chunks) =
  Json.Obj
    [ ("label", Json.String j.label);
      ("engine", Json.String j.engine);
      ("seed", Json.Int j.seed);
      ("trials", Json.Int j.trials);
      ("chunk", Json.Int j.chunk);
      ( "chunks",
        Json.List
          (List.map (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ]) chunks)
      ) ]

(* Stable rendering: jobs sorted by key, chunks by index.  Call with
   [t.mutex] held. *)
let to_json_locked t =
  let jobs =
    Hashtbl.fold
      (fun j tbl acc ->
        let chunks =
          Hashtbl.fold (fun i c l -> (i, c) :: l) tbl [] |> List.sort compare
        in
        (j, chunks) :: acc)
      t.jobs []
    |> List.sort compare
  in
  Json.Obj
    [ ("schema", Json.String schema_version);
      ("jobs", Json.List (List.map job_to_json jobs)) ]

let to_json t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> to_json_locked t)

(* Parse + validate one checkpoint document.  Every structural or
   range violation is a hard [Error] with a location: a truncated or
   hand-edited checkpoint must be rejected, never quietly repaired
   into a wrong resume. *)
let parse json =
  let ( let* ) = Result.bind in
  let field obj name conv what =
    match Json.member name obj with
    | None -> Error (Printf.sprintf "missing %S field" name)
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "%S field is not %s" name what))
  in
  let* schema = field json "schema" Json.to_string_opt "a string" in
  let* () =
    if schema = schema_version then Ok ()
    else if
      String.length schema >= 16 && String.sub schema 0 16 = "ftqc-checkpoint/"
    then Error (Printf.sprintf "unsupported checkpoint schema %S (want %S)" schema schema_version)
    else Error (Printf.sprintf "not a checkpoint file (schema %S)" schema)
  in
  let* jobs = field json "jobs" Json.to_list_opt "a list" in
  let parse_chunk_pair j seen pair =
    match Json.to_list_opt pair with
    | Some [ i; c ] -> (
      match (Json.to_int_opt i, Json.to_int_opt c) with
      | Some idx, Some count ->
        if idx < 0 || idx >= nchunks_of j then
          Error (Printf.sprintf "chunk index %d out of range [0, %d)" idx (nchunks_of j))
        else if Hashtbl.mem seen idx then
          Error (Printf.sprintf "duplicate chunk index %d" idx)
        else if count < 0 || count > chunk_trials j idx then
          Error
            (Printf.sprintf "chunk %d count %d out of range [0, %d]" idx count
               (chunk_trials j idx))
        else begin
          Hashtbl.replace seen idx count;
          Ok ()
        end
      | _ -> Error "chunk entry elements are not ints")
    | _ -> Error "chunk entry is not an [index, count] pair"
  in
  let parse_job n jv =
    let ctx msg = Printf.sprintf "job %d: %s" n msg in
    let* label =
      match Json.member "label" jv with
      | None -> Ok "" (* label is optional *)
      | Some v -> (
        match Json.to_string_opt v with
        | Some s -> Ok s
        | None -> Error (ctx "\"label\" field is not a string"))
    in
    let* engine = Result.map_error ctx (field jv "engine" Json.to_string_opt "a string") in
    let* seed = Result.map_error ctx (field jv "seed" Json.to_int_opt "an int") in
    let* trials = Result.map_error ctx (field jv "trials" Json.to_int_opt "an int") in
    let* chunk = Result.map_error ctx (field jv "chunk" Json.to_int_opt "an int") in
    let* () = if engine = "" then Error (ctx "empty engine") else Ok () in
    let* () = if trials < 0 then Error (ctx "negative trials") else Ok () in
    let* () = if chunk < 1 then Error (ctx "chunk must be >= 1") else Ok () in
    let j = { label; engine; seed; trials; chunk } in
    let* pairs = Result.map_error ctx (field jv "chunks" Json.to_list_opt "a list") in
    let seen = Hashtbl.create (List.length pairs) in
    let* () =
      List.fold_left
        (fun acc pair ->
          let* () = acc in
          Result.map_error ctx (parse_chunk_pair j seen pair))
        (Ok ()) pairs
    in
    Ok (j, seen)
  in
  let* parsed =
    List.fold_left
      (fun acc (n, jv) ->
        let* l = acc in
        let* j = parse_job n jv in
        Ok (j :: l))
      (Ok [])
      (List.mapi (fun n jv -> (n, jv)) jobs)
    |> Result.map List.rev
  in
  let tbl = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc (j, seen) ->
        let* () = acc in
        if Hashtbl.mem tbl j then Error "duplicate job key"
        else begin
          Hashtbl.replace tbl j seen;
          Ok ()
        end)
      (Ok ()) parsed
  in
  Ok tbl

let validate json =
  Result.map (fun tbl -> Hashtbl.length tbl) (parse json)

(* ------------------------------------------------------------ lifecycle *)

let default_flush_every = 8

let flush_locked t =
  (* The flush sequence number is deterministic (one flush per
     [flush_every] records plus the explicit ones), so the span id is
     stable even though which thread performs the flush is not.  The
     span is emitted with an explicit root parent: flushes fire from
     whichever worker crossed the threshold, where no ambient request
     context applies. *)
  if t.file = "" then t.dirty <- 0
  else if not (Obs.Trace.enabled ()) then begin
    Json.write_atomic ~fsync:t.fsync ~file:t.file (to_json_locked t);
    t.dirty <- 0
  end
  else begin
    let seq = t.flushes in
    let t0 = Obs.now () in
    Json.write_atomic ~fsync:t.fsync ~file:t.file (to_json_locked t);
    Obs.Trace.emit
      { Obs.Trace.id = Obs.Trace.span_id [ t.file; "flush"; string_of_int seq ];
        parent = "";
        name = Printf.sprintf "checkpoint flush #%d" seq;
        cat = "campaign";
        start_s = t0;
        dur_s = Obs.now () -. t0;
        args =
          [ ("file", Json.String t.file);
            ("seq", Json.Int seq);
            ("records", Json.Int t.dirty) ] };
    t.dirty <- 0;
    t.flushes <- seq + 1
  end

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create ?(flush_every = default_flush_every) ?(fsync = false) file =
  if flush_every < 1 then invalid_arg "Mc.Campaign.create: flush_every must be >= 1";
  if Sys.file_exists file then
    Error
      (Printf.sprintf
         "%s: checkpoint already exists (resume it with --resume, or remove it \
          to start fresh)"
         file)
  else begin
    let t =
      { file; flush_every; fsync; jobs = Hashtbl.create 8;
        mutex = Mutex.create (); dirty = 0; flushes = 0 }
    in
    (* Write the empty document up front: from the first instant of
       the campaign there is a valid resume token on disk. *)
    match flush_locked t with
    | () -> Ok t
    | exception Sys_error msg -> Error (Printf.sprintf "%s: %s" file msg)
  end

let in_memory () =
  (* The "" file sentinel never reaches the filesystem: [flush_locked]
     short-circuits on it, so an in-memory store is a plain chunk
     ledger with the same find/record/completed surface.  Used by the
     fleet coordinator (per-request re-dispatch ledger) and by workers
     (range-restricted prefill ledger), where durability is owned by
     the coordinator's own store, not this one. *)
  { file = ""; flush_every = max_int; fsync = false; jobs = Hashtbl.create 8;
    mutex = Mutex.create (); dirty = 0; flushes = 0 }

let load ?(flush_every = default_flush_every) ?(fsync = false) file =
  if flush_every < 1 then invalid_arg "Mc.Campaign.load: flush_every must be >= 1";
  let ( let* ) = Result.bind in
  let* json = Json.read_file file in
  let* jobs = Result.map_error (fun m -> Printf.sprintf "%s: %s" file m) (parse json) in
  Ok { file; flush_every; fsync; jobs; mutex = Mutex.create (); dirty = 0; flushes = 0 }

let flush t = locked t (fun () -> flush_locked t)

(* --------------------------------------------------------------- access *)

let find t ~job ~chunk =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs job with
      | None -> None
      | Some tbl -> Hashtbl.find_opt tbl chunk)

let record t ~job ~chunk ~failures =
  locked t (fun () ->
      let tbl =
        match Hashtbl.find_opt t.jobs job with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 64 in
          Hashtbl.replace t.jobs job tbl;
          tbl
      in
      Hashtbl.replace tbl chunk failures;
      t.dirty <- t.dirty + 1;
      if t.dirty >= t.flush_every then flush_locked t)

let completed t ~job =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs job with
      | None -> 0
      | Some tbl -> Hashtbl.length tbl)

let jobs t =
  locked t (fun () -> Hashtbl.fold (fun j _ acc -> j :: acc) t.jobs [] |> List.sort compare)

(* ------------------------------------------- ambient store & stop flag *)

(* The ambient store lets the experiments CLI turn checkpointing on
   for every `_mc` driver in the tree without widening any driver
   signature (precedent: the FTQC_DOMAINS env override).  Set from
   the main domain only; the runner snapshots it at entry-point time,
   never from inside a worker. *)

let current_store : t option ref = ref None
let set_current c = current_store := c
let current () = !current_store

let current_label = ref ""

let with_label label f =
  let old = !current_label in
  current_label := label;
  Fun.protect ~finally:(fun () -> current_label := old) f

let label () = !current_label

(* Graceful degradation: signal handlers only set this flag; workers
   poll it between chunks and the runner raises [Interrupted] after
   flushing, so the caller can write a partial manifest with a resume
   token instead of dying mid-write. *)

let stop_flag = Atomic.make false
let request_stop () = Atomic.set stop_flag true
let stop_requested () = Atomic.get stop_flag
let reset_stop () = Atomic.set stop_flag false

exception
  Interrupted of { completed : int; total : int; checkpoint : string option }

let () =
  Printexc.register_printer (function
    | Interrupted { completed; total; checkpoint } ->
      Some
        (Printf.sprintf "Mc.Campaign.Interrupted (%d/%d chunks done%s)"
           completed total
           (match checkpoint with
           | Some f -> Printf.sprintf ", resume from %s" f
           | None -> ", no checkpoint"))
    | _ -> None)

let install_signal_handlers () =
  let handle _ = request_stop () in
  List.iter
    (fun s ->
      try ignore (Sys.signal s (Sys.Signal_handle handle))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]
