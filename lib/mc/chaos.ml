(* Chaos-injection hooks for the Monte-Carlo supervision layer.

   A [t] is a bundle of callbacks the runner invokes at chunk and
   trial boundaries.  Production code always passes [none] (every
   callback a no-op, recognized physically so the hot path never pays
   a closure call per trial); tests thread custom hooks through the
   [?chaos] argument of [Mc.Runner] entry points to simulate worker
   death, stalls past the watchdog timeout, and trial-level
   exceptions — and then assert that supervision recovers with
   bit-identical counts or fails with a clean diagnostic. *)

exception Killed of string

type t = {
  on_chunk_start : chunk:int -> attempt:int -> unit;
      (* before the chunk's RNG stream is rebuilt; may raise or sleep *)
  on_trial : chunk:int -> attempt:int -> trial:int -> unit;
      (* before each trial of a supervised chunk; may raise or sleep *)
}

let nop_chunk ~chunk:_ ~attempt:_ = ()
let nop_trial ~chunk:_ ~attempt:_ ~trial:_ = ()
let none = { on_chunk_start = nop_chunk; on_trial = nop_trial }
let is_none t = t == none

let make ?(on_chunk_start = nop_chunk) ?(on_trial = nop_trial) () =
  { on_chunk_start; on_trial }

let kill_chunk ?(once = true) ~chunk () =
  make
    ~on_chunk_start:(fun ~chunk:c ~attempt ->
      if c = chunk && ((not once) || attempt = 0) then
        raise (Killed (Printf.sprintf "chaos: killed chunk %d (attempt %d)" c attempt)))
    ()

let fail_trial ?(once = true) ~chunk ~trial () =
  make
    ~on_trial:(fun ~chunk:c ~attempt ~trial:i ->
      if c = chunk && i = trial && ((not once) || attempt = 0) then
        failwith
          (Printf.sprintf "chaos: trial %d of chunk %d threw (attempt %d)" i c
             attempt))
    ()

let stall_chunk ?(once = true) ~chunk ~seconds () =
  make
    ~on_chunk_start:(fun ~chunk:c ~attempt ->
      if c = chunk && ((not once) || attempt = 0) then Unix.sleepf seconds)
    ()

(* [at_chunk ~chunk f] — run [f ()] once, when [chunk] is first
   attempted (e.g. [Campaign.request_stop] to simulate an operator
   interrupt at a deterministic point). *)
let at_chunk ~chunk f =
  let fired = Atomic.make false in
  make
    ~on_chunk_start:(fun ~chunk:c ~attempt:_ ->
      if c = chunk && not (Atomic.exchange fired true) then f ())
    ()

(* [all l] — fan one runner hook out to every bundle in [l]. *)
let all l =
  make
    ~on_chunk_start:(fun ~chunk ~attempt ->
      List.iter (fun c -> c.on_chunk_start ~chunk ~attempt) l)
    ~on_trial:(fun ~chunk ~attempt ~trial ->
      List.iter (fun c -> c.on_trial ~chunk ~attempt ~trial) l)
    ()
