(* Chaos-injection hooks for the Monte-Carlo supervision layer.

   A [t] is a bundle of callbacks the runner invokes at chunk and
   trial boundaries.  Production code always passes [none] (every
   callback a no-op, recognized physically so the hot path never pays
   a closure call per trial); tests thread custom hooks through the
   [?chaos] argument of [Mc.Runner] entry points to simulate worker
   death, stalls past the watchdog timeout, and trial-level
   exceptions — and then assert that supervision recovers with
   bit-identical counts or fails with a clean diagnostic. *)

exception Killed of string

type t = {
  on_chunk_start : chunk:int -> attempt:int -> unit;
      (* before the chunk's RNG stream is rebuilt; may raise or sleep *)
  on_trial : chunk:int -> attempt:int -> trial:int -> unit;
      (* before each trial of a supervised chunk; may raise or sleep *)
}

let nop_chunk ~chunk:_ ~attempt:_ = ()
let nop_trial ~chunk:_ ~attempt:_ ~trial:_ = ()
let none = { on_chunk_start = nop_chunk; on_trial = nop_trial }
let is_none t = t == none

let make ?(on_chunk_start = nop_chunk) ?(on_trial = nop_trial) () =
  { on_chunk_start; on_trial }

let kill_chunk ?(once = true) ~chunk () =
  make
    ~on_chunk_start:(fun ~chunk:c ~attempt ->
      if c = chunk && ((not once) || attempt = 0) then
        raise (Killed (Printf.sprintf "chaos: killed chunk %d (attempt %d)" c attempt)))
    ()

let fail_trial ?(once = true) ~chunk ~trial () =
  make
    ~on_trial:(fun ~chunk:c ~attempt ~trial:i ->
      if c = chunk && i = trial && ((not once) || attempt = 0) then
        failwith
          (Printf.sprintf "chaos: trial %d of chunk %d threw (attempt %d)" i c
             attempt))
    ()

let stall_chunk ?(once = true) ~chunk ~seconds () =
  make
    ~on_chunk_start:(fun ~chunk:c ~attempt ->
      if c = chunk && ((not once) || attempt = 0) then Unix.sleepf seconds)
    ()

(* [at_chunk ~chunk f] — run [f ()] once, when [chunk] is first
   attempted (e.g. [Campaign.request_stop] to simulate an operator
   interrupt at a deterministic point). *)
let at_chunk ~chunk f =
  let fired = Atomic.make false in
  make
    ~on_chunk_start:(fun ~chunk:c ~attempt:_ ->
      if c = chunk && not (Atomic.exchange fired true) then f ())
    ()

(* [all l] — fan one runner hook out to every bundle in [l]. *)
let all l =
  make
    ~on_chunk_start:(fun ~chunk ~attempt ->
      List.iter (fun c -> c.on_chunk_start ~chunk ~attempt) l)
    ~on_trial:(fun ~chunk ~attempt ~trial ->
      List.iter (fun c -> c.on_trial ~chunk ~attempt ~trial) l)
    ()

(* ------------------------------------------------------- fleet chaos *)

(* Fleet-level faults target worker *processes*, which are separate
   address spaces reached by re-exec — so unlike the closure hooks
   above, these must be plain data that survives a trip through an
   environment variable.  A spec names the victim by (worker slot,
   spawn generation, dispatch ordinal): generation 0 is the initially
   spawned process, so a restarted worker (generation >= 1) does not
   re-trigger the same fault, which is exactly what the byte-identity
   test needs. *)

type fleet_event =
  | Kill_worker
  | Hang_worker of float
  | Drop_result

type fleet = {
  f_worker : int;  (* worker slot the fault targets *)
  f_gen : int;  (* spawn generation of the victim process *)
  f_nth : int;  (* 0-based ordinal of the dispatch that triggers it *)
  f_event : fleet_event;
}

let kill_worker ?(gen = 0) ?(nth = 0) ~worker () =
  { f_worker = worker; f_gen = gen; f_nth = nth; f_event = Kill_worker }

let hang_worker ?(gen = 0) ?(nth = 0) ~worker ~seconds () =
  { f_worker = worker; f_gen = gen; f_nth = nth; f_event = Hang_worker seconds }

let drop_result ?(gen = 0) ?(nth = 0) ~worker () =
  { f_worker = worker; f_gen = gen; f_nth = nth; f_event = Drop_result }

let fleet_to_string s =
  let at = Printf.sprintf "@%d.%d.%d" s.f_worker s.f_gen s.f_nth in
  match s.f_event with
  | Kill_worker -> "kill" ^ at
  | Hang_worker secs -> Printf.sprintf "hang:%g%s" secs at
  | Drop_result -> "drop" ^ at

let fleet_of_string str =
  let fail () = Error (Printf.sprintf "bad fleet chaos spec %S" str) in
  match String.index_opt str '@' with
  | None -> fail ()
  | Some i -> (
    let ev = String.sub str 0 i in
    let addr = String.sub str (i + 1) (String.length str - i - 1) in
    match String.split_on_char '.' addr with
    | [ w; g; n ] -> (
      match (int_of_string_opt w, int_of_string_opt g, int_of_string_opt n) with
      | Some f_worker, Some f_gen, Some f_nth -> (
        let spec f_event = Ok { f_worker; f_gen; f_nth; f_event } in
        match String.split_on_char ':' ev with
        | [ "kill" ] -> spec Kill_worker
        | [ "drop" ] -> spec Drop_result
        | [ "hang"; secs ] -> (
          match float_of_string_opt secs with
          | Some s when s >= 0.0 -> spec (Hang_worker s)
          | _ -> fail ())
        | _ -> fail ())
      | _ -> fail ())
    | _ -> fail ())

let fleet_env = "FTQC_FLEET_CHAOS"

let fleet_list_to_string l = String.concat ";" (List.map fleet_to_string l)

let fleet_list_of_string str =
  if String.trim str = "" then Ok []
  else
    List.fold_left
      (fun acc part ->
        Result.bind acc (fun l ->
            Result.map (fun s -> s :: l) (fleet_of_string part)))
      (Ok [])
      (String.split_on_char ';' str)
    |> Result.map List.rev
