(* Parallel Monte-Carlo map-reduce over OCaml 5 domains.

   Determinism contract: the trial range is cut into fixed-size chunks
   whose size depends only on [trials] (never on the domain count);
   chunk [c] always runs on the RNG stream [Rng.split root c]; chunk
   results land in a per-chunk slot and are merged in chunk order
   after all workers join.  Workers claim chunks from a shared atomic
   cursor (a single-queue work-stealing discipline: idle domains
   steal the next unclaimed chunk), so scheduling is dynamic but the
   aggregate is bit-identical for any [domains].

   Supervision rides the same contract: a retried chunk re-derives
   the same RNG stream, a chunk replayed from a checkpoint contributes
   the same count it would have computed, and a graceful stop only
   ever drops whole chunks — so resume, retry and chaos recovery all
   preserve bit-identical aggregates.

   Telemetry: every entry point takes an [?obs:Obs.t] handle
   (default [Obs.none], a no-op).  Instrumentation only ever times and
   counts — it draws no randomness and gates no control flow — so
   enabling it cannot perturb a single sampled bit.  Per-chunk timings
   land in per-chunk slots and are folded into the handle in chunk
   order after the join, mirroring the result-merge discipline. *)

let env_domains = "FTQC_DOMAINS"

let default_domains () =
  match Sys.getenv_opt env_domains with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let resolve_domains = function
  | None -> default_domains ()
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Mc.Runner: domains must be >= 1"

(* At most 1024 chunks: plenty of slack for dynamic load balancing,
   cheap enough that per-chunk RNG setup is noise. *)
let resolve_chunk ~trials = function
  | None -> max 1 ((trials + 1023) / 1024)
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Mc.Runner: chunk must be >= 1"

(* The chunk size an entry point picks when the caller passes no
   [?chunk] — exported so out-of-process shard planners (Svc.Exec) can
   reproduce the exact job key a driver's run will use. *)
let default_chunk ~trials = resolve_chunk ~trials None

let resolve_obs = function None -> Obs.none | Some o -> o

(* ------------------------------------------------------- supervision *)

exception
  Chunk_failed of { chunk : int; attempts : int; message : string }

let () =
  Printexc.register_printer (function
    | Chunk_failed { chunk; attempts; message } ->
      Some
        (Printf.sprintf "Mc.Runner.Chunk_failed (chunk %d, %d attempt%s: %s)"
           chunk attempts
           (if attempts = 1 then "" else "s")
           message)
    | _ -> None)

(* Internal marker for the cooperative watchdog; always retryable. *)
exception Chunk_timeout of float

let default_retries = 2
let default_backoff = 0.1

(* Ambient watchdog default, set by the CLI's --chunk-timeout so the
   timeout reaches every driver without widening signatures (same
   pattern as the ambient campaign store).  Explicit [?chunk_timeout]
   arguments override it. *)
let ambient_chunk_timeout = ref 0.0

let set_default_chunk_timeout t =
  if t < 0.0 then invalid_arg "Mc.Runner: chunk_timeout must be >= 0";
  ambient_chunk_timeout := t

let default_chunk_timeout () = !ambient_chunk_timeout

(* Non-retryable: resource exhaustion, explicit interrupts, and
   already-wrapped supervision failures.  Everything else — chaos
   kills, trial exceptions, watchdog timeouts — is transient by
   assumption and worth [retries] more derivations of the same RNG
   stream. *)
let retryable = function
  | Out_of_memory | Stack_overflow | Sys.Break -> false
  | Chunk_failed _ | Campaign.Interrupted _ -> false
  | _ -> true

(* Per-run supervision bundle, generic in the accumulator so the
   same chunk loop serves counting paths (with persistence) and
   general map-reduce (supervision only). *)
type 'acc sup = {
  skip : int -> 'acc option;  (* chunk idx -> checkpointed result *)
  record : int -> 'acc -> unit;  (* persist a freshly computed chunk *)
  flush : unit -> unit;  (* force checkpoint to disk *)
  file : string option;  (* resume token for Interrupted *)
  timeout : float;  (* per-chunk watchdog, seconds; 0 = off *)
  retries : int;
  backoff : float;  (* base retry delay, doubled per attempt *)
  jitter : idx:int -> attempt:int -> float;  (* backoff multiplier *)
  chaos : Chaos.t;
}

(* Deterministic retry-backoff jitter: a factor in [0.5, 1.5) drawn
   from a stream split off the chunk's own key under a reserved tag,
   so fleet workers retrying the same wave of chunks de-synchronize
   their sleeps without consuming a single draw of any chunk's trial
   stream.  Purely a timing perturbation: counts cannot depend on
   it. *)
let jitter_tag = 0x6a69 (* "ji" *)

let backoff_jitter ~seed ~idx ~attempt =
  let key =
    Rng.split (Rng.split (Rng.split (Rng.root seed) idx) jitter_tag) attempt
  in
  0.5 +. Rng.float (Rng.of_key key) 1.0

let resolve_sup_args ?chunk_timeout ?(retries = default_retries)
    ?(backoff = default_backoff) ?(chaos = Chaos.none) () =
  let chunk_timeout =
    match chunk_timeout with
    | Some t -> t
    | None -> !ambient_chunk_timeout
  in
  if chunk_timeout < 0.0 then
    invalid_arg "Mc.Runner: chunk_timeout must be >= 0";
  if retries < 0 then invalid_arg "Mc.Runner: retries must be >= 0";
  if backoff < 0.0 then invalid_arg "Mc.Runner: backoff must be >= 0";
  (chunk_timeout, retries, backoff, chaos)

let plain_sup ~seed ~timeout ~retries ~backoff ~chaos =
  { skip = (fun _ -> None);
    record = (fun _ _ -> ());
    flush = ignore;
    file = None;
    timeout;
    retries;
    backoff;
    jitter = (fun ~idx ~attempt -> backoff_jitter ~seed ~idx ~attempt);
    chaos }

(* Counting paths persist through the campaign store: explicit
   [?campaign] first, else the ambient store set by the CLI. *)
let counting_sup ?campaign ~engine ~seed ~trials ~chunk ~timeout ~retries
    ~backoff ~chaos () =
  match
    match campaign with Some c -> Some c | None -> Campaign.current ()
  with
  | None -> plain_sup ~seed ~timeout ~retries ~backoff ~chaos
  | Some store ->
    let job =
      { Campaign.label = Campaign.label (); engine; seed; trials; chunk }
    in
    { skip = (fun idx -> Campaign.find store ~job ~chunk:idx);
      record = (fun idx n -> Campaign.record store ~job ~chunk:idx ~failures:n);
      flush = (fun () -> Campaign.flush store);
      (* in-memory stores ("" path) have no on-disk resume token *)
      file = (match Campaign.file store with "" -> None | f -> Some f);
      timeout;
      retries;
      backoff;
      jitter = (fun ~idx ~attempt -> backoff_jitter ~seed ~idx ~attempt);
      chaos }

(* Run one chunk attempt-by-attempt: chaos hooks fire first, the RNG
   stream is re-derived from scratch on every attempt (so a retry is
   bit-identical to a clean first run), and a cooperative deadline is
   checked between trials.  Exhausted retries wrap the last exception
   in [Chunk_failed]. *)
let supervised_attempts ~sup ~idx ~retried ~timeouts body =
  let rec attempt a =
    match
      (* the deadline is armed before the chaos hook so a stall at
         chunk start counts against the watchdog like any other
         stall *)
      let deadline =
        if sup.timeout > 0.0 then Obs.now () +. sup.timeout
        else Float.infinity
      in
      sup.chaos.Chaos.on_chunk_start ~chunk:idx ~attempt:a;
      body a deadline
    with
    | acc -> acc
    | exception e when retryable e && a < sup.retries ->
      Atomic.incr retried;
      (match e with Chunk_timeout _ -> Atomic.incr timeouts | _ -> ());
      if sup.backoff > 0.0 then
        Unix.sleepf
          (sup.backoff *. Float.of_int (1 lsl a) *. sup.jitter ~idx ~attempt:a);
      attempt (a + 1)
    | exception e when retryable e ->
      (match e with Chunk_timeout _ -> Atomic.incr timeouts | _ -> ());
      raise
        (Chunk_failed
           { chunk = idx;
             attempts = a + 1;
             message =
               (match e with
               | Chunk_timeout t ->
                 Printf.sprintf "exceeded %gs chunk timeout" t
               | e -> Printexc.to_string e) })
  in
  attempt 0

(* ----------------------------------------------------------- tracing

   Span identities derive from the work's identity — (ambient label,
   engine, seed, trials, chunk size) for the run, the chunk index
   under it for chunks, the attempt number under that for retries —
   so the span-id set is bit-identical at any domain count.  Workers
   record chunk and attempt spans into per-worker buffers; after the
   join they are folded into the installed sink in worker order, the
   [Obs.Metrics] per-worker-registry discipline.  All of it is gated
   on [Obs.Trace.enabled] and none of it touches RNG or control
   flow. *)

type trace_run = {
  tr_id : string;
  tr_parent : string;
  tr_name : string;
  tr_args : (string * Obs.Json.t) list;
  tr_t0 : float;
  tr_bufs : Obs.Trace.buf array; (* one per worker slot *)
}

let trace_run ~engine_label ~seed ~trials ~chunk ~slots =
  if not (Obs.Trace.enabled ()) then None
  else begin
    let label = Campaign.label () in
    Some
      { tr_id =
          Obs.Trace.span_id
            [ "run"; label; engine_label; string_of_int seed;
              string_of_int trials; string_of_int chunk ];
        tr_parent = Obs.Trace.current_parent ();
        tr_name =
          (if label = "" then "mc:" ^ engine_label
           else label ^ ":" ^ engine_label);
        tr_args =
          [ ("engine", Obs.Json.String engine_label);
            ("label", Obs.Json.String label);
            ("seed", Obs.Json.Int seed);
            ("trials", Obs.Json.Int trials);
            ("chunk", Obs.Json.Int chunk) ];
        tr_t0 = Obs.now ();
        tr_bufs = Array.init (max slots 1) (fun _ -> Obs.Trace.buf ()) }
  end

let trace_run_finish tr ~interrupted =
  match tr with
  | None -> ()
  | Some t ->
    let stop = Obs.now () in
    Array.iter Obs.Trace.absorb t.tr_bufs;
    Obs.Trace.emit
      { Obs.Trace.id = t.tr_id;
        parent = t.tr_parent;
        name = t.tr_name;
        cat = "runner";
        start_s = t.tr_t0;
        dur_s = stop -. t.tr_t0;
        args =
          (t.tr_args
          @ if interrupted then [ ("interrupted", Obs.Json.Bool true) ]
            else []) }

(* The id every span of chunk [idx] hangs off. *)
let trace_chunk_id tr idx =
  match tr with
  | None -> ""
  | Some t -> Obs.Trace.span_id [ t.tr_id; "c" ^ string_of_int idx ]

let trace_chunk tr ~w ~idx ~cid ~t0 ~cached ~ok =
  match tr with
  | None -> ()
  | Some t ->
    Obs.Trace.record t.tr_bufs.(w)
      { Obs.Trace.id = cid;
        parent = t.tr_id;
        name =
          (if cached then Printf.sprintf "chunk %d (cached)" idx
           else Printf.sprintf "chunk %d" idx);
        cat = "runner";
        start_s = t0;
        dur_s = Obs.now () -. t0;
        args =
          (("chunk", Obs.Json.Int idx) :: ("worker", Obs.Json.Int w)
          :: (if cached then [ ("cached", Obs.Json.Bool true) ] else [])
          @ if ok then [] else [ ("failed", Obs.Json.Bool true) ]) }

(* Wrap a supervised-attempt body so each attempt (including the
   failing ones that trigger a retry) gets its own span under the
   chunk. *)
let trace_attempts tr ~w ~idx:_ ~cid body =
  match tr with
  | None -> body
  | Some t ->
    fun attempt deadline ->
      let a0 = Obs.now () in
      let record ok =
        Obs.Trace.record t.tr_bufs.(w)
          { Obs.Trace.id =
              Obs.Trace.span_id [ cid; "a" ^ string_of_int attempt ];
            parent = cid;
            name = Printf.sprintf "attempt %d" attempt;
            cat = "runner";
            start_s = a0;
            dur_s = Obs.now () -. a0;
            args =
              (("attempt", Obs.Json.Int attempt)
              :: (if ok then [] else [ ("failed", Obs.Json.Bool true) ])) }
      in
      (match body attempt deadline with
      | r ->
        record true;
        r
      | exception e ->
        record false;
        raise e)

(* Record one engine run into the handle: chunk timings in chunk
   order, claims per worker, warmup cost, aggregate wall/throughput.
   Runs single-threaded after all workers have joined.  Skipped
   (checkpoint-replayed) chunks carry a negative sentinel timing and
   are not observed. *)
let record_run obs ~engine ~trials ~chunks ~workers ~wall_s ~warmup_s
    ~chunk_times ~claims ~resumed ~retried ~timeouts =
  if Obs.enabled obs then begin
    Obs.incr obs "mc.runs";
    Obs.add obs "mc.trials" trials;
    Obs.add obs "mc.chunks" chunks;
    Array.iter
      (fun dt ->
        if dt >= 0.0 then begin
          Obs.observe obs "mc.chunk_wall_s" dt;
          Obs.observe_histogram obs "mc.chunk_wall_s" dt
        end)
      chunk_times;
    Array.iter
      (fun k -> if k >= 0 then Obs.observe obs "mc.chunks_per_worker" (float_of_int k))
      claims;
    if warmup_s > 0.0 then Obs.observe obs "mc.warmup_s" warmup_s;
    if resumed > 0 then Obs.add obs "mc.chunks_resumed" resumed;
    if retried > 0 then Obs.add obs "mc.chunk_retries" retried;
    if timeouts > 0 then Obs.add obs "mc.chunk_timeouts" timeouts;
    Obs.observe obs "mc.wall_s" wall_s;
    let shots_per_s =
      if wall_s > 0.0 then float_of_int trials /. wall_s else 0.0
    in
    if trials > 0 then Obs.set_gauge obs "mc.shots_per_s" shots_per_s;
    Obs.event obs "mc.run"
      [ ("engine", Obs.Json.String engine);
        ("trials", Obs.Json.Int trials);
        ("chunks", Obs.Json.Int chunks);
        ("workers", Obs.Json.Int workers);
        ("wall_s", Obs.Json.Float wall_s);
        ("warmup_s", Obs.Json.Float warmup_s);
        ("shots_per_s", Obs.Json.Float shots_per_s) ]
  end

(* Run chunks [lo_chunk, hi_chunk) and return their accumulators in
   chunk order.  [results] slots are written by at most one worker
   each; Domain.join publishes them to the caller.

   Abnormal exits: workers stop claiming once a chunk has exhausted
   its retries (the first exception is kept, in-flight chunks drain)
   or once [Campaign.stop_requested] turns true; either way the
   checkpoint is flushed before the exception — [Chunk_failed] or
   [Campaign.Interrupted] — reaches the caller, so completed chunks
   survive. *)
let run_chunk_range ~obs ~progress ~tr ~domains ~root ~chunk ~trials ~lo_chunk
    ~hi_chunk ~sup ~engine_label ~worker_init ~trial ~init ~accum =
  let n = hi_chunk - lo_chunk in
  let results = Array.make (max n 0) init in
  let done_ = Array.make (max n 0) false in
  let abort : exn option Atomic.t = Atomic.make None in
  let resumed = Atomic.make 0 in
  let retried = Atomic.make 0 in
  let timeouts = Atomic.make 0 in
  let instrument = Obs.enabled obs in
  let tracing = tr <> None in
  let t_start = if instrument then Obs.now () else 0.0 in
  let chunk_times = if instrument then Array.make (max n 0) (-1.0) else [||] in
  let range_trials =
    if n <= 0 then 0
    else min trials (hi_chunk * chunk) - (lo_chunk * chunk)
  in
  let chaos_on = not (Chaos.is_none sup.chaos) in
  let supervised = sup.timeout > 0.0 || chaos_on in
  let process w ctx c =
    let idx = lo_chunk + c in
    match sup.skip idx with
    | Some acc ->
      results.(c) <- acc;
      done_.(c) <- true;
      Atomic.incr resumed;
      if tracing then
        trace_chunk tr ~w ~idx ~cid:(trace_chunk_id tr idx) ~t0:(Obs.now ())
          ~cached:true ~ok:true;
      Obs.Progress.step progress
    | None ->
      let lo = idx * chunk and hi = min trials ((idx + 1) * chunk) in
      let t0 = if instrument || tracing then Obs.now () else 0.0 in
      let cid = if tracing then trace_chunk_id tr idx else "" in
      let compute () =
        if not supervised then begin
          (* hot path: no deadline reads, no hook calls *)
          let rng = Rng.to_state (Rng.split root idx) in
          let acc = ref init in
          for i = lo to hi - 1 do
            acc := accum !acc (trial ctx rng i)
          done;
          !acc
        end
        else
          supervised_attempts ~sup ~idx ~retried ~timeouts
            (trace_attempts tr ~w ~idx ~cid (fun attempt deadline ->
                 let rng = Rng.to_state (Rng.split root idx) in
                 let acc = ref init in
                 for i = lo to hi - 1 do
                   if sup.timeout > 0.0 && Obs.now () > deadline then
                     raise (Chunk_timeout sup.timeout);
                   if chaos_on then
                     sup.chaos.Chaos.on_trial ~chunk:idx ~attempt ~trial:i;
                   acc := accum !acc (trial ctx rng i)
                 done;
                 !acc))
      in
      (match compute () with
      | acc ->
        results.(c) <- acc;
        done_.(c) <- true;
        sup.record idx acc;
        if instrument then chunk_times.(c) <- Obs.now () -. t0;
        if tracing then
          trace_chunk tr ~w ~idx ~cid ~t0 ~cached:false ~ok:true;
        Obs.Progress.step progress
      | exception e ->
        if tracing then
          trace_chunk tr ~w ~idx ~cid ~t0 ~cached:false ~ok:false;
        raise e)
  in
  let should_stop () =
    Atomic.get abort <> None || Campaign.stop_requested ()
  in
  let guarded w ctx c =
    try process w ctx c
    with e -> ignore (Atomic.compare_and_set abort None (Some e))
  in
  let workers = min domains n in
  let claims = Array.make (max workers 1) (-1) in
  let warmup_s = ref 0.0 in
  if workers <= 1 then begin
    if n > 0 then begin
      let ctx = worker_init () in
      let c = ref 0 in
      while !c < n && not (should_stop ()) do
        guarded 0 ctx !c;
        incr c
      done;
      claims.(0) <- !c
    end
  end
  else begin
    (* Shared lazy values inside user trial code (code tables,
       decoders) are not safe to force concurrently in OCaml 5: run
       one throwaway trial sequentially first so every lazy the trial
       touches is already forced when the domains start. *)
    let warm_ctx = worker_init () in
    let t_warm = if instrument then Obs.now () else 0.0 in
    ignore (trial warm_ctx (Rng.to_state (Rng.split root lo_chunk)) 0);
    if instrument then warmup_s := Obs.now () -. t_warm;
    let cursor = Atomic.make 0 in
    let work w ctx =
      let mine = ref 0 in
      let rec loop () =
        if not (should_stop ()) then begin
          let c = Atomic.fetch_and_add cursor 1 in
          if c < n then begin
            guarded w ctx c;
            incr mine;
            loop ()
          end
        end
      in
      loop ();
      claims.(w) <- !mine
    in
    let spawned =
      List.init (workers - 1) (fun w ->
          Domain.spawn (fun () -> work (w + 1) (worker_init ())))
    in
    work 0 warm_ctx;
    List.iter Domain.join spawned
  end;
  let completed = ref 0 in
  Array.iter (fun d -> if d then incr completed) done_;
  if !completed < n then begin
    (* abnormal exit: persist what we have, then raise *)
    sup.flush ();
    match Atomic.get abort with
    | Some e -> raise e
    | None ->
      raise
        (Campaign.Interrupted
           { completed = !completed; total = n; checkpoint = sup.file })
  end;
  (match Atomic.get abort with Some e -> raise e | None -> ());
  if instrument then
    record_run obs ~engine:engine_label ~trials:range_trials ~chunks:(max n 0)
      ~workers ~wall_s:(Obs.now () -. t_start) ~warmup_s:!warmup_s ~chunk_times
      ~claims ~resumed:(Atomic.get resumed) ~retried:(Atomic.get retried)
      ~timeouts:(Atomic.get timeouts);
  results

let map_reduce_sup ?(engine_label = "scalar") ~domains ~chunk ~obs ~trials
    ~seed ~sup ~worker_init ~init ~accum ~merge trial =
  if trials < 0 then invalid_arg "Mc.Runner: trials must be >= 0";
  let nchunks = (trials + chunk - 1) / chunk in
  let progress = Obs.Progress.create ~label:"mc" ~total:nchunks in
  let tr = trace_run ~engine_label ~seed ~trials ~chunk ~slots:domains in
  let root = Rng.root seed in
  match
    run_chunk_range ~obs ~progress ~tr ~domains ~root ~chunk ~trials
      ~lo_chunk:0 ~hi_chunk:nchunks ~sup ~engine_label ~worker_init ~trial
      ~init ~accum
  with
  | results ->
    trace_run_finish tr ~interrupted:false;
    Obs.Progress.finish progress;
    Array.fold_left merge init results
  | exception e ->
    trace_run_finish tr ~interrupted:true;
    Obs.Progress.abandon progress;
    raise e

let map_reduce_ctx ?domains ?chunk ?obs ?chunk_timeout ?retries ?backoff
    ?chaos ~trials ~seed ~worker_init ~init ~accum ~merge trial =
  let domains = resolve_domains domains in
  let chunk = resolve_chunk ~trials chunk in
  let obs = resolve_obs obs in
  let timeout, retries, backoff, chaos =
    resolve_sup_args ?chunk_timeout ?retries ?backoff ?chaos ()
  in
  let sup = plain_sup ~seed ~timeout ~retries ~backoff ~chaos in
  map_reduce_sup ~domains ~chunk ~obs ~trials ~seed ~sup ~worker_init ~init
    ~accum ~merge trial

let map_reduce ?domains ?chunk ?obs ?chunk_timeout ?retries ?backoff ?chaos
    ~trials ~seed ~init ~accum ~merge trial =
  map_reduce_ctx ?domains ?chunk ?obs ?chunk_timeout ?retries ?backoff ?chaos
    ~trials ~seed
    ~worker_init:(fun () -> ())
    ~init ~accum ~merge
    (fun () rng i -> trial rng i)

let count_accum acc hit = if hit then acc + 1 else acc

let failures_ctx_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries
    ?backoff ?chaos ~trials ~seed ~worker_init trial =
  if trials < 0 then invalid_arg "Mc.Runner: trials must be >= 0";
  let domains = resolve_domains domains in
  let chunk = resolve_chunk ~trials chunk in
  let obs = resolve_obs obs in
  let timeout, retries, backoff, chaos =
    resolve_sup_args ?chunk_timeout ?retries ?backoff ?chaos ()
  in
  let sup =
    counting_sup ?campaign ~engine:"scalar" ~seed ~trials ~chunk ~timeout
      ~retries ~backoff ~chaos ()
  in
  map_reduce_sup ~domains ~chunk ~obs ~trials ~seed ~sup ~worker_init ~init:0
    ~accum:count_accum ~merge:( + ) trial

let default_min_trials = 1000

let estimate_ctx_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries
    ?backoff ?chaos ?z ?target_half_width ?(min_trials = default_min_trials)
    ~trials ~seed ~worker_init trial =
  if trials < 0 then invalid_arg "Mc.Runner: trials must be >= 0";
  if min_trials < 1 then invalid_arg "Mc.Runner: min_trials must be >= 1";
  let domains = resolve_domains domains in
  let chunk = resolve_chunk ~trials chunk in
  let obs = resolve_obs obs in
  let timeout, retries, backoff, chaos =
    resolve_sup_args ?chunk_timeout ?retries ?backoff ?chaos ()
  in
  (* One supervision bundle for every batch of the early-stopping
     loop: cached per-chunk counts replay identically, so a resumed
     early-stopped run revisits the same batch boundaries and stops
     at the same point as the uninterrupted run. *)
  let sup =
    counting_sup ?campaign ~engine:"scalar" ~seed ~trials ~chunk ~timeout
      ~retries ~backoff ~chaos ()
  in
  let nchunks = (trials + chunk - 1) / chunk in
  let progress = Obs.Progress.create ~label:"mc" ~total:nchunks in
  let tr = trace_run ~engine_label:"scalar" ~seed ~trials ~chunk ~slots:domains in
  let root = Rng.root seed in
  let run lo_chunk hi_chunk =
    run_chunk_range ~obs ~progress ~tr ~domains ~root ~chunk ~trials ~lo_chunk
      ~hi_chunk ~sup ~engine_label:"scalar" ~worker_init ~trial ~init:0
      ~accum:count_accum
    |> Array.fold_left ( + ) 0
  in
  let result () =
    match target_half_width with
    | None ->
      Stats.estimate ?z ~failures:(run 0 nchunks) ~trials ()
    | Some target ->
      (* Geometric batches at fixed chunk boundaries: the stop decision
         after each batch depends only on aggregate counts, so early
         stopping is as domain-count-invariant as the counts are.  The
         floor [min_trials] is never undercut. *)
      let floor_trials = min trials (max 1 min_trials) in
      let chunks_for t = min nchunks ((t + chunk - 1) / chunk) in
      let trace ~done_chunks ~done_trials (e : Stats.estimate) ~stopped =
        Obs.event obs "mc.early_stop_batch"
          [ ("done_chunks", Obs.Json.Int done_chunks);
            ("done_trials", Obs.Json.Int done_trials);
            ("failures", Obs.Json.Int e.Stats.failures);
            ("half_width", Obs.Json.Float (Stats.half_width e));
            ("target", Obs.Json.Float target);
            ("stopped", Obs.Json.Bool stopped) ]
      in
      let rec go done_chunks failures =
        let done_trials = min trials (done_chunks * chunk) in
        let e = Stats.estimate ?z ~failures ~trials:done_trials () in
        if done_chunks >= nchunks then begin
          if done_chunks > 0 then trace ~done_chunks ~done_trials e ~stopped:true;
          e
        end
        else if done_trials >= floor_trials && Stats.half_width e <= target
        then begin
          trace ~done_chunks ~done_trials e ~stopped:true;
          e
        end
        else begin
          if done_chunks > 0 then
            trace ~done_chunks ~done_trials e ~stopped:false;
          let next_chunks =
            if done_trials = 0 then chunks_for floor_trials
            else max (done_chunks + 1) (chunks_for (2 * done_trials))
          in
          let next_chunks = min nchunks next_chunks in
          go next_chunks (failures + run done_chunks next_chunks)
        end
      in
      go 0 0
  in
  match result () with
  | result ->
    trace_run_finish tr ~interrupted:false;
    Obs.Progress.finish progress;
    result
  | exception e ->
    trace_run_finish tr ~interrupted:true;
    Obs.Progress.abandon progress;
    raise e

(* Batched mode: one chunk = one tile of [tile_width / 64] 64-shot
   lanes (default one lane).  The batch function returns one int64 per
   lane; bit k of lane j is the outcome of shot [base + 64*j + k].
   The engine masks each lane to its live shots, popcounts, and merges
   per-chunk counts in chunk order.

   Cross-width determinism: lane [j] of tile [c] covers the same 64
   shots as the width-64 chunk [c * lanes + j] and runs on that
   chunk's RNG stream, [Rng.split root (c * lanes + j)] — so provided
   the batch function gives each lane its own key's draw sequence
   (Frame.Sampler tiles do), the aggregate is bit-identical for every
   tile width as well as for every domain count.  Supervision mirrors
   the scalar engine, with two adaptations: the watchdog deadline is
   checked after the (uninterruptible) batch call, and chaos
   [on_trial] hooks do not apply (a tile has no per-trial boundary). *)

let word_size = 64

let resolve_tile_width = function
  | None -> word_size
  | Some w when w >= word_size && w mod word_size = 0 -> w
  | Some _ ->
    invalid_arg "Mc.Runner: tile_width must be a positive multiple of 64"

let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add
      (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let live_mask count =
  if count >= word_size then -1L
  else Int64.sub (Int64.shift_left 1L count) 1L

let failures_batched_impl ?domains ?obs ?campaign ?chunk_timeout ?retries
    ?backoff ?chaos ?tile_width ~trials ~seed ~worker_init batch =
  if trials < 0 then invalid_arg "Mc.Runner: trials must be >= 0";
  let domains = resolve_domains domains in
  let obs = resolve_obs obs in
  let tile_width = resolve_tile_width tile_width in
  let lanes = tile_width / word_size in
  let timeout, retries, backoff, chaos =
    resolve_sup_args ?chunk_timeout ?retries ?backoff ?chaos ()
  in
  (* Campaign chunks are whole tiles, so width-64 runs keep the exact
     pre-tile job identity and old checkpoints stay replayable; other
     widths get their own job key via [chunk]. *)
  let sup =
    counting_sup ?campaign ~engine:"batch" ~seed ~trials ~chunk:tile_width
      ~timeout ~retries ~backoff ~chaos ()
  in
  let lane_keys root c =
    Array.init lanes (fun j -> Rng.split root ((c * lanes) + j))
  in
  let count_tile ws ~count =
    if Array.length ws < lanes then
      invalid_arg "Mc.Runner: batch returned fewer words than lanes";
    let acc = ref 0 in
    for j = 0 to lanes - 1 do
      let live = count - (j * word_size) in
      if live > 0 then
        acc := !acc + popcount64 (Int64.logand ws.(j) (live_mask live))
    done;
    !acc
  in
  let nchunks = (trials + tile_width - 1) / tile_width in
  let progress = Obs.Progress.create ~label:"mc-batch" ~total:nchunks in
  let tr =
    trace_run ~engine_label:"batch" ~seed ~trials ~chunk:tile_width
      ~slots:domains
  in
  let root = Rng.root seed in
  let results = Array.make (max nchunks 0) 0 in
  let done_ = Array.make (max nchunks 0) false in
  let abort : exn option Atomic.t = Atomic.make None in
  let resumed = Atomic.make 0 in
  let retried = Atomic.make 0 in
  let timeouts = Atomic.make 0 in
  let instrument = Obs.enabled obs in
  let tracing = tr <> None in
  let t_start = if instrument then Obs.now () else 0.0 in
  let chunk_times =
    if instrument then Array.make (max nchunks 0) (-1.0) else [||]
  in
  let chaos_on = not (Chaos.is_none chaos) in
  let supervised = timeout > 0.0 || chaos_on in
  let process w ctx c =
    match sup.skip c with
    | Some count ->
      results.(c) <- count;
      done_.(c) <- true;
      Atomic.incr resumed;
      if tracing then
        trace_chunk tr ~w ~idx:c ~cid:(trace_chunk_id tr c) ~t0:(Obs.now ())
          ~cached:true ~ok:true;
      Obs.Progress.step progress
    | None ->
      let base = c * tile_width in
      let count = min tile_width (trials - base) in
      let t0 = if instrument || tracing then Obs.now () else 0.0 in
      let cid = if tracing then trace_chunk_id tr c else "" in
      let run_tile () =
        let ws = batch ctx (lane_keys root c) ~base ~count in
        count_tile ws ~count
      in
      let compute () =
        if not supervised then run_tile ()
        else
          supervised_attempts ~sup ~idx:c ~retried ~timeouts
            (trace_attempts tr ~w ~idx:c ~cid (fun _attempt deadline ->
                 let r = run_tile () in
                 if timeout > 0.0 && Obs.now () > deadline then
                   raise (Chunk_timeout timeout);
                 r))
      in
      (match compute () with
      | n_failures ->
        results.(c) <- n_failures;
        done_.(c) <- true;
        sup.record c n_failures;
        if instrument then chunk_times.(c) <- Obs.now () -. t0;
        if tracing then trace_chunk tr ~w ~idx:c ~cid ~t0 ~cached:false ~ok:true;
        Obs.Progress.step progress
      | exception e ->
        if tracing then
          trace_chunk tr ~w ~idx:c ~cid ~t0 ~cached:false ~ok:false;
        raise e)
  in
  let should_stop () =
    Atomic.get abort <> None || Campaign.stop_requested ()
  in
  let guarded w ctx c =
    try process w ctx c
    with e -> ignore (Atomic.compare_and_set abort None (Some e))
  in
  let workers = min domains nchunks in
  let claims = Array.make (max workers 1) (-1) in
  let warmup_s = ref 0.0 in
  if workers <= 1 then begin
    if nchunks > 0 then begin
      let ctx = worker_init () in
      let c = ref 0 in
      while !c < nchunks && not (should_stop ()) do
        guarded 0 ctx !c;
        incr c
      done;
      claims.(0) <- !c
    end
  end
  else begin
    (* Same warmup discipline as the scalar engine: force every lazy
       the batch touches before domains race on it. *)
    let warm_ctx = worker_init () in
    let t_warm = if instrument then Obs.now () else 0.0 in
    ignore
      (batch warm_ctx (lane_keys root 0) ~base:0
         ~count:(min tile_width trials));
    if instrument then warmup_s := Obs.now () -. t_warm;
    let cursor = Atomic.make 0 in
    let work w ctx =
      let mine = ref 0 in
      let rec loop () =
        if not (should_stop ()) then begin
          let c = Atomic.fetch_and_add cursor 1 in
          if c < nchunks then begin
            guarded w ctx c;
            incr mine;
            loop ()
          end
        end
      in
      loop ();
      claims.(w) <- !mine
    in
    let spawned =
      List.init (workers - 1) (fun w ->
          Domain.spawn (fun () -> work (w + 1) (worker_init ())))
    in
    work 0 warm_ctx;
    List.iter Domain.join spawned
  end;
  let fail e =
    trace_run_finish tr ~interrupted:true;
    Obs.Progress.abandon progress;
    raise e
  in
  let completed = ref 0 in
  Array.iter (fun d -> if d then incr completed) done_;
  if !completed < nchunks then begin
    sup.flush ();
    match Atomic.get abort with
    | Some e -> fail e
    | None ->
      fail
        (Campaign.Interrupted
           { completed = !completed; total = nchunks; checkpoint = sup.file })
  end;
  (match Atomic.get abort with Some e -> fail e | None -> ());
  if instrument then
    record_run obs ~engine:"batch" ~trials ~chunks:(max nchunks 0) ~workers
      ~wall_s:(Obs.now () -. t_start) ~warmup_s:!warmup_s ~chunk_times ~claims
      ~resumed:(Atomic.get resumed) ~retried:(Atomic.get retried)
      ~timeouts:(Atomic.get timeouts);
  trace_run_finish tr ~interrupted:false;
  Obs.Progress.finish progress;
  Array.fold_left ( + ) 0 results

(* ------------------------------------------------------------ models *)

type 'ctx rare_model = {
  fault_model : Subset.model;
  evaluate : 'ctx -> Subset.fault array -> bool;
}

type 'ctx model = {
  m_worker_init : unit -> 'ctx;
  m_trial : ('ctx -> Random.State.t -> int -> bool) option;
  m_batch :
    ('ctx -> Rng.key array -> base:int -> count:int -> int64 array) option;
  m_rare : 'ctx rare_model option;
}

let model ~worker_init ?trial ?batch ?rare () =
  if trial = None && batch = None && rare = None then
    invalid_arg "Mc.Runner.model: at least one of ?trial ?batch ?rare";
  { m_worker_init = worker_init; m_trial = trial; m_batch = batch;
    m_rare = rare }

let scalar trial =
  { m_worker_init = (fun () -> ());
    m_trial = Some (fun () rng i -> trial rng i);
    m_batch = None;
    m_rare = None }

(* ------------------------------------------------- rare-event engine

   Weight-class subset sampling (see Subset): each weight class of the
   model's fault space runs as its own counting ledger through the
   standard chunk machinery — enumerated classes evaluate unranked
   configurations by trial index, sampled classes draw uniform
   configurations from the chunk's RNG stream.  Class w runs on seed
   [Rng.derive seed [w]] under campaign engine "rare:w<w>", so classes
   never collide in a checkpoint store and each inherits the scalar
   engine's determinism, supervision and resume behavior wholesale. *)

let estimate_rare_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries
    ?backoff ?chaos ?z ~config ~seed ~worker_init ~rare () =
  let { Engine.max_weight; samples_per_class; enum_cutoff } = config in
  let fm = rare.fault_model in
  Subset.validate fm;
  let plan = Subset.plan fm ~max_weight ~samples_per_class ~enum_cutoff in
  (* Class-level progress: a long enumerated class advances its own
     chunk reporter, but the campaign-level view is "classes done" —
     without it FTQC_PROGRESS sits silent between classes. *)
  let progress =
    Obs.Progress.create ~label:"rare classes" ~total:(List.length plan)
  in
  let rare_id =
    Obs.Trace.span_id
      [ "rare"; Campaign.label (); string_of_int seed;
        string_of_int max_weight; string_of_int samples_per_class ]
  in
  let run_classes () =
    List.map
      (fun (cls : Subset.cls) ->
        let w = cls.weight in
        let trial =
          if cls.exhaustive then fun ctx _rng i ->
            rare.evaluate ctx (Subset.unrank fm ~weight:w ~index:i)
          else fun ctx rng _i ->
            rare.evaluate ctx (Subset.sample fm ~weight:w rng)
        in
        let trials = cls.evals in
        let class_seed = Rng.derive seed [ w ] in
        let domains = resolve_domains domains in
        let chunk = resolve_chunk ~trials chunk in
        let obs = resolve_obs obs in
        let timeout, retries, backoff, chaos =
          resolve_sup_args ?chunk_timeout ?retries ?backoff ?chaos ()
        in
        let sup =
          counting_sup ?campaign
            ~engine:(Printf.sprintf "rare:w%d" w)
            ~seed:class_seed ~trials ~chunk ~timeout ~retries ~backoff ~chaos
            ()
        in
        let failures =
          (* the class span parents the class's run span (the
             map_reduce below picks it up as the ambient parent) *)
          Obs.Trace.timed ~cat:"runner"
            ~name:(Printf.sprintf "weight class w=%d" w)
            ~id:(Obs.Trace.span_id [ rare_id; "w" ^ string_of_int w ])
            ~args:
              [ ("weight", Obs.Json.Int w);
                ("evals", Obs.Json.Int trials);
                ("exhaustive", Obs.Json.Bool cls.exhaustive) ]
            (fun () ->
              map_reduce_sup ~engine_label:"rare" ~domains ~chunk ~obs ~trials
                ~seed:class_seed ~sup ~worker_init ~init:0 ~accum:count_accum
                ~merge:( + ) trial)
        in
        Obs.Progress.step progress;
        { Stats.weight = w;
          prob = cls.prob;
          evals = trials;
          failures;
          exhaustive = cls.exhaustive })
      plan
  in
  let traced () =
    Obs.Trace.timed ~cat:"runner" ~name:"rare estimate" ~id:rare_id
      ~args:
        [ ("seed", Obs.Json.Int seed);
          ("max_weight", Obs.Json.Int max_weight);
          ("classes", Obs.Json.Int (List.length plan)) ]
      run_classes
  in
  match traced () with
  | classes ->
    Obs.Progress.finish progress;
    Subset.weighted ?z ~model:fm ~max_weight classes
  | exception e ->
    Obs.Progress.abandon progress;
    raise e

let supported_engines m =
  List.filter_map
    (fun x -> x)
    [ Option.map (fun _ -> "scalar") m.m_trial;
      Option.map (fun _ -> "batch") m.m_batch;
      Option.map (fun _ -> "rare") m.m_rare ]
  |> String.concat ", "

let missing m ~wanted ~capability =
  invalid_arg
    (Printf.sprintf
       "Mc.Runner: the %s engine needs a model with %s; this model supports \
        engines: %s"
       wanted capability (supported_engines m))

let require_trial m =
  match m.m_trial with
  | Some t -> t
  | None -> missing m ~wanted:"scalar" ~capability:"a ?trial function"

let require_batch m =
  match m.m_batch with
  | Some b -> b
  | None -> missing m ~wanted:"batch" ~capability:"a ?batch kernel"

let require_rare m =
  match m.m_rare with
  | Some r -> r
  | None -> missing m ~wanted:"rare" ~capability:"a ?rare fault model"

let reject_chunk ~engine = function
  | None -> ()
  | Some _ ->
    invalid_arg
      (Printf.sprintf
         "Mc.Runner: ?chunk does not apply to the %s engine" engine)

(* ------------------------------------- unified, engine-polymorphic API *)

let failures ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries ?backoff
    ?chaos ?(engine = `Scalar) ~trials ~seed m =
  match (engine : Engine.t) with
  | `Scalar ->
    failures_ctx_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries
      ?backoff ?chaos ~trials ~seed ~worker_init:m.m_worker_init
      (require_trial m)
  | `Batch { Engine.tile_width } ->
    reject_chunk ~engine:"batch" chunk;
    failures_batched_impl ?domains ?obs ?campaign ?chunk_timeout ?retries
      ?backoff ?chaos ~tile_width ~trials ~seed
      ~worker_init:m.m_worker_init (require_batch m)
  | `Rare config ->
    let w =
      estimate_rare_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout
        ?retries ?backoff ?chaos ~config ~seed
        ~worker_init:m.m_worker_init ~rare:(require_rare m) ()
    in
    w.Stats.raw_failures

let estimate ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries ?backoff
    ?chaos ?(engine = `Scalar) ?z ?target_half_width ?min_trials ~trials
    ~seed m =
  let reject_target name =
    match target_half_width with
    | None -> ()
    | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Mc.Runner: ?target_half_width requires the scalar engine (got \
            %s)"
           name)
  in
  match (engine : Engine.t) with
  | `Scalar ->
    estimate_ctx_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries
      ?backoff ?chaos ?z ?target_half_width ?min_trials ~trials ~seed
      ~worker_init:m.m_worker_init (require_trial m)
  | `Batch { Engine.tile_width } ->
    reject_target "batch";
    reject_chunk ~engine:"batch" chunk;
    let failures =
      failures_batched_impl ?domains ?obs ?campaign ?chunk_timeout ?retries
        ?backoff ?chaos ~tile_width ~trials ~seed
        ~worker_init:m.m_worker_init (require_batch m)
    in
    Stats.estimate ?z ~failures ~trials ()
  | `Rare config ->
    reject_target "rare";
    Stats.weighted_to_estimate
      (estimate_rare_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout
         ?retries ?backoff ?chaos ?z ~config ~seed
         ~worker_init:m.m_worker_init ~rare:(require_rare m) ())

let estimate_rare ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries
    ?backoff ?chaos ?z ?(config = Engine.default_rare) ~seed m =
  estimate_rare_impl ?domains ?chunk ?obs ?campaign ?chunk_timeout ?retries
    ?backoff ?chaos ?z ~config ~seed ~worker_init:m.m_worker_init
    ~rare:(require_rare m) ()
