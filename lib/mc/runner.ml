(* Parallel Monte-Carlo map-reduce over OCaml 5 domains.

   Determinism contract: the trial range is cut into fixed-size chunks
   whose size depends only on [trials] (never on the domain count);
   chunk [c] always runs on the RNG stream [Rng.split root c]; chunk
   results land in a per-chunk slot and are merged in chunk order
   after all workers join.  Workers claim chunks from a shared atomic
   cursor (a single-queue work-stealing discipline: idle domains
   steal the next unclaimed chunk), so scheduling is dynamic but the
   aggregate is bit-identical for any [domains]. *)

let env_domains = "FTQC_DOMAINS"

let default_domains () =
  match Sys.getenv_opt env_domains with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let resolve_domains = function
  | None -> default_domains ()
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Mc.Runner: domains must be >= 1"

(* At most 1024 chunks: plenty of slack for dynamic load balancing,
   cheap enough that per-chunk RNG setup is noise. *)
let resolve_chunk ~trials = function
  | None -> max 1 ((trials + 1023) / 1024)
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Mc.Runner: chunk must be >= 1"

(* Run chunks [lo_chunk, hi_chunk) and return their accumulators in
   chunk order.  [results] slots are written by at most one worker
   each; Domain.join publishes them to the caller. *)
let run_chunk_range ~domains ~root ~chunk ~trials ~lo_chunk ~hi_chunk
    ~worker_init ~trial ~init ~accum =
  let n = hi_chunk - lo_chunk in
  let results = Array.make (max n 0) init in
  let process ctx c =
    let idx = lo_chunk + c in
    let lo = idx * chunk and hi = min trials ((idx + 1) * chunk) in
    let rng = Rng.to_state (Rng.split root idx) in
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := accum !acc (trial ctx rng i)
    done;
    results.(c) <- !acc
  in
  let workers = min domains n in
  if workers <= 1 then begin
    if n > 0 then begin
      let ctx = worker_init () in
      for c = 0 to n - 1 do
        process ctx c
      done
    end
  end
  else begin
    (* Shared lazy values inside user trial code (code tables,
       decoders) are not safe to force concurrently in OCaml 5: run
       one throwaway trial sequentially first so every lazy the trial
       touches is already forced when the domains start. *)
    let warm_ctx = worker_init () in
    ignore (trial warm_ctx (Rng.to_state (Rng.split root lo_chunk)) 0);
    let cursor = Atomic.make 0 in
    let work ctx =
      let rec loop () =
        let c = Atomic.fetch_and_add cursor 1 in
        if c < n then begin
          process ctx c;
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (workers - 1) (fun _ -> Domain.spawn (fun () -> work (worker_init ())))
    in
    work warm_ctx;
    List.iter Domain.join spawned
  end;
  results

let map_reduce_ctx ?domains ?chunk ~trials ~seed ~worker_init ~init ~accum
    ~merge trial =
  if trials < 0 then invalid_arg "Mc.Runner: trials must be >= 0";
  let domains = resolve_domains domains in
  let chunk = resolve_chunk ~trials chunk in
  let nchunks = (trials + chunk - 1) / chunk in
  let root = Rng.root seed in
  let results =
    run_chunk_range ~domains ~root ~chunk ~trials ~lo_chunk:0
      ~hi_chunk:nchunks ~worker_init ~trial ~init ~accum
  in
  Array.fold_left merge init results

let map_reduce ?domains ?chunk ~trials ~seed ~init ~accum ~merge trial =
  map_reduce_ctx ?domains ?chunk ~trials ~seed
    ~worker_init:(fun () -> ())
    ~init ~accum ~merge
    (fun () rng i -> trial rng i)

let count_accum acc hit = if hit then acc + 1 else acc

let failures_ctx ?domains ?chunk ~trials ~seed ~worker_init trial =
  map_reduce_ctx ?domains ?chunk ~trials ~seed ~worker_init ~init:0
    ~accum:count_accum ~merge:( + ) trial

let failures ?domains ?chunk ~trials ~seed trial =
  failures_ctx ?domains ?chunk ~trials ~seed
    ~worker_init:(fun () -> ())
    (fun () rng i -> trial rng i)

let default_min_trials = 1000

let estimate_ctx ?domains ?chunk ?z ?target_half_width
    ?(min_trials = default_min_trials) ~trials ~seed ~worker_init trial =
  if trials < 0 then invalid_arg "Mc.Runner: trials must be >= 0";
  if min_trials < 1 then invalid_arg "Mc.Runner: min_trials must be >= 1";
  let domains = resolve_domains domains in
  let chunk = resolve_chunk ~trials chunk in
  let nchunks = (trials + chunk - 1) / chunk in
  let root = Rng.root seed in
  let run lo_chunk hi_chunk =
    run_chunk_range ~domains ~root ~chunk ~trials ~lo_chunk ~hi_chunk
      ~worker_init ~trial ~init:0 ~accum:count_accum
    |> Array.fold_left ( + ) 0
  in
  match target_half_width with
  | None ->
    Stats.estimate ?z ~failures:(run 0 nchunks) ~trials ()
  | Some target ->
    (* Geometric batches at fixed chunk boundaries: the stop decision
       after each batch depends only on aggregate counts, so early
       stopping is as domain-count-invariant as the counts are.  The
       floor [min_trials] is never undercut. *)
    let floor_trials = min trials (max 1 min_trials) in
    let chunks_for t = min nchunks ((t + chunk - 1) / chunk) in
    let rec go done_chunks failures =
      let done_trials = min trials (done_chunks * chunk) in
      let e = Stats.estimate ?z ~failures ~trials:done_trials () in
      if done_chunks >= nchunks then e
      else if done_trials >= floor_trials && Stats.half_width e <= target
      then e
      else begin
        let next_chunks =
          if done_trials = 0 then chunks_for floor_trials
          else max (done_chunks + 1) (chunks_for (2 * done_trials))
        in
        let next_chunks = min nchunks next_chunks in
        go next_chunks (failures + run done_chunks next_chunks)
      end
    in
    go 0 0

let estimate ?domains ?chunk ?z ?target_half_width ?min_trials ~trials ~seed
    trial =
  estimate_ctx ?domains ?chunk ?z ?target_half_width ?min_trials ~trials
    ~seed
    ~worker_init:(fun () -> ())
    (fun () rng i -> trial rng i)

(* Batched mode: one chunk = one 64-shot word.  The batch function
   returns an int64 whose bit k is the outcome of shot [base + k]; the
   engine masks the word to [count] live shots, popcounts, and merges
   per-chunk counts in chunk order — the same determinism contract as
   the scalar paths (chunk c always runs on [Rng.split root c]). *)

let word_size = 64

let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add
      (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let live_mask count =
  if count >= word_size then -1L
  else Int64.sub (Int64.shift_left 1L count) 1L

let failures_batched ?domains ~trials ~seed ~worker_init batch =
  if trials < 0 then invalid_arg "Mc.Runner: trials must be >= 0";
  let domains = resolve_domains domains in
  let nchunks = (trials + word_size - 1) / word_size in
  let root = Rng.root seed in
  let results = Array.make (max nchunks 0) 0 in
  let process ctx c =
    let base = c * word_size in
    let count = min word_size (trials - base) in
    let w = batch ctx (Rng.split root c) ~base ~count in
    results.(c) <- popcount64 (Int64.logand w (live_mask count))
  in
  let workers = min domains nchunks in
  if workers <= 1 then begin
    if nchunks > 0 then begin
      let ctx = worker_init () in
      for c = 0 to nchunks - 1 do
        process ctx c
      done
    end
  end
  else begin
    (* Same warmup discipline as the scalar engine: force every lazy
       the batch touches before domains race on it. *)
    let warm_ctx = worker_init () in
    ignore
      (batch warm_ctx (Rng.split root 0) ~base:0
         ~count:(min word_size trials));
    let cursor = Atomic.make 0 in
    let work ctx =
      let rec loop () =
        let c = Atomic.fetch_and_add cursor 1 in
        if c < nchunks then begin
          process ctx c;
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (workers - 1) (fun _ ->
          Domain.spawn (fun () -> work (worker_init ())))
    in
    work warm_ctx;
    List.iter Domain.join spawned
  end;
  Array.fold_left ( + ) 0 results

let estimate_batched ?domains ?z ~trials ~seed ~worker_init batch =
  let failures = failures_batched ?domains ~trials ~seed ~worker_init batch in
  Stats.estimate ?z ~failures ~trials ()
