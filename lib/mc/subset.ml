type model = { locations : int; kinds : int; p : float }
type fault = { loc : int; kind : int }

let validate m =
  if m.locations < 0 then invalid_arg "Mc.Subset: locations must be >= 0";
  if m.kinds < 1 then invalid_arg "Mc.Subset: kinds must be >= 1";
  if not (m.p >= 0.0 && m.p <= 1.0) then
    invalid_arg "Mc.Subset: p must be in [0,1]"

(* log C(n, k), exact enough for probability prefactors *)
let log_choose n k =
  let k = min k (n - k) in
  let acc = ref 0.0 in
  for i = 1 to k do
    acc := !acc +. log (float_of_int (n - k + i) /. float_of_int i)
  done;
  !acc

let class_prob m ~weight =
  validate m;
  let n = m.locations and w = weight in
  if w < 0 || w > n then 0.0
  else if m.p = 0.0 then if w = 0 then 1.0 else 0.0
  else if m.p = 1.0 then if w = n then 1.0 else 0.0
  else
    exp
      (log_choose n w
      +. (float_of_int w *. log m.p)
      +. (float_of_int (n - w) *. log1p (-.m.p)))

(* Cumulative sum keeps the tail monotone in [max_weight]: each step
   adds a nonnegative term, so 1 - cum never increases. *)
let tail_mass m ~max_weight =
  validate m;
  let cum = ref 0.0 in
  for w = 0 to min max_weight m.locations do
    cum := !cum +. class_prob m ~weight:w
  done;
  Float.max 0.0 (1.0 -. !cum)

(* Exact binomial for small values (unranking): every intermediate is
   an exact integer (c * (n-k+i) is divisible by i at step i). *)
let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let c = ref 1 in
    for i = 1 to k do
      c := !c * (n - k + i) / i
    done;
    !c
  end

let class_size_capped m ~weight ~cap =
  validate m;
  if cap < 0 then invalid_arg "Mc.Subset.class_size_capped: cap must be >= 0";
  let n = m.locations and w = weight in
  if w < 0 || w > n then 0
  else begin
    let sat = cap + 1 in
    (* C(n, w), saturating at [sat]: intermediates of the exact
       iterative product stay <= result * n, so overflow cannot occur
       before the saturation test fires *)
    let c = ref 1 in
    (let k = min w (n - w) in
     let i = ref 1 in
     while !i <= k && !c <= sat do
       c := !c * (n - k + !i) / !i;
       incr i
     done);
    let size = ref (min !c sat) in
    for _ = 1 to w do
      if !size < sat then size := min (!size * m.kinds) sat
    done;
    !size
  end

let unrank m ~weight ~index =
  validate m;
  let n = m.locations and w = weight in
  if w < 0 || w > n then invalid_arg "Mc.Subset.unrank: weight out of range";
  if index < 0 then invalid_arg "Mc.Subset.unrank: index must be >= 0";
  let kw = ref 1 in
  for _ = 1 to w do
    kw := !kw * m.kinds
  done;
  let subset_rank = index / !kw and kind_rank = index mod !kw in
  let faults = Array.make w { loc = 0; kind = 0 } in
  (* lexicographic subset unranking: the subsets whose smallest
     element is [a] number C(n-a-1, w-1) *)
  let rank = ref subset_rank and a = ref 0 in
  for j = 0 to w - 1 do
    let remaining = w - 1 - j in
    let rec advance () =
      let c = choose (n - !a - 1) remaining in
      if !rank < c then ()
      else begin
        rank := !rank - c;
        incr a;
        if !a >= n then invalid_arg "Mc.Subset.unrank: index out of range";
        advance ()
      end
    in
    advance ();
    faults.(j) <- { loc = !a; kind = 0 };
    incr a
  done;
  (* kinds in loc order, big-endian mixed radix *)
  let kr = ref kind_rank in
  for j = w - 1 downto 0 do
    faults.(j) <- { (faults.(j)) with kind = !kr mod m.kinds };
    kr := !kr / m.kinds
  done;
  faults

let sample m ~weight rng =
  validate m;
  let n = m.locations and w = weight in
  if w < 0 || w > n then invalid_arg "Mc.Subset.sample: weight out of range";
  (* Floyd's uniform w-subset of [0, n) *)
  let sel = ref [] in
  for j = n - w to n - 1 do
    let t = Random.State.int rng (j + 1) in
    if List.mem t !sel then sel := j :: !sel else sel := t :: !sel
  done;
  let locs = List.sort compare !sel in
  Array.of_list
    (List.map
       (fun loc ->
         let kind = if m.kinds = 1 then 0 else Random.State.int rng m.kinds in
         { loc; kind })
       locs)

type cls = { weight : int; prob : float; evals : int; exhaustive : bool }

let plan m ~max_weight ~samples_per_class ~enum_cutoff =
  validate m;
  if max_weight < 0 then invalid_arg "Mc.Subset.plan: max_weight must be >= 0";
  if samples_per_class < 1 then
    invalid_arg "Mc.Subset.plan: samples_per_class must be >= 1";
  if enum_cutoff < 1 then invalid_arg "Mc.Subset.plan: enum_cutoff must be >= 1";
  let cutoff = max enum_cutoff samples_per_class in
  List.init
    (min max_weight m.locations + 1)
    (fun weight ->
      let size = class_size_capped m ~weight ~cap:cutoff in
      let exhaustive = size <= cutoff in
      {
        weight;
        prob = class_prob m ~weight;
        evals = (if exhaustive then size else samples_per_class);
        exhaustive;
      })

let weighted ?z ~model ~max_weight classes =
  Stats.weighted ?z ~truncation:(tail_mass model ~max_weight) classes
