(* Splittable deterministic PRNG keys (SplitMix64-style mixing).

   A [key] names a stream, not a position in one: child streams are
   derived by hashing (parent, index), never by drawing from the
   parent, so any shard of a Monte-Carlo run can rebuild its stream
   from the root seed alone — the foundation of domain-count-invariant
   parallel runs. *)

type key = int64

let gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: a bijective avalanche mix of the full 64-bit
   state. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let root seed = mix (Int64.add (Int64.of_int seed) gamma)

(* gamma is odd, so gamma·(2i+1) is injective in i: distinct child
   indices always hash distinct inputs. *)
let split k i =
  if i < 0 then invalid_arg "Mc.Rng.split: negative index";
  mix (Int64.logxor k (Int64.mul gamma (Int64.of_int ((2 * i) + 1))))

let draw k n = mix (Int64.add k (Int64.mul gamma (Int64.of_int (n + 1))))

(* Fused Bernoulli digit fold over the raw stream — the inner loop of
   Frame.Sampler, hosted here so the mixing constants stay private
   while the whole fold compiles to straight-line unboxed int64 code:
   one cross-module call per (qubit, lane) instead of one [draw] call
   (boxed result and all) per digit.  Semantics are exactly the
   per-digit fold over [draw k (pos + j - start)] for j = start to
   stop - 1,
     acc <- if bit j of scaled then u lor acc else u land acc,
   expressed branch-free via the mask identity
     (u land acc) lor (m land (u lor acc))     (m = 11…1 when the bit
   is set, 0 otherwise), which equals [u lor acc] under m = -1 and
   [u land acc] under m = 0.

   The fold may stop early: draws are pure functions of (key,
   position), so skipping draws whose effect is fixed changes nothing
   else — once acc = 0 with only land-digits left (no set bit of
   [scaled] at or above [j]), the result is 0 whatever the remaining
   uniforms hold.  The position counter always advances by the full
   [stop - start] (the caller's contract), so call alignment is
   untouched. *)
let fold_digits k ~pos ~scaled ~start ~stop =
  let z = ref (Int64.add k (Int64.mul gamma (Int64.of_int (pos + 1)))) in
  let acc = ref 0L in
  let j = ref start in
  let live = ref (!j < stop) in
  while !live do
    let u =
      let z = !z in
      let z =
        Int64.mul
          (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul
          (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      Int64.logxor z (Int64.shift_right_logical z 31)
    in
    let m =
      Int64.neg (Int64.logand (Int64.shift_right_logical scaled !j) 1L)
    in
    acc :=
      Int64.logor
        (Int64.logand u !acc)
        (Int64.logand m (Int64.logor u !acc));
    z := Int64.add !z gamma;
    incr j;
    live :=
      !j < stop
      && not
           (!acc = 0L && Int64.shift_right_logical scaled !j = 0L)
  done;
  !acc

(* Bulk variant: one fold per selected row, folding row [i] of [sel]
   over positions [pos + i*(stop-start) ..] and XOR-ing the result
   into [rows.(sel.(i) * stride + off)] — the whole noise injection of
   one lane in a single call, so per-fold call and boxing overhead is
   paid once per (op, lane) instead of once per (qubit, lane).  The
   (key, position) pairs consumed are exactly those of [fold_digits]
   called per row in order, so the outputs are bit-identical to the
   row-at-a-time path whatever the iteration order of the caller
   (including its early exit, see above). *)
let fold_digits_xor_sel k ~pos ~scaled ~start ~stop ~rows ~sel ~stride ~off =
  let draws = stop - start in
  let n = Array.length sel in
  for i = 0 to n - 1 do
    let z =
      ref
        (Int64.add k
           (Int64.mul gamma (Int64.of_int (pos + (i * draws) + 1))))
    in
    let acc = ref 0L in
    let j = ref start in
    let live = ref (!j < stop) in
    while !live do
      let u =
        let z = !z in
        let z =
          Int64.mul
            (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L
        in
        let z =
          Int64.mul
            (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL
        in
        Int64.logxor z (Int64.shift_right_logical z 31)
      in
      let m =
        Int64.neg (Int64.logand (Int64.shift_right_logical scaled !j) 1L)
      in
      acc :=
        Int64.logor
          (Int64.logand u !acc)
          (Int64.logand m (Int64.logor u !acc));
      z := Int64.add !z gamma;
      incr j;
      live :=
        !j < stop
        && not
             (!acc = 0L && Int64.shift_right_logical scaled !j = 0L)
    done;
    let idx = (sel.(i) * stride) + off in
    rows.(idx) <- Int64.logxor rows.(idx) !acc
  done

let to_state k =
  let d n = Int64.to_int (draw k n) land max_int in
  Random.State.make [| d 0; d 1; d 2; d 3 |]

let derive seed path =
  Int64.to_int (List.fold_left split (root seed) path) land max_int

(* Stateful streams: the single randomness interface of the library.
   A [Stream] walks the raw outputs of a key; a [Legacy] delegates
   every draw to a wrapped [Random.State.t], so code rewritten against
   [t] behaves bit-identically when fed an old-style state. *)

type t =
  | Stream of { key : key; mutable pos : int }
  | Legacy of Random.State.t

let of_key key = Stream { key; pos = 0 }
let of_random_state s = Legacy s
let of_seed seed = of_key (root seed)

let bits64 = function
  | Stream st ->
    let v = draw st.key st.pos in
    st.pos <- st.pos + 1;
    v
  | Legacy s -> Random.State.bits64 s

let bool = function
  | Stream _ as t -> Int64.logand (bits64 t) 1L = 1L
  | Legacy s -> Random.State.bool s

(* 53 uniform bits, exactly the resolution of [Random.State.float]. *)
let float t bound =
  match t with
  | Stream _ ->
    Int64.to_float (Int64.shift_right_logical (bits64 t) 11)
    *. 0x1p-53 *. bound
  | Legacy s -> Random.State.float s bound

let int t n =
  if n <= 0 then invalid_arg "Mc.Rng.int: bound must be positive";
  match t with
  | Stream _ ->
    (* negligible modulo bias: n is tiny against 2^64 everywhere this
       is used (Pauli letter choices) *)
    Int64.to_int (Int64.unsigned_rem (bits64 t) (Int64.of_int n))
  | Legacy s -> Random.State.int s n
