(* Splittable deterministic PRNG keys (SplitMix64-style mixing).

   A [key] names a stream, not a position in one: child streams are
   derived by hashing (parent, index), never by drawing from the
   parent, so any shard of a Monte-Carlo run can rebuild its stream
   from the root seed alone — the foundation of domain-count-invariant
   parallel runs. *)

type key = int64

let gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: a bijective avalanche mix of the full 64-bit
   state. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let root seed = mix (Int64.add (Int64.of_int seed) gamma)

(* gamma is odd, so gamma·(2i+1) is injective in i: distinct child
   indices always hash distinct inputs. *)
let split k i =
  if i < 0 then invalid_arg "Mc.Rng.split: negative index";
  mix (Int64.logxor k (Int64.mul gamma (Int64.of_int ((2 * i) + 1))))

let draw k n = mix (Int64.add k (Int64.mul gamma (Int64.of_int (n + 1))))

let to_state k =
  let d n = Int64.to_int (draw k n) land max_int in
  Random.State.make [| d 0; d 1; d 2; d 3 |]

let derive seed path =
  Int64.to_int (List.fold_left split (root seed) path) land max_int

(* Stateful streams: the single randomness interface of the library.
   A [Stream] walks the raw outputs of a key; a [Legacy] delegates
   every draw to a wrapped [Random.State.t], so code rewritten against
   [t] behaves bit-identically when fed an old-style state. *)

type t =
  | Stream of { key : key; mutable pos : int }
  | Legacy of Random.State.t

let of_key key = Stream { key; pos = 0 }
let of_random_state s = Legacy s
let of_seed seed = of_key (root seed)

let bits64 = function
  | Stream st ->
    let v = draw st.key st.pos in
    st.pos <- st.pos + 1;
    v
  | Legacy s -> Random.State.bits64 s

let bool = function
  | Stream _ as t -> Int64.logand (bits64 t) 1L = 1L
  | Legacy s -> Random.State.bool s

(* 53 uniform bits, exactly the resolution of [Random.State.float]. *)
let float t bound =
  match t with
  | Stream _ ->
    Int64.to_float (Int64.shift_right_logical (bits64 t) 11)
    *. 0x1p-53 *. bound
  | Legacy s -> Random.State.float s bound

let int t n =
  if n <= 0 then invalid_arg "Mc.Rng.int: bound must be positive";
  match t with
  | Stream _ ->
    (* negligible modulo bias: n is tiny against 2^64 everywhere this
       is used (Pauli letter choices) *)
    Int64.to_int (Int64.unsigned_rem (bits64 t) (Int64.of_int n))
  | Legacy s -> Random.State.int s n
