(** Parallel Monte-Carlo map-reduce over OCaml 5 domains, behind one
    engine-polymorphic API.

    A driver describes {e what} to run once, as a {!model} — a scalar
    per-trial predicate, optionally a bit-sliced batch kernel and a
    rare-event fault model over the same experiment — and picks {e how}
    to run it per call with an {!Engine.t}:

    - [`Scalar] (default): one trial per shot on a [Random.State.t]
      stream.  The reference semantics.
    - [`Batch {tile_width}]: 64 shots per word, [tile_width / 64]
      lanes per tile.  Requires [model.batch].
    - [`Rare config]: weight-class subset sampling ({!Subset}).
      Requires [model.rare].  Reports weighted estimates with the
      truncation bound folded into the interval ({!estimate_rare}).

    Selecting an engine the model does not implement raises
    [Invalid_argument] naming the missing capability and the engines
    the model does support.

    {2 Determinism}

    The trial range is cut into fixed-size chunks whose size depends
    only on the trial count; each chunk runs on its own {!Rng} stream
    ([Rng.split root chunk_index]) and results are merged in chunk
    order.  Consequently the aggregate is **bit-identical for any
    domain count** — [~domains:1] (fully sequential, no spawning) is
    the reference semantics and [~domains:n] is just faster.  Workers
    claim chunks from a shared atomic cursor, so load balancing is
    dynamic even when trial costs vary.

    Batch runs add cross-width determinism: lane [j] of tile [c]
    covers the same 64 shots as the width-64 chunk [c·lanes + j] and
    receives that chunk's key, so counts are bit-identical for every
    tile width too (provided the batch function gives each lane its
    own key's draw sequence — {!Frame.Sampler} tiles do).

    Rare runs execute each weight class as its own deterministic
    chunk ledger (class seed [Rng.derive seed [w]], campaign engine
    ["rare:w<w>"]), so per-class counts — and therefore the weighted
    estimate — inherit the same any-domain-count bit-identity and
    checkpoint/resume behavior.

    [domains] defaults to the [FTQC_DOMAINS] environment variable if
    set, else [Domain.recommended_domain_count ()].

    Warmup: when more than one worker will run, the engine first runs
    one discarded trial (or tile) sequentially, so that any [lazy]
    the trial forces (code tables, decoders) is already forced before
    domains race on it — concurrent [Lazy.force] is unsafe in OCaml 5.
    Trial, batch and rare-evaluate functions therefore must tolerate
    an extra invocation; pure trials trivially do.

    {2 Supervision and checkpointing}

    Every entry point takes watchdog/retry/chaos controls, and the
    counting entry points ({!failures}, {!estimate}, {!estimate_rare})
    additionally take [?campaign:Campaign.t] (default: the ambient
    {!Campaign.current} store, if set):

    - [?chunk_timeout] (seconds, default 0 = off) arms a cooperative
      per-chunk watchdog: the deadline is checked between trials, so a
      chunk stalled past the timeout is abandoned and retried.
    - [?retries] (default 2) bounds retry attempts per chunk with
      exponential backoff starting at [?backoff] (default 0.1 s,
      doubling per attempt).  A retry re-derives the chunk's RNG
      stream from scratch, so recovery cannot change any count.
      Exhausted retries raise {!Chunk_failed} — after flushing the
      checkpoint, so completed chunks survive.
    - With a campaign store, each completed chunk's count is recorded
      (and periodically flushed, atomically); chunks already in the
      store are replayed from cache, making an interrupted run
      resumed from its checkpoint bit-identical to an uninterrupted
      one — including the stopping point of [target_half_width]
      early-stopping runs, whose batch decisions depend only on
      aggregate counts.
    - When [Campaign.stop_requested] turns true (e.g. a SIGINT routed
      through [Campaign.install_signal_handlers]), workers stop
      claiming chunks, the checkpoint is flushed, and
      [Campaign.Interrupted] is raised with a resume token.
    - [?chaos] (test only, default {!Chaos.none}) injects failures at
      chunk/trial boundaries to exercise all of the above.

    {2 Telemetry}

    Every entry point takes [?obs:Obs.t] (default [Obs.none], whose
    no-op recording keeps the hot path overhead-free).  A live handle
    receives, per engine run: the trial/chunk totals ([mc.trials],
    [mc.chunks], [mc.runs] counters), per-chunk wall times (summary
    and fixed-bucket histogram [mc.chunk_wall_s], folded in chunk
    order; checkpoint-replayed chunks are not observed), chunks
    claimed per worker ([mc.chunks_per_worker]), the sequential warmup
    cost ([mc.warmup_s]), supervision counters ([mc.chunks_resumed],
    [mc.chunk_retries], [mc.chunk_timeouts]), aggregate wall time and
    throughput ([mc.wall_s], [mc.shots_per_s]), an [mc.run] event
    whose [engine] field is ["scalar"], ["batch"] or ["rare"], and —
    under early stopping — one [mc.early_stop_batch] event per batch
    decision.  A rare run emits one [mc.run] per weight class.
    Instrumentation draws no randomness and gates no control flow, so
    results are bit-identical with telemetry on or off. *)

(** The default domain count ([FTQC_DOMAINS] env override, else
    [Domain.recommended_domain_count ()]). *)
val default_domains : unit -> int

(** The environment variable consulted by {!default_domains}
    ("FTQC_DOMAINS"). *)
val env_domains : string

(** Raised when a chunk fails [retries + 1] consecutive attempts;
    carries the final attempt's error.  The checkpoint (if any) is
    flushed first. *)
exception
  Chunk_failed of { chunk : int; attempts : int; message : string }

(** Default retry budget per chunk (2). *)
val default_retries : int

(** [set_default_chunk_timeout t] — ambient watchdog default used
    when an entry point receives no explicit [?chunk_timeout] (the
    CLI sets it from [--chunk-timeout]; initial value 0 = off). *)
val set_default_chunk_timeout : float -> unit

val default_chunk_timeout : unit -> float

(** Default base backoff delay in seconds (0.1, doubling per
    attempt).  Each retry sleep is additionally scaled by a
    deterministic jitter factor in [\[0.5, 1.5)], drawn from a stream
    split off the chunk's own RNG key under a reserved tag — so a
    fleet of workers retrying the same wave of chunks de-synchronizes
    its sleeps, while consuming no draw of any chunk's trial stream
    (counts are unaffected by construction). *)
val default_backoff : float

(** [default_chunk ~trials] — the chunk size an entry point picks
    when the caller passes no [?chunk] (at most 1024 chunks).
    Exported so out-of-process shard planners ([Svc.Exec]) can
    reproduce the exact campaign job key a driver's run will use. *)
val default_chunk : trials:int -> int

(** {1 Models}

    A model bundles everything a driver knows how to execute; the
    engine argument of {!failures}/{!estimate} picks the part to
    run. *)

(** Rare-event capability: an explicit fault model plus a
    deterministic evaluator.  [evaluate ctx faults] must depend only
    on [ctx] (per-worker scratch) and the configuration — it is
    called on enumerated configurations in arbitrary chunk order and
    must be a pure function of the faults. *)
type 'ctx rare_model = {
  fault_model : Subset.model;
  evaluate : 'ctx -> Subset.fault array -> bool;
}

type 'ctx model

(** [model ~worker_init ?trial ?batch ?rare ()] — [worker_init] runs
    once per worker domain (reusable scratch buffers, simulator
    state).  [trial ctx rng i] is the scalar per-shot predicate;
    [batch ctx keys ~base ~count] the bit-sliced kernel (one {!Rng}
    key per lane; bit [k] of word [j] = outcome of shot
    [base + 64·j + k]); [rare] the fault-path capability.  At least
    one part must be given. *)
val model :
  worker_init:(unit -> 'ctx) ->
  ?trial:('ctx -> Random.State.t -> int -> bool) ->
  ?batch:('ctx -> Rng.key array -> base:int -> count:int -> int64 array) ->
  ?rare:'ctx rare_model ->
  unit ->
  'ctx model

(** [scalar trial] — the one-liner for context-free scalar drivers:
    [model ~worker_init:(fun () -> ()) ~trial:(fun () -> trial) ()]. *)
val scalar : (Random.State.t -> int -> bool) -> unit model

(** {1 Generic map-reduce} *)

(** [map_reduce ?domains ?chunk ?obs ?chunk_timeout ?retries ?backoff
    ?chaos ~trials ~seed ~init ~accum ~merge trial] — run
    [trial rng i] for i = 0..trials−1, folding each chunk with
    [accum] from [init] and the per-chunk results, in chunk order,
    with [merge].  [merge] must be associative with [init] as
    identity; determinism then holds even for order-sensitive
    payloads such as floats.  The per-trial function must be
    self-contained: domains share nothing mutable.  Supervision
    (watchdog/retry/stop) applies, but generic accumulators are not
    checkpointed — only the counting entry points persist. *)
val map_reduce :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  trials:int ->
  seed:int ->
  init:'acc ->
  accum:('acc -> 'a -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  (Random.State.t -> int -> 'a) ->
  'acc

(** [map_reduce_ctx] — like {!map_reduce} with a per-worker context
    ([worker_init] runs once in each worker domain). *)
val map_reduce_ctx :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  trials:int ->
  seed:int ->
  worker_init:(unit -> 'ctx) ->
  init:'acc ->
  accum:('acc -> 'a -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  ('ctx -> Random.State.t -> int -> 'a) ->
  'acc

(** {1 Counting}

    [?engine] defaults to [`Scalar].  [?chunk] applies to the scalar
    and rare engines (the batch engine's chunk is its tile).
    Checkpointed through [?campaign] (default: the ambient
    {!Campaign.current} store). *)

(** [failures ?engine ~trials ~seed model] — count [true] outcomes.
    Under [`Rare] the count is the {e raw} number of failing
    evaluated configurations across all weight classes (useful for
    identity checks; the statistically meaningful quantity is
    {!estimate_rare}), and [trials] is ignored in favor of the
    config's per-class budgets. *)
val failures :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  ?engine:Engine.t ->
  trials:int ->
  seed:int ->
  'ctx model ->
  int

(** The default early-stopping trial floor (1000). *)
val default_min_trials : int

(** [estimate ?engine ?z ?target_half_width ?min_trials ~trials ~seed
    model] — failure-rate estimate with Wilson score interval.  When
    [target_half_width] is given (scalar engine only), trials run in
    geometrically growing batches (at fixed chunk boundaries, so the
    stopping decision is domain-count-invariant too) and stop early
    once the interval half-width drops to the target — but never
    before [min_trials] (default {!default_min_trials}) trials, and
    never beyond [trials].  Early stopping honors the same
    checkpoint/supervision hooks as the straight-through path: a
    resumed run replays cached chunk counts and therefore stops at
    the identical batch boundary.

    Under [`Rare], the returned record is
    [Stats.weighted_to_estimate] of {!estimate_rare}: [rate]/CI are
    the weighted values (truncation bound included in [ci_high]),
    [failures]/[trials] the raw evaluation totals. *)
val estimate :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  ?engine:Engine.t ->
  ?z:float ->
  ?target_half_width:float ->
  ?min_trials:int ->
  trials:int ->
  seed:int ->
  'ctx model ->
  Stats.estimate

(** [estimate_rare ?config ~seed model] — the full weighted estimate:
    per-class sums, stratified variance, and the truncation bound
    ({!Subset.tail_mass}) folded into the upper CI edge.  Each weight
    class runs as its own supervised, checkpointable chunk ledger
    (campaign engine ["rare:w<w>"], seed [Rng.derive seed [w]]), so
    an interrupted rare campaign resumes bit-identically at any
    domain count. *)
val estimate_rare :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  ?z:float ->
  ?config:Engine.rare ->
  seed:int ->
  'ctx model ->
  Stats.weighted

(** {1 Batched helpers} *)

(** Shots per lane word (64). *)
val word_size : int

(** [popcount64 w] — number of set bits of [w]. *)
val popcount64 : int64 -> int

(** [live_mask count] — a word with the low [min count 64] bits set
    (the engine's ragged-tail mask; [count >= 64] gives all ones). *)
val live_mask : int -> int64
