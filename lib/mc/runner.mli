(** Parallel Monte-Carlo map-reduce over OCaml 5 domains.

    The trial range is cut into fixed-size chunks whose size depends
    only on the trial count; each chunk runs on its own {!Rng} stream
    ([Rng.split root chunk_index]) and results are merged in chunk
    order.  Consequently the aggregate is **bit-identical for any
    domain count** — [~domains:1] (fully sequential, no spawning) is
    the reference semantics and [~domains:n] is just faster.  Workers
    claim chunks from a shared atomic cursor, so load balancing is
    dynamic even when trial costs vary.

    [domains] defaults to the [FTQC_DOMAINS] environment variable if
    set, else [Domain.recommended_domain_count ()].

    Warmup: when more than one worker will run, the engine first runs
    one discarded trial (index 0) sequentially, so that any [lazy]
    the trial forces (code tables, decoders) is already forced before
    domains race on it — concurrent [Lazy.force] is unsafe in OCaml 5.
    Trial functions therefore must tolerate an extra invocation; pure
    trials (anything without external side effects) trivially do.

    {2 Supervision and checkpointing}

    Every entry point takes watchdog/retry/chaos controls, and the
    counting entry points ({!failures}, {!estimate} and their [_ctx] /
    [_batched] variants) additionally take [?campaign:Campaign.t]
    (default: the ambient {!Campaign.current} store, if set):

    - [?chunk_timeout] (seconds, default 0 = off) arms a cooperative
      per-chunk watchdog: the deadline is checked between trials, so a
      chunk stalled past the timeout is abandoned and retried.
    - [?retries] (default 2) bounds retry attempts per chunk with
      exponential backoff starting at [?backoff] (default 0.1 s,
      doubling per attempt).  A retry re-derives the chunk's RNG
      stream from scratch, so recovery cannot change any count.
      Exhausted retries raise {!Chunk_failed} — after flushing the
      checkpoint, so completed chunks survive.
    - With a campaign store, each completed chunk's count is recorded
      (and periodically flushed, atomically); chunks already in the
      store are replayed from cache, making an interrupted run
      resumed from its checkpoint bit-identical to an uninterrupted
      one — including the stopping point of [target_half_width]
      early-stopping runs, whose batch decisions depend only on
      aggregate counts.
    - When [Campaign.stop_requested] turns true (e.g. a SIGINT routed
      through [Campaign.install_signal_handlers]), workers stop
      claiming chunks, the checkpoint is flushed, and
      [Campaign.Interrupted] is raised with a resume token.
    - [?chaos] (test only, default {!Chaos.none}) injects failures at
      chunk/trial boundaries to exercise all of the above.

    {2 Telemetry}

    Every entry point takes [?obs:Obs.t] (default [Obs.none], whose
    no-op recording keeps the hot path overhead-free).  A live handle
    receives, per engine run: the trial/chunk totals ([mc.trials],
    [mc.chunks], [mc.runs] counters), per-chunk wall times (summary
    and fixed-bucket histogram [mc.chunk_wall_s], folded in chunk
    order; checkpoint-replayed chunks are not observed), chunks
    claimed per worker ([mc.chunks_per_worker]), the sequential warmup
    cost ([mc.warmup_s]), supervision counters ([mc.chunks_resumed],
    [mc.chunk_retries], [mc.chunk_timeouts]), aggregate wall time and
    throughput ([mc.wall_s], [mc.shots_per_s]), an [mc.run] event, and
    — under early stopping — one [mc.early_stop_batch] event per
    batch decision.  Instrumentation draws no randomness and gates no
    control flow, so results are bit-identical with telemetry on or
    off.  Progress/ETA lines on stderr are opt-in via the
    [FTQC_PROGRESS] environment variable ({!Obs.Progress}),
    independent of [?obs]. *)

(** The default domain count ([FTQC_DOMAINS] env override, else
    [Domain.recommended_domain_count ()]). *)
val default_domains : unit -> int

(** The environment variable consulted by {!default_domains}
    ("FTQC_DOMAINS"). *)
val env_domains : string

(** Raised when a chunk fails [retries + 1] consecutive attempts;
    carries the final attempt's error.  The checkpoint (if any) is
    flushed first. *)
exception
  Chunk_failed of { chunk : int; attempts : int; message : string }

(** Default retry budget per chunk (2). *)
val default_retries : int

(** [set_default_chunk_timeout t] — ambient watchdog default used
    when an entry point receives no explicit [?chunk_timeout] (the
    CLI sets it from [--chunk-timeout]; initial value 0 = off). *)
val set_default_chunk_timeout : float -> unit

val default_chunk_timeout : unit -> float

(** Default base backoff delay in seconds (0.1, doubling per
    attempt). *)
val default_backoff : float

(** [map_reduce ?domains ?chunk ?obs ?chunk_timeout ?retries ?backoff
    ?chaos ~trials ~seed ~init ~accum ~merge trial] — run
    [trial rng i] for i = 0..trials−1, folding each chunk with
    [accum] from [init] and the per-chunk results, in chunk order,
    with [merge].  [merge] must be associative with [init] as
    identity; determinism then holds even for order-sensitive
    payloads such as floats.  The per-trial function must be
    self-contained: domains share nothing mutable.  Supervision
    (watchdog/retry/stop) applies, but generic accumulators are not
    checkpointed — only the counting entry points persist. *)
val map_reduce :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  trials:int ->
  seed:int ->
  init:'acc ->
  accum:('acc -> 'a -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  (Random.State.t -> int -> 'a) ->
  'acc

(** [map_reduce_ctx] — like {!map_reduce} with a per-worker context
    ([worker_init] runs once in each worker domain; use it for
    reusable scratch buffers or per-domain simulator state). *)
val map_reduce_ctx :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  trials:int ->
  seed:int ->
  worker_init:(unit -> 'ctx) ->
  init:'acc ->
  accum:('acc -> 'a -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  ('ctx -> Random.State.t -> int -> 'a) ->
  'acc

(** [failures ?domains ?chunk ?obs ?campaign ... ~trials ~seed trial]
    — count [true] trial outcomes.  Checkpointed through [?campaign]
    (default: the ambient {!Campaign.current} store). *)
val failures :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  int

val failures_ctx :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  trials:int ->
  seed:int ->
  worker_init:(unit -> 'ctx) ->
  ('ctx -> Random.State.t -> int -> bool) ->
  int

(** The default early-stopping trial floor (1000). *)
val default_min_trials : int

(** [estimate ?domains ?chunk ?obs ?campaign ... ?z ?target_half_width
    ?min_trials ~trials ~seed trial] — failure-rate estimate with
    Wilson score interval.  When [target_half_width] is given, trials
    run in geometrically growing batches (at fixed chunk boundaries,
    so the stopping decision is domain-count-invariant too) and stop
    early once the interval half-width drops to the target — but
    never before [min_trials] (default {!default_min_trials}) trials,
    and never beyond [trials].  Early stopping honors the same
    checkpoint/supervision hooks as the straight-through path: a
    resumed run replays cached chunk counts and therefore stops at
    the identical batch boundary. *)
val estimate :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  ?z:float ->
  ?target_half_width:float ->
  ?min_trials:int ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  Stats.estimate

val estimate_ctx :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  ?z:float ->
  ?target_half_width:float ->
  ?min_trials:int ->
  trials:int ->
  seed:int ->
  worker_init:(unit -> 'ctx) ->
  ('ctx -> Random.State.t -> int -> bool) ->
  Stats.estimate

(** {1 Batched (bit-sliced) mode}

    One chunk = one {e tile} of [tile_width / 64] 64-shot lanes
    (default [?tile_width] 64 = one lane; any positive multiple of 64
    is accepted — 256 and 512 are the tuned widths).  The batch
    function receives one {!Rng} key per lane and must return an
    [int64 array] with at least one word per lane; bit [k] of word
    [j] is the failure outcome of Monte-Carlo shot [base + 64·j + k]
    (shots at or beyond [count] are masked off by the engine — the
    ragged tail of a trial count that is not a multiple of the tile
    width).

    Cross-width determinism: lane [j] of tile [c] covers the same 64
    shots as the width-64 chunk [c·lanes + j] and receives that
    chunk's key, [Rng.split root (c·lanes + j)]; per-chunk popcounts
    merge in chunk order.  Provided the batch function gives each
    lane its own key's draw sequence ({!Frame.Sampler} tiles do by
    construction), the total is bit-identical for every tile width
    {e and} every domain count.  The same warmup discipline applies:
    with more than one worker, one discarded tile (chunk 0) runs
    sequentially first, so batch functions must tolerate an extra
    invocation.

    Supervision mirrors the scalar engine (campaign chunks are whole
    tiles under engine ["batch"], so width-64 runs keep the exact
    pre-tile job identity and old checkpoints stay replayable), with
    two adaptations: the watchdog deadline is checked after the
    uninterruptible batch call, and chaos [on_trial] hooks do not
    fire (a tile has no per-trial boundary — use [on_chunk_start]). *)

(** Shots per lane word (64). *)
val word_size : int

(** [popcount64 w] — number of set bits of [w]. *)
val popcount64 : int64 -> int

(** [live_mask count] — a word with the low [min count 64] bits set
    (the engine's ragged-tail mask; [count >= 64] gives all ones). *)
val live_mask : int -> int64

(** [failures_batched ?domains ?obs ?campaign ... ?tile_width ~trials
    ~seed ~worker_init batch] — total failure count over [trials]
    shots, [tile_width] per chunk. *)
val failures_batched :
  ?domains:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  ?tile_width:int ->
  trials:int ->
  seed:int ->
  worker_init:(unit -> 'ctx) ->
  ('ctx -> Rng.key array -> base:int -> count:int -> int64 array) ->
  int

(** [estimate_batched] — {!failures_batched} wrapped in a
    {!Stats.estimate}. *)
val estimate_batched :
  ?domains:int ->
  ?obs:Obs.t ->
  ?campaign:Campaign.t ->
  ?chunk_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?chaos:Chaos.t ->
  ?tile_width:int ->
  ?z:float ->
  trials:int ->
  seed:int ->
  worker_init:(unit -> 'ctx) ->
  ('ctx -> Rng.key array -> base:int -> count:int -> int64 array) ->
  Stats.estimate
