type batch = { tile_width : int }
type rare = { max_weight : int; samples_per_class : int; enum_cutoff : int }
type t = [ `Scalar | `Batch of batch | `Rare of rare ]

let default_tile_width = 64
let default_max_weight = 4
let default_samples_per_class = 2000
let default_enum_cutoff = 8192

let default_rare =
  {
    max_weight = default_max_weight;
    samples_per_class = default_samples_per_class;
    enum_cutoff = default_enum_cutoff;
  }

let scalar = `Scalar

let check_tile_width w =
  if w < 64 || w mod 64 <> 0 then
    invalid_arg "Mc.Engine: tile_width must be a positive multiple of 64"

let batch ?(tile_width = default_tile_width) () =
  check_tile_width tile_width;
  `Batch { tile_width }

let rare ?(max_weight = default_max_weight)
    ?(samples_per_class = default_samples_per_class)
    ?(enum_cutoff = default_enum_cutoff) () =
  if max_weight < 0 then invalid_arg "Mc.Engine: max_weight must be >= 0";
  if samples_per_class < 1 then
    invalid_arg "Mc.Engine: samples_per_class must be >= 1";
  if enum_cutoff < 1 then invalid_arg "Mc.Engine: enum_cutoff must be >= 1";
  `Rare { max_weight; samples_per_class; enum_cutoff }

let name = function
  | `Scalar -> "scalar"
  | `Batch _ -> "batch"
  | `Rare _ -> "rare"

let to_string = function
  | `Scalar -> "scalar"
  | `Batch { tile_width } -> Printf.sprintf "batch:w%d" tile_width
  | `Rare { max_weight; samples_per_class; _ } ->
    Printf.sprintf "rare:W%d:k%d" max_weight samples_per_class

let usage =
  Printf.sprintf
    "valid engines and options:\n\
    \  scalar                                     per-shot reference engine; \
     takes no engine options\n\
    \  batch  [--tile-width N]                    bit-sliced, N shots per \
     tile (positive multiple of 64, default %d)\n\
    \  rare   [--max-weight W] [--samples-per-class K]\n\
    \                                             weight-class subset \
     sampling (defaults W=%d, K=%d)"
    default_tile_width default_max_weight default_samples_per_class

let reject fmt =
  Printf.ksprintf (fun msg -> Error (msg ^ "\n" ^ usage)) fmt

let of_cli ?engine ?tile_width ?max_weight ?samples_per_class () =
  let no_rare_opts what =
    match (max_weight, samples_per_class) with
    | None, None -> Ok ()
    | Some _, _ ->
      reject "--max-weight applies to the rare engine only (got engine %s)"
        what
    | _, Some _ ->
      reject
        "--samples-per-class applies to the rare engine only (got engine %s)"
        what
  in
  match Option.value engine ~default:"scalar" with
  | "scalar" -> (
    match tile_width with
    | Some w when w <> default_tile_width ->
      reject "--tile-width %d applies to the batch engine only" w
    | _ -> (
      match no_rare_opts "scalar" with Ok () -> Ok `Scalar | Error e -> Error e)
    )
  | "batch" -> (
    match no_rare_opts "batch" with
    | Error e -> Error e
    | Ok () -> (
      let w = Option.value tile_width ~default:default_tile_width in
      match batch ~tile_width:w () with
      | e -> Ok e
      | exception Invalid_argument _ ->
        reject "--tile-width %d: must be a positive multiple of 64" w))
  | "rare" -> (
    match tile_width with
    | Some w when w <> default_tile_width ->
      reject "--tile-width %d applies to the batch engine only" w
    | _ -> (
      let mw = Option.value max_weight ~default:default_max_weight in
      let k = Option.value samples_per_class ~default:default_samples_per_class
      in
      match rare ~max_weight:mw ~samples_per_class:k () with
      | e -> Ok e
      | exception Invalid_argument _ ->
        reject
          "invalid rare-engine options (--max-weight %d, \
           --samples-per-class %d): max-weight must be >= 0, \
           samples-per-class >= 1"
          mw k))
  | other -> reject "unknown engine %S" other
