(** Chaos-injection hooks for testing the Monte-Carlo supervision
    layer.

    A {!t} bundles callbacks that {!Runner} invokes at chunk and trial
    boundaries of a supervised run.  Tests pass hooks through the
    [?chaos] argument of runner entry points to simulate worker death
    ({!kill_chunk}), stalls past the watchdog timeout ({!stall_chunk}),
    trial-level exceptions ({!fail_trial}) and operator interrupts
    ({!at_chunk} + [Campaign.request_stop]), then assert that
    supervision recovers with bit-identical counts or fails with a
    clean diagnostic.  Production code leaves the argument at its
    default {!none}, which the runner recognizes physically so the hot
    path pays nothing. *)

(** Raised by {!kill_chunk} to simulate a worker dying mid-campaign.
    Retryable: supervision re-derives the chunk's RNG stream and runs
    it again, so a transient kill cannot change any count. *)
exception Killed of string

type t = {
  on_chunk_start : chunk:int -> attempt:int -> unit;
  on_trial : chunk:int -> attempt:int -> trial:int -> unit;
}

(** The no-op bundle (the runner skips all hook plumbing when it
    receives this exact value). *)
val none : t

(** [is_none c] — physical equality with {!none}. *)
val is_none : t -> bool

(** [make ?on_chunk_start ?on_trial ()] — custom hooks; omitted
    callbacks default to no-ops.  [chunk] is the absolute chunk
    index, [attempt] counts retries from 0, [trial] is the absolute
    trial index. *)
val make :
  ?on_chunk_start:(chunk:int -> attempt:int -> unit) ->
  ?on_trial:(chunk:int -> attempt:int -> trial:int -> unit) ->
  unit ->
  t

(** [kill_chunk ?once ~chunk ()] — raise {!Killed} when [chunk] starts
    (only on attempt 0 if [once], the default — so a retry succeeds). *)
val kill_chunk : ?once:bool -> chunk:int -> unit -> t

(** [fail_trial ?once ~chunk ~trial ()] — raise [Failure] just before
    the given trial of the given chunk (attempt 0 only if [once]). *)
val fail_trial : ?once:bool -> chunk:int -> trial:int -> unit -> t

(** [stall_chunk ?once ~chunk ~seconds ()] — sleep at chunk start,
    long enough to trip a watchdog timeout (attempt 0 only if
    [once]). *)
val stall_chunk : ?once:bool -> chunk:int -> seconds:float -> unit -> t

(** [at_chunk ~chunk f] — run [f ()] exactly once, the first time
    [chunk] is attempted (e.g. [Campaign.request_stop] to simulate a
    SIGINT landing at a deterministic point). *)
val at_chunk : chunk:int -> (unit -> unit) -> t

(** [all l] — fan each hook out to every bundle in [l], in order. *)
val all : t list -> t
