(** Chaos-injection hooks for testing the Monte-Carlo supervision
    layer.

    A {!t} bundles callbacks that {!Runner} invokes at chunk and trial
    boundaries of a supervised run.  Tests pass hooks through the
    [?chaos] argument of runner entry points to simulate worker death
    ({!kill_chunk}), stalls past the watchdog timeout ({!stall_chunk}),
    trial-level exceptions ({!fail_trial}) and operator interrupts
    ({!at_chunk} + [Campaign.request_stop]), then assert that
    supervision recovers with bit-identical counts or fails with a
    clean diagnostic.  Production code leaves the argument at its
    default {!none}, which the runner recognizes physically so the hot
    path pays nothing. *)

(** Raised by {!kill_chunk} to simulate a worker dying mid-campaign.
    Retryable: supervision re-derives the chunk's RNG stream and runs
    it again, so a transient kill cannot change any count. *)
exception Killed of string

type t = {
  on_chunk_start : chunk:int -> attempt:int -> unit;
  on_trial : chunk:int -> attempt:int -> trial:int -> unit;
}

(** The no-op bundle (the runner skips all hook plumbing when it
    receives this exact value). *)
val none : t

(** [is_none c] — physical equality with {!none}. *)
val is_none : t -> bool

(** [make ?on_chunk_start ?on_trial ()] — custom hooks; omitted
    callbacks default to no-ops.  [chunk] is the absolute chunk
    index, [attempt] counts retries from 0, [trial] is the absolute
    trial index. *)
val make :
  ?on_chunk_start:(chunk:int -> attempt:int -> unit) ->
  ?on_trial:(chunk:int -> attempt:int -> trial:int -> unit) ->
  unit ->
  t

(** [kill_chunk ?once ~chunk ()] — raise {!Killed} when [chunk] starts
    (only on attempt 0 if [once], the default — so a retry succeeds). *)
val kill_chunk : ?once:bool -> chunk:int -> unit -> t

(** [fail_trial ?once ~chunk ~trial ()] — raise [Failure] just before
    the given trial of the given chunk (attempt 0 only if [once]). *)
val fail_trial : ?once:bool -> chunk:int -> trial:int -> unit -> t

(** [stall_chunk ?once ~chunk ~seconds ()] — sleep at chunk start,
    long enough to trip a watchdog timeout (attempt 0 only if
    [once]). *)
val stall_chunk : ?once:bool -> chunk:int -> seconds:float -> unit -> t

(** [at_chunk ~chunk f] — run [f ()] exactly once, the first time
    [chunk] is attempted (e.g. [Campaign.request_stop] to simulate a
    SIGINT landing at a deterministic point). *)
val at_chunk : chunk:int -> (unit -> unit) -> t

(** [all l] — fan each hook out to every bundle in [l], in order. *)
val all : t list -> t

(** {1 Fleet-level chaos}

    Faults that target worker {e processes} of a distributed fleet
    rather than chunks of an in-process run.  Workers live in separate
    address spaces (spawned by re-exec), so these are serializable
    specs, not closures: [Svc.Fleet] ships them to the victim through
    an environment variable.  The victim is addressed by
    (worker slot, spawn generation, dispatch ordinal); generation
    defaults to 0 so a restarted worker does not re-trigger the fault,
    which is what lets the byte-identity chaos test converge. *)

type fleet_event =
  | Kill_worker  (** SIGKILL self at dispatch — crash without cleanup *)
  | Hang_worker of float  (** sleep this long before computing *)
  | Drop_result  (** compute but never send the reply *)

type fleet = {
  f_worker : int;
  f_gen : int;
  f_nth : int;  (** 0-based ordinal of the triggering dispatch *)
  f_event : fleet_event;
}

(** [kill_worker ?gen ?nth ~worker ()] — the worker SIGKILLs itself
    when its [nth] dispatch arrives (defaults: generation 0, first
    dispatch). *)
val kill_worker : ?gen:int -> ?nth:int -> worker:int -> unit -> fleet

(** [hang_worker ?gen ?nth ~worker ~seconds ()] — sleep before
    computing, long enough to trip the coordinator's hang watchdog. *)
val hang_worker :
  ?gen:int -> ?nth:int -> worker:int -> seconds:float -> unit -> fleet

(** [drop_result ?gen ?nth ~worker ()] — compute the shard but
    swallow the reply, exercising lost-result detection. *)
val drop_result : ?gen:int -> ?nth:int -> worker:int -> unit -> fleet

(** Round-trippable textual forms: ["kill@W.G.N"], ["hang:SECS@W.G.N"],
    ["drop@W.G.N"], joined with [';'] in list form. *)
val fleet_to_string : fleet -> string

val fleet_of_string : string -> (fleet, string) result
val fleet_list_to_string : fleet list -> string
val fleet_list_of_string : string -> (fleet list, string) result

(** The environment variable ([FTQC_FLEET_CHAOS]) through which
    [Svc.Fleet] ships specs to worker processes. *)
val fleet_env : string
