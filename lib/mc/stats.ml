type estimate = {
  failures : int;
  trials : int;
  rate : float;
  stderr : float;
  ci_low : float;
  ci_high : float;
}

let default_z = 1.96

let wilson ?(z = default_z) ~failures ~trials () =
  if trials < 0 || failures < 0 || failures > trials then
    invalid_arg "Mc.Stats.wilson";
  if trials = 0 then (0.0, 1.0)
  else begin
    let n = float_of_int trials in
    let p = float_of_int failures /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let hw =
      z /. denom
      *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (* at p = 0 (resp. 1) the Wilson bound is exactly 0 (resp. 1);
       [center -. hw] only rounds there to within ~1e-19, which would
       leave the interval not bracketing the rate *)
    let lo = if failures = 0 then 0.0 else Float.max 0.0 (center -. hw) in
    let hi =
      if failures = trials then 1.0 else Float.min 1.0 (center +. hw)
    in
    (lo, hi)
  end

let estimate ?z ~failures ~trials () =
  let ci_low, ci_high = wilson ?z ~failures ~trials () in
  if trials = 0 then
    { failures; trials; rate = 0.0; stderr = 0.0; ci_low; ci_high }
  else begin
    let n = float_of_int trials in
    let rate = float_of_int failures /. n in
    let stderr = sqrt (Float.max (rate *. (1.0 -. rate)) 1e-12 /. n) in
    { failures; trials; rate; stderr; ci_low; ci_high }
  end

let half_width e = (e.ci_high -. e.ci_low) /. 2.0

let pp fmt e =
  Format.fprintf fmt "%d/%d = %.4g [%.4g, %.4g]" e.failures e.trials e.rate
    e.ci_low e.ci_high
