type estimate = {
  failures : int;
  trials : int;
  rate : float;
  stderr : float;
  ci_low : float;
  ci_high : float;
}

let default_z = 1.96

let wilson ?(z = default_z) ~failures ~trials () =
  if trials < 0 || failures < 0 || failures > trials then
    invalid_arg "Mc.Stats.wilson";
  if trials = 0 then (0.0, 1.0)
  else begin
    let n = float_of_int trials in
    let p = float_of_int failures /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let hw =
      z /. denom
      *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (* at p = 0 (resp. 1) the Wilson bound is exactly 0 (resp. 1);
       [center -. hw] only rounds there to within ~1e-19, which would
       leave the interval not bracketing the rate *)
    let lo = if failures = 0 then 0.0 else Float.max 0.0 (center -. hw) in
    let hi =
      if failures = trials then 1.0 else Float.min 1.0 (center +. hw)
    in
    (lo, hi)
  end

let estimate ?z ~failures ~trials () =
  let ci_low, ci_high = wilson ?z ~failures ~trials () in
  if trials = 0 then
    { failures; trials; rate = 0.0; stderr = 0.0; ci_low; ci_high }
  else begin
    let n = float_of_int trials in
    let rate = float_of_int failures /. n in
    let stderr = sqrt (Float.max (rate *. (1.0 -. rate)) 1e-12 /. n) in
    { failures; trials; rate; stderr; ci_low; ci_high }
  end

let half_width e = (e.ci_high -. e.ci_low) /. 2.0

let pp fmt e =
  Format.fprintf fmt "%d/%d = %.4g [%.4g, %.4g]" e.failures e.trials e.rate
    e.ci_low e.ci_high

(* ------------------------------------------- weighted (stratified) *)

type class_sum = {
  weight : int;
  prob : float;
  evals : int;
  failures : int;
  exhaustive : bool;
}

let merge_class a b =
  if a.weight <> b.weight || a.prob <> b.prob || a.exhaustive <> b.exhaustive
  then invalid_arg "Mc.Stats.merge_class: different classes";
  { a with evals = a.evals + b.evals; failures = a.failures + b.failures }

type weighted = {
  classes : class_sum list;
  rate : float;
  stderr : float;
  truncation : float;
  ci_low : float;
  ci_high : float;
  evals : int;
  raw_failures : int;
}

let weighted ?(z = default_z) ~truncation classes =
  if truncation < 0.0 || truncation > 1.0 then
    invalid_arg "Mc.Stats.weighted: truncation must be in [0,1]";
  let classes = List.sort (fun a b -> compare a.weight b.weight) classes in
  let rate = ref 0.0 and var = ref 0.0 in
  let evals = ref 0 and raw = ref 0 in
  List.iter
    (fun c ->
      if c.failures < 0 || c.evals < c.failures then
        invalid_arg "Mc.Stats.weighted: failures must be in [0, evals]";
      if c.prob < 0.0 || c.prob > 1.0 then
        invalid_arg "Mc.Stats.weighted: class prob must be in [0,1]";
      evals := !evals + c.evals;
      raw := !raw + c.failures;
      if c.evals > 0 then begin
        let n = float_of_int c.evals in
        let f = float_of_int c.failures /. n in
        rate := !rate +. (c.prob *. f);
        if not c.exhaustive then begin
          (* clamp f into [1/2n, 1-1/2n] for the variance term only:
             a sampled class that saw 0 (or only) failures is not
             proof of zero variance *)
          let fv = Float.min (1.0 -. (0.5 /. n)) (Float.max (0.5 /. n) f) in
          var := !var +. (c.prob *. c.prob *. fv *. (1.0 -. fv) /. n)
        end
      end)
    classes;
  let rate = !rate in
  let stderr = sqrt !var in
  {
    classes;
    rate;
    stderr;
    truncation;
    ci_low = Float.max 0.0 (rate -. (z *. stderr));
    ci_high = Float.min 1.0 (rate +. (z *. stderr) +. truncation);
    evals = !evals;
    raw_failures = !raw;
  }

let weighted_to_estimate w =
  {
    failures = w.raw_failures;
    trials = w.evals;
    rate = w.rate;
    stderr = w.stderr;
    ci_low = w.ci_low;
    ci_high = w.ci_high;
  }

let pp_weighted fmt w =
  Format.fprintf fmt "%.4g [%.4g, %.4g] (tail <= %.3g; %d evals:" w.rate
    w.ci_low w.ci_high w.truncation w.evals;
  List.iter
    (fun c ->
      Format.fprintf fmt " w%d %d/%d%s" c.weight c.failures c.evals
        (if c.exhaustive then "*" else ""))
    w.classes;
  Format.fprintf fmt ")"
