(** Crash-safe checkpointing for Monte-Carlo campaigns.

    A campaign store records, per {e job} — identified by (label,
    engine, seed, trials, chunk size), everything that determines the
    deterministic chunk ledger — the failure count of every completed
    chunk.  {!Runner} consults the store before executing a chunk and
    records each freshly computed one; since chunk [c] always runs on
    [Rng.split root c] and results merge in chunk order, a run
    interrupted at an arbitrary point and resumed from its checkpoint
    produces **bit-identical** counts to an uninterrupted run, at any
    domain count.

    On disk a store is one [ftqc-checkpoint/1] JSON document, always
    written via [Obs.Json.write_atomic] (temp file in the same
    directory + rename): at every instant the file is a complete,
    parseable checkpoint.  A crash loses at most the chunks recorded
    since the last flush (at most [flush_every − 1]); those are simply
    recomputed on resume.  Truncated, corrupted or schema-mismatched
    files are rejected by {!load} with a diagnostic — never repaired
    into a wrong resume.

    Caveat: the job key cannot see the trial function itself.  Resume
    a checkpoint only with the same binary and experiment selection
    (the experiments CLI scopes keys with per-experiment labels and
    [Rng.derive]d seeds, so distinct experiments never collide). *)

(** The on-disk schema identifier, ["ftqc-checkpoint/1"]. *)
val schema_version : string

(** Job key: every field that pins the deterministic chunk ledger. *)
type job = {
  label : string;  (** scoping label, e.g. the experiment name; "" if unscoped *)
  engine : string;  (** "scalar" or "batch" *)
  seed : int;
  trials : int;
  chunk : int;  (** chunk size in trials (the batch engine uses 64) *)
}

type t

(** [create ?flush_every ?fsync file] — start a fresh campaign.
    Errors if [file] already exists (resume it instead, or remove it);
    otherwise immediately writes an empty checkpoint so a resume token
    exists from the first instant.  [flush_every] (default 8) bounds
    how many recorded chunks may be lost to a crash; [fsync] (default
    false) additionally forces each flush to disk before the rename. *)
val create : ?flush_every:int -> ?fsync:bool -> string -> (t, string) result

(** [load ?flush_every ?fsync file] — reopen an existing checkpoint.
    Missing, truncated, corrupted or out-of-range documents yield
    [Error] with a filename-prefixed diagnostic. *)
val load : ?flush_every:int -> ?fsync:bool -> string -> (t, string) result

(** [in_memory ()] — a store that never touches the filesystem
    ({!file} returns [""]; flushes are no-ops).  Same thread-safe
    find/record surface as a disk store; used as the fleet
    coordinator's per-request re-dispatch ledger and as a worker's
    range-restricted replay ledger. *)
val in_memory : unit -> t

(** The checkpoint file path ([""] for an {!in_memory} store). *)
val file : t -> string

(** [find t ~job ~chunk] — cached failure count of a completed chunk,
    if recorded.  Thread-safe. *)
val find : t -> job:job -> chunk:int -> int option

(** [record t ~job ~chunk ~failures] — record a completed chunk and
    flush to disk if [flush_every] records have accumulated.
    Thread-safe (called from worker domains). *)
val record : t -> job:job -> chunk:int -> failures:int -> unit

(** [completed t ~job] — number of chunks recorded for [job]. *)
val completed : t -> job:job -> int

(** [jobs t] — all job keys in the store, sorted. *)
val jobs : t -> job list

(** [flush t] — force an atomic write of the current state. *)
val flush : t -> unit

(** [to_json t] — the current state as a checkpoint document (sorted,
    so equal stores render byte-identically). *)
val to_json : t -> Obs.Json.t

(** [validate json] — check a parsed document against the
    [ftqc-checkpoint/1] schema: schema tag, per-job field types,
    chunk indices in range and duplicate-free, every count within
    [0, trials-in-chunk].  Returns the job count. *)
val validate : Obs.Json.t -> (int, string) result

(** {1 Ambient store}

    Set from the main domain (e.g. by the experiments CLI after
    parsing [--checkpoint]/[--resume]); every counting entry point of
    {!Runner} consults it by default, so checkpointing reaches all
    [_mc] drivers without widening their signatures. *)

val set_current : t option -> unit
val current : unit -> t option

(** [with_label l f] — scope job keys created under [f] with label
    [l] (e.g. the experiment name), restoring the previous label
    after. *)
val with_label : string -> (unit -> 'a) -> 'a

(** The current ambient label ("" if none). *)
val label : unit -> string

(** {1 Graceful stop}

    {!install_signal_handlers} routes SIGINT/SIGTERM to a flag that
    workers poll between chunks; the runner then flushes the
    checkpoint and raises {!Interrupted} so the caller can emit a
    partial manifest carrying a resume token instead of dying
    silently. *)

exception
  Interrupted of { completed : int; total : int; checkpoint : string option }

val install_signal_handlers : unit -> unit
val request_stop : unit -> unit
val stop_requested : unit -> bool
val reset_stop : unit -> unit
