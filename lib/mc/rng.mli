(** Splittable deterministic PRNG streams (SplitMix64-style).

    One root seed deterministically names a whole tree of independent
    streams: [split] derives a child key by hashing (parent, index)
    rather than by drawing from the parent, so stream [i] of a
    Monte-Carlo run is the same bits whether one domain computes all
    shards or sixteen domains race over them.  Keys are cheap value
    types; materialize a stdlib generator with {!to_state} at the
    point of use. *)

type key = int64

(** [root seed] — the key of the root stream for an integer seed. *)
val root : int -> key

(** [split k i] — the key of child stream [i] (i ≥ 0) of [k].
    Distinct indices yield distinct, statistically independent
    streams; no draws from [k] are consumed. *)
val split : key -> int -> key

(** [draw k n] — the [n]-th raw 64-bit output of stream [k]
    (stateless; exposed for independence testing). *)
val draw : key -> int -> int64

(** [to_state k] — a fresh [Random.State.t] seeded from the first
    four draws of [k]. *)
val to_state : key -> Random.State.t

(** [derive seed path] — a non-negative integer sub-seed obtained by
    walking [path] down the split tree from [root seed]; use it to
    give each experiment family its own independent stream so that
    run order and trial counts of one family cannot perturb
    another. *)
val derive : int -> int list -> int
