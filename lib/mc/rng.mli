(** Splittable deterministic PRNG streams (SplitMix64-style).

    One root seed deterministically names a whole tree of independent
    streams: [split] derives a child key by hashing (parent, index)
    rather than by drawing from the parent, so stream [i] of a
    Monte-Carlo run is the same bits whether one domain computes all
    shards or sixteen domains race over them.  Keys are cheap value
    types; materialize a stdlib generator with {!to_state} at the
    point of use. *)

type key = int64

(** [root seed] — the key of the root stream for an integer seed. *)
val root : int -> key

(** [split k i] — the key of child stream [i] (i ≥ 0) of [k].
    Distinct indices yield distinct, statistically independent
    streams; no draws from [k] are consumed. *)
val split : key -> int -> key

(** [draw k n] — the [n]-th raw 64-bit output of stream [k]
    (stateless; exposed for independence testing). *)
val draw : key -> int -> int64

(** [fold_digits k ~pos ~scaled ~start ~stop] — the Bernoulli digit
    fold of [Frame.Sampler], fused into the raw stream: with
    [u_j = draw k (pos + j - start)], fold
    [acc <- if bit j of scaled then u_j lor acc else u_j land acc]
    for [j = start] to [stop - 1], starting from 0.  Bit-identical to
    the per-[draw] fold; hosted here so the hot loop runs without
    per-digit calls or boxing (the mixing constants are private). *)
val fold_digits :
  key -> pos:int -> scaled:int64 -> start:int -> stop:int -> int64

(** [fold_digits_xor_sel k ~pos ~scaled ~start ~stop ~rows ~sel
    ~stride ~off] — bulk {!fold_digits}: fold row [i] of [sel] over
    positions [pos + i*(stop-start) ..] and XOR the result into
    [rows.(sel.(i) * stride + off)], for every [i].  Bit-identical to
    per-row [fold_digits] calls; one cross-module call injects a whole
    op's noise for one lane. *)
val fold_digits_xor_sel :
  key ->
  pos:int ->
  scaled:int64 ->
  start:int ->
  stop:int ->
  rows:int64 array ->
  sel:int array ->
  stride:int ->
  off:int ->
  unit

(** [to_state k] — a fresh [Random.State.t] seeded from the first
    four draws of [k]. *)
val to_state : key -> Random.State.t

(** [derive seed path] — a non-negative integer sub-seed obtained by
    walking [path] down the split tree from [root seed]; use it to
    give each experiment family its own independent stream so that
    run order and trial counts of one family cannot perturb
    another. *)
val derive : int -> int list -> int

(** {1 Stateful streams}

    [t] is the single randomness interface of the library: either a
    stream of raw outputs of a {!key}, or a thin wrapper around a
    legacy [Random.State.t].  Code written against [t] draws the very
    same values as its [Random.State]-based predecessor when handed
    {!of_random_state}, so migrating a signature never changes
    existing counts. *)

type t

(** [of_key k] — a fresh stream positioned at the first output of
    [k]. *)
val of_key : key -> t

(** [of_random_state s] — wrap a stdlib generator; every draw
    delegates to [s] (shared state, not a copy). *)
val of_random_state : Random.State.t -> t

(** [of_seed seed] = [of_key (root seed)]. *)
val of_seed : int -> t

(** [bits64 t] — next raw 64-bit draw. *)
val bits64 : t -> int64

val bool : t -> bool

(** [float t bound] — uniform in [\[0, bound)] with 53-bit
    resolution. *)
val float : t -> float -> float

(** [int t n] — uniform in [\[0, n)]; [n] must be positive. *)
val int : t -> int -> int
