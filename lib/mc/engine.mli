(** The Monte-Carlo engine selector, shared by every entry point of
    {!Runner} and every binary's CLI.

    Three engines drive the same estimators:

    - [`Scalar] — one trial per shot on a [Random.State.t] stream; the
      reference semantics every other engine is checked against.
    - [`Batch] — bit-sliced: 64 shots per word, [tile_width / 64]
      words per tile (64 is one lane; 256/512 are the tuned widths).
      Counts are bit-identical to [`Scalar] cross-checks by
      construction of the {!Frame} samplers.
    - [`Rare] — weight-class subset sampling ({!Subset}): exact
      enumeration of low-weight fault configurations with analytic
      binomial prefactors, stratified sampling within classes too
      large to enumerate, and a rigorous truncation bound folded into
      the reported interval.  Reaches logical failure rates (1e-9 and
      below) that plain Monte Carlo cannot touch at any shot budget.

    The per-binary [--engine]/[--tile-width]/[--max-weight]/
    [--samples-per-class] parsing lives here too ({!of_cli}), so the
    binaries share one grammar and one rejection message instead of
    drifting copies. *)

type batch = { tile_width : int  (** shots per tile; positive multiple of 64 *) }

type rare = {
  max_weight : int;
      (** truncation order [W]: fault configurations of weight > W are
          not evaluated; their total probability mass is the
          truncation bound added to the CI upper edge *)
  samples_per_class : int;
      (** evaluations per weight class too large to enumerate *)
  enum_cutoff : int;
      (** classes with at most this many configurations are
          enumerated exactly (zero sampling variance) *)
}

type t = [ `Scalar | `Batch of batch | `Rare of rare ]

val default_tile_width : int (* 64 *)
val default_max_weight : int (* 4 *)
val default_samples_per_class : int (* 2000 *)
val default_enum_cutoff : int (* 8192 *)

(** The all-defaults rare configuration. *)
val default_rare : rare

val scalar : t

(** [batch ?tile_width ()] — validates the width (positive multiple
    of 64). *)
val batch : ?tile_width:int -> unit -> t

(** [rare ?max_weight ?samples_per_class ?enum_cutoff ()] — validates
    all fields positive. *)
val rare :
  ?max_weight:int -> ?samples_per_class:int -> ?enum_cutoff:int -> unit -> t

(** ["scalar"], ["batch"] or ["rare"] — the campaign/telemetry engine
    label. *)
val name : t -> string

(** Engine with its parameters, e.g. ["batch:w256"] or
    ["rare:W4:k2000"] — for logs and error messages. *)
val to_string : t -> string

(** The engine grammar: valid names and which options each accepts.
    Every {!of_cli} error ends with this text. *)
val usage : string

(** [of_cli ?engine ?tile_width ?max_weight ?samples_per_class ()] —
    the one shared CLI combinator: [engine] is the raw [--engine]
    value (default scalar), the remaining arguments are the raw
    option values {e if the user passed them}.  Rejects unknown
    engine names and options that do not belong to the selected
    engine (e.g. [--tile-width] with scalar), always listing the
    valid engines and accepted combinations. *)
val of_cli :
  ?engine:string ->
  ?tile_width:int ->
  ?max_weight:int ->
  ?samples_per_class:int ->
  unit ->
  (t, string) result
