module Perm = Group.Perm
module Fg = Group.Finite_group

let derived_series group =
  let rec loop g acc =
    let d = Fg.derived_subgroup g in
    if Fg.order d = Fg.order g then List.rev (Fg.order g :: acc)
    else loop d (Fg.order g :: acc)
  in
  loop group []

let is_perfect group =
  Fg.order group > 1
  && Fg.order (Fg.derived_subgroup group) = Fg.order group

let commutator_closure_depth group ~max_depth =
  let elems = Array.of_list (Fg.elements group) in
  let module PS = Set.Make (struct
    type t = Perm.t

    let compare = Perm.compare
  end) in
  let all_nontrivial =
    Array.fold_left
      (fun acc p -> if Perm.is_identity p then acc else PS.add p acc)
      PS.empty elems
  in
  let step s =
    PS.fold
      (fun a acc ->
        PS.fold
          (fun b acc ->
            let c = Perm.commutator a b in
            if Perm.is_identity c then acc else PS.add c acc)
          s acc)
      s PS.empty
  in
  let rec loop s d =
    if PS.is_empty s then Some d
    else if d >= max_depth then None
    else begin
      let s' = step s in
      if PS.equal s s' then None else loop s' (d + 1)
    end
  in
  loop all_nontrivial 0

let and_gadget_value ~x ~y a b =
  let n = Perm.degree a in
  let xa = if x then a else Perm.identity n in
  let yb = if y then b else Perm.identity n in
  Perm.commutator xa yb

let find_noncommuting group =
  let elems = Fg.elements group in
  let rec outer = function
    | [] -> None
    | a :: rest -> (
      let found =
        List.find_opt
          (fun b -> not (Perm.is_identity (Perm.commutator a b)))
          elems
      in
      match found with Some b -> Some (a, b) | None -> outer rest)
  in
  outer elems

let smallest_nonsolvable_check () =
  let a5 = Fg.alternating 5 in
  (not (Fg.is_solvable a5))
  && is_perfect a5
  && List.for_all Fg.is_solvable
       ([ Fg.symmetric 4;
          Fg.alternating 4;
          Fg.dihedral 4;
          Fg.dihedral 5;
          Fg.dihedral 6 ]
       @ List.init 58 (fun i -> Fg.cyclic (i + 2)))
