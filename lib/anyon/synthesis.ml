module Perm = Group.Perm

type move = { outer : int; inner : int; dir : [ `Fwd | `Bwd ] }
type program = move list

let apply_move fluxes { outer; inner; dir } =
  let fresh = Array.copy fluxes in
  let by =
    match dir with
    | `Fwd -> fluxes.(outer)
    | `Bwd -> Perm.inverse fluxes.(outer)
  in
  fresh.(inner) <- Perm.conj fluxes.(inner) by;
  fresh

let apply_program ~fluxes prog = List.fold_left apply_move fluxes prog

(* One BFS state tracks the registers simultaneously for every input
   assignment (the program is input-independent, so its action on each
   assignment evolves in parallel). *)
let state_key states =
  let buf = Buffer.create 64 in
  Array.iter
    (fun fluxes ->
      Array.iter
        (fun p ->
          Array.iter
            (fun i -> Buffer.add_char buf (Char.chr i))
            (Perm.to_array p))
        fluxes)
    states;
  Buffer.contents buf

let all_inputs k =
  List.init (1 lsl k) (fun mask ->
      List.init k (fun j -> (mask lsr j) land 1 = 1))

let search ~encodings ~ancillas ~targets ~max_depth =
  let k = List.length encodings in
  let encodings = Array.of_list encodings in
  let ancillas = Array.of_list ancillas in
  let r = k + Array.length ancillas in
  if r < 2 then invalid_arg "Synthesis.search: need at least two pairs";
  let inputs = all_inputs k in
  let initial =
    Array.of_list
      (List.map
         (fun bits ->
           Array.init r (fun j ->
               if j < k then begin
                 let zero, one = encodings.(j) in
                 if List.nth bits j then one else zero
               end
               else ancillas.(j - k)))
         inputs)
  in
  let goal states =
    List.for_all2
      (fun bits fluxes ->
        let out = targets bits in
        List.for_all2
          (fun j want ->
            let zero, one = encodings.(j) in
            Perm.equal fluxes.(j) (if want then one else zero))
          (List.init k Fun.id) out)
      inputs (Array.to_list states)
  in
  let moves =
    List.concat_map
      (fun outer ->
        List.concat_map
          (fun inner ->
            if outer = inner then []
            else
              [ { outer; inner; dir = `Fwd }; { outer; inner; dir = `Bwd } ])
          (List.init r Fun.id))
      (List.init r Fun.id)
  in
  let visited = Hashtbl.create 4096 in
  Hashtbl.add visited (state_key initial) ();
  let queue = Queue.create () in
  Queue.add (initial, [], 0) queue;
  let result = ref None in
  (try
     if goal initial then raise Exit;
     while not (Queue.is_empty queue) do
       let states, prog_rev, depth = Queue.take queue in
       if depth < max_depth then
         List.iter
           (fun m ->
             let states' = Array.map (fun f -> apply_move f m) states in
             let key = state_key states' in
             if not (Hashtbl.mem visited key) then begin
               Hashtbl.add visited key ();
               let prog_rev' = m :: prog_rev in
               if goal states' then begin
                 result := Some (List.rev prog_rev');
                 raise Exit
               end;
               Queue.add (states', prog_rev', depth + 1) queue
             end)
           moves
     done
   with Exit -> ());
  (match !result with
  | None -> if goal initial then result := Some []
  | Some _ -> ());
  !result

let not_via_pull_through () =
  let u0, u1, v = Register.paper_a5_encoding () in
  search ~encodings:[ (u0, u1) ] ~ancillas:[ v ]
    ~targets:(function [ b ] -> [ not b ] | _ -> assert false)
    ~max_depth:2

let no_cnot_without_ancilla ~max_depth =
  let u0, u1, _ = Register.paper_a5_encoding () in
  search
    ~encodings:[ (u0, u1); (u0, u1) ]
    ~ancillas:[]
    ~targets:(function
      | [ a; b ] -> [ a; a <> b ]
      | _ -> assert false)
    ~max_depth
  = None
