module Perm = Group.Perm

type t = { degree : int; fluxes : Perm.t array }

let create ~degree fluxes =
  List.iter
    (fun p ->
      if Perm.degree p <> degree then
        invalid_arg "Register.create: degree mismatch")
    fluxes;
  { degree; fluxes = Array.of_list fluxes }

let num_pairs t = Array.length t.fluxes
let flux t i = t.fluxes.(i)

let pull_through t ~outer ~inner =
  if outer = inner then invalid_arg "Register.pull_through: same pair";
  t.fluxes.(inner) <- Perm.conj t.fluxes.(inner) t.fluxes.(outer)

let pull_through_inverse t ~outer ~inner =
  if outer = inner then invalid_arg "Register.pull_through_inverse: same pair";
  t.fluxes.(inner) <-
    Perm.conj t.fluxes.(inner) (Perm.inverse t.fluxes.(outer))

let encode_bit ~zero ~one b = if b then one else zero

let paper_a5_encoding () =
  let u0 = Perm.of_cycles 5 [ [ 1; 2; 5 ] ] in
  let u1 = Perm.of_cycles 5 [ [ 2; 3; 4 ] ] in
  let v = Perm.of_cycles 5 [ [ 1; 4 ]; [ 3; 5 ] ] in
  (u0, u1, v)

let not_gate t ~data ~not_pair = pull_through t ~outer:not_pair ~inner:data
