(** Classical flux-pair registers (§7.3, Figs. 19–21).

    A register holds fluxon–antifluxon pairs |u, u⁻¹⟩, represented by
    the flux u of the first member.  The only interaction is the
    *pull-through* of Eq. (41): passing pair [inner] through pair
    [outer] conjugates the inner flux by the outer flux and leaves the
    outer pair unchanged.  Calibrated constant pairs from the "Flux
    Bureau of Standards" (Fig. 19) are modelled as ordinary registers
    initialized to known values.

    On flux eigenstates these dynamics are classical reversible
    computation; the quantum layer (superpositions and charge
    measurement) lives in {!Pair_sim}. *)

type t

(** [create ~degree fluxes] — registers initialized to the given
    fluxes (permutations of the same degree). *)
val create : degree:int -> Group.Perm.t list -> t

val num_pairs : t -> int

(** [flux t i] — the current flux of pair [i]. *)
val flux : t -> int -> Group.Perm.t

(** [pull_through t ~outer ~inner] — Eq. (41):
    u_inner ← u_outer⁻¹ · u_inner · u_outer. *)
val pull_through : t -> outer:int -> inner:int -> unit

(** [pull_through_inverse t ~outer ~inner] — the reverse move
    (conjugation by u_outer⁻¹), i.e. pulling the pair back. *)
val pull_through_inverse : t -> outer:int -> inner:int -> unit

(** [encode_bit ~zero ~one b] — the flux encoding a classical bit. *)
val encode_bit : zero:Group.Perm.t -> one:Group.Perm.t -> bool -> Group.Perm.t

(** [paper_a5_encoding ()] — Eq. (45): u₀ = (125), u₁ = (234) in A₅,
    with the NOT-pair flux v = (14)(35); returns (u0, u1, v). *)
val paper_a5_encoding : unit -> Group.Perm.t * Group.Perm.t * Group.Perm.t

(** [not_gate t ~data ~not_pair] — Fig. 21: pull the data pair through
    the NOT pair.  With the Eq. (45) encoding this swaps u₀ ↔ u₁
    because v is an involution conjugating u₀ to u₁. *)
val not_gate : t -> data:int -> not_pair:int -> unit
