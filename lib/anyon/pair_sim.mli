(** Quantum simulation of one flux pair over a conjugacy class
    (§7.3–7.4, Eqs. 39, 42–44 and Figs. 18/22).

    The Hilbert space is spanned by flux eigenstates |u, u⁻¹⟩ for u
    ranging over one conjugacy class C of G (local physics cannot
    distinguish conjugate fluxes, so superpositions within a class are
    protected — Eq. 39).  Supported operations:
    - conjugation by a calibrated flux v (the pull-through, a
      permutation of C);
    - flux measurement (Fig. 18): projective measurement in the
      flux basis, implemented as repeated interferometry;
    - charge measurement with a v-projectile (Fig. 22): projective
      measurement of the conjugation-by-v operator onto its ±1
      eigenspaces, the tool that creates the |±⟩ states of Eq. (43);
    - preparation of the charge-zero pair of Eq. (44), the uniform
      superposition over the class. *)

type t

(** [create group ~class_rep] — the pair Hilbert space over the
    conjugacy class of [class_rep], initialized to |class_rep⟩. *)
val create : Group.Finite_group.t -> class_rep:Group.Perm.t -> t

(** [dimension t] — the class size. *)
val dimension : t -> int

(** [charge_zero group ~class_rep] — Eq. (44): the uniform
    superposition Σ_u |u, u⁻¹⟩ over the class. *)
val charge_zero : Group.Finite_group.t -> class_rep:Group.Perm.t -> t

(** [amplitude t u] — ⟨u|ψ⟩. *)
val amplitude : t -> Group.Perm.t -> Qmath.Cx.t

(** [conjugate_by t v] — pull the pair through a calibrated |v,v⁻¹⟩
    pair: |u⟩ ↦ |v⁻¹uv⟩.  [v] need not lie in the class. *)
val conjugate_by : t -> Group.Perm.t -> unit

(** [measure_flux t rng] — Fig. 18: project onto a flux eigenstate,
    returning the measured flux. *)
val measure_flux : t -> Random.State.t -> Group.Perm.t

(** [measure_charge t rng ~projectile] — Fig. 22: project onto the ±1
    eigenspaces of conjugation-by-[projectile] ([projectile] must be
    an involution so the monodromy squares to 1); returns [false] for
    the +1 (symmetric, e.g. |+⟩) outcome. *)
val measure_charge : t -> Random.State.t -> projectile:Group.Perm.t -> bool

(** [prob_flux t u] — Born probability of flux [u]. *)
val prob_flux : t -> Group.Perm.t -> float
