(** Computational power of conjugation dynamics (§7.4, E11).

    Pull-throughs compose into conjugations by *words* in register
    values; iterated gadgets bottom out in iterated commutators.  In a
    group with a nontrivial perfect subgroup (A₅ is the smallest),
    iterated commutators never die out, which is what lets
    conjugation-generated classical logic compute unbounded AND/Toffoli
    trees (Ogburn–Preskill found a 16-pull-through Toffoli over A₅; no
    Toffoli exists over any smaller group).  In a solvable group the
    derived series reaches the trivial group, so every commutator
    gadget trivializes at bounded depth — the quantitative content of
    the paper's conjecture that nonsolvability is necessary
    (cf. Barrington, ref. 66). *)

(** [derived_series group] — orders along G ⊇ [G,G] ⊇ … until
    stable. *)
val derived_series : Group.Finite_group.t -> int list

(** [is_perfect group] — [G,G] = G with |G| > 1. *)
val is_perfect : Group.Finite_group.t -> bool

(** [commutator_closure_depth group ~max_depth] — iterate
    S₀ = G∖\{e\}, S_{d+1} = \{ [a,b] ≠ e : a, b ∈ S_d \}; the depth at
    which S becomes empty ([Some d]), or [None] when it stabilizes
    nonempty (unbounded AND trees survive — the nonsolvable case). *)
val commutator_closure_depth :
  Group.Finite_group.t -> max_depth:int -> int option

(** [and_gadget_value ~x ~y a b] — the Barrington AND gadget: with
    bit false ↦ identity and bit true ↦ the given element, the gadget
    value [x·a, y·b] is ≠ e exactly when both bits are set (provided
    [a, b] ≠ e).  Returns the commutator of the encoded values. *)
val and_gadget_value :
  x:bool -> y:bool -> Group.Perm.t -> Group.Perm.t -> Group.Perm.t

(** [find_noncommuting group] — some pair (a, b) with [a,b] ≠ e, or
    [None] for abelian groups. *)
val find_noncommuting :
  Group.Finite_group.t -> (Group.Perm.t * Group.Perm.t) option

(** [smallest_nonsolvable_check ()] — verifies that A₅ is nonsolvable
    while the standard groups of smaller order in this library (S₄,
    A₄, D₄…D₆, all cyclic up to 59) are solvable. *)
val smallest_nonsolvable_check : unit -> bool
