(** Exhaustive synthesis of flux-pair logic (§7.4).

    The primitive repertoire is the pull-through of Eq. (41) — either
    direction, between any two pairs, including calibrated constant
    pairs from the Flux Bureau of Standards.  A program is a sequence
    of such moves; its action on computational registers is a
    classical reversible function of the encoded bits.  [search]
    breadth-first enumerates programs up to a depth bound and returns
    the shortest one realizing a requested truth table, or [None]
    after exhausting the space — which, for small depths, *proves*
    no such gadget exists (the quantitative face of the Ogburn–
    Preskill observation that the A₅ Toffoli needs as many as 16
    moves and 6 ancilla pairs, and that no group smaller than A₅
    admits one at all). *)

(** A single move: pull pair [inner] through pair [outer] ([`Fwd]:
    conjugate by the outer flux; [`Bwd]: by its inverse). *)
type move = { outer : int; inner : int; dir : [ `Fwd | `Bwd ] }

type program = move list

(** [apply_program ~fluxes prog] — run a program on initial fluxes,
    returning the final flux array. *)
val apply_program : fluxes:Group.Perm.t array -> program -> Group.Perm.t array

(** [search ~encodings ~ancillas ~targets ~max_depth] looks for a
    program over [List.length encodings] data pairs plus
    [List.length ancillas] constant pairs such that, for *every*
    assignment of data bits, running the program sends the data
    registers to the [targets] encoding of the required output bits
    (ancilla finals unconstrained).

    [encodings] gives each data register's (zero, one) fluxes;
    [targets] maps the input bit tuple to the required output bit
    tuple.  Returns the shortest program found. *)
val search :
  encodings:(Group.Perm.t * Group.Perm.t) list ->
  ancillas:Group.Perm.t list ->
  targets:(bool list -> bool list) ->
  max_depth:int ->
  program option

(** [not_via_pull_through ()] — the Fig. 21 NOT rediscovered by
    {!search} (depth 1). *)
val not_via_pull_through : unit -> program option

(** [no_cnot_without_ancilla ~max_depth] — [true] when exhaustive
    search proves that no program on the two data pairs alone (paper
    encoding, no ancillas) realizes a CNOT within [max_depth] moves. *)
val no_cnot_without_ancilla : max_depth:int -> bool
