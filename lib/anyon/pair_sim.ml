module Perm = Group.Perm
module Fg = Group.Finite_group
module Cx = Qmath.Cx

type t = {
  class_elems : Perm.t array;
  index : (Perm.t, int) Hashtbl.t;
  amps : Cx.t array;
}

let build group ~class_rep =
  let cls = Array.of_list (Fg.conjugacy_class group class_rep) in
  let index = Hashtbl.create (Array.length cls) in
  Array.iteri (fun i u -> Hashtbl.add index u i) cls;
  (cls, index)

let create group ~class_rep =
  let class_elems, index = build group ~class_rep in
  let amps = Array.make (Array.length class_elems) Cx.zero in
  amps.(Hashtbl.find index class_rep) <- Cx.one;
  { class_elems; index; amps }

let dimension t = Array.length t.class_elems

let charge_zero group ~class_rep =
  let class_elems, index = build group ~class_rep in
  let d = Array.length class_elems in
  let a = Cx.re (1.0 /. sqrt (float_of_int d)) in
  { class_elems; index; amps = Array.make d a }

let amplitude t u =
  match Hashtbl.find_opt t.index u with
  | Some i -> t.amps.(i)
  | None -> Cx.zero

let conjugate_by t v =
  let d = dimension t in
  let fresh = Array.make d Cx.zero in
  for i = 0 to d - 1 do
    let target = Perm.conj t.class_elems.(i) v in
    match Hashtbl.find_opt t.index target with
    | Some j -> fresh.(j) <- Cx.add fresh.(j) t.amps.(i)
    | None ->
      invalid_arg "Pair_sim.conjugate_by: conjugation left the class"
  done;
  Array.blit fresh 0 t.amps 0 d

let prob_flux t u = Cx.norm2 (amplitude t u)

let measure_flux t rng =
  let r = ref (Random.State.float rng 1.0) in
  let chosen = ref (dimension t - 1) in
  (try
     for i = 0 to dimension t - 1 do
       r := !r -. Cx.norm2 t.amps.(i);
       if !r <= 0.0 then begin
         chosen := i;
         raise Exit
       end
     done
   with Exit -> ());
  let u = t.class_elems.(!chosen) in
  Array.fill t.amps 0 (dimension t) Cx.zero;
  t.amps.(!chosen) <- Cx.one;
  u

let measure_charge t rng ~projectile =
  if not (Perm.is_identity (Perm.compose projectile projectile)) then
    invalid_arg "Pair_sim.measure_charge: projectile must be an involution";
  let d = dimension t in
  (* the monodromy permutation π: i ↦ index of v⁻¹ u_i v *)
  let pi =
    Array.init d (fun i ->
        match
          Hashtbl.find_opt t.index (Perm.conj t.class_elems.(i) projectile)
        with
        | Some j -> j
        | None ->
          invalid_arg "Pair_sim.measure_charge: conjugation left the class")
  in
  (* ± components: ψ± = (ψ ± πψ)/2 *)
  let plus = Array.make d Cx.zero and minus = Array.make d Cx.zero in
  for i = 0 to d - 1 do
    let swapped = t.amps.(pi.(i)) in
    plus.(i) <- Cx.scale 0.5 (Cx.add t.amps.(i) swapped);
    minus.(i) <- Cx.scale 0.5 (Cx.sub t.amps.(i) swapped)
  done;
  let norm2 a = Array.fold_left (fun acc z -> acc +. Cx.norm2 z) 0.0 a in
  let p_plus = norm2 plus in
  let p_minus = norm2 minus in
  let outcome_minus =
    p_minus > 1e-12
    && (p_plus <= 1e-12 || Random.State.float rng 1.0 < p_minus /. (p_plus +. p_minus))
  in
  let chosen = if outcome_minus then minus else plus in
  let n = sqrt (norm2 chosen) in
  if n <= 1e-12 then
    invalid_arg "Pair_sim.measure_charge: zero-probability branch";
  for i = 0 to d - 1 do
    t.amps.(i) <- Cx.scale (1.0 /. n) chosen.(i)
  done;
  outcome_minus
