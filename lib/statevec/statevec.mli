(** Full complex state-vector simulator.

    Exact simulation of up to ~20 qubits, used to validate codeword
    constructions (Eqs. 6–7, 11), encoding circuits (Fig. 3),
    transversal-gate identities (§4.1), the Toffoli ancilla state
    (Eq. 23) and anything non-Clifford.  Amplitude indexing is
    little-endian: bit [q] of a basis index is the computational state
    of qubit [q]. *)

type t

(** [create n] is |0…0⟩ on [n] qubits ([n] ≤ 24 enforced). *)
val create : int -> t

(** [of_amplitudes amps] wraps a length-2ⁿ amplitude array (copied,
    then normalized).  Raises [Invalid_argument] if the length is not
    a power of two or the vector is numerically zero. *)
val of_amplitudes : Qmath.Cx.t array -> t

(** [basis ~n ~index] is the computational basis state |index⟩. *)
val basis : n:int -> index:int -> t

(** [num_qubits s]. *)
val num_qubits : t -> int

(** [copy s]. *)
val copy : t -> t

(** [amplitude s i] is ⟨i|s⟩. *)
val amplitude : t -> int -> Qmath.Cx.t

(** [norm s] is the 2-norm (should stay ≈ 1). *)
val norm : t -> float

(** [normalize s] rescales to unit norm, in place. *)
val normalize : t -> unit

(** In-place standard gates. *)
val h : t -> int -> unit

val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val s_gate : t -> int -> unit
val sdg : t -> int -> unit
val cnot : t -> int -> int -> unit
val cz : t -> int -> int -> unit
val swap : t -> int -> int -> unit
val toffoli : t -> int -> int -> int -> unit

(** [apply_1q s m q] applies an arbitrary 2×2 unitary to qubit [q]. *)
val apply_1q : t -> Qmath.Cmat.t -> int -> unit

(** [apply_gate s g] dispatches a circuit gate. *)
val apply_gate : t -> Circuit.gate -> unit

(** [apply_pauli s p] applies an n-qubit Pauli operator (including its
    phase) — used to inject faults. *)
val apply_pauli : t -> Pauli.t -> unit

(** [prob_one s q] is the probability that measuring qubit [q] in the
    Z basis yields 1. *)
val prob_one : t -> int -> float

(** [measure s rng q] projectively measures qubit [q] in the Z basis,
    collapsing the state; returns the outcome. *)
val measure : t -> Random.State.t -> int -> bool

(** [measure_x s rng q] measures in the X basis (outcome [true] = the
    −1 eigenstate |−⟩). *)
val measure_x : t -> Random.State.t -> int -> bool

(** [postselect s q outcome] projects qubit [q] onto [outcome] and
    renormalizes; returns the pre-projection probability of that
    outcome.  The state is invalid if the returned probability is 0. *)
val postselect : t -> int -> bool -> float

(** [reset s rng q] measures qubit [q] and flips it to |0⟩ if needed. *)
val reset : t -> Random.State.t -> int -> unit

(** [reduced_density_matrix s ~keep] — the density matrix of the
    listed qubits (in the given order) after tracing out the rest;
    dimension 2^|keep| ≤ 2⁶ enforced.  Used to check entanglement
    directly (purity tr ρ² = 1 iff the subsystem is unentangled). *)
val reduced_density_matrix : t -> keep:int list -> Qmath.Cmat.t

(** [purity s ~keep] — tr ρ² of the reduced state. *)
val purity : t -> keep:int list -> float

(** [inner a b] is ⟨a|b⟩. *)
val inner : t -> t -> Qmath.Cx.t

(** [fidelity a b] is |⟨a|b⟩|². *)
val fidelity : t -> t -> float

(** [expectation s p] is ⟨s|P|s⟩ for a Pauli [p] (real up to numeric
    noise; the real part is returned). *)
val expectation : t -> Pauli.t -> float

(** [run ?rng s c] executes a circuit on [s] in place, returning the
    classical bit array.  The circuit's qubit count must match.
    [rng] defaults to a fixed-seed generator. *)
val run : ?rng:Random.State.t -> t -> Circuit.t -> bool array

(** [equal_up_to_phase ?tol a b] is [true] when a = e^{iφ}·b. *)
val equal_up_to_phase : ?tol:float -> t -> t -> bool

(** [pp] prints nonzero amplitudes as "amp · |bits⟩" lines, smallest
    index first, with bit 0 leftmost (matching codeword strings like
    |0001111⟩ in Eq. 6). *)
val pp : Format.formatter -> t -> unit
