module Cx = Qmath.Cx
module Cmat = Qmath.Cmat

(* Amplitudes are stored as parallel unboxed float arrays (re, im):
   this keeps the hot gate loops allocation-free. *)
type t = { n : int; re : float array; im : float array }

let max_qubits = 24

let create n =
  if n < 0 || n > max_qubits then invalid_arg "Statevec.create: qubit count";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let num_qubits s = s.n
let copy s = { s with re = Array.copy s.re; im = Array.copy s.im }
let amplitude s i = Cx.make s.re.(i) s.im.(i)

let norm2 s =
  let acc = ref 0.0 in
  for i = 0 to Array.length s.re - 1 do
    acc := !acc +. (s.re.(i) *. s.re.(i)) +. (s.im.(i) *. s.im.(i))
  done;
  !acc

let norm s = sqrt (norm2 s)

let normalize s =
  let n = norm s in
  if n = 0.0 then invalid_arg "Statevec.normalize: zero vector";
  let inv = 1.0 /. n in
  for i = 0 to Array.length s.re - 1 do
    s.re.(i) <- s.re.(i) *. inv;
    s.im.(i) <- s.im.(i) *. inv
  done

let of_amplitudes amps =
  let dim = Array.length amps in
  let n =
    let rec log2 d acc =
      if d = 1 then acc
      else if d land 1 = 1 || d <= 0 then
        invalid_arg "Statevec.of_amplitudes: length not a power of two"
      else log2 (d lsr 1) (acc + 1)
    in
    log2 dim 0
  in
  if n > max_qubits then invalid_arg "Statevec.of_amplitudes: too many qubits";
  let s =
    { n;
      re = Array.map (fun (z : Cx.t) -> z.re) amps;
      im = Array.map (fun (z : Cx.t) -> z.im) amps }
  in
  normalize s;
  s

let basis ~n ~index =
  let s = create n in
  if index < 0 || index >= 1 lsl n then invalid_arg "Statevec.basis";
  s.re.(0) <- 0.0;
  s.re.(index) <- 1.0;
  s

let check_qubit s q =
  if q < 0 || q >= s.n then invalid_arg "Statevec: qubit out of range"

(* Iterate over pairs (i0, i1) differing only at bit q, with i0 the
   index where bit q = 0. *)
let iter_pairs s q f =
  let mask = 1 lsl q in
  let dim = Array.length s.re in
  let i = ref 0 in
  while !i < dim do
    if !i land mask = 0 then f !i (!i lor mask);
    incr i
  done

let h s q =
  check_qubit s q;
  let c = 1.0 /. sqrt 2.0 in
  iter_pairs s q (fun i0 i1 ->
      let ar = s.re.(i0) and ai = s.im.(i0) in
      let br = s.re.(i1) and bi = s.im.(i1) in
      s.re.(i0) <- c *. (ar +. br);
      s.im.(i0) <- c *. (ai +. bi);
      s.re.(i1) <- c *. (ar -. br);
      s.im.(i1) <- c *. (ai -. bi))

let x s q =
  check_qubit s q;
  iter_pairs s q (fun i0 i1 ->
      let ar = s.re.(i0) and ai = s.im.(i0) in
      s.re.(i0) <- s.re.(i1);
      s.im.(i0) <- s.im.(i1);
      s.re.(i1) <- ar;
      s.im.(i1) <- ai)

let y s q =
  check_qubit s q;
  (* Y = [[0, -i], [i, 0]] *)
  iter_pairs s q (fun i0 i1 ->
      let ar = s.re.(i0) and ai = s.im.(i0) in
      let br = s.re.(i1) and bi = s.im.(i1) in
      (* new a = -i * b ; new b = i * a *)
      s.re.(i0) <- bi;
      s.im.(i0) <- -.br;
      s.re.(i1) <- -.ai;
      s.im.(i1) <- ar)

let z s q =
  check_qubit s q;
  iter_pairs s q (fun _ i1 ->
      s.re.(i1) <- -.s.re.(i1);
      s.im.(i1) <- -.s.im.(i1))

let s_gate s q =
  check_qubit s q;
  iter_pairs s q (fun _ i1 ->
      let br = s.re.(i1) and bi = s.im.(i1) in
      s.re.(i1) <- -.bi;
      s.im.(i1) <- br)

let sdg s q =
  check_qubit s q;
  iter_pairs s q (fun _ i1 ->
      let br = s.re.(i1) and bi = s.im.(i1) in
      s.re.(i1) <- bi;
      s.im.(i1) <- -.br)

let cnot s c t =
  check_qubit s c;
  check_qubit s t;
  if c = t then invalid_arg "Statevec.cnot: equal operands";
  let cm = 1 lsl c and tm = 1 lsl t in
  let dim = Array.length s.re in
  for i = 0 to dim - 1 do
    if i land cm <> 0 && i land tm = 0 then begin
      let j = i lor tm in
      let ar = s.re.(i) and ai = s.im.(i) in
      s.re.(i) <- s.re.(j);
      s.im.(i) <- s.im.(j);
      s.re.(j) <- ar;
      s.im.(j) <- ai
    end
  done

let cz s a b =
  check_qubit s a;
  check_qubit s b;
  if a = b then invalid_arg "Statevec.cz: equal operands";
  let am = 1 lsl a and bm = 1 lsl b in
  for i = 0 to Array.length s.re - 1 do
    if i land am <> 0 && i land bm <> 0 then begin
      s.re.(i) <- -.s.re.(i);
      s.im.(i) <- -.s.im.(i)
    end
  done

let swap s a b =
  check_qubit s a;
  check_qubit s b;
  if a = b then invalid_arg "Statevec.swap: equal operands";
  let am = 1 lsl a and bm = 1 lsl b in
  for i = 0 to Array.length s.re - 1 do
    (* swap amplitudes of ...a=1,b=0... with ...a=0,b=1..., once *)
    if i land am <> 0 && i land bm = 0 then begin
      let j = (i lxor am) lor bm in
      let ar = s.re.(i) and ai = s.im.(i) in
      s.re.(i) <- s.re.(j);
      s.im.(i) <- s.im.(j);
      s.re.(j) <- ar;
      s.im.(j) <- ai
    end
  done

let toffoli s c1 c2 t =
  check_qubit s c1;
  check_qubit s c2;
  check_qubit s t;
  if c1 = c2 || c1 = t || c2 = t then
    invalid_arg "Statevec.toffoli: repeated operands";
  let m1 = 1 lsl c1 and m2 = 1 lsl c2 and tm = 1 lsl t in
  for i = 0 to Array.length s.re - 1 do
    if i land m1 <> 0 && i land m2 <> 0 && i land tm = 0 then begin
      let j = i lor tm in
      let ar = s.re.(i) and ai = s.im.(i) in
      s.re.(i) <- s.re.(j);
      s.im.(i) <- s.im.(j);
      s.re.(j) <- ar;
      s.im.(j) <- ai
    end
  done

let apply_1q s m q =
  check_qubit s q;
  if Cmat.rows m <> 2 || Cmat.cols m <> 2 then
    invalid_arg "Statevec.apply_1q: not 2x2";
  let m00 = Cmat.get m 0 0
  and m01 = Cmat.get m 0 1
  and m10 = Cmat.get m 1 0
  and m11 = Cmat.get m 1 1 in
  iter_pairs s q (fun i0 i1 ->
      let a = Cx.make s.re.(i0) s.im.(i0) in
      let b = Cx.make s.re.(i1) s.im.(i1) in
      let a' = Cx.add (Cx.mul m00 a) (Cx.mul m01 b) in
      let b' = Cx.add (Cx.mul m10 a) (Cx.mul m11 b) in
      s.re.(i0) <- a'.re;
      s.im.(i0) <- a'.im;
      s.re.(i1) <- b'.re;
      s.im.(i1) <- b'.im)

let apply_gate s = function
  | Circuit.H q -> h s q
  | Circuit.X q -> x s q
  | Circuit.Y q -> y s q
  | Circuit.Z q -> z s q
  | Circuit.S q -> s_gate s q
  | Circuit.Sdg q -> sdg s q
  | Circuit.Cnot (c, t) -> cnot s c t
  | Circuit.Cz (a, b) -> cz s a b
  | Circuit.Swap (a, b) -> swap s a b
  | Circuit.Toffoli (a, b, t) -> toffoli s a b t

let apply_pauli s p =
  if Pauli.num_qubits p <> s.n then invalid_arg "Statevec.apply_pauli";
  for q = 0 to s.n - 1 do
    match Pauli.letter p q with
    | Pauli.I -> ()
    | Pauli.X -> x s q
    | Pauli.Y -> y s q
    | Pauli.Z -> z s q
  done;
  (match Pauli.phase p with
  | 0 -> ()
  | k ->
    let ph = match k with 1 -> Cx.i | 2 -> Cx.minus_one | _ -> Cx.neg Cx.i in
    for i = 0 to Array.length s.re - 1 do
      let a = Cx.mul ph (Cx.make s.re.(i) s.im.(i)) in
      s.re.(i) <- a.re;
      s.im.(i) <- a.im
    done)

let prob_one s q =
  check_qubit s q;
  let mask = 1 lsl q in
  let acc = ref 0.0 in
  for i = 0 to Array.length s.re - 1 do
    if i land mask <> 0 then
      acc := !acc +. (s.re.(i) *. s.re.(i)) +. (s.im.(i) *. s.im.(i))
  done;
  !acc

let project s q outcome =
  let mask = 1 lsl q in
  for i = 0 to Array.length s.re - 1 do
    let bit_one = i land mask <> 0 in
    if bit_one <> outcome then begin
      s.re.(i) <- 0.0;
      s.im.(i) <- 0.0
    end
  done

let postselect s q outcome =
  check_qubit s q;
  let p1 = prob_one s q in
  let p = if outcome then p1 else 1.0 -. p1 in
  if p > 0.0 then begin
    project s q outcome;
    normalize s
  end;
  p

let measure s rng q =
  let p1 = prob_one s q in
  let outcome = Random.State.float rng 1.0 < p1 in
  project s q outcome;
  normalize s;
  outcome

let measure_x s rng q =
  h s q;
  let outcome = measure s rng q in
  h s q;
  outcome

let reset s rng q =
  let outcome = measure s rng q in
  if outcome then x s q

let reduced_density_matrix s ~keep =
  let k = List.length keep in
  if k > 6 then invalid_arg "Statevec.reduced_density_matrix: keep <= 6";
  List.iter (check_qubit s) keep;
  let keep = Array.of_list keep in
  let dim = 1 lsl k in
  let rho = Cmat.zero ~rows:dim ~cols:dim in
  let sub_index i =
    let acc = ref 0 in
    Array.iteri (fun j q -> if (i lsr q) land 1 = 1 then acc := !acc lor (1 lsl j)) keep;
    !acc
  in
  let kept_mask = Array.fold_left (fun m q -> m lor (1 lsl q)) 0 keep in
  let n_total = Array.length s.re in
  (* ρ_{ab} = Σ_env ⟨a,env|ψ⟩⟨ψ|b,env⟩: group amplitudes by their
     environment part *)
  for i = 0 to n_total - 1 do
    let a = sub_index i in
    let env_i = i land lnot kept_mask in
    for b = 0 to dim - 1 do
      (* rebuild the full index with subsystem value b, same env *)
      let j = ref env_i in
      Array.iteri
        (fun jj q -> if (b lsr jj) land 1 = 1 then j := !j lor (1 lsl q))
        keep;
      let j = !j in
      let zi = Cx.make s.re.(i) s.im.(i) in
      let zj = Cx.make s.re.(j) s.im.(j) in
      Cmat.set rho a b (Cx.add (Cmat.get rho a b) (Cx.mul zi (Cx.conj zj)))
    done
  done;
  rho

let purity s ~keep =
  let rho = reduced_density_matrix s ~keep in
  (Qmath.Cmat.trace (Qmath.Cmat.mul rho rho)).Cx.re

let inner a b =
  if a.n <> b.n then invalid_arg "Statevec.inner";
  let accr = ref 0.0 and acci = ref 0.0 in
  for i = 0 to Array.length a.re - 1 do
    (* conj(a_i) * b_i *)
    accr := !accr +. (a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i));
    acci := !acci +. (a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i))
  done;
  Cx.make !accr !acci

let fidelity a b = Cx.norm2 (inner a b)

let expectation s p =
  let s' = copy s in
  apply_pauli s' p;
  (inner s s').re

let default_rng = lazy (Random.State.make [| 0x5eed |])

let run ?rng s c =
  let rng = match rng with Some r -> r | None -> Lazy.force default_rng in
  if Circuit.num_qubits c <> s.n then
    invalid_arg "Statevec.run: register size mismatch";
  let cbits = Array.make (Circuit.num_cbits c) false in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Gate g -> apply_gate s g
      | Circuit.Measure { qubit; cbit } -> cbits.(cbit) <- measure s rng qubit
      | Circuit.Measure_x { qubit; cbit } ->
        cbits.(cbit) <- measure_x s rng qubit
      | Circuit.Reset q -> reset s rng q
      | Circuit.Cond { cbit; gate } -> if cbits.(cbit) then apply_gate s gate
      | Circuit.Cond_parity { cbits = bs; gate } ->
        let parity =
          List.fold_left (fun acc b -> acc <> cbits.(b)) false bs
        in
        if parity then apply_gate s gate
      | Circuit.Tick -> ())
    (Circuit.instrs c);
  cbits

let equal_up_to_phase ?(tol = 1e-9) a b =
  a.n = b.n && Float.abs (fidelity a b -. 1.0) <= tol

let pp fmt s =
  let dim = Array.length s.re in
  let first = ref true in
  for i = 0 to dim - 1 do
    let z = Cx.make s.re.(i) s.im.(i) in
    if Cx.norm z > 1e-9 then begin
      if not !first then Format.pp_print_newline fmt ();
      first := false;
      let bits = String.init s.n (fun q -> if (i lsr q) land 1 = 1 then '1' else '0') in
      Format.fprintf fmt "%a · |%s⟩" Cx.pp z bits
    end
  done;
  if !first then Format.pp_print_string fmt "0"
