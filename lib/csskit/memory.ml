module Bitvec = Gf2.Bitvec
module Code = Codes.Stabilizer_code
module Plane = Frame.Plane
module Sampler = Frame.Sampler
module Program = Frame.Program

type engine = [ `Batch | `Scalar ]

(* XOR this round's residual anticommutation indicators into bx/bz
   (one slot per logical).  An undecodable syndrome counts as hitting
   every logical (the Pauli_frame "undecodable = failed" convention,
   XOR-composed like everything else). *)
let residual_into (t : Kit.t) dec e ~off bx bz =
  let code = t.code in
  match Code.decode dec (Code.syndrome code e) with
  | None ->
    for j = 0 to t.k - 1 do
      bx.(off + j) <- not bx.(off + j);
      bz.(off + j) <- not bz.(off + j)
    done
  | Some c ->
    let r = Pauli.mul c e in
    for j = 0 to t.k - 1 do
      if not (Pauli.commutes r code.Code.logical_z.(j)) then
        bx.(off + j) <- not bx.(off + j);
      if not (Pauli.commutes r code.Code.logical_x.(j)) then
        bz.(off + j) <- not bz.(off + j)
    done

let any_set a off len =
  let rec go i = i < len && (a.(off + i) || go (i + 1)) in
  go 0

let memory_trial (t : Kit.t) dec ~eps ~rounds rng =
  let bx = Array.make t.k false and bz = Array.make t.k false in
  for _ = 1 to rounds do
    let e = Codes.Pauli_frame.depolarize rng ~eps ~n:t.n in
    residual_into t dec e ~off:0 bx bz
  done;
  any_set bx 0 t.k || any_set bz 0 t.k

let memory_failure_mc ?domains ?obs (t : Kit.t) ~eps ~rounds ~trials ~seed () =
  if t.k < 1 then invalid_arg "Csskit.Memory: k >= 1 codes only";
  if rounds < 1 then invalid_arg "Csskit.Memory: rounds >= 1";
  let dec = Kit.decoder t in
  Mc.Runner.estimate ?domains ?obs ~trials ~seed
    (Mc.Runner.scalar (fun rng _ -> memory_trial t dec ~eps ~rounds rng))

(* ------------------------------------------------------------------ *)
(* Batch classifier compilation.                                      *)

(* For syndrome s with tabulated correction c_s and error e, the
   residual's logical-X indicator against logical j is
     ⟨c_s·e, Lz_j⟩ = ⟨c_s, Lz_j⟩ ⊕ ⟨e, Lz_j⟩
   by bilinearity of the symplectic product (likewise has_z against
   Lx_j) — an error parity word XOR a pure function of the syndrome
   bits.  Small codes tabulate that function over all 2^m syndromes
   and evaluate it as a word-wise disjoint-minterm OR-mux; large
   codes evaluate it per shot through a memo keyed by the syndrome
   bitstring. *)
type mode =
  | Mux of { active : bool array; ax : bool array array; az : bool array array }
  | Shot

type compiled = {
  k : int;
  m : int;  (* generator count = syndrome bits *)
  checks : Program.check array;  (* code.generators order: Z rows, X rows *)
  lzs : Program.check array;
  lxs : Program.check array;
  classify_syndrome : Bitvec.t -> bool array * bool array;
  mode : mode;
}

let compile ?(mux_max_checks = 8) (t : Kit.t) =
  let code = t.code in
  let dec = Kit.decoder t in
  let k = t.k in
  let m = Array.length code.Code.generators in
  let classify_syndrome sv =
    let jx = Array.make k false and jz = Array.make k false in
    (match Code.decode dec sv with
    | None ->
      Array.fill jx 0 k true;
      Array.fill jz 0 k true
    | Some c ->
      for j = 0 to k - 1 do
        jx.(j) <- not (Pauli.commutes c code.Code.logical_z.(j));
        jz.(j) <- not (Pauli.commutes c code.Code.logical_x.(j))
      done);
    (jx, jz)
  in
  let mode =
    if m > mux_max_checks then Shot
    else begin
      let size = 1 lsl m in
      let ax = Array.init k (fun _ -> Array.make size false) in
      let az = Array.init k (fun _ -> Array.make size false) in
      let active = Array.make size false in
      for s = 0 to size - 1 do
        let sv = Bitvec.create m in
        for i = 0 to m - 1 do
          if (s lsr i) land 1 = 1 then Bitvec.set sv i true
        done;
        let jx, jz = classify_syndrome sv in
        for j = 0 to k - 1 do
          ax.(j).(s) <- jx.(j);
          az.(j).(s) <- jz.(j);
          if jx.(j) || jz.(j) then active.(s) <- true
        done
      done;
      Mux { active; ax; az }
    end
  in
  {
    k;
    m;
    checks = Array.map Program.check_of_generator code.Code.generators;
    lzs = Array.map Program.check_of_generator code.Code.logical_z;
    lxs = Array.map Program.check_of_generator code.Code.logical_x;
    classify_syndrome;
    mode;
  }

let parity_sel (x : int64 array) (z : int64 array) (c : Program.check) =
  let acc = ref 0L in
  Array.iter (fun q -> acc := Int64.logxor !acc x.(q)) c.Program.x_sel;
  Array.iter (fun q -> acc := Int64.logxor !acc z.(q)) c.Program.z_sel;
  !acc

type worker = {
  plane : Plane.t;
  xs : int64 array;  (* one lane's X plane, word per qubit *)
  zs : int64 array;
  synd : int64 array;  (* m syndrome words for the current lane *)
  muxx : int64 array;  (* per-logical decoder-contribution words *)
  muxz : int64 array;
  accx : int64 array;  (* k * lanes accumulated has_x words *)
  accz : int64 array;
  memo : (string, bool array * bool array) Hashtbl.t;  (* per worker *)
  sbx : bool array;  (* scalar cross-check: tile_width * k residual bits *)
  sbz : bool array;
}

let memory_failure_batch ?domains ?obs ?(engine = `Batch) ?(tile_width = 64)
    ?mux_max_checks (t : Kit.t) ~eps ~rounds ~trials ~seed () =
  if t.k < 1 then invalid_arg "Csskit.Memory: k >= 1 codes only";
  if rounds < 1 then invalid_arg "Csskit.Memory: rounds >= 1";
  if tile_width < 64 || tile_width mod 64 <> 0 then
    invalid_arg "Csskit.Memory: tile_width must be a positive multiple of 64";
  let lanes = tile_width / 64 in
  let n = t.n and k = t.k in
  let cmp = compile ?mux_max_checks t in
  let dec = Kit.decoder t in
  let p = eps /. 3.0 in
  let prog =
    Program.make ~n
      [ Program.Depolarize { qubits = Array.init n Fun.id; px = p; py = p; pz = p } ]
  in
  let classify_lane w lane =
    (* syndrome words for this lane *)
    for q = 0 to n - 1 do
      w.xs.(q) <- Plane.get_x ~lane w.plane q;
      w.zs.(q) <- Plane.get_z ~lane w.plane q
    done;
    for i = 0 to cmp.m - 1 do
      w.synd.(i) <- parity_sel w.xs w.zs cmp.checks.(i)
    done;
    Array.fill w.muxx 0 k 0L;
    Array.fill w.muxz 0 k 0L;
    (match cmp.mode with
    | Mux { active; ax; az } ->
      for s = 0 to (1 lsl cmp.m) - 1 do
        if active.(s) then begin
          let minterm = ref (-1L) in
          for i = 0 to cmp.m - 1 do
            minterm :=
              Int64.logand !minterm
                (if (s lsr i) land 1 = 1 then w.synd.(i)
                 else Int64.lognot w.synd.(i))
          done;
          for j = 0 to k - 1 do
            if ax.(j).(s) then w.muxx.(j) <- Int64.logor w.muxx.(j) !minterm;
            if az.(j).(s) then w.muxz.(j) <- Int64.logor w.muxz.(j) !minterm
          done
        end
      done
    | Shot ->
      for b = 0 to 63 do
        let sv = Plane.shot_vec w.synd b in
        let key = Bitvec.to_string sv in
        let jx, jz =
          match Hashtbl.find_opt w.memo key with
          | Some hit -> hit
          | None ->
            let fresh = cmp.classify_syndrome sv in
            Hashtbl.add w.memo key fresh;
            fresh
        in
        let bit = Int64.shift_left 1L b in
        for j = 0 to k - 1 do
          if jx.(j) then w.muxx.(j) <- Int64.logor w.muxx.(j) bit;
          if jz.(j) then w.muxz.(j) <- Int64.logor w.muxz.(j) bit
        done
      done);
    for j = 0 to k - 1 do
      let px = parity_sel w.xs w.zs cmp.lzs.(j)
      and pz = parity_sel w.xs w.zs cmp.lxs.(j) in
      let slot = (j * lanes) + lane in
      w.accx.(slot) <- Int64.logxor w.accx.(slot) (Int64.logxor px w.muxx.(j));
      w.accz.(slot) <- Int64.logxor w.accz.(slot) (Int64.logxor pz w.muxz.(j))
    done
  in
  let batch w keys ~base:_ ~count =
    let sampler = Sampler.create_tile keys in
    match engine with
    | `Batch ->
      Array.fill w.accx 0 (k * lanes) 0L;
      Array.fill w.accz 0 (k * lanes) 0L;
      for _ = 1 to rounds do
        Plane.clear w.plane;
        Program.run_into prog sampler w.plane [||];
        for lane = 0 to lanes - 1 do
          classify_lane w lane
        done
      done;
      Array.init lanes (fun lane ->
          let word = ref 0L in
          for j = 0 to k - 1 do
            let slot = (j * lanes) + lane in
            word :=
              Int64.logor !word (Int64.logor w.accx.(slot) w.accz.(slot))
          done;
          !word)
    | `Scalar ->
      (* Cross-check engine: the identical sampler call sequence (so
         the identical noise), each shot extracted and classified by
         the scalar decoder.  Bit-identical to [`Batch] by
         construction. *)
      Array.fill w.sbx 0 (tile_width * k) false;
      Array.fill w.sbz 0 (tile_width * k) false;
      for _ = 1 to rounds do
        Plane.clear w.plane;
        Program.run_into prog sampler w.plane [||];
        for shot = 0 to count - 1 do
          let e = Plane.extract_shot w.plane shot in
          residual_into t dec e ~off:(shot * k) w.sbx w.sbz
        done
      done;
      Array.init lanes (fun lane ->
          let word = ref 0L in
          for b = 0 to 63 do
            let shot = (64 * lane) + b in
            if
              shot < count
              && (any_set w.sbx (shot * k) k || any_set w.sbz (shot * k) k)
            then word := Int64.logor !word (Int64.shift_left 1L b)
          done;
          !word)
  in
  Mc.Runner.estimate ?domains ?obs
    ~engine:(Mc.Engine.batch ~tile_width ())
    ~trials ~seed
    (Mc.Runner.model
       ~worker_init:(fun () ->
         {
           plane = Plane.create ~width:tile_width n;
           xs = Array.make n 0L;
           zs = Array.make n 0L;
           synd = Array.make (max cmp.m 1) 0L;
           muxx = Array.make k 0L;
           muxz = Array.make k 0L;
           accx = Array.make (k * lanes) 0L;
           accz = Array.make (k * lanes) 0L;
           memo = Hashtbl.create 64;
           sbx = Array.make (tile_width * k) false;
           sbz = Array.make (tile_width * k) false;
         })
       ~batch ())
