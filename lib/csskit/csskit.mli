(** Generic CSS code pipeline: parity-check matrices in — validated
    construction, distance probe, decoder, word-wise batch classifier
    and memory-failure estimators out.

    - The pipeline core ({!Kit}, included here): {!build} / {!t}.
    - {!Zoo}: cyclic and BCH-derived members ([steane7], [golay23],
      [bch15], [bch31]) plus the constructions behind them.
    - {!Memory}: scalar and bit-sliced memory-failure drivers for any
      pipeline code (the [css-memory] estimator's engine room). *)

include module type of struct
  include Kit
end

module Zoo : module type of Zoo
module Memory : module type of Memory
