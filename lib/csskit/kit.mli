(** The generic CSS pipeline: a pair of GF(2) parity-check matrices
    in, a validated code, a distance probe and a ready-made decoder
    out.

    {!build} runs the whole pipeline: CSS construction via
    {!Codes.Css.build} (commutation check, k = n − rank H_X − rank
    H_Z, logical extraction), a minimum-weight logical probe when no
    distance is declared, and decoder selection — the exact
    syndrome→correction lookup of {!Codes.Css.css_decoder} while the
    table fits the budget, a greedy syndrome-weight-descent fallback
    above it.  The resulting {!t} is what the batch classifier
    ({!Memory}) and the [css-memory] estimator consume. *)

type t = {
  name : string;
  code : Codes.Stabilizer_code.t;
  hx : Gf2.Mat.t;
  hz : Gf2.Mat.t;
  n : int;
  k : int;
  distance : int;  (** declared or probed CSS distance *)
  correctable : int;  (** ⌊(distance − 1) / 2⌋, per side *)
  decoder : Codes.Stabilizer_code.decoder Lazy.t;
  exact : bool;
      (** [true]: exact minimum-weight lookup; [false]: greedy
          fallback (table would exceed the budget) *)
}

type error =
  | Css of Codes.Css.error  (** (H_X, H_Z) is not a CSS pair *)
  | Distance_not_found of { cap : int }
      (** the probe found no logical operator of weight ≤ [cap] *)

val error_to_string : error -> string

exception Invalid of { name : string; error : error }

(** [probe_distance ~hx ~hz ~n ()] — the distance/weight probe:
    enumerate supports by increasing weight and return the least
    weight of a vector in ker H_Z \ rowspace H_X or in
    ker H_X \ rowspace H_Z (an X- or Z-type logical), or [None] if
    none exists up to [cap] (default 7). *)
val probe_distance :
  ?cap:int -> hx:Gf2.Mat.t -> hz:Gf2.Mat.t -> n:int -> unit -> int option

(** [build ~name ~hx ~hz ()] — run the pipeline.  [?distance]
    declares a known distance (skipping the probe; verified codes
    should cross-check with {!probe_distance}); [?distance_cap] bounds
    the probe (default 7); [?table_budget] caps the per-side exact
    decode-table size (default 2¹⁷ entries) above which the greedy
    decoder is compiled instead. *)
val build :
  ?distance:int ->
  ?distance_cap:int ->
  ?table_budget:int ->
  name:string ->
  hx:Gf2.Mat.t ->
  hz:Gf2.Mat.t ->
  unit ->
  (t, error) result

(** [build_exn] — {!build}, raising {!Invalid}. *)
val build_exn :
  ?distance:int ->
  ?distance_cap:int ->
  ?table_budget:int ->
  name:string ->
  hx:Gf2.Mat.t ->
  hz:Gf2.Mat.t ->
  unit ->
  t

(** [decoder t] forces and returns the compiled decoder. *)
val decoder : t -> Codes.Stabilizer_code.decoder

(** [decode t s] — correction for syndrome [s] (layout: Z-generator
    bits first, then X — the {!Codes.Css.make} convention). *)
val decode : t -> Gf2.Bitvec.t -> Pauli.t option

(** [syndrome t e] — the syndrome of error [e] under [t.code]. *)
val syndrome : t -> Pauli.t -> Gf2.Bitvec.t

(** [side_tables t] — the exact decoder's (bit-side, phase-side)
    syndrome tables in {!Codes.Css.side_table_entries} canonical form;
    raises [Invalid_argument] on a greedy-fallback code. *)
val side_tables : t -> (string * string) list * (string * string) list

(** [greedy_decode_side ~checks ~n syndrome] — the greedy fallback on
    one classical side, exposed for testing: repeatedly flip the bit
    that most reduces the residual syndrome weight; [Some support]
    once the syndrome is explained, [None] on a dead end. *)
val greedy_decode_side :
  checks:Gf2.Mat.t -> n:int -> Gf2.Bitvec.t -> Gf2.Bitvec.t option

(** [pp] renders e.g. ["[[23,1,7]] golay23 (exact)"]. *)
val pp : Format.formatter -> t -> unit
