module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat
module Code = Codes.Stabilizer_code

type t = {
  name : string;
  code : Code.t;
  hx : Mat.t;
  hz : Mat.t;
  n : int;
  k : int;
  distance : int;
  correctable : int;
  decoder : Code.decoder Lazy.t;
  exact : bool;
}

type error = Css of Codes.Css.error | Distance_not_found of { cap : int }

let error_to_string = function
  | Css e -> Codes.Css.error_to_string e
  | Distance_not_found { cap } ->
    Printf.sprintf "distance probe found no logical of weight <= %d" cap

exception Invalid of { name : string; error : error }

let () =
  Printexc.register_printer (function
    | Invalid { name; error } ->
      Some (Printf.sprintf "Csskit.build %S: %s" name (error_to_string error))
    | _ -> None)

(* Least weight <= cap of a vector in ker checks \ rowspace modulo
   (one side's logical operators), by increasing-weight support
   enumeration; the row-space membership test only runs on the
   codewords that survive the syndrome filter. *)
let side_logical_min_weight ~checks ~modulo ~n ~cap =
  let found = ref false in
  let rec enum support need start =
    if !found then ()
    else if need = 0 then begin
      if
        Bitvec.is_zero (Mat.mul_vec checks support)
        && not (Mat.in_row_space modulo support)
      then found := true
    end
    else
      for i = start to n - need do
        if not !found then begin
          let s = Bitvec.copy support in
          Bitvec.set s i true;
          enum s (need - 1) (i + 1)
        end
      done
  in
  let rec go w =
    if w > cap then None
    else begin
      enum (Bitvec.create n) w 0;
      if !found then Some w else go (w + 1)
    end
  in
  go 1

let probe_distance ?(cap = 7) ~hx ~hz ~n () =
  let x_side = side_logical_min_weight ~checks:hz ~modulo:hx ~n ~cap in
  let z_side = side_logical_min_weight ~checks:hx ~modulo:hz ~n ~cap in
  match (x_side, z_side) with
  | Some a, Some b -> Some (min a b)
  | (Some _ as d), None | None, (Some _ as d) -> d
  | None, None -> None

(* sum of C(n, i) for i = 0..w — the per-side exact-table size *)
let table_entries n w =
  let total = ref 0 and c = ref 1 in
  for i = 0 to w do
    if i > 0 then c := !c * (n - i + 1) / i;
    total := !total + !c
  done;
  !total

let greedy_decode_side ~checks ~n syndrome =
  let m = Mat.rows checks in
  if Bitvec.length syndrome <> m then
    invalid_arg "Csskit.greedy_decode_side: syndrome length";
  let col q =
    let v = Bitvec.create m in
    for i = 0 to m - 1 do
      if Mat.get checks i q then Bitvec.set v i true
    done;
    v
  in
  let cols = Array.init n col in
  let residual = Bitvec.copy syndrome in
  let support = Bitvec.create n in
  let stuck = ref false in
  while (not !stuck) && not (Bitvec.is_zero residual) do
    let best = ref (-1) and best_gain = ref 0 in
    let base = Bitvec.weight residual in
    for q = 0 to n - 1 do
      if not (Bitvec.get support q) then begin
        let gain = base - Bitvec.weight (Bitvec.xor residual cols.(q)) in
        if gain > !best_gain then begin
          best := q;
          best_gain := gain
        end
      end
    done;
    if !best < 0 then stuck := true
    else begin
      Bitvec.set support !best true;
      Bitvec.xor_into ~src:cols.(!best) residual
    end
  done;
  if Bitvec.is_zero residual then Some support else None

(* Greedy analogue of Codes.Css.css_decoder: bit- and phase-flip
   syndromes decoded independently, Z-generator bits first. *)
let greedy_decoder ~hx ~hz ~n =
  let nz = Mat.rows hz and nx = Mat.rows hx in
  Code.decoder_of_fn ~n (fun s ->
      if Bitvec.length s <> nz + nx then None
      else begin
        let s_bit = Bitvec.sub s ~pos:0 ~len:nz in
        let s_phase = Bitvec.sub s ~pos:nz ~len:nx in
        match
          ( greedy_decode_side ~checks:hz ~n s_bit,
            greedy_decode_side ~checks:hx ~n s_phase )
        with
        | Some e_bit, Some e_phase ->
          Some
            (Pauli.mul (Codes.Css.x_string e_bit) (Codes.Css.z_string e_phase))
        | _ -> None
      end)

let default_table_budget = 1 lsl 17

let build ?distance ?(distance_cap = 7) ?(table_budget = default_table_budget)
    ~name ~hx ~hz () =
  match Codes.Css.build ~name ~hx ~hz with
  | Error e -> Error (Css e)
  | Ok code -> (
    let n = code.Code.n and k = code.Code.k in
    let d =
      match distance with
      | Some d -> if d >= 1 then Ok d else Error (Distance_not_found { cap = 0 })
      | None -> (
        match probe_distance ~cap:distance_cap ~hx ~hz ~n () with
        | Some d -> Ok d
        | None -> Error (Distance_not_found { cap = distance_cap }))
    in
    match d with
    | Error e -> Error e
    | Ok distance ->
      let correctable = (distance - 1) / 2 in
      let exact = table_entries n correctable <= table_budget in
      let decoder =
        lazy
          (if exact then
             Codes.Css.css_decoder ~max_weight_per_side:correctable ~hx ~hz ~n
               ()
           else greedy_decoder ~hx ~hz ~n)
      in
      Ok { name; code; hx; hz; n; k; distance; correctable; decoder; exact })

let build_exn ?distance ?distance_cap ?table_budget ~name ~hx ~hz () =
  match build ?distance ?distance_cap ?table_budget ~name ~hx ~hz () with
  | Ok t -> t
  | Error error -> raise (Invalid { name; error })

let decoder t = Lazy.force t.decoder
let decode t s = Code.decode (decoder t) s
let syndrome t e = Code.syndrome t.code e

let side_tables t =
  if not t.exact then
    invalid_arg "Csskit.side_tables: greedy decoder has no lookup table";
  let entries checks =
    Codes.Css.side_table_entries ~checks ~n:t.n ~max_weight:t.correctable
  in
  (entries t.hz, entries t.hx)

let pp fmt t =
  Format.fprintf fmt "[[%d,%d,%d]] %s (%s)" t.n t.k t.distance t.name
    (if t.exact then "exact" else "greedy")
