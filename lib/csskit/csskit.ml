include Kit
module Zoo = Zoo
module Memory = Memory
