module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat
module Poly = Gf2.Poly

let cyclic_generator ~n poly =
  if Poly.is_zero poly then invalid_arg "Zoo.cyclic_generator: zero polynomial";
  if not (Poly.divides poly (Poly.xn_plus_one n)) then
    invalid_arg "Zoo.cyclic_generator: polynomial must divide x^n + 1";
  let d = Poly.degree poly in
  let exps = Poly.to_exponents poly in
  let row shift =
    let v = Bitvec.create n in
    List.iter (fun e -> Bitvec.set v (e + shift) true) exps;
    v
  in
  Mat.of_rows (List.init (n - d) row)

let cyclic_parity_check ~n poly =
  Mat.of_rows (Mat.kernel (cyclic_generator ~n poly))

let cyclic ?distance ~name ~n ~poly () =
  let h = cyclic_parity_check ~n poly in
  Kit.build ?distance ~name ~hx:h ~hz:h ()

(* ------------------------------------------------------------------ *)
(* BCH machinery: GF(2^m) elements as bitmask ints, multiplication by
   carry-less product with reduction modulo a primitive polynomial.   *)

let primitive_polynomial = function
  | 3 -> 0b1011 (* x^3 + x + 1 *)
  | 4 -> 0b10011 (* x^4 + x + 1 *)
  | 5 -> 0b100101 (* x^5 + x^2 + 1 *)
  | 6 -> 0b1000011 (* x^6 + x + 1 *)
  | m -> invalid_arg (Printf.sprintf "Zoo: no primitive polynomial for m=%d" m)

let gf_mul ~m ~prim a b =
  let r = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then r := !r lxor !a;
    b := !b lsr 1;
    a := !a lsl 1;
    if !a land (1 lsl m) <> 0 then a := !a lxor prim
  done;
  !r

let cyclotomic_coset ~n s =
  let rec go acc j = if List.mem j acc then acc else go (j :: acc) (j * 2 mod n) in
  List.sort compare (go [] (((s mod n) + n) mod n))

let minimal_polynomial ~m s =
  let n = (1 lsl m) - 1 in
  let prim = primitive_polynomial m in
  let alpha_pow e =
    let r = ref 1 in
    for _ = 1 to e do
      r := gf_mul ~m ~prim !r 2
    done;
    !r
  in
  (* Π (x + α^j) over the coset, in GF(2^m)[x]; coefficients of the
     product land in GF(2) — asserted below. *)
  let p = ref [| 1 |] in
  List.iter
    (fun j ->
      let root = alpha_pow j in
      let old = !p in
      let len = Array.length old in
      let next = Array.make (len + 1) 0 in
      Array.iteri
        (fun i c ->
          next.(i + 1) <- next.(i + 1) lxor c;
          next.(i) <- next.(i) lxor gf_mul ~m ~prim root c)
        old;
      p := next)
    (cyclotomic_coset ~n s);
  let exps = ref [] in
  Array.iteri
    (fun i c ->
      assert (c = 0 || c = 1);
      if c = 1 then exps := i :: !exps)
    !p;
  Poly.of_exponents !exps

let bch_generator ~m ~defining =
  let n = (1 lsl m) - 1 in
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun g s ->
      let rep = List.hd (cyclotomic_coset ~n s) in
      if Hashtbl.mem seen rep then g
      else begin
        Hashtbl.add seen rep ();
        Poly.mul g (minimal_polynomial ~m s)
      end)
    Poly.one defining

let bch ?distance ~name ~m ~defining () =
  let n = (1 lsl m) - 1 in
  cyclic ?distance ~name ~n ~poly:(bch_generator ~m ~defining) ()

(* ------------------------------------------------------------------ *)

(* The cyclic [7,4,3] code of x^3 + x + 1 is the standard Hamming code
   up to a coordinate relabeling.  Both parity checks are 3x7 of rank
   3 for distance-3 codes, so each carries all 7 distinct nonzero
   3-bit columns; matching columns therefore defines a permutation,
   and permuting the cyclic check by it yields *exactly*
   Codes.Hamming.parity_check (asserted) — the pipeline-built Steane
   code shares the hand-written stack's syndrome tables bit for
   bit. *)
let steane_parity_check () =
  let hc = cyclic_parity_check ~n:7 (Poly.of_exponents [ 0; 1; 3 ]) in
  let hh = Codes.Hamming.parity_check in
  let col m j = List.init (Mat.rows m) (fun i -> Mat.get m i j) in
  let perm =
    Array.init 7 (fun q ->
        let target = col hh q in
        let rec find i =
          if i = 7 then invalid_arg "Zoo.steane_parity_check: column mismatch"
          else if col hc i = target then i
          else find (i + 1)
        in
        find 0)
  in
  let permuted = Mat.create ~rows:3 ~cols:7 in
  for i = 0 to 2 do
    for q = 0 to 6 do
      Mat.set permuted i q (Mat.get hc i perm.(q))
    done
  done;
  assert (Mat.equal permuted hh);
  permuted

type entry = { name : string; summary : string; code : Kit.t Lazy.t }

let forced name = function
  | Ok t -> t
  | Error e ->
    (* registry members are fixed constructions: failure is a bug *)
    failwith (Printf.sprintf "Zoo.%s: %s" name (Kit.error_to_string e))

let entries =
  [
    {
      name = "steane7";
      summary = "[[7,1,3]] Steane from the cyclic Hamming code of x^3+x+1";
      code =
        lazy
          (let h = steane_parity_check () in
           forced "steane7" (Kit.build ~distance:3 ~name:"steane7" ~hx:h ~hz:h ()));
    };
    {
      name = "golay23";
      summary = "[[23,1,7]] from the binary Golay code of x^11+x^9+x^7+x^6+x^5+x+1";
      code =
        lazy
          (forced "golay23"
             (cyclic ~distance:7 ~name:"golay23" ~n:23
                ~poly:(Poly.of_exponents [ 0; 1; 5; 6; 7; 9; 11 ])
                ()));
    };
    {
      name = "bch15";
      summary = "[[15,7,3]] from the BCH [15,11,3] code (defining set {1})";
      code =
        lazy
          (forced "bch15"
             (bch ~distance:3 ~name:"bch15" ~m:4 ~defining:[ 1 ] ()));
    };
    {
      name = "bch31";
      summary = "[[31,21,3]] from the BCH [31,26,3] code (defining set {1})";
      code =
        lazy
          (forced "bch31"
             (bch ~distance:3 ~name:"bch31" ~m:5 ~defining:[ 1 ] ()));
    };
  ]

let names () = List.map (fun e -> e.name) entries
let mem name = List.exists (fun e -> e.name = name) entries

let find name =
  List.find_opt (fun e -> e.name = name) entries
  |> Option.map (fun e -> Lazy.force e.code)

let get name =
  match find name with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "Zoo.get: unknown code %S (known: %s)" name
         (String.concat ", " (names ())))
