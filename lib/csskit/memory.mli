(** Memory-failure model for any pipeline-built CSS code, in the
    {!Codes.Pauli_frame} style: each round draws a fresh depolarizing
    error, decodes its syndrome, and XOR-accumulates the residual's
    anticommutation bits against every logical pair; a trial fails if
    any logical is hit after [rounds] rounds (k ≥ 1 codes — the
    k-generic extension of the k = 1 Steane stack).

    The batch driver runs on the bit-sliced {!Frame} engine at any
    tile width.  The classifier is compiled from the code's own
    decoder: codes with ≤ [mux_max_checks] generators use a fully
    word-wise disjoint syndrome-minterm OR-mux (the Steane-table
    construction, generalized); larger codes (e.g. Golay's 22 checks)
    assemble per-shot syndromes from the syndrome words and decode
    through a per-worker memo table.  The [`Scalar] engine is the
    cross-check: the identical sampler sequence with each shot
    extracted and classified by the scalar decoder — counts are
    bit-identical to [`Batch] by construction. *)

type engine = [ `Batch | `Scalar ]

(** [memory_trial t decoder ~eps ~rounds rng] — one scalar trial. *)
val memory_trial :
  Kit.t ->
  Codes.Stabilizer_code.decoder ->
  eps:float ->
  rounds:int ->
  Random.State.t ->
  bool

(** [memory_failure_mc t ~eps ~rounds ~trials ~seed ()] — the scalar
    Monte-Carlo estimate (domain-parallel, checkpointable). *)
val memory_failure_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  Kit.t ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [memory_failure_batch t ~eps ~rounds ~trials ~seed ()] — the
    bit-sliced estimate ([tile_width] ∈ 64·ℕ shots per op);
    [~engine:`Scalar] runs the bit-identical scalar cross-check
    through the same sampler stream. *)
val memory_failure_batch :
  ?domains:int ->
  ?obs:Obs.t ->
  ?engine:engine ->
  ?tile_width:int ->
  ?mux_max_checks:int ->
  Kit.t ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate
