(** n-qubit Pauli operators in the symplectic representation.

    An operator is i^phase · ∏_q X_q^{x_q} Z_q^{z_q}, stored as two bit
    vectors [x], [z] and a phase exponent mod 4.  The single-qubit
    letter at qubit q is I (00), X (10), Z (01) or Y (11, meaning iXZ —
    the textbook Y).  This is the representation in which stabilizer
    generators (Eq. 18) and Gottesman's error operators Z̄X̄ (§4.2) are
    manipulated. *)

type t

(** Single-qubit letters. *)
type letter = I | X | Y | Z

(** [identity n] is the identity on [n] qubits. *)
val identity : int -> t

(** [num_qubits p]. *)
val num_qubits : t -> int

(** [phase p] is the exponent k in the global factor i^k, 0 ≤ k < 4. *)
val phase : t -> int

(** [single n q letter] is the weight-≤1 operator with [letter] at
    qubit [q]. *)
val single : int -> int -> letter -> t

(** [of_letters letters] builds from a list of per-qubit letters. *)
val of_letters : letter list -> t

(** [of_string s] parses e.g. "IIIZZZZ", optionally prefixed by
    "+", "-", "i", or "-i".  Raises [Invalid_argument] on malformed
    input. *)
val of_string : string -> t

(** [to_string p] renders the phase prefix and the letters. *)
val to_string : t -> string

(** [letter p q] is the letter at qubit [q]. *)
val letter : t -> int -> letter

(** [set_letter p q letter] returns a copy of [p] with the letter at
    qubit [q] replaced (phase untouched). *)
val set_letter : t -> int -> letter -> t

(** [x_bits p] / [z_bits p] expose copies of the symplectic halves. *)
val x_bits : t -> Gf2.Bitvec.t

val z_bits : t -> Gf2.Bitvec.t

(** [of_bits ?phase ~x ~z ()] builds from symplectic halves. *)
val of_bits : ?phase:int -> x:Gf2.Bitvec.t -> z:Gf2.Bitvec.t -> unit -> t

(** [mul a b] is the operator product a·b with exact phase. *)
val mul : t -> t -> t

(** [commutes a b] is [true] iff a·b = b·a (symplectic inner product
    vanishes). *)
val commutes : t -> t -> bool

(** [weight p] counts qubits with non-identity letters. *)
val weight : t -> int

(** [equal a b] / [equal_up_to_phase a b] / [compare a b]. *)
val equal : t -> t -> bool

val equal_up_to_phase : t -> t -> bool
val compare : t -> t -> int

(** [neg p] is −p; [mul_phase p k] multiplies by i^k. *)
val neg : t -> t

val mul_phase : t -> int -> t

(** [to_matrix p] is the 2ⁿ×2ⁿ dense matrix (use only for small n). *)
val to_matrix : t -> Qmath.Cmat.t

(** [random rng n] is a uniformly random n-qubit Pauli with +1
    phase (identity included). *)
val random : Random.State.t -> int -> t

(** [pp]. *)
val pp : Format.formatter -> t -> unit
