module Bitvec = Gf2.Bitvec

type letter = I | X | Y | Z

(* Internal form: i^r · ∏_q X^{x_q} Z^{z_q}.  The textbook letter Y is
   iXZ, so a Y at a qubit is (x=1, z=1) with one factor of i folded
   into [r].  The [phase] accessor converts back to the letter-based
   convention. *)
type t = { n : int; x : Bitvec.t; z : Bitvec.t; r : int }

let identity n = { n; x = Bitvec.create n; z = Bitvec.create n; r = 0 }
let num_qubits p = p.n

let count_y p = Bitvec.weight (Bitvec.and_ p.x p.z)
let phase p = ((p.r - count_y p) mod 4 + 4) mod 4

let letter p q =
  match (Bitvec.get p.x q, Bitvec.get p.z q) with
  | false, false -> I
  | true, false -> X
  | false, true -> Z
  | true, true -> Y

let letter_bits = function
  | I -> (false, false)
  | X -> (true, false)
  | Z -> (false, true)
  | Y -> (true, true)

let single n q l =
  let p = identity n in
  let bx, bz = letter_bits l in
  Bitvec.set p.x q bx;
  Bitvec.set p.z q bz;
  let r = if l = Y then 1 else 0 in
  { p with r }

let of_letters letters =
  let n = List.length letters in
  let p = identity n in
  let r = ref 0 in
  List.iteri
    (fun q l ->
      let bx, bz = letter_bits l in
      Bitvec.set p.x q bx;
      Bitvec.set p.z q bz;
      if l = Y then incr r)
    letters;
  { p with r = !r mod 4 }

let of_string s =
  let prefix_phase, rest =
    if String.length s >= 2 && String.sub s 0 2 = "-i" then (3, String.sub s 2 (String.length s - 2))
    else if String.length s >= 1 && s.[0] = '-' then (2, String.sub s 1 (String.length s - 1))
    else if String.length s >= 1 && s.[0] = 'i' then (1, String.sub s 1 (String.length s - 1))
    else if String.length s >= 1 && s.[0] = '+' then (0, String.sub s 1 (String.length s - 1))
    else (0, s)
  in
  let letters =
    List.init (String.length rest) (fun i ->
        match rest.[i] with
        | 'I' -> I
        | 'X' -> X
        | 'Y' -> Y
        | 'Z' -> Z
        | c -> invalid_arg (Printf.sprintf "Pauli.of_string: bad letter %c" c))
  in
  let p = of_letters letters in
  { p with r = (p.r + prefix_phase) mod 4 }

let to_string p =
  let prefix =
    match phase p with
    | 0 -> ""
    | 1 -> "i"
    | 2 -> "-"
    | _ -> "-i"
  in
  prefix
  ^ String.init p.n (fun q ->
        match letter p q with I -> 'I' | X -> 'X' | Y -> 'Y' | Z -> 'Z')

let set_letter p q l =
  let x = Bitvec.copy p.x and z = Bitvec.copy p.z in
  let old_y = Bitvec.get x q && Bitvec.get z q in
  let bx, bz = letter_bits l in
  Bitvec.set x q bx;
  Bitvec.set z q bz;
  let dy = (if l = Y then 1 else 0) - if old_y then 1 else 0 in
  { p with x; z; r = ((p.r + dy) mod 4 + 4) mod 4 }

let x_bits p = Bitvec.copy p.x
let z_bits p = Bitvec.copy p.z

let of_bits ?(phase = 0) ~x ~z () =
  if Bitvec.length x <> Bitvec.length z then invalid_arg "Pauli.of_bits";
  let p = { n = Bitvec.length x; x = Bitvec.copy x; z = Bitvec.copy z; r = 0 } in
  (* [phase] is relative to the letter convention; convert to r. *)
  { p with r = ((phase + count_y p) mod 4 + 4) mod 4 }

let mul a b =
  if a.n <> b.n then invalid_arg "Pauli.mul: qubit count mismatch";
  (* Z^{z_a} X^{x_b} = (−1)^{z_a·x_b} X^{x_b} Z^{z_a} *)
  let anticomm = if Bitvec.dot a.z b.x then 2 else 0 in
  { n = a.n;
    x = Bitvec.xor a.x b.x;
    z = Bitvec.xor a.z b.z;
    r = (a.r + b.r + anticomm) mod 4 }

let commutes a b =
  if a.n <> b.n then invalid_arg "Pauli.commutes";
  Bool.equal (Bitvec.dot a.x b.z) (Bitvec.dot a.z b.x)

(* weight = #{q : x_q ∨ z_q} = |x| + |z| − |x ∧ z| *)
let weight p =
  Bitvec.weight p.x + Bitvec.weight p.z - Bitvec.weight (Bitvec.and_ p.x p.z)

let equal a b =
  a.n = b.n && Bitvec.equal a.x b.x && Bitvec.equal a.z b.z
  && (a.r mod 4 + 4) mod 4 = (b.r mod 4 + 4) mod 4

let equal_up_to_phase a b =
  a.n = b.n && Bitvec.equal a.x b.x && Bitvec.equal a.z b.z

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c
  else
    let c = Bitvec.compare a.x b.x in
    if c <> 0 then c
    else
      let c = Bitvec.compare a.z b.z in
      if c <> 0 then c
      else Int.compare ((a.r mod 4 + 4) mod 4) ((b.r mod 4 + 4) mod 4)

let neg p = { p with r = (p.r + 2) mod 4 }
let mul_phase p k = { p with r = ((p.r + k) mod 4 + 4) mod 4 }

let to_matrix p =
  let letter_mat q =
    match letter p q with
    | I -> Qmath.Gates.id2
    | X -> Qmath.Gates.x
    | Y -> Qmath.Gates.y
    | Z -> Qmath.Gates.z
  in
  let base =
    if p.n = 0 then Qmath.Cmat.identity 1
    else Qmath.Cmat.kron_list (List.init p.n letter_mat)
  in
  let ph =
    match phase p with
    | 0 -> Qmath.Cx.one
    | 1 -> Qmath.Cx.i
    | 2 -> Qmath.Cx.minus_one
    | _ -> Qmath.Cx.neg Qmath.Cx.i
  in
  Qmath.Cmat.smul ph base

let random rng n =
  let letters =
    List.init n (fun _ ->
        match Random.State.int rng 4 with
        | 0 -> I
        | 1 -> X
        | 2 -> Y
        | _ -> Z)
  in
  of_letters letters

let pp fmt p = Format.pp_print_string fmt (to_string p)
