(** Bit-sliced Pauli-frame state: a tile of X and Z words per qubit.
    A plane of [width = 64 * lanes] carries [lanes] words per qubit
    per plane; bit [k] of lane [j] is Monte-Carlo shot [64 * j + k] of
    the tile.  Frame propagation through Clifford gates and noise
    injection are word-wise XOR/AND, advancing all [width] shots per
    operation. *)

type t

(** [create ?width n] — an [n]-qubit all-identity frame tile.
    [width] (default 64) must be a positive multiple of 64. *)
val create : ?width:int -> int -> t

val num_qubits : t -> int

(** Words per qubit per plane ([width / 64]). *)
val lanes : t -> int

(** Shots per tile ([64 * lanes]). *)
val width : t -> int

(** [clear t] — reset every shot's frame to the identity. *)
val clear : t -> unit

(** Symplectic frame propagation (all lanes). *)
val cnot : t -> int -> int -> unit

val h : t -> int -> unit
val s_gate : t -> int -> unit

(** Raw plane access (bit [k] of lane [j] = shot [64 * j + k];
    [lane] defaults to 0). *)
val xor_x : ?lane:int -> t -> int -> int64 -> unit

val xor_z : ?lane:int -> t -> int -> int64 -> unit
val get_x : ?lane:int -> t -> int -> int64
val get_z : ?lane:int -> t -> int -> int64

(** [parity_x ?lane t qubits] — word whose bit [k] is the X-plane
    parity of lane shot [k] over [qubits] (likewise {!parity_z}). *)
val parity_x : ?lane:int -> t -> int array -> int64

val parity_z : ?lane:int -> t -> int array -> int64

(** [parity_check_into t ~x_sel ~z_sel dst off] — one whole syndrome
    tile: for every lane [j], [dst.(off + j)] receives the X parity
    over [x_sel] XOR the Z parity over [z_sel]. *)
val parity_check_into :
  t -> x_sel:int array -> z_sel:int array -> int64 array -> int -> unit

(** Word-sampled noise injection across all lanes (see {!Sampler}). *)
val depolarize :
  t -> Sampler.t -> qubits:int array -> px:float -> py:float -> pz:float -> unit

val flip_x : t -> Sampler.t -> qubits:int array -> p:float -> unit
val flip_z : t -> Sampler.t -> qubits:int array -> p:float -> unit

(** Plan-compiled variants (the hot path of compiled programs). *)
val depolarize_plan :
  t -> Sampler.t -> qubits:int array -> Sampler.pauli_plan -> unit

val flip_x_plan : t -> Sampler.t -> qubits:int array -> Sampler.plan -> unit
val flip_z_plan : t -> Sampler.t -> qubits:int array -> Sampler.plan -> unit

(** [blit_x t dst off] — copy the whole row-major X plane
    ([num_qubits * lanes] words, qubit-major) into [dst] at [off]
    (likewise {!blit_z}). *)
val blit_x : t -> int64 array -> int -> unit

val blit_z : t -> int64 array -> int -> unit

(** [bit w k] — bit [k] of a word, as a bool. *)
val bit : int64 -> int -> bool

(** [shot_vec words k] — transpose one shot out of a word array: bit
    [i] of the result is bit [k] of [words.(i)]. *)
val shot_vec : int64 array -> int -> Gf2.Bitvec.t

(** [row_shot_vec rows ~lanes ~lane ~pos ~len k] — as {!shot_vec} for
    lane [lane] of a row-major array of [lanes]-wide rows: bit [i] of
    the result is bit [k] of [rows.((pos + i) * lanes + lane)]. *)
val row_shot_vec :
  int64 array -> lanes:int -> lane:int -> pos:int -> len:int -> int ->
  Gf2.Bitvec.t

(** [load_shot words k v] — inverse of {!shot_vec}: write bitvector
    [v] into bit position [k] of each word. *)
val load_shot : int64 array -> int -> Gf2.Bitvec.t -> unit

(** [transpose64 a off] — in-place 64x64 bit-matrix transpose of
    [a.(off .. off + 63)], LSB-first: afterwards bit [i] of
    [a.(off + k)] is what bit [k] of [a.(off + i)] was. *)
val transpose64 : int64 array -> int -> unit

(** [transpose_rows ~src ~lanes ~lane ~pos ~nrows dst] — tile-at-a-time
    shot extraction: gather rows [pos .. pos + nrows - 1] of lane
    [lane] from row-major [src] and block-transpose, so that
    [dst.(64 * d + k)] holds word [d] of shot [k]'s bitstring.  [dst]
    needs [ceil(nrows / 64) * 64] slots; rows beyond [nrows] read as
    0. *)
val transpose_rows :
  src:int64 array -> lanes:int -> lane:int -> pos:int -> nrows:int ->
  int64 array -> unit

(** [shot_of_transposed dst ~len k] — shot [k]'s bitstring from a
    buffer prepared by {!transpose_rows} with [nrows = len]. *)
val shot_of_transposed : int64 array -> len:int -> int -> Gf2.Bitvec.t

(** [transpose_x t ~lane dst] — {!transpose_rows} over the X plane of
    one lane ([nrows = num_qubits t]). *)
val transpose_x : t -> lane:int -> int64 array -> unit

(** [extract_shot t k] — tile shot [k]'s frame as a [Pauli.t]
    (phase-free); [k] ranges over [0 .. width - 1]. *)
val extract_shot : t -> int -> Pauli.t

(** [extract_shot_x t k] — tile shot [k]'s X plane only (for
    X-error-only models such as the toric memory). *)
val extract_shot_x : t -> int -> Gf2.Bitvec.t
