(** Bit-sliced Pauli-frame state: one X word and one Z word per qubit,
    where bit [k] of each word is Monte-Carlo shot [k].  Frame
    propagation through Clifford gates and noise injection are
    word-wise XOR/AND, advancing all 64 shots per operation. *)

type t

(** [create n] — an [n]-qubit all-identity frame batch. *)
val create : int -> t

val num_qubits : t -> int

(** [clear t] — reset every shot's frame to the identity. *)
val clear : t -> unit

(** Symplectic frame propagation. *)
val cnot : t -> int -> int -> unit

val h : t -> int -> unit
val s_gate : t -> int -> unit

(** Raw plane access (bit [k] = shot [k]). *)
val xor_x : t -> int -> int64 -> unit

val xor_z : t -> int -> int64 -> unit
val get_x : t -> int -> int64
val get_z : t -> int -> int64

(** [parity_x t qubits] — word whose bit [k] is the X-plane parity of
    shot [k] over [qubits] (likewise {!parity_z}). *)
val parity_x : t -> int array -> int64

val parity_z : t -> int array -> int64

(** Word-sampled noise injection (see {!Sampler}). *)
val depolarize :
  t -> Sampler.t -> qubits:int array -> px:float -> py:float -> pz:float -> unit

val flip_x : t -> Sampler.t -> qubits:int array -> p:float -> unit
val flip_z : t -> Sampler.t -> qubits:int array -> p:float -> unit

(** [bit w k] — bit [k] of a word, as a bool. *)
val bit : int64 -> int -> bool

(** [shot_vec words k] — transpose one shot out of a word array: bit
    [i] of the result is bit [k] of [words.(i)]. *)
val shot_vec : int64 array -> int -> Gf2.Bitvec.t

(** [load_shot words k v] — inverse of {!shot_vec}: write bitvector
    [v] into bit position [k] of each word. *)
val load_shot : int64 array -> int -> Gf2.Bitvec.t -> unit

(** [extract_shot t k] — shot [k]'s frame as a [Pauli.t]
    (phase-free). *)
val extract_shot : t -> int -> Pauli.t

(** [extract_shot_x t k] — shot [k]'s X plane only (for X-error-only
    models such as the toric memory). *)
val extract_shot_x : t -> int -> Gf2.Bitvec.t
