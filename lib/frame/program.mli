(** Compiled frame programs.

    A circuit — or the ideal-EC round structure of the Monte-Carlo
    drivers — is compiled once into a flat array of ops: stochastic
    fault sites (resolved to {!Sampler} digit plans at {!make} time),
    CNOT/H/S frame-propagation gates, and syndrome extractions.
    {!run} executes one whole tile — [Plane.width] shots — at once
    against a {!Sampler} and a {!Plane}; each [Extract] appends one
    syndrome tile per check ([lanes] words, bit [k] of lane [j] =
    tile shot [64·j + k]), which {!Plane.shot_vec} /
    {!Plane.transpose_rows} transpose to per-shot bitstrings for the
    existing decoders. *)

(** One syndrome bit: parity of the X plane over [x_sel] XOR parity of
    the Z plane over [z_sel]. *)
type check = { x_sel : int array; z_sel : int array }

type op =
  | Depolarize of { qubits : int array; px : float; py : float; pz : float }
  | Flip_x of { qubits : int array; p : float }
  | Flip_z of { qubits : int array; p : float }
  | Cnot of int * int
  | H of int
  | S of int
  | Extract of check array

type t

(** [check_of_generator g] — the check measuring stabilizer [g]:
    [x_sel] is the support of z(g), [z_sel] the support of x(g), so
    the extracted bit is the commutator x(e)·z(g) ⊕ z(e)·x(g). *)
val check_of_generator : Pauli.t -> check

(** [make ~n ops] — validate and flatten. *)
val make : n:int -> op list -> t

val num_qubits : t -> int

(** Number of syndrome tiles produced per {!run} (each spans
    [Plane.lanes plane] words in the output buffer). *)
val out_words : t -> int

(** [run t sampler plane] — execute all ops in order (the plane is
    *not* cleared first, so multi-round drivers can accumulate);
    returns the extracted syndrome tiles, row-major (check [i]'s
    lane [j] at index [i * lanes + j]). *)
val run : t -> Sampler.t -> Plane.t -> int64 array

(** [run_into t sampler plane out] — as {!run}, into a caller buffer
    (first [out_words t * Plane.lanes plane] slots).  The sampler's
    lane count must match the plane's. *)
val run_into : t -> Sampler.t -> Plane.t -> int64 array -> unit
