(* A frame program is a circuit (or ideal-EC round structure) compiled
   once into a flat array of ops: stochastic fault sites, Clifford
   frame-propagation gates, and syndrome extractions.  Fault sites are
   compiled to Sampler digit plans at [make] time, so the run loop
   executes no float code and no digit scans.  Running a program
   against a Sampler and a Plane executes one whole tile —
   [Plane.width] shots — at once; the extracted syndrome tiles
   transpose to per-shot bitstrings for the existing (scalar) decoders
   via Plane.shot_vec / Plane.transpose_rows. *)

(* Syndrome bit of generator g on error e = x(e)·z(g) ⊕ z(e)·x(g):
   [x_sel] lists the qubits read from the X plane (the support of
   z(g)), [z_sel] the qubits read from the Z plane. *)
type check = { x_sel : int array; z_sel : int array }

type op =
  | Depolarize of { qubits : int array; px : float; py : float; pz : float }
  | Flip_x of { qubits : int array; p : float }
  | Flip_z of { qubits : int array; p : float }
  | Cnot of int * int
  | H of int
  | S of int
  | Extract of check array

(* Compiled form: probabilities resolved to digit plans. *)
type cop =
  | C_depolarize of { qubits : int array; pp : Sampler.pauli_plan }
  | C_flip_x of { qubits : int array; pl : Sampler.plan }
  | C_flip_z of { qubits : int array; pl : Sampler.plan }
  | C_cnot of int * int
  | C_h of int
  | C_s of int
  | C_extract of check array

type t = { n : int; cops : cop array; out_words : int }

let check_of_generator g =
  let sup v = Array.of_list (Gf2.Bitvec.support v) in
  { x_sel = sup (Pauli.z_bits g); z_sel = sup (Pauli.x_bits g) }

let num_out ops =
  List.fold_left
    (fun acc -> function Extract cs -> acc + Array.length cs | _ -> acc)
    0 ops

let compile = function
  | Depolarize { qubits; px; py; pz } ->
    C_depolarize { qubits; pp = Sampler.pauli_plan ~px ~py ~pz }
  | Flip_x { qubits; p } -> C_flip_x { qubits; pl = Sampler.plan p }
  | Flip_z { qubits; p } -> C_flip_z { qubits; pl = Sampler.plan p }
  | Cnot (a, b) -> C_cnot (a, b)
  | H q -> C_h q
  | S q -> C_s q
  | Extract cs -> C_extract cs

let make ~n ops =
  let in_range q = q >= 0 && q < n in
  List.iter
    (function
      | Depolarize { qubits; _ } | Flip_x { qubits; _ } | Flip_z { qubits; _ }
        ->
        if not (Array.for_all in_range qubits) then
          invalid_arg "Frame.Program.make: qubit out of range"
      | Cnot (a, b) ->
        if (not (in_range a)) || (not (in_range b)) || a = b then
          invalid_arg "Frame.Program.make: bad cnot"
      | H q | S q ->
        if not (in_range q) then
          invalid_arg "Frame.Program.make: qubit out of range"
      | Extract cs ->
        Array.iter
          (fun { x_sel; z_sel } ->
            if
              (not (Array.for_all in_range x_sel))
              || not (Array.for_all in_range z_sel)
            then invalid_arg "Frame.Program.make: check out of range")
          cs)
    ops;
  { n;
    cops = Array.of_list (List.map compile ops);
    out_words = num_out ops }

let num_qubits t = t.n
let out_words t = t.out_words

(* [out] is row-major like the plane: check [i]'s tile occupies
   [out.(i * lanes .. i * lanes + lanes - 1)]. *)
let run_into t sampler plane out =
  if Plane.num_qubits plane <> t.n then
    invalid_arg "Frame.Program.run: plane size mismatch";
  let lanes = Plane.lanes plane in
  if Sampler.lanes sampler <> lanes then
    invalid_arg "Frame.Program.run: sampler/plane lane mismatch";
  if Array.length out < t.out_words * lanes then
    invalid_arg "Frame.Program.run: output buffer too small";
  let pos = ref 0 in
  Array.iter
    (function
      | C_depolarize { qubits; pp } -> Plane.depolarize_plan plane sampler ~qubits pp
      | C_flip_x { qubits; pl } -> Plane.flip_x_plan plane sampler ~qubits pl
      | C_flip_z { qubits; pl } -> Plane.flip_z_plan plane sampler ~qubits pl
      | C_cnot (a, b) -> Plane.cnot plane a b
      | C_h q -> Plane.h plane q
      | C_s q -> Plane.s_gate plane q
      | C_extract cs ->
        Array.iter
          (fun { x_sel; z_sel } ->
            Plane.parity_check_into plane ~x_sel ~z_sel out (!pos * lanes);
            incr pos)
          cs)
    t.cops

let run t sampler plane =
  let out = Array.make (t.out_words * Plane.lanes plane) 0L in
  run_into t sampler plane out;
  out
