(* A frame program is a circuit (or ideal-EC round structure) compiled
   once into a flat array of ops: stochastic fault sites, Clifford
   frame-propagation gates, and syndrome extractions.  Running it
   against a Sampler and a Plane executes 64 shots at once; the
   extracted syndrome words transpose to per-shot bitstrings for the
   existing (scalar) decoders via Plane.shot_vec. *)

(* Syndrome bit of generator g on error e = x(e)·z(g) ⊕ z(e)·x(g):
   [x_sel] lists the qubits read from the X plane (the support of
   z(g)), [z_sel] the qubits read from the Z plane. *)
type check = { x_sel : int array; z_sel : int array }

type op =
  | Depolarize of { qubits : int array; px : float; py : float; pz : float }
  | Flip_x of { qubits : int array; p : float }
  | Flip_z of { qubits : int array; p : float }
  | Cnot of int * int
  | H of int
  | S of int
  | Extract of check array

type t = { n : int; ops : op array; out_words : int }

let check_of_generator g =
  let sup v = Array.of_list (Gf2.Bitvec.support v) in
  { x_sel = sup (Pauli.z_bits g); z_sel = sup (Pauli.x_bits g) }

let num_out ops =
  List.fold_left
    (fun acc -> function Extract cs -> acc + Array.length cs | _ -> acc)
    0 ops

let make ~n ops =
  let in_range q = q >= 0 && q < n in
  List.iter
    (function
      | Depolarize { qubits; _ } | Flip_x { qubits; _ } | Flip_z { qubits; _ }
        ->
        if not (Array.for_all in_range qubits) then
          invalid_arg "Frame.Program.make: qubit out of range"
      | Cnot (a, b) ->
        if (not (in_range a)) || (not (in_range b)) || a = b then
          invalid_arg "Frame.Program.make: bad cnot"
      | H q | S q ->
        if not (in_range q) then
          invalid_arg "Frame.Program.make: qubit out of range"
      | Extract cs ->
        Array.iter
          (fun { x_sel; z_sel } ->
            if
              (not (Array.for_all in_range x_sel))
              || not (Array.for_all in_range z_sel)
            then invalid_arg "Frame.Program.make: check out of range")
          cs)
    ops;
  { n; ops = Array.of_list ops; out_words = num_out ops }

let num_qubits t = t.n
let out_words t = t.out_words

let run_into t sampler plane out =
  if Plane.num_qubits plane <> t.n then
    invalid_arg "Frame.Program.run: plane size mismatch";
  if Array.length out < t.out_words then
    invalid_arg "Frame.Program.run: output buffer too small";
  let pos = ref 0 in
  Array.iter
    (function
      | Depolarize { qubits; px; py; pz } ->
        Plane.depolarize plane sampler ~qubits ~px ~py ~pz
      | Flip_x { qubits; p } -> Plane.flip_x plane sampler ~qubits ~p
      | Flip_z { qubits; p } -> Plane.flip_z plane sampler ~qubits ~p
      | Cnot (a, b) -> Plane.cnot plane a b
      | H q -> Plane.h plane q
      | S q -> Plane.s_gate plane q
      | Extract cs ->
        Array.iter
          (fun { x_sel; z_sel } ->
            out.(!pos) <-
              Int64.logxor
                (Plane.parity_x plane x_sel)
                (Plane.parity_z plane z_sel);
            incr pos)
          cs)
    t.ops

let run t sampler plane =
  let out = Array.make t.out_words 0L in
  run_into t sampler plane out;
  out
