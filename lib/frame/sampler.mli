(** Word-level noise sampling for the bit-sliced engine.

    A sampler is a position-based walk over the raw outputs of one
    {!Mc.Rng} key: every drawn word is a pure function of
    (key, position).  The batch engine and its per-shot scalar
    cross-check issue the same call sequence against samplers built
    from the same key, so both see the identical noise — the basis of
    the bit-identical batch-vs-scalar guarantee. *)

type t

(** [create key] — a fresh sampler at position 0 of [key]. *)
val create : Mc.Rng.key -> t

(** [uniform t] — next uniform 64-bit word. *)
val uniform : t -> int64

(** Binary digits of p kept by {!bernoulli} (40: absolute bias
    < 2^-40). *)
val digits : int

(** [bernoulli t p] — a word whose 64 bits are IID Bernoulli(p),
    sampled by the binary expansion of [p].  The number of uniform
    words consumed depends only on [p]. *)
val bernoulli : t -> float -> int64

(** [pauli t ~px ~py ~pz] — [(x_plane, z_plane)] words of 64 IID
    single-qubit Pauli errors: per bit, X with probability [px], Y
    with [py] (both planes set), Z with [pz], identity otherwise. *)
val pauli : t -> px:float -> py:float -> pz:float -> int64 * int64
